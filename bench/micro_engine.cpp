// M2 — google-benchmark micro benchmarks for the engine's dynamic kernels:
// the per-event cost of additions (seeded vs eager), deletions (poison +
// repair), and vertex additions under each strategy, measured end-to-end
// as full engine runs minus a static baseline would be noisy — instead we
// time small fixed scenarios directly.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"

namespace {

using namespace aacc;

Graph fixture(VertexId n) {
  static std::map<VertexId, Graph> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    Rng rng(1);
    it = cache.emplace(n, barabasi_albert(n, 2, rng)).first;
  }
  return it->second;
}

EngineConfig cfg_for(Rank p) {
  EngineConfig cfg;
  cfg.num_ranks = p;
  return cfg;
}

void BM_StaticRun(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  const Graph g = fixture(n);
  for (auto _ : state) {
    AnytimeEngine engine(g, cfg_for(8));
    benchmark::DoNotOptimize(engine.run());
  }
}
BENCHMARK(BM_StaticRun)->Arg(300)->Arg(600)->Unit(benchmark::kMillisecond);

void BM_EdgeAdditionBatch(benchmark::State& state) {
  const auto mode = static_cast<EdgeAddMode>(state.range(0));
  const Graph g = fixture(500);
  Rng rng(3);
  EventSchedule sched;
  EventBatch batch;
  batch.at_step = 2;
  Graph probe = g;
  while (batch.events.size() < 16) {
    const auto u = static_cast<VertexId>(rng.next_below(500));
    const auto v = static_cast<VertexId>(rng.next_below(500));
    if (u == v || probe.has_edge(u, v)) continue;
    probe.add_edge(u, v, 1);
    batch.events.emplace_back(EdgeAddEvent{u, v, 1});
  }
  sched.push_back(std::move(batch));
  for (auto _ : state) {
    EngineConfig cfg = cfg_for(8);
    cfg.add_mode = mode;
    AnytimeEngine engine(g, cfg);
    benchmark::DoNotOptimize(engine.run(sched));
  }
}
BENCHMARK(BM_EdgeAdditionBatch)
    ->Arg(static_cast<int>(EdgeAddMode::kSeeded))
    ->Arg(static_cast<int>(EdgeAddMode::kEager))
    ->Unit(benchmark::kMillisecond);

void BM_EdgeDeletionBatch(benchmark::State& state) {
  Rng grng(5);
  const Graph g = barabasi_albert(500, 3, grng);
  Rng rng(4);
  EventSchedule sched;
  EventBatch batch;
  batch.at_step = 2;
  Graph probe = g;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    const auto edges = probe.edges();
    const auto& [u, v, w] = edges[rng.next_below(edges.size())];
    (void)w;
    probe.remove_edge(u, v);
    batch.events.emplace_back(EdgeDeleteEvent{u, v});
  }
  sched.push_back(std::move(batch));
  for (auto _ : state) {
    AnytimeEngine engine(g, cfg_for(8));
    benchmark::DoNotOptimize(engine.run(sched));
  }
}
BENCHMARK(BM_EdgeDeletionBatch)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_VertexAdditionStrategy(benchmark::State& state) {
  const auto strat = static_cast<AssignStrategy>(state.range(0));
  const Graph g = fixture(500);
  Rng rng(6);
  EventSchedule sched;
  EventBatch batch;
  batch.at_step = 2;
  std::vector<VertexId> pool;
  for (const auto& [u, v, w] : g.edges()) {
    (void)w;
    pool.push_back(u);
    pool.push_back(v);
  }
  for (VertexId i = 0; i < 24; ++i) {
    VertexAddEvent ev;
    ev.id = 500 + i;
    if (i > 0) ev.edges.emplace_back(500 + i - 1, 1);
    ev.edges.emplace_back(pool[rng.next_below(pool.size())], 1);
    batch.events.emplace_back(std::move(ev));
  }
  sched.push_back(std::move(batch));
  for (auto _ : state) {
    EngineConfig cfg = cfg_for(8);
    cfg.assign = strat;
    AnytimeEngine engine(g, cfg);
    benchmark::DoNotOptimize(engine.run(sched));
  }
}
BENCHMARK(BM_VertexAdditionStrategy)
    ->Arg(static_cast<int>(AssignStrategy::kRoundRobin))
    ->Arg(static_cast<int>(AssignStrategy::kCutEdge))
    ->Arg(static_cast<int>(AssignStrategy::kRepartition))
    ->Unit(benchmark::kMillisecond);

void BM_CheckpointSerialize(benchmark::State& state) {
  const Graph g = fixture(600);
  EngineConfig cfg = cfg_for(8);
  cfg.checkpoint_at_step = 1;
  for (auto _ : state) {
    AnytimeEngine engine(g, cfg);
    const RunResult r = engine.run();
    benchmark::DoNotOptimize(r.checkpoint.bytes());
  }
}
BENCHMARK(BM_CheckpointSerialize)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
