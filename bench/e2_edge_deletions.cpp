// E2 — Edge deletions (the title paper's own dynamic change): baseline
// restart vs the anytime anywhere route-poisoning algorithm, swept over the
// batch size and the injection step.
//
// Expected shape: anytime ≪ restart; deletions cost more than additions at
// equal batch size (suspect invalidation + re-derivation), visible in the
// poisons column.
#include "bench_util.hpp"

int main() {
  using namespace aacc;
  using namespace aacc::bench;
  const Scale s = read_scale(/*default_n=*/2000);
  const Graph g = base_graph(s, /*edges_per_vertex=*/3);  // denser: survives deletions
  std::printf("e2: n=%u m=%zu P=%d, edge deletions at RC0/RC4/RC8\n", s.n,
              g.num_edges(), s.p);

  Table table("e2_edge_deletions", "edges_deleted", "poisons");
  for (const std::size_t count :
       {scaled(32, s), scaled(128, s), scaled(512, s)}) {
    for (const std::size_t rc : {0u, 4u, 8u}) {
      Rng rng(s.seed + count * 37 + rc);
      EventSchedule sched;
      EventBatch batch;
      batch.at_step = rc;
      Graph probe = g;
      while (batch.events.size() < count) {
        const auto edges = probe.edges();
        const auto& [u, v, w] = edges[rng.next_below(edges.size())];
        (void)w;
        probe.remove_edge(u, v);
        batch.events.emplace_back(EdgeDeleteEvent{u, v});
      }
      sched.push_back(std::move(batch));

      const EngineConfig cfg = make_cfg(s, AssignStrategy::kRoundRobin);
      Row anytime = measure("anytime@rc" + std::to_string(rc),
                            static_cast<double>(count), g, sched, cfg);
      anytime.extra = anytime.poisons;
      table.add(anytime);
      if (rc == 0) {
        table.add(measure_baseline("restart", static_cast<double>(count), g,
                                   sched, cfg));
      }
    }
  }
  table.print_and_save();
  return 0;
}
