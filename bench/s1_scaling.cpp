// S1 — scaling study (the paper family's standard evaluation companion):
// fixed problem, sweep the processor count; and fixed P, sweep the graph
// size. Reports wall time, LogGP-modeled cluster makespan (the number a
// real cluster would see — per-step slowest-rank CPU + network), traffic,
// and RC steps.
//
// Expected shape: per-rank work shrinks with P (sum_cpu roughly constant,
// max-per-step shrinking) while the serialized-schedule network time grows
// with P — the communication/computation trade-off the paper's LogP
// analysis in §IV.C formalizes.
#include "bench_util.hpp"

int main() {
  using namespace aacc;
  using namespace aacc::bench;
  const Scale s = read_scale(/*default_n=*/2000);

  Table table("s1_scaling", "ranks_or_kn");
  for (const Rank p : {2, 4, 8, 16, 32}) {
    const Graph g = base_graph(s);
    EngineConfig cfg = make_cfg(s, AssignStrategy::kRoundRobin);
    cfg.num_ranks = p;
    table.add(measure("P-sweep", p, g, {}, cfg));
  }
  for (const VertexId n : {500u, 1000u, 2000u, 4000u}) {
    Scale sn = s;
    sn.n = n;
    const Graph g = base_graph(sn);
    table.add(measure("N-sweep(kn)", n / 1000.0, g, {}, make_cfg(sn, AssignStrategy::kRoundRobin)));
  }
  table.print_and_save();
  return 0;
}
