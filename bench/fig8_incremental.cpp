// Figure 8 — "Incremental Vertex Additions".
//
// Paper setup: instead of one bulk change, vertices arrive continuously —
// the same cumulative batch spread over 10 recombination steps (e.g. the
// 5611-vertex experiment adds ~561 per step). Series: baseline restart
// (restarts per step!), Repartition-S, RoundRobin-PS, CutEdge-PS.
//
// Expected shape: baseline ≫ everything; RoundRobin/CutEdge cheapest at low
// rates; Repartition-S catches up at the highest rate.
// The PS strategies default to the paper's eager Figure-3 relaxation
// (AACC_EAGER=0 selects the optimized seeded mode).
#include "bench_util.hpp"

int main() {
  using namespace aacc;
  using namespace aacc::bench;
  const Scale s = read_scale(/*default_n=*/1200);
  const Graph g = base_graph(s);
  const EdgeAddMode mode = read_add_mode(/*paper_default_eager=*/true);
  std::printf("fig8: n=%u m=%zu P=%d add_mode=%s, additions spread over 10 RC steps\n",
              s.n, g.num_edges(), s.p,
              mode == EdgeAddMode::kEager ? "eager" : "seeded");

  Table table("fig8_incremental", "added_per_step");
  for (const std::size_t paper_rate : {51u, 187u, 383u, 561u}) {
    const auto per_step = static_cast<VertexId>(std::max<std::size_t>(
        2, scaled(paper_rate * s.n / 50000, s)));

    // Build the 10-step schedule once per rate; identical for all series.
    Rng rng(s.seed + paper_rate);
    EventSchedule sched;
    Graph cursor = g;
    for (std::size_t step = 0; step < 10; ++step) {
      EventBatch batch;
      batch.at_step = step;
      batch.events = community_vertex_batch(cursor, per_step, 4, rng);
      for (const Event& e : batch.events) apply_event(cursor, e);
      sched.push_back(std::move(batch));
    }

    table.add(measure_baseline("baseline-restart",
                               static_cast<double>(per_step), g, sched,
                               make_cfg(s, AssignStrategy::kRoundRobin)));
    for (const auto& [name, strat] :
         std::initializer_list<std::pair<const char*, AssignStrategy>>{
             {"repartition-s", AssignStrategy::kRepartition},
             {"roundrobin-ps", AssignStrategy::kRoundRobin},
             {"cutedge-ps", AssignStrategy::kCutEdge}}) {
      EngineConfig cfg = make_cfg(s, strat);
      cfg.add_mode = mode;
      table.add(measure(name, static_cast<double>(per_step), g, sched, cfg));
    }
  }
  table.print_and_save();
  return 0;
}
