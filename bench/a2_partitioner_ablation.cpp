// Ablation A2 — DD partitioner quality.
//
// Swaps the domain-decomposition partitioner (multilevel vs BFS vs hash vs
// block vs round-robin) and measures the downstream effect on the whole
// pipeline: initial cut, RC traffic, time to converge.
//
// Expected shape: cut size drives RC bytes almost linearly; multilevel and
// BFS (locality-aware) beat the blind partitioners.
#include "bench_util.hpp"

int main() {
  using namespace aacc;
  using namespace aacc::bench;
  const Scale s = read_scale(/*default_n=*/1500);
  const Graph g = base_graph(s);
  std::printf("a2: n=%u m=%zu P=%d (extra column: initial cut edges)\n", s.n,
              g.num_edges(), s.p);

  Table table("a2_partitioner_ablation", "kind_index", "initial_cut");
  int idx = 0;
  for (const PartitionerKind kind :
       {PartitionerKind::kMultilevel, PartitionerKind::kBfs,
        PartitionerKind::kBlock, PartitionerKind::kHash,
        PartitionerKind::kRoundRobin}) {
    EngineConfig cfg = make_cfg(s, AssignStrategy::kRoundRobin);
    cfg.dd_partitioner = kind;

    Timer t;
    AnytimeEngine engine(g, cfg);
    const RunResult r = engine.run();
    Row row;
    row.label = partitioner_name(kind);
    row.x = idx++;
    row.wall_seconds = t.seconds();
    row.modeled_seconds = r.stats.modeled_makespan_seconds;
    row.mbytes = static_cast<double>(r.stats.total_bytes) / 1e6;
    row.rc_steps = r.stats.rc_steps;
    row.extra = static_cast<double>(r.stats.cut_edges_initial);
    table.add(row);
  }
  table.print_and_save();
  return 0;
}
