// Anytime query serving under churn (M9): sustained queries/sec against
// the double-buffered snapshots while an E1-style edge-addition stream
// drains through a live EngineSession. Readers never block the drain —
// publication is one atomic pointer swap — so the sustained rate is a
// direct measure of the snapshot read path.
//
// Sections:
//   1. single rank, 2 query threads of point lookups during ingest
//      (gate: >= 100k queries/sec sustained)
//   2. P ranks (default 4): the same churn, plus merged top-k / rank-of
//      latencies after close
//
// Output: micro_serve.json under AACC_OUT_DIR. `seconds_per_query` is the
// bench_diff-gated metric (lower is better; bench_diff gates increases).
#include <atomic>
#include <set>
#include <thread>
#include <utility>

#include "bench_util.hpp"
#include "serve/session.hpp"

namespace {

using namespace aacc;

struct ServeCase {
  Rank ranks = 1;
  double wall_seconds = 0;       // query measurement window
  std::uint64_t queries = 0;     // answered inside that window
  double qps = 0;
  double seconds_per_query = 0;
  double p99_query_seconds = 0;  // point-query p99 from the serve SLO histogram
  std::uint64_t publishes = 0;
  std::size_t rc_steps = 0;
  double topk_us = 0;            // post-close merged top-64 latency
  double rankof_us = 0;          // post-close rank-of latency
};

/// Feeds `batches` batches of unique random edges, then returns. Unique
/// because a duplicate add is a schedule error (apply_event asserts).
void feed_churn(serve::EngineSession& session, const Graph& g, VertexId n,
                int batches, std::size_t per_batch, std::uint64_t seed) {
  std::set<std::pair<VertexId, VertexId>> present;
  for (const auto& [u, v, w] : g.edges()) {
    (void)w;
    present.emplace(std::min(u, v), std::max(u, v));
  }
  Rng rng(seed);
  for (int b = 0; b < batches; ++b) {
    std::vector<Event> batch;
    while (batch.size() < per_batch) {
      const auto u = static_cast<VertexId>(rng.next_below(n));
      const auto v = static_cast<VertexId>(rng.next_below(n));
      if (u == v) continue;
      const auto key = std::make_pair(std::min(u, v), std::max(u, v));
      if (!present.insert(key).second) continue;
      batch.push_back(EdgeAddEvent{u, v, 1});
    }
    try {
      session.ingest(std::move(batch));
    } catch (const std::exception&) {
      return;  // session ended first (short run on a fast box)
    }
  }
}

ServeCase run_case(const bench::Scale& s, Rank ranks, int batches,
                   std::size_t per_batch) {
  Rng rng(s.seed);
  const Graph g = barabasi_albert(s.n, 2, rng);

  EngineConfig cfg;
  cfg.num_ranks = ranks;
  cfg.seed = s.seed;
  cfg.publish_every = 1;
  serve::EngineSession session(g, cfg);
  const serve::QueryView view = session.view();

  std::thread feeder([&session, &g, &s, batches, per_batch] {
    feed_churn(session, g, s.n, batches, per_batch, s.seed + 17);
  });

  // Wait for the first publish so the measured window only contains real
  // answers, then hammer point lookups from two threads while the churn
  // drains.
  while (view.top_k(1).entries.empty()) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> answered{0};
  const auto reader = [&view, &stop, &answered, n = s.n](std::uint64_t seed) {
    Rng qr(seed);
    std::uint64_t local = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const auto v = static_cast<VertexId>(qr.next_below(n));
      const auto r = view.point(v);
      (void)r;
      ++local;
    }
    answered.fetch_add(local, std::memory_order_relaxed);
  };
  Timer window;
  std::thread q1(reader, s.seed + 101);
  std::thread q2(reader, s.seed + 202);

  feeder.join();
  const RunResult r = session.close();
  const double elapsed = window.seconds();
  stop.store(true);
  q1.join();
  q2.join();

  ServeCase c;
  c.ranks = ranks;
  c.wall_seconds = elapsed;
  c.queries = answered.load();
  c.qps = static_cast<double>(c.queries) / elapsed;
  c.seconds_per_query = elapsed / static_cast<double>(std::max<std::uint64_t>(c.queries, 1));
  // Tail latency from the lock-free serve SLO histogram (every point query
  // of the run, not just the measured window; docs/OBSERVABILITY.md §Serve
  // latency SLOs). bench_diff-gated alongside seconds_per_query.
  c.p99_query_seconds = obs::histogram_quantile(session.slo().point, 0.99) / 1e9;
  c.publishes = r.metrics.counter_value("serve/publishes");
  c.rc_steps = r.stats.rc_steps;

  // Post-close merged-query latencies (exact final state, age 0).
  const int reps = 2000;
  Timer tk;
  for (int i = 0; i < reps; ++i) (void)view.top_k(64);
  c.topk_us = 1e6 * tk.seconds() / reps;
  Rng rr(s.seed + 303);
  Timer tr;
  for (int i = 0; i < reps; ++i) {
    (void)view.rank_of(static_cast<VertexId>(rr.next_below(s.n)));
  }
  c.rankof_us = 1e6 * tr.seconds() / reps;
  return c;
}

}  // namespace

int main() {
  using namespace aacc;
  const bench::Scale s = bench::read_scale(/*default_n=*/4000);
  const int batches = static_cast<int>(bench::scaled(24, s));
  const std::size_t per_batch = bench::scaled(64, s);
  const Rank p = static_cast<Rank>(std::min<int>(s.p, 4));

  std::printf("== micro_serve (n=%u, %d batches x %zu adds, 2 query threads) "
              "==\n",
              s.n, batches, per_batch);
  std::printf("%6s %10s %14s %14s %11s %9s %9s %10s %11s\n", "ranks", "wall_s",
              "queries", "queries/s", "us/query", "p99_us", "publishes",
              "topk_us", "rankof_us");

  std::vector<ServeCase> cases;
  cases.push_back(run_case(s, 1, batches, per_batch));
  cases.push_back(run_case(s, p, batches, per_batch));
  for (const ServeCase& c : cases) {
    std::printf("%6d %10.3f %14llu %14.0f %11.4f %9.2f %9llu %10.2f %11.2f\n",
                c.ranks, c.wall_seconds,
                static_cast<unsigned long long>(c.queries), c.qps,
                1e6 * c.seconds_per_query, 1e6 * c.p99_query_seconds,
                static_cast<unsigned long long>(c.publishes), c.topk_us,
                c.rankof_us);
  }

  // Acceptance gate (ISSUE: anytime query serving PR): a single-rank
  // session must sustain >= 100k point queries/sec while ingesting.
  const double gate_qps = cases[0].qps;
  std::printf("\ngate: single-rank sustained rate %.0f queries/s "
              "(need 100000)\n",
              gate_qps);
  if (gate_qps < 100000.0) {
    std::fprintf(stderr, "FATAL: %.0f queries/s < 100k gate\n", gate_qps);
    return 1;
  }

  const std::string dir = env_str("AACC_OUT_DIR", "/tmp/aacc_bench");
  (void)std::system(("mkdir -p " + dir).c_str());
  std::ofstream json(dir + "/micro_serve.json");
  json << "{\"bench\":\"micro_serve\",\"vertices\":" << s.n
       << ",\"batches\":" << batches << ",\"per_batch\":" << per_batch
       << ",\"cases\":[";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const ServeCase& c = cases[i];
    if (i != 0) json << ',';
    json << "{\"ranks\":" << static_cast<int>(c.ranks)
         << ",\"wall_seconds\":" << c.wall_seconds
         << ",\"queries\":" << c.queries << ",\"queries_per_sec\":" << c.qps
         << ",\"seconds_per_query\":" << c.seconds_per_query
         << ",\"p99_query_seconds\":" << c.p99_query_seconds
         << ",\"publishes\":" << c.publishes << ",\"rc_steps\":" << c.rc_steps
         << ",\"topk_us\":" << c.topk_us << ",\"rankof_us\":" << c.rankof_us
         << '}';
  }
  json << "],\"gate_qps_p1\":" << gate_qps << "}\n";
  std::printf("[json] %s/micro_serve.json\n", dir.c_str());
  return 0;
}
