// Ablation A1 — communication schedule.
//
// The paper serializes its personalized all-to-all ("only one message
// traverses the network at any given time") to avoid flooding, accepting
// O(P^2) steps. This ablation replays the same recorded exchange under the
// three LogGP schedule policies and sweeps the processor count.
//
// Expected shape: serialized ≫ shifted; flood cheapest on modeled time for
// uniform traffic but with the worst instantaneous network load (which is
// what the paper's schedule is designed to bound).
#include "bench_util.hpp"

int main() {
  using namespace aacc;
  using namespace aacc::bench;
  const Scale s = read_scale(/*default_n=*/1500);

  Table table("a1_comm_schedule", "ranks");
  for (const Rank p : {4, 8, 16, 32}) {
    Rng rng(s.seed);
    const Graph g = base_graph(s);
    EngineConfig cfg = make_cfg(s, AssignStrategy::kRoundRobin);
    cfg.num_ranks = p;

    Timer t;
    AnytimeEngine engine(g, cfg);
    const RunResult r = engine.run();
    Row serialized;
    serialized.label = "serialized";
    serialized.x = p;
    serialized.wall_seconds = t.seconds();
    serialized.modeled_seconds = r.stats.modeled_network_seconds_serialized;
    serialized.mbytes = static_cast<double>(r.stats.total_bytes) / 1e6;
    serialized.rc_steps = r.stats.rc_steps;
    table.add(serialized);

    Row shifted = serialized;
    shifted.label = "shifted";
    shifted.modeled_seconds = r.stats.modeled_network_seconds_shifted;
    table.add(shifted);

    Row flood = serialized;
    flood.label = "flood";
    flood.modeled_seconds = r.stats.modeled_network_seconds_flood;
    table.add(flood);
  }
  table.print_and_save();
  return 0;
}
