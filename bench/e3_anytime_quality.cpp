// E3 — The anytime property: solution quality as a function of RC step.
//
// Runs the engine with per-step snapshots and reports, for each step, the
// mean relative error of the harmonic-centrality estimate versus the exact
// value, and the top-20 overlap — on a clean static run and on a run where
// a vertex batch lands mid-analysis (quality dips, then recovers).
//
// Expected shape: monotone non-decreasing quality on the static run, exact
// by the final step; a visible notch at the injection step of the dynamic
// run, recovering to exact.
#include "analysis/closeness.hpp"
#include "analysis/quality.hpp"
#include "bench_util.hpp"

namespace {

void quality_series(const char* name, const aacc::Graph& g,
                    const aacc::EventSchedule& sched,
                    const aacc::EngineConfig& cfg, aacc::bench::Table& table) {
  using namespace aacc;
  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run(sched);
  const auto exact = harmonic_exact(engine.graph());
  for (std::size_t s = 0; s < r.step_harmonic.size(); ++s) {
    bench::Row row;
    row.label = name;
    row.x = static_cast<double>(s);
    row.wall_seconds = mean_relative_error(exact, r.step_harmonic[s]);
    row.modeled_seconds = top_k_overlap(exact, r.step_harmonic[s], 20);
    row.mbytes = kendall_tau(exact, r.step_harmonic[s], 200'000);
    row.rc_steps = r.stats.rc_steps;
    table.add(row);
  }
}

}  // namespace

int main() {
  using namespace aacc;
  using namespace aacc::bench;
  const Scale s = read_scale(/*default_n=*/1500);
  const Graph g = base_graph(s);
  std::printf("e3: n=%u m=%zu P=%d — columns are: wall_s=mean_rel_err, "
              "modeled_s=top20_overlap, MB_sent=kendall_tau\n",
              s.n, g.num_edges(), s.p);

  Table table("e3_anytime_quality", "rc_step");
  EngineConfig cfg = make_cfg(s, AssignStrategy::kRoundRobin);
  cfg.record_step_quality = true;

  quality_series("static", g, {}, cfg, table);

  Rng rng(s.seed);
  EventSchedule sched;
  sched.push_back(
      {4, community_vertex_batch(g, std::max<VertexId>(8, s.n / 25), 4, rng)});
  quality_series("inject@rc4", g, sched, cfg, table);

  table.print_and_save();
  return 0;
}
