// M1 — google-benchmark micro benchmarks for the substrate kernels:
// Dijkstra, multilevel partitioning, Louvain, serialization, and the
// communicator collectives. These are the building blocks whose constants
// determine every figure's absolute numbers.
#include <benchmark/benchmark.h>

#include "analysis/shortest_paths.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/louvain.hpp"
#include "partition/partition.hpp"
#include "runtime/comm.hpp"
#include "runtime/serialize.hpp"

namespace {

using namespace aacc;

const Graph& ba_graph(VertexId n) {
  static std::map<VertexId, Graph> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    Rng rng(1);
    it = cache.emplace(n, barabasi_albert(n, 2, rng)).first;
  }
  return it->second;
}

void BM_DijkstraSingleSource(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  const Graph& g = ba_graph(n);
  const CsrGraph csr(g);
  VertexId src = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dijkstra(csr, src));
    src = (src + 17) % n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_DijkstraSingleSource)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_MultilevelPartition(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  const Graph& g = ba_graph(n);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        partition_graph(g, 16, PartitionerKind::kMultilevel, rng));
  }
}
BENCHMARK(BM_MultilevelPartition)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_Louvain(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  Rng grng(3);
  const Graph g = planted_partition(n, 8, std::min(1.0, 40.0 / n), 0.002, grng);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(louvain(g, rng));
  }
}
BENCHMARK(BM_Louvain)->Arg(500)->Arg(2000);

void BM_SerializeDistRow(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<Dist> row(n, 12345);
  for (auto _ : state) {
    rt::ByteWriter w;
    w.write_vec(row);
    auto buf = w.take();
    rt::ByteReader r(buf);
    benchmark::DoNotOptimize(r.read_vec<Dist>());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 4);
}
BENCHMARK(BM_SerializeDistRow)->Arg(1000)->Arg(50000);

void BM_AllToAll(benchmark::State& state) {
  const auto p = static_cast<Rank>(state.range(0));
  const std::size_t bytes = 4096;
  rt::World world(p);
  for (auto _ : state) {
    world.run([&](rt::Comm& comm) {
      std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(p));
      for (auto& payload : out) payload.resize(bytes);
      benchmark::DoNotOptimize(comm.all_to_all(std::move(out)));
    });
  }
}
BENCHMARK(BM_AllToAll)->Arg(4)->Arg(16);

void BM_AllReduce(benchmark::State& state) {
  const auto p = static_cast<Rank>(state.range(0));
  rt::World world(p);
  for (auto _ : state) {
    world.run([&](rt::Comm& comm) {
      benchmark::DoNotOptimize(
          comm.all_reduce_sum(static_cast<std::uint64_t>(comm.rank())));
    });
  }
}
BENCHMARK(BM_AllReduce)->Arg(4)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
