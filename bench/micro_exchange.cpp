// M7 micro benchmark: the k-deep pipelined RC exchange
// (docs/PROTOCOL.md §"Pipelined exchange", EXPERIMENTS.md §M7).
//
// Part A drives the transport primitive directly: a sweep of world sizes ×
// window depths over a deterministic skewed all-to-all workload (one
// straggler rank sends 4× the bytes of everyone else — skewed enough to
// hurt the blocking schedule, small enough to stay latency-dominated,
// which is where overlap pays) and reports, per (ranks, window):
//   * modeled_exchange_seconds  — LogGP windowed makespan of the recorded
//                                 traffic (logp.hpp; window 1 models the
//                                 legacy blocking schedule),
//   * modeled_speedup_vs_blocking — f(window=1) / f(window),
//   * wait_seconds_sum / max_inflight — the measured overlap telemetry.
// Delivered contents are verified before any number is reported, and the
// bench fatally asserts the acceptance gate: >= 1.5x modeled speedup at 16
// ranks with window 4.
//
// Part B is an engine smoke across the three exchange modes (deterministic
// oracle, pipelined, async): closeness must agree bit for bit; wall time,
// exchange wait, and in-flight depth are reported per mode.
//
// Prints a table and writes AACC_OUT_DIR/micro_exchange.json. Knobs:
// AACC_BYTES (base payload bytes, default 512), AACC_ROUNDS (all-to-all
// ops per case, default 4), AACC_N (Part B vertices, default 1200),
// AACC_SEED.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "runtime/comm.hpp"
#include "runtime/serialize.hpp"

namespace {

using namespace aacc;

struct CommCase {
  Rank ranks;
  std::uint32_t window;   // effective (0 = auto resolved to P-1)
  double modeled;
  double speedup;
  double wait_sum;
  std::uint64_t max_inflight;
};

struct ModeCase {
  const char* mode;
  double wall_seconds;
  double exchange_wait;
  std::uint64_t max_inflight;
  std::size_t rc_steps;
  bool identical;
};

/// Deterministic skewed payload: rank 0 is the straggler (4x bytes), and
/// every byte encodes (src, dst) so delivery is verifiable.
std::vector<std::byte> payload_for(Rank src, Rank dst, std::size_t base) {
  const std::size_t n = src == 0 ? base * 4 : base;
  std::vector<std::byte> buf(n);
  const auto tag = static_cast<std::byte>((src * 31 + dst * 7) & 0xff);
  for (std::size_t i = 0; i < n; ++i) buf[i] = tag;
  return buf;
}

bool payload_ok(const std::vector<std::byte>& buf, Rank src, Rank dst,
                std::size_t base) {
  const std::size_t n = src == 0 ? base * 4 : base;
  if (buf.size() != n) return false;
  const auto tag = static_cast<std::byte>((src * 31 + dst * 7) & 0xff);
  for (const std::byte b : buf) {
    if (b != tag) return false;
  }
  return true;
}

}  // namespace

int main() {
  const auto base_bytes = static_cast<std::size_t>(env_int("AACC_BYTES", 512));
  const auto rounds = env_int("AACC_ROUNDS", 4);
  const auto n = static_cast<VertexId>(env_int("AACC_N", 1200));
  const auto seed = static_cast<std::uint64_t>(env_int("AACC_SEED", 1));

  // ---- Part A: transport-level window sweep --------------------------
  std::vector<CommCase> comm_cases;
  bool verified = true;
  double gate_speedup = 0.0;  // modeled speedup at P=16, window 4
  for (const Rank P : {Rank{4}, Rank{8}, Rank{16}}) {
    double blocking_modeled = 0.0;
    // Window 1 (the blocking model) runs first so every later case can
    // report its speedup against it.
    for (const std::uint32_t w : {1u, 2u, 4u, 8u, 0u}) {
      if (w >= static_cast<std::uint32_t>(P)) continue;  // clamps to P-1
      const std::uint32_t eff = w == 0 ? static_cast<std::uint32_t>(P - 1) : w;
      rt::World world(P);
      std::vector<double> waits(static_cast<std::size_t>(P), 0.0);
      std::vector<std::uint64_t> depths(static_cast<std::size_t>(P), 0);
      std::vector<int> bad(static_cast<std::size_t>(P), 0);
      world.run([&](rt::Comm& comm) {
        for (int op = 0; op < rounds; ++op) {
          std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(P));
          for (Rank q = 0; q < P; ++q) {
            out[static_cast<std::size_t>(q)] =
                payload_for(comm.rank(), q, base_bytes);
          }
          auto pending =
              comm.all_to_all_start(std::move(out), static_cast<Rank>(eff));
          auto in = pending.wait_all();
          for (Rank q = 0; q < P; ++q) {
            if (!payload_ok(in[static_cast<std::size_t>(q)], q, comm.rank(),
                            base_bytes)) {
              ++bad[static_cast<std::size_t>(comm.rank())];
            }
          }
          const auto me = static_cast<std::size_t>(comm.rank());
          waits[me] += pending.wait_seconds();
          depths[me] = std::max(depths[me], pending.max_inflight());
        }
      });
      for (const int b : bad) verified = verified && b == 0;

      CommCase c;
      c.ranks = P;
      c.window = eff;
      c.modeled = world.modeled_exchange_seconds(eff);
      if (eff == 1) blocking_modeled = c.modeled;
      c.speedup = c.modeled > 0.0 ? blocking_modeled / c.modeled : 0.0;
      c.wait_sum = 0.0;
      for (const double s : waits) c.wait_sum += s;
      c.max_inflight = 0;
      for (const std::uint64_t d : depths)
        c.max_inflight = std::max(c.max_inflight, d);
      if (P == 16 && eff == 4) gate_speedup = c.speedup;
      comm_cases.push_back(c);
    }
  }
  if (!verified) {
    std::fprintf(stderr, "FATAL: a windowed all-to-all corrupted delivery\n");
    return 1;
  }

  // ---- Part B: engine smoke across exchange modes --------------------
  Rng rng(seed);
  const Graph g = barabasi_albert(n, 3, rng);
  std::vector<ModeCase> mode_cases;
  std::vector<double> ref_closeness;
  const struct {
    const char* name;
    ExchangeMode mode;
  } modes[] = {{"deterministic", ExchangeMode::kDeterministic},
               {"pipelined", ExchangeMode::kPipelined},
               {"async", ExchangeMode::kAsync}};
  for (const auto& m : modes) {
    EngineConfig cfg;
    cfg.num_ranks = 8;
    cfg.seed = seed;
    cfg.exchange_mode = m.mode;
    cfg.transport.recv_timeout = bench::watchdog_timeout();
    AnytimeEngine engine(g, cfg);
    Timer t;
    const RunResult r = engine.run();
    ModeCase c;
    c.mode = m.name;
    c.wall_seconds = t.seconds();
    c.exchange_wait = r.stats.rc_exchange_wait_seconds;
    c.max_inflight = r.stats.rc_max_inflight_depth;
    c.rc_steps = r.stats.rc_steps;
    if (m.mode == ExchangeMode::kDeterministic) {
      ref_closeness = r.closeness;
      c.identical = true;
    } else {
      c.identical = r.closeness == ref_closeness;
    }
    mode_cases.push_back(c);
    if (!c.identical) {
      std::fprintf(stderr, "FATAL: mode %s diverged from the oracle\n",
                   m.name);
      return 1;
    }
  }

  // ---- report ---------------------------------------------------------
  std::printf("\n== micro_exchange (base=%zu B, straggler 4x, %d ops/case) ==\n",
              base_bytes, rounds);
  std::printf("%6s %7s %22s %9s %13s %9s\n", "ranks", "window",
              "modeled_exchange_s", "speedup", "wait_sum_s", "inflight");
  for (const CommCase& c : comm_cases) {
    std::printf("%6d %7u %22.6f %8.2fx %13.6f %9llu\n", c.ranks, c.window,
                c.modeled, c.speedup, c.wait_sum,
                static_cast<unsigned long long>(c.max_inflight));
  }
  std::printf("\n-- engine smoke (n=%u, P=8, closeness vs oracle) --\n", n);
  std::printf("%14s %9s %12s %16s %9s %10s\n", "mode", "rc_steps", "wall_s",
              "exchange_wait_s", "inflight", "identical");
  for (const ModeCase& c : mode_cases) {
    std::printf("%14s %9zu %12.3f %16.6f %9llu %10s\n", c.mode, c.rc_steps,
                c.wall_seconds, c.exchange_wait,
                static_cast<unsigned long long>(c.max_inflight),
                c.identical ? "yes" : "NO");
  }

  // Acceptance gate (ISSUE: pipelined exchange PR): the windowed schedule
  // must buy >= 1.5x modeled exchange makespan at 16 ranks, window 4.
  std::printf("\ngate: modeled speedup at P=16 window=4: %.2fx (need 1.5x)\n",
              gate_speedup);
  if (gate_speedup < 1.5) {
    std::fprintf(stderr, "FATAL: modeled speedup %.2fx < 1.5x gate\n",
                 gate_speedup);
    return 1;
  }

  const std::string dir = env_str("AACC_OUT_DIR", "/tmp/aacc_bench");
  (void)std::system(("mkdir -p " + dir).c_str());
  std::ofstream json(dir + "/micro_exchange.json");
  json << "{\"bench\":\"micro_exchange\",\"base_bytes\":" << base_bytes
       << ",\"rounds\":" << rounds << ",\"cases\":[";
  for (std::size_t i = 0; i < comm_cases.size(); ++i) {
    const CommCase& c = comm_cases[i];
    if (i != 0) json << ',';
    json << "{\"ranks\":" << static_cast<int>(c.ranks)
         << ",\"window\":" << c.window
         << ",\"modeled_exchange_seconds\":" << c.modeled
         << ",\"modeled_speedup_vs_blocking\":" << c.speedup
         << ",\"wait_seconds_sum\":" << c.wait_sum
         << ",\"max_inflight\":" << c.max_inflight << '}';
  }
  json << "],\"engine\":{\"vertices\":" << n << ",\"ranks\":8,\"modes\":[";
  for (std::size_t i = 0; i < mode_cases.size(); ++i) {
    const ModeCase& c = mode_cases[i];
    if (i != 0) json << ',';
    json << "{\"mode\":\"" << c.mode << "\",\"rc_steps\":" << c.rc_steps
         << ",\"wall_seconds\":" << c.wall_seconds
         << ",\"exchange_wait_seconds\":" << c.exchange_wait
         << ",\"max_inflight_depth\":" << c.max_inflight
         << ",\"identical\":" << (c.identical ? "true" : "false") << '}';
  }
  json << "]},\"gate_speedup_p16_w4\":" << gate_speedup << "}\n";
  std::printf("[json] %s/micro_exchange.json\n", dir.c_str());
  return 0;
}
