// M8 micro benchmark: the tiered DV row store (DESIGN.md §"Tiered DV
// storage", EXPERIMENTS.md §M8).
//
// Part A is the residency sweep on a settled-majority workload: a
// bounded-reach island graph (chains of chorded communities, islands
// mutually unreachable — the partial-reachability shape of real large
// graphs, where most rows hold many infinite entries the cold codec
// never stores) converges under block partitioning and the pipelined
// exchange (so cold-row prefetch overlaps spill decode with in-flight
// arrivals), then small late change batches, each localized to one
// community, keep only a handful of rows active per step. Budgets sweep
// from fully resident (the oracle) down to 1/16 of the dense footprint;
// per budget the bench reports the step-boundary peak DV bytes (hot +
// cold, the dv/ gauges), the modeled makespan, the
// promotion/demotion/decode ledger, and verifies the closeness doubles
// against the oracle bit for bit. Fatal acceptance gates (ISSUE M8): some
// tiered budget must deliver
//   * >= 4x step-boundary peak DV memory reduction vs resident, at
//   * <= 10% modeled-makespan overhead (min over AACC_REPEAT runs).
//
// Part B is the memory-wall demo: a component-structured graph of
// AACC_N_BIG vertices (default one million) runs IA + RC to quiescence
// under a 64 MB/rank budget, where the dense store could not even hold
// its rows (9 * n^2 / P bytes ~ terabytes per rank at the default
// scale). Tiered IA installs fresh sweeps directly in cold form, so the
// run never materializes a dense row per source. Reports wall time, the
// peak DV bytes actually used, and the dense bytes a resident store
// would have needed.
//
// Prints tables and writes AACC_OUT_DIR/micro_dv_store.json (consumed by
// the bench-dv CI job via tools/bench_diff). Knobs: AACC_N (Part A
// vertices, default 2000), AACC_P (ranks, default 4), AACC_N_BIG (Part B
// vertices, default 1000000), AACC_REPEAT (timing repeats, default 3),
// AACC_SEED.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"

namespace {

using namespace aacc;

struct SweepCase {
  std::string label;
  std::uint64_t budget = 0;          // per-rank dv_budget_bytes (0 = resident)
  std::uint64_t peak_dv_bytes = 0;   // max over steps of hot + cold gauges
  double modeled_seconds = 0.0;
  double wall_seconds = 0.0;
  std::uint64_t promotions = 0;
  std::uint64_t demotions = 0;
  double decode_seconds = 0.0;
  bool identical = true;
};

constexpr VertexId kCommunity = 32;  ///< vertices per community
constexpr VertexId kIsland = 128;    ///< 4 chained communities per island

/// Bounded-reach workload: islands of kIsland consecutive vertices, each a
/// chain of chorded communities; islands are mutually unreachable. Dense DV
/// rows are O(n) columns regardless of reach, so the dense footprint is
/// the full 9 * n^2 / P while each row holds only ~kIsland finite entries —
/// the regime the cold codec is built for. Under block partitioning only
/// the islands straddling a rank boundary exchange cross-rank, so the
/// per-step active set stays far below the row count (the heavy
/// global-churn equivalence is covered by tests/core/dv_store_test.cpp).
Graph island_graph(VertexId n, std::uint64_t seed) {
  Rng rng(seed);
  Graph g(n);
  for (VertexId v = 1; v < n; ++v) {
    if (v % kIsland == 0) continue;  // island head: unreachable from below
    g.add_edge(v, v - 1, 1);         // community chain / inter-community bridge
    const VertexId cbase = v - (v % kCommunity);
    if (v % kCommunity >= 2) {  // preferential-ish chord inside the community
      const VertexId u =
          cbase + static_cast<VertexId>(rng.next_below(v - cbase - 1));
      if (!g.has_edge(v, u)) g.add_edge(v, u, 1);
    }
  }
  return g;
}

/// Small late change batches, each localized to one community: the
/// settled-majority regime — after initial convergence a batch dirties
/// ~kIsland rows, so almost every row stays cold across the remaining
/// steps. Generated against a working copy so the schedule never
/// double-adds or double-deletes an edge.
EventSchedule settled_majority_schedule(const Graph& g) {
  Graph work = g;
  EventSchedule sched;
  for (std::size_t b = 0; b < 6; ++b) {
    // Spread the touched communities across islands (and hence ranks).
    const VertexId base =
        static_cast<VertexId>(((7 * b + 1) * kCommunity) % g.num_vertices());
    const VertexId u = base + 1;
    const VertexId v = base + kCommunity / 2;
    EventBatch batch;
    batch.at_step = 4 + 2 * b;  // well past initial convergence
    if (work.has_edge(u, v)) {
      batch.events.push_back(EdgeDeleteEvent{u, v});
      work.remove_edge(u, v);
    } else {
      batch.events.push_back(EdgeAddEvent{u, v, 1});
      work.add_edge(u, v, 1);
    }
    sched.push_back(std::move(batch));
  }
  return sched;
}

/// One run, tracking the step-boundary peak of the DV residency gauges via
/// the progress feed (events carry the post-maintain sums over ranks).
RunResult run_tracked(const Graph& g, const EventSchedule& sched,
                      EngineConfig cfg, std::uint64_t* peak_dv_bytes) {
  std::uint64_t peak = 0;
  cfg.progress.callback = [&peak](const obs::ProgressEvent& ev) {
    peak = std::max(peak, ev.dv_resident_bytes + ev.dv_cold_bytes);
  };
  AnytimeEngine engine(g, cfg);
  RunResult r = engine.run(sched);
  *peak_dv_bytes = peak;
  return r;
}

/// Component-structured graph for the memory-wall demo: consecutive-id
/// paths of 8 vertices. Block partitioning keeps every component
/// rank-local (the rank boundary n/P is a multiple of 8 at the default
/// scale), so IA is O(n) total work, RC quiesces in a few steps, and the
/// run's footprint is all in the DV rows — which is the point.
Graph component_graph(VertexId n) {
  Graph g(n);
  for (VertexId v = 0; v + 1 < n; ++v) {
    if ((v + 1) % 8 != 0) g.add_edge(v, v + 1, 1);
  }
  return g;
}

}  // namespace

int main() {
  const auto scale = bench::read_scale(2000);
  // The sweep wants rows-per-rank large enough that residency matters;
  // default to 4 ranks rather than the harness's paper-default 16.
  const Rank P = static_cast<Rank>(env_int("AACC_P", 4));
  const auto n_big = static_cast<VertexId>(env_int("AACC_N_BIG", 1000000));
  const int repeats = std::max(1, static_cast<int>(env_int("AACC_REPEAT", 3)));

  // ---- Part A: residency sweep ---------------------------------------
  const Graph g = island_graph(scale.n, scale.seed);
  const EventSchedule sched = settled_majority_schedule(g);

  EngineConfig base;
  base.num_ranks = P;
  base.seed = scale.seed;
  // Block partitioning keeps whole islands rank-local except at the rank
  // boundaries, and the pipelined exchange is where the tentpole's
  // prefetch overlap engages: cold rows the queued repairs will touch are
  // decoded while peers' payloads are still in flight. The closeness
  // fixed point is exchange-mode-independent, and the oracle runs the
  // same mode, so the comparison stays apples to apples.
  base.dd_partitioner = PartitionerKind::kBlock;
  base.exchange_mode = ExchangeMode::kPipelined;
  base.exchange_window = 3;
  base.transport.recv_timeout = bench::watchdog_timeout();

  // Resident oracle first: its peak gauge is the dense footprint the
  // budgets are expressed against.
  SweepCase oracle;
  oracle.label = "resident";
  RunResult oracle_result;
  for (int rep = 0; rep < repeats; ++rep) {
    Timer t;
    std::uint64_t peak = 0;
    RunResult r = run_tracked(g, sched, base, &peak);
    const double wall = t.seconds();
    if (rep == 0 || r.stats.modeled_makespan_seconds < oracle.modeled_seconds) {
      oracle.modeled_seconds = r.stats.modeled_makespan_seconds;
      oracle.peak_dv_bytes = peak;
      oracle_result = std::move(r);
    }
    oracle.wall_seconds =
        rep == 0 ? wall : std::min(oracle.wall_seconds, wall);
  }
  const std::uint64_t dense_bytes = oracle.peak_dv_bytes;

  std::vector<SweepCase> cases{oracle};
  const std::pair<const char*, std::uint64_t> budgets[] = {
      {"dense/2", 2}, {"dense/4", 4}, {"dense/8", 8}, {"dense/16", 16}};
  for (const auto& [label, denom] : budgets) {
    SweepCase c;
    c.label = label;
    c.budget = std::max<std::uint64_t>(
        dense_bytes / denom / static_cast<std::uint64_t>(P),
        kMinDvBudgetBytes);
    EngineConfig cfg = base;
    cfg.dv_budget_bytes = c.budget;
    for (int rep = 0; rep < repeats; ++rep) {
      Timer t;
      std::uint64_t peak = 0;
      const RunResult r = run_tracked(g, sched, cfg, &peak);
      const double wall = t.seconds();
      if (rep == 0 || r.stats.modeled_makespan_seconds < c.modeled_seconds) {
        c.modeled_seconds = r.stats.modeled_makespan_seconds;
        c.peak_dv_bytes = peak;
        c.promotions = r.stats.dv_promotions;
        c.demotions = r.stats.dv_demotions;
        c.decode_seconds = r.stats.dv_decode_seconds;
      }
      c.wall_seconds = rep == 0 ? wall : std::min(c.wall_seconds, wall);
      c.identical = c.identical && r.closeness == oracle_result.closeness &&
                    r.harmonic == oracle_result.harmonic;
    }
    cases.push_back(std::move(c));
  }

  std::printf(
      "\n== micro_dv_store: residency sweep (n=%u, islands of %u, P=%d, %d "
      "repeats) ==\n",
      scale.n, kIsland, static_cast<int>(P), repeats);
  std::printf("%-10s %14s %12s %9s %12s %9s %10s %10s %6s\n", "series",
              "budget/rank", "peak_dv_MB", "vs_dense", "modeled_s", "wall_s",
              "promotions", "decode_ms", "ident");
  bool all_identical = true;
  double gate_reduction = 0.0;  // best reduction among cases <= 10% overhead
  double gate_overhead = 0.0;
  for (const SweepCase& c : cases) {
    const double reduction =
        c.peak_dv_bytes == 0
            ? 0.0
            : static_cast<double>(dense_bytes) /
                  static_cast<double>(c.peak_dv_bytes);
    const double overhead =
        oracle.modeled_seconds <= 0.0
            ? 0.0
            : c.modeled_seconds / oracle.modeled_seconds - 1.0;
    std::printf("%-10s %14llu %12.2f %8.2fx %12.4f %9.3f %10llu %10.2f %6s\n",
                c.label.c_str(), static_cast<unsigned long long>(c.budget),
                static_cast<double>(c.peak_dv_bytes) / 1e6, reduction,
                c.modeled_seconds, c.wall_seconds,
                static_cast<unsigned long long>(c.promotions),
                1e3 * c.decode_seconds, c.identical ? "yes" : "NO");
    all_identical = all_identical && c.identical;
    if (c.budget != 0 && overhead <= 0.10 && reduction > gate_reduction) {
      gate_reduction = reduction;
      gate_overhead = overhead;
    }
  }

  // ---- Part B: the memory wall ---------------------------------------
  const Graph big = component_graph(n_big);
  EngineConfig big_cfg;
  big_cfg.num_ranks = P;
  big_cfg.dd_partitioner = PartitionerKind::kBlock;
  big_cfg.dv_budget_bytes = 64ull << 20;  // 64 MB of hot rows per rank
  big_cfg.transport.recv_timeout = bench::watchdog_timeout();
  std::uint64_t big_peak = 0;
  Timer big_timer;
  const RunResult big_result = run_tracked(big, {}, big_cfg, &big_peak);
  const double big_wall = big_timer.seconds();
  // 9 bytes per dense DV entry (dist + next hop + flags), n rows of n cols.
  const double dense_would_need = 9.0 * static_cast<double>(n_big) *
                                  static_cast<double>(n_big);
  std::printf(
      "\n== micro_dv_store: memory wall (n=%u, P=%d, budget 64MB/rank) ==\n",
      n_big, static_cast<int>(P));
  std::printf("completed IA+RC in %.2f s over %zu rc steps\n", big_wall,
              big_result.stats.rc_steps);
  std::printf(
      "peak DV bytes: %.1f MB tiered vs %.1f GB/rank dense (%.0fx reduction)\n",
      static_cast<double>(big_peak) / 1e6,
      dense_would_need / static_cast<double>(P) / 1e9,
      dense_would_need / std::max<double>(static_cast<double>(big_peak), 1.0));

  // ---- JSON + gates ----------------------------------------------------
  const std::string dir = env_str("AACC_OUT_DIR", "/tmp/aacc_bench");
  (void)std::system(("mkdir -p " + dir).c_str());
  std::ofstream json(dir + "/micro_dv_store.json");
  json << "{\"bench\":\"micro_dv_store\",\"n\":" << scale.n
       << ",\"ranks\":" << static_cast<int>(P) << ",\"cases\":[";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const SweepCase& c = cases[i];
    if (i != 0) json << ',';
    json << "{\"series\":\"" << c.label << "\",\"budget_bytes\":" << c.budget
         << ",\"peak_dv_bytes\":" << c.peak_dv_bytes
         << ",\"modeled_seconds\":" << c.modeled_seconds
         << ",\"wall_seconds\":" << c.wall_seconds
         << ",\"promotions\":" << c.promotions
         << ",\"demotions\":" << c.demotions
         << ",\"decode_seconds\":" << c.decode_seconds
         << ",\"identical\":" << (c.identical ? "true" : "false") << '}';
  }
  json << "],\"gate_reduction\":" << gate_reduction
       << ",\"gate_overhead\":" << gate_overhead
       << ",\"memory_wall\":{\"n\":" << n_big
       << ",\"wall_seconds\":" << big_wall
       << ",\"rc_steps\":" << big_result.stats.rc_steps
       << ",\"peak_dv_bytes\":" << big_peak
       << ",\"dense_bytes_needed\":" << dense_would_need << "}}\n";
  std::printf("[json] %s/micro_dv_store.json\n", dir.c_str());

  if (!all_identical) {
    std::fprintf(stderr,
                 "FATAL: tiered closeness diverged from the resident oracle\n");
    return 1;
  }
  if (gate_reduction < 4.0) {
    std::fprintf(stderr,
                 "FATAL: best peak DV reduction within the 10%% overhead "
                 "envelope is %.2fx (< 4x gate)\n",
                 gate_reduction);
    return 1;
  }
  std::printf("gates: reduction %.2fx (>= 4x) at %.1f%% overhead (<= 10%%)\n",
              gate_reduction, 100.0 * gate_overhead);
  return 0;
}
