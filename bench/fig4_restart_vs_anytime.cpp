// Figure 4 — "Baseline Restart vs. Anytime Anywhere".
//
// Paper setup: 512 vertices added to a 50,000-vertex scale-free graph on 16
// processors, injected at recombination step RC0 / RC4 / RC8; the baseline
// restarts the whole computation, the anytime anywhere engine (with
// RoundRobin-PS) ingests the change in place.
//
// Expected shape: anytime ≪ baseline at every injection step.
// Batch sizes scale with AACC_N so the default (n=2000) keeps the paper's
// 512/50,000 change ratio.
#include "bench_util.hpp"

int main() {
  using namespace aacc;
  using namespace aacc::bench;
  const Scale s = read_scale(/*default_n=*/2000);
  const auto batch_size = static_cast<VertexId>(std::max<std::size_t>(
      8, scaled(512 * s.n / 50000, s)));

  const Graph g = base_graph(s);
  std::printf("fig4: n=%u m=%zu P=%d batch=%u (paper: 512 on 50k, P=16)\n",
              s.n, g.num_edges(), s.p, batch_size);

  Table table("fig4_restart_vs_anytime", "rc_step");
  for (const std::size_t rc : {0u, 4u, 8u}) {
    Rng rng(s.seed + rc);
    EventSchedule sched;
    sched.push_back({rc, community_vertex_batch(g, batch_size, 8, rng)});

    const EngineConfig cfg = make_cfg(s, AssignStrategy::kRoundRobin);
    table.add(measure("anytime-rr", static_cast<double>(rc), g, sched, cfg));
    table.add(measure_baseline("baseline-restart", static_cast<double>(rc), g,
                               sched, cfg));
  }
  table.print_and_save();
  return 0;
}
