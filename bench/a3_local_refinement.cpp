// Ablation A3 — local refinement strategy inside an RC step.
//
// Default: per-target label-correcting worklist. Alternative: additionally
// run the paper's boundary Floyd–Warshall pass (compose own
// distance-to-portal with the portal's cached row) each step. The FW pass
// can shorten convergence (fewer RC steps) at the price of a dense
// O(local rows × portals × n) sweep; it is additive-only (see config.hpp),
// so the workload here is static + edge/vertex additions.
#include "bench_util.hpp"

int main() {
  using namespace aacc;
  using namespace aacc::bench;
  const Scale s = read_scale(/*default_n=*/1500);
  const Graph g = base_graph(s);
  std::printf("a3: n=%u m=%zu P=%d\n", s.n, g.num_edges(), s.p);

  Table table("a3_local_refinement", "workload");
  int workload = 0;
  for (const std::size_t batch : {std::size_t{0}, scaled(64, s)}) {
    EventSchedule sched;
    if (batch > 0) {
      Rng rng(s.seed);
      sched.push_back(
          {2, community_vertex_batch(g, static_cast<VertexId>(batch), 4, rng)});
    }
    for (const auto& [name, mode] :
         std::initializer_list<std::pair<const char*, RefineMode>>{
             {"label-correcting", RefineMode::kLabelCorrecting},
             {"boundary-fw", RefineMode::kBoundaryFloydWarshall}}) {
      EngineConfig cfg = make_cfg(s, AssignStrategy::kRoundRobin);
      cfg.refine = mode;
      table.add(measure(std::string(name) + (batch > 0 ? "+adds" : "/static"),
                        workload, g, sched, cfg));
    }
    ++workload;
  }
  table.print_and_save();
  return 0;
}
