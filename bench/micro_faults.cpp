// Micro benchmark for the hardened transport (docs/FAULTS.md):
//
//   1. End-to-end engine runs under three transports — the raw PR 1 path
//      (reliable off), checksummed frames (reliable on, no faults), and
//      frames under an injected drop/duplicate/delay/corrupt storm. Reports
//      bytes_sent, the frame-header share of it, retransmits, and the
//      modeled LogGP network time, plus the overhead ratios vs the raw
//      path. Results must be bit-identical across all three.
//   2. CRC32 throughput for the checksum the frame codec runs per payload.
//
// Prints a table and writes AACC_OUT_DIR/micro_faults.json
// (schema: EXPERIMENTS.md). Knobs: AACC_N (vertices, default 600),
// AACC_P (ranks, default 4), AACC_SEED.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "runtime/serialize.hpp"

namespace {

using namespace aacc;

volatile std::uint64_t g_sink = 0;  // defeats dead-code elimination

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Runs fn() repeatedly until ~80ms have elapsed; returns ns per call.
template <typename Fn>
double time_ns(Fn&& fn) {
  for (int i = 0; i < 3; ++i) fn();
  std::size_t iters = 1;
  for (;;) {
    const double t0 = now_seconds();
    for (std::size_t i = 0; i < iters; ++i) fn();
    const double dt = now_seconds() - t0;
    if (dt >= 0.08) return dt * 1e9 / static_cast<double>(iters);
    iters = (dt <= 0.0) ? iters * 16
                        : static_cast<std::size_t>(
                              static_cast<double>(iters) * (0.1 / dt)) +
                              1;
  }
}

struct Case {
  std::string label;
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;
  std::uint64_t frame_bytes = 0;
  std::uint64_t retransmits = 0;
  double net_seconds = 0.0;
  double bytes_ratio = 1.0;  // vs the raw transport
  double net_ratio = 1.0;
  std::string stats_json;  // canonical RunStats::to_json (EXPERIMENTS.md)
};

Case run_case(const std::string& label, const Graph& g,
              const EngineConfig& cfg, const std::vector<double>& baseline) {
  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run();
  if (!baseline.empty() && r.closeness != baseline) {
    std::fprintf(stderr, "FATAL: %s changed the result\n", label.c_str());
    std::exit(1);
  }
  Case c;
  c.label = label;
  c.bytes = r.stats.total_bytes;
  c.messages = r.stats.total_messages;
  c.frame_bytes = r.stats.frame_overhead_bytes;
  c.retransmits = r.stats.retransmits;
  c.net_seconds = r.stats.modeled_network_seconds_serialized;
  c.stats_json = r.stats.to_json(/*include_steps=*/false);
  return c;
}

}  // namespace

int main() {
  const auto n = static_cast<VertexId>(env_int("AACC_N", 600));
  const auto p = static_cast<Rank>(env_int("AACC_P", 4));
  const auto seed = static_cast<std::uint64_t>(env_int("AACC_SEED", 1));

  Rng rng(seed);
  const Graph g = barabasi_albert(n, 2, rng);

  EngineConfig raw;
  raw.num_ranks = p;

  EngineConfig framed = raw;
  framed.transport.reliable = true;

  EngineConfig stormy = framed;
  stormy.transport.retry_backoff = std::chrono::microseconds(1);
  stormy.faults.seed = seed;
  stormy.faults.drop = 0.05;
  stormy.faults.duplicate = 0.02;
  stormy.faults.delay = 0.05;
  stormy.faults.corrupt = 0.05;

  std::vector<Case> cases;
  {
    AnytimeEngine engine(g, raw);
    const RunResult r = engine.run();
    Case c;
    c.label = "raw";
    c.bytes = r.stats.total_bytes;
    c.messages = r.stats.total_messages;
    c.net_seconds = r.stats.modeled_network_seconds_serialized;
    c.stats_json = r.stats.to_json(/*include_steps=*/false);
    cases.push_back(c);
    cases.push_back(run_case("framed", g, framed, r.closeness));
    cases.push_back(run_case("faulted", g, stormy, r.closeness));
  }
  for (Case& c : cases) {
    c.bytes_ratio =
        static_cast<double>(c.bytes) / static_cast<double>(cases[0].bytes);
    c.net_ratio = c.net_seconds / cases[0].net_seconds;
  }

  std::printf("\n== micro_faults (n=%u, P=%d) — identical results ==\n", n, p);
  std::printf("%9s %12s %10s %12s %8s %12s %8s %8s\n", "case", "bytes",
              "messages", "frame_bytes", "retx", "net_s", "B/B0", "t/t0");
  for (const Case& c : cases) {
    std::printf("%9s %12llu %10llu %12llu %8llu %12.6f %8.4f %8.4f\n",
                c.label.c_str(), static_cast<unsigned long long>(c.bytes),
                static_cast<unsigned long long>(c.messages),
                static_cast<unsigned long long>(c.frame_bytes),
                static_cast<unsigned long long>(c.retransmits), c.net_seconds,
                c.bytes_ratio, c.net_ratio);
  }

  // ---- MTTR: wall-clock seconds from the death declaration to the first
  // completed post-recovery RC step (RunStats::recovery_log, docs/FAULTS.md
  // §Recovery timing). The scenario is the one adoption exists for: a heavy
  // mutation batch lands after the newest snapshot, then a rank dies. The
  // rollback rung drags every rank back to the pre-batch snapshot and
  // re-ingests and re-settles the whole batch; adoption keeps the
  // survivors' settled state and re-derives only the dead shard's rows.
  // Both must still land on the fault-free values (value exactness is the
  // ladder's contract); min of repeats (noise is strictly additive).
  const Rank victim = 1;
  EventSchedule sched;
  {
    // A growth + churn batch at step 5, sized to dominate a replay: new
    // vertices ripple a distance column into every row, deletions poison
    // and re-derive transitively.
    EventBatch heavy;
    heavy.at_step = 5;
    Rng erng(seed + 1);
    const VertexId base = g.num_vertices();
    const auto grow = static_cast<VertexId>(std::max<long>(1, n / 5));
    for (VertexId i = 0; i < grow; ++i) {
      VertexAddEvent va;
      va.id = base + i;
      const VertexId span = base + i;
      const VertexId a = erng.next_below(span);
      VertexId b = erng.next_below(span);
      if (b == a) b = (b + 1) % span;
      va.edges.emplace_back(a, Weight{1});
      if (b != a) va.edges.emplace_back(b, Weight{1});
      heavy.events.push_back(std::move(va));
    }
    const auto edges = g.edges();
    std::vector<bool> picked(edges.size(), false);
    for (int i = 0; i < 40 && !edges.empty(); ++i) {
      const std::size_t e = erng.next_below(edges.size());
      if (picked[e]) continue;
      picked[e] = true;
      const auto& [u, v, w] = edges[e];
      (void)w;
      heavy.events.push_back(EdgeDeleteEvent{u, v});
    }
    sched.push_back(std::move(heavy));
  }
  std::vector<double> baseline;
  std::size_t steps = 0;
  {
    AnytimeEngine engine(g, framed);
    const RunResult r = engine.run(sched);
    baseline = r.closeness;
    steps = r.stats.rc_steps;
  }
  // Snapshot cadence 4 and a crash at the top of step 7: the newest
  // completed snapshot is step 4 (pre-batch), so the rollback replay
  // window spans the step-5 heavy ingest, its settling, and step 6. The
  // survivors, having settled all of it already, keep that work under
  // adoption and pay only the dead shard's re-derivation.
  const std::size_t late = std::min(steps - 1, std::size_t{7});
  struct Mttr {
    std::string policy;
    double seconds = 0.0;
    std::size_t at_step = 0;
  };
  std::vector<Mttr> mttr;
  constexpr int kRepeats = 5;
  for (const RecoveryPolicy policy :
       {RecoveryPolicy::kAdopt, RecoveryPolicy::kRollback}) {
    EngineConfig cfg = framed;
    cfg.recovery_policy = {{policy, 0}};
    cfg.checkpoint_every = 4;
    cfg.transport.retry_backoff = std::chrono::microseconds(1);
    cfg.faults.crashes.push_back({victim, late, rt::CrashPhase::kStepStart});
    std::vector<double> samples;
    Mttr m;
    m.policy = policy == RecoveryPolicy::kAdopt ? "adopt" : "rollback";
    for (int rep = 0; rep < kRepeats; ++rep) {
      AnytimeEngine engine(g, cfg);
      const RunResult r = engine.run(sched);
      if (r.stats.recovery_log.size() != 1 ||
          r.stats.recovery_log[0].kind != m.policy ||
          r.stats.recovery_log[0].mttr_seconds <= 0.0) {
        std::fprintf(stderr, "FATAL: %s recovery did not engage\n",
                     m.policy.c_str());
        return 1;
      }
      if (r.closeness != baseline) {
        std::fprintf(stderr, "FATAL: %s recovery changed the result\n",
                     m.policy.c_str());
        return 1;
      }
      samples.push_back(r.stats.recovery_log[0].mttr_seconds);
      m.at_step = r.stats.recovery_log[0].at_step;
    }
    // Min, not median: wall-clock interference is strictly additive, so
    // the fastest repeat is the closest estimate of the recovery's own
    // cost -- and the most stable statistic a noisy CI runner can produce.
    m.seconds = *std::min_element(samples.begin(), samples.end());
    mttr.push_back(m);
  }
  const double adopt_over_rollback = mttr[0].seconds / mttr[1].seconds;
  std::printf("mttr (crash at step %zu of %zu, min of %d): ", late, steps,
              kRepeats);
  for (const Mttr& m : mttr) {
    std::printf("%s=%.3fms ", m.policy.c_str(), 1e3 * m.seconds);
  }
  std::printf(" adopt/rollback=%.3f\n", adopt_over_rollback);
  if (mttr[0].seconds >= mttr[1].seconds) {
    std::fprintf(stderr,
                 "FATAL: adoption MTTR (%.3fms) is not below rollback "
                 "(%.3fms) — live adoption lost its reason to exist\n",
                 1e3 * mttr[0].seconds, 1e3 * mttr[1].seconds);
    return 1;
  }

  // CRC32 throughput: the per-payload cost the framed path adds twice
  // (once at the sender, once at admission).
  std::vector<std::size_t> crc_sizes{4096, 65536};
  std::vector<double> crc_gbps;
  for (const std::size_t sz : crc_sizes) {
    std::vector<std::byte> buf(sz);
    for (std::size_t i = 0; i < sz; ++i) {
      buf[i] = static_cast<std::byte>(i * 131 + 7);
    }
    const double ns = time_ns([&] { g_sink += rt::crc32(buf); });
    crc_gbps.push_back(static_cast<double>(sz) / ns);  // bytes/ns == GB/s
  }
  std::printf("crc32 throughput: ");
  for (std::size_t i = 0; i < crc_sizes.size(); ++i) {
    std::printf("%zuKiB=%.2fGB/s ", crc_sizes[i] / 1024, crc_gbps[i]);
  }
  std::printf("\n");

  const std::string dir = env_str("AACC_OUT_DIR", "/tmp/aacc_bench");
  (void)std::system(("mkdir -p " + dir).c_str());
  std::ofstream json(dir + "/micro_faults.json");
  json << "{\"bench\":\"micro_faults\",\"n\":" << n << ",\"p\":" << p
       << ",\"cases\":[";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Case& c = cases[i];
    if (i != 0) json << ',';
    json << "{\"label\":\"" << c.label << "\",\"bytes\":" << c.bytes
         << ",\"messages\":" << c.messages
         << ",\"frame_overhead_bytes\":" << c.frame_bytes
         << ",\"retransmits\":" << c.retransmits
         << ",\"modeled_network_seconds\":" << c.net_seconds
         << ",\"bytes_over_raw\":" << c.bytes_ratio
         << ",\"net_over_raw\":" << c.net_ratio;
    if (!c.stats_json.empty()) json << ",\"stats\":" << c.stats_json;
    json << '}';
  }
  json << "],\"mttr\":{\"crash_step\":" << late << ",\"rc_steps\":" << steps
       << ",\"repeats\":" << kRepeats;
  for (const Mttr& m : mttr) {
    json << ",\"" << m.policy << "_seconds\":" << m.seconds << ",\""
         << m.policy << "_at_step\":" << m.at_step;
  }
  json << ",\"adopt_over_rollback\":" << adopt_over_rollback;
  json << "},\"crc32\":[";
  for (std::size_t i = 0; i < crc_sizes.size(); ++i) {
    if (i != 0) json << ',';
    json << "{\"bytes\":" << crc_sizes[i] << ",\"gbps\":" << crc_gbps[i]
         << '}';
  }
  json << "]}\n";
  std::printf("[json] %s/micro_faults.json\n", dir.c_str());
  return 0;
}
