// Shared harness for the per-figure benchmark binaries.
//
// Every figure binary prints (a) a human-readable table mirroring the
// paper's plotted series and (b) a CSV file next to it under
// AACC_OUT_DIR (default /tmp/aacc_bench). Scale knobs:
//   AACC_N     base graph size        (default per figure)
//   AACC_P     logical processors     (default 16, the paper's count)
//   AACC_SEED  RNG seed               (default 1)
//   AACC_SCALE multiply change-batch sizes (default 1.0)
//   AACC_RECV_TIMEOUT_MS  recv watchdog for the bench configs (default 0 =
//              disabled: benches are fault-free, and the watchdog's default
//              2-minute trip can fire spuriously on oversubscribed CI boxes)
#pragma once

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graph/louvain.hpp"

namespace aacc::bench {

struct Scale {
  VertexId n;
  Rank p;
  std::uint64_t seed;
  double batch_scale;
};

inline Scale read_scale(VertexId default_n) {
  Scale s;
  s.n = static_cast<VertexId>(env_int("AACC_N", default_n));
  s.p = static_cast<Rank>(env_int("AACC_P", 16));
  s.seed = static_cast<std::uint64_t>(env_int("AACC_SEED", 1));
  s.batch_scale = env_double("AACC_SCALE", 1.0);
  return s;
}

inline std::size_t scaled(std::size_t base, const Scale& s) {
  return static_cast<std::size_t>(static_cast<double>(base) * s.batch_scale);
}

/// Base workload mirroring the paper: undirected scale-free graph.
inline Graph base_graph(const Scale& s, unsigned edges_per_vertex = 2) {
  Rng rng(s.seed);
  return barabasi_albert(s.n, edges_per_vertex, rng);
}

/// A batch of new vertices with explicit community structure, standing in
/// for the paper's "extracted from a larger graph using Pajek's Louvain":
/// we *generate* a community-structured graph among the newcomers (so that
/// CutEdge-PS has structure to exploit, exactly as in the paper's setup)
/// and attach each newcomer to the existing graph preferentially.
inline std::vector<Event> community_vertex_batch(const Graph& base,
                                                 VertexId count,
                                                 unsigned communities,
                                                 Rng& rng) {
  const VertexId n0 = base.num_vertices();
  // Degree-proportional attachment pool from the existing graph.
  std::vector<VertexId> pool;
  pool.reserve(2 * base.num_edges());
  for (const auto& [u, v, w] : base.edges()) {
    (void)w;
    pool.push_back(u);
    pool.push_back(v);
  }
  const VertexId per = std::max<VertexId>(count / communities, 2);
  std::vector<Event> events;
  events.reserve(count);
  for (VertexId i = 0; i < count; ++i) {
    VertexAddEvent ev;
    ev.id = n0 + i;
    const VertexId community_base = (i / per) * per;
    // Two intra-community edges (to the community head and the previous
    // member) plus one preferential edge into the base graph.
    if (i > community_base) {
      ev.edges.emplace_back(n0 + i - 1, 1);
      if (i > community_base + 1 && rng.next_bool(0.7)) {
        ev.edges.emplace_back(n0 + community_base, 1);
      }
    }
    ev.edges.emplace_back(pool[rng.next_below(pool.size())], 1);
    events.emplace_back(std::move(ev));
  }
  return events;
}

/// Verifies the batch construction produced real community structure
/// (used by the benches to print the modularity of the injected batch).
inline double batch_modularity(const std::vector<Event>& events, VertexId n0) {
  Graph g(static_cast<VertexId>(events.size()));
  for (const Event& e : events) {
    const auto& ev = std::get<VertexAddEvent>(e);
    for (const auto& [to, w] : ev.edges) {
      if (to >= n0) g.add_edge(ev.id - n0, to - n0, w);
    }
  }
  Rng rng(7);
  return louvain(g, rng).modularity;
}

/// One experiment measurement.
struct Row {
  std::string label;
  double x = 0;
  double wall_seconds = 0;
  double modeled_seconds = 0;
  double mbytes = 0;
  std::size_t rc_steps = 0;
  double extra = 0;    // figure-specific column (e.g. new cut edges)
  double poisons = 0;  // invalidated entries (deletion figures)
  /// Full RunStats::to_json object for the measurement (canonical schema,
  /// EXPERIMENTS.md); embedded verbatim in the per-bench JSON file.
  std::string stats_json;
};

class Table {
 public:
  Table(std::string name, std::string x_name, std::string extra_name = "")
      : name_(std::move(name)), x_(std::move(x_name)), extra_(std::move(extra_name)) {}

  void add(Row row) { rows_.push_back(std::move(row)); }

  void print_and_save() const {
    std::printf("\n== %s ==\n", name_.c_str());
    std::printf("%-16s %10s %12s %14s %10s %9s", "series", x_.c_str(),
                "wall_s", "modeled_s", "MB_sent", "rc_steps");
    if (!extra_.empty()) std::printf(" %14s", extra_.c_str());
    std::printf("\n");
    for (const Row& r : rows_) {
      std::printf("%-16s %10.0f %12.3f %14.4f %10.2f %9zu", r.label.c_str(),
                  r.x, r.wall_seconds, r.modeled_seconds, r.mbytes, r.rc_steps);
      if (!extra_.empty()) std::printf(" %14.1f", r.extra);
      std::printf("\n");
    }
    const std::string dir = env_str("AACC_OUT_DIR", "/tmp/aacc_bench");
    (void)std::system(("mkdir -p " + dir).c_str());
    std::ofstream csv(dir + "/" + name_ + ".csv");
    csv << "series," << x_ << ",wall_s,modeled_s,mbytes,rc_steps";
    if (!extra_.empty()) csv << ',' << extra_;
    csv << '\n';
    for (const Row& r : rows_) {
      csv << r.label << ',' << r.x << ',' << r.wall_seconds << ','
          << r.modeled_seconds << ',' << r.mbytes << ',' << r.rc_steps;
      if (!extra_.empty()) csv << ',' << r.extra;
      csv << '\n';
    }
    std::printf("[csv] %s/%s.csv\n", dir.c_str(), name_.c_str());

    // Machine-readable mirror of the CSV (schema: EXPERIMENTS.md).
    std::ofstream json(dir + "/" + name_ + ".json");
    json << "{\"bench\":\"" << name_ << "\",\"x_name\":\"" << x_ << "\"";
    if (!extra_.empty()) json << ",\"extra_name\":\"" << extra_ << "\"";
    json << ",\"rows\":[";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      if (i != 0) json << ',';
      json << "{\"series\":\"" << r.label << "\",\"x\":" << r.x
           << ",\"wall_s\":" << r.wall_seconds
           << ",\"modeled_s\":" << r.modeled_seconds
           << ",\"mbytes\":" << r.mbytes << ",\"rc_steps\":" << r.rc_steps
           << ",\"poisons\":" << r.poisons;
      if (!extra_.empty()) json << ",\"extra\":" << r.extra;
      if (!r.stats_json.empty()) json << ",\"stats\":" << r.stats_json;
      json << '}';
    }
    json << "]}\n";
    std::printf("[json] %s/%s.json\n", dir.c_str(), name_.c_str());
  }

 private:
  std::string name_;
  std::string x_;
  std::string extra_;
  std::vector<Row> rows_;
};

inline Row measure(const std::string& label, double x, const Graph& g,
                   const EventSchedule& sched, const EngineConfig& cfg) {
  Timer t;
  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run(sched);
  Row row;
  row.label = label;
  row.x = x;
  row.wall_seconds = t.seconds();
  row.modeled_seconds = r.stats.modeled_makespan_seconds;
  row.mbytes = static_cast<double>(r.stats.total_bytes) / 1e6;
  row.rc_steps = r.stats.rc_steps;
  row.extra = static_cast<double>(r.stats.cut_edges_final) -
              static_cast<double>(r.stats.cut_edges_initial);
  for (const StepStats& s : r.stats.steps) {
    row.poisons += static_cast<double>(s.poisons);
  }
  row.stats_json = r.stats.to_json(/*include_steps=*/false);
  return row;
}

inline Row measure_baseline(const std::string& label, double x, const Graph& g,
                            const EventSchedule& sched, const EngineConfig& cfg) {
  Timer t;
  const RunResult r = run_baseline_restart(g, sched, cfg);
  Row row;
  row.label = label;
  row.x = x;
  row.wall_seconds = t.seconds();
  row.modeled_seconds = r.stats.modeled_makespan_seconds;
  row.mbytes = static_cast<double>(r.stats.total_bytes) / 1e6;
  row.rc_steps = r.stats.rc_steps;
  row.stats_json = r.stats.to_json(/*include_steps=*/false);
  return row;
}

/// Recv-watchdog budget for bench configs: AACC_RECV_TIMEOUT_MS, default 0
/// (disabled). Benches run fault-free transports, so a watchdog trip can
/// only be a false positive from an oversubscribed machine descheduling a
/// rank thread past the default 2-minute deadline.
inline std::chrono::milliseconds watchdog_timeout() {
  return std::chrono::milliseconds(env_int("AACC_RECV_TIMEOUT_MS", 0));
}

inline EngineConfig make_cfg(const Scale& s, AssignStrategy assign) {
  EngineConfig cfg;
  cfg.num_ranks = s.p;
  cfg.seed = s.seed;
  cfg.assign = assign;
  cfg.transport.recv_timeout = watchdog_timeout();
  return cfg;
}

/// Edge-addition mode for a figure. `paper_default` is what the figure's
/// original experiment used; AACC_EAGER=0/1 overrides.
inline EdgeAddMode read_add_mode(bool paper_default_eager) {
  return env_int("AACC_EAGER", paper_default_eager ? 1 : 0) != 0
             ? EdgeAddMode::kEager
             : EdgeAddMode::kSeeded;
}

}  // namespace aacc::bench
