// Micro benchmark for the sparse dirty-set hot path (see DESIGN.md):
//
//   1. Send assembly: the seed scanned every column of every local row per
//      RC step (O(local_rows × n)); the sparse path walks only the dirty
//      list (O(dirty log dirty)). Measured head-to-head on one 50k-column
//      row at several dirty-set sizes.
//   2. Wire format: v1 fixed-width DV records vs v2 delta/varint records,
//      encoded bytes for the same entry sets.
//
// Prints a table and writes AACC_OUT_DIR/micro_dirty_path.json
// (schema: EXPERIMENTS.md). Knobs: AACC_N (columns, default 50000),
// AACC_SEED.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "core/dv_matrix.hpp"
#include "runtime/serialize.hpp"

namespace {

using namespace aacc;

volatile std::uint64_t g_sink = 0;  // defeats dead-code elimination

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Runs fn() repeatedly until ~80ms have elapsed; returns ns per call.
template <typename Fn>
double time_ns(Fn&& fn) {
  // Warm-up.
  for (int i = 0; i < 3; ++i) fn();
  std::size_t iters = 1;
  for (;;) {
    const double t0 = now_seconds();
    for (std::size_t i = 0; i < iters; ++i) fn();
    const double dt = now_seconds() - t0;
    if (dt >= 0.08) return dt * 1e9 / static_cast<double>(iters);
    iters = (dt <= 0.0) ? iters * 16
                        : static_cast<std::size_t>(
                              static_cast<double>(iters) * (0.1 / dt)) +
                              1;
  }
}

/// A row with k dirty entries at pseudo-random finite columns.
DvRow make_row(VertexId n, std::size_t k, std::uint64_t seed) {
  DvRow row(0, n);
  Rng rng(seed);
  std::size_t marked = 0;
  while (marked < k) {
    const auto t = static_cast<VertexId>(1 + rng.next_below(n - 1));
    row.set(t, static_cast<Dist>(1 + rng.next_below(200)), 1);
    if (row.mark_dirty(t)) ++marked;
  }
  return row;
}

/// The seed's send assembly: full column scan, fixed-width v1 payload.
std::vector<std::byte> assemble_dense(const DvRow& row) {
  rt::ByteWriter w;
  w.write(std::uint8_t{rt::kDvRecordV1});
  w.write(row.self());
  std::uint32_t count = 0;
  const std::size_t count_pos = w.size();
  w.write(count);
  for (VertexId t = 0; t < row.size(); ++t) {
    if (row.test_flag(t, DvRow::kDirty)) {
      w.write(t);
      w.write(row.dist(t));
      ++count;
    }
  }
  auto bytes = w.take();
  std::memcpy(bytes.data() + count_pos, &count, sizeof(count));
  return bytes;
}

/// The sparse send assembly, as exchange() runs it.
std::vector<std::byte> assemble_sparse(const DvRow& row,
                                       std::vector<VertexId>& dirty,
                                       std::vector<std::pair<VertexId, Dist>>& entries,
                                       std::uint8_t version) {
  row.sorted_dirty(dirty);
  entries.clear();
  entries.reserve(dirty.size());
  for (const VertexId t : dirty) entries.emplace_back(t, row.dist(t));
  rt::ByteWriter w;
  rt::write_dv_record(w, row.self(), entries, version);
  return w.take();
}

struct Case {
  std::size_t dirty;
  double dense_ns;
  double sparse_ns;
  double speedup;
  std::size_t v1_bytes;
  std::size_t v2_bytes;
  double bytes_ratio;
};

}  // namespace

int main() {
  const auto n = static_cast<VertexId>(env_int("AACC_N", 50000));
  const auto seed = static_cast<std::uint64_t>(env_int("AACC_SEED", 1));

  std::vector<Case> cases;
  for (const std::size_t k : {std::size_t{64}, std::size_t{1024},
                              std::size_t{8192}}) {
    if (k >= n) {
      std::fprintf(stderr, "skipping dirty=%zu: exceeds AACC_N=%u columns\n",
                   k, n);
      continue;
    }
    const DvRow row = make_row(n, k, seed);
    std::vector<VertexId> dirty;
    std::vector<std::pair<VertexId, Dist>> entries;

    Case c;
    c.dirty = k;
    c.dense_ns = time_ns([&] { g_sink += assemble_dense(row).size(); });
    c.sparse_ns = time_ns([&] {
      g_sink +=
          assemble_sparse(row, dirty, entries, rt::kDvRecordV2).size();
    });
    c.speedup = c.dense_ns / c.sparse_ns;
    c.v1_bytes =
        assemble_sparse(row, dirty, entries, rt::kDvRecordV1).size();
    c.v2_bytes =
        assemble_sparse(row, dirty, entries, rt::kDvRecordV2).size();
    c.bytes_ratio =
        static_cast<double>(c.v2_bytes) / static_cast<double>(c.v1_bytes);
    cases.push_back(c);
  }

  std::printf("\n== micro_dirty_path (n=%u columns) ==\n", n);
  std::printf("%8s %14s %14s %9s %10s %10s %8s\n", "dirty", "dense_ns",
              "sparse_ns", "speedup", "v1_bytes", "v2_bytes", "v2/v1");
  for (const Case& c : cases) {
    std::printf("%8zu %14.0f %14.0f %8.1fx %10zu %10zu %8.3f\n", c.dirty,
                c.dense_ns, c.sparse_ns, c.speedup, c.v1_bytes, c.v2_bytes,
                c.bytes_ratio);
  }

  const std::string dir = env_str("AACC_OUT_DIR", "/tmp/aacc_bench");
  (void)std::system(("mkdir -p " + dir).c_str());
  std::ofstream json(dir + "/micro_dirty_path.json");
  json << "{\"bench\":\"micro_dirty_path\",\"columns\":" << n << ",\"cases\":[";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Case& c = cases[i];
    if (i != 0) json << ',';
    json << "{\"dirty\":" << c.dirty << ",\"dense_assembly_ns\":" << c.dense_ns
         << ",\"sparse_assembly_ns\":" << c.sparse_ns
         << ",\"speedup\":" << c.speedup << ",\"v1_bytes\":" << c.v1_bytes
         << ",\"v2_bytes\":" << c.v2_bytes
         << ",\"v2_over_v1\":" << c.bytes_ratio << '}';
  }
  json << "]}\n";
  std::printf("[json] %s/micro_dirty_path.json\n", dir.c_str());
  return 0;
}
