// Figure 6 — "Vertex Additions at RC8": the Figure-5 sweep injected late in
// the analysis (recombination step 8) instead of at step 0.
//
// Expected shape: same ordering as Figure 5 — the assignment strategies win
// for small batches, Repartition-S for large ones; late injection makes the
// anytime engines pay for refinements already performed.
// Like Figure 5, the PS strategies default to the paper's eager Figure-3
// relaxation (AACC_EAGER=0 selects the optimized seeded mode).
#include "bench_util.hpp"

int main() {
  using namespace aacc;
  using namespace aacc::bench;
  const Scale s = read_scale(/*default_n=*/1200);
  const Graph g = base_graph(s);
  const EdgeAddMode mode = read_add_mode(/*paper_default_eager=*/true);
  std::printf("fig6: n=%u m=%zu P=%d add_mode=%s (paper: 50k vertices, P=16)\n",
              s.n, g.num_edges(), s.p,
              mode == EdgeAddMode::kEager ? "eager" : "seeded");

  Table table("fig6_strategies_rc8", "vertices_added", "new_cut_edges");
  for (const std::size_t paper_batch : {500u, 1500u, 3000u, 4500u, 6000u}) {
    const auto batch = static_cast<VertexId>(std::max<std::size_t>(
        8, scaled(paper_batch * s.n / 50000, s)));
    Rng rng(s.seed + paper_batch);
    EventSchedule sched;
    sched.push_back({8, community_vertex_batch(g, batch, 8, rng)});

    for (const auto& [name, strat] :
         std::initializer_list<std::pair<const char*, AssignStrategy>>{
             {"repartition-s", AssignStrategy::kRepartition},
             {"cutedge-ps", AssignStrategy::kCutEdge},
             {"roundrobin-ps", AssignStrategy::kRoundRobin}}) {
      EngineConfig cfg = make_cfg(s, strat);
      cfg.add_mode = mode;
      table.add(measure(name, static_cast<double>(batch), g, sched, cfg));
    }
  }
  table.print_and_save();
  return 0;
}
