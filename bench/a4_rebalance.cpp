// Ablation A4 — automatic rebalancing (this repository's implementation of
// the paper's stated future work: "graph rebalancing strategies to deal
// with load imbalances caused by [deletions]").
//
// Workload: delete an id-contiguous slab of vertices (hollowing out the
// block partition's first ranks), then keep analysing while a batch of new
// vertices arrives. Compares no-rebalancing against threshold-triggered
// repartitioning: final imbalance, traffic, time.
#include "bench_util.hpp"

int main() {
  using namespace aacc;
  using namespace aacc::bench;
  const Scale s = read_scale(/*default_n=*/1500);
  const Graph g = base_graph(s);
  std::printf("a4: n=%u m=%zu P=%d (extra column: final imbalance x1000)\n",
              s.n, g.num_edges(), s.p);

  // Slab deletion + later growth.
  EventSchedule sched;
  {
    EventBatch slab;
    slab.at_step = 1;
    for (VertexId v = 0; v < s.n / 4; ++v) {
      slab.events.emplace_back(VertexDeleteEvent{v});
    }
    sched.push_back(std::move(slab));
    Graph cursor = g;
    apply_schedule(cursor, sched);
    Rng rng(s.seed);
    EventBatch growth;
    growth.at_step = 4;
    growth.events = community_vertex_batch(cursor, s.n / 20, 4, rng);
    sched.push_back(std::move(growth));
  }

  Table table("a4_rebalance", "threshold", "imbalance_x1000");
  for (const double threshold : {0.0, 1.5, 1.2}) {
    EngineConfig cfg = make_cfg(s, AssignStrategy::kRoundRobin);
    cfg.dd_partitioner = PartitionerKind::kBlock;  // slab hits few ranks
    cfg.rebalance_threshold = threshold;
    Timer t;
    AnytimeEngine engine(g, cfg);
    const RunResult r = engine.run(sched);
    Row row;
    row.label = threshold == 0.0 ? "off" : "thr=" + std::to_string(threshold).substr(0, 3);
    row.x = threshold;
    row.wall_seconds = t.seconds();
    row.modeled_seconds = r.stats.modeled_makespan_seconds;
    row.mbytes = static_cast<double>(r.stats.total_bytes) / 1e6;
    row.rc_steps = r.stats.rc_steps;
    row.extra = r.stats.imbalance_final * 1000.0;
    table.add(row);
  }
  table.print_and_save();
  return 0;
}
