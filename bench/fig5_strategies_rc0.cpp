// Figure 5 — "Vertex Additions at RC0".
//
// Paper setup: batches of 500..6000 community-structured vertices (Louvain
// extracted) added at recombination step 0 of a 50,000-vertex run on 16
// processors, under Repartition-S / CutEdge-PS / RoundRobin-PS.
//
// Expected shape: RoundRobin-PS ≈ CutEdge-PS fastest for small batches;
// Repartition-S wins once the batch is large (the anywhere-update overhead
// overtakes the repartition+migration cost).
//
// The PS strategies run the paper's Figure-3 *eager* edge relaxation (the
// algorithm the original experiment used, and the source of the crossover);
// AACC_EAGER=0 switches to this library's optimized seeded mode, which
// flattens the PS curves and pushes the crossover far to the right.
#include "bench_util.hpp"

int main() {
  using namespace aacc;
  using namespace aacc::bench;
  const Scale s = read_scale(/*default_n=*/1200);
  const Graph g = base_graph(s);
  const EdgeAddMode mode = read_add_mode(/*paper_default_eager=*/true);
  std::printf("fig5: n=%u m=%zu P=%d add_mode=%s (paper: 50k vertices, P=16)\n",
              s.n, g.num_edges(), s.p,
              mode == EdgeAddMode::kEager ? "eager" : "seeded");

  Table table("fig5_strategies_rc0", "vertices_added", "new_cut_edges");
  for (const std::size_t paper_batch : {500u, 1500u, 3000u, 4500u, 6000u}) {
    const auto batch = static_cast<VertexId>(std::max<std::size_t>(
        8, scaled(paper_batch * s.n / 50000, s)));
    Rng rng(s.seed + paper_batch);
    EventSchedule sched;
    sched.push_back({0, community_vertex_batch(g, batch, 8, rng)});

    for (const auto& [name, strat] :
         std::initializer_list<std::pair<const char*, AssignStrategy>>{
             {"repartition-s", AssignStrategy::kRepartition},
             {"cutedge-ps", AssignStrategy::kCutEdge},
             {"roundrobin-ps", AssignStrategy::kRoundRobin}}) {
      EngineConfig cfg = make_cfg(s, strat);
      cfg.add_mode = mode;  // Repartition-S skips per-edge updates anyway
      table.add(measure(name, static_cast<double>(batch), g, sched, cfg));
    }
  }
  table.print_and_save();
  return 0;
}
