// M5 micro benchmark: the column-sharded parallel recombination drain
// (DESIGN.md §"Column-sharded parallel recombination drain").
//
// Runs the full engine (DD + IA + RC to quiescence) on a scale-free graph
// at several rc_threads settings and reports, per setting:
//   * drain_cpu_seconds     — CPU actually burnt inside drain() across all
//                             ranks and shard workers (the work),
//   * drain_modeled_seconds — the modeled drain makespan: serial
//                             partition/merge plus the slowest shard per
//                             step, summed over ranks' worst steps (the
//                             1-core stand-in for multicore wall time,
//                             mirroring the LogGP network model),
//   * modeled_speedup       — serial modeled drain / this modeled drain.
// Sharded runs must be bit-identical to serial; the bench asserts it on the
// closeness doubles and the step count before reporting any number.
//
// Prints a table and writes AACC_OUT_DIR/micro_rc_drain.json (schema:
// EXPERIMENTS.md §M5). Knobs: AACC_N (vertices, default 8000 — the paper
// scale is AACC_N=50000), AACC_P (ranks, default 4), AACC_SEED.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/env.hpp"
#include "common/rng.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"

namespace {

using namespace aacc;

struct Case {
  std::size_t rc_threads;
  double drain_cpu;
  double drain_modeled;
  double speedup;
  std::size_t rc_steps;
  bool identical;
};

}  // namespace

int main() {
  const auto n = static_cast<VertexId>(env_int("AACC_N", 8000));
  const auto ranks = static_cast<Rank>(env_int("AACC_P", 4));
  const auto seed = static_cast<std::uint64_t>(env_int("AACC_SEED", 1));

  Rng rng(seed);
  const Graph g = barabasi_albert(n, 3, rng);

  std::vector<Case> cases;
  std::vector<double> ref_closeness;
  double serial_modeled = 0.0;
  std::size_t ref_steps = 0;
  for (const std::size_t t : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    EngineConfig cfg;
    cfg.num_ranks = ranks;
    cfg.seed = seed;
    cfg.rc_threads = t;
    // The default 120 s recv watchdog assumes ranks progress concurrently;
    // on an oversubscribed box a large-AACC_N step keeps one rank computing
    // for longer than that while its peers block in the collective, and the
    // misfired timeout is escalated to a rank failure. Fault tolerance is
    // not under test here — the shared bench default disables the watchdog
    // (AACC_RECV_TIMEOUT_MS overrides).
    cfg.transport.recv_timeout = bench::watchdog_timeout();
    AnytimeEngine engine(g, cfg);
    const RunResult r = engine.run();

    Case c;
    c.rc_threads = t;
    c.drain_cpu = r.stats.rc_drain_cpu_seconds;
    c.drain_modeled = r.stats.rc_drain_modeled_seconds;
    c.rc_steps = r.stats.rc_steps;
    if (t == 1) {
      ref_closeness = r.closeness;
      serial_modeled = c.drain_modeled;
      ref_steps = c.rc_steps;
      c.identical = true;
    } else {
      c.identical =
          r.closeness == ref_closeness && r.stats.rc_steps == ref_steps;
    }
    c.speedup = c.drain_modeled > 0.0 ? serial_modeled / c.drain_modeled : 0.0;
    cases.push_back(c);
    if (!c.identical) {
      std::fprintf(stderr,
                   "FATAL: rc_threads=%zu diverged from the serial drain\n", t);
      return 1;
    }
  }

  // ---- tracing-overhead section (CI gate, docs/OBSERVABILITY.md) ----
  // There is no un-instrumented binary to compare against, so the
  // "disabled" overhead is measured as reproducibility of trace-off runs:
  // if the null-track branches cost anything measurable, the drain CPU
  // could not reproduce within the gate. The metric is
  // rc_drain_cpu_seconds — thread-CPU spent inside drain() — which is
  // immune to wall-clock scheduler noise; the spread is taken between the
  // two fastest of five runs (benchstat-style), because a single
  // preempted run would otherwise dominate (max-min) with cache-eviction
  // noise that has nothing to do with the hooks. enabled_overhead_pct
  // compares the best trace-on run against the best trace-off run.
  const auto traced_run = [&](bool trace_on) {
    EngineConfig cfg;
    cfg.num_ranks = ranks;
    cfg.seed = seed;
    cfg.rc_threads = 2;
    cfg.transport.recv_timeout = bench::watchdog_timeout();
    cfg.trace.enabled = trace_on;
    // Trace-on runs carry the full observability cost, flow stamping
    // included, so the enabled/disabled gates cover the stamped wire
    // format too (docs/OBSERVABILITY.md §Causal flows).
    cfg.trace.flow_stamping = trace_on;
    AnytimeEngine engine(g, cfg);
    return engine.run().stats.rc_drain_cpu_seconds;
  };
  std::vector<double> off;
  for (int i = 0; i < 5; ++i) off.push_back(traced_run(false));
  std::sort(off.begin(), off.end());
  const double off_min = off[0];
  const double off_second = off[1];
  double on_min = 0.0;
  for (int i = 0; i < 2; ++i) {
    const double c = traced_run(true);
    on_min = i == 0 ? c : std::min(on_min, c);
  }
  const double disabled_overhead_pct =
      off_min > 0.0 ? 100.0 * (off_second - off_min) / off_min : 0.0;
  const double enabled_overhead_pct =
      off_min > 0.0 ? 100.0 * std::max(0.0, on_min - off_min) / off_min : 0.0;

  // ---- progress-feed overhead section (report-only, EXPERIMENTS.md §M6) --
  // Same methodology as the trace section: the feed disabled is a single
  // boolean test per step (covered by the trace-off spread above, since
  // those runs have the feed off too); enabled adds one bounded gather per
  // RC step plus estimator work on the driver, measured on drain CPU
  // against the best feed-off run. Not a CI gate — the enabled cost is an
  // honest feature cost, not an instrumentation leak.
  std::uint64_t progress_events = 0;
  const auto progress_run = [&] {
    EngineConfig cfg;
    cfg.num_ranks = ranks;
    cfg.seed = seed;
    cfg.rc_threads = 2;
    cfg.transport.recv_timeout = bench::watchdog_timeout();
    progress_events = 0;
    cfg.progress.callback = [&](const obs::ProgressEvent&) {
      ++progress_events;
    };
    AnytimeEngine engine(g, cfg);
    return engine.run().stats.rc_drain_cpu_seconds;
  };
  double prog_min = 0.0;
  for (int i = 0; i < 2; ++i) {
    const double c = progress_run();
    prog_min = i == 0 ? c : std::min(prog_min, c);
  }
  const double progress_overhead_pct =
      off_min > 0.0 ? 100.0 * std::max(0.0, prog_min - off_min) / off_min : 0.0;

  std::printf("\n== micro_rc_drain (n=%u vertices, P=%d ranks) ==\n", n, ranks);
  std::printf("%10s %9s %15s %19s %9s %10s\n", "rc_threads", "rc_steps",
              "drain_cpu_s", "drain_modeled_s", "speedup", "identical");
  for (const Case& c : cases) {
    std::printf("%10zu %9zu %15.3f %19.3f %8.2fx %10s\n", c.rc_threads,
                c.rc_steps, c.drain_cpu, c.drain_modeled, c.speedup,
                c.identical ? "yes" : "NO");
  }
  std::printf("trace overhead: disabled %.2f%% (spread of 2 fastest of 5 off"
              " runs), enabled %.2f%% (drain CPU, best off vs best of 2 on)\n",
              disabled_overhead_pct, enabled_overhead_pct);
  std::printf("progress feed:  enabled %.2f%% drain CPU (%llu events/run; "
              "disabled cost is the boolean-test spread above)\n",
              progress_overhead_pct,
              static_cast<unsigned long long>(progress_events));

  const std::string dir = env_str("AACC_OUT_DIR", "/tmp/aacc_bench");
  (void)std::system(("mkdir -p " + dir).c_str());
  std::ofstream json(dir + "/micro_rc_drain.json");
  json << "{\"bench\":\"micro_rc_drain\",\"vertices\":" << n
       << ",\"ranks\":" << static_cast<int>(ranks) << ",\"cases\":[";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Case& c = cases[i];
    if (i != 0) json << ',';
    json << "{\"rc_threads\":" << c.rc_threads << ",\"rc_steps\":" << c.rc_steps
         << ",\"drain_cpu_seconds\":" << c.drain_cpu
         << ",\"drain_modeled_seconds\":" << c.drain_modeled
         << ",\"modeled_speedup\":" << c.speedup
         << ",\"identical\":" << (c.identical ? "true" : "false") << '}';
  }
  json << "],\"trace_overhead\":{\"drain_cpu_off_min\":" << off_min
       << ",\"drain_cpu_off_second\":" << off_second
       << ",\"drain_cpu_on_min\":" << on_min
       << ",\"disabled_overhead_pct\":" << disabled_overhead_pct
       << ",\"enabled_overhead_pct\":" << enabled_overhead_pct
       << "},\"progress_overhead\":{\"drain_cpu_on_min\":" << prog_min
       << ",\"enabled_overhead_pct\":" << progress_overhead_pct
       << ",\"events_per_run\":" << progress_events << "}}\n";
  std::printf("[json] %s/micro_rc_drain.json\n", dir.c_str());
  return 0;
}
