// E1 — Edge additions: baseline restart vs anytime anywhere (the companion
// paper [9]'s evaluation design, which the title paper builds on).
//
// Sweeps the number of edges added at RC0/RC4/RC8 and compares the
// incremental edge-addition algorithm against full restart; also contrasts
// the seeded and the paper-faithful eager relaxation modes (Figure 3).
//
// Expected shape: anytime ≪ restart everywhere; eager does strictly more
// relaxation work per edge than seeded at identical results.
#include "bench_util.hpp"

namespace {

aacc::EventSchedule edge_add_schedule(const aacc::Graph& g, std::size_t count,
                                      std::size_t at_step, aacc::Rng& rng) {
  using namespace aacc;
  EventSchedule sched;
  EventBatch batch;
  batch.at_step = at_step;
  Graph probe = g;
  while (batch.events.size() < count) {
    const auto u = static_cast<VertexId>(rng.next_below(g.num_vertices()));
    const auto v = static_cast<VertexId>(rng.next_below(g.num_vertices()));
    if (u == v || probe.has_edge(u, v)) continue;
    probe.add_edge(u, v, 1);
    batch.events.emplace_back(EdgeAddEvent{u, v, 1});
  }
  sched.push_back(std::move(batch));
  return sched;
}

}  // namespace

int main() {
  using namespace aacc;
  using namespace aacc::bench;
  const Scale s = read_scale(/*default_n=*/2000);
  const Graph g = base_graph(s);
  std::printf("e1: n=%u m=%zu P=%d, edge additions at RC0/RC4/RC8\n", s.n,
              g.num_edges(), s.p);

  Table table("e1_edge_additions", "edges_added");
  for (const std::size_t count :
       {scaled(32, s), scaled(128, s), scaled(512, s)}) {
    for (const std::size_t rc : {0u, 4u, 8u}) {
      Rng rng(s.seed + count * 31 + rc);
      const auto sched = edge_add_schedule(g, count, rc, rng);

      EngineConfig cfg = make_cfg(s, AssignStrategy::kRoundRobin);
      const std::string suffix = "@rc" + std::to_string(rc);
      table.add(measure("seeded" + suffix, static_cast<double>(count), g,
                        sched, cfg));
      cfg.add_mode = EdgeAddMode::kEager;
      table.add(measure("eager" + suffix, static_cast<double>(count), g, sched,
                        cfg));
      if (rc == 0) {
        table.add(measure_baseline("restart", static_cast<double>(count), g,
                                   sched, cfg));
      }
    }
  }
  table.print_and_save();
  return 0;
}
