// Figure 7 — "Number of New Cut-Edges".
//
// Same sweep as Figure 5, but the reported metric is the number of new
// cut-edges each strategy introduces (the communication-imbalance proxy).
//
// Expected shape: Repartition-S < CutEdge-PS < RoundRobin-PS, with the gap
// growing in the batch size.
#include "bench_util.hpp"

int main() {
  using namespace aacc;
  using namespace aacc::bench;
  const Scale s = read_scale(/*default_n=*/2000);
  const Graph g = base_graph(s);
  std::printf("fig7: n=%u m=%zu P=%d (metric: new cut edges)\n", s.n,
              g.num_edges(), s.p);

  Table table("fig7_cut_edges", "vertices_added", "new_cut_edges");
  for (const std::size_t paper_batch : {500u, 1500u, 3000u, 4500u, 6000u}) {
    const auto batch = static_cast<VertexId>(std::max<std::size_t>(
        8, scaled(paper_batch * s.n / 50000, s)));
    Rng rng(s.seed + paper_batch);
    EventSchedule sched;
    const auto events = community_vertex_batch(g, batch, 8, rng);
    std::printf("  batch %u: internal modularity %.3f\n", batch,
                batch_modularity(events, g.num_vertices()));
    sched.push_back({0, events});

    for (const auto& [name, strat] :
         std::initializer_list<std::pair<const char*, AssignStrategy>>{
             {"repartition-s", AssignStrategy::kRepartition},
             {"cutedge-ps", AssignStrategy::kCutEdge},
             {"roundrobin-ps", AssignStrategy::kRoundRobin}}) {
      table.add(measure(name, static_cast<double>(batch), g, sched,
                        make_cfg(s, strat)));
    }
  }
  table.print_and_save();
  return 0;
}
