// Generator properties: sizes, determinism, structural regimes.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/metrics.hpp"

namespace aacc {
namespace {

TEST(BarabasiAlbert, SizeAndConnectivity) {
  Rng rng(1);
  const Graph g = barabasi_albert(500, 3, rng);
  EXPECT_EQ(g.num_vertices(), 500u);
  EXPECT_TRUE(is_connected(g));
  // seed clique (4 choose 2) + 3 per subsequent vertex
  EXPECT_EQ(g.num_edges(), 6u + 3u * (500u - 4u));
}

TEST(BarabasiAlbert, DeterministicGivenSeed) {
  Rng a(42);
  Rng b(42);
  const Graph ga = barabasi_albert(200, 2, a);
  const Graph gb = barabasi_albert(200, 2, b);
  EXPECT_EQ(ga.edges(), gb.edges());
  Rng c(43);
  const Graph gc = barabasi_albert(200, 2, c);
  EXPECT_NE(ga.edges(), gc.edges());
}

TEST(BarabasiAlbert, HeavyTailedDegrees) {
  Rng rng(7);
  const Graph g = barabasi_albert(3000, 2, rng);
  const auto hist = degree_histogram(g);
  // A hub far above the mean degree must exist.
  EXPECT_GT(hist.size(), 40u) << "max degree too small for scale-free";
  // MLE exponent in the usual BA band (theory: 3, finite-size estimates
  // land roughly in [2, 3.6]).
  const double alpha = power_law_alpha_mle(g, 4);
  EXPECT_GT(alpha, 1.8);
  EXPECT_LT(alpha, 4.0);
}

TEST(ErdosRenyi, ExactEdgeCount) {
  Rng rng(5);
  const Graph g = erdos_renyi(300, 900, rng);
  EXPECT_EQ(g.num_edges(), 900u);
  EXPECT_EQ(g.num_vertices(), 300u);
}

TEST(ErdosRenyi, WeightsInRange) {
  Rng rng(6);
  const Graph g = erdos_renyi(100, 300, rng, WeightRange{2, 9});
  for (const auto& [u, v, w] : g.edges()) {
    EXPECT_GE(w, 2u);
    EXPECT_LE(w, 9u);
  }
}

TEST(WattsStrogatz, RingWithoutRewiringIsRegular) {
  Rng rng(3);
  const Graph g = watts_strogatz(50, 2, 0.0, rng);
  for (VertexId v = 0; v < 50; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_TRUE(is_connected(g));
}

TEST(WattsStrogatz, RewiringKeepsEdgeCount) {
  Rng rng(4);
  const Graph g = watts_strogatz(200, 3, 0.3, rng);
  EXPECT_EQ(g.num_edges(), 600u);
}

TEST(PlantedPartition, CommunityDensityContrast) {
  Rng rng(8);
  const Graph g = planted_partition(200, 4, 0.30, 0.01, rng);
  std::size_t internal = 0;
  std::size_t external = 0;
  for (const auto& [u, v, w] : g.edges()) {
    (void)w;
    (u % 4 == v % 4 ? internal : external) += 1;
  }
  // Within-community pairs are 4x rarer but 30x likelier: internal edges
  // must clearly dominate.
  EXPECT_GT(internal, 3 * external);
}

TEST(ConnectComponents, MakesGraphConnected) {
  Rng rng(9);
  Graph g = erdos_renyi(200, 120, rng);  // far below connectivity threshold
  ASSERT_FALSE(is_connected(g));
  connect_components(g, rng);
  EXPECT_TRUE(is_connected(g));
}

}  // namespace
}  // namespace aacc
