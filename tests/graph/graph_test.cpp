// Unit tests for the mutable Graph container.
#include <gtest/gtest.h>

#include "graph/csr.hpp"
#include "graph/graph.hpp"

namespace aacc {
namespace {

TEST(Graph, StartsEmpty) {
  Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.num_alive(), 0u);
}

TEST(Graph, AddVertexAssignsDenseIds) {
  Graph g(2);
  EXPECT_EQ(g.add_vertex(), 2u);
  EXPECT_EQ(g.add_vertex(), 3u);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_alive(), 4u);
}

TEST(Graph, AddEdgeIsUndirected) {
  Graph g(3);
  g.add_edge(0, 1, 5);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_EQ(g.edge_weight(0, 1), 5u);
  EXPECT_EQ(g.edge_weight(1, 0), 5u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(Graph, RejectsSelfLoopDuplicateAndZeroWeight) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(0, 0), std::logic_error);
  EXPECT_THROW(g.add_edge(1, 0), std::logic_error);
  EXPECT_THROW(g.add_edge(1, 2, 0), std::logic_error);
}

TEST(Graph, RemoveEdge) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.remove_edge(0, 1);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_THROW(g.remove_edge(0, 1), std::logic_error);
}

TEST(Graph, SetWeight) {
  Graph g(2);
  g.add_edge(0, 1, 3);
  EXPECT_EQ(g.set_weight(0, 1, 7), 3u);
  EXPECT_EQ(g.edge_weight(1, 0), 7u);
  EXPECT_THROW(g.set_weight(0, 1, 0), std::logic_error);
}

TEST(Graph, RemoveVertexTombstonesAndDropsEdges) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  g.remove_vertex(1);
  EXPECT_FALSE(g.is_alive(1));
  EXPECT_EQ(g.num_alive(), 3u);
  EXPECT_EQ(g.num_vertices(), 4u);  // id space is stable
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.degree(0), 0u);
  EXPECT_THROW(g.remove_vertex(1), std::logic_error);
  EXPECT_THROW(g.add_edge(0, 1), std::logic_error);
}

TEST(Graph, EdgesListsEachEdgeOnce) {
  Graph g(4);
  g.add_edge(0, 1, 2);
  g.add_edge(2, 1, 3);
  g.add_edge(3, 0, 4);
  const auto edges = g.edges();
  EXPECT_EQ(edges.size(), 3u);
  for (const auto& [u, v, w] : edges) {
    EXPECT_LT(u, v);
    EXPECT_EQ(g.edge_weight(u, v), w);
  }
}

TEST(Graph, AliveVerticesSkipsTombstones) {
  Graph g(5);
  g.remove_vertex(2);
  const auto alive = g.alive_vertices();
  EXPECT_EQ(alive, (std::vector<VertexId>{0, 1, 3, 4}));
}

TEST(Csr, MirrorsAdjacency) {
  Graph g(4);
  g.add_edge(0, 1, 2);
  g.add_edge(0, 2, 3);
  g.add_edge(2, 3, 1);
  const CsrGraph csr(g);
  EXPECT_EQ(csr.num_vertices(), 4u);
  EXPECT_EQ(csr.num_directed_edges(), 6u);
  EXPECT_EQ(csr.degree(0), 2u);
  EXPECT_EQ(csr.degree(3), 1u);
  // Every (target, weight) in the CSR must exist in the graph.
  for (VertexId v = 0; v < 4; ++v) {
    for (std::size_t i = csr.begin(v); i < csr.end(v); ++i) {
      EXPECT_TRUE(g.has_edge(v, csr.target(i)));
      EXPECT_EQ(g.edge_weight(v, csr.target(i)), csr.weight(i));
    }
  }
}

}  // namespace
}  // namespace aacc
