// Structural metrics: k-core, assortativity, diameter bound, components.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/metrics.hpp"

namespace aacc {
namespace {

TEST(KCore, CliquePlusTail) {
  // 4-clique (core 3) with a pendant path (cores 1).
  Graph g(6);
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = u + 1; v < 4; ++v) g.add_edge(u, v);
  }
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  const auto core = k_core(g);
  for (VertexId v = 0; v < 4; ++v) EXPECT_EQ(core[v], 3u) << v;
  EXPECT_EQ(core[4], 1u);
  EXPECT_EQ(core[5], 1u);
}

TEST(KCore, CycleIsTwoCore) {
  Graph g(5);
  for (VertexId v = 0; v < 5; ++v) g.add_edge(v, (v + 1) % 5);
  const auto core = k_core(g);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(core[v], 2u);
}

TEST(KCore, TombstonesGetZero) {
  Graph g(3);
  g.add_edge(0, 1);
  g.remove_vertex(2);
  const auto core = k_core(g);
  EXPECT_EQ(core[2], 0u);
  EXPECT_EQ(core[0], 1u);
}

TEST(Assortativity, StarIsMaximallyDisassortative) {
  Graph g(6);
  for (VertexId v = 1; v < 6; ++v) g.add_edge(0, v);
  EXPECT_NEAR(degree_assortativity(g), -1.0, 1e-9);
}

TEST(Assortativity, RegularGraphIsDegenerate) {
  Graph g(6);
  for (VertexId v = 0; v < 6; ++v) g.add_edge(v, (v + 1) % 6);
  EXPECT_DOUBLE_EQ(degree_assortativity(g), 0.0);  // zero variance
}

TEST(Assortativity, BaIsNonPositive) {
  Rng rng(3);
  const Graph g = barabasi_albert(1500, 2, rng);
  EXPECT_LT(degree_assortativity(g), 0.05);
}

TEST(DiameterBound, PathGraphExact) {
  Graph g(30);
  for (VertexId v = 0; v + 1 < 30; ++v) g.add_edge(v, v + 1);
  Rng rng(1);
  EXPECT_EQ(diameter_lower_bound(g, rng), 29u);
}

TEST(DiameterBound, GridMatchesManhattan) {
  Rng rng(2);
  const Graph g = grid2d(6, 9, rng);
  Rng r2(3);
  EXPECT_EQ(diameter_lower_bound(g, r2, 6), 5u + 8u);
}

TEST(DiameterBound, EmptyGraphIsZero) {
  Graph g(0);
  Rng rng(1);
  EXPECT_EQ(diameter_lower_bound(g, rng), 0u);
}

TEST(Rmat, SizesAndSkew) {
  Rng rng(7);
  const Graph g = rmat(10, 4000, 0.57, 0.19, 0.19, rng);
  EXPECT_EQ(g.num_vertices(), 1024u);
  EXPECT_EQ(g.num_edges(), 4000u);
  const auto hist = degree_histogram(g);
  EXPECT_GT(hist.size(), 30u);  // heavy tail
}

TEST(Rmat, Deterministic) {
  Rng a(9);
  Rng b(9);
  EXPECT_EQ(rmat(8, 600, 0.57, 0.19, 0.19, a).edges(),
            rmat(8, 600, 0.57, 0.19, 0.19, b).edges());
}

TEST(Grid2d, StructureAndDegrees) {
  Rng rng(4);
  const Graph g = grid2d(4, 5, rng);
  EXPECT_EQ(g.num_vertices(), 20u);
  EXPECT_EQ(g.num_edges(), 4u * 4u + 3u * 5u);  // horizontal + vertical
  EXPECT_EQ(g.degree(0), 2u);                   // corner
  EXPECT_EQ(g.degree(6), 4u);                   // interior
  EXPECT_TRUE(is_connected(g));
}

TEST(ClusteringCoefficient, TriangleVsStar) {
  Graph tri(3);
  tri.add_edge(0, 1);
  tri.add_edge(1, 2);
  tri.add_edge(2, 0);
  Rng rng(5);
  EXPECT_DOUBLE_EQ(clustering_coefficient(tri, rng, 100), 1.0);

  Graph star(5);
  for (VertexId v = 1; v < 5; ++v) star.add_edge(0, v);
  Rng rng2(6);
  EXPECT_DOUBLE_EQ(clustering_coefficient(star, rng2, 100), 0.0);
}

}  // namespace
}  // namespace aacc
