// Louvain community detection: planted communities must be recovered and
// modularity must behave.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/louvain.hpp"

namespace aacc {
namespace {

TEST(Modularity, SingleCommunityIsZero) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const std::vector<VertexId> all_same(4, 0);
  EXPECT_NEAR(modularity(g, all_same), 0.0, 1e-12);
}

TEST(Modularity, PerfectSplitOfTwoCliques) {
  Graph g(6);
  for (VertexId u = 0; u < 3; ++u) {
    for (VertexId v = u + 1; v < 3; ++v) g.add_edge(u, v);
  }
  for (VertexId u = 3; u < 6; ++u) {
    for (VertexId v = u + 1; v < 6; ++v) g.add_edge(u, v);
  }
  g.add_edge(2, 3);  // single bridge
  const std::vector<VertexId> split{0, 0, 0, 1, 1, 1};
  // Two dense blocks: modularity close to 0.5 - small bridge penalty.
  EXPECT_GT(modularity(g, split), 0.35);
}

TEST(Louvain, RecoversPlantedCommunities) {
  Rng grng(21);
  const unsigned k = 4;
  const Graph g = planted_partition(240, k, 0.25, 0.005, grng);
  Rng lrng(5);
  const LouvainResult res = louvain(g, lrng);
  EXPECT_GE(res.num_communities, k - 1);
  EXPECT_GT(res.modularity, 0.5);
  // Pairs from the same planted block should mostly share a community.
  std::size_t agree = 0;
  std::size_t total = 0;
  for (VertexId u = 0; u < g.num_vertices(); u += 7) {
    for (VertexId v = u + k; v < g.num_vertices(); v += 7) {
      if (u % k != v % k) continue;
      ++total;
      agree += res.community[u] == res.community[v];
    }
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(total), 0.8);
}

TEST(Louvain, ModularityMatchesStandaloneComputation) {
  Rng grng(3);
  const Graph g = planted_partition(120, 3, 0.3, 0.02, grng);
  Rng lrng(9);
  const LouvainResult res = louvain(g, lrng);
  EXPECT_NEAR(res.modularity, modularity(g, res.community), 1e-9);
}

TEST(Louvain, CommunityIdsAreDense) {
  Rng grng(4);
  const Graph g = planted_partition(90, 3, 0.3, 0.02, grng);
  Rng lrng(2);
  const LouvainResult res = louvain(g, lrng);
  std::vector<bool> seen(res.num_communities, false);
  for (const VertexId c : res.community) {
    ASSERT_LT(c, res.num_communities);
    seen[c] = true;
  }
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(Louvain, DeterministicGivenSeed) {
  Rng grng(6);
  const Graph g = planted_partition(150, 3, 0.25, 0.02, grng);
  Rng a(77);
  Rng b(77);
  EXPECT_EQ(louvain(g, a).community, louvain(g, b).community);
}

}  // namespace
}  // namespace aacc
