// Round-trip tests for all three on-disk formats.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace aacc {
namespace {

Graph fixture() {
  Rng rng(11);
  return erdos_renyi(60, 150, rng, WeightRange{1, 7});
}

bool same_graph(const Graph& a, const Graph& b) {
  if (a.num_vertices() != b.num_vertices() || a.num_edges() != b.num_edges()) {
    return false;
  }
  for (const auto& [u, v, w] : a.edges()) {
    if (!b.has_edge(u, v) || b.edge_weight(u, v) != w) return false;
  }
  return true;
}

TEST(IoEdgeList, RoundTrip) {
  const Graph g = fixture();
  std::stringstream ss;
  write_edge_list(g, ss);
  const Graph h = read_edge_list(ss);
  EXPECT_TRUE(same_graph(g, h));
}

TEST(IoEdgeList, DefaultWeightAndComments) {
  std::stringstream ss("# comment\n0 1\n1 2 5\n");
  const Graph g = read_edge_list(ss);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.edge_weight(0, 1), 1u);
  EXPECT_EQ(g.edge_weight(1, 2), 5u);
}

TEST(IoMetis, RoundTrip) {
  const Graph g = fixture();
  std::stringstream ss;
  write_metis(g, ss);
  const Graph h = read_metis(ss);
  EXPECT_TRUE(same_graph(g, h));
}

TEST(IoMetis, RejectsCorruptHeader) {
  std::stringstream ss("not a header\n");
  EXPECT_THROW(read_metis(ss), std::logic_error);
}

TEST(IoMetis, EdgeCountMismatchDetected) {
  std::stringstream ss("2 5 1\n2 1\n1 1\n");  // header claims 5 edges, has 1
  EXPECT_THROW(read_metis(ss), std::logic_error);
}

TEST(IoPajek, RoundTrip) {
  const Graph g = fixture();
  std::stringstream ss;
  write_pajek(g, ss);
  const Graph h = read_pajek(ss);
  EXPECT_TRUE(same_graph(g, h));
}

TEST(IoPajek, ParsesVertexLabels) {
  std::stringstream ss(
      "*Vertices 3\n1 \"a\"\n2 \"b\"\n3 \"c\"\n*Edges\n1 2 2.0\n2 3\n");
  const Graph g = read_pajek(ss);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.edge_weight(0, 1), 2u);
  EXPECT_EQ(g.edge_weight(1, 2), 1u);
}

TEST(IoFiles, ExtensionDispatch) {
  const Graph g = fixture();
  for (const char* name : {"/tmp/aacc_io_test.txt", "/tmp/aacc_io_test.graph",
                           "/tmp/aacc_io_test.net"}) {
    save_graph(g, name);
    const Graph h = load_graph(name);
    EXPECT_TRUE(same_graph(g, h)) << name;
  }
}

TEST(IoFiles, MissingFileThrows) {
  EXPECT_THROW(load_graph("/tmp/definitely_missing_aacc.txt"), std::logic_error);
}


TEST(IoDimacs, RoundTrip) {
  const Graph g = fixture();
  std::stringstream ss;
  write_dimacs(g, ss);
  const Graph h = read_dimacs(ss);
  EXPECT_TRUE(same_graph(g, h));
}

TEST(IoDimacs, ParsesCommentsAndHeader) {
  std::stringstream ss("c a comment\np sp 3 2\na 1 2 4\na 2 3 1\n");
  const Graph g = read_dimacs(ss);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.edge_weight(0, 1), 4u);
  EXPECT_EQ(g.edge_weight(1, 2), 1u);
}

TEST(IoDimacs, MissingHeaderThrows) {
  std::stringstream ss("a 1 2 3\n");
  EXPECT_THROW(read_dimacs(ss), std::logic_error);
}

TEST(IoDimacs, FileDispatch) {
  const Graph g = fixture();
  save_graph(g, "/tmp/aacc_io_test.gr");
  EXPECT_TRUE(same_graph(g, load_graph("/tmp/aacc_io_test.gr")));
}
}  // namespace
}  // namespace aacc
