// Common kernel: saturating distance arithmetic, checked asserts, RNG
// distribution sanity, env knobs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "common/check.hpp"
#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace aacc {
namespace {

TEST(DistAdd, FiniteSums) {
  EXPECT_EQ(dist_add(2, 3), 5u);
  EXPECT_EQ(dist_add(0, 0), 0u);
}

TEST(DistAdd, InfinityAbsorbs) {
  EXPECT_EQ(dist_add(kInfDist, 1), kInfDist);
  EXPECT_EQ(dist_add(1, kInfDist), kInfDist);
  EXPECT_EQ(dist_add(kInfDist, kInfDist), kInfDist);
}

TEST(DistAdd, OverflowSaturates) {
  const Dist big = kInfDist - 1;
  EXPECT_EQ(dist_add(big, big), kInfDist);
  EXPECT_EQ(dist_add(big, 1), kInfDist);
  EXPECT_EQ(dist_add(big, 0), big);
}

TEST(Check, ThrowsWithMessage) {
  try {
    AACC_CHECK_MSG(1 == 2, "context " << 42);
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("context 42"), std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  AACC_CHECK(1 + 1 == 2);
  AACC_CHECK_MSG(true, "never shown");
  SUCCEED();
}

TEST(Rng, DeterministicStreams) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng c(8);
  Rng d(7);
  bool all_same = true;
  for (int i = 0; i < 10; ++i) all_same &= (c.next_u64() == d.next_u64());
  EXPECT_FALSE(all_same);
}

TEST(Rng, NextBelowInRangeAndCoversValues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(4);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, UniformityChiSquare) {
  // 10 buckets, 20k draws: chi^2 with 9 dof; 99.9th percentile ~ 27.9.
  Rng rng(5);
  const int buckets = 10;
  const int draws = 20000;
  std::vector<int> count(buckets, 0);
  for (int i = 0; i < draws; ++i) ++count[rng.next_below(buckets)];
  const double expected = static_cast<double>(draws) / buckets;
  double chi2 = 0;
  for (const int c : count) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 27.9);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(6);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NextInInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.next_in(3, 5);
    ASSERT_GE(v, 3u);
    ASSERT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Env, ReadsAndDefaults) {
  ::setenv("AACC_TEST_INT", "42", 1);
  ::setenv("AACC_TEST_DBL", "2.5", 1);
  ::setenv("AACC_TEST_STR", "hello", 1);
  EXPECT_EQ(env_int("AACC_TEST_INT", 7), 42);
  EXPECT_DOUBLE_EQ(env_double("AACC_TEST_DBL", 1.0), 2.5);
  EXPECT_EQ(env_str("AACC_TEST_STR", "x"), "hello");
  EXPECT_EQ(env_int("AACC_TEST_MISSING", 7), 7);
  EXPECT_DOUBLE_EQ(env_double("AACC_TEST_MISSING", 1.5), 1.5);
  EXPECT_EQ(env_str("AACC_TEST_MISSING", "dflt"), "dflt");
  ::setenv("AACC_TEST_EMPTY", "", 1);
  EXPECT_EQ(env_int("AACC_TEST_EMPTY", 9), 9);
}

}  // namespace
}  // namespace aacc
