// Shared helpers for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "analysis/shortest_paths.hpp"
#include "common/rng.hpp"
#include "core/engine.hpp"
#include "core/events.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace aacc::test {

/// Connected scale-free test graph.
inline Graph make_ba(VertexId n, unsigned m, std::uint64_t seed,
                     WeightRange wr = {}) {
  Rng rng(seed);
  return barabasi_albert(n, m, rng, wr);
}

/// Connected Erdős–Rényi test graph.
inline Graph make_er(VertexId n, std::size_t m, std::uint64_t seed,
                     WeightRange wr = {}) {
  Rng rng(seed);
  Graph g = erdos_renyi(n, m, rng, wr);
  connect_components(g, rng, wr);
  return g;
}

/// Asserts that the engine's converged APSP equals the sequential reference
/// on the given (already mutated) graph, entry for entry.
inline void expect_apsp_exact(const Graph& truth, const RunResult& result) {
  ASSERT_TRUE(!result.apsp.empty()) << "run must use cfg.gather_apsp";
  const auto ref = apsp_reference(truth);
  ASSERT_EQ(ref.size(), result.apsp.size());
  std::size_t mismatches = 0;
  for (VertexId u = 0; u < ref.size() && mismatches < 10; ++u) {
    for (VertexId v = 0; v < ref.size(); ++v) {
      if (ref[u][v] != result.apsp[u][v]) {
        ADD_FAILURE() << "apsp mismatch at (" << u << ',' << v
                      << "): engine=" << result.apsp[u][v]
                      << " ref=" << ref[u][v];
        if (++mismatches >= 10) return;
      }
    }
  }
}

/// Builds a batch of vertex-add events with preferential attachment into
/// the existing graph (and optionally among themselves), mirroring organic
/// growth. Returns the events; `base` is not modified.
inline std::vector<Event> grow_vertices(const Graph& base, VertexId count,
                                        unsigned edges_each, Rng& rng) {
  std::vector<Event> events;
  const VertexId n0 = base.num_vertices();
  // Degree-proportional endpoint pool from the existing graph.
  std::vector<VertexId> pool;
  for (const auto& [u, v, w] : base.edges()) {
    (void)w;
    pool.push_back(u);
    pool.push_back(v);
  }
  for (VertexId i = 0; i < count; ++i) {
    VertexAddEvent ev;
    ev.id = n0 + i;
    while (ev.edges.size() < edges_each) {
      // Half the edges attach to prior new vertices once enough exist,
      // creating the community structure among newcomers CutEdge-PS needs.
      VertexId to;
      if (i > 2 && rng.next_bool(0.5)) {
        to = n0 + static_cast<VertexId>(rng.next_below(i));
      } else {
        to = pool[rng.next_below(pool.size())];
      }
      bool dup = false;
      for (const auto& [e, w] : ev.edges) dup |= (e == to);
      if (!dup) ev.edges.emplace_back(to, 1);
    }
    events.emplace_back(std::move(ev));
  }
  return events;
}

}  // namespace aacc::test
