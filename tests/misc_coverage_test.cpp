// Remaining distinct behaviours: sampled Kendall tau, Louvain corner
// cases, generator guard rails, timer monotonicity, large-root broadcasts,
// and config interplay (max_rc_steps + checkpoint).
#include <gtest/gtest.h>

#include "analysis/quality.hpp"
#include "common/timer.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graph/louvain.hpp"
#include "runtime/comm.hpp"
#include "test_util.hpp"

namespace aacc {
namespace {

TEST(Quality, KendallTauSampledBranchAgreesWithExact) {
  // n chosen so n*(n-1)/2 > max_pairs forces the sampling path.
  Rng rng(9);
  std::vector<double> a(3000);
  std::vector<double> b(3000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.next_double();
    b[i] = a[i] + 0.05 * rng.next_double();  // strongly correlated
  }
  const double exact = kendall_tau(a, b, 10'000'000);   // exact path
  const double sampled = kendall_tau(a, b, 200'000);    // sampled path
  EXPECT_NEAR(exact, sampled, 0.02);
  EXPECT_GT(sampled, 0.8);
}

TEST(Quality, KendallTauAllTiesIsOne) {
  const std::vector<double> flat(10, 3.0);
  EXPECT_DOUBLE_EQ(kendall_tau(flat, flat), 1.0);
}

TEST(Louvain, IsolatedVerticesGetOwnCommunities) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  Rng rng(4);
  const LouvainResult res = louvain(g, rng);
  // Connected trio likely merges; isolated 3 and 4 stay singletons.
  EXPECT_NE(res.community[3], res.community[0]);
  EXPECT_NE(res.community[4], res.community[0]);
  EXPECT_NE(res.community[3], res.community[4]);
}

TEST(Louvain, EdgelessGraphZeroModularity) {
  Graph g(4);
  Rng rng(5);
  const LouvainResult res = louvain(g, rng);
  EXPECT_DOUBLE_EQ(res.modularity, 0.0);
  EXPECT_EQ(res.num_communities, 4u);
}

TEST(Generators, BaRejectsTooSmallN) {
  Rng rng(1);
  EXPECT_THROW(barabasi_albert(2, 2, rng), std::logic_error);
}

TEST(Generators, ErRejectsTooManyEdges) {
  Rng rng(2);
  EXPECT_THROW(erdos_renyi(4, 100, rng), std::logic_error);
}

TEST(Generators, RmatRejectsOverfullQuadrants) {
  Rng rng(3);
  // 2^3 = 8 vertices cannot host 100 distinct edges.
  EXPECT_THROW(rmat(3, 100, 0.57, 0.19, 0.19, rng), std::logic_error);
}

TEST(Generators, WeightedBaRespectsRange) {
  Rng rng(4);
  const Graph g = barabasi_albert(200, 2, rng, WeightRange{3, 6});
  for (const auto& [u, v, w] : g.edges()) {
    EXPECT_GE(w, 3u);
    EXPECT_LE(w, 6u);
  }
}

TEST(Timer, MonotoneNonNegative) {
  Timer t;
  const double a = t.seconds();
  double acc = 0;
  for (int i = 0; i < 100000; ++i) acc += i;
  (void)acc;
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  t.reset();
  EXPECT_LT(t.seconds(), b + 1.0);
}

TEST(Comm, BroadcastLargePayloadNonzeroRoot) {
  rt::World world(5);
  const std::size_t size = 1 << 20;
  std::vector<int> ok(5, 0);
  world.run([&](rt::Comm& comm) {
    std::vector<std::byte> buf;
    if (comm.rank() == 3) buf.assign(size, std::byte{0x5C});
    buf = comm.broadcast(std::move(buf), 3);
    ok[static_cast<std::size_t>(comm.rank())] =
        buf.size() == size && buf[size / 2] == std::byte{0x5C};
  });
  for (const int v : ok) EXPECT_EQ(v, 1);
}

TEST(Comm, AllToAllWithEmptySlots) {
  rt::World world(4);
  std::vector<int> ok(4, 1);
  world.run([&](rt::Comm& comm) {
    std::vector<std::vector<std::byte>> out(4);
    // Only send to rank 0; everything else empty.
    out[0] = std::vector<std::byte>(8, std::byte{1});
    auto in = comm.all_to_all(std::move(out));
    for (Rank q = 0; q < 4; ++q) {
      const std::size_t expect = comm.rank() == 0 ? 8 : 0;
      if (q != comm.rank() && in[static_cast<std::size_t>(q)].size() != expect) {
        ok[static_cast<std::size_t>(comm.rank())] = 0;
      }
    }
  });
  for (const int v : ok) EXPECT_EQ(v, 1);
}

TEST(Engine, CheckpointBeyondMaxStepsNeverFires) {
  const Graph g = test::make_ba(100, 2, 3);
  EngineConfig cfg;
  cfg.num_ranks = 4;
  cfg.max_rc_steps = 2;
  cfg.checkpoint_at_step = 5;  // unreachable under the cap
  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run();
  EXPECT_FALSE(r.checkpoint.valid());
  EXPECT_EQ(r.stats.rc_steps, 2u);
}

TEST(Engine, StepQualityLengthTracksRcSteps) {
  const Graph g = test::make_ba(120, 2, 5);
  EngineConfig cfg;
  cfg.num_ranks = 4;
  cfg.record_step_quality = true;
  Rng rng(6);
  EventSchedule sched;
  sched.push_back({2, test::grow_vertices(g, 8, 2, rng)});
  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run(sched);
  EXPECT_EQ(r.step_harmonic.size(), r.stats.rc_steps);
  // Early snapshots don't know the late vertices; entries default to 0.
  EXPECT_EQ(r.step_harmonic.front().size(), engine.graph().num_vertices());
}

}  // namespace
}  // namespace aacc
