// Betweenness (Brandes) and eigenvector centrality ground-truth tests.
#include <gtest/gtest.h>

#include "analysis/centrality_extra.hpp"
#include "graph/generators.hpp"

namespace aacc {
namespace {

TEST(Betweenness, PathGraphMiddleDominates) {
  // 0-1-2-3-4: bc(2) = 4 pairs through it ({0,1}x{3,4} via... exact: pairs
  // (0,3),(0,4),(1,3),(1,4) all pass 2; plus (0,2..) endpoints excluded.
  Graph g(5);
  for (VertexId v = 0; v + 1 < 5; ++v) g.add_edge(v, v + 1);
  const auto bc = betweenness_exact(g);
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[4], 0.0);
  EXPECT_DOUBLE_EQ(bc[1], 3.0);  // (0,2),(0,3),(0,4)
  EXPECT_DOUBLE_EQ(bc[2], 4.0);
  EXPECT_DOUBLE_EQ(bc[3], 3.0);
}

TEST(Betweenness, StarCenterCarriesAllPairs) {
  Graph g(6);
  for (VertexId v = 1; v < 6; ++v) g.add_edge(0, v);
  const auto bc = betweenness_exact(g);
  // 5 leaves: C(5,2) = 10 pairs through the hub.
  EXPECT_DOUBLE_EQ(bc[0], 10.0);
  for (VertexId v = 1; v < 6; ++v) EXPECT_DOUBLE_EQ(bc[v], 0.0);
}

TEST(Betweenness, SplitsEvenlyAcrossEqualPaths) {
  // Square 0-1-3-2-0: two equal paths between opposite corners.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  g.add_edge(3, 2);
  g.add_edge(2, 0);
  const auto bc = betweenness_exact(g);
  // Pair (0,3) splits across 1 and 2; pair (1,2) splits across 0 and 3.
  for (VertexId v = 0; v < 4; ++v) EXPECT_DOUBLE_EQ(bc[v], 0.5);
}

TEST(Betweenness, RespectsWeights) {
  // Triangle with one heavy edge: 0-2 direct (w=5) vs 0-1-2 (w=2).
  Graph g(3);
  g.add_edge(0, 2, 5);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  const auto bc = betweenness_exact(g);
  EXPECT_DOUBLE_EQ(bc[1], 1.0);  // carries the (0,2) pair
}

TEST(Betweenness, SkipsTombstonedVertices) {
  Graph g(5);
  for (VertexId v = 0; v + 1 < 5; ++v) g.add_edge(v, v + 1);
  g.remove_vertex(2);
  const auto bc = betweenness_exact(g);
  for (VertexId v = 0; v < 5; ++v) EXPECT_DOUBLE_EQ(bc[v], 0.0);
}

TEST(Eigenvector, StarCenterHighest) {
  Graph g(6);
  for (VertexId v = 1; v < 6; ++v) g.add_edge(0, v);
  const auto ev = eigenvector_centrality(g);
  EXPECT_DOUBLE_EQ(ev[0], 1.0);  // normalized to max
  for (VertexId v = 1; v < 6; ++v) {
    EXPECT_LT(ev[v], 1.0);
    EXPECT_GT(ev[v], 0.0);
    EXPECT_NEAR(ev[v], ev[1], 1e-9);  // leaves symmetric
  }
}

TEST(Eigenvector, RegularGraphIsUniform) {
  // Cycle: every vertex identical.
  Graph g(8);
  for (VertexId v = 0; v < 8; ++v) g.add_edge(v, (v + 1) % 8);
  const auto ev = eigenvector_centrality(g);
  for (VertexId v = 0; v < 8; ++v) EXPECT_NEAR(ev[v], 1.0, 1e-9);
}

TEST(Eigenvector, EdgelessGraphIsZero) {
  Graph g(4);
  const auto ev = eigenvector_centrality(g);
  for (const double v : ev) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Eigenvector, HubsDominateInScaleFree) {
  Rng rng(5);
  const Graph g = barabasi_albert(400, 2, rng);
  const auto ev = eigenvector_centrality(g);
  // The earliest (highest-degree) vertices should rank above the median.
  double early = 0.0;
  double total = 0.0;
  for (VertexId v = 0; v < 10; ++v) early += ev[v];
  for (VertexId v = 0; v < 400; ++v) total += ev[v];
  EXPECT_GT(early / 10.0, total / 400.0 * 3.0);
}

}  // namespace
}  // namespace aacc
