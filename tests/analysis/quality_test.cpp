// Edge-case coverage for analysis/quality.hpp: tau-b tie corrections, the
// degenerate conventions, top-k overlap with duplicate scores / k > n /
// empty inputs, and the sparse (id, score) variants driving the progress
// feed's online estimators.
#include <cmath>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/quality.hpp"

namespace aacc {
namespace {

// ---- kendall_tau (dense) -------------------------------------------------

TEST(KendallTau, TiesOnlyInA) {
  // Pairs: (0,1) tied in a only -> Ta; (0,2) and (1,2) concordant.
  // tau_b = (2 - 0) / sqrt((2 + 1)(2 + 0)) = 2 / sqrt(6).
  const std::vector<double> a{1.0, 1.0, 2.0};
  const std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_NEAR(kendall_tau(a, b), 2.0 / std::sqrt(6.0), 1e-12);
  // tau-b is symmetric in its tie corrections.
  EXPECT_NEAR(kendall_tau(b, a), 2.0 / std::sqrt(6.0), 1e-12);
}

TEST(KendallTau, PairsTiedInBothAreExcluded) {
  // (0,1) tied in both: excluded entirely. Remaining pairs concordant.
  const std::vector<double> a{1.0, 1.0, 2.0};
  const std::vector<double> b{5.0, 5.0, 7.0};
  EXPECT_DOUBLE_EQ(kendall_tau(a, b), 1.0);
}

TEST(KendallTau, MixedTiesAndDiscordance) {
  // a = {2, 2, 1, 3}, b = {1, 2, 3, 4}:
  //   (0,1) Ta; (0,2) discordant; (0,3) concordant;
  //   (1,2) discordant; (1,3) concordant; (2,3) concordant.
  // tau_b = (3 - 2) / sqrt((3 + 2 + 1)(3 + 2 + 0)) = 1 / sqrt(30).
  const std::vector<double> a{2.0, 2.0, 1.0, 3.0};
  const std::vector<double> b{1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(kendall_tau(a, b), 1.0 / std::sqrt(30.0), 1e-12);
}

TEST(KendallTau, DegenerateConventions) {
  // n < 2: trivially identical rankings.
  const std::vector<double> none;
  EXPECT_DOUBLE_EQ(kendall_tau(none, none), 1.0);
  EXPECT_DOUBLE_EQ(kendall_tau(std::vector<double>{3.0},
                               std::vector<double>{7.0}),
                   1.0);
  // Both constant: identical (trivial) rankings.
  EXPECT_DOUBLE_EQ(kendall_tau({1.0, 1.0, 1.0}, {2.0, 2.0, 2.0}), 1.0);
  // Exactly one constant: no rank information to correlate.
  EXPECT_DOUBLE_EQ(kendall_tau({1.0, 1.0, 1.0}, {1.0, 2.0, 3.0}), 0.0);
  EXPECT_DOUBLE_EQ(kendall_tau({1.0, 2.0, 3.0}, {9.0, 9.0, 9.0}), 0.0);
}

TEST(KendallTau, PerfectAndInvertedWithoutTies) {
  const std::vector<double> up{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> down{4.0, 3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(kendall_tau(up, up), 1.0);
  EXPECT_DOUBLE_EQ(kendall_tau(up, down), -1.0);
}

// ---- top_k_overlap (dense) -----------------------------------------------

TEST(TopKOverlap, EmptyVectorsAndZeroK) {
  const std::vector<double> none;
  EXPECT_DOUBLE_EQ(top_k_overlap(none, none, 5), 1.0);
  EXPECT_DOUBLE_EQ(top_k_overlap(std::vector<double>{1.0, 2.0},
                                 std::vector<double>{2.0, 1.0}, 0),
                   1.0);
}

TEST(TopKOverlap, KLargerThanNComparesFullRankings) {
  // k = 10 > n = 3: denominator is min(k, n) = 3, and the full id sets
  // coincide, so overlap is exactly 1 even though the orders differ.
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(top_k_overlap(a, b, 10), 1.0);
}

TEST(TopKOverlap, DuplicateScoresBreakTiesDeterministically) {
  // Scores {5, 5, 5, 1}: top_k breaks ties by ascending id, so top-2 is
  // {0, 1} for both orderings of the same multiset.
  const std::vector<double> a{5.0, 5.0, 5.0, 1.0};
  const std::vector<double> b{5.0, 5.0, 5.0, 2.0};
  EXPECT_DOUBLE_EQ(top_k_overlap(a, b, 2), 1.0);
}

TEST(TopKOverlap, DisjointTopSets) {
  // top-2(a) = {0, 1}, top-2(b) = {2, 3}.
  const std::vector<double> a{9.0, 8.0, 1.0, 2.0};
  const std::vector<double> b{1.0, 2.0, 9.0, 8.0};
  EXPECT_DOUBLE_EQ(top_k_overlap(a, b, 2), 0.0);
}

// ---- sparse (id, score) variants -----------------------------------------

using Pairs = std::vector<std::pair<VertexId, double>>;

TEST(SparseTopKOverlap, BothEmptyIsPerfect) {
  EXPECT_DOUBLE_EQ(top_k_overlap(Pairs{}, Pairs{}, 8), 1.0);
}

TEST(SparseTopKOverlap, DisjointIdsAndPartialOverlap) {
  const Pairs a{{1, 9.0}, {2, 8.0}};
  const Pairs b{{3, 9.0}, {4, 8.0}};
  EXPECT_DOUBLE_EQ(top_k_overlap(a, b, 2), 0.0);
  const Pairs c{{1, 9.0}, {4, 8.0}};
  EXPECT_DOUBLE_EQ(top_k_overlap(a, c, 2), 0.5);
}

TEST(SparseTopKOverlap, KBoundsToLargestList) {
  // k = 100 but the longer list has 3 entries: denominator is 3. b's id
  // set {1, 2} intersects a's top-3 {1, 2, 3} in 2 ids... but b only
  // contributes 2 ids, so overlap = 2/3.
  const Pairs a{{1, 3.0}, {2, 2.0}, {3, 1.0}};
  const Pairs b{{1, 3.0}, {2, 2.0}};
  EXPECT_NEAR(top_k_overlap(a, b, 100), 2.0 / 3.0, 1e-12);
}

TEST(SparseTopKOverlap, DuplicateScoresUseIdTieBreak) {
  // All scores equal: top-1 is the smallest id on both sides.
  const Pairs a{{7, 1.0}, {3, 1.0}};
  const Pairs b{{3, 1.0}, {9, 1.0}};
  EXPECT_DOUBLE_EQ(top_k_overlap(a, b, 1), 1.0);
}

TEST(SparseKendallTau, AbsentIdsScoreZero) {
  // Union {1, 2}: a = (5, 0), b = (0, 5) -> one discordant pair, tau = -1.
  const Pairs a{{1, 5.0}};
  const Pairs b{{2, 5.0}};
  EXPECT_DOUBLE_EQ(kendall_tau(a, b), -1.0);
}

TEST(SparseKendallTau, AgreesWithDenseOnSharedIds) {
  const Pairs a{{0, 1.0}, {1, 2.0}, {2, 3.0}};
  const Pairs b{{0, 10.0}, {1, 20.0}, {2, 30.0}};
  EXPECT_DOUBLE_EQ(kendall_tau(a, b), 1.0);
  const Pairs rev{{0, 30.0}, {1, 20.0}, {2, 10.0}};
  EXPECT_DOUBLE_EQ(kendall_tau(a, rev), -1.0);
}

TEST(SparseKendallTau, EmptyListsArePerfect) {
  EXPECT_DOUBLE_EQ(kendall_tau(Pairs{}, Pairs{}), 1.0);
}

}  // namespace
}  // namespace aacc
