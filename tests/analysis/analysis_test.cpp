// Reference kernels: Dijkstra, APSP, centralities, quality metrics.
#include <gtest/gtest.h>

#include "analysis/closeness.hpp"
#include "analysis/quality.hpp"
#include "analysis/shortest_paths.hpp"
#include "graph/generators.hpp"

namespace aacc {
namespace {

Graph diamond() {
  // 0 -2- 1 -2- 3,  0 -1- 2 -1- 3  => d(0,3) = 2 via vertex 2
  Graph g(4);
  g.add_edge(0, 1, 2);
  g.add_edge(1, 3, 2);
  g.add_edge(0, 2, 1);
  g.add_edge(2, 3, 1);
  return g;
}

TEST(Dijkstra, WeightedShortestPaths) {
  const Graph g = diamond();
  const CsrGraph csr(g);
  const auto d = dijkstra(csr, 0);
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[1], 2u);
  EXPECT_EQ(d[2], 1u);
  EXPECT_EQ(d[3], 2u);
}

TEST(Dijkstra, UnreachableIsInf) {
  Graph g(3);
  g.add_edge(0, 1, 4);
  const CsrGraph csr(g);
  const auto d = dijkstra(csr, 0);
  EXPECT_EQ(d[2], kInfDist);
}

TEST(Dijkstra, FirstHopFollowsShortestPath) {
  const Graph g = diamond();
  const CsrGraph csr(g);
  const auto res = dijkstra_with_first_hop(csr, 0);
  EXPECT_EQ(res.first_hop[0], kNoVertex);
  EXPECT_EQ(res.first_hop[2], 2u);
  EXPECT_EQ(res.first_hop[3], 2u);  // through the cheap side
  EXPECT_EQ(res.first_hop[1], 1u);
}

TEST(Dijkstra, FirstHopChainsAreConsistent) {
  Rng rng(12);
  const Graph g = erdos_renyi(80, 200, rng, WeightRange{1, 6});
  const CsrGraph csr(g);
  for (VertexId s = 0; s < 80; s += 13) {
    const auto res = dijkstra_with_first_hop(csr, s);
    for (VertexId t = 0; t < 80; ++t) {
      if (t == s || res.dist[t] == kInfDist) continue;
      const VertexId h = res.first_hop[t];
      ASSERT_NE(h, kNoVertex);
      ASSERT_TRUE(g.has_edge(s, h));
      // d(s,t) = w(s,h) + d(h,t)
      const auto from_h = dijkstra(csr, h);
      EXPECT_EQ(res.dist[t], g.edge_weight(s, h) + from_h[t]);
    }
  }
}

TEST(ApspReference, SymmetricOnUndirectedGraphs) {
  Rng rng(13);
  const Graph g = erdos_renyi(60, 150, rng, WeightRange{1, 4});
  const auto apsp = apsp_reference(g);
  for (VertexId u = 0; u < 60; ++u) {
    for (VertexId v = u; v < 60; ++v) {
      EXPECT_EQ(apsp[u][v], apsp[v][u]);
    }
  }
}

TEST(ApspReference, TombstonedRowsAndColumnsAreInf) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.remove_vertex(2);
  const auto apsp = apsp_reference(g);
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_EQ(apsp[2][v], kInfDist);
    EXPECT_EQ(apsp[v][2], kInfDist);
  }
  EXPECT_EQ(apsp[0][1], 1u);
  EXPECT_EQ(apsp[0][3], kInfDist);  // 3 got disconnected
}

TEST(Closeness, MatchesHandComputation) {
  // Path 0-1-2: C(1) = 1/(1+1), C(0) = 1/(1+2)
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto c = closeness_exact(g);
  EXPECT_DOUBLE_EQ(c[1], 0.5);
  EXPECT_DOUBLE_EQ(c[0], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(c[2], 1.0 / 3.0);
}

TEST(Closeness, CenterOfStarIsMostCentral) {
  Graph g(9);
  for (VertexId v = 1; v < 9; ++v) g.add_edge(0, v);
  const auto c = closeness_exact(g);
  for (VertexId v = 1; v < 9; ++v) EXPECT_GT(c[0], c[v]);
  const auto h = harmonic_exact(g);
  for (VertexId v = 1; v < 9; ++v) EXPECT_GT(h[0], h[v]);
}

TEST(Closeness, IsolatedVertexScoresZero) {
  Graph g(3);
  g.add_edge(0, 1);
  const auto c = closeness_exact(g);
  EXPECT_EQ(c[2], 0.0);
}

TEST(Harmonic, CountsOnlyReachable) {
  Graph g(4);
  g.add_edge(0, 1, 2);  // 1/2 from 0
  g.add_edge(0, 2, 4);  // 1/4 from 0
  const auto h = harmonic_exact(g);
  EXPECT_DOUBLE_EQ(h[0], 0.75);
}

TEST(TopK, OrdersByScoreThenId) {
  const std::vector<double> s{0.5, 0.9, 0.9, 0.1};
  const auto top = top_k(s, 3);
  EXPECT_EQ(top, (std::vector<VertexId>{1, 2, 0}));
}

TEST(Quality, PerfectEstimateScoresPerfectly) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_relative_error(x, x), 0.0);
  EXPECT_DOUBLE_EQ(max_abs_error(x, x), 0.0);
  EXPECT_DOUBLE_EQ(top_k_overlap(x, x, 2), 1.0);
  EXPECT_DOUBLE_EQ(kendall_tau(x, x), 1.0);
}

TEST(Quality, ReversedRankingHasTauMinusOne) {
  const std::vector<double> a{1, 2, 3, 4, 5};
  const std::vector<double> b{5, 4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(kendall_tau(a, b), -1.0);
}

TEST(Quality, MeanRelativeError) {
  const std::vector<double> exact{2.0, 4.0};
  const std::vector<double> est{1.0, 5.0};
  EXPECT_DOUBLE_EQ(mean_relative_error(exact, est), (0.5 + 0.25) / 2);
}

TEST(Quality, TopKOverlapPartial) {
  const std::vector<double> exact{10, 9, 8, 1, 2};
  const std::vector<double> est{10, 1, 9, 8, 2};  // top3: {0,2,3} vs {0,1,2}
  EXPECT_DOUBLE_EQ(top_k_overlap(exact, est, 3), 2.0 / 3.0);
}

}  // namespace
}  // namespace aacc
