// Partitioner contracts: full assignment, balance, and cut quality of the
// multilevel partitioner versus the trivial baselines.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "partition/partition.hpp"

namespace aacc {
namespace {

void expect_valid(const Graph& g, const Partition& p, Rank k) {
  ASSERT_EQ(p.num_parts, k);
  ASSERT_EQ(p.assignment.size(), g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.is_alive(v)) {
      EXPECT_GE(p.assignment[v], 0);
      EXPECT_LT(p.assignment[v], k);
    } else {
      EXPECT_EQ(p.assignment[v], kNoRank);
    }
  }
}

class AllPartitioners : public ::testing::TestWithParam<PartitionerKind> {};

TEST_P(AllPartitioners, AssignsEveryAliveVertex) {
  Rng grng(31);
  Graph g = barabasi_albert(400, 2, grng);
  g.remove_vertex(5);
  g.remove_vertex(123);
  Rng rng(1);
  const Partition p = partition_graph(g, 8, GetParam(), rng);
  expect_valid(g, p, 8);
}

TEST_P(AllPartitioners, SinglePart) {
  Rng grng(32);
  const Graph g = barabasi_albert(100, 2, grng);
  Rng rng(2);
  const Partition p = partition_graph(g, 1, GetParam(), rng);
  expect_valid(g, p, 1);
  EXPECT_EQ(evaluate_partition(g, p).cut_edges, 0u);
}

TEST_P(AllPartitioners, ReasonableBalance) {
  Rng grng(33);
  const Graph g = barabasi_albert(1000, 2, grng);
  Rng rng(3);
  const Partition p = partition_graph(g, 8, GetParam(), rng);
  const auto m = evaluate_partition(g, p);
  EXPECT_LE(m.imbalance, 1.35) << partitioner_name(GetParam());
  EXPECT_GE(m.min_part, 1u);
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllPartitioners,
                         ::testing::Values(PartitionerKind::kBlock,
                                           PartitionerKind::kRoundRobin,
                                           PartitionerKind::kHash,
                                           PartitionerKind::kBfs,
                                           PartitionerKind::kMultilevel),
                         [](const auto& info) {
                           std::string name = partitioner_name(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(Multilevel, BeatsHashOnCommunityGraphs) {
  // Note: round-robin would be a *perfect* baseline-cheat here, because
  // planted_partition assigns communities by v % k and round-robin
  // partitions by the same formula. Hash is the structure-blind baseline.
  Rng grng(44);
  const Graph g = planted_partition(600, 8, 0.08, 0.002, grng);
  Rng r1(1);
  Rng r2(1);
  const auto ml =
      evaluate_partition(g, partition_graph(g, 8, PartitionerKind::kMultilevel, r1));
  const auto hash =
      evaluate_partition(g, partition_graph(g, 8, PartitionerKind::kHash, r2));
  // Cut-minimizing partitioner must find (most of) the planted structure;
  // a blind partitioner cuts ~7/8 of all edges.
  EXPECT_LT(ml.cut_edges * 3, hash.cut_edges)
      << "multilevel cut " << ml.cut_edges << " vs hash " << hash.cut_edges;
  // And it should be close to the planted optimum (the cross-community
  // edge count).
  std::size_t cross = 0;
  for (const auto& [u, v, w] : g.edges()) {
    (void)w;
    if (u % 8 != v % 8) ++cross;
  }
  EXPECT_LT(ml.cut_edges, cross + cross / 2);
}

TEST(Multilevel, HandlesDisconnectedGraphs) {
  Rng grng(45);
  const Graph g = erdos_renyi(300, 150, grng);  // many components
  Rng rng(4);
  const Partition p = partition_graph(g, 6, PartitionerKind::kMultilevel, rng);
  expect_valid(g, p, 6);
}

TEST(Multilevel, HandlesMoreRanksThanVertices) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  Rng rng(5);
  const Partition p = partition_graph(g, 8, PartitionerKind::kMultilevel, rng);
  ASSERT_EQ(p.num_parts, 8);
  for (VertexId v = 0; v < 3; ++v) {
    EXPECT_GE(p.assignment[v], 0);
    EXPECT_LT(p.assignment[v], 8);
  }
}

TEST(EvaluatePartition, CountsCutEdges) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  Partition p;
  p.num_parts = 2;
  p.assignment = {0, 0, 1, 1};
  const auto m = evaluate_partition(g, p);
  EXPECT_EQ(m.cut_edges, 1u);
  EXPECT_EQ(m.part_sizes, (std::vector<std::size_t>{2, 2}));
  EXPECT_EQ(m.part_cut, (std::vector<std::size_t>{1, 1}));
  EXPECT_DOUBLE_EQ(m.imbalance, 1.0);
}


class MultilevelBalance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MultilevelBalance, WithinToleranceOnVariedGraphs) {
  const std::uint64_t seed = GetParam();
  Rng grng(seed);
  Graph g;
  switch (seed % 3) {
    case 0: g = barabasi_albert(700 + 37 * (seed % 7), 2, grng); break;
    case 1: g = planted_partition(600, 5, 0.06, 0.004, grng); break;
    default: g = erdos_renyi(800, 2400, grng); break;
  }
  Rng rng(seed * 13 + 1);
  const Rank k = 4 + static_cast<Rank>(seed % 13);
  const auto m =
      evaluate_partition(g, partition_graph(g, k, PartitionerKind::kMultilevel, rng));
  // Option default tolerance is 1.05 (+1 vertex granularity slack).
  const double ideal = static_cast<double>(g.num_alive()) / k;
  EXPECT_LE(static_cast<double>(m.max_part), 1.05 * ideal + 1.5)
      << "k=" << k << " n=" << g.num_alive();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultilevelBalance,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));
}  // namespace
}  // namespace aacc
