// Transport hardening and fault injection: frame integrity, mailbox
// dedup/reorder/timeouts, deterministic injector, crash containment, and
// exactness of the reliable transport under a hostile wire.
#include <gtest/gtest.h>

#include <thread>

#include "runtime/comm.hpp"
#include "runtime/serialize.hpp"

namespace aacc::rt {
namespace {

std::vector<std::byte> payload_of(std::uint64_t v) {
  ByteWriter w;
  w.write(v);
  return w.take();
}

std::uint64_t value_of(const Message& m) {
  ByteReader r(m.payload);
  return r.read<std::uint64_t>();
}

// ------------------------------------------------------------ FaultInjector

TEST(FaultInjector, FatesAreAPureFunctionOfTheSeed) {
  FaultPlan plan;
  plan.seed = 77;
  plan.drop = 0.2;
  plan.duplicate = 0.2;
  plan.delay = 0.2;
  plan.corrupt = 0.2;
  FaultInjector a(plan);
  FaultInjector b(plan);
  for (std::uint32_t seq = 0; seq < 200; ++seq) {
    for (std::uint32_t attempt = 0; attempt < 4; ++attempt) {
      EXPECT_EQ(a.fate(0, 1, seq, attempt), b.fate(0, 1, seq, attempt));
    }
  }
  // A different seed must not reproduce the same fate sequence.
  plan.seed = 78;
  FaultInjector c(plan);
  bool differs = false;
  for (std::uint32_t seq = 0; seq < 200 && !differs; ++seq) {
    differs = a.fate(1, 0, seq, 0) != c.fate(1, 0, seq, 0);
  }
  EXPECT_TRUE(differs);
}

TEST(FaultInjector, AttemptLimitBoundsTheAdversary) {
  FaultPlan plan;
  plan.drop = 1.0;  // every in-budget attempt is dropped
  plan.fault_attempt_limit = 3;
  FaultInjector inj(plan);
  for (std::uint32_t attempt = 0; attempt < 3; ++attempt) {
    EXPECT_EQ(inj.fate(0, 1, 5, attempt), FrameFate::kDrop);
  }
  // Beyond the limit the frame always goes through: bounded retries suffice.
  EXPECT_EQ(inj.fate(0, 1, 5, 3), FrameFate::kDeliver);
  EXPECT_EQ(inj.counters().dropped.load(), 3u);
}

TEST(FaultInjector, RejectsImpossibleProbabilities) {
  FaultPlan plan;
  plan.drop = 0.8;
  plan.corrupt = 0.5;
  EXPECT_THROW(FaultInjector{plan}, std::logic_error);
}

TEST(FaultInjector, CrashPointFiresExactlyOnce) {
  FaultPlan plan;
  plan.crashes.push_back({2, 4});
  FaultInjector inj(plan);
  EXPECT_FALSE(inj.should_crash(2, 3));
  EXPECT_FALSE(inj.should_crash(1, 4));
  EXPECT_TRUE(inj.should_crash(2, 4));
  // One-shot: a recovered run replaying step 4 must not re-kill rank 2.
  EXPECT_FALSE(inj.should_crash(2, 4));
  EXPECT_EQ(inj.counters().crashes.load(), 1u);
}

TEST(FaultInjector, CorruptOffsetStaysInsideTheFrame) {
  FaultPlan plan;
  plan.corrupt = 1.0;
  FaultInjector inj(plan);
  for (std::uint32_t seq = 0; seq < 64; ++seq) {
    EXPECT_LT(inj.corrupt_offset(0, 1, seq, 0, 13), 13u);
  }
}

// --------------------------------------------------------- retry jitter

TEST(RetryJitter, IsAPureFunctionOfTheFrameTuple) {
  // Reproducibility contract: the backoff schedule of a faulted run is a
  // pure function of (seed, src, dst, seqno, attempt), so re-running a
  // chaos seed replays the identical retry storm.
  for (std::uint32_t attempt = 0; attempt < 8; ++attempt) {
    EXPECT_EQ(retry_backoff_jitter(42, 0, 1, 7, attempt),
              retry_backoff_jitter(42, 0, 1, 7, attempt));
  }
}

TEST(RetryJitter, StaysInTheHalfOpenUnitBand) {
  for (std::uint64_t seed : {0ull, 1ull, 42ull, 0xFFFFFFFFFFFFFFFFull}) {
    for (std::uint32_t seq = 0; seq < 32; ++seq) {
      for (std::uint32_t attempt = 0; attempt < 8; ++attempt) {
        const double j = retry_backoff_jitter(seed, 2, 3, seq, attempt);
        EXPECT_GE(j, 0.5);
        EXPECT_LT(j, 1.5);
      }
    }
  }
}

TEST(RetryJitter, SpreadsAcrossAttemptsAndPeers) {
  // The whole point: concurrent senders (and successive attempts of one
  // sender) must not share a factor, or the retry storm stays in lockstep.
  const double base = retry_backoff_jitter(7, 0, 1, 0, 0);
  bool attempt_varies = false;
  for (std::uint32_t attempt = 1; attempt < 8; ++attempt) {
    if (retry_backoff_jitter(7, 0, 1, 0, attempt) != base) {
      attempt_varies = true;
    }
  }
  EXPECT_TRUE(attempt_varies);
  bool peer_varies = false;
  for (Rank src = 0; src < 8; ++src) {
    if (retry_backoff_jitter(7, src, 1, 0, 0) != base) peer_varies = true;
  }
  EXPECT_TRUE(peer_varies);
}

// ------------------------------------------------------- frame admission

TEST(Frame, CorruptedByteIsRejected) {
  const auto payload = payload_of(0xDEADBEEF);
  Mailbox mb;
  for (std::size_t flip = 0; flip < kFrameHeaderBytes + payload.size(); ++flip) {
    auto frame = encode_frame(3, 7, 0, payload);
    frame[flip] ^= std::byte{0x01};
    EXPECT_EQ(mb.admit_frame(3, 7, std::move(frame)),
              Mailbox::AdmitStatus::kCorrupt)
        << "flip at byte " << flip;
  }
  EXPECT_FALSE(mb.has(3, 7));
}

TEST(Frame, TruncatedFrameIsRejected) {
  auto frame = encode_frame(0, 1, 0, payload_of(42));
  Mailbox mb;
  for (std::size_t len = 0; len < kFrameHeaderBytes; ++len) {
    auto cut = frame;
    cut.resize(len);
    EXPECT_EQ(mb.admit_frame(0, 1, std::move(cut)),
              Mailbox::AdmitStatus::kCorrupt);
  }
  // Truncating the payload breaks the CRC too.
  auto cut = frame;
  cut.pop_back();
  EXPECT_EQ(mb.admit_frame(0, 1, std::move(cut)),
            Mailbox::AdmitStatus::kCorrupt);
}

TEST(Frame, CrcCoversHeaderFields) {
  // The checksum binds (src, tag, seqno): replaying a valid frame under a
  // different identity must fail validation, not deliver.
  auto frame = encode_frame(2, 9, 0, payload_of(1));
  Mailbox mb;
  EXPECT_EQ(mb.admit_frame(4, 9, std::move(frame)),
            Mailbox::AdmitStatus::kCorrupt);
}

TEST(Frame, DuplicateSeqnoIsDropped) {
  Mailbox mb;
  auto frame = encode_frame(1, 5, 0, payload_of(10));
  EXPECT_EQ(mb.admit_frame(1, 5, frame), Mailbox::AdmitStatus::kAccepted);
  EXPECT_EQ(mb.admit_frame(1, 5, frame), Mailbox::AdmitStatus::kDuplicate);
  EXPECT_EQ(value_of(mb.take(1, 5)), 10u);
  EXPECT_FALSE(mb.has(1, 5));
}

TEST(Frame, OutOfOrderFramesDeliverInOrder) {
  Mailbox mb;
  EXPECT_EQ(mb.admit_frame(1, 5, encode_frame(1, 5, 2, payload_of(2))),
            Mailbox::AdmitStatus::kAccepted);
  EXPECT_EQ(mb.admit_frame(1, 5, encode_frame(1, 5, 1, payload_of(1))),
            Mailbox::AdmitStatus::kAccepted);
  EXPECT_FALSE(mb.has(1, 5));  // held until the gap fills
  EXPECT_EQ(mb.admit_frame(1, 5, encode_frame(1, 5, 0, payload_of(0))),
            Mailbox::AdmitStatus::kAccepted);
  EXPECT_EQ(value_of(mb.take(1, 5)), 0u);
  EXPECT_EQ(value_of(mb.take(1, 5)), 1u);
  EXPECT_EQ(value_of(mb.take(1, 5)), 2u);
  // A stale retransmit of an already-delivered seqno is still a duplicate.
  EXPECT_EQ(mb.admit_frame(1, 5, encode_frame(1, 5, 1, payload_of(1))),
            Mailbox::AdmitStatus::kDuplicate);
}

// --------------------------------------------------------- mailbox waits

TEST(Mailbox, TakeForTimesOutWithoutAMatch) {
  Mailbox mb;
  mb.put({0, 3, payload_of(1)});  // wrong tag: must not satisfy the wait
  const auto res = mb.take_for(0, 4, std::chrono::milliseconds(30));
  EXPECT_EQ(res.status, Mailbox::TakeStatus::kTimeout);
}

TEST(Mailbox, PoisonTokenUnblocksAPendingWait) {
  Mailbox mb;
  std::thread waiter([&] {
    EXPECT_THROW((void)mb.take(0, 1), MailboxClosedError);
  });
  mb.poison();
  waiter.join();
  // Future waits observe the token immediately.
  EXPECT_EQ(mb.take_for(0, 1, std::chrono::milliseconds(0)).status,
            Mailbox::TakeStatus::kClosed);
}

TEST(Mailbox, InterruptDrainsQueuedMatchesFirst) {
  Mailbox mb;
  mb.put({2, 8, payload_of(5)});
  mb.interrupt();
  const auto first = mb.take_for(2, 8, std::chrono::milliseconds(0));
  ASSERT_EQ(first.status, Mailbox::TakeStatus::kOk);
  EXPECT_EQ(value_of(first.msg), 5u);
  EXPECT_EQ(mb.take_for(2, 8, std::chrono::milliseconds(0)).status,
            Mailbox::TakeStatus::kInterrupted);
}

// ------------------------------------------------- transport end to end

TransportConfig reliable_transport() {
  TransportConfig t;
  t.reliable = true;
  t.recv_timeout = std::chrono::milliseconds(30000);
  t.retry_backoff = std::chrono::microseconds(1);
  return t;
}

TEST(Transport, CollectivesAreExactUnderMessageFaults) {
  FaultPlan plan;
  plan.seed = 1234;
  plan.drop = 0.10;
  plan.duplicate = 0.05;
  plan.delay = 0.10;
  plan.corrupt = 0.10;
  FaultInjector inj(plan);

  const Rank P = 4;
  World world(P, {}, reliable_transport());
  world.install_faults(&inj);

  std::vector<int> failures(static_cast<std::size_t>(P), 0);
  world.run([&](Comm& comm) {
    for (int round = 0; round < 20; ++round) {
      std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(P));
      for (Rank q = 0; q < P; ++q) {
        out[static_cast<std::size_t>(q)] = payload_of(
            static_cast<std::uint64_t>(round * 10000 + comm.rank() * 100 + q));
      }
      auto in = comm.all_to_all(std::move(out));
      for (Rank q = 0; q < P; ++q) {
        ByteReader r(in[static_cast<std::size_t>(q)]);
        if (r.read<std::uint64_t>() !=
            static_cast<std::uint64_t>(round * 10000 + q * 100 + comm.rank())) {
          ++failures[static_cast<std::size_t>(comm.rank())];
        }
      }
      const auto sum =
          comm.all_reduce_sum(static_cast<std::uint64_t>(comm.rank()));
      if (sum != static_cast<std::uint64_t>(P) * (P - 1) / 2) {
        ++failures[static_cast<std::size_t>(comm.rank())];
      }
    }
  });
  for (const int f : failures) EXPECT_EQ(f, 0);
  // The plan is aggressive enough that some frames must have been faulted
  // and repaired.
  const auto& c = inj.counters();
  EXPECT_GT(c.dropped.load() + c.duplicated.load() + c.delayed.load() +
                c.corrupted.load(),
            0u);
  std::uint64_t retransmits = 0;
  for (const auto& ledger : world.ledgers()) retransmits += ledger.retransmits;
  EXPECT_GT(retransmits, 0u);
}

TEST(Transport, TimedRecvRaisesTimeoutError) {
  TransportConfig t;
  t.recv_timeout = std::chrono::milliseconds(50);
  World world(2, {}, t);
  EXPECT_THROW(world.run([&](Comm& comm) {
    if (comm.rank() == 0) (void)comm.recv(1, 99);  // never sent
  }),
               TimeoutError);
}

TEST(Transport, FrameOverheadIsZeroWhenDisabled) {
  World world(2);  // default transport: reliable off
  world.run([&](Comm& comm) {
    if (comm.rank() == 0) comm.send(1, 9, std::vector<std::byte>(64));
    if (comm.rank() == 1) (void)comm.recv(0, 9);
  });
  EXPECT_EQ(world.ledgers()[0].bytes_sent, 64u);
  EXPECT_EQ(world.ledgers()[0].frame_overhead_bytes, 0u);
  EXPECT_EQ(world.ledgers()[0].retransmits, 0u);
}

TEST(Transport, FrameOverheadIsChargedWhenEnabled) {
  World world(2, {}, reliable_transport());
  world.run([&](Comm& comm) {
    if (comm.rank() == 0) comm.send(1, 9, std::vector<std::byte>(64));
    if (comm.rank() == 1) (void)comm.recv(0, 9);
  });
  EXPECT_EQ(world.ledgers()[0].bytes_sent, 64u + kFrameHeaderBytes);
  EXPECT_EQ(world.ledgers()[0].frame_overhead_bytes, kFrameHeaderBytes);
}

// ------------------------------------------------------- crash containment

TEST(World, ContainedRunReportsTheFailedRankAndSurvives) {
  World world(3);
  const auto report = world.run_contained([&](Comm& comm) {
    comm.barrier();
    if (comm.rank() == 1) throw InjectedCrash(1, 0);
    comm.barrier();  // survivors block here until interrupted
  });
  ASSERT_FALSE(report.ok());
  // Rank 1 is the root cause; ranks 0/2 die collaterally (PeerFailedError)
  // instead of deadlocking in the barrier.
  bool root_seen = false;
  for (const Rank r : report.failed) {
    try {
      std::rethrow_exception(report.errors[static_cast<std::size_t>(r)]);
    } catch (const InjectedCrash& e) {
      EXPECT_EQ(r, 1);
      EXPECT_EQ(e.rank(), 1);
      root_seen = true;
    } catch (const PeerFailedError& e) {
      EXPECT_EQ(e.peer(), 1);
    }
  }
  EXPECT_TRUE(root_seen);

  // The World is reusable: the next contained run starts clean.
  const auto second = world.run_contained([&](Comm& comm) { comm.barrier(); });
  EXPECT_TRUE(second.ok());
}

TEST(World, HealthSupervisionDeclaresAWedgedPeerDead) {
  // A peer that wedges without crashing never raises its own error; the
  // only way out is the observer-side escalation ladder (docs/FAULTS.md
  // §Health supervision): straggler -> suspect -> dead, then a declaration
  // that marks the rank failed world-wide.
  World world(2);
  HealthConfig hc;
  hc.enabled = true;
  hc.straggler_after = std::chrono::milliseconds(10);
  hc.suspect_after = std::chrono::milliseconds(20);
  hc.dead_after = std::chrono::milliseconds(60);
  world.install_health(hc);
  const auto report = world.run_contained([&](Comm& comm) {
    if (comm.rank() == 1) {
      // Wedged: never sends, never crashes.
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
      return;
    }
    try {
      (void)comm.recv(1, 5);
      FAIL() << "recv from the wedged peer should not complete";
    } catch (const PeerFailedError& e) {
      EXPECT_EQ(e.peer(), 1);
      throw;
    }
  });
  ASSERT_FALSE(report.ok());
  const auto declared = world.declared_dead();
  ASSERT_EQ(declared.size(), 1u);
  EXPECT_EQ(declared[0], 1);
  EXPECT_GE(world.ledgers()[0].health_dead_declared, 1u);
}

TEST(World, RunPrefersTheRootCauseOverCollateralErrors) {
  World world(4);
  try {
    world.run([&](Comm& comm) {
      comm.barrier();
      if (comm.rank() == 2) throw InjectedCrash(2, 7);
      comm.barrier();
    });
    FAIL() << "run must rethrow";
  } catch (const InjectedCrash& e) {
    EXPECT_EQ(e.rank(), 2);
    EXPECT_EQ(e.step(), 7u);
  }
}

}  // namespace
}  // namespace aacc::rt
