// Runtime: mailbox matching, point-to-point ordering, and every collective
// across a sweep of world sizes.
#include <gtest/gtest.h>

#include <numeric>

#include "runtime/comm.hpp"
#include "runtime/serialize.hpp"

namespace aacc::rt {
namespace {

std::vector<std::byte> payload_of(std::uint64_t v) {
  ByteWriter w;
  w.write(v);
  return w.take();
}

std::uint64_t value_of(const Message& m) {
  ByteReader r(m.payload);
  return r.read<std::uint64_t>();
}

TEST(Mailbox, MatchesBySourceAndTag) {
  Mailbox mb;
  mb.put({1, 5, payload_of(100)});
  mb.put({2, 5, payload_of(200)});
  mb.put({1, 6, payload_of(300)});
  EXPECT_EQ(value_of(mb.take(2, 5)), 200u);
  EXPECT_EQ(value_of(mb.take(kAnySource, 6)), 300u);
  EXPECT_EQ(value_of(mb.take(1, 5)), 100u);
  EXPECT_FALSE(mb.has(kAnySource, 5));
}

TEST(Mailbox, FifoPerSender) {
  Mailbox mb;
  mb.put({3, 1, payload_of(1)});
  mb.put({3, 1, payload_of(2)});
  mb.put({3, 1, payload_of(3)});
  EXPECT_EQ(value_of(mb.take(3, 1)), 1u);
  EXPECT_EQ(value_of(mb.take(3, 1)), 2u);
  EXPECT_EQ(value_of(mb.take(3, 1)), 3u);
}

TEST(Comm, PointToPointRing) {
  World world(4);
  std::vector<std::uint64_t> got(4, 0);
  world.run([&](Comm& comm) {
    const Rank next = (comm.rank() + 1) % comm.size();
    const Rank prev = (comm.rank() + comm.size() - 1) % comm.size();
    comm.send(next, 7, payload_of(static_cast<std::uint64_t>(comm.rank())));
    got[static_cast<std::size_t>(comm.rank())] = value_of(comm.recv(prev, 7));
  });
  EXPECT_EQ(got, (std::vector<std::uint64_t>{3, 0, 1, 2}));
}

class CollectiveSizes : public ::testing::TestWithParam<Rank> {};

TEST_P(CollectiveSizes, Broadcast) {
  const Rank P = GetParam();
  World world(P);
  std::vector<std::uint64_t> got(static_cast<std::size_t>(P), 0);
  world.run([&](Comm& comm) {
    const Rank root = P / 2;
    std::vector<std::byte> buf;
    if (comm.rank() == root) buf = payload_of(4242);
    buf = comm.broadcast(std::move(buf), root);
    ByteReader r(buf);
    got[static_cast<std::size_t>(comm.rank())] = r.read<std::uint64_t>();
  });
  for (const auto v : got) EXPECT_EQ(v, 4242u);
}

TEST_P(CollectiveSizes, AllToAllDeliversPersonalizedPayloads) {
  const Rank P = GetParam();
  World world(P);
  std::vector<int> failures(static_cast<std::size_t>(P), 0);
  world.run([&](Comm& comm) {
    std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(P));
    for (Rank q = 0; q < P; ++q) {
      out[static_cast<std::size_t>(q)] =
          payload_of(static_cast<std::uint64_t>(comm.rank() * 1000 + q));
    }
    auto in = comm.all_to_all(std::move(out));
    for (Rank q = 0; q < P; ++q) {
      ByteReader r(in[static_cast<std::size_t>(q)]);
      if (r.read<std::uint64_t>() !=
          static_cast<std::uint64_t>(q * 1000 + comm.rank())) {
        ++failures[static_cast<std::size_t>(comm.rank())];
      }
    }
  });
  for (const int f : failures) EXPECT_EQ(f, 0);
}

TEST_P(CollectiveSizes, AllReduceSumMaxOr) {
  const Rank P = GetParam();
  World world(P);
  std::vector<std::uint64_t> sums(static_cast<std::size_t>(P));
  std::vector<std::uint64_t> maxes(static_cast<std::size_t>(P));
  std::vector<int> ors(static_cast<std::size_t>(P));
  world.run([&](Comm& comm) {
    const auto me = static_cast<std::uint64_t>(comm.rank());
    sums[me] = comm.all_reduce_sum(me + 1);
    maxes[me] = comm.all_reduce_max(me * 10);
    ors[me] = comm.all_reduce_or(comm.rank() == P - 1) ? 1 : 0;
  });
  const auto expected_sum =
      static_cast<std::uint64_t>(P) * static_cast<std::uint64_t>(P + 1) / 2;
  for (Rank r = 0; r < P; ++r) {
    EXPECT_EQ(sums[static_cast<std::size_t>(r)], expected_sum);
    EXPECT_EQ(maxes[static_cast<std::size_t>(r)],
              static_cast<std::uint64_t>(P - 1) * 10);
    EXPECT_EQ(ors[static_cast<std::size_t>(r)], 1);
  }
}

TEST_P(CollectiveSizes, BarrierCompletes) {
  const Rank P = GetParam();
  World world(P);
  world.run([&](Comm& comm) {
    for (int i = 0; i < 3; ++i) comm.barrier();
  });
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveSizes,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16));

TEST(Comm, LedgersCountBytes) {
  World world(2);
  world.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 9, std::vector<std::byte>(128));
    } else {
      (void)comm.recv(0, 9);
    }
  });
  EXPECT_EQ(world.ledgers()[0].bytes_sent, 128u);
  EXPECT_EQ(world.ledgers()[1].bytes_received, 128u);
  EXPECT_EQ(world.total_messages(), 1u);
}

TEST(Comm, RankExceptionPropagates) {
  World world(3);
  EXPECT_THROW(world.run([&](Comm& comm) {
    comm.barrier();
    if (comm.rank() == 1) throw std::runtime_error("rank 1 died");
  }),
               std::runtime_error);
}

TEST(World, ResetAccountingClearsLedgers) {
  World world(2);
  world.run([&](Comm& comm) {
    if (comm.rank() == 0) comm.send(1, 1, std::vector<std::byte>(16));
    if (comm.rank() == 1) (void)comm.recv(0, 1);
  });
  ASSERT_GT(world.total_bytes(), 0u);
  world.reset_accounting();
  EXPECT_EQ(world.total_bytes(), 0u);
  EXPECT_TRUE(world.message_log().empty());
}


TEST_P(CollectiveSizes, GatherCollectsAllContributions) {
  const Rank P = GetParam();
  World world(P);
  std::vector<int> ok(static_cast<std::size_t>(P), 1);
  world.run([&](Comm& comm) {
    const Rank root = P - 1;
    auto all = comm.gather(payload_of(static_cast<std::uint64_t>(comm.rank() * 3)),
                           root);
    if (comm.rank() == root) {
      for (Rank q = 0; q < P; ++q) {
        ByteReader r(all[static_cast<std::size_t>(q)]);
        if (r.read<std::uint64_t>() != static_cast<std::uint64_t>(q * 3)) {
          ok[static_cast<std::size_t>(comm.rank())] = 0;
        }
      }
    } else if (!all.empty()) {
      ok[static_cast<std::size_t>(comm.rank())] = 0;
    }
  });
  for (const int v : ok) EXPECT_EQ(v, 1);
}

TEST_P(CollectiveSizes, ScatterDeliversPerRankSlices) {
  const Rank P = GetParam();
  World world(P);
  std::vector<std::uint64_t> got(static_cast<std::size_t>(P), 0);
  world.run([&](Comm& comm) {
    std::vector<std::vector<std::byte>> bufs;
    if (comm.rank() == 0) {
      for (Rank q = 0; q < P; ++q) {
        bufs.push_back(payload_of(static_cast<std::uint64_t>(100 + q)));
      }
    }
    auto mine = comm.scatter(std::move(bufs), 0);
    ByteReader r(mine);
    got[static_cast<std::size_t>(comm.rank())] = r.read<std::uint64_t>();
  });
  for (Rank q = 0; q < P; ++q) {
    EXPECT_EQ(got[static_cast<std::size_t>(q)],
              static_cast<std::uint64_t>(100 + q));
  }
}

TEST(Comm, ProbeSeesPendingMessage) {
  World world(2);
  std::vector<int> saw(2, -1);
  world.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 42, payload_of(1));
      comm.barrier();
    } else {
      // The barrier orders rank 0's (already enqueued) send before us.
      comm.barrier();
      saw[1] = comm.probe(0, 42) ? 1 : 0;
      (void)comm.recv(0, 42);
      saw[0] = comm.probe(0, 42) ? 1 : 0;
    }
  });
  EXPECT_EQ(saw[1], 1);
  EXPECT_EQ(saw[0], 0);
}
}  // namespace
}  // namespace aacc::rt
