// ByteWriter/ByteReader: round trips and underflow detection.
#include <gtest/gtest.h>

#include "runtime/serialize.hpp"

namespace aacc::rt {
namespace {

TEST(Serialize, ScalarRoundTrip) {
  ByteWriter w;
  w.write(std::uint32_t{42});
  w.write(std::int64_t{-7});
  w.write(3.25);
  w.write(std::uint8_t{255});
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_EQ(r.read<std::uint32_t>(), 42u);
  EXPECT_EQ(r.read<std::int64_t>(), -7);
  EXPECT_DOUBLE_EQ(r.read<double>(), 3.25);
  EXPECT_EQ(r.read<std::uint8_t>(), 255);
  EXPECT_TRUE(r.done());
}

TEST(Serialize, VectorRoundTrip) {
  ByteWriter w;
  const std::vector<std::uint32_t> v{1, 2, 3, 4, 5};
  const std::vector<std::uint64_t> empty;
  w.write_vec(v);
  w.write_vec(empty);
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_EQ(r.read_vec<std::uint32_t>(), v);
  EXPECT_TRUE(r.read_vec<std::uint64_t>().empty());
  EXPECT_TRUE(r.done());
}

TEST(Serialize, StringRoundTrip) {
  ByteWriter w;
  w.write_str("hello");
  w.write_str("");
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_EQ(r.read_str(), "hello");
  EXPECT_EQ(r.read_str(), "");
}

TEST(Serialize, UnderflowThrows) {
  ByteWriter w;
  w.write(std::uint16_t{1});
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_THROW(r.read<std::uint64_t>(), std::logic_error);
}

TEST(Serialize, VectorUnderflowThrows) {
  ByteWriter w;
  w.write(std::uint64_t{1000});  // claims 1000 elements, provides none
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_THROW(r.read_vec<std::uint32_t>(), std::logic_error);
}

TEST(Serialize, TakeResetsWriter) {
  ByteWriter w;
  w.write(std::uint32_t{1});
  EXPECT_EQ(w.size(), 4u);
  (void)w.take();
  EXPECT_EQ(w.size(), 0u);
}

}  // namespace
}  // namespace aacc::rt
