// ByteWriter/ByteReader: round trips and underflow detection.
#include <gtest/gtest.h>

#include "runtime/serialize.hpp"

namespace aacc::rt {
namespace {

TEST(Serialize, ScalarRoundTrip) {
  ByteWriter w;
  w.write(std::uint32_t{42});
  w.write(std::int64_t{-7});
  w.write(3.25);
  w.write(std::uint8_t{255});
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_EQ(r.read<std::uint32_t>(), 42u);
  EXPECT_EQ(r.read<std::int64_t>(), -7);
  EXPECT_DOUBLE_EQ(r.read<double>(), 3.25);
  EXPECT_EQ(r.read<std::uint8_t>(), 255);
  EXPECT_TRUE(r.done());
}

TEST(Serialize, VectorRoundTrip) {
  ByteWriter w;
  const std::vector<std::uint32_t> v{1, 2, 3, 4, 5};
  const std::vector<std::uint64_t> empty;
  w.write_vec(v);
  w.write_vec(empty);
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_EQ(r.read_vec<std::uint32_t>(), v);
  EXPECT_TRUE(r.read_vec<std::uint64_t>().empty());
  EXPECT_TRUE(r.done());
}

TEST(Serialize, StringRoundTrip) {
  ByteWriter w;
  w.write_str("hello");
  w.write_str("");
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_EQ(r.read_str(), "hello");
  EXPECT_EQ(r.read_str(), "");
}

TEST(Serialize, UnderflowThrows) {
  ByteWriter w;
  w.write(std::uint16_t{1});
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_THROW(r.read<std::uint64_t>(), std::logic_error);
}

TEST(Serialize, VectorUnderflowThrows) {
  ByteWriter w;
  w.write(std::uint64_t{1000});  // claims 1000 elements, provides none
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_THROW(r.read_vec<std::uint32_t>(), std::logic_error);
}

TEST(Serialize, TakeResetsWriter) {
  ByteWriter w;
  w.write(std::uint32_t{1});
  EXPECT_EQ(w.size(), 4u);
  (void)w.take();
  EXPECT_EQ(w.size(), 0u);
}

// ---------------------------------------------------------------- wire v2

TEST(Varint, SingleByteBoundary) {
  // 0 and 127 fit one byte; 128 needs two.
  for (const std::uint64_t v : {0ull, 1ull, 127ull}) {
    ByteWriter w;
    w.write_varint(v);
    EXPECT_EQ(w.size(), 1u) << v;
    const auto buf = w.take();
    ByteReader r(buf);
    EXPECT_EQ(r.read_varint(), v);
    EXPECT_TRUE(r.done());
  }
}

TEST(Varint, TwoByteBoundary) {
  for (const std::uint64_t v : {128ull, 255ull, 16383ull}) {
    ByteWriter w;
    w.write_varint(v);
    EXPECT_EQ(w.size(), 2u) << v;
    const auto buf = w.take();
    ByteReader r(buf);
    EXPECT_EQ(r.read_varint(), v);
  }
}

TEST(Varint, FiveByteBoundary) {
  // 2^28 .. 2^35-1 take five bytes; the full u32 range (incl. the kInfDist
  // bit pattern) must round-trip.
  for (const std::uint64_t v :
       {1ull << 28, 0xffffffffull, (1ull << 35) - 1}) {
    ByteWriter w;
    w.write_varint(v);
    EXPECT_EQ(w.size(), 5u) << v;
    const auto buf = w.take();
    ByteReader r(buf);
    EXPECT_EQ(r.read_varint(), v);
  }
}

TEST(Varint, FullU64RoundTrip) {
  ByteWriter w;
  w.write_varint(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(w.size(), 10u);
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_EQ(r.read_varint(), std::numeric_limits<std::uint64_t>::max());
}

TEST(WireV2, SentinelMapping) {
  EXPECT_EQ(encode_u32_sentinel(kInfDist), kSentinelCode);
  EXPECT_EQ(decode_u32_sentinel(kSentinelCode), kInfDist);
  EXPECT_EQ(decode_u32_sentinel(encode_u32_sentinel(0u)), 0u);
  // The largest finite value (saturating arithmetic caps at kInfDist - 1).
  EXPECT_EQ(decode_u32_sentinel(encode_u32_sentinel(kInfDist - 1)),
            kInfDist - 1);
}

TEST(WireV2, PackedU32RoundTrip) {
  const std::vector<std::uint32_t> v{0, 1, kInfDist, 127, 128, kInfDist - 1};
  ByteWriter w;
  write_packed_u32s(w, v);
  // count byte + codes {1, 2, 0, 128, 129, 2^32-1} = 1 + 1+1+1+2+2+5
  EXPECT_EQ(w.size(), 13u);
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_EQ(read_packed_u32s(r), v);
  EXPECT_TRUE(r.done());
}

TEST(WireV2, AscendingIdsRoundTrip) {
  const std::vector<VertexId> ids{3, 4, 5, 100, 70000};
  ByteWriter w;
  write_ascending_ids(w, ids);
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_EQ(read_ascending_ids(r), ids);
  EXPECT_TRUE(r.done());

  ByteWriter we;
  write_ascending_ids(we, {});
  const auto bufe = we.take();
  ByteReader re(bufe);
  EXPECT_TRUE(read_ascending_ids(re).empty());
}

TEST(WireV2, DenseAscendingRunIsOneBytePerId) {
  // Consecutive ids delta-encode to 0x00 bytes.
  std::vector<VertexId> ids(100);
  for (VertexId i = 0; i < 100; ++i) ids[i] = 1000 + i;
  ByteWriter w;
  write_ascending_ids(w, ids);
  EXPECT_EQ(w.size(), 1u + 2u + 99u);  // count + first id + 99 zero deltas
}

TEST(DvRecord, V2RoundTrip) {
  const std::vector<std::pair<VertexId, Dist>> entries{
      {2, 1}, {3, 7}, {9, kInfDist}, {70000, 130}};
  ByteWriter w;
  write_dv_record(w, 42, entries);
  const auto buf = w.take();
  ByteReader r(buf);
  DvRecordReader rec(r);
  EXPECT_EQ(rec.vid(), 42u);
  ASSERT_EQ(rec.count(), entries.size());
  for (const auto& e : entries) EXPECT_EQ(rec.next(), e);
  EXPECT_TRUE(r.done());
}

TEST(DvRecord, V1BlobDecodesUnderV2Reader) {
  const std::vector<std::pair<VertexId, Dist>> entries{
      {5, 2}, {6, kInfDist}, {1000, 44}};
  ByteWriter w;
  write_dv_record(w, 7, entries, kDvRecordV1);
  write_dv_record(w, 8, entries, kDvRecordV2);  // mixed-version stream
  const auto buf = w.take();
  ByteReader r(buf);
  DvRecordReader v1(r);
  EXPECT_EQ(v1.vid(), 7u);
  ASSERT_EQ(v1.count(), entries.size());
  for (const auto& e : entries) EXPECT_EQ(v1.next(), e);
  DvRecordReader v2(r);
  EXPECT_EQ(v2.vid(), 8u);
  ASSERT_EQ(v2.count(), entries.size());
  for (const auto& e : entries) EXPECT_EQ(v2.next(), e);
  EXPECT_TRUE(r.done());
}

TEST(DvRecord, V2IsSmallerThanV1) {
  std::vector<std::pair<VertexId, Dist>> entries;
  for (VertexId t = 0; t < 256; ++t) entries.emplace_back(t * 3, t % 30);
  ByteWriter w1;
  write_dv_record(w1, 9, entries, kDvRecordV1);
  ByteWriter w2;
  write_dv_record(w2, 9, entries, kDvRecordV2);
  // v1: 9 + 8 per entry. v2 here: header + 2 bytes per entry.
  EXPECT_LT(w2.size() * 2, w1.size());
}

TEST(DvRecord, UnknownVersionRejected) {
  ByteWriter w;
  w.write(std::uint8_t{9});
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_THROW(DvRecordReader rec(r), std::logic_error);
}

TEST(DvRecord, EmptyRecordRoundTrip) {
  ByteWriter w;
  write_dv_record(w, 3, {});
  const auto buf = w.take();
  ByteReader r(buf);
  DvRecordReader rec(r);
  EXPECT_EQ(rec.vid(), 3u);
  EXPECT_EQ(rec.count(), 0u);
  EXPECT_TRUE(r.done());
}

}  // namespace
}  // namespace aacc::rt
