// Runtime stress: randomized point-to-point storms interleaved with
// collectives, FIFO ordering under load, and repeated world reuse.
#include <gtest/gtest.h>

#include <atomic>

#include "common/rng.hpp"
#include "runtime/comm.hpp"
#include "runtime/serialize.hpp"

namespace aacc::rt {
namespace {

TEST(WorldStress, RandomP2PStormAllDelivered) {
  const Rank P = 6;
  const int per_rank = 400;
  World world(P);
  std::atomic<std::uint64_t> received_sum{0};
  std::uint64_t expected_sum = 0;
  // Precompute destinations so the expected checksum is known.
  std::vector<std::vector<std::pair<Rank, std::uint64_t>>> plan(
      static_cast<std::size_t>(P));
  {
    Rng rng(42);
    for (Rank r = 0; r < P; ++r) {
      for (int i = 0; i < per_rank; ++i) {
        const auto dst = static_cast<Rank>(rng.next_below(P));
        const std::uint64_t value = rng.next_below(1'000'000);
        plan[static_cast<std::size_t>(r)].emplace_back(dst, value);
        expected_sum += value;
      }
    }
  }
  world.run([&](Comm& comm) {
    // Everyone blasts; then everyone drains exactly what was addressed to
    // them (count known from the plan).
    std::size_t expect_count = 0;
    for (Rank r = 0; r < P; ++r) {
      for (const auto& [dst, value] : plan[static_cast<std::size_t>(r)]) {
        if (dst == comm.rank()) ++expect_count;
      }
    }
    for (const auto& [dst, value] : plan[static_cast<std::size_t>(comm.rank())]) {
      ByteWriter w;
      w.write(value);
      comm.send(dst, 77, w.take());
    }
    std::uint64_t local = 0;
    for (std::size_t i = 0; i < expect_count; ++i) {
      Message m = comm.recv(kAnySource, 77);
      ByteReader r(m.payload);
      local += r.read<std::uint64_t>();
    }
    received_sum += local;
  });
  EXPECT_EQ(received_sum.load(), expected_sum);
  EXPECT_EQ(world.total_messages(), static_cast<std::uint64_t>(P) * per_rank);
}

TEST(WorldStress, FifoPreservedPerSenderUnderLoad) {
  const Rank P = 4;
  World world(P);
  std::atomic<int> violations{0};
  world.run([&](Comm& comm) {
    const Rank next = (comm.rank() + 1) % P;
    const Rank prev = (comm.rank() + P - 1) % P;
    for (std::uint64_t i = 0; i < 500; ++i) {
      ByteWriter w;
      w.write(i);
      comm.send(next, 5, w.take());
    }
    std::uint64_t expect = 0;
    for (std::uint64_t i = 0; i < 500; ++i) {
      Message m = comm.recv(prev, 5);
      ByteReader r(m.payload);
      if (r.read<std::uint64_t>() != expect++) ++violations;
    }
  });
  EXPECT_EQ(violations.load(), 0);
}

TEST(WorldStress, CollectivesInterleavedWithP2P) {
  const Rank P = 5;
  World world(P);
  std::vector<std::uint64_t> sums(static_cast<std::size_t>(P), 0);
  world.run([&](Comm& comm) {
    std::uint64_t acc = 0;
    for (int round = 0; round < 20; ++round) {
      // p2p ring exchange
      ByteWriter w;
      w.write(static_cast<std::uint64_t>(round * 10 + comm.rank()));
      comm.send((comm.rank() + 1) % P, round, w.take());
      // collective in between
      acc += comm.all_reduce_sum(1);
      Message m = comm.recv((comm.rank() + P - 1) % P, round);
      ByteReader r(m.payload);
      acc += r.read<std::uint64_t>();
      // broadcast, root rotating
      std::vector<std::byte> buf;
      if (comm.rank() == round % P) {
        ByteWriter bw;
        bw.write(static_cast<std::uint64_t>(round));
        buf = bw.take();
      }
      buf = comm.broadcast(std::move(buf), round % P);
      ByteReader br(buf);
      acc += br.read<std::uint64_t>();
    }
    sums[static_cast<std::size_t>(comm.rank())] = acc;
  });
  // All-reduce and broadcast contributions are rank-independent; the ring
  // term differs by a fixed pattern. Just pin determinism across two runs.
  World world2(P);
  std::vector<std::uint64_t> sums2(static_cast<std::size_t>(P), 0);
  world2.run([&](Comm& comm) {
    std::uint64_t acc = 0;
    for (int round = 0; round < 20; ++round) {
      ByteWriter w;
      w.write(static_cast<std::uint64_t>(round * 10 + comm.rank()));
      comm.send((comm.rank() + 1) % P, round, w.take());
      acc += comm.all_reduce_sum(1);
      Message m = comm.recv((comm.rank() + P - 1) % P, round);
      ByteReader r(m.payload);
      acc += r.read<std::uint64_t>();
      std::vector<std::byte> buf;
      if (comm.rank() == round % P) {
        ByteWriter bw;
        bw.write(static_cast<std::uint64_t>(round));
        buf = bw.take();
      }
      buf = comm.broadcast(std::move(buf), round % P);
      ByteReader br(buf);
      acc += br.read<std::uint64_t>();
    }
    sums2[static_cast<std::size_t>(comm.rank())] = acc;
  });
  EXPECT_EQ(sums, sums2);
}

TEST(WorldStress, WorldReusableAcrossRuns) {
  World world(3);
  for (int run = 0; run < 5; ++run) {
    world.run([&](Comm& comm) {
      EXPECT_EQ(comm.all_reduce_sum(1), 3u);
    });
  }
  // Ledgers accumulated across all five runs.
  EXPECT_GT(world.total_messages(), 0u);
}

TEST(WorldStress, LargePayloadsSurvive) {
  World world(2);
  const std::size_t size = 8 << 20;  // 8 MiB
  std::vector<int> ok(2, 0);
  world.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<std::byte> big(size, std::byte{0xAB});
      comm.send(1, 1, std::move(big));
      ok[0] = 1;
    } else {
      Message m = comm.recv(0, 1);
      ok[1] = m.payload.size() == size &&
              m.payload[size - 1] == std::byte{0xAB};
    }
  });
  EXPECT_EQ(ok[0], 1);
  EXPECT_EQ(ok[1], 1);
}

}  // namespace
}  // namespace aacc::rt
