// LogGP model: analytic costs and schedule-policy orderings.
#include <gtest/gtest.h>

#include "runtime/logp.hpp"

namespace aacc::rt {
namespace {

LogGPParams params() {
  LogGPParams p;
  p.L = 50e-6;
  p.o = 5e-6;
  p.g = 10e-6;
  p.G = 8e-9;
  return p;
}

TEST(LogGP, MessageCostComposition) {
  const auto p = params();
  // o + bytes*G + L + o
  EXPECT_DOUBLE_EQ(message_cost(p, 0), 2 * p.o + p.L);
  EXPECT_DOUBLE_EQ(message_cost(p, 1000), 2 * p.o + p.L + 1000 * p.G);
}

std::vector<MsgRecord> full_a2a(Rank P, std::uint64_t bytes) {
  std::vector<MsgRecord> log;
  for (Rank s = 0; s < P; ++s) {
    for (Rank d = 0; d < P; ++d) {
      if (s != d) log.push_back({1, OpKind::kAllToAll, s, d, bytes});
    }
  }
  return log;
}

TEST(LogGP, SerializedIsSumOfMessages) {
  const auto p = params();
  const Rank P = 4;
  const auto log = full_a2a(P, 500);
  const double t = modeled_network_seconds(log, p, SchedulePolicy::kSerialized, P);
  const double expect = 12 * (message_cost(p, 500) + p.g);
  EXPECT_NEAR(t, expect, 1e-12);
}

TEST(LogGP, ShiftedIsPerRoundMax) {
  const auto p = params();
  const Rank P = 4;
  const auto log = full_a2a(P, 500);
  const double t = modeled_network_seconds(log, p, SchedulePolicy::kShifted, P);
  const double expect = 3 * (message_cost(p, 500) + p.g);  // P-1 rounds
  EXPECT_NEAR(t, expect, 1e-12);
}

TEST(LogGP, PolicyOrderingForUniformTraffic) {
  const auto p = params();
  const Rank P = 8;
  const auto log = full_a2a(P, 2000);
  const double serial =
      modeled_network_seconds(log, p, SchedulePolicy::kSerialized, P);
  const double shifted =
      modeled_network_seconds(log, p, SchedulePolicy::kShifted, P);
  const double flood = modeled_network_seconds(log, p, SchedulePolicy::kFlood, P);
  // Serialization never beats the shift schedule; flooding pays total bytes
  // on one wire but amortizes per-message overheads.
  EXPECT_GT(serial, shifted);
  EXPECT_GT(serial, flood);
}

TEST(LogGP, BroadcastScalesLogarithmically) {
  const auto p = params();
  std::vector<MsgRecord> log{{1, OpKind::kBroadcast, 0, 1, 64}};
  const double t2 = modeled_network_seconds(log, p, SchedulePolicy::kShifted, 2);
  const double t16 = modeled_network_seconds(log, p, SchedulePolicy::kShifted, 16);
  EXPECT_NEAR(t16, 4 * t2, 1e-12);  // depth 4 vs depth 1
}

TEST(LogGP, DistinctOpsAccumulate) {
  const auto p = params();
  std::vector<MsgRecord> log{{1, OpKind::kPointToPoint, 0, 1, 100},
                             {2, OpKind::kPointToPoint, 1, 0, 100}};
  const double t = modeled_network_seconds(log, p, SchedulePolicy::kSerialized, 2);
  EXPECT_NEAR(t, 2 * message_cost(p, 100), 1e-12);
}

TEST(LogGP, EmptyLogIsFree) {
  EXPECT_DOUBLE_EQ(
      modeled_network_seconds({}, params(), SchedulePolicy::kSerialized, 8), 0.0);
}

}  // namespace
}  // namespace aacc::rt
