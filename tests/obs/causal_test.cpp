// Cross-rank causal tracing (docs/OBSERVABILITY.md §Causal flows): flow-id
// packing, flow-edge stitching on real engine traces, critical-path
// attribution invariants, attempt isolation across rollback, re-homing
// under shard adoption, wire-format neutrality of the stamping switch,
// histogram percentiles, and the serve-side latency SLOs.
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <thread>

#include "obs/causal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/comm.hpp"
#include "runtime/faults.hpp"
#include "serve/session.hpp"
#include "test_util.hpp"

namespace aacc {
namespace {

using test::make_ba;
using test::make_er;

// --------------------------------------------------------------- flow ids

TEST(FlowId, PackUnpackRoundtrips) {
  const struct {
    std::int32_t src;
    std::uint32_t attempt, step, seq;
  } cases[] = {
      {0, 0, 0, 1},
      {3, 1, 17, 42},
      {4095, 255, (1u << 20) - 1, (1u << 24) - 1},  // field maxima
      {7, 0, 1, 1},
  };
  for (const auto& c : cases) {
    const std::uint64_t id = obs::pack_flow_id(c.src, c.attempt, c.step, c.seq);
    EXPECT_NE(id, 0u);  // 0 is reserved for "unstamped"
    const obs::FlowParts p = obs::unpack_flow_id(id);
    EXPECT_EQ(p.src, c.src);
    EXPECT_EQ(p.attempt, c.attempt);
    EXPECT_EQ(p.step, c.step);
    EXPECT_EQ(p.seq, c.seq);
  }
}

TEST(FlowId, DistinctMessagesGetDistinctIds) {
  // seq is per-sender monotone and attempt/src/step live in disjoint bits,
  // so no two (src, attempt, step, seq) tuples may collide.
  EXPECT_NE(obs::pack_flow_id(1, 0, 5, 9), obs::pack_flow_id(2, 0, 5, 9));
  EXPECT_NE(obs::pack_flow_id(1, 0, 5, 9), obs::pack_flow_id(1, 1, 5, 9));
  EXPECT_NE(obs::pack_flow_id(1, 0, 5, 9), obs::pack_flow_id(1, 0, 6, 9));
  EXPECT_NE(obs::pack_flow_id(1, 0, 5, 9), obs::pack_flow_id(1, 0, 5, 10));
}

// ----------------------------------------------------- engine-trace edges

EngineConfig traced_cfg(Rank P) {
  EngineConfig cfg;
  cfg.num_ranks = P;
  cfg.trace.enabled = true;
  cfg.trace.flow_stamping = true;
  return cfg;
}

TEST(CausalStitch, EveryFlowOnACleanRunMatches) {
  const Graph g = make_ba(120, 2, 5);
  AnytimeEngine engine(g, traced_cfg(4));
  const RunResult r = engine.run();

  const obs::CausalAnalysis a = obs::analyze_causal(r.trace);
  EXPECT_GT(a.flow_sends, 0u);
  EXPECT_EQ(a.flow_recvs, a.flow_sends);
  EXPECT_EQ(a.matched_edges, a.flow_sends);
  EXPECT_EQ(a.rehomed_sends, 0u);
  EXPECT_EQ(a.dangling_sends, 0u);
  EXPECT_EQ(a.unmatched_recvs, 0u);
  // The attempt counter bumps at every contained-run start; a clean run
  // uses exactly one attempt for every edge.
  const std::uint32_t attempt0 = a.edges.empty() ? 0 : a.edges[0].attempt;
  for (const obs::FlowEdge& e : a.edges) {
    EXPECT_NE(e.src_rank, e.dst_rank);  // self-sends are applied locally
    EXPECT_GE(e.seq, 1u);               // seq 0 never minted
    EXPECT_EQ(e.attempt, attempt0);     // no recovery: one attempt only
    EXPECT_LE(e.send_ts_us, e.recv_ts_us + 1e-6);
  }
}

TEST(CausalStitch, ChromeTraceRoundtripPreservesTheEdges) {
  // Export the trace as Chrome JSON (with the Perfetto flow lines) and
  // parse it back: the offline `aacc analyze --critical-path` path must
  // see exactly the edges the in-memory analysis sees.
  const Graph g = make_ba(100, 2, 7);
  AnytimeEngine engine(g, traced_cfg(3));
  const RunResult r = engine.run();
  const obs::CausalAnalysis direct = obs::analyze_causal(r.trace);

  std::ostringstream os;
  obs::write_chrome_trace(os, r.trace);
  std::istringstream is(os.str());
  std::vector<obs::CausalEvent> events;
  ASSERT_TRUE(obs::load_chrome_trace(is, events));
  const obs::CausalAnalysis parsed = obs::analyze_causal(events);

  EXPECT_EQ(parsed.flow_sends, direct.flow_sends);
  EXPECT_EQ(parsed.flow_recvs, direct.flow_recvs);
  EXPECT_EQ(parsed.matched_edges, direct.matched_edges);
  EXPECT_EQ(parsed.steps.size(), direct.steps.size());
}

// ------------------------------------------------- critical-path coverage

TEST(CriticalPath, CoversEachStepsMakespan) {
  // Acceptance bound (ISSUE 10): per-step critical-path time >= the step
  // makespan minus merge overhead. The walk partitions the makespan window
  // exactly, so the two agree to FP rounding.
  const Graph g = make_er(140, 420, 11, WeightRange{1, 4});
  AnytimeEngine engine(g, traced_cfg(4));
  const RunResult r = engine.run();

  const obs::CausalAnalysis a = obs::analyze_causal(r.trace);
  ASSERT_TRUE(a.wall_clock);
  ASSERT_FALSE(a.steps.empty());
  for (const obs::StepAttribution& s : a.steps) {
    EXPECT_GE(s.makespan_seconds, 0.0);
    EXPECT_GE(s.critical_path_seconds,
              0.999 * s.makespan_seconds - 1e-9)
        << "step " << s.step;
    EXPECT_GE(s.straggler, 0);
    EXPECT_LT(s.straggler, 4);
    // The chain is the partition; its segments sum to the critical path.
    double chain_sum = 0.0;
    for (const obs::PhaseCost& c : s.chain) {
      EXPECT_GE(c.seconds, -1e-12);
      EXPECT_GE(c.rank, 0);
      chain_sum += c.seconds;
    }
    EXPECT_NEAR(chain_sum, s.critical_path_seconds,
                1e-9 + 1e-6 * s.critical_path_seconds);
    // blocked_on is the same time aggregated by (rank, phase), largest
    // first.
    double blocked_sum = 0.0;
    for (std::size_t i = 0; i < s.blocked_on.size(); ++i) {
      if (i > 0) {
        EXPECT_LE(s.blocked_on[i].seconds, s.blocked_on[i - 1].seconds);
      }
      blocked_sum += s.blocked_on[i].seconds;
    }
    EXPECT_NEAR(blocked_sum, s.critical_path_seconds,
                1e-9 + 1e-6 * s.critical_path_seconds);
  }
}

// ----------------------------------------------- deterministic flow trace

TEST(CausalStitch, LogicalClockFlowTraceIsByteIdentical) {
  // Acceptance criterion: with trace.logical_clock the flow-stamped Chrome
  // trace is byte-identical across reruns of the same config.
  const Graph g = make_ba(90, 2, 13);
  EngineConfig cfg = traced_cfg(3);
  cfg.trace.logical_clock = true;

  const auto traced_json = [&] {
    AnytimeEngine engine(g, cfg);
    const RunResult r = engine.run();
    std::ostringstream os;
    obs::write_chrome_trace(os, r.trace);
    return os.str();
  };
  const std::string first = traced_json();
  const std::string second = traced_json();
  EXPECT_EQ(first, second);

  // Logical ticks are per-track: flow edges still stitch exactly, but the
  // cross-rank attribution is skipped rather than fabricated.
  AnytimeEngine engine(g, cfg);
  const obs::CausalAnalysis a =
      obs::analyze_causal(engine.run().trace, /*wall_clock=*/false);
  EXPECT_FALSE(a.wall_clock);
  EXPECT_GT(a.matched_edges, 0u);
  EXPECT_TRUE(a.steps.empty());
}

// ------------------------------------------- wire-format neutrality gates

TEST(FlowStamping, ResultsAreBitIdenticalOnOrOffInEveryExchangeMode) {
  const Graph g = make_er(110, 330, 17, WeightRange{1, 3});
  for (const ExchangeMode mode :
       {ExchangeMode::kDeterministic, ExchangeMode::kPipelined,
        ExchangeMode::kAsync}) {
    EngineConfig base;
    base.num_ranks = 4;
    base.exchange_mode = mode;
    // Reliable transport so stamping exercises the framed wire path.
    base.transport.reliable = true;

    AnytimeEngine plain_engine(g, base);
    const RunResult plain = plain_engine.run();

    EngineConfig off = base;
    off.trace.enabled = true;  // tracing on, stamping off
    AnytimeEngine off_engine(g, off);
    const RunResult without = off_engine.run();

    EngineConfig on = off;
    on.trace.flow_stamping = true;
    AnytimeEngine on_engine(g, on);
    const RunResult with = on_engine.run();

    const int m = static_cast<int>(mode);
    ASSERT_EQ(plain.closeness.size(), with.closeness.size()) << "mode " << m;
    for (VertexId v = 0; v < plain.closeness.size(); ++v) {
      ASSERT_EQ(plain.closeness[v], without.closeness[v])
          << "mode " << m << " vertex " << v;
      ASSERT_EQ(plain.closeness[v], with.closeness[v])
          << "mode " << m << " vertex " << v;
      ASSERT_EQ(plain.harmonic[v], with.harmonic[v])
          << "mode " << m << " vertex " << v;
    }
    // Stamping off: the wire is bit-identical to the unstamped format —
    // same payload bytes, same per-frame overhead.
    EXPECT_EQ(without.stats.total_bytes, plain.stats.total_bytes)
        << "mode " << m;
    EXPECT_EQ(without.stats.frame_overhead_bytes,
              plain.stats.frame_overhead_bytes)
        << "mode " << m;
    // Stamping on: the 8-byte flow id is honestly accounted as overhead.
    EXPECT_GT(with.stats.frame_overhead_bytes,
              without.stats.frame_overhead_bytes)
        << "mode " << m;
  }
}

// ----------------------------------------------------- recovery semantics

EventSchedule small_schedule(const Graph& g) {
  EventSchedule sched;
  EventBatch b;
  b.at_step = 1;
  VertexId fresh = g.num_vertices() / 2;
  while (fresh == 0 || g.has_edge(0, fresh)) ++fresh;
  b.events.push_back(EdgeAddEvent{0, fresh, 1});
  sched.push_back(std::move(b));
  return sched;
}

TEST(CausalRecovery, RollbackReplayNeverMatchesPreRollbackSends) {
  // Attempt isolation is structural: the attempt field is part of the flow
  // id, and every contained relaunch bumps it, so a replayed recv can
  // never pair with a pre-rollback send. The pre-crash attempt's in-flight
  // sends become unmatched — and classified as re-homed, not dangling,
  // because the trace carries the recovery instants.
  const Graph g = make_er(130, 390, 19, WeightRange{1, 3});
  EngineConfig cfg = traced_cfg(4);
  cfg.checkpoint_every = 2;
  cfg.recovery_policy = {{RecoveryPolicy::kRollback, 0}};
  cfg.transport.retry_backoff = std::chrono::microseconds(1);
  cfg.faults.crashes.push_back({1, 3});
  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run(small_schedule(g));
  ASSERT_EQ(r.stats.recoveries, 1u);

  const obs::CausalAnalysis a = obs::analyze_causal(r.trace);
  EXPECT_GT(a.matched_edges, 0u);
  EXPECT_EQ(a.dangling_sends, 0u);
  // Both attempts left matched edges in the trace, and no edge mixes them
  // (matching is by the full id, attempt included).
  std::uint32_t min_attempt = ~0u, max_attempt = 0;
  for (const obs::FlowEdge& e : a.edges) {
    min_attempt = std::min(min_attempt, e.attempt);
    max_attempt = std::max(max_attempt, e.attempt);
  }
  EXPECT_GT(max_attempt, min_attempt);
}

TEST(CausalRecovery, AdoptionRehomesTheDeadRanksFlows) {
  // Shard adoption keeps the survivors' attempt alive: the dead rank's
  // unmatched flow:send instants must be classified re-homed (the adopter
  // answers for its shards), leaving nothing dangling.
  const Graph g = make_er(130, 390, 23, WeightRange{1, 3});
  EngineConfig cfg = traced_cfg(4);
  cfg.checkpoint_every = 2;  // adoption splits shards out of these snapshots
  cfg.recovery_policy = {{RecoveryPolicy::kAdopt, 0}};
  cfg.transport.retry_backoff = std::chrono::microseconds(1);
  cfg.faults.crashes.push_back({2, 2});
  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run(small_schedule(g));
  ASSERT_EQ(r.stats.recoveries, 1u);
  EXPECT_FALSE(r.degraded);

  const obs::CausalAnalysis a = obs::analyze_causal(r.trace);
  EXPECT_GT(a.matched_edges, 0u);
  EXPECT_EQ(a.dangling_sends, 0u);
}

// ------------------------------------------------- histogram percentiles

TEST(HistogramQuantile, EmptySingleAndClampedCases) {
  obs::Histogram h;
  EXPECT_EQ(obs::histogram_quantile(h, 0.5), 0.0);

  h.record(1000);
  EXPECT_EQ(obs::histogram_quantile(h, 0.0), 1000.0);
  EXPECT_EQ(obs::histogram_quantile(h, 0.5), 1000.0);
  EXPECT_EQ(obs::histogram_quantile(h, 1.0), 1000.0);

  obs::Histogram u;
  for (std::uint64_t v = 1; v <= 1024; ++v) u.record(v);
  // Power-of-two buckets: the estimate is exact to within one bucket
  // width (a factor of two), and always clamped to [min, max].
  const double p50 = obs::histogram_quantile(u, 0.50);
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 1024.0);
  const double p99 = obs::histogram_quantile(u, 0.99);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1024.0);
  EXPECT_LE(obs::histogram_quantile(u, 0.5), obs::histogram_quantile(u, 0.95));
  EXPECT_LE(obs::histogram_quantile(u, 0.95), obs::histogram_quantile(u, 0.99));
  EXPECT_EQ(obs::histogram_quantile(u, 1.0), 1024.0);
  EXPECT_EQ(obs::histogram_quantile(u, 0.0), 1.0);
}

TEST(HistogramQuantile, RegistryJsonCarriesThePercentiles) {
  obs::MetricsRegistry reg;
  for (std::uint64_t v = 1; v <= 64; ++v) reg.histogram("lat").record(v * 10);
  std::ostringstream os;
  reg.to_json(os);
  const std::string json = os.str();
  const std::size_t at = json.find("\"lat\"");
  ASSERT_NE(at, std::string::npos);
  // Stable key order: count, sum, min, max, p50, p95, p99, buckets.
  const char* keys[] = {"\"count\":", "\"sum\":",  "\"min\":", "\"max\":",
                        "\"p50\":",   "\"p95\":", "\"p99\":", "\"buckets\":"};
  std::size_t pos = at;
  for (const char* k : keys) {
    pos = json.find(k, pos);
    ASSERT_NE(pos, std::string::npos) << "missing " << k;
  }
}

// --------------------------------------------------------- serve-side SLOs

TEST(ServeSlo, HistogramsCountEveryQueryKindSeparately) {
  const Graph g = make_ba(60, 2, 7);
  EngineConfig cfg;
  cfg.num_ranks = 2;
  cfg.serve_sample_every = 2;
  cfg.serve_sample_seed = 1;
  serve::EngineSession session(g, cfg);
  const serve::QueryView view = session.view();
  const RunResult r0 = session.close();
  (void)r0;

  // Post-close queries are deterministic (exact final state, age 0) and
  // serial, so the counts and the 1-in-N sample set are exact.
  for (int i = 0; i < 10; ++i) (void)view.point(static_cast<VertexId>(i));
  for (int i = 0; i < 3; ++i) (void)view.top_k(5);
  for (int i = 0; i < 5; ++i) (void)view.rank_of(static_cast<VertexId>(i));

  const serve::SloSnapshot slo = session.slo();
  EXPECT_EQ(slo.point.count, 10u);
  EXPECT_EQ(slo.top_k.count, 3u);
  EXPECT_EQ(slo.rank_of.count, 5u);
  EXPECT_GT(obs::histogram_quantile(slo.point, 0.99), 0.0);
  EXPECT_LE(obs::histogram_quantile(slo.point, 0.50),
            obs::histogram_quantile(slo.point, 0.99));

  // Sampling is (index + seed) % every == 0 over the global query index:
  // with every=2, seed=1 the odd indices are captured, in order.
  const std::vector<serve::QuerySample> samples = session.query_samples();
  ASSERT_EQ(samples.size(), 9u);  // 18 queries, every other one
  const char expected_kinds[] = {'p', 'p', 'p', 'p', 'p', 't', 'r', 'r', 'r'};
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].index, 2 * i + 1) << "sample " << i;
    EXPECT_EQ(samples[i].kind, expected_kinds[i]) << "sample " << i;
    EXPECT_GT(samples[i].ns, 0u);
  }
  // A found point query ties itself to the publish that served it.
  EXPECT_GE(samples[0].snapshot_epoch, 1u);
}

TEST(ServeSlo, PreCloseQueriesLandInTheRunStatsSummary) {
  const Graph g = make_ba(50, 2, 9);
  EngineConfig cfg;
  cfg.num_ranks = 2;
  serve::EngineSession session(g, cfg);
  const serve::QueryView view = session.view();
  for (int i = 0; i < 7; ++i) (void)view.point(0);
  const RunResult r = session.close();

  const auto it = r.stats.histogram_summary.find("serve/query_ns/point");
  ASSERT_NE(it, r.stats.histogram_summary.end());
  EXPECT_EQ(it->second.count, 7u);
  EXPECT_GT(it->second.p99, 0.0);
  EXPECT_LE(it->second.p50, it->second.p99);
  // And the JSON surface carries the summaries.
  const std::string json = r.stats.to_json();
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"serve/query_ns/point\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

TEST(ServeSlo, SamplingDisabledWhenEveryIsZero) {
  const Graph g = make_ba(40, 2, 11);
  EngineConfig cfg;
  cfg.num_ranks = 2;
  cfg.serve_sample_every = 0;
  serve::EngineSession session(g, cfg);
  const serve::QueryView view = session.view();
  (void)session.close();
  for (int i = 0; i < 8; ++i) (void)view.point(0);
  EXPECT_EQ(session.slo().point.count, 8u);
  EXPECT_TRUE(session.query_samples().empty());
}

// ------------------------------------------- silence names the stuck flow

TEST(HealthFlow, DeathMessageNamesTheAwaitedFlow) {
  // Satellite: PeerFailedError from a health declaration under the
  // reliable transport names the exact message the observer was stuck on
  // (RC step + next expected frame seqno from that peer).
  rt::TransportConfig tc;
  tc.reliable = true;
  tc.recv_timeout = std::chrono::milliseconds(30000);
  tc.retry_backoff = std::chrono::microseconds(1);
  rt::World world(2, {}, tc);
  rt::HealthConfig hc;
  hc.enabled = true;
  hc.straggler_after = std::chrono::milliseconds(10);
  hc.suspect_after = std::chrono::milliseconds(20);
  hc.dead_after = std::chrono::milliseconds(60);
  world.install_health(hc);
  const auto report = world.run_contained([&](rt::Comm& comm) {
    if (comm.rank() == 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
      return;
    }
    (void)comm.recv(1, 5);
  });
  ASSERT_FALSE(report.ok());
  bool saw_flow = false;
  for (const Rank r : report.failed) {
    try {
      std::rethrow_exception(report.errors[static_cast<std::size_t>(r)]);
    } catch (const rt::PeerFailedError& e) {
      EXPECT_EQ(e.peer(), 1);
      const std::string what = e.what();
      EXPECT_NE(what.find("stuck awaiting flow (step="), std::string::npos)
          << what;
      saw_flow = true;
    } catch (...) {
    }
  }
  EXPECT_TRUE(saw_flow);
}

}  // namespace
}  // namespace aacc
