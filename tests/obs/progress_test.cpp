// The streaming progress feed (docs/OBSERVABILITY.md §Progress events):
// NDJSON round-trip and parser hardening, the file sink, and the engine
// integration — event coherence on a static run, bit-identity of results
// with the feed on/off, recovery events under injected crashes, and the
// bounded top-k quality snapshots.
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/closeness.hpp"
#include "obs/progress.hpp"
#include "test_util.hpp"

namespace aacc {
namespace {

using test::make_ba;
using test::make_er;

obs::ProgressEvent sample_event() {
  obs::ProgressEvent ev;
  ev.phase = "rc_step";
  ev.step = 7;
  ev.ranks = 4;
  ev.dirty = 123;
  ev.dirty_fraction = 0.125;
  ev.settled = 4567;
  ev.columns = 9000;
  ev.relaxations = 1000;
  ev.poisons = 17;
  ev.repairs = 9;
  ev.queue_sum = 321;
  ev.queue_max = 99;
  ev.bytes = 1u << 20;
  ev.retransmits = 3;
  ev.recoveries = 1;
  ev.has_estimators = true;
  ev.topk_overlap = 0.875;
  ev.kendall_tau = -0.25;
  ev.top = {5, 1, 9};
  return ev;
}

TEST(ProgressEvent, NdjsonRoundTrip) {
  const obs::ProgressEvent ev = sample_event();
  const std::string line = obs::to_ndjson(ev);
  // One line, no embedded newline (it is an NDJSON record).
  EXPECT_EQ(line.find('\n'), std::string::npos);

  obs::ProgressEvent back;
  ASSERT_TRUE(obs::parse_progress_event(line, back)) << line;
  EXPECT_EQ(back.phase, ev.phase);
  EXPECT_EQ(back.step, ev.step);
  EXPECT_EQ(back.ranks, ev.ranks);
  EXPECT_EQ(back.dirty, ev.dirty);
  EXPECT_DOUBLE_EQ(back.dirty_fraction, ev.dirty_fraction);
  EXPECT_EQ(back.settled, ev.settled);
  EXPECT_EQ(back.columns, ev.columns);
  EXPECT_EQ(back.relaxations, ev.relaxations);
  EXPECT_EQ(back.poisons, ev.poisons);
  EXPECT_EQ(back.repairs, ev.repairs);
  EXPECT_EQ(back.queue_sum, ev.queue_sum);
  EXPECT_EQ(back.queue_max, ev.queue_max);
  EXPECT_EQ(back.bytes, ev.bytes);
  EXPECT_EQ(back.retransmits, ev.retransmits);
  EXPECT_EQ(back.recoveries, ev.recoveries);
  ASSERT_TRUE(back.has_estimators);
  EXPECT_DOUBLE_EQ(back.topk_overlap, ev.topk_overlap);
  EXPECT_DOUBLE_EQ(back.kendall_tau, ev.kendall_tau);
  EXPECT_EQ(back.top, ev.top);
}

TEST(ProgressEvent, RoundTripWithoutOptionalFields) {
  obs::ProgressEvent ev;
  ev.phase = "recovery";
  ev.step = 3;
  ev.ranks = 8;
  ev.recoveries = 2;
  ev.detail = "rollback";
  const std::string line = obs::to_ndjson(ev);
  obs::ProgressEvent back;
  ASSERT_TRUE(obs::parse_progress_event(line, back)) << line;
  EXPECT_EQ(back.phase, "recovery");
  EXPECT_EQ(back.detail, "rollback");
  EXPECT_FALSE(back.has_estimators);
  EXPECT_TRUE(back.top.empty());
}

TEST(ProgressEvent, ParserRejectsMalformedInput) {
  obs::ProgressEvent ev;
  EXPECT_FALSE(obs::parse_progress_event("", ev));
  EXPECT_FALSE(obs::parse_progress_event("not json", ev));
  EXPECT_FALSE(obs::parse_progress_event("{\"v\":1}", ev));  // no phase
  EXPECT_FALSE(obs::parse_progress_event("{\"phase\":\"ia\"}", ev));  // no v
  // A schema version from the future must be rejected, not misread.
  EXPECT_FALSE(
      obs::parse_progress_event("{\"v\":999,\"phase\":\"ia\",\"step\":0}", ev));
  // Trailing garbage after the document.
  EXPECT_FALSE(obs::parse_progress_event(
      "{\"v\":1,\"phase\":\"ia\",\"step\":0} trailing", ev));
}

TEST(ProgressEvent, ParserToleratesUnknownFields) {
  // Forward compatibility inside one schema version: unknown fields are
  // skipped (objects, arrays, strings, numbers).
  obs::ProgressEvent ev;
  ASSERT_TRUE(obs::parse_progress_event(
      "{\"v\":1,\"phase\":\"rc_step\",\"step\":5,"
      "\"future\":{\"a\":[1,2,{\"b\":\"c\"}]},\"note\":\"hi\"}",
      ev));
  EXPECT_EQ(ev.phase, "rc_step");
  EXPECT_EQ(ev.step, 5u);
}

TEST(ProgressSinks, FileSinkWritesParseableLines) {
  const std::string path = ::testing::TempDir() + "/progress_sink_test.ndjson";
  {
    obs::NdjsonFileSink sink(path);
    ASSERT_TRUE(sink.ok());
    sink.on_event(sample_event());
    obs::ProgressEvent second;
    second.phase = "done";
    second.step = 8;
    second.ranks = 4;
    sink.on_event(second);
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[4096];
  std::vector<std::string> lines;
  while (std::fgets(buf, sizeof buf, f) != nullptr) lines.emplace_back(buf);
  std::fclose(f);
  ASSERT_EQ(lines.size(), 2u);
  obs::ProgressEvent back;
  ASSERT_TRUE(obs::parse_progress_event(
      lines[0].substr(0, lines[0].size() - 1), back));
  EXPECT_EQ(back.phase, "rc_step");
  ASSERT_TRUE(obs::parse_progress_event(
      lines[1].substr(0, lines[1].size() - 1), back));
  EXPECT_EQ(back.phase, "done");
  std::remove(path.c_str());
}

TEST(ProgressSinks, BadPathDropsEventsWithoutFailing) {
  obs::NdjsonFileSink sink("/nonexistent-dir-aacc/progress.ndjson");
  EXPECT_FALSE(sink.ok());
  sink.on_event(sample_event());  // must not crash
}

// ------------------------------------------------- engine integration

std::vector<obs::ProgressEvent> run_with_feed(const Graph& g,
                                              EngineConfig cfg,
                                              RunResult* result = nullptr) {
  auto events = std::make_shared<std::vector<obs::ProgressEvent>>();
  // The contract guarantees serial invocation, so plain push_back is safe.
  cfg.progress.callback = [events](const obs::ProgressEvent& ev) {
    events->push_back(ev);
  };
  AnytimeEngine engine(g, cfg);
  RunResult r = engine.run();
  if (result != nullptr) *result = std::move(r);
  return *events;
}

TEST(ProgressFeed, StaticRunEmitsCoherentEventStream) {
  const Graph g = make_ba(220, 2, 11);
  EngineConfig cfg;
  cfg.num_ranks = 4;
  cfg.progress.top_k = 16;

  RunResult r;
  const auto events = run_with_feed(g, cfg, &r);
  ASSERT_GE(events.size(), 3u);

  // Shape: one IA event first, rc_step per step, one done event last.
  EXPECT_EQ(events.front().phase, "ia");
  EXPECT_EQ(events.back().phase, "done");
  std::size_t rc_events = 0;
  std::uint64_t prev_settled = 0;
  std::size_t expected_step = 0;
  for (const auto& ev : events) {
    EXPECT_EQ(ev.ranks, cfg.num_ranks);
    EXPECT_GE(ev.dirty_fraction, 0.0);
    EXPECT_LE(ev.dirty_fraction, 1.0);
    if (ev.phase == "rc_step") {
      EXPECT_EQ(ev.step, expected_step++);
      // Distances only shrink, so the settled count never decreases.
      EXPECT_GE(ev.settled, prev_settled);
      prev_settled = ev.settled;
      EXPECT_LE(ev.settled, ev.columns);
      EXPECT_FALSE(ev.top.empty());
      EXPECT_LE(ev.top.size(), cfg.progress.top_k);
      if (ev.has_estimators) {
        EXPECT_GE(ev.topk_overlap, 0.0);
        EXPECT_LE(ev.topk_overlap, 1.0);
        EXPECT_GE(ev.kendall_tau, -1.0);
        EXPECT_LE(ev.kendall_tau, 1.0);
      }
      ++rc_events;
    }
  }
  EXPECT_EQ(rc_events, r.stats.rc_steps);
  EXPECT_EQ(events.back().step, r.stats.rc_steps);
  EXPECT_EQ(events.back().bytes, r.stats.total_bytes);

  // By quiescence the ranking has stabilized: the last rc_step's top list
  // must equal the final exact top-k.
  const obs::ProgressEvent* last_rc = nullptr;
  for (const auto& ev : events) {
    if (ev.phase == "rc_step") last_rc = &ev;
  }
  ASSERT_NE(last_rc, nullptr);
  EXPECT_EQ(last_rc->top, top_k(r.harmonic, cfg.progress.top_k));
}

TEST(ProgressFeed, FeedDoesNotPerturbResults) {
  const Graph g = make_er(180, 540, 29, WeightRange{1, 4});
  EngineConfig cfg;
  cfg.num_ranks = 4;

  AnytimeEngine plain_engine(g, cfg);
  const RunResult plain = plain_engine.run();

  RunResult with_feed;
  const auto events = run_with_feed(g, cfg, &with_feed);
  EXPECT_FALSE(events.empty());

  // Bit-identical, not approximately equal.
  ASSERT_EQ(with_feed.closeness.size(), plain.closeness.size());
  for (VertexId v = 0; v < plain.closeness.size(); ++v) {
    ASSERT_EQ(with_feed.closeness[v], plain.closeness[v]) << "vertex " << v;
    ASSERT_EQ(with_feed.harmonic[v], plain.harmonic[v]) << "vertex " << v;
  }
  EXPECT_EQ(with_feed.stats.rc_steps, plain.stats.rc_steps);
}

TEST(ProgressFeed, RecoveryEventsUnderInjectedCrash) {
  const Graph g = make_er(130, 390, 13, WeightRange{1, 3});
  EngineConfig cfg;
  cfg.num_ranks = 4;
  cfg.checkpoint_every = 2;
  cfg.faults.crashes.push_back({1, 3});

  RunResult r;
  const auto events = run_with_feed(g, cfg, &r);
  ASSERT_EQ(r.stats.recoveries, 1u);

  std::size_t recovery_events = 0;
  for (const auto& ev : events) {
    if (ev.phase == "recovery") {
      EXPECT_EQ(ev.detail, "rollback");
      EXPECT_EQ(ev.recoveries, 1u);
      ++recovery_events;
    }
  }
  EXPECT_EQ(recovery_events, 1u);
  EXPECT_EQ(events.back().phase, "done");
  EXPECT_EQ(events.back().recoveries, 1u);
  // Post-recovery rc_step events carry the bumped recovery counter.
  bool saw_recovered_step = false;
  for (const auto& ev : events) {
    if (ev.phase == "rc_step" && ev.recoveries == 1u) {
      saw_recovered_step = true;
    }
  }
  EXPECT_TRUE(saw_recovered_step);
}

// ------------------------------------------- bounded quality snapshots

TEST(BoundedQuality, LargeKMatchesUnboundedSnapshotsExactly) {
  const Graph g = make_ba(200, 2, 7);
  EngineConfig base;
  base.num_ranks = 4;
  base.record_step_quality = true;

  AnytimeEngine unbounded_engine(g, base);
  const RunResult unbounded = unbounded_engine.run();

  EngineConfig bounded_cfg = base;
  bounded_cfg.quality_top_k = g.num_vertices();  // k = n: same content
  AnytimeEngine bounded_engine(g, bounded_cfg);
  const RunResult bounded = bounded_engine.run();

  ASSERT_EQ(bounded.step_harmonic.size(), unbounded.step_harmonic.size());
  for (std::size_t s = 0; s < unbounded.step_harmonic.size(); ++s) {
    ASSERT_EQ(bounded.step_harmonic[s], unbounded.step_harmonic[s])
        << "step " << s;
  }
}

TEST(BoundedQuality, SmallKKeepsPerRankTopScores) {
  const Graph g = make_ba(200, 2, 7);
  EngineConfig base;
  base.num_ranks = 4;
  base.record_step_quality = true;

  AnytimeEngine unbounded_engine(g, base);
  const RunResult unbounded = unbounded_engine.run();

  EngineConfig bounded_cfg = base;
  bounded_cfg.quality_top_k = 5;
  AnytimeEngine bounded_engine(g, bounded_cfg);
  const RunResult bounded = bounded_engine.run();

  ASSERT_EQ(bounded.step_harmonic.size(), unbounded.step_harmonic.size());
  for (std::size_t s = 0; s < bounded.step_harmonic.size(); ++s) {
    std::size_t kept = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const double bv = bounded.step_harmonic[s][v];
      if (bv == 0.0) continue;  // outside some rank's top-k
      // Every kept entry is bit-identical to the unbounded snapshot.
      ASSERT_EQ(bv, unbounded.step_harmonic[s][v])
          << "step " << s << " vertex " << v;
      ++kept;
    }
    // 4 ranks x top-5 bounds the survivors.
    EXPECT_LE(kept, 4u * 5u) << "step " << s;
    EXPECT_GT(kept, 0u) << "step " << s;
  }
}

}  // namespace
}  // namespace aacc
