// Observability subsystem: metrics registry semantics, the span tracer's
// Chrome trace-event export (golden file), and the engine-level guarantees
// — structurally valid deterministic traces, and bit-identical results and
// deterministic stats whether tracing is on or off.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace aacc {
namespace {

// ---------------------------------------------------------------- metrics

TEST(Metrics, CountersAndGauges) {
  obs::MetricsRegistry reg;
  reg.counter("a").add(2);
  reg.counter("a").add(3);
  reg.gauge("g").add(0.5);
  reg.gauge("g").add(0.25);
  EXPECT_EQ(reg.counter_value("a"), 5u);
  EXPECT_DOUBLE_EQ(reg.gauge_value("g"), 0.75);
  EXPECT_EQ(reg.counter_value("missing"), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge_value("missing"), 0.0);
  reg.gauge("g").set(9.0);
  EXPECT_DOUBLE_EQ(reg.gauge_value("g"), 9.0);
}

TEST(Metrics, HistogramBuckets) {
  obs::Histogram h;
  h.record(0);  // bucket 0
  h.record(1);  // bucket 0
  h.record(2);  // bucket 2: [2, 4)
  h.record(3);  // bucket 2
  h.record(1024);  // bucket 11: [1024, 2048)
  EXPECT_EQ(h.count, 5u);
  EXPECT_EQ(h.sum, 1030u);
  EXPECT_EQ(h.min, 0u);
  EXPECT_EQ(h.max, 1024u);
  EXPECT_EQ(h.buckets[0], 2u);
  EXPECT_EQ(h.buckets[2], 2u);
  EXPECT_EQ(h.buckets[11], 1u);
}

TEST(Metrics, MergeAddsAndCombines) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.counter("c").add(1);
  b.counter("c").add(2);
  b.counter("only_b").add(7);
  a.gauge("g").add(1.5);
  b.gauge("g").add(2.5);
  a.histogram("h").record(4);
  b.histogram("h").record(100);
  a.merge(b);
  EXPECT_EQ(a.counter_value("c"), 3u);
  EXPECT_EQ(a.counter_value("only_b"), 7u);
  EXPECT_DOUBLE_EQ(a.gauge_value("g"), 4.0);
  const obs::Histogram* h = a.find_histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_EQ(h->min, 4u);
  EXPECT_EQ(h->max, 100u);
}

TEST(Metrics, ToJsonIsDeterministic) {
  obs::MetricsRegistry reg;
  reg.counter("z").add(1);
  reg.counter("a").add(2);
  reg.gauge("mid").set(0.5);
  reg.histogram("h").record(3);
  std::ostringstream s1;
  std::ostringstream s2;
  reg.to_json(s1);
  reg.to_json(s2);
  EXPECT_EQ(s1.str(), s2.str());
  // Keys serialize in name order regardless of insertion order.
  const std::string j = s1.str();
  EXPECT_LT(j.find("\"a\""), j.find("\"z\""));
  EXPECT_NE(j.find("\"counters\""), std::string::npos);
  EXPECT_NE(j.find("\"gauges\""), std::string::npos);
  EXPECT_NE(j.find("\"histograms\""), std::string::npos);
}

// ----------------------------------------------------------------- tracer

obs::TraceConfig logical_cfg() {
  obs::TraceConfig cfg;
  cfg.enabled = true;
  cfg.logical_clock = true;
  cfg.track_capacity = 1024;
  return cfg;
}

TEST(Tracer, GoldenChromeTrace) {
  obs::Tracer tracer(2, 1, logical_cfg());
  tracer.track(0).begin("ia", "rows", 3);
  tracer.track(0).end("ia");
  tracer.subtrack(0, 0).begin("drain_shard");
  tracer.subtrack(0, 0).end("drain_shard");
  tracer.track(1).instant("repairs", "count", 7);
  tracer.driver().begin("dd");
  tracer.driver().end("dd");

  std::ostringstream os;
  obs::write_chrome_trace(os, tracer.merge());
  const std::string expected =
      "{\"traceEvents\":[\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"ts\":0,"
      "\"args\":{\"name\":\"rank 0\"}},\n"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"ts\":0,"
      "\"args\":{\"name\":\"main\"}},\n"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":1,\"ts\":0,"
      "\"args\":{\"name\":\"shard 0\"}},\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"ts\":0,"
      "\"args\":{\"name\":\"rank 1\"}},\n"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"ts\":0,"
      "\"args\":{\"name\":\"main\"}},\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2147483647,\"tid\":0,"
      "\"ts\":0,\"args\":{\"name\":\"driver\"}},\n"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2147483647,\"tid\":0,"
      "\"ts\":0,\"args\":{\"name\":\"driver\"}},\n"
      "{\"name\":\"ia\",\"ph\":\"B\",\"pid\":0,\"tid\":0,\"ts\":1.000,"
      "\"args\":{\"rows\":3}},\n"
      "{\"name\":\"ia\",\"ph\":\"E\",\"pid\":0,\"tid\":0,\"ts\":2.000},\n"
      "{\"name\":\"drain_shard\",\"ph\":\"B\",\"pid\":0,\"tid\":1,"
      "\"ts\":1.000},\n"
      "{\"name\":\"drain_shard\",\"ph\":\"E\",\"pid\":0,\"tid\":1,"
      "\"ts\":2.000},\n"
      "{\"name\":\"repairs\",\"ph\":\"i\",\"pid\":1,\"tid\":0,\"ts\":1.000,"
      "\"s\":\"t\",\"args\":{\"count\":7}},\n"
      "{\"name\":\"dd\",\"ph\":\"B\",\"pid\":2147483647,\"tid\":0,"
      "\"ts\":1.000},\n"
      "{\"name\":\"dd\",\"ph\":\"E\",\"pid\":2147483647,\"tid\":0,"
      "\"ts\":2.000}\n"
      "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":0}}\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(Tracer, ClosesSpansLeftOpen) {
  obs::Tracer tracer(1, 0, logical_cfg());
  tracer.track(0).begin("rc_step");
  tracer.track(0).begin("drain");
  tracer.track(0).instant("mark");
  // No end events: the rank "crashed". The exporter must balance both.
  std::ostringstream os;
  obs::write_chrome_trace(os, tracer.merge());
  const std::string j = os.str();
  std::size_t begins = 0;
  std::size_t ends = 0;
  for (std::size_t p = 0; (p = j.find("\"ph\":\"B\"", p)) != std::string::npos;
       ++p) {
    ++begins;
  }
  for (std::size_t p = 0; (p = j.find("\"ph\":\"E\"", p)) != std::string::npos;
       ++p) {
    ++ends;
  }
  EXPECT_EQ(begins, 2u);
  EXPECT_EQ(ends, 2u);
  // Synthesized ends carry the track's final timestamp (the instant's).
  EXPECT_NE(j.find("{\"name\":\"drain\",\"ph\":\"E\",\"pid\":0,\"tid\":0,"
                   "\"ts\":3.000}"),
            std::string::npos);
}

TEST(Tracer, DropsNewestOnOverflowAndCounts) {
  obs::TraceConfig cfg = logical_cfg();
  cfg.track_capacity = 4;
  obs::Tracer tracer(1, 0, cfg);
  for (int i = 0; i < 10; ++i) tracer.track(0).instant("e");
  EXPECT_EQ(tracer.track(0).size(), 4u);
  EXPECT_EQ(tracer.track(0).dropped(), 6u);
  const obs::Trace t = tracer.merge();
  EXPECT_EQ(t.events.size(), 4u);
  EXPECT_EQ(t.dropped, 6u);
}

TEST(ScopedSpan, NullTrackIsNoOp) {
  const obs::ScopedSpan span(nullptr, "nothing");
  // Destruction must also be a no-op; reaching here is the test.
  SUCCEED();
}

// ----------------------------------------------------------- engine-level

EngineConfig traced_cfg(Rank ranks) {
  EngineConfig cfg;
  cfg.num_ranks = ranks;
  cfg.rc_threads = 2;
  cfg.trace.enabled = true;
  cfg.trace.logical_clock = true;
  return cfg;
}

EventSchedule small_schedule(const Graph& g) {
  EventSchedule schedule;
  VertexAddEvent ev;
  ev.id = g.num_vertices();
  ev.edges = {{0, 1}, {1, 1}};
  schedule.push_back({2, {ev}});
  return schedule;
}

TEST(EngineTrace, StructurallyValidAndComplete) {
  Rng rng(5);
  const Graph g = barabasi_albert(300, 2, rng);
  EngineConfig cfg = traced_cfg(4);
  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run(small_schedule(g));

  ASSERT_FALSE(r.trace.empty());
  EXPECT_EQ(r.trace.dropped, 0u);

  // Per-track: timestamps monotone nondecreasing, begin/end balanced.
  std::map<std::pair<int, int>, std::uint64_t> last_ts;
  std::map<std::pair<int, int>, int> depth;
  std::map<std::string, int> names;
  for (const obs::Trace::Entry& e : r.trace.events) {
    const std::pair<int, int> track{e.pid, e.tid};
    const auto it = last_ts.find(track);
    if (it != last_ts.end()) EXPECT_GE(e.ev.ts_ns, it->second);
    last_ts[track] = e.ev.ts_ns;
    if (e.ev.kind == obs::EventKind::kBegin) {
      ++depth[track];
      ++names[e.ev.name];
    } else if (e.ev.kind == obs::EventKind::kEnd) {
      --depth[track];
      EXPECT_GE(depth[track], 0);
    }
  }
  for (const auto& [track, d] : depth) {
    EXPECT_EQ(d, 0) << "unbalanced spans on pid " << track.first << " tid "
                    << track.second;
  }

  // Every phase of the run shows up as a span.
  for (const char* expected :
       {"dd", "attempt", "ia", "rc_step", "exchange", "drain", "poison_sync",
        "ingest", "result_assembly"}) {
    EXPECT_GT(names[expected], 0) << "missing span " << expected;
  }
}

TEST(EngineTrace, LogicalClockTraceIsReproducible) {
  Rng rng(5);
  const Graph g = barabasi_albert(200, 2, rng);
  std::string exported[2];
  for (int i = 0; i < 2; ++i) {
    EngineConfig cfg = traced_cfg(3);
    AnytimeEngine engine(g, cfg);
    const RunResult r = engine.run(small_schedule(g));
    std::ostringstream os;
    obs::write_chrome_trace(os, r.trace);
    exported[i] = os.str();
  }
  EXPECT_EQ(exported[0], exported[1]);
}

TEST(EngineTrace, ResultsIdenticalWithTracingOnOrOff) {
  Rng rng(9);
  const Graph g = barabasi_albert(250, 2, rng);
  RunResult results[2];
  for (int i = 0; i < 2; ++i) {
    EngineConfig cfg;
    cfg.num_ranks = 4;
    cfg.rc_threads = 2;
    cfg.trace.enabled = i == 1;
    AnytimeEngine engine(g, cfg);
    results[i] = engine.run(small_schedule(g));
  }
  const RunStats& off = results[0].stats;
  const RunStats& on = results[1].stats;
  // Bit-identical algorithm outputs and deterministic ledger fields; CPU
  // seconds and wall time legitimately differ run to run.
  EXPECT_EQ(results[0].closeness, results[1].closeness);
  EXPECT_EQ(results[0].harmonic, results[1].harmonic);
  EXPECT_EQ(off.total_bytes, on.total_bytes);
  EXPECT_EQ(off.total_messages, on.total_messages);
  EXPECT_EQ(off.rc_steps, on.rc_steps);
  EXPECT_EQ(off.cut_edges_initial, on.cut_edges_initial);
  EXPECT_EQ(off.cut_edges_final, on.cut_edges_final);
  ASSERT_EQ(off.steps.size(), on.steps.size());
  for (std::size_t s = 0; s < off.steps.size(); ++s) {
    EXPECT_EQ(off.steps[s].relaxations, on.steps[s].relaxations);
    EXPECT_EQ(off.steps[s].poisons, on.steps[s].poisons);
    EXPECT_EQ(off.steps[s].repairs, on.steps[s].repairs);
    EXPECT_EQ(off.steps[s].bytes, on.steps[s].bytes);
  }
  EXPECT_TRUE(results[0].trace.empty());
  EXPECT_FALSE(results[1].trace.empty());
}

TEST(EngineMetrics, RegistryAgreesWithStats) {
  Rng rng(3);
  const Graph g = barabasi_albert(300, 2, rng);
  EngineConfig cfg;
  cfg.num_ranks = 4;
  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run(small_schedule(g));

  // RunStats ledger fields are derived from the registry; check both views
  // agree and the algorithm counters match the per-step aggregates.
  EXPECT_EQ(r.metrics.counter_value("transport/bytes_sent"),
            r.stats.total_bytes);
  EXPECT_EQ(r.metrics.counter_value("transport/messages_sent"),
            r.stats.total_messages);
  EXPECT_EQ(r.metrics.counter_value("transport/frame_overhead_bytes"),
            r.stats.frame_overhead_bytes);
  EXPECT_EQ(r.metrics.counter_value("transport/retransmits"),
            r.stats.retransmits);
  EXPECT_DOUBLE_EQ(r.metrics.gauge_value("cpu/total"),
                   r.stats.total_cpu_seconds);
  EXPECT_DOUBLE_EQ(r.metrics.gauge_value("cpu/max_rank"),
                   r.stats.max_rank_cpu_seconds);
  EXPECT_DOUBLE_EQ(r.metrics.gauge_value("net/modeled_serialized"),
                   r.stats.modeled_network_seconds_serialized);

  std::uint64_t relaxations = 0;
  std::uint64_t poisons = 0;
  std::uint64_t repairs = 0;
  for (const StepStats& s : r.stats.steps) {
    relaxations += s.relaxations;
    poisons += s.poisons;
    repairs += s.repairs;
  }
  EXPECT_EQ(r.metrics.counter_value("rc/relaxations"), relaxations);
  EXPECT_EQ(r.metrics.counter_value("rc/poisons"), poisons);
  EXPECT_EQ(r.metrics.counter_value("rc/repairs"), repairs);
  EXPECT_EQ(r.metrics.counter_value("rc/steps"),
            static_cast<std::uint64_t>(cfg.num_ranks) * r.stats.steps.size());
  const obs::Histogram* depth =
      r.metrics.find_histogram("rc/drain_queue_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_GT(depth->count, 0u);
}

TEST(RunStatsJson, SchemaAndDeterminism) {
  Rng rng(2);
  const Graph g = barabasi_albert(120, 2, rng);
  EngineConfig cfg;
  cfg.num_ranks = 2;
  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run();
  const std::string with_steps = r.stats.to_json();
  const std::string without = r.stats.to_json(/*include_steps=*/false);
  EXPECT_EQ(with_steps, r.stats.to_json());
  for (const char* key :
       {"\"wall_seconds\"", "\"total_cpu_seconds\"", "\"cpu_by_phase\"",
        "\"total_bytes\"", "\"modeled_network_seconds\"", "\"rc_steps\"",
        "\"recoveries\"", "\"imbalance_final\""}) {
    EXPECT_NE(with_steps.find(key), std::string::npos) << key;
    EXPECT_NE(without.find(key), std::string::npos) << key;
  }
  EXPECT_NE(with_steps.find("\"steps\""), std::string::npos);
  EXPECT_EQ(without.find("\"steps\""), std::string::npos);
  EXPECT_FALSE(r.stats.summary().empty());
}

}  // namespace
}  // namespace aacc
