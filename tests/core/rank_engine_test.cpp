// RankEngine in isolation (driven directly on a World): IA correctness
// against local Dijkstra semantics, invariant auditing, and state
// serialization round-trips.
#include <gtest/gtest.h>

#include "analysis/shortest_paths.hpp"
#include "core/rank_engine.hpp"
#include "graph/generators.hpp"
#include "partition/partition.hpp"
#include "runtime/comm.hpp"
#include "test_util.hpp"

namespace aacc {
namespace {

struct Fixture {
  Graph g;
  Partition part;
  std::vector<std::tuple<VertexId, VertexId, Weight>> edges;
  EngineConfig cfg;
};

Fixture make_fixture(VertexId n, Rank P, std::uint64_t seed) {
  Fixture f;
  f.g = test::make_er(n, n * 3, seed, WeightRange{1, 4});
  Rng rng(seed);
  f.part = partition_graph(f.g, P, PartitionerKind::kMultilevel, rng);
  f.edges = f.g.edges();
  f.cfg.num_ranks = P;
  return f;
}

RankEngine::Init init_for(const Fixture& f, Rank me,
                          const EventSchedule* sched = nullptr) {
  RankEngine::Init init;
  init.me = me;
  init.world = f.cfg.num_ranks;
  init.owner = f.part.assignment;
  init.edges = &f.edges;
  init.schedule = sched;
  init.cfg = f.cfg;
  return init;
}

TEST(RankEngineIa, MatchesLocalSubgraphSemantics) {
  // After IA (no RC), every finite entry must equal a true shortest path of
  // the *local sub-graph* (local vertices expanded, portals as leaves) —
  // i.e. it is >= the global distance, and reachable-local pairs match the
  // global value when the whole shortest path stays inside the partition.
  const Fixture f = make_fixture(120, 4, 7);
  const auto global = apsp_reference(f.g);

  rt::World world(f.cfg.num_ranks);
  std::vector<int> bad(4, 0);
  world.run([&](rt::Comm& comm) {
    RankEngine engine(init_for(f, comm.rank()), comm);
    engine.run_ia();
    const DvStore& store = engine.store();
    for (std::size_t r = 0; r < store.size(); ++r) {
      const DvRow& row = store.row(r);
      for (VertexId t = 0; t < row.size(); ++t) {
        if (row.dist(t) == kInfDist) continue;
        if (row.dist(t) < global[row.self()][t]) {
          ++bad[static_cast<std::size_t>(comm.rank())];
        }
      }
    }
    // Invariants hold on the IA state too.
    if (!engine.check_invariants().empty()) {
      bad[static_cast<std::size_t>(comm.rank())] += 1000;
    }
  });
  for (const int b : bad) EXPECT_EQ(b, 0);
}

TEST(RankEngineIa, RowsCoverExactlyLocalVertices) {
  const Fixture f = make_fixture(90, 3, 9);
  rt::World world(3);
  std::vector<std::size_t> row_counts(3, 0);
  world.run([&](rt::Comm& comm) {
    RankEngine engine(init_for(f, comm.rank()), comm);
    const DvStore& store = engine.store();
    row_counts[static_cast<std::size_t>(comm.rank())] = store.size();
    for (std::size_t r = 0; r < store.size(); ++r) {
      EXPECT_EQ(f.part.assignment[store.self(r)], comm.rank());
      EXPECT_EQ(store.probe_dist(r, store.self(r)), 0u);
    }
  });
  std::size_t total = 0;
  for (const std::size_t c : row_counts) total += c;
  EXPECT_EQ(total, f.g.num_alive());
}

TEST(RankEngineState, SerializeRestoreRoundTrip) {
  const Fixture f = make_fixture(100, 4, 11);
  rt::World world(4);
  std::vector<int> mismatches(4, 0);
  world.run([&](rt::Comm& comm) {
    RankEngine engine(init_for(f, comm.rank()), comm);
    engine.run_ia();
    (void)engine.run_rc();

    rt::ByteWriter w;
    engine.serialize_state(w);
    const auto blob = w.take();

    RankEngine::Init init = init_for(f, comm.rank());
    init.restore_blob = &blob;
    RankEngine twin(init, comm);

    // Same rows, same values, same next hops.
    const DvStore& a = engine.store();
    const DvStore& b = twin.store();
    if (b.size() != a.size()) {
      mismatches[static_cast<std::size_t>(comm.rank())] = 1;
      return;
    }
    for (std::size_t r = 0; r < b.size(); ++r) {
      if (b.self(r) != a.self(r) || b.row(r).dists() != a.row(r).dists() ||
          b.row(r).next_hops() != a.row(r).next_hops() ||
          b.dirty_count(r) != a.dirty_count(r)) {
        ++mismatches[static_cast<std::size_t>(comm.rank())];
      }
    }
    if (!twin.check_invariants().empty()) {
      mismatches[static_cast<std::size_t>(comm.rank())] += 1000;
    }
  });
  for (const int m : mismatches) EXPECT_EQ(m, 0);
}

TEST(RankEngineInvariants, DetectsCorruptedState) {
  // Sanity for the auditor itself: a healthy engine reports nothing; the
  // auditor is exercised against corrupted states indirectly through the
  // chaos tests, so here we just pin the healthy-run contract on all ranks.
  const Fixture f = make_fixture(80, 2, 13);
  rt::World world(2);
  std::vector<std::size_t> violations(2, 99);
  world.run([&](rt::Comm& comm) {
    RankEngine engine(init_for(f, comm.rank()), comm);
    engine.run_ia();
    (void)engine.run_rc();
    violations[static_cast<std::size_t>(comm.rank())] =
        engine.check_invariants().size();
  });
  EXPECT_EQ(violations[0], 0u);
  EXPECT_EQ(violations[1], 0u);
}

}  // namespace
}  // namespace aacc
