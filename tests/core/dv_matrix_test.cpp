// DvRow: aggregates, flags, growth, wire reconstruction.
#include <gtest/gtest.h>

#include "core/dv_matrix.hpp"

namespace aacc {
namespace {

TEST(DvRow, FreshRowKnowsOnlyItself) {
  const DvRow row(2, 5);
  EXPECT_EQ(row.self(), 2u);
  EXPECT_EQ(row.size(), 5u);
  EXPECT_EQ(row.dist(2), 0u);
  for (VertexId t : {0u, 1u, 3u, 4u}) EXPECT_EQ(row.dist(t), kInfDist);
  EXPECT_EQ(row.finite_count(), 0u);
  EXPECT_EQ(row.finite_sum(), 0u);
  EXPECT_EQ(row.closeness(), 0.0);
}

TEST(DvRow, SetMaintainsAggregates) {
  DvRow row(0, 4);
  row.set(1, 5, 1);
  row.set(2, 7, 1);
  EXPECT_EQ(row.finite_sum(), 12u);
  EXPECT_EQ(row.finite_count(), 2u);
  EXPECT_DOUBLE_EQ(row.closeness(), 1.0 / 12.0);
  row.set(1, 3, 2);  // improvement
  EXPECT_EQ(row.finite_sum(), 10u);
  EXPECT_EQ(row.finite_count(), 2u);
  row.set(2, kInfDist, kNoVertex);  // poison
  EXPECT_EQ(row.finite_sum(), 3u);
  EXPECT_EQ(row.finite_count(), 1u);
}

TEST(DvRow, SelfEntryExcludedFromAggregates) {
  DvRow row(1, 3);
  row.set(0, 2, 0);
  EXPECT_EQ(row.finite_sum(), 2u);
  EXPECT_EQ(row.finite_count(), 1u);
}

TEST(DvRow, DirtyFlagCounting) {
  DvRow row(0, 4);
  EXPECT_TRUE(row.mark_dirty(1));
  EXPECT_FALSE(row.mark_dirty(1));  // already dirty
  EXPECT_TRUE(row.mark_dirty(2));
  EXPECT_EQ(row.dirty_count(), 2u);
  EXPECT_TRUE(row.clear_dirty(1));
  EXPECT_FALSE(row.clear_dirty(1));
  EXPECT_EQ(row.dirty_count(), 1u);
}

TEST(DvRow, QueuedFlagIndependentOfDirty) {
  DvRow row(0, 3);
  row.set_flag(1, DvRow::kQueued);
  EXPECT_TRUE(row.test_flag(1, DvRow::kQueued));
  EXPECT_FALSE(row.test_flag(1, DvRow::kDirty));
  (void)row.mark_dirty(1);
  row.clear_flag(1, DvRow::kQueued);
  EXPECT_TRUE(row.test_flag(1, DvRow::kDirty));
  EXPECT_EQ(row.dirty_count(), 1u);
}

TEST(DvRow, GrowAddsUnreachableColumns) {
  DvRow row(0, 2);
  row.set(1, 4, 1);
  row.grow(3);
  EXPECT_EQ(row.size(), 5u);
  EXPECT_EQ(row.dist(4), kInfDist);
  EXPECT_EQ(row.next_hop(4), kNoVertex);
  EXPECT_EQ(row.finite_sum(), 4u);  // aggregates unchanged
}

TEST(DvRow, WireConstructorRecomputesAggregates) {
  const std::vector<Dist> d{0, 3, kInfDist, 9};
  const std::vector<VertexId> nh{kNoVertex, 1, kNoVertex, 1};
  const DvRow row(0, d, nh);
  EXPECT_EQ(row.finite_sum(), 12u);
  EXPECT_EQ(row.finite_count(), 2u);
  EXPECT_EQ(row.dirty_count(), 0u);
  EXPECT_EQ(row.next_hop(3), 1u);
}

TEST(DvRow, ResetFlagsClearsEverything) {
  DvRow row(0, 4);
  (void)row.mark_dirty(1);
  (void)row.mark_dirty(2);
  row.set_flag(3, DvRow::kQueued);
  row.reset_flags();
  EXPECT_EQ(row.dirty_count(), 0u);
  EXPECT_FALSE(row.test_flag(1, DvRow::kDirty));
  EXPECT_FALSE(row.test_flag(3, DvRow::kQueued));
}

}  // namespace
}  // namespace aacc
