// DvRow: aggregates, flags, growth, wire reconstruction.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "core/dv_matrix.hpp"

namespace aacc {
namespace {

TEST(DvRow, FreshRowKnowsOnlyItself) {
  const DvRow row(2, 5);
  EXPECT_EQ(row.self(), 2u);
  EXPECT_EQ(row.size(), 5u);
  EXPECT_EQ(row.dist(2), 0u);
  for (VertexId t : {0u, 1u, 3u, 4u}) EXPECT_EQ(row.dist(t), kInfDist);
  EXPECT_EQ(row.finite_count(), 0u);
  EXPECT_EQ(row.finite_sum(), 0u);
  EXPECT_EQ(row.closeness(), 0.0);
}

TEST(DvRow, SetMaintainsAggregates) {
  DvRow row(0, 4);
  row.set(1, 5, 1);
  row.set(2, 7, 1);
  EXPECT_EQ(row.finite_sum(), 12u);
  EXPECT_EQ(row.finite_count(), 2u);
  EXPECT_DOUBLE_EQ(row.closeness(), 1.0 / 12.0);
  row.set(1, 3, 2);  // improvement
  EXPECT_EQ(row.finite_sum(), 10u);
  EXPECT_EQ(row.finite_count(), 2u);
  row.set(2, kInfDist, kNoVertex);  // poison
  EXPECT_EQ(row.finite_sum(), 3u);
  EXPECT_EQ(row.finite_count(), 1u);
}

TEST(DvRow, SelfEntryExcludedFromAggregates) {
  DvRow row(1, 3);
  row.set(0, 2, 0);
  EXPECT_EQ(row.finite_sum(), 2u);
  EXPECT_EQ(row.finite_count(), 1u);
}

TEST(DvRow, DirtyFlagCounting) {
  DvRow row(0, 4);
  EXPECT_TRUE(row.mark_dirty(1));
  EXPECT_FALSE(row.mark_dirty(1));  // already dirty
  EXPECT_TRUE(row.mark_dirty(2));
  EXPECT_EQ(row.dirty_count(), 2u);
  EXPECT_TRUE(row.clear_dirty(1));
  EXPECT_FALSE(row.clear_dirty(1));
  EXPECT_EQ(row.dirty_count(), 1u);
}

TEST(DvRow, QueuedFlagIndependentOfDirty) {
  DvRow row(0, 3);
  row.set_flag(1, DvRow::kQueued);
  EXPECT_TRUE(row.test_flag(1, DvRow::kQueued));
  EXPECT_FALSE(row.test_flag(1, DvRow::kDirty));
  (void)row.mark_dirty(1);
  row.clear_flag(1, DvRow::kQueued);
  EXPECT_TRUE(row.test_flag(1, DvRow::kDirty));
  EXPECT_EQ(row.dirty_count(), 1u);
}

TEST(DvRow, GrowAddsUnreachableColumns) {
  DvRow row(0, 2);
  row.set(1, 4, 1);
  row.grow(3);
  EXPECT_EQ(row.size(), 5u);
  EXPECT_EQ(row.dist(4), kInfDist);
  EXPECT_EQ(row.next_hop(4), kNoVertex);
  EXPECT_EQ(row.finite_sum(), 4u);  // aggregates unchanged
}

TEST(DvRow, WireConstructorRecomputesAggregates) {
  const std::vector<Dist> d{0, 3, kInfDist, 9};
  const std::vector<VertexId> nh{kNoVertex, 1, kNoVertex, 1};
  const DvRow row(0, d, nh);
  EXPECT_EQ(row.finite_sum(), 12u);
  EXPECT_EQ(row.finite_count(), 2u);
  EXPECT_EQ(row.dirty_count(), 0u);
  EXPECT_EQ(row.next_hop(3), 1u);
}

TEST(DvRow, SortedDirtyMatchesFlagScan) {
  DvRow row(0, 8);
  (void)row.mark_dirty(5);
  (void)row.mark_dirty(1);
  (void)row.mark_dirty(7);
  (void)row.clear_dirty(1);
  (void)row.mark_dirty(3);
  std::vector<VertexId> dirty;
  row.sorted_dirty(dirty);
  EXPECT_EQ(dirty, (std::vector<VertexId>{3, 5, 7}));
  EXPECT_EQ(row.dirty_count(), 3u);
}

TEST(DvRow, ClearAllDirtyReturnsCount) {
  DvRow row(0, 6);
  (void)row.mark_dirty(2);
  (void)row.mark_dirty(4);
  (void)row.clear_dirty(2);
  EXPECT_EQ(row.clear_all_dirty(), 1u);
  EXPECT_EQ(row.dirty_count(), 0u);
  std::vector<VertexId> dirty;
  row.sorted_dirty(dirty);
  EXPECT_TRUE(dirty.empty());
  // Re-marking after a bulk clear starts a fresh list.
  EXPECT_TRUE(row.mark_dirty(4));
  EXPECT_EQ(row.dirty_count(), 1u);
}

TEST(DvRow, ForEachFiniteVisitsReachableColumns) {
  DvRow row(1, 6);
  row.set(0, 4, 0);
  row.set(3, 2, 3);
  row.set(5, 9, 3);
  row.set(5, kInfDist, kNoVertex);  // poisoned after being reached
  std::vector<VertexId> seen;
  row.for_each_finite([&](VertexId t) { seen.push_back(t); });
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<VertexId>{0, 3}));
}

// Fuzz: the sparse dirty list and reach list must agree with a brute-force
// scan of the per-column flags/distances after any interleaving of set,
// mark, clear, grow, bulk-clear, and reset operations.
TEST(DvRow, FuzzSparseTrackingMatchesBruteForce) {
  std::mt19937 rng(20260806);
  for (int round = 0; round < 20; ++round) {
    VertexId n = 16;
    DvRow row(3, n);
    for (int step = 0; step < 400; ++step) {
      const auto op = rng() % 100;
      const auto t = static_cast<VertexId>(rng() % n);
      if (op < 35) {
        (void)row.mark_dirty(t);
      } else if (op < 60) {
        (void)row.clear_dirty(t);
      } else if (op < 85) {
        const Dist d = (rng() % 8 == 0) ? kInfDist : rng() % 1000;
        row.set(t, d, d == kInfDist ? kNoVertex : t);
      } else if (op < 92) {
        const auto added = static_cast<VertexId>(1 + rng() % 4);
        row.grow(added);
        n += added;
      } else if (op < 96) {
        (void)row.clear_all_dirty();
      } else if (op < 98) {
        row.reset_flags();
      } else {
        row.shrink_to_fit();
      }

      // Brute-force models straight off the dense arrays.
      std::vector<VertexId> want_dirty;
      std::size_t want_finite = 0;
      for (VertexId c = 0; c < n; ++c) {
        if (row.test_flag(c, DvRow::kDirty)) want_dirty.push_back(c);
        if (c != row.self() && row.dist(c) != kInfDist) ++want_finite;
      }

      ASSERT_EQ(row.dirty_count(), want_dirty.size());
      std::vector<VertexId> got_dirty;
      row.sorted_dirty(got_dirty);
      ASSERT_EQ(got_dirty, want_dirty);

      std::vector<VertexId> got_finite;
      row.for_each_finite([&](VertexId c) { got_finite.push_back(c); });
      std::sort(got_finite.begin(), got_finite.end());
      ASSERT_EQ(got_finite.size(), want_finite);
      ASSERT_TRUE(std::adjacent_find(got_finite.begin(), got_finite.end()) ==
                  got_finite.end())
          << "duplicate visit";
      for (const VertexId c : got_finite) {
        ASSERT_NE(c, row.self());
        ASSERT_NE(row.dist(c), kInfDist);
      }
    }
  }
}

TEST(DvRow, ResetFlagsClearsEverything) {
  DvRow row(0, 4);
  (void)row.mark_dirty(1);
  (void)row.mark_dirty(2);
  row.set_flag(3, DvRow::kQueued);
  row.reset_flags();
  EXPECT_EQ(row.dirty_count(), 0u);
  EXPECT_FALSE(row.test_flag(1, DvRow::kDirty));
  EXPECT_FALSE(row.test_flag(3, DvRow::kQueued));
}

}  // namespace
}  // namespace aacc
