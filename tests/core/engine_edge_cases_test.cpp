// Engine edge cases: degenerate sizes, batch pathologies, strategy corner
// cases, and schedule validation.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace aacc {
namespace {

using test::expect_apsp_exact;
using test::grow_vertices;
using test::make_ba;
using test::make_er;

EngineConfig base_cfg(Rank P) {
  EngineConfig cfg;
  cfg.num_ranks = P;
  cfg.gather_apsp = true;
  return cfg;
}

TEST(EngineEdgeCases, TwoVertexGraph) {
  Graph g(2);
  g.add_edge(0, 1, 7);
  AnytimeEngine engine(g, base_cfg(2));
  const RunResult r = engine.run();
  EXPECT_EQ(r.apsp[0][1], 7u);
  EXPECT_DOUBLE_EQ(r.closeness[0], 1.0 / 7.0);
}

TEST(EngineEdgeCases, MoreRanksThanVertices) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  AnytimeEngine engine(g, base_cfg(8));
  const RunResult r = engine.run();
  expect_apsp_exact(g, r);
}

TEST(EngineEdgeCases, EdgelessGraph) {
  Graph g(6);
  AnytimeEngine engine(g, base_cfg(3));
  const RunResult r = engine.run();
  for (VertexId v = 0; v < 6; ++v) {
    EXPECT_DOUBLE_EQ(r.closeness[v], 0.0);
  }
}

TEST(EngineEdgeCases, EventsAtStepZero) {
  const Graph g = make_ba(100, 2, 1);
  EventSchedule sched;
  sched.push_back({0, {EdgeAddEvent{0, 50, 1}}});
  AnytimeEngine engine(g, base_cfg(4));
  const RunResult r = engine.run(sched);
  Graph truth = g;
  apply_schedule(truth, sched);
  expect_apsp_exact(truth, r);
}

TEST(EngineEdgeCases, MultipleBatchesAtSameStep) {
  const Graph g = make_ba(100, 2, 2);
  Rng rng(3);
  EventSchedule sched;
  sched.push_back({2, grow_vertices(g, 5, 2, rng)});
  Graph mid = g;
  apply_schedule(mid, sched);
  sched.push_back({2, grow_vertices(mid, 5, 2, rng)});
  AnytimeEngine engine(g, base_cfg(4));
  const RunResult r = engine.run(sched);
  Graph truth = g;
  apply_schedule(truth, sched);
  expect_apsp_exact(truth, r);
}

TEST(EngineEdgeCases, AddThenDeleteSameEdgeAcrossBatches) {
  const Graph g = make_er(80, 200, 4);
  ASSERT_FALSE(g.has_edge(0, 79));
  EventSchedule sched;
  sched.push_back({1, {EdgeAddEvent{0, 79, 1}}});
  sched.push_back({3, {EdgeDeleteEvent{0, 79}}});
  AnytimeEngine engine(g, base_cfg(4));
  const RunResult r = engine.run(sched);
  expect_apsp_exact(g, r);  // net effect: unchanged graph
}

TEST(EngineEdgeCases, AddThenDeleteSameEdgeWithinOneBatch) {
  const Graph g = make_er(80, 200, 5);
  ASSERT_FALSE(g.has_edge(3, 77));
  EventSchedule sched;
  sched.push_back({1, {EdgeAddEvent{3, 77, 1}, EdgeDeleteEvent{3, 77}}});
  AnytimeEngine engine(g, base_cfg(4));
  const RunResult r = engine.run(sched);
  expect_apsp_exact(g, r);
}

TEST(EngineEdgeCases, WeightChangeToSameValueIsNoOp) {
  const Graph g = make_er(60, 150, 6, WeightRange{3, 3});
  const auto edges = g.edges();
  EventSchedule sched;
  sched.push_back({1, {WeightChangeEvent{std::get<0>(edges[0]),
                                         std::get<1>(edges[0]), 3}}});
  AnytimeEngine engine(g, base_cfg(3));
  const RunResult r = engine.run(sched);
  expect_apsp_exact(g, r);
}

TEST(EngineEdgeCases, DeleteBridgeDisconnectsGraph) {
  // Two cliques joined by one bridge; deleting it must yield infinite
  // cross-distances (and terminate — the count-to-infinity guard).
  Graph g(8);
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = u + 1; v < 4; ++v) g.add_edge(u, v);
  }
  for (VertexId u = 4; u < 8; ++u) {
    for (VertexId v = u + 1; v < 8; ++v) g.add_edge(u, v);
  }
  g.add_edge(3, 4);
  EventSchedule sched;
  sched.push_back({1, {EdgeDeleteEvent{3, 4}}});
  AnytimeEngine engine(g, base_cfg(4));
  const RunResult r = engine.run(sched);
  Graph truth = g;
  truth.remove_edge(3, 4);
  expect_apsp_exact(truth, r);
  EXPECT_EQ(r.apsp[0][7], kInfDist);
}

TEST(EngineEdgeCases, DisconnectLargeRegionByVertexDeletes) {
  // Star of cliques: deleting the hub isolates the arms from each other.
  Graph g(13);
  for (unsigned arm = 0; arm < 3; ++arm) {
    const VertexId base = 1 + arm * 4;
    for (VertexId u = base; u < base + 4; ++u) {
      for (VertexId v = u + 1; v < base + 4; ++v) g.add_edge(u, v);
      g.add_edge(0, u);
    }
  }
  EventSchedule sched;
  sched.push_back({2, {VertexDeleteEvent{0}}});
  AnytimeEngine engine(g, base_cfg(5));
  const RunResult r = engine.run(sched);
  Graph truth = g;
  truth.remove_vertex(0);
  expect_apsp_exact(truth, r);
}

TEST(EngineEdgeCases, RepartitionWithDeletionsInSameBatch) {
  const Graph g = make_er(120, 400, 7);
  Rng rng(8);
  EventSchedule sched;
  EventBatch batch;
  batch.at_step = 1;
  Graph cursor = g;
  // deletions first, then the vertex run that triggers repartitioning
  for (int i = 0; i < 10; ++i) {
    const auto edges = cursor.edges();
    const auto& [u, v, w] = edges[rng.next_below(edges.size())];
    (void)w;
    cursor.remove_edge(u, v);
    batch.events.emplace_back(EdgeDeleteEvent{u, v});
  }
  for (const Event& e : grow_vertices(cursor, 15, 2, rng)) {
    apply_event(cursor, e);
    batch.events.push_back(e);
  }
  sched.push_back(std::move(batch));

  EngineConfig cfg = base_cfg(6);
  cfg.assign = AssignStrategy::kRepartition;
  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run(sched);
  expect_apsp_exact(cursor, r);
}

TEST(EngineEdgeCases, UnsortedScheduleRejected) {
  const Graph g = make_ba(50, 2, 9);
  EventSchedule sched;
  sched.push_back({5, {EdgeAddEvent{0, 30, 1}}});
  sched.push_back({2, {EdgeAddEvent{1, 31, 1}}});
  AnytimeEngine engine(g, base_cfg(2));
  EXPECT_THROW((void)engine.run(sched), std::logic_error);
}

TEST(EngineEdgeCases, RunIsSingleShot) {
  const Graph g = make_ba(50, 2, 10);
  AnytimeEngine engine(g, base_cfg(2));
  (void)engine.run();
  EXPECT_THROW((void)engine.run(), std::logic_error);
}

TEST(EngineEdgeCases, BoundaryFwRejectsDeletions) {
  const Graph g = make_ba(50, 2, 11);
  EngineConfig cfg = base_cfg(2);
  cfg.refine = RefineMode::kBoundaryFloydWarshall;
  EventSchedule sched;
  sched.push_back({1, {EdgeDeleteEvent{0, 1}}});
  AnytimeEngine engine(g, cfg);
  EXPECT_THROW((void)engine.run(sched), std::logic_error);
}

TEST(EngineEdgeCases, BoundaryFwMatchesOnAdditiveWorkloads) {
  const Graph g = make_ba(150, 2, 12);
  Rng rng(13);
  EventSchedule sched;
  sched.push_back({1, grow_vertices(g, 20, 2, rng)});
  EngineConfig cfg = base_cfg(5);
  cfg.refine = RefineMode::kBoundaryFloydWarshall;
  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run(sched);
  Graph truth = g;
  apply_schedule(truth, sched);
  expect_apsp_exact(truth, r);
}

TEST(EngineEdgeCases, MaxRcStepsCapsTheLoop) {
  const Graph g = make_ba(200, 2, 14);
  EngineConfig cfg;
  cfg.num_ranks = 8;
  cfg.max_rc_steps = 2;
  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run();
  EXPECT_EQ(r.stats.rc_steps, 2u);  // interrupted (anytime!) run
  // Estimates exist and are plausible even though not converged.
  double sum = 0;
  for (const double c : r.closeness) sum += c;
  EXPECT_GT(sum, 0.0);
}

TEST(EngineEdgeCases, VertexAdditionIntoDisconnectedComponent) {
  Rng rng(15);
  Graph g = erdos_renyi(60, 80, rng);  // probably disconnected
  EventSchedule sched;
  VertexAddEvent ev;
  ev.id = 60;
  ev.edges = {{0, 2}};
  sched.push_back({1, {ev}});
  AnytimeEngine engine(g, base_cfg(4));
  const RunResult r = engine.run(sched);
  Graph truth = g;
  apply_schedule(truth, sched);
  expect_apsp_exact(truth, r);
}

}  // namespace
}  // namespace aacc
