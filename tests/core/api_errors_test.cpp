// Typed API errors: EngineConfig::validate() / ConfigError rules and the
// one-shot AnytimeEngine::run lifecycle (EngineStateError). See
// docs/API.md.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "serve/session.hpp"

namespace aacc {
namespace {

Graph tiny_graph() {
  Rng rng(1);
  return barabasi_albert(40, 2, rng);
}

std::string config_error_message(const EngineConfig& cfg) {
  try {
    cfg.validate();
  } catch (const ConfigError& e) {
    return e.what();
  }
  return {};
}

TEST(ConfigValidate, DefaultConfigIsValid) {
  const EngineConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ConfigValidate, NumRanksBounds) {
  EngineConfig cfg;
  cfg.num_ranks = 0;
  EXPECT_NE(config_error_message(cfg).find("num_ranks"), std::string::npos);
  cfg.num_ranks = 5000;
  EXPECT_NE(config_error_message(cfg).find("num_ranks"), std::string::npos);
  cfg.num_ranks = 4096;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ConfigValidate, ThreadCapsCatchSignBugs) {
  EngineConfig cfg;
  cfg.ia_threads = static_cast<std::size_t>(-1);  // the bug the cap exists for
  EXPECT_NE(config_error_message(cfg).find("ia_threads"), std::string::npos);
  cfg = EngineConfig{};
  cfg.rc_threads = 4097;
  EXPECT_NE(config_error_message(cfg).find("rc_threads"), std::string::npos);
}

TEST(ConfigValidate, RebalanceThreshold) {
  EngineConfig cfg;
  cfg.rebalance_threshold = 0.5;  // max/ideal load is never below 1
  EXPECT_NE(config_error_message(cfg).find("rebalance_threshold"),
            std::string::npos);
  cfg.rebalance_threshold = 1.25;
  EXPECT_NO_THROW(cfg.validate());
  cfg.rebalance_threshold = 0.0;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ConfigValidate, DvBudgetFloor) {
  EngineConfig cfg;
  cfg.dv_budget_bytes = kMinDvBudgetBytes - 1;  // cannot hold one hot row
  EXPECT_NE(config_error_message(cfg).find("dv_budget_bytes"),
            std::string::npos);
  cfg.dv_budget_bytes = 1;
  EXPECT_NE(config_error_message(cfg).find("dv_budget_bytes"),
            std::string::npos);
  cfg.dv_budget_bytes = kMinDvBudgetBytes;  // smallest tiered budget
  EXPECT_NO_THROW(cfg.validate());
  cfg.dv_budget_bytes = 0;  // fully resident (the default)
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ConfigValidate, TransportRetries) {
  EngineConfig cfg;
  cfg.transport.max_retries = 0;
  EXPECT_NE(config_error_message(cfg).find("max_retries"), std::string::npos);
}

TEST(ConfigValidate, FaultProbabilities) {
  EngineConfig cfg;
  cfg.faults.drop = 1.5;
  EXPECT_NE(config_error_message(cfg).find("drop"), std::string::npos);
  cfg.faults.drop = -0.1;
  EXPECT_NE(config_error_message(cfg).find("drop"), std::string::npos);
  cfg.faults.drop = 0.6;
  cfg.faults.corrupt = 0.6;  // each valid, sum > 1
  EXPECT_NE(config_error_message(cfg).find("sum"), std::string::npos);
}

TEST(ConfigValidate, CrashPointRankRange) {
  EngineConfig cfg;
  cfg.num_ranks = 4;
  cfg.faults.crashes.push_back({7, 1});
  EXPECT_NE(config_error_message(cfg).find("crash point"), std::string::npos);
  cfg.faults.crashes[0].rank = 3;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ConfigValidate, TraceCapacity) {
  EngineConfig cfg;
  cfg.trace.track_capacity = 0;
  EXPECT_NO_THROW(cfg.validate());  // irrelevant while tracing is off
  cfg.trace.enabled = true;
  EXPECT_NE(config_error_message(cfg).find("track_capacity"),
            std::string::npos);
}

TEST(ConfigValidate, RecoveryLadderMustHaveARung) {
  EngineConfig cfg;
  cfg.recovery_policy.clear();
  EXPECT_NE(config_error_message(cfg).find("recovery_policy"),
            std::string::npos);
}

TEST(ConfigValidate, RecoveryLadderRejectsRepeatedPolicies) {
  EngineConfig cfg;
  cfg.recovery_policy = {{RecoveryPolicy::kRollback, 0},
                         {RecoveryPolicy::kRollback, 2}};
  EXPECT_NE(config_error_message(cfg).find("repeat"), std::string::npos);
  cfg.recovery_policy = {{RecoveryPolicy::kAdopt, 0},
                         {RecoveryPolicy::kRollback, 0},
                         {RecoveryPolicy::kDegrade, 0}};
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ConfigValidate, HealthDeadlinesMustEscalateInOrder) {
  EngineConfig cfg;
  cfg.health.enabled = true;
  cfg.health.straggler_after = std::chrono::milliseconds(200);
  cfg.health.suspect_after = std::chrono::milliseconds(100);  // < straggler
  cfg.health.dead_after = std::chrono::milliseconds(400);
  EXPECT_NE(config_error_message(cfg).find("health"), std::string::npos);
  cfg.health.suspect_after = std::chrono::milliseconds(300);
  cfg.transport.recv_timeout = std::chrono::milliseconds(300);  // <= dead
  EXPECT_NE(config_error_message(cfg).find("dead_after"), std::string::npos);
}

TEST(ConfigValidate, PublishEveryBounds) {
  EngineConfig cfg;
  cfg.publish_every = 0;  // a live session must publish
  EXPECT_NE(config_error_message(cfg).find("publish_every"),
            std::string::npos);
  cfg.publish_every = 5000;  // sign-bug cap, same as the thread caps
  EXPECT_NE(config_error_message(cfg).find("publish_every"),
            std::string::npos);
  cfg.publish_every = 4;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ConfigValidate, MaxSnapshotLagMustCoverThePublishCadence) {
  EngineConfig cfg;
  cfg.publish_every = 4;
  cfg.max_snapshot_lag = 2;  // would flag every response between publishes
  EXPECT_NE(config_error_message(cfg).find("max_snapshot_lag"),
            std::string::npos);
  cfg.max_snapshot_lag = 4;
  EXPECT_NO_THROW(cfg.validate());
  cfg.max_snapshot_lag = 0;  // never flag
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ServeLifecycle, SessionRejectsHealthSupervisionAndCheckpointDrill) {
  // An idle feed parks ranks inside a collective; health deadlines would
  // declare them dead, so sessions refuse the combination up front.
  EngineConfig cfg;
  cfg.num_ranks = 2;
  cfg.health.enabled = true;
  EXPECT_THROW(serve::EngineSession(tiny_graph(), cfg), ConfigError);
  cfg = EngineConfig{};
  cfg.num_ranks = 2;
  cfg.checkpoint_at_step = 3;  // batch-mode drill, no schedule to resume
  EXPECT_THROW(serve::EngineSession(tiny_graph(), cfg), ConfigError);
}

TEST(ServeLifecycle, IngestRejectsMisnumberedVertexAdds) {
  // The engine assigns added-vertex ids by append; a feed that invents its
  // own ids must fail at ingest with the contract spelled out, not deep in
  // the rank loop at close. Acceptance advances the expected id, rejection
  // does not (the fixed batch can be resubmitted).
  EngineConfig cfg;
  cfg.num_ranks = 2;
  serve::EngineSession session(tiny_graph(), cfg);  // 40 vertices: next is 40
  EXPECT_THROW(session.ingest({VertexAddEvent{500, {}}}), EngineStateError);
  EXPECT_THROW(session.ingest({VertexAddEvent{39, {}}}), EngineStateError);
  session.ingest({VertexAddEvent{40, {{0, 1}}}, VertexAddEvent{41, {{40, 1}}}});
  EXPECT_THROW(session.ingest({VertexAddEvent{40, {}}}), EngineStateError);
  session.ingest({VertexAddEvent{42, {{1, 1}}}});
  const RunResult r = session.close();
  EXPECT_EQ(r.closeness.size(), 43u);
}

TEST(RecoveryLadder, ExhaustedLadderSurfacesTypedRecoveryError) {
  // A config the degraded fallback cannot serve (eager adds rewrite the
  // partition under the ghosts' feet), a ladder with only that rung, and a
  // crash: the supervisor must surface the rung's typed precondition
  // failure, not a bare assertion.
  EngineConfig cfg;
  cfg.num_ranks = 3;
  cfg.add_mode = EdgeAddMode::kEager;
  cfg.recovery_policy = {{RecoveryPolicy::kDegrade, 0}};
  cfg.transport.retry_backoff = std::chrono::microseconds(1);
  cfg.faults.crashes.push_back({1, 1, rt::CrashPhase::kStepStart});
  EXPECT_NO_THROW(cfg.validate());  // the clash is a runtime property
  AnytimeEngine engine(tiny_graph(), cfg);
  EXPECT_THROW((void)engine.run(), RecoveryError);
}

TEST(ConfigValidate, ConstructorsValidate) {
  EngineConfig cfg;
  cfg.num_ranks = 0;
  EXPECT_THROW(AnytimeEngine(tiny_graph(), cfg), ConfigError);
}

TEST(ConfigValidate, ErrorTypeIsRuntimeError) {
  EngineConfig cfg;
  cfg.num_ranks = 0;
  // Callers may catch std::runtime_error without naming the library type.
  EXPECT_THROW(cfg.validate(), std::runtime_error);
}

TEST(EngineLifecycle, SecondRunThrowsEngineStateError) {
  EngineConfig cfg;
  cfg.num_ranks = 2;
  AnytimeEngine engine(tiny_graph(), cfg);
  EXPECT_NO_THROW((void)engine.run());
  EXPECT_THROW((void)engine.run(), EngineStateError);
  EXPECT_THROW((void)engine.run(), std::logic_error);  // the documented base
}

TEST(EngineLifecycle, FreshInstanceRunsAgain) {
  EngineConfig cfg;
  cfg.num_ranks = 2;
  const Graph g = tiny_graph();
  AnytimeEngine a(g, cfg);
  AnytimeEngine b(g, cfg);
  const RunResult ra = a.run();
  const RunResult rb = b.run();
  EXPECT_EQ(ra.closeness, rb.closeness);
}

}  // namespace
}  // namespace aacc
