// Tiered DV row store (DESIGN.md §"Tiered DV storage"): the cold codec
// must round-trip every observable bit of a row, the LRU admission policy
// must respect the byte budget and the boundary/recency ordering, and —
// the load-bearing contract — a tiered run must be bit-identical to the
// resident oracle across every exchange mode, dynamic scenario and budget,
// including the checkpoint blobs it writes.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/dv_store.hpp"
#include "test_util.hpp"

namespace aacc {
namespace {

using test::grow_vertices;
using test::make_ba;
using test::make_er;

// ------------------------------------------------------------ codec fuzz

/// Random row with holes, a random dirty subset, and a few poison markers
/// (dirty columns whose distance is back to kInfDist).
DvRow random_row(VertexId n, Rng& rng) {
  const auto self = static_cast<VertexId>(rng.next_below(n));
  DvRow row(self, n);
  for (VertexId t = 0; t < n; ++t) {
    if (t == self || rng.next_bool(0.4)) continue;
    row.set(t, static_cast<Dist>(1 + rng.next_below(1000)),
            static_cast<VertexId>(rng.next_below(n)));
    if (rng.next_bool(0.3)) row.mark_dirty(t);
  }
  for (int k = 0; k < 3; ++k) {
    const auto t = static_cast<VertexId>(rng.next_below(n));
    if (t != self && row.dist(t) == kInfDist) row.mark_dirty(t);
  }
  return row;
}

void expect_rows_equal(const DvRow& a, const DvRow& b) {
  ASSERT_EQ(a.self(), b.self());
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.dists(), b.dists());
  EXPECT_EQ(a.next_hops(), b.next_hops());
  EXPECT_EQ(a.finite_count(), b.finite_count());
  EXPECT_EQ(a.finite_sum(), b.finite_sum());
  EXPECT_EQ(a.dirty_count(), b.dirty_count());
  std::vector<VertexId> da;
  std::vector<VertexId> db;
  a.sorted_dirty(da);
  b.sorted_dirty(db);
  EXPECT_EQ(da, db);
}

TEST(ColdCodec, RoundTripFuzz) {
  Rng rng(7);
  for (int iter = 0; iter < 200; ++iter) {
    const auto n = static_cast<VertexId>(2 + rng.next_below(120));
    const DvRow row = random_row(n, rng);
    const ColdDvRow cold = encode_cold_row(row);
    EXPECT_EQ(cold.self, row.self());
    EXPECT_EQ(cold.columns, row.size());
    EXPECT_EQ(cold.finite, row.finite_count());
    EXPECT_EQ(cold.sum, row.finite_sum());
    expect_rows_equal(decode_cold_row(cold), row);
  }
}

TEST(ColdCodec, ArrayOverloadMatchesDenseEncode) {
  // The checkpoint-restore fast path encodes straight from the packed value
  // arrays; it must produce the same blob + aggregates as the dense path.
  Rng rng(8);
  for (int iter = 0; iter < 50; ++iter) {
    const auto n = static_cast<VertexId>(2 + rng.next_below(90));
    const DvRow row = random_row(n, rng);
    const ColdDvRow a = encode_cold_row(row);
    std::vector<VertexId> dirty;
    row.sorted_dirty(dirty);
    const ColdDvRow b = encode_cold_row(row.self(), row.dists(),
                                        row.next_hops(), std::move(dirty));
    EXPECT_EQ(a.blob, b.blob);
    EXPECT_EQ(a.dirty, b.dirty);
    EXPECT_EQ(a.finite, b.finite);
    EXPECT_EQ(a.sum, b.sum);
  }
}

TEST(ColdCodec, SerializeRowIsResidencyOblivious) {
  // The checkpoint layout of a row must be byte-identical whether the slot
  // is hot or cold (cold rows transcode without a dense round-trip).
  Rng rng(9);
  for (int iter = 0; iter < 50; ++iter) {
    const auto n = static_cast<VertexId>(2 + rng.next_below(90));
    DvRow row = random_row(n, rng);

    TieredDvStore store(kMinDvBudgetBytes);
    store.grow_columns(n);
    store.append(DvRow(row.self(), n));
    rt::ByteWriter hot_w;
    store.put(0, DvRow(row));  // hot
    store.serialize_row(0, hot_w);

    store.put_cold(0, encode_cold_row(row));
    ASSERT_FALSE(store.is_hot(0));
    rt::ByteWriter cold_w;
    store.serialize_row(0, cold_w);
    EXPECT_EQ(hot_w.take(), cold_w.take());
  }
}

// --------------------------------------------------- residency invariants

TEST(TieredLru, MaintainDemotesDownToBudget) {
  const VertexId n = 64;
  Rng rng(11);
  TieredDvStore store(3 * 4096);
  store.grow_columns(n);
  for (VertexId v = 0; v < n; ++v) store.append_fresh(v);
  EXPECT_EQ(store.size(), static_cast<std::size_t>(n));
  // Fresh rows are born cold: no dense state materialized.
  for (std::size_t r = 0; r < store.size(); ++r) EXPECT_FALSE(store.is_hot(r));

  // Touch every row (promotes all), then maintain: residency must fall
  // back under the budget and the gauges must account for every slot.
  for (std::size_t r = 0; r < store.size(); ++r) (void)store.row(r);
  const std::vector<std::uint8_t> interior(n, 0);
  store.maintain(interior);
  EXPECT_LE(store.resident_bytes(), store.budget_bytes());
  EXPECT_GT(store.demotions(), 0u);
  std::size_t hot = 0;
  for (std::size_t r = 0; r < store.size(); ++r) hot += store.is_hot(r) ? 1 : 0;
  EXPECT_GT(hot, 0u);  // budget holds at least a couple of fresh rows
  EXPECT_LT(hot, store.size());
}

TEST(TieredLru, RecentlyTouchedAndBoundaryRowsSurvive) {
  const VertexId n = 48;
  TieredDvStore store(6 * 4096);
  store.grow_columns(n);
  for (VertexId v = 0; v < n; ++v) store.append_fresh(v);
  std::vector<std::uint8_t> boundary(n, 0);
  boundary[5] = 1;
  // Epoch 1: promote everything, settle residency.
  for (std::size_t r = 0; r < store.size(); ++r) (void)store.row(r);
  store.maintain(boundary);
  // Epoch 2: touch only rows 7 and 9.
  (void)store.row(7);
  (void)store.row(9);
  store.maintain(boundary);
  // The budget is comfortably bigger than three fresh rows, so the two
  // recently-touched rows and the boundary row must all still be hot.
  EXPECT_TRUE(store.is_hot(7));
  EXPECT_TRUE(store.is_hot(9));
  EXPECT_TRUE(store.is_hot(5));
}

TEST(TieredLru, ColdRowsAnswerMetadataWithoutPromotion) {
  Rng rng(13);
  const VertexId n = 40;
  TieredDvStore store(kMinDvBudgetBytes);
  store.grow_columns(n);
  std::vector<DvRow> reference;
  for (VertexId v = 0; v < n; ++v) {
    DvRow row = random_row(n, rng);
    reference.push_back(DvRow(row));
    store.append(std::move(row));
  }
  store.maintain(std::vector<std::uint8_t>(n, 0));
  bool saw_cold = false;
  for (std::size_t r = 0; r < store.size(); ++r) {
    const DvRow& ref = reference[r];
    saw_cold |= !store.is_hot(r);
    EXPECT_EQ(store.self(r), ref.self());
    EXPECT_EQ(store.finite_count(r), ref.finite_count());
    EXPECT_EQ(store.finite_sum(r), ref.finite_sum());
    EXPECT_EQ(store.dirty_count(r), ref.dirty_count());
    for (VertexId t = 0; t < n; ++t) {
      ASSERT_EQ(store.probe_dist(r, t), ref.dist(t)) << r << ":" << t;
      ASSERT_EQ(store.probe_next_hop(r, t), ref.next_hop(t)) << r << ":" << t;
    }
    // None of the metadata reads may have promoted the row.
    EXPECT_EQ(store.is_hot(r), store.is_hot(r));
  }
  EXPECT_TRUE(saw_cold);
  EXPECT_EQ(store.promotions(), 0u);
}

TEST(TieredLru, DirtyOpsWorkInPlaceOnColdRows) {
  Rng rng(17);
  // One row bigger than the whole budget, so maintain() must demote it.
  const VertexId n = 600;
  TieredDvStore store(kMinDvBudgetBytes);
  store.grow_columns(n);
  DvRow row = random_row(n, rng);
  const DvRow ref(row);
  store.append(std::move(row));
  store.maintain(std::vector<std::uint8_t>(1, 0));
  ASSERT_FALSE(store.is_hot(0));

  std::vector<VertexId> cols;
  std::vector<std::pair<VertexId, Dist>> entries;
  store.collect_dirty_entries(0, cols, entries);
  std::vector<VertexId> want_dirty;
  ref.sorted_dirty(want_dirty);
  ASSERT_EQ(entries.size(), want_dirty.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].first, want_dirty[i]);
    EXPECT_EQ(entries[i].second, ref.dist(want_dirty[i]));
  }

  std::vector<VertexId> cleared;
  EXPECT_EQ(store.retire_dirty(0, &cleared), ref.dirty_count());
  EXPECT_EQ(cleared, want_dirty);
  EXPECT_EQ(store.dirty_count(0), 0u);
  if (!want_dirty.empty()) {
    EXPECT_TRUE(store.remark_dirty(0, want_dirty[0]));
    EXPECT_FALSE(store.remark_dirty(0, want_dirty[0]));
    EXPECT_TRUE(store.retire_dirty_one(0, want_dirty[0]));
    EXPECT_FALSE(store.retire_dirty_one(0, want_dirty[0]));
  }
  EXPECT_EQ(store.mark_finite_dirty(0), ref.finite_count());
  ASSERT_FALSE(store.is_hot(0));  // everything stayed in compressed form

  // Promotion after in-place mutation must still reconstruct the values.
  const DvRow& dense = store.row(0);
  EXPECT_EQ(dense.dists(), ref.dists());
  EXPECT_EQ(dense.next_hops(), ref.next_hops());
  EXPECT_EQ(store.promotions(), 1u);
}

// ------------------------------------------- resident vs tiered equivalence

EngineConfig matrix_cfg(ExchangeMode mode, std::uint64_t budget) {
  EngineConfig cfg;
  cfg.num_ranks = 4;
  cfg.exchange_mode = mode;
  if (mode != ExchangeMode::kDeterministic) cfg.exchange_window = 3;
  cfg.dv_budget_bytes = budget;
  cfg.transport.retry_backoff = std::chrono::microseconds(1);
  cfg.transport.recv_timeout = std::chrono::seconds(60);
  return cfg;
}

/// Budgets spanning the residency spectrum on the small matrix graphs:
/// 0 = resident oracle, 8 MB keeps everything hot (0% cold), 64 KB mixes
/// (~50% cold), and the floor forces ~95% cold.
const std::uint64_t kBudgets[] = {8u << 20, 64u << 10, kMinDvBudgetBytes};

const ExchangeMode kModes[] = {ExchangeMode::kDeterministic,
                               ExchangeMode::kPipelined, ExchangeMode::kAsync};

/// Residency changes *where* rows live, never what the engine computes:
/// the converged values must match bit for bit in every mode. The full
/// cost ledger (wire bytes, relaxation/poison counts) is only comparable
/// under ExchangeMode::kDeterministic — the overlapped schedules vary
/// their intermediate traffic with arrival timing even store-vs-itself
/// (async_exchange_test only pins the ledger for the deterministic mode).
void expect_identical(const RunResult& want, const RunResult& got,
                      const std::string& label, bool strict_ledger = true) {
  ASSERT_EQ(want.closeness.size(), got.closeness.size()) << label;
  for (VertexId v = 0; v < want.closeness.size(); ++v) {
    ASSERT_EQ(want.closeness[v], got.closeness[v]) << label << " vertex " << v;
    ASSERT_EQ(want.harmonic[v], got.harmonic[v]) << label << " vertex " << v;
  }
  if (!strict_ledger) return;
  EXPECT_EQ(want.stats.rc_steps, got.stats.rc_steps) << label;
  EXPECT_EQ(want.stats.total_bytes, got.stats.total_bytes) << label;
  EXPECT_EQ(want.stats.total_messages, got.stats.total_messages) << label;
  std::uint64_t want_relax = 0;
  std::uint64_t got_relax = 0;
  std::uint64_t want_poison = 0;
  std::uint64_t got_poison = 0;
  for (const StepStats& s : want.stats.steps) {
    want_relax += s.relaxations;
    want_poison += s.poisons;
  }
  for (const StepStats& s : got.stats.steps) {
    got_relax += s.relaxations;
    got_poison += s.poisons;
  }
  EXPECT_EQ(want_relax, got_relax) << label;
  EXPECT_EQ(want_poison, got_poison) << label;
}

EventSchedule dynamic_schedule(const Graph& g, std::uint64_t seed) {
  Rng rng(seed);
  EventSchedule sched;
  EventBatch b1;
  b1.at_step = 1;
  const auto edges = g.edges();
  for (int i = 0; i < 4; ++i) {
    const auto& [u, v, w] = edges[rng.next_below(edges.size())];
    (void)w;
    b1.events.push_back(EdgeDeleteEvent{u, v});
  }
  sched.push_back(std::move(b1));
  EventBatch b2;
  b2.at_step = 3;
  Graph after = g;
  for (const Event& e : sched[0].events) apply_event(after, e);
  b2.events = grow_vertices(after, 8, 2, rng);
  sched.push_back(std::move(b2));
  return sched;
}

TEST(TieredEquivalence, StaticAndDynamicAcrossModesAndBudgets) {
  const Graph g = make_er(110, 330, 31, WeightRange{1, 5});
  const EventSchedule sched = dynamic_schedule(g, 41);
  for (const ExchangeMode mode : kModes) {
    RunResult oracle;
    {
      AnytimeEngine engine(g, matrix_cfg(mode, 0));
      oracle = engine.run(sched);
    }
    for (const std::uint64_t budget : kBudgets) {
      AnytimeEngine engine(g, matrix_cfg(mode, budget));
      const RunResult tiered = engine.run(sched);
      expect_identical(oracle, tiered,
                       "mode=" + std::to_string(static_cast<int>(mode)) +
                           " budget=" + std::to_string(budget),
                       mode == ExchangeMode::kDeterministic);
      if (budget == kMinDvBudgetBytes) {
        EXPECT_GT(tiered.stats.dv_demotions, 0u) << "floor budget stayed hot";
        EXPECT_GT(tiered.stats.dv_cold_bytes, 0u);
      }
    }
  }
}

TEST(TieredEquivalence, RepartitionMigratesResidency) {
  // A rebalance-triggering run migrates rows between ranks; cold rows must
  // migrate correctly (take() promotes, put() re-admits).
  const Graph g = make_ba(130, 2, 37);
  Rng rng(43);
  EventSchedule sched;
  EventBatch b;
  b.at_step = 1;
  b.events = grow_vertices(g, 20, 2, rng);  // skews load, triggers rebalance
  sched.push_back(std::move(b));

  for (const std::uint64_t budget : {std::uint64_t{0}, kMinDvBudgetBytes}) {
    EngineConfig cfg = matrix_cfg(ExchangeMode::kDeterministic, budget);
    cfg.rebalance_threshold = 1.2;
    AnytimeEngine engine(g, cfg);
    const RunResult r = engine.run(sched);
    static RunResult oracle;
    if (budget == 0) {
      oracle = r;
    } else {
      expect_identical(oracle, r, "repartition budget=" + std::to_string(budget));
    }
  }
}

TEST(TieredEquivalence, CheckpointBlobsAreResidencyOblivious) {
  // The mid-run checkpoint written by a tiered run must be byte-identical
  // to the resident one (serialize_row transcodes cold rows), and resuming
  // from it — under either store — must land on the same answer.
  const Graph g = make_er(100, 300, 47, WeightRange{1, 4});
  const EventSchedule sched = dynamic_schedule(g, 53);

  EngineConfig cfg = matrix_cfg(ExchangeMode::kDeterministic, 0);
  cfg.checkpoint_at_step = 2;
  RunResult resident_cp;
  {
    AnytimeEngine engine(g, cfg);
    resident_cp = engine.run(sched);
  }
  ASSERT_TRUE(resident_cp.checkpoint.valid());

  cfg.dv_budget_bytes = kMinDvBudgetBytes;
  RunResult tiered_cp;
  {
    AnytimeEngine engine(g, cfg);
    tiered_cp = engine.run(sched);
  }
  ASSERT_TRUE(tiered_cp.checkpoint.valid());
  ASSERT_EQ(resident_cp.checkpoint.rank_blobs.size(),
            tiered_cp.checkpoint.rank_blobs.size());
  for (std::size_t r = 0; r < resident_cp.checkpoint.rank_blobs.size(); ++r) {
    EXPECT_EQ(resident_cp.checkpoint.rank_blobs[r],
              tiered_cp.checkpoint.rank_blobs[r])
        << "rank " << r << " checkpoint blob differs";
  }

  // Cross-resume: tiered checkpoint into a resident engine and vice versa.
  EngineConfig resume_resident = matrix_cfg(ExchangeMode::kDeterministic, 0);
  EngineConfig resume_tiered =
      matrix_cfg(ExchangeMode::kDeterministic, kMinDvBudgetBytes);
  AnytimeEngine a(g, tiered_cp.checkpoint, resume_resident);
  const RunResult ra = a.run(sched);
  AnytimeEngine b(g, resident_cp.checkpoint, resume_tiered);
  const RunResult rb = b.run(sched);
  expect_identical(ra, rb, "cross-resume");
}

TEST(TieredEquivalence, ChaosRecoveryAndAdoption) {
  // Crash a rank mid-run under the adopt rung: survivors deserialize and
  // re-shard the dead rank's rows. Tiered stores must adopt into cold form
  // budgets and still converge to the oracle's bits.
  const Graph g = make_er(100, 300, 59, WeightRange{1, 4});
  const EventSchedule sched = dynamic_schedule(g, 61);

  EngineConfig cfg = matrix_cfg(ExchangeMode::kDeterministic, 0);
  cfg.checkpoint_every = 1;
  cfg.recovery_policy = {{RecoveryPolicy::kAdopt, 0},
                         {RecoveryPolicy::kRollback, 0}};
  cfg.faults.crashes.push_back({1, 2});
  cfg.transport.retry_backoff = std::chrono::microseconds(1);

  RunResult oracle;
  {
    AnytimeEngine engine(g, cfg);
    oracle = engine.run(sched);
  }
  EXPECT_GE(oracle.stats.recoveries, 1u);

  for (const std::uint64_t budget : {std::uint64_t{64} << 10,
                                     std::uint64_t{kMinDvBudgetBytes}}) {
    EngineConfig tcfg = cfg;
    tcfg.dv_budget_bytes = budget;
    AnytimeEngine engine(g, tcfg);
    const RunResult r = engine.run(sched);
    EXPECT_EQ(r.stats.recoveries, oracle.stats.recoveries);
    expect_identical(oracle, r, "chaos budget=" + std::to_string(budget));
  }
}

}  // namespace
}  // namespace aacc
