// Event application and wire round-trips.
#include <gtest/gtest.h>

#include "core/events.hpp"

namespace aacc {
namespace {

TEST(Events, ApplyEdgeLifecycle) {
  Graph g(3);
  apply_event(g, EdgeAddEvent{0, 1, 4});
  EXPECT_EQ(g.edge_weight(0, 1), 4u);
  apply_event(g, WeightChangeEvent{0, 1, 9});
  EXPECT_EQ(g.edge_weight(0, 1), 9u);
  apply_event(g, EdgeDeleteEvent{0, 1});
  EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(Events, ApplyVertexAddChecksDenseId) {
  Graph g(2);
  g.add_edge(0, 1);
  VertexAddEvent ev;
  ev.id = 2;
  ev.edges = {{0, 3}, {1, 1}};
  apply_event(g, ev);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.edge_weight(2, 0), 3u);

  VertexAddEvent bad;
  bad.id = 7;  // should be 3
  EXPECT_THROW(apply_event(g, bad), std::logic_error);
}

TEST(Events, ApplyVertexDelete) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  apply_event(g, VertexDeleteEvent{1});
  EXPECT_FALSE(g.is_alive(1));
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Events, ScheduleAppliesInOrder) {
  Graph g(2);
  EventSchedule sched;
  sched.push_back({0, {EdgeAddEvent{0, 1, 2}}});
  VertexAddEvent va;
  va.id = 2;
  va.edges = {{1, 1}};
  sched.push_back({3, {va, EdgeDeleteEvent{0, 1}}});
  apply_schedule(g, sched);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(Events, SerializationRoundTrip) {
  std::vector<Event> events;
  events.emplace_back(EdgeAddEvent{1, 2, 3});
  events.emplace_back(EdgeDeleteEvent{4, 5});
  events.emplace_back(WeightChangeEvent{6, 7, 8});
  VertexAddEvent va;
  va.id = 9;
  va.edges = {{1, 2}, {3, 4}};
  events.emplace_back(va);
  events.emplace_back(VertexDeleteEvent{10});

  rt::ByteWriter w;
  serialize_events(events, w);
  const auto buf = w.take();
  rt::ByteReader r(buf);
  const auto back = deserialize_events(r);
  ASSERT_EQ(back.size(), events.size());

  EXPECT_EQ(std::get<EdgeAddEvent>(back[0]).w, 3u);
  EXPECT_EQ(std::get<EdgeDeleteEvent>(back[1]).v, 5u);
  EXPECT_EQ(std::get<WeightChangeEvent>(back[2]).w_new, 8u);
  const auto& va2 = std::get<VertexAddEvent>(back[3]);
  EXPECT_EQ(va2.id, 9u);
  ASSERT_EQ(va2.edges.size(), 2u);
  EXPECT_EQ(va2.edges[1], (std::pair<VertexId, Weight>{3, 4}));
  EXPECT_EQ(std::get<VertexDeleteEvent>(back[4]).v, 10u);
  EXPECT_TRUE(r.done());
}

TEST(Events, EmptySerialization) {
  rt::ByteWriter w;
  serialize_events({}, w);
  const auto buf = w.take();
  rt::ByteReader r(buf);
  EXPECT_TRUE(deserialize_events(r).empty());
}

TEST(Events, CountAcrossSchedule) {
  EventSchedule sched;
  sched.push_back({0, {EdgeAddEvent{}, EdgeAddEvent{}}});
  sched.push_back({2, {EdgeDeleteEvent{}}});
  EXPECT_EQ(event_count(sched), 3u);
}

}  // namespace
}  // namespace aacc
