// Processor-assignment strategies: determinism, balance, and cut quality.
#include <gtest/gtest.h>

#include "core/strategies.hpp"

namespace aacc {
namespace {

std::vector<VertexAddEvent> community_batch(VertexId first_id, VertexId count,
                                            unsigned communities) {
  // Chain + a few extra edges inside each community; no cross-community
  // edges — an ideal case for CutEdge-PS.
  std::vector<VertexAddEvent> batch(count);
  const VertexId per = count / communities;
  for (VertexId i = 0; i < count; ++i) {
    batch[i].id = first_id + i;
    const VertexId comm = i / per;
    const VertexId base = comm * per;
    if (i > base) {
      batch[i].edges.emplace_back(first_id + i - 1, 1);
      if (i > base + 1) batch[i].edges.emplace_back(first_id + base, 1);
    }
  }
  return batch;
}

TEST(RoundRobin, CircularFromCursor) {
  const auto a = assign_round_robin(5, 0, 3);
  EXPECT_EQ(a, (std::vector<Rank>{0, 1, 2, 0, 1}));
  const auto b = assign_round_robin(4, 7, 3);
  EXPECT_EQ(b, (std::vector<Rank>{1, 2, 0, 1}));
}

TEST(RankLoads, CountsAliveOnly) {
  const std::vector<Rank> owner{0, 1, 1, kNoRank, 2};
  EXPECT_EQ(rank_loads(owner, 3), (std::vector<std::size_t>{1, 2, 1}));
}

TEST(CutEdge, DeterministicGivenSeed) {
  const auto batch = community_batch(100, 40, 4);
  const std::vector<Rank> owner(100, 0);
  const auto a = assign_cut_edge(batch, 100, owner, 4, 7);
  const auto b = assign_cut_edge(batch, 100, owner, 4, 7);
  EXPECT_EQ(a, b);
}

TEST(CutEdge, KeepsCommunitiesTogether) {
  const unsigned k = 4;
  const VertexId count = 80;
  const auto batch = community_batch(50, count, k);
  std::vector<Rank> owner(50);
  for (VertexId v = 0; v < 50; ++v) owner[v] = static_cast<Rank>(v % k);
  const auto assign = assign_cut_edge(batch, 50, owner, k, 3);

  // Count batch-internal edges that end up cut.
  std::size_t cut = 0;
  std::size_t total = 0;
  for (VertexId i = 0; i < count; ++i) {
    for (const auto& [to, w] : batch[i].edges) {
      (void)w;
      ++total;
      if (assign[i] != assign[to - 50]) ++cut;
    }
  }
  ASSERT_GT(total, 0u);
  // Communities have no mutual edges, so a cut-minimizing assignment should
  // cut (almost) nothing; round-robin would cut ~3/4 of them.
  EXPECT_LT(static_cast<double>(cut) / static_cast<double>(total), 0.15);
}

TEST(CutEdge, BalancesAgainstCurrentLoads) {
  const auto batch = community_batch(40, 40, 4);  // 4 equal communities
  // Rank 0 heavily loaded; rank 3 empty.
  std::vector<Rank> owner(40, 0);
  for (VertexId v = 30; v < 40; ++v) owner[v] = 1;
  const auto assign = assign_cut_edge(batch, 40, owner, 4, 5);
  std::vector<std::size_t> got(4, 0);
  for (const Rank r : assign) ++got[static_cast<std::size_t>(r)];
  // The least-loaded ranks (2 and 3) must receive at least as many new
  // vertices as the most-loaded rank 0.
  EXPECT_GE(got[3], got[0]);
  EXPECT_GE(got[2], got[0]);
}

TEST(CutEdge, BatchSmallerThanWorld) {
  std::vector<VertexAddEvent> batch(2);
  batch[0].id = 10;
  batch[1].id = 11;
  batch[1].edges.emplace_back(10, 1);
  const std::vector<Rank> owner(10, 0);
  const auto assign = assign_cut_edge(batch, 10, owner, 8, 1);
  ASSERT_EQ(assign.size(), 2u);
  for (const Rank r : assign) {
    EXPECT_GE(r, 0);
    EXPECT_LT(r, 8);
  }
}

}  // namespace
}  // namespace aacc
