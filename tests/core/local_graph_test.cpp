// LocalGraph: ownership, portals, subscribers, and mutation bookkeeping.
#include <gtest/gtest.h>

#include "core/local_graph.hpp"

namespace aacc {
namespace {

// 6 vertices, ranks: {0,1,2}->0, {3,4,5}->1.
// Edges: 0-1, 1-2 (local to 0); 3-4 (local to 1); 2-3, 1-4 (cut).
std::vector<std::tuple<VertexId, VertexId, Weight>> fixture_edges() {
  return {{0, 1, 1}, {1, 2, 2}, {3, 4, 1}, {2, 3, 5}, {1, 4, 3}};
}

LocalGraph fixture(Rank me) {
  return LocalGraph(me, {0, 0, 0, 1, 1, 1}, fixture_edges());
}

TEST(LocalGraph, OwnershipAndRows) {
  const LocalGraph lg = fixture(0);
  EXPECT_EQ(lg.n(), 6u);
  EXPECT_EQ(lg.num_local(), 3u);
  EXPECT_TRUE(lg.is_local(1));
  EXPECT_FALSE(lg.is_local(4));
  EXPECT_EQ(lg.owner(4), 1);
  EXPECT_GE(lg.row_of(0), 0);
  EXPECT_EQ(lg.row_of(3), -1);
  EXPECT_EQ(lg.vertex_of(static_cast<std::size_t>(lg.row_of(2))), 2u);
}

TEST(LocalGraph, PortalsAreRemoteEndpointsOfCutEdges) {
  const LocalGraph lg = fixture(0);
  EXPECT_TRUE(lg.is_portal(3));  // via 2-3
  EXPECT_TRUE(lg.is_portal(4));  // via 1-4
  EXPECT_FALSE(lg.is_portal(5));
  EXPECT_FALSE(lg.is_portal(0));
  const auto nbrs = lg.portal_neighbors(3);
  ASSERT_EQ(nbrs.size(), 1u);
  EXPECT_EQ(nbrs[0].first, 2u);
  EXPECT_EQ(nbrs[0].second, 5u);
}

TEST(LocalGraph, BoundaryAndSubscribers) {
  const LocalGraph lg = fixture(0);
  EXPECT_FALSE(lg.is_boundary_row(static_cast<std::size_t>(lg.row_of(0))));
  EXPECT_TRUE(lg.is_boundary_row(static_cast<std::size_t>(lg.row_of(1))));
  std::vector<Rank> subs;
  lg.subscribers(static_cast<std::size_t>(lg.row_of(1)), subs);
  EXPECT_EQ(subs, std::vector<Rank>{1});
  subs.clear();
  lg.subscribers(static_cast<std::size_t>(lg.row_of(0)), subs);
  EXPECT_TRUE(subs.empty());
}

TEST(LocalGraph, SymmetricViewOnOtherRank) {
  const LocalGraph lg = fixture(1);
  EXPECT_EQ(lg.num_local(), 3u);
  EXPECT_TRUE(lg.is_portal(2));
  EXPECT_TRUE(lg.is_portal(1));
  EXPECT_EQ(lg.edge_weight(2, 3), 5u);
}

TEST(LocalGraph, AddCutEdgeCreatesPortal) {
  LocalGraph lg = fixture(0);
  lg.add_edge(0, 5, 7);
  EXPECT_TRUE(lg.is_portal(5));
  EXPECT_TRUE(lg.is_boundary_row(static_cast<std::size_t>(lg.row_of(0))));
  EXPECT_EQ(lg.edge_weight(0, 5), 7u);
}

TEST(LocalGraph, RemoveLastCutEdgeRemovesPortal) {
  LocalGraph lg = fixture(0);
  lg.remove_edge(2, 3);
  EXPECT_FALSE(lg.is_portal(3));
  EXPECT_TRUE(lg.is_portal(4));  // the other cut edge remains
}

TEST(LocalGraph, NonIncidentEdgesIgnored) {
  LocalGraph lg = fixture(0);
  lg.add_edge(3, 5, 2);  // remote-remote
  EXPECT_FALSE(lg.is_portal(5));
  lg.remove_edge(3, 4);  // remote-remote removal is a no-op locally
  EXPECT_EQ(lg.n(), 6u);
}

TEST(LocalGraph, SetWeightUpdatesPortalAdjacency) {
  LocalGraph lg = fixture(0);
  lg.set_weight(2, 3, 9);
  EXPECT_EQ(lg.edge_weight(2, 3), 9u);
  EXPECT_EQ(lg.portal_neighbors(3)[0].second, 9u);
}

TEST(LocalGraph, AddVertexLocalAndRemote) {
  LocalGraph lg = fixture(0);
  const VertexId a = lg.add_vertex(1);
  EXPECT_EQ(a, 6u);
  EXPECT_FALSE(lg.is_local(a));
  const VertexId b = lg.add_vertex(0);
  EXPECT_TRUE(lg.is_local(b));
  EXPECT_EQ(lg.num_local(), 4u);
  EXPECT_EQ(static_cast<std::size_t>(lg.row_of(b)), 3u);
}

TEST(LocalGraph, RemoveLocalVertexSwapsRows) {
  LocalGraph lg = fixture(0);
  const auto removed = lg.remove_vertex(0);  // row 0; vertex 2 moves into it
  EXPECT_EQ(removed, 0);
  EXPECT_FALSE(lg.is_alive(0));
  EXPECT_EQ(lg.num_local(), 2u);
  // Remaining locals still resolve correctly.
  EXPECT_EQ(lg.vertex_of(static_cast<std::size_t>(lg.row_of(2))), 2u);
  EXPECT_EQ(lg.vertex_of(static_cast<std::size_t>(lg.row_of(1))), 1u);
}

TEST(LocalGraph, RemoveRemoteVertexDropsCutEdges) {
  LocalGraph lg = fixture(0);
  const auto removed = lg.remove_vertex(3);
  EXPECT_EQ(removed, -1);
  EXPECT_FALSE(lg.is_portal(3));
  // Edge 2-3 must be gone from 2's adjacency.
  for (const Edge& e : lg.adj(static_cast<std::size_t>(lg.row_of(2)))) {
    EXPECT_NE(e.to, 3u);
  }
}

TEST(LocalGraph, GatherEmitsEachEdgeExactlyOnceAcrossRanks) {
  const LocalGraph lg0 = fixture(0);
  const LocalGraph lg1 = fixture(1);
  auto e0 = lg0.local_edges_for_gather();
  const auto e1 = lg1.local_edges_for_gather();
  e0.insert(e0.end(), e1.begin(), e1.end());
  EXPECT_EQ(e0.size(), fixture_edges().size());
  // No duplicates.
  std::sort(e0.begin(), e0.end());
  EXPECT_EQ(std::adjacent_find(e0.begin(), e0.end()), e0.end());
}

}  // namespace
}  // namespace aacc
