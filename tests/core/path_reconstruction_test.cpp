// Path reconstruction from the gathered next-hop tables: every chain must
// realize exactly the reported distance using real edges — including after
// dynamic changes rewired the routes.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace aacc {
namespace {

using test::make_ba;
using test::make_er;

void expect_paths_realize_distances(const Graph& g, const RunResult& r,
                                    std::size_t stride) {
  for (VertexId u = 0; u < g.num_vertices(); u += stride) {
    for (VertexId v = 0; v < g.num_vertices(); v += stride) {
      if (!g.is_alive(u) || !g.is_alive(v)) continue;
      const auto path = reconstruct_path(r, u, v);
      if (r.apsp[u][v] == kInfDist) {
        EXPECT_TRUE(path.empty());
        continue;
      }
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(path.front(), u);
      EXPECT_EQ(path.back(), v);
      Dist len = 0;
      for (std::size_t i = 1; i < path.size(); ++i) {
        ASSERT_TRUE(g.has_edge(path[i - 1], path[i]))
            << "phantom edge " << path[i - 1] << "-" << path[i];
        len += g.edge_weight(path[i - 1], path[i]);
      }
      EXPECT_EQ(len, r.apsp[u][v]) << "path length mismatch " << u << "->" << v;
    }
  }
}

TEST(PathReconstruction, StaticWeightedGraph) {
  const Graph g = make_er(120, 360, 3, WeightRange{1, 7});
  EngineConfig cfg;
  cfg.num_ranks = 5;
  cfg.gather_apsp = true;
  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run();
  expect_paths_realize_distances(g, r, 7);
}

TEST(PathReconstruction, AfterDynamicChanges) {
  const Graph g = make_ba(100, 2, 4);
  Rng rng(5);
  EventSchedule sched;
  EventBatch batch;
  batch.at_step = 1;
  Graph cursor = g;
  for (int i = 0; i < 8; ++i) {
    const auto edges = cursor.edges();
    const auto& [u, v, w] = edges[rng.next_below(edges.size())];
    (void)w;
    cursor.remove_edge(u, v);
    batch.events.emplace_back(EdgeDeleteEvent{u, v});
  }
  for (const Event& e : test::grow_vertices(cursor, 10, 2, rng)) {
    apply_event(cursor, e);
    batch.events.push_back(e);
  }
  sched.push_back(std::move(batch));

  EngineConfig cfg;
  cfg.num_ranks = 6;
  cfg.gather_apsp = true;
  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run(sched);
  expect_paths_realize_distances(cursor, r, 5);
}

TEST(PathReconstruction, SelfPathAndUnreachable) {
  Graph g(3);
  g.add_edge(0, 1, 2);
  EngineConfig cfg;
  cfg.num_ranks = 2;
  cfg.gather_apsp = true;
  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run();
  EXPECT_EQ(reconstruct_path(r, 1, 1), std::vector<VertexId>{1});
  EXPECT_TRUE(reconstruct_path(r, 0, 2).empty());
  EXPECT_EQ(reconstruct_path(r, 0, 1), (std::vector<VertexId>{0, 1}));
}

TEST(PathReconstruction, RequiresGatheredApsp) {
  Graph g(2);
  g.add_edge(0, 1);
  EngineConfig cfg;
  cfg.num_ranks = 1;
  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run();
  EXPECT_THROW((void)reconstruct_path(r, 0, 1), std::logic_error);
}

}  // namespace
}  // namespace aacc
