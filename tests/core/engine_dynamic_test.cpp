// Integration: dynamic updates ingested mid-analysis must converge to
// exactly the same APSP/closeness as recomputing from scratch on the
// mutated graph — for additions, deletions, weight changes, vertex
// additions under every assignment strategy, and vertex deletions.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace aacc {
namespace {

using test::expect_apsp_exact;
using test::grow_vertices;
using test::make_ba;
using test::make_er;

EngineConfig base_cfg(Rank P) {
  EngineConfig cfg;
  cfg.num_ranks = P;
  cfg.gather_apsp = true;
  return cfg;
}

Graph truth_after(const Graph& g, const EventSchedule& schedule) {
  Graph t = g;
  apply_schedule(t, schedule);
  return t;
}

TEST(EngineDynamic, EdgeAdditionsSeeded) {
  const Graph g = make_ba(200, 2, 11);
  Rng rng(99);
  EventSchedule sched;
  EventBatch batch;
  batch.at_step = 1;
  for (int i = 0; i < 30; ++i) {
    VertexId u;
    VertexId v;
    do {
      u = static_cast<VertexId>(rng.next_below(g.num_vertices()));
      v = static_cast<VertexId>(rng.next_below(g.num_vertices()));
    } while (u == v || g.has_edge(u, v));
    bool dup = false;
    for (const Event& e : batch.events) {
      const auto& ea = std::get<EdgeAddEvent>(e);
      dup |= (ea.u == u && ea.v == v) || (ea.u == v && ea.v == u);
    }
    if (dup) continue;
    batch.events.emplace_back(EdgeAddEvent{u, v, 1});
  }
  sched.push_back(batch);

  AnytimeEngine engine(g, base_cfg(6));
  const RunResult r = engine.run(sched);
  expect_apsp_exact(truth_after(g, sched), r);
}

TEST(EngineDynamic, EdgeAdditionsEagerMatchesSeeded) {
  const Graph g = make_er(150, 400, 21, WeightRange{1, 5});
  EventSchedule sched;
  EventBatch batch;
  batch.at_step = 2;
  batch.events.emplace_back(EdgeAddEvent{3, 77, 1});
  batch.events.emplace_back(EdgeAddEvent{10, 140, 2});
  batch.events.emplace_back(EdgeAddEvent{55, 91, 1});
  sched.push_back(batch);

  for (const EdgeAddMode mode : {EdgeAddMode::kSeeded, EdgeAddMode::kEager}) {
    EngineConfig cfg = base_cfg(4);
    cfg.add_mode = mode;
    Graph g2 = g;
    // Ensure the scheduled edges don't already exist in the fixture.
    for (const Event& e : sched[0].events) {
      const auto& ea = std::get<EdgeAddEvent>(e);
      ASSERT_FALSE(g2.has_edge(ea.u, ea.v));
    }
    AnytimeEngine engine(g2, cfg);
    const RunResult r = engine.run(sched);
    expect_apsp_exact(truth_after(g, sched), r);
  }
}

TEST(EngineDynamic, EdgeDeletions) {
  const Graph g = make_er(150, 500, 33);
  Rng rng(5);
  EventSchedule sched;
  EventBatch batch;
  batch.at_step = 1;
  Graph probe = g;  // tracks deletions so we never delete twice
  for (int i = 0; i < 25; ++i) {
    const auto edges = probe.edges();
    const auto& [u, v, w] = edges[rng.next_below(edges.size())];
    (void)w;
    probe.remove_edge(u, v);
    batch.events.emplace_back(EdgeDeleteEvent{u, v});
  }
  sched.push_back(batch);

  AnytimeEngine engine(g, base_cfg(6));
  const RunResult r = engine.run(sched);
  expect_apsp_exact(truth_after(g, sched), r);
}

TEST(EngineDynamic, EdgeDeletionLateStep) {
  const Graph g = make_ba(180, 3, 8);
  Rng rng(17);
  EventSchedule sched;
  EventBatch batch;
  batch.at_step = 9;  // after static convergence
  Graph probe = g;
  for (int i = 0; i < 15; ++i) {
    const auto edges = probe.edges();
    const auto& [u, v, w] = edges[rng.next_below(edges.size())];
    (void)w;
    probe.remove_edge(u, v);
    batch.events.emplace_back(EdgeDeleteEvent{u, v});
  }
  sched.push_back(batch);

  AnytimeEngine engine(g, base_cfg(5));
  const RunResult r = engine.run(sched);
  expect_apsp_exact(truth_after(g, sched), r);
}

TEST(EngineDynamic, WeightIncreaseAndDecrease) {
  const Graph g = make_er(120, 360, 44, WeightRange{2, 6});
  EventSchedule sched;
  EventBatch batch;
  batch.at_step = 1;
  const auto edges = g.edges();
  // Increase some weights, decrease others.
  for (std::size_t i = 0; i < 20 && i < edges.size(); ++i) {
    const auto& [u, v, w] = edges[i * 7 % edges.size()];
    bool dup = false;
    for (const Event& e : batch.events) {
      const auto& wc = std::get<WeightChangeEvent>(e);
      dup |= (wc.u == u && wc.v == v);
    }
    if (dup) continue;
    const Weight nw = (i % 2 == 0) ? w + 5 : 1;
    batch.events.emplace_back(WeightChangeEvent{u, v, nw});
  }
  sched.push_back(batch);

  AnytimeEngine engine(g, base_cfg(4));
  const RunResult r = engine.run(sched);
  expect_apsp_exact(truth_after(g, sched), r);
}

TEST(EngineDynamic, VertexAdditionsRoundRobin) {
  const Graph g = make_ba(150, 2, 55);
  Rng rng(2);
  EventSchedule sched;
  sched.push_back({1, grow_vertices(g, 40, 3, rng)});

  EngineConfig cfg = base_cfg(6);
  cfg.assign = AssignStrategy::kRoundRobin;
  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run(sched);
  expect_apsp_exact(truth_after(g, sched), r);
}

TEST(EngineDynamic, VertexAdditionsCutEdge) {
  const Graph g = make_ba(150, 2, 56);
  Rng rng(3);
  EventSchedule sched;
  sched.push_back({2, grow_vertices(g, 40, 3, rng)});

  EngineConfig cfg = base_cfg(6);
  cfg.assign = AssignStrategy::kCutEdge;
  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run(sched);
  expect_apsp_exact(truth_after(g, sched), r);
}

TEST(EngineDynamic, VertexAdditionsRepartition) {
  const Graph g = make_ba(150, 2, 57);
  Rng rng(4);
  EventSchedule sched;
  sched.push_back({1, grow_vertices(g, 40, 3, rng)});

  EngineConfig cfg = base_cfg(6);
  cfg.assign = AssignStrategy::kRepartition;
  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run(sched);
  expect_apsp_exact(truth_after(g, sched), r);
}

TEST(EngineDynamic, VertexDeletions) {
  const Graph g = make_er(140, 500, 66);
  EventSchedule sched;
  EventBatch batch;
  batch.at_step = 1;
  batch.events.emplace_back(VertexDeleteEvent{7});
  batch.events.emplace_back(VertexDeleteEvent{23});
  batch.events.emplace_back(VertexDeleteEvent{108});
  sched.push_back(batch);

  AnytimeEngine engine(g, base_cfg(5));
  const RunResult r = engine.run(sched);
  expect_apsp_exact(truth_after(g, sched), r);
}

TEST(EngineDynamic, IncrementalBatchesAcrossSteps) {
  const Graph g = make_ba(160, 2, 77);
  Rng rng(8);
  EventSchedule sched;
  Graph cursor = g;
  for (std::size_t s = 0; s < 4; ++s) {
    EventBatch batch;
    batch.at_step = 1 + 2 * s;
    auto events = grow_vertices(cursor, 10, 2, rng);
    for (const Event& e : events) apply_event(cursor, e);
    batch.events = std::move(events);
    sched.push_back(std::move(batch));
  }
  AnytimeEngine engine(g, base_cfg(6));
  const RunResult r = engine.run(sched);
  expect_apsp_exact(cursor, r);
}

// Property sweep: random interleavings of every event type at random steps
// must still converge to the reference. Seeds parameterize the chaos.
class DynamicChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DynamicChaos, ConvergesToReference) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  Graph g = make_er(100, 280, seed ^ 0xabcdef);

  Graph cursor = g;
  EventSchedule sched;
  std::size_t step = 1;
  for (int b = 0; b < 3; ++b) {
    EventBatch batch;
    batch.at_step = step;
    step += rng.next_below(3);
    for (int i = 0; i < 12; ++i) {
      const auto kind = rng.next_below(5);
      if (kind == 0) {  // edge add
        VertexId u;
        VertexId v;
        int tries = 0;
        do {
          u = static_cast<VertexId>(rng.next_below(cursor.num_vertices()));
          v = static_cast<VertexId>(rng.next_below(cursor.num_vertices()));
        } while ((u == v || !cursor.is_alive(u) || !cursor.is_alive(v) ||
                  cursor.has_edge(u, v)) &&
                 ++tries < 50);
        if (tries >= 50) continue;
        const auto w = static_cast<Weight>(1 + rng.next_below(4));
        cursor.add_edge(u, v, w);
        batch.events.emplace_back(EdgeAddEvent{u, v, w});
      } else if (kind == 1) {  // edge delete
        const auto edges = cursor.edges();
        if (edges.empty()) continue;
        const auto& [u, v, w] = edges[rng.next_below(edges.size())];
        (void)w;
        cursor.remove_edge(u, v);
        batch.events.emplace_back(EdgeDeleteEvent{u, v});
      } else if (kind == 2) {  // weight change
        const auto edges = cursor.edges();
        if (edges.empty()) continue;
        const auto& [u, v, w] = edges[rng.next_below(edges.size())];
        (void)w;
        const auto nw = static_cast<Weight>(1 + rng.next_below(8));
        cursor.set_weight(u, v, nw);
        batch.events.emplace_back(WeightChangeEvent{u, v, nw});
      } else if (kind == 3) {  // vertex add
        auto events = grow_vertices(cursor, 2, 2, rng);
        for (const Event& e : events) {
          apply_event(cursor, e);
          batch.events.push_back(e);
        }
      } else {  // vertex delete
        VertexId v;
        int tries = 0;
        do {
          v = static_cast<VertexId>(rng.next_below(cursor.num_vertices()));
        } while (!cursor.is_alive(v) && ++tries < 50);
        if (tries >= 50 || cursor.num_alive() < 20) continue;
        cursor.remove_vertex(v);
        batch.events.emplace_back(VertexDeleteEvent{v});
      }
    }
    sched.push_back(std::move(batch));
  }

  EngineConfig cfg;
  cfg.num_ranks = 4 + static_cast<Rank>(seed % 5);
  cfg.gather_apsp = true;
  cfg.assign = static_cast<AssignStrategy>(seed % 3);
  cfg.validate_each_step = true;  // DVR invariant audited after every step
  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run(sched);
  EXPECT_EQ(r.stats.invariant_violations, 0u);
  expect_apsp_exact(cursor, r);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicChaos,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16));

}  // namespace
}  // namespace aacc
