// Chaos harness for the fault-injected runtime (docs/FAULTS.md): message
// faults must not change a single bit of the result, an injected crash with
// periodic checkpoints must recover to the fault-free answer, and a crash
// without checkpoints must complete degraded with an exact coverage report.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/shortest_paths.hpp"
#include "test_util.hpp"

namespace aacc {
namespace {

using test::expect_apsp_exact;
using test::grow_vertices;
using test::make_ba;
using test::make_er;

EngineConfig base_cfg(Rank P) {
  EngineConfig cfg;
  cfg.num_ranks = P;
  cfg.gather_apsp = true;
  // Keep chaos tests snappy: faulted frames retry almost immediately, and a
  // wedged run fails with TimeoutError instead of hitting the ctest timeout.
  cfg.transport.retry_backoff = std::chrono::microseconds(1);
  cfg.transport.recv_timeout = std::chrono::seconds(60);
  return cfg;
}

/// A dynamic schedule exercising adds, deletions, and growth.
EventSchedule mixed_schedule(const Graph& g, std::uint64_t seed) {
  Rng rng(seed);
  EventSchedule sched;
  {
    EventBatch b;
    b.at_step = 1;
    VertexId fresh = g.num_vertices() / 2;
    while (fresh == 0 || g.has_edge(0, fresh)) ++fresh;
    b.events.push_back(EdgeAddEvent{0, fresh, 1});
    const auto edges = g.edges();
    const auto& [u, v, w] = edges[rng.next_below(edges.size())];
    (void)w;
    b.events.push_back(EdgeDeleteEvent{u, v});
    sched.push_back(std::move(b));
  }
  {
    EventBatch b;
    b.at_step = 3;
    Graph grown = g;
    for (const Event& e : sched[0].events) apply_event(grown, e);
    b.events = grow_vertices(grown, 6, 2, rng);
    sched.push_back(std::move(b));
  }
  return sched;
}

rt::FaultPlan message_faults(std::uint64_t seed) {
  rt::FaultPlan plan;
  plan.seed = seed;
  plan.drop = 0.08;
  plan.duplicate = 0.04;
  plan.delay = 0.08;
  plan.corrupt = 0.08;
  return plan;
}

// ------------------------------------------------------------- chaos fuzz

TEST(ChaosFuzz, MessageFaultsNeverChangeTheResult) {
  // Reliable delivery is exact: dropped/duplicated/delayed/corrupted frames
  // are repaired by the transport, so the converged state is bit-identical
  // to the fault-free run — same distances, same closeness doubles.
  const Graph g = make_er(140, 420, 11, WeightRange{1, 4});
  const EventSchedule sched = mixed_schedule(g, 21);
  const EngineConfig cfg = base_cfg(4);

  AnytimeEngine clean_engine(g, cfg);
  const RunResult clean = clean_engine.run(sched);

  for (const std::uint64_t seed : {101u, 202u, 303u}) {
    EngineConfig chaos_cfg = cfg;
    chaos_cfg.faults = message_faults(seed);
    AnytimeEngine engine(g, chaos_cfg);
    const RunResult chaotic = engine.run(sched);

    EXPECT_EQ(chaotic.stats.rc_steps, clean.stats.rc_steps) << "seed " << seed;
    EXPECT_FALSE(chaotic.degraded);
    ASSERT_EQ(chaotic.closeness.size(), clean.closeness.size());
    for (VertexId v = 0; v < clean.closeness.size(); ++v) {
      ASSERT_EQ(chaotic.closeness[v], clean.closeness[v])
          << "seed " << seed << " vertex " << v;
    }
    EXPECT_EQ(chaotic.apsp, clean.apsp) << "seed " << seed;
  }
}

TEST(ChaosFuzz, FaultFreeRunPaysNothingForTheMachinery) {
  // Acceptance gate: with no faults configured the hardened build must be
  // byte-for-byte the PR 1 runtime — same traffic, same steps, no frames.
  const Graph g = make_ba(150, 2, 5);
  const EventSchedule sched = mixed_schedule(g, 9);
  const EngineConfig cfg = base_cfg(4);

  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run(sched);
  EXPECT_EQ(r.stats.recoveries, 0u);
  EXPECT_FALSE(r.degraded);
  expect_apsp_exact(engine.graph(), r);
}

// --------------------------------------------------- checkpoint recovery

TEST(Recovery, CrashWithPeriodicCheckpointsIsBitIdentical) {
  const Graph g = make_er(130, 390, 13, WeightRange{1, 3});
  const EventSchedule sched = mixed_schedule(g, 31);
  const EngineConfig cfg = base_cfg(4);

  AnytimeEngine clean_engine(g, cfg);
  const RunResult clean = clean_engine.run(sched);
  ASSERT_GE(clean.stats.rc_steps, 4u);

  // Crash rank 1 mid-run *and* fault the wire during both the original
  // attempt and the replay; the supervisor rolls back to the newest common
  // snapshot and the replay converges to the identical answer.
  EngineConfig chaos_cfg = cfg;
  chaos_cfg.checkpoint_every = 2;
  chaos_cfg.faults = message_faults(404);
  chaos_cfg.faults.crashes.push_back({1, 3});

  AnytimeEngine engine(g, chaos_cfg);
  const RunResult recovered = engine.run(sched);

  EXPECT_EQ(recovered.stats.recoveries, 1u);
  EXPECT_FALSE(recovered.degraded);
  EXPECT_TRUE(recovered.lost_vertices.empty());
  ASSERT_EQ(recovered.closeness.size(), clean.closeness.size());
  for (VertexId v = 0; v < clean.closeness.size(); ++v) {
    ASSERT_EQ(recovered.closeness[v], clean.closeness[v]) << "vertex " << v;
  }
  EXPECT_EQ(recovered.apsp, clean.apsp);
  EXPECT_EQ(recovered.final_owner, clean.final_owner);
}

TEST(Recovery, CrashBeforeAnySnapshotRestartsFromScratch) {
  // Rank 2 dies at the very first RC step, before any periodic snapshot
  // exists: the supervisor restarts the whole run (still bit-identical).
  const Graph g = make_ba(120, 2, 17);
  const EngineConfig cfg = base_cfg(3);

  AnytimeEngine clean_engine(g, cfg);
  const RunResult clean = clean_engine.run();

  EngineConfig chaos_cfg = cfg;
  chaos_cfg.checkpoint_every = 4;
  chaos_cfg.faults.crashes.push_back({2, 0});

  AnytimeEngine engine(g, chaos_cfg);
  const RunResult recovered = engine.run();
  EXPECT_EQ(recovered.stats.recoveries, 1u);
  EXPECT_EQ(recovered.apsp, clean.apsp);
}

TEST(Recovery, CrashAtEveryStepSweep) {
  // Kill a rank at every step of the run, one run per crash point: each
  // must recover (rollback or full restart) and converge to the fault-free
  // answer. This sweeps the checkpoint/rollback boundary conditions —
  // crash on a snapshot step, just after one, and on the final step.
  const Graph g = make_er(90, 270, 19, WeightRange{1, 3});
  const EventSchedule sched = mixed_schedule(g, 41);
  const EngineConfig cfg = base_cfg(3);

  AnytimeEngine clean_engine(g, cfg);
  const RunResult clean = clean_engine.run(sched);
  const std::size_t steps = clean.stats.rc_steps;
  ASSERT_GE(steps, 3u);

  for (std::size_t s = 0; s < steps; ++s) {
    EngineConfig chaos_cfg = cfg;
    chaos_cfg.checkpoint_every = 2;
    chaos_cfg.faults.crashes.push_back({1, s});

    AnytimeEngine engine(g, chaos_cfg);
    const RunResult recovered = engine.run(sched);
    EXPECT_EQ(recovered.stats.recoveries, 1u) << "crash at step " << s;
    EXPECT_EQ(recovered.apsp, clean.apsp) << "crash at step " << s;
  }
}

TEST(Recovery, RepeatedCrashesWithinTheBudget) {
  // Two distinct crash points in one run: the supervisor recovers twice.
  const Graph g = make_ba(110, 2, 23);
  const EventSchedule sched = mixed_schedule(g, 51);
  EngineConfig cfg = base_cfg(4);

  AnytimeEngine clean_engine(g, cfg);
  const RunResult clean = clean_engine.run(sched);
  ASSERT_GE(clean.stats.rc_steps, 4u);

  EngineConfig chaos_cfg = cfg;
  chaos_cfg.checkpoint_every = 1;
  chaos_cfg.faults.crashes.push_back({0, 2});
  chaos_cfg.faults.crashes.push_back({3, 3});

  AnytimeEngine engine(g, chaos_cfg);
  const RunResult recovered = engine.run(sched);
  EXPECT_EQ(recovered.stats.recoveries, 2u);
  EXPECT_EQ(recovered.apsp, clean.apsp);
}

TEST(Recovery, BudgetExhaustionSurfacesTheRootCause) {
  const Graph g = make_ba(80, 2, 29);
  EngineConfig cfg = base_cfg(3);
  cfg.checkpoint_every = 0;  // degraded path would fire, but...
  cfg.max_recoveries = 0;    // ...the budget forbids any relaunch
  cfg.faults.crashes.push_back({1, 1});

  AnytimeEngine engine(g, cfg);
  EXPECT_THROW((void)engine.run(), rt::InjectedCrash);
}

// ------------------------------------------------------ degraded fallback

TEST(Degraded, ReportsTheExactCoverageGapAndFinishes) {
  // No recovery checkpoints: rank 2's rows are lost for good. The run must
  // still terminate (no hang, no crash), flag itself degraded, and list
  // exactly the alive vertices whose closeness is unknown.
  const Graph g = make_er(120, 360, 37, WeightRange{1, 3});
  const EventSchedule sched = mixed_schedule(g, 61);
  const EngineConfig cfg = base_cfg(4);

  AnytimeEngine clean_engine(g, cfg);
  const RunResult clean = clean_engine.run(sched);

  EngineConfig chaos_cfg = cfg;
  chaos_cfg.checkpoint_every = 0;
  chaos_cfg.faults.crashes.push_back({2, 2});

  AnytimeEngine engine(g, chaos_cfg);
  const RunResult degraded = engine.run(sched);

  EXPECT_TRUE(degraded.degraded);
  EXPECT_EQ(degraded.stats.recoveries, 1u);

  // The coverage gap is exactly the final ownership of the dead rank.
  std::vector<VertexId> expected;
  for (VertexId v = 0; v < degraded.final_owner.size(); ++v) {
    if (degraded.final_owner[v] == 2 && engine.graph().is_alive(v)) {
      expected.push_back(v);
    }
  }
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(degraded.lost_vertices, expected);
  for (const VertexId v : degraded.lost_vertices) {
    EXPECT_EQ(degraded.closeness[v], 0.0);
  }

  // Survivors hold sound DVR state: distances are upper bounds of the true
  // ones (routes through the dead rank's territory may be lost, never
  // underestimated), so harmonic centrality is a lower bound.
  const auto ref = apsp_reference(engine.graph());
  std::size_t exact_entries = 0;
  for (VertexId u = 0; u < degraded.final_owner.size(); ++u) {
    if (degraded.final_owner[u] == 2) continue;
    for (VertexId v = 0; v < ref.size(); ++v) {
      if (u == v) continue;
      EXPECT_GE(degraded.apsp[u][v], ref[u][v])
          << "underestimate at (" << u << ',' << v << ')';
      exact_entries += degraded.apsp[u][v] == ref[u][v] ? 1 : 0;
    }
    EXPECT_LE(degraded.harmonic[u], clean.harmonic[u] + 1e-12);
  }
  // The anytime property: much of the surviving state still converges
  // exactly (a whole row is only exact when none of its shortest paths
  // route through the dead rank's territory, which is rare on dense ER).
  EXPECT_GT(exact_entries, ref.size());
}

TEST(Degraded, StaticRunLosesOnlyTheDeadRanksRows) {
  const Graph g = make_ba(100, 2, 43);
  EngineConfig cfg = base_cfg(3);
  cfg.faults.crashes.push_back({0, 1});  // rank 0 dies (also the broadcaster)

  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run();
  EXPECT_TRUE(r.degraded);
  ASSERT_FALSE(r.lost_vertices.empty());
  for (const VertexId v : r.lost_vertices) {
    EXPECT_EQ(r.final_owner[v], 0);
    EXPECT_EQ(r.closeness[v], 0.0);
  }
  // Survivor rows are intact and exact: the crash fired at a step
  // boundary, so no survivor state was torn.
  const auto ref = apsp_reference(engine.graph());
  for (VertexId u = 0; u < r.final_owner.size(); ++u) {
    if (r.final_owner[u] == 0) continue;
    for (VertexId v = 0; v < ref.size(); ++v) {
      if (u != v) {
        EXPECT_GE(r.apsp[u][v], ref[u][v]);
      }
    }
  }
}

}  // namespace
}  // namespace aacc
