// Fault-tolerance extension: checkpoint a run mid-analysis, destroy the
// world, resume in a fresh one, and converge to exactly the same result as
// an uninterrupted run.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace aacc {
namespace {

using test::expect_apsp_exact;
using test::grow_vertices;
using test::make_ba;
using test::make_er;

EngineConfig base_cfg(Rank P) {
  EngineConfig cfg;
  cfg.num_ranks = P;
  cfg.gather_apsp = true;
  return cfg;
}

TEST(Checkpoint, StaticRunSurvivesRestart) {
  const Graph g = make_ba(200, 2, 3);
  EngineConfig cfg = base_cfg(6);
  cfg.checkpoint_at_step = 1;  // well before convergence

  AnytimeEngine first(g, cfg);
  const RunResult interim = first.run();
  ASSERT_TRUE(interim.checkpoint.valid());
  EXPECT_EQ(interim.checkpoint.step, 1u);
  EXPECT_GT(interim.checkpoint.bytes(), 0u);

  AnytimeEngine resumed(g, interim.checkpoint, cfg);
  const RunResult final_result = resumed.run();
  expect_apsp_exact(g, final_result);
}

TEST(Checkpoint, PendingDirtyEntriesSurvive) {
  // Checkpoint immediately after IA results enter the loop (step 0): the
  // un-sent boundary rows must be carried by the blobs or the resumed run
  // would never converge to the global solution.
  const Graph g = make_er(150, 450, 5, WeightRange{1, 4});
  EngineConfig cfg = base_cfg(5);
  cfg.checkpoint_at_step = 0;

  AnytimeEngine first(g, cfg);
  const RunResult interim = first.run();
  ASSERT_TRUE(interim.checkpoint.valid());

  AnytimeEngine resumed(g, interim.checkpoint, cfg);
  const RunResult final_result = resumed.run();
  expect_apsp_exact(g, final_result);
}

TEST(Checkpoint, DynamicScheduleSplitsAcrossRestart) {
  const Graph g = make_ba(150, 2, 7);
  Rng rng(8);
  EventSchedule sched;
  sched.push_back({1, grow_vertices(g, 10, 2, rng)});
  Graph mid = g;
  apply_schedule(mid, sched);
  EventBatch late;
  late.at_step = 6;
  late.events = grow_vertices(mid, 10, 2, rng);
  apply_schedule(mid, {EventBatch{6, late.events}});
  sched.push_back(std::move(late));

  EngineConfig cfg = base_cfg(5);
  cfg.checkpoint_at_step = 3;  // after batch 1, before batch 2

  AnytimeEngine first(g, cfg);
  const RunResult interim = first.run(sched);
  ASSERT_TRUE(interim.checkpoint.valid());
  EXPECT_EQ(interim.checkpoint.next_batch, 1u);

  AnytimeEngine resumed(g, interim.checkpoint, cfg);
  const RunResult final_result = resumed.run(sched);
  expect_apsp_exact(mid, final_result);
}

TEST(Checkpoint, DeletionsWithPendingPoisonsSurvive) {
  const Graph g = make_er(120, 420, 9);
  Rng rng(10);
  EventSchedule sched;
  EventBatch batch;
  batch.at_step = 1;
  Graph cursor = g;
  for (int i = 0; i < 20; ++i) {
    const auto edges = cursor.edges();
    const auto& [u, v, w] = edges[rng.next_below(edges.size())];
    (void)w;
    cursor.remove_edge(u, v);
    batch.events.emplace_back(EdgeDeleteEvent{u, v});
  }
  sched.push_back(std::move(batch));

  EngineConfig cfg = base_cfg(6);
  cfg.checkpoint_at_step = 1;  // right at the deletion step

  AnytimeEngine first(g, cfg);
  const RunResult interim = first.run(sched);
  ASSERT_TRUE(interim.checkpoint.valid());

  AnytimeEngine resumed(g, interim.checkpoint, cfg);
  const RunResult final_result = resumed.run(sched);
  expect_apsp_exact(cursor, final_result);
}

TEST(Checkpoint, ResumedResultMatchesUninterruptedRun) {
  const Graph g = make_ba(180, 2, 11);
  Rng rng(12);
  EventSchedule sched;
  sched.push_back({2, grow_vertices(g, 12, 2, rng)});

  EngineConfig plain = base_cfg(4);
  AnytimeEngine straight(g, plain);
  const RunResult direct = straight.run(sched);

  EngineConfig cp = plain;
  cp.checkpoint_at_step = 2;
  AnytimeEngine first(g, cp);
  const RunResult interim = first.run(sched);
  AnytimeEngine resumed(g, interim.checkpoint, plain);
  const RunResult final_result = resumed.run(sched);

  ASSERT_EQ(direct.apsp.size(), final_result.apsp.size());
  for (VertexId u = 0; u < direct.apsp.size(); ++u) {
    EXPECT_EQ(direct.apsp[u], final_result.apsp[u]) << "row " << u;
  }
}

TEST(Checkpoint, WorldSizeMismatchRejected) {
  const Graph g = make_ba(80, 2, 13);
  EngineConfig cfg = base_cfg(4);
  cfg.checkpoint_at_step = 1;
  AnytimeEngine first(g, cfg);
  const RunResult interim = first.run();
  EngineConfig other = cfg;
  other.num_ranks = 8;
  EXPECT_THROW(AnytimeEngine(g, interim.checkpoint, other), std::logic_error);
}

TEST(Checkpoint, NoCheckpointPastConvergence) {
  const Graph g = make_ba(80, 2, 14);
  EngineConfig cfg = base_cfg(4);
  cfg.checkpoint_at_step = 500;  // never reached
  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run();
  EXPECT_FALSE(r.checkpoint.valid());
  expect_apsp_exact(g, r);
}

}  // namespace
}  // namespace aacc
