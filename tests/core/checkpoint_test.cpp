// Fault-tolerance extension: checkpoint a run mid-analysis, destroy the
// world, resume in a fresh one, and converge to exactly the same result as
// an uninterrupted run.
#include <gtest/gtest.h>

#include "runtime/serialize.hpp"
#include "test_util.hpp"

namespace aacc {
namespace {

using test::expect_apsp_exact;
using test::grow_vertices;
using test::make_ba;
using test::make_er;

EngineConfig base_cfg(Rank P) {
  EngineConfig cfg;
  cfg.num_ranks = P;
  cfg.gather_apsp = true;
  return cfg;
}

TEST(Checkpoint, StaticRunSurvivesRestart) {
  const Graph g = make_ba(200, 2, 3);
  EngineConfig cfg = base_cfg(6);
  cfg.checkpoint_at_step = 1;  // well before convergence

  AnytimeEngine first(g, cfg);
  const RunResult interim = first.run();
  ASSERT_TRUE(interim.checkpoint.valid());
  EXPECT_EQ(interim.checkpoint.step, 1u);
  EXPECT_GT(interim.checkpoint.bytes(), 0u);

  AnytimeEngine resumed(g, interim.checkpoint, cfg);
  const RunResult final_result = resumed.run();
  expect_apsp_exact(g, final_result);
}

TEST(Checkpoint, PendingDirtyEntriesSurvive) {
  // Checkpoint immediately after IA results enter the loop (step 0): the
  // un-sent boundary rows must be carried by the blobs or the resumed run
  // would never converge to the global solution.
  const Graph g = make_er(150, 450, 5, WeightRange{1, 4});
  EngineConfig cfg = base_cfg(5);
  cfg.checkpoint_at_step = 0;

  AnytimeEngine first(g, cfg);
  const RunResult interim = first.run();
  ASSERT_TRUE(interim.checkpoint.valid());

  AnytimeEngine resumed(g, interim.checkpoint, cfg);
  const RunResult final_result = resumed.run();
  expect_apsp_exact(g, final_result);
}

TEST(Checkpoint, DynamicScheduleSplitsAcrossRestart) {
  const Graph g = make_ba(150, 2, 7);
  Rng rng(8);
  EventSchedule sched;
  sched.push_back({1, grow_vertices(g, 10, 2, rng)});
  Graph mid = g;
  apply_schedule(mid, sched);
  EventBatch late;
  late.at_step = 6;
  late.events = grow_vertices(mid, 10, 2, rng);
  apply_schedule(mid, {EventBatch{6, late.events}});
  sched.push_back(std::move(late));

  EngineConfig cfg = base_cfg(5);
  cfg.checkpoint_at_step = 3;  // after batch 1, before batch 2

  AnytimeEngine first(g, cfg);
  const RunResult interim = first.run(sched);
  ASSERT_TRUE(interim.checkpoint.valid());
  EXPECT_EQ(interim.checkpoint.next_batch, 1u);

  AnytimeEngine resumed(g, interim.checkpoint, cfg);
  const RunResult final_result = resumed.run(sched);
  expect_apsp_exact(mid, final_result);
}

TEST(Checkpoint, DeletionsWithPendingPoisonsSurvive) {
  const Graph g = make_er(120, 420, 9);
  Rng rng(10);
  EventSchedule sched;
  EventBatch batch;
  batch.at_step = 1;
  Graph cursor = g;
  for (int i = 0; i < 20; ++i) {
    const auto edges = cursor.edges();
    const auto& [u, v, w] = edges[rng.next_below(edges.size())];
    (void)w;
    cursor.remove_edge(u, v);
    batch.events.emplace_back(EdgeDeleteEvent{u, v});
  }
  sched.push_back(std::move(batch));

  EngineConfig cfg = base_cfg(6);
  cfg.checkpoint_at_step = 1;  // right at the deletion step

  AnytimeEngine first(g, cfg);
  const RunResult interim = first.run(sched);
  ASSERT_TRUE(interim.checkpoint.valid());

  AnytimeEngine resumed(g, interim.checkpoint, cfg);
  const RunResult final_result = resumed.run(sched);
  expect_apsp_exact(cursor, final_result);
}

TEST(Checkpoint, ResumedResultMatchesUninterruptedRun) {
  const Graph g = make_ba(180, 2, 11);
  Rng rng(12);
  EventSchedule sched;
  sched.push_back({2, grow_vertices(g, 12, 2, rng)});

  EngineConfig plain = base_cfg(4);
  AnytimeEngine straight(g, plain);
  const RunResult direct = straight.run(sched);

  EngineConfig cp = plain;
  cp.checkpoint_at_step = 2;
  AnytimeEngine first(g, cp);
  const RunResult interim = first.run(sched);
  AnytimeEngine resumed(g, interim.checkpoint, plain);
  const RunResult final_result = resumed.run(sched);

  ASSERT_EQ(direct.apsp.size(), final_result.apsp.size());
  for (VertexId u = 0; u < direct.apsp.size(); ++u) {
    EXPECT_EQ(direct.apsp[u], final_result.apsp[u]) << "row " << u;
  }
}

// Transcodes a wire-v2 rank blob into the legacy v1 layout (headerless,
// fixed-width vectors) — the format the seed engine wrote to disk.
std::vector<std::byte> transcode_blob_to_v1(
    const std::vector<std::byte>& blob) {
  // v2 header: magic 0xAA 0xCC + version byte.
  EXPECT_GE(blob.size(), 3u);
  EXPECT_EQ(std::to_integer<std::uint8_t>(blob[0]), 0xAAu);
  EXPECT_EQ(std::to_integer<std::uint8_t>(blob[1]), 0xCCu);
  rt::ByteReader r(std::span<const std::byte>(blob).subspan(3));
  rt::ByteWriter w;

  w.write_vec(r.read_vec<Rank>());  // owner map: raw in both versions
  const auto edge_count = r.read<std::uint64_t>();
  w.write(edge_count);
  for (std::uint64_t i = 0; i < edge_count * 3; ++i) {
    w.write(r.read<std::uint32_t>());  // u, v, weight triples
  }
  const auto row_count = r.read<std::uint64_t>();
  w.write(row_count);
  for (std::uint64_t i = 0; i < row_count; ++i) {
    w.write(r.read<VertexId>());
    w.write_vec(rt::read_packed_u32s(r));  // dists
    w.write_vec(rt::read_packed_u32s(r));  // next hops
    w.write_vec(rt::read_ascending_ids(r));
  }
  const auto cache_count = r.read<std::uint64_t>();
  w.write(cache_count);
  for (std::uint64_t i = 0; i < cache_count; ++i) {
    w.write(r.read<VertexId>());
    w.write_vec(rt::read_packed_u32s(r));
  }
  w.write(r.read<std::uint64_t>());  // vertices_added
  EXPECT_TRUE(r.done());
  return w.take();
}

TEST(Checkpoint, LegacyV1BlobsStillRestore) {
  // Backward compatibility: a checkpoint written by the pre-v2 engine
  // (headerless blobs, fixed-width vectors) must resume and converge
  // exactly. We synthesize such a checkpoint by transcoding a v2 one.
  const Graph g = make_er(150, 450, 21, WeightRange{1, 4});
  EngineConfig cfg = base_cfg(5);
  cfg.checkpoint_at_step = 1;

  AnytimeEngine first(g, cfg);
  const RunResult interim = first.run();
  ASSERT_TRUE(interim.checkpoint.valid());

  Checkpoint legacy = interim.checkpoint;
  for (auto& blob : legacy.rank_blobs) blob = transcode_blob_to_v1(blob);
  // The transcoded blob must not accidentally look like a v2 header.
  ASSERT_NE(std::to_integer<std::uint8_t>(legacy.rank_blobs[0][0]), 0xAAu);

  AnytimeEngine from_v2(g, interim.checkpoint, cfg);
  const RunResult v2_result = from_v2.run();
  AnytimeEngine from_v1(g, legacy, cfg);
  const RunResult v1_result = from_v1.run();

  expect_apsp_exact(g, v1_result);
  ASSERT_EQ(v1_result.apsp.size(), v2_result.apsp.size());
  for (VertexId u = 0; u < v1_result.apsp.size(); ++u) {
    EXPECT_EQ(v1_result.apsp[u], v2_result.apsp[u]) << "row " << u;
  }
}

TEST(Checkpoint, WorldSizeMismatchRejected) {
  const Graph g = make_ba(80, 2, 13);
  EngineConfig cfg = base_cfg(4);
  cfg.checkpoint_at_step = 1;
  AnytimeEngine first(g, cfg);
  const RunResult interim = first.run();
  EngineConfig other = cfg;
  other.num_ranks = 8;
  EXPECT_THROW(AnytimeEngine(g, interim.checkpoint, other), std::logic_error);
}

// ----------------------------------- restore validation (typed errors)

/// A structurally plausible checkpoint for pure validation tests.
Checkpoint tiny_checkpoint(Rank ranks) {
  Checkpoint ck;
  ck.num_ranks = ranks;
  ck.rank_blobs.assign(static_cast<std::size_t>(ranks),
                       std::vector<std::byte>(8, std::byte{0x01}));
  return ck;
}

TEST(CheckpointValidation, RejectsEmptyAndMismatchedShapes) {
  EXPECT_THROW(validate_checkpoint(Checkpoint{}, 4), CheckpointError);

  Checkpoint wrong_count = tiny_checkpoint(4);
  wrong_count.rank_blobs.pop_back();
  EXPECT_THROW(validate_checkpoint(wrong_count, 4), CheckpointError);

  EXPECT_THROW(validate_checkpoint(tiny_checkpoint(4), 6), CheckpointError);

  Checkpoint empty_blob = tiny_checkpoint(3);
  empty_blob.rank_blobs[1].clear();
  EXPECT_THROW(validate_checkpoint(empty_blob, 3), CheckpointError);

  EXPECT_NO_THROW(validate_checkpoint(tiny_checkpoint(3), 3));
}

TEST(CheckpointValidation, RejectsUnknownVersionAndTruncatedHeader) {
  Checkpoint future = tiny_checkpoint(2);
  future.rank_blobs[0] = {std::byte{kCkptMagic0}, std::byte{kCkptMagic1},
                          std::byte{99}};
  EXPECT_THROW(validate_checkpoint(future, 2), CheckpointError);

  Checkpoint cut = tiny_checkpoint(2);
  cut.rank_blobs[0] = {std::byte{kCkptMagic0}, std::byte{kCkptMagic1}};
  EXPECT_THROW(validate_checkpoint(cut, 2), CheckpointError);
}

TEST(CheckpointValidation, TruncatedBlobFailsRestoreWithRankContext) {
  const Graph g = make_ba(80, 2, 15);
  EngineConfig cfg = base_cfg(3);
  cfg.checkpoint_at_step = 1;
  AnytimeEngine first(g, cfg);
  const RunResult interim = first.run();
  ASSERT_TRUE(interim.checkpoint.valid());

  // Deep truncation: the header validates, the bounds-checked reader
  // catches the cut mid-blob and the engine re-raises it typed.
  Checkpoint cut = interim.checkpoint;
  cut.rank_blobs[2].resize(cut.rank_blobs[2].size() / 2);
  AnytimeEngine resumed(g, cut, cfg);
  try {
    (void)resumed.run();
    FAIL() << "truncated blob must not restore";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("rank 2"), std::string::npos)
        << "error should carry rank context: " << e.what();
  }
}

TEST(CheckpointValidation, TrailingGarbageFailsRestore) {
  const Graph g = make_ba(80, 2, 16);
  EngineConfig cfg = base_cfg(3);
  cfg.checkpoint_at_step = 1;
  AnytimeEngine first(g, cfg);
  const RunResult interim = first.run();
  ASSERT_TRUE(interim.checkpoint.valid());

  Checkpoint padded = interim.checkpoint;
  padded.rank_blobs[0].push_back(std::byte{0x7F});
  AnytimeEngine resumed(g, padded, cfg);
  EXPECT_THROW((void)resumed.run(), CheckpointError);
}

TEST(Checkpoint, NoCheckpointPastConvergence) {
  const Graph g = make_ba(80, 2, 14);
  EngineConfig cfg = base_cfg(4);
  cfg.checkpoint_at_step = 500;  // never reached
  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run();
  EXPECT_FALSE(r.checkpoint.valid());
  expect_apsp_exact(g, r);
}

}  // namespace
}  // namespace aacc
