// Weighted chaos sweep: the DynamicChaos property on weighted base graphs,
// with the per-step invariant auditor armed and higher weight variance so
// that deletion/weight-change repairs exercise non-unit arithmetic.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace aacc {
namespace {

using test::expect_apsp_exact;
using test::grow_vertices;

class WeightedChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WeightedChaos, ConvergesToReference) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 7919);
  Graph g = test::make_er(90, 270, seed ^ 0xfeed, WeightRange{1, 9});

  Graph cursor = g;
  EventSchedule sched;
  std::size_t step = 0;
  for (int b = 0; b < 4; ++b) {
    EventBatch batch;
    batch.at_step = step;
    step += 1 + rng.next_below(2);
    for (int i = 0; i < 10; ++i) {
      const auto kind = rng.next_below(6);
      if (kind <= 1) {  // weight change (both directions, twice as likely)
        const auto edges = cursor.edges();
        if (edges.empty()) continue;
        const auto& [u, v, w] = edges[rng.next_below(edges.size())];
        (void)w;
        const auto nw = static_cast<Weight>(1 + rng.next_below(12));
        cursor.set_weight(u, v, nw);
        batch.events.emplace_back(WeightChangeEvent{u, v, nw});
      } else if (kind == 2) {
        VertexId u;
        VertexId v;
        int tries = 0;
        do {
          u = static_cast<VertexId>(rng.next_below(cursor.num_vertices()));
          v = static_cast<VertexId>(rng.next_below(cursor.num_vertices()));
        } while ((u == v || !cursor.is_alive(u) || !cursor.is_alive(v) ||
                  cursor.has_edge(u, v)) &&
                 ++tries < 50);
        if (tries >= 50) continue;
        const auto w = static_cast<Weight>(1 + rng.next_below(9));
        cursor.add_edge(u, v, w);
        batch.events.emplace_back(EdgeAddEvent{u, v, w});
      } else if (kind == 3) {
        const auto edges = cursor.edges();
        if (edges.empty()) continue;
        const auto& [u, v, w] = edges[rng.next_below(edges.size())];
        (void)w;
        cursor.remove_edge(u, v);
        batch.events.emplace_back(EdgeDeleteEvent{u, v});
      } else if (kind == 4) {
        for (const Event& e : grow_vertices(cursor, 2, 2, rng)) {
          apply_event(cursor, e);
          batch.events.push_back(e);
        }
      } else {
        VertexId v;
        int tries = 0;
        do {
          v = static_cast<VertexId>(rng.next_below(cursor.num_vertices()));
        } while (!cursor.is_alive(v) && ++tries < 50);
        if (tries >= 50 || cursor.num_alive() < 30) continue;
        cursor.remove_vertex(v);
        batch.events.emplace_back(VertexDeleteEvent{v});
      }
    }
    sched.push_back(std::move(batch));
  }

  EngineConfig cfg;
  cfg.num_ranks = 3 + static_cast<Rank>(seed % 6);
  cfg.gather_apsp = true;
  cfg.assign = static_cast<AssignStrategy>(seed % 3);
  cfg.add_mode = (seed % 2 == 0) ? EdgeAddMode::kSeeded : EdgeAddMode::kEager;
  cfg.validate_each_step = true;
  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run(sched);
  EXPECT_EQ(r.stats.invariant_violations, 0u);
  expect_apsp_exact(cursor, r);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightedChaos,
                         ::testing::Values(101, 102, 103, 104, 105, 106, 107,
                                           108, 109, 110, 111, 112));

}  // namespace
}  // namespace aacc
