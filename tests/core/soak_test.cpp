// Soak: a medium-size run at the paper's processor count with a long mixed
// schedule — catches interactions the small fixtures miss (many batches,
// repeated repartitions, deep poison waves) while staying test-suite fast.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace aacc {
namespace {

TEST(Soak, MediumGraphLongMixedSchedule) {
  const VertexId n = 600;
  Rng rng(2024);
  Graph g = barabasi_albert(n, 2, rng);

  Graph cursor = g;
  EventSchedule sched;
  std::size_t step = 1;
  for (int b = 0; b < 8; ++b) {
    EventBatch batch;
    batch.at_step = step;
    step += 2;
    // growth
    for (const Event& e : test::grow_vertices(cursor, 15, 2, rng)) {
      apply_event(cursor, e);
      batch.events.push_back(e);
    }
    // churn
    for (int i = 0; i < 10; ++i) {
      const auto edges = cursor.edges();
      const auto& [u, v, w] = edges[rng.next_below(edges.size())];
      (void)w;
      cursor.remove_edge(u, v);
      batch.events.emplace_back(EdgeDeleteEvent{u, v});
    }
    for (int i = 0; i < 5; ++i) {
      const auto edges = cursor.edges();
      const auto& [u, v, w] = edges[rng.next_below(edges.size())];
      (void)w;
      const auto nw = static_cast<Weight>(1 + rng.next_below(5));
      cursor.set_weight(u, v, nw);
      batch.events.emplace_back(WeightChangeEvent{u, v, nw});
    }
    sched.push_back(std::move(batch));
  }

  EngineConfig cfg;
  cfg.num_ranks = 16;  // the paper's processor count
  cfg.gather_apsp = true;
  cfg.assign = AssignStrategy::kCutEdge;
  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run(sched);
  test::expect_apsp_exact(cursor, r);
  EXPECT_GE(r.stats.rc_steps, 17u);  // ran past the last batch
}

TEST(Soak, RepartitionEveryBatch) {
  const VertexId n = 400;
  Rng rng(77);
  Graph g = barabasi_albert(n, 2, rng);
  Graph cursor = g;
  EventSchedule sched;
  for (std::size_t b = 0; b < 5; ++b) {
    EventBatch batch;
    batch.at_step = 1 + b;  // back-to-back repartitions
    for (const Event& e : test::grow_vertices(cursor, 20, 2, rng)) {
      apply_event(cursor, e);
      batch.events.push_back(e);
    }
    sched.push_back(std::move(batch));
  }
  EngineConfig cfg;
  cfg.num_ranks = 8;
  cfg.gather_apsp = true;
  cfg.assign = AssignStrategy::kRepartition;
  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run(sched);
  test::expect_apsp_exact(cursor, r);
}

}  // namespace
}  // namespace aacc
