// Pipelined / async RC exchange equivalence (docs/PROTOCOL.md §"Pipelined
// exchange"). DV entries are monotone upper bounds and every exchange
// applies the same set of per-(source, target) values, so the order the
// pipelined and async modes process arrivals in cannot move the fixed
// point: closeness, harmonic, final ownership, and the APSP distances must
// match ExchangeMode::kDeterministic exactly, at every window depth, across
// additions, deletions, repartitioning, chaos recovery, and fuzzed
// schedules. What is deliberately NOT compared across modes: first_hop and
// per-step counters — next-hop tie-breaks follow arrival order (relax only
// overwrites on a strictly smaller distance), so poison cascades under
// deletions may take different routes to the same distances.
//
// Also covers the transport primitive itself (Comm::all_to_all_start /
// PendingAllToAll) and the overlap telemetry surfaced through RunStats and
// the progress feed. This suite runs under TSan in CI: the arrival-order
// drain and the async overlap drain are the racy-by-construction paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <string>

#include "obs/progress.hpp"
#include "runtime/comm.hpp"
#include "runtime/serialize.hpp"
#include "test_util.hpp"

namespace aacc {
namespace {

using test::expect_apsp_exact;
using test::grow_vertices;
using test::make_ba;
using test::make_er;

// ------------------------------------------------------------ comm level

std::vector<std::byte> payload_of(std::uint64_t v) {
  rt::ByteWriter w;
  w.write(v);
  return w.take();
}

std::uint64_t value_of(const std::vector<std::byte>& buf) {
  rt::ByteReader r(buf);
  return r.read<std::uint64_t>();
}

std::vector<std::vector<std::byte>> personalized(Rank me, Rank P) {
  std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(P));
  for (Rank q = 0; q < P; ++q) {
    out[static_cast<std::size_t>(q)] =
        payload_of(static_cast<std::uint64_t>(me * 1000 + q));
  }
  return out;
}

TEST(PendingAllToAllTest, DeliversAtEveryWindowDepth) {
  constexpr Rank P = 5;
  for (const Rank window : {Rank{1}, Rank{2}, Rank{P - 1}, Rank{100}}) {
    rt::World world(P);
    std::vector<int> failures(static_cast<std::size_t>(P), 0);
    world.run([&](rt::Comm& comm) {
      auto pending =
          comm.all_to_all_start(personalized(comm.rank(), P), window);
      auto in = pending.wait_all();
      for (Rank q = 0; q < P; ++q) {
        if (value_of(in[static_cast<std::size_t>(q)]) !=
            static_cast<std::uint64_t>(q * 1000 + comm.rank())) {
          ++failures[static_cast<std::size_t>(comm.rank())];
        }
      }
    });
    for (const int f : failures) EXPECT_EQ(f, 0) << "window=" << window;
  }
}

TEST(PendingAllToAllTest, WindowOneMatchesBlockingWrapperLedgers) {
  // all_to_all is a thin wrapper over all_to_all_start(out, 1).wait_all();
  // deeper windows reorder recv completions but move the exact same frames,
  // so the ledgers (bytes and message counts) must be identical.
  constexpr Rank P = 4;
  std::vector<rt::RankLedger> ref;
  for (const Rank window : {Rank{0}, Rank{1}, Rank{3}}) {
    rt::World world(P);
    world.run([&](rt::Comm& comm) {
      if (window == 0) {
        auto in = comm.all_to_all(personalized(comm.rank(), P));
        ASSERT_EQ(value_of(in[0]), static_cast<std::uint64_t>(comm.rank()));
      } else {
        auto pending =
            comm.all_to_all_start(personalized(comm.rank(), P), window);
        auto in = pending.wait_all();
        ASSERT_EQ(value_of(in[0]), static_cast<std::uint64_t>(comm.rank()));
      }
    });
    if (window == 0) {
      ref = world.ledgers();
      continue;
    }
    const auto& got = world.ledgers();
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t r = 0; r < ref.size(); ++r) {
      EXPECT_EQ(got[r].bytes_sent, ref[r].bytes_sent)
          << "window=" << window << " rank " << r;
      EXPECT_EQ(got[r].messages_sent, ref[r].messages_sent)
          << "window=" << window << " rank " << r;
      EXPECT_EQ(got[r].bytes_received, ref[r].bytes_received)
          << "window=" << window << " rank " << r;
    }
  }
}

TEST(PendingAllToAllTest, TryRecvAnyConsumesEachPeerExactlyOnce) {
  constexpr Rank P = 4;
  rt::World world(P);
  std::vector<int> failures(static_cast<std::size_t>(P), 0);
  world.run([&](rt::Comm& comm) {
    auto pending = comm.all_to_all_start(personalized(comm.rank(), P), 2);
    std::set<Rank> seen;
    while (auto arrival = pending.try_recv_any()) {
      if (arrival->src == comm.rank() ||
          value_of(arrival->payload) !=
              static_cast<std::uint64_t>(arrival->src * 1000 + comm.rank()) ||
          !seen.insert(arrival->src).second) {
        ++failures[static_cast<std::size_t>(comm.rank())];
      }
    }
    if (seen.size() != static_cast<std::size_t>(P - 1)) {
      ++failures[static_cast<std::size_t>(comm.rank())];
    }
    // Consumed slots come back empty from wait_all; the own slot survives.
    auto in = pending.wait_all();
    for (Rank q = 0; q < P; ++q) {
      const auto& slot = in[static_cast<std::size_t>(q)];
      if (q == comm.rank()
              ? value_of(slot) !=
                    static_cast<std::uint64_t>(comm.rank() * 1000 + q)
              : !slot.empty()) {
        ++failures[static_cast<std::size_t>(comm.rank())];
      }
    }
  });
  for (const int f : failures) EXPECT_EQ(f, 0);
}

TEST(PendingAllToAllTest, IncrementalSubmitInAnyOrder) {
  // all_to_all_begin: destinations are fed as their payloads finish
  // assembly — here in reverse shift order, the worst case for the pump.
  constexpr Rank P = 4;
  rt::World world(P);
  std::vector<int> failures(static_cast<std::size_t>(P), 0);
  world.run([&](rt::Comm& comm) {
    auto pending = comm.all_to_all_begin(2);
    for (Rank s = P - 1; s >= 0; --s) {
      const Rank dst = (comm.rank() + s) % P;
      pending.submit(dst, payload_of(static_cast<std::uint64_t>(
                              comm.rank() * 1000 + dst)));
    }
    auto in = pending.wait_all();
    for (Rank q = 0; q < P; ++q) {
      if (value_of(in[static_cast<std::size_t>(q)]) !=
          static_cast<std::uint64_t>(q * 1000 + comm.rank())) {
        ++failures[static_cast<std::size_t>(comm.rank())];
      }
    }
  });
  for (const int f : failures) EXPECT_EQ(f, 0);
}

TEST(PendingAllToAllTest, WindowClampAndInflightTelemetry) {
  constexpr Rank P = 4;
  rt::World world(P);
  std::vector<Rank> windows(static_cast<std::size_t>(P), 0);
  std::vector<std::uint64_t> inflight(static_cast<std::size_t>(P), 0);
  world.run([&](rt::Comm& comm) {
    {
      auto clamped = comm.all_to_all_start(personalized(comm.rank(), P), 100);
      windows[static_cast<std::size_t>(comm.rank())] = clamped.window();
      clamped.wait_all();
    }
    // All destinations submitted up front: the pump issues straight to the
    // window limit before the first recv, so the high-water mark is exactly
    // min(window, P-1).
    auto pending = comm.all_to_all_start(personalized(comm.rank(), P), 2);
    pending.wait_all();
    inflight[static_cast<std::size_t>(comm.rank())] = pending.max_inflight();
    EXPECT_GE(pending.wait_seconds(), 0.0);
  });
  for (const Rank w : windows) EXPECT_EQ(w, P - 1);
  for (const std::uint64_t d : inflight) EXPECT_EQ(d, 2u);
}

TEST(PendingAllToAllTest, SingleRankWorldIsANoOp) {
  rt::World world(1);
  world.run([&](rt::Comm& comm) {
    auto pending = comm.all_to_all_start(personalized(comm.rank(), 1), 8);
    auto in = pending.wait_all();
    ASSERT_EQ(in.size(), 1u);
    EXPECT_EQ(value_of(in[0]), 0u);
    EXPECT_EQ(pending.max_inflight(), 0u);
  });
}

// ----------------------------------------------------- config validation

TEST(ExchangeConfigTest, DeterministicModeRejectsDeepWindows) {
  EngineConfig cfg;
  cfg.exchange_mode = ExchangeMode::kDeterministic;
  cfg.exchange_window = 2;
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg.exchange_window = 1;
  EXPECT_NO_THROW(cfg.validate());
  cfg.exchange_window = 0;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ExchangeConfigTest, WindowBoundsCatchSignBugs) {
  EngineConfig cfg;
  cfg.exchange_mode = ExchangeMode::kPipelined;
  cfg.exchange_window = static_cast<std::size_t>(-1);
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg.exchange_window = 8;
  EXPECT_NO_THROW(cfg.validate());
}

// ------------------------------------------------------- engine modes

RunResult run_mode(const Graph& g, const EventSchedule& sched,
                   EngineConfig cfg, ExchangeMode mode, std::size_t window) {
  cfg.gather_apsp = true;
  cfg.exchange_mode = mode;
  cfg.exchange_window = window;
  AnytimeEngine engine(g, cfg);
  return engine.run(sched);
}

const char* mode_name(ExchangeMode m) {
  switch (m) {
    case ExchangeMode::kDeterministic: return "deterministic";
    case ExchangeMode::kPipelined: return "pipelined";
    case ExchangeMode::kAsync: return "async";
  }
  return "?";
}

/// The order-independent fixed point: distances and everything derived
/// from them. first_hop and per-step counters are intentionally absent
/// (next-hop tie-breaks follow arrival order; see the header comment).
void expect_same_fixed_point(const RunResult& ref, const RunResult& r,
                             const std::string& label) {
  EXPECT_EQ(r.closeness, ref.closeness) << label;
  EXPECT_EQ(r.harmonic, ref.harmonic) << label;
  EXPECT_EQ(r.final_owner, ref.final_owner) << label;
  EXPECT_EQ(r.degraded, ref.degraded) << label;
  EXPECT_EQ(r.stats.invariant_violations, 0u) << label;
  ASSERT_EQ(r.apsp.size(), ref.apsp.size()) << label;
  for (VertexId u = 0; u < ref.apsp.size(); ++u) {
    ASSERT_EQ(r.apsp[u], ref.apsp[u]) << label << " row " << u;
  }
}

/// Deterministic oracle vs every overlapping mode at window depths 1, 2,
/// and 0 (auto = P-1), plus the ground-truth APSP check on the oracle.
void sweep_modes(const Graph& g, const EventSchedule& sched,
                 const EngineConfig& base, const Graph& truth) {
  const RunResult ref =
      run_mode(g, sched, base, ExchangeMode::kDeterministic, 0);
  EXPECT_EQ(ref.stats.invariant_violations, 0u);
  expect_apsp_exact(truth, ref);
  for (const ExchangeMode mode :
       {ExchangeMode::kPipelined, ExchangeMode::kAsync}) {
    for (const std::size_t w : {std::size_t{1}, std::size_t{2}, std::size_t{0}}) {
      const RunResult r = run_mode(g, sched, base, mode, w);
      const std::string label =
          std::string(mode_name(mode)) + " window=" + std::to_string(w);
      expect_same_fixed_point(ref, r, label);
    }
  }
}

TEST(AsyncExchange, StaticRunReachesTheSameFixedPoint) {
  const Graph g = make_er(200, 600, 81, WeightRange{1, 5});
  EngineConfig cfg;
  cfg.num_ranks = 4;
  cfg.validate_each_step = true;
  sweep_modes(g, {}, cfg, g);
}

TEST(AsyncExchange, AdditionsReachTheSameFixedPoint) {
  const Graph g = make_er(220, 660, 82, WeightRange{1, 5});
  Rng rng(83);
  Graph grown = g;
  EventSchedule sched;
  EventBatch b;
  b.at_step = 1;
  for (const Event& e : grow_vertices(grown, 12, 2, rng)) {
    apply_event(grown, e);
    b.events.push_back(e);
  }
  sched.push_back(std::move(b));

  EngineConfig cfg;
  cfg.num_ranks = 4;
  cfg.validate_each_step = true;
  sweep_modes(g, sched, cfg, grown);
}

TEST(AsyncExchange, DeletionsReachTheSameFixedPoint) {
  // Deletions exercise the poison barrier: pipelined/async runs may route
  // poison cascades differently (tie-broken next hops), but the repaired
  // distances must land on the oracle's fixed point.
  const Graph g = make_ba(200, 3, 84, WeightRange{1, 6});
  Rng rng(85);
  Graph truth = g;
  EventSchedule sched;
  EventBatch b;
  b.at_step = 1;
  for (int i = 0; i < 8; ++i) {
    const auto edges = truth.edges();
    const auto& [u, v, w] = edges[rng.next_below(edges.size())];
    (void)w;
    truth.remove_edge(u, v);
    b.events.emplace_back(EdgeDeleteEvent{u, v});
  }
  sched.push_back(std::move(b));

  EngineConfig cfg;
  cfg.num_ranks = 3;
  cfg.validate_each_step = true;
  sweep_modes(g, sched, cfg, truth);
}

TEST(AsyncExchange, RepartitionReachesTheSameFixedPoint) {
  const Graph g = make_er(180, 540, 86, WeightRange{1, 4});
  Rng rng(87);
  Graph grown = g;
  EventSchedule sched;
  EventBatch b;
  b.at_step = 2;
  for (const Event& e : grow_vertices(grown, 10, 2, rng)) {
    apply_event(grown, e);
    b.events.push_back(e);
  }
  sched.push_back(std::move(b));

  EngineConfig cfg;
  cfg.num_ranks = 3;
  cfg.assign = AssignStrategy::kRepartition;
  sweep_modes(g, sched, cfg, grown);
}

TEST(AsyncExchange, ChaosRecoveryReachesTheSameFixedPoint) {
  // Seeded FaultPlan with a mid-run crash: checkpoint rollback + replay
  // must land on the oracle's converged state in all three modes. The
  // abort path matters here — a pipelined exchange killed mid-drain
  // re-marks its retired columns dirty before the recovery stash walks
  // the survivors (docs/PROTOCOL.md §"Pipelined exchange").
  const Graph g = make_er(180, 540, 88, WeightRange{1, 4});
  Rng rng(89);
  Graph grown = g;
  EventSchedule sched;
  EventBatch b;
  b.at_step = 1;
  for (const Event& e : grow_vertices(grown, 8, 2, rng)) {
    apply_event(grown, e);
    b.events.push_back(e);
  }
  {
    const auto edges = grown.edges();
    const auto& [u, v, w] = edges[rng.next_below(edges.size())];
    (void)w;
    grown.remove_edge(u, v);
    b.events.emplace_back(EdgeDeleteEvent{u, v});
  }
  sched.push_back(std::move(b));

  EngineConfig cfg;
  cfg.num_ranks = 3;
  cfg.transport.retry_backoff = std::chrono::microseconds(1);
  cfg.transport.recv_timeout = std::chrono::seconds(60);
  cfg.checkpoint_every = 2;
  cfg.faults.seed = 505;
  cfg.faults.drop = 0.05;
  cfg.faults.duplicate = 0.03;
  cfg.faults.delay = 0.05;
  cfg.faults.corrupt = 0.05;
  cfg.faults.crashes.push_back({1, 3});

  const RunResult ref =
      run_mode(g, sched, cfg, ExchangeMode::kDeterministic, 0);
  EXPECT_EQ(ref.stats.recoveries, 1u);
  EXPECT_FALSE(ref.degraded);
  expect_apsp_exact(grown, ref);
  for (const ExchangeMode mode :
       {ExchangeMode::kPipelined, ExchangeMode::kAsync}) {
    const RunResult r = run_mode(g, sched, cfg, mode, 0);
    const std::string label = mode_name(mode);
    EXPECT_EQ(r.stats.recoveries, 1u) << label;
    // Retried traffic varies under injected faults, so wire totals are not
    // comparable — the converged state and the recovery count are.
    expect_same_fixed_point(ref, r, label);
    expect_apsp_exact(grown, r);
  }
}

TEST(AsyncExchange, RandomizedScheduleFuzz) {
  for (const std::uint64_t seed : {44u, 55u, 66u}) {
    Rng rng(seed);
    const Graph g = make_er(150, 450, 2000 + seed, WeightRange{1, 5});
    Graph truth = g;
    EventSchedule sched;
    EventBatch b;
    b.at_step = 1;
    for (const Event& e :
         grow_vertices(truth, 4 + rng.next_below(6), 2, rng)) {
      apply_event(truth, e);
      b.events.push_back(e);
    }
    const std::size_t dels = 2 + rng.next_below(5);
    for (std::size_t i = 0; i < dels; ++i) {
      const auto edges = truth.edges();
      const auto& [u, v, w] = edges[rng.next_below(edges.size())];
      (void)w;
      truth.remove_edge(u, v);
      b.events.emplace_back(EdgeDeleteEvent{u, v});
    }
    const std::size_t changes = 1 + rng.next_below(4);
    for (std::size_t i = 0; i < changes; ++i) {
      const auto edges = truth.edges();
      const auto& [u, v, w] = edges[rng.next_below(edges.size())];
      const Weight nw = 1 + static_cast<Weight>(rng.next_below(9));
      if (nw == w) continue;
      truth.set_weight(u, v, nw);
      b.events.emplace_back(WeightChangeEvent{u, v, nw});
    }
    sched.push_back(std::move(b));

    EngineConfig cfg;
    cfg.num_ranks = 2 + static_cast<Rank>(seed % 3);
    const RunResult ref =
        run_mode(g, sched, cfg, ExchangeMode::kDeterministic, 0);
    expect_apsp_exact(truth, ref);
    for (const ExchangeMode mode :
         {ExchangeMode::kPipelined, ExchangeMode::kAsync}) {
      const RunResult r = run_mode(g, sched, cfg, mode, 0);
      const std::string label =
          std::string(mode_name(mode)) + " seed=" + std::to_string(seed);
      expect_same_fixed_point(ref, r, label);
      expect_apsp_exact(truth, r);
    }
  }
}

TEST(AsyncExchange, DeterministicModeIsBitIdenticalAcrossRuns) {
  // The oracle must stay the oracle: two deterministic runs agree on every
  // counter and wire byte, and deterministic is the config default.
  EXPECT_EQ(EngineConfig{}.exchange_mode, ExchangeMode::kDeterministic);
  const Graph g = make_er(160, 480, 90, WeightRange{1, 5});
  EngineConfig cfg;
  cfg.num_ranks = 3;
  const RunResult a = run_mode(g, {}, cfg, ExchangeMode::kDeterministic, 0);
  const RunResult b = run_mode(g, {}, cfg, ExchangeMode::kDeterministic, 1);
  EXPECT_EQ(b.closeness, a.closeness);
  EXPECT_EQ(b.stats.rc_steps, a.stats.rc_steps);
  EXPECT_EQ(b.stats.total_bytes, a.stats.total_bytes);
  EXPECT_EQ(b.stats.total_messages, a.stats.total_messages);
  ASSERT_EQ(b.first_hop.size(), a.first_hop.size());
  for (VertexId u = 0; u < a.first_hop.size(); ++u) {
    ASSERT_EQ(b.first_hop[u], a.first_hop[u]) << "row " << u;
  }
}

// --------------------------------------------------- overlap telemetry

TEST(AsyncExchange, OverlapTelemetryReachesStatsAndProgressFeed) {
  const Graph g = make_er(160, 480, 91, WeightRange{1, 5});
  std::vector<obs::ProgressEvent> events;

  EngineConfig cfg;
  cfg.num_ranks = 4;
  cfg.progress.callback = [&](const obs::ProgressEvent& ev) {
    events.push_back(ev);
  };
  const RunResult det = run_mode(g, {}, cfg, ExchangeMode::kDeterministic, 0);
  // Window 1: exactly one send in flight whenever the oracle exchanges.
  EXPECT_EQ(det.stats.rc_max_inflight_depth, 1u);
  EXPECT_GE(det.stats.rc_exchange_wait_seconds, 0.0);

  events.clear();
  const RunResult async = run_mode(g, {}, cfg, ExchangeMode::kAsync, 0);
  // Auto window = P-1 = 3, and every destination is submitted before the
  // drain, so some step reaches a depth of at least 2.
  EXPECT_GE(async.stats.rc_max_inflight_depth, 2u);
  ASSERT_FALSE(async.stats.steps.empty());
  const auto deepest = std::max_element(
      async.stats.steps.begin(), async.stats.steps.end(),
      [](const StepStats& x, const StepStats& y) {
        return x.max_inflight_depth < y.max_inflight_depth;
      });
  EXPECT_EQ(deepest->max_inflight_depth, async.stats.rc_max_inflight_depth);

  bool saw_depth = false;
  for (const obs::ProgressEvent& ev : events) {
    if (ev.phase == "rc_step" && ev.inflight_depth >= 2) saw_depth = true;
  }
  EXPECT_TRUE(saw_depth) << "no rc_step event carried the overlap depth";
}

TEST(AsyncExchange, ProgressEventRoundTripsOverlapFields) {
  obs::ProgressEvent ev;
  ev.phase = "rc_step";
  ev.step = 7;
  ev.exchange_wait_seconds = 0.03125;
  ev.inflight_depth = 5;
  const std::string line = obs::to_ndjson(ev);
  EXPECT_NE(line.find("\"exchange_wait_seconds\":0.03125"), std::string::npos);
  EXPECT_NE(line.find("\"inflight_depth\":5"), std::string::npos);
  obs::ProgressEvent back;
  ASSERT_TRUE(obs::parse_progress_event(line, back));
  EXPECT_EQ(back.exchange_wait_seconds, ev.exchange_wait_seconds);
  EXPECT_EQ(back.inflight_depth, ev.inflight_depth);
}

}  // namespace
}  // namespace aacc
