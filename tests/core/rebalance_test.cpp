// Extension (the paper's stated future work): automatic rebalancing after
// dynamic changes skew the load.
#include <gtest/gtest.h>

#include "core/strategies.hpp"
#include "test_util.hpp"

namespace aacc {
namespace {

using test::expect_apsp_exact;
using test::make_er;

double imbalance_of(const std::vector<Rank>& owner, Rank world) {
  const auto loads = rank_loads(owner, world);
  std::size_t alive = 0;
  std::size_t max_load = 0;
  for (const std::size_t l : loads) {
    alive += l;
    max_load = std::max(max_load, l);
  }
  return static_cast<double>(max_load) /
         (static_cast<double>(alive) / static_cast<double>(world));
}

// Deleting a whole id-contiguous slab of vertices empties the block
// partitioner's first ranks, producing a heavy skew.
EventSchedule slab_deletion(VertexId from, VertexId to) {
  EventSchedule sched;
  EventBatch batch;
  batch.at_step = 1;
  for (VertexId v = from; v < to; ++v) {
    batch.events.emplace_back(VertexDeleteEvent{v});
  }
  sched.push_back(std::move(batch));
  return sched;
}

TEST(Rebalance, SkewWithoutRebalancePersists) {
  const Graph g = make_er(160, 640, 21);
  const auto sched = slab_deletion(0, 60);
  EngineConfig cfg;
  cfg.num_ranks = 4;
  cfg.dd_partitioner = PartitionerKind::kBlock;  // slab hits ranks 0-1
  cfg.gather_apsp = true;
  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run(sched);
  Graph truth = g;
  apply_schedule(truth, sched);
  expect_apsp_exact(truth, r);
  EXPECT_GT(imbalance_of(r.final_owner, cfg.num_ranks), 1.5);
}

TEST(Rebalance, ThresholdTriggersRepartitionAndStaysCorrect) {
  const Graph g = make_er(160, 640, 21);
  const auto sched = slab_deletion(0, 60);
  EngineConfig cfg;
  cfg.num_ranks = 4;
  cfg.dd_partitioner = PartitionerKind::kBlock;
  cfg.gather_apsp = true;
  cfg.rebalance_threshold = 1.3;
  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run(sched);
  Graph truth = g;
  apply_schedule(truth, sched);
  expect_apsp_exact(truth, r);
  EXPECT_LT(imbalance_of(r.final_owner, cfg.num_ranks), 1.3);
}

TEST(Rebalance, NoTriggerWhenBalanced) {
  const Graph g = make_er(120, 480, 22);
  // Uniformly scattered deletions keep the load even.
  EventSchedule sched;
  EventBatch batch;
  batch.at_step = 1;
  for (VertexId v = 0; v < 120; v += 15) {
    batch.events.emplace_back(VertexDeleteEvent{v});
  }
  sched.push_back(std::move(batch));

  EngineConfig cfg;
  cfg.num_ranks = 4;
  cfg.rebalance_threshold = 1.5;
  cfg.gather_apsp = true;

  EngineConfig no_rebalance = cfg;
  no_rebalance.rebalance_threshold = 0.0;

  AnytimeEngine a(g, cfg);
  const RunResult ra = a.run(sched);
  AnytimeEngine b(g, no_rebalance);
  const RunResult rb = b.run(sched);
  // Balanced deletions should not trip the threshold: identical ownership.
  EXPECT_EQ(ra.final_owner, rb.final_owner);
  Graph truth = g;
  apply_schedule(truth, sched);
  expect_apsp_exact(truth, ra);
}

TEST(Rebalance, WorksTogetherWithVertexAdditions) {
  const Graph g = make_er(140, 560, 23);
  Rng rng(9);
  EventSchedule sched;
  EventBatch batch;
  batch.at_step = 1;
  for (VertexId v = 0; v < 50; ++v) {
    batch.events.emplace_back(VertexDeleteEvent{v});
  }
  sched.push_back(std::move(batch));
  Graph mid = g;
  apply_schedule(mid, sched);
  EventBatch growth;
  growth.at_step = 3;
  growth.events = test::grow_vertices(mid, 20, 2, rng);
  apply_schedule(mid, {EventBatch{3, growth.events}});
  sched.push_back(std::move(growth));

  EngineConfig cfg;
  cfg.num_ranks = 5;
  cfg.dd_partitioner = PartitionerKind::kBlock;
  cfg.rebalance_threshold = 1.3;
  cfg.assign = AssignStrategy::kRoundRobin;
  cfg.gather_apsp = true;
  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run(sched);
  expect_apsp_exact(mid, r);
  EXPECT_LT(imbalance_of(r.final_owner, cfg.num_ranks), 1.35);
}

}  // namespace
}  // namespace aacc
