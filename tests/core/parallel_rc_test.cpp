// Bit-identity of the column-sharded parallel recombination drain: for any
// rc_threads value the engine must produce exactly the state the serial
// drain produces — same DV matrices (APSP rows + next hops), same closeness
// doubles, same wire traffic, same per-step ledger counters. Columns never
// cross shards and each shard replays the serial schedule restricted to its
// columns (DESIGN.md §"Column-sharded parallel recombination drain"), so
// this holds across additions, deletions, repartitioning, and fault
// recovery, not just on static runs.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace aacc {
namespace {

using test::expect_apsp_exact;
using test::grow_vertices;
using test::make_ba;
using test::make_er;

RunResult run_threads(const Graph& g, const EventSchedule& sched,
                      EngineConfig cfg, std::size_t rc_threads) {
  cfg.gather_apsp = true;
  cfg.rc_threads = rc_threads;
  AnytimeEngine engine(g, cfg);
  return engine.run(sched);
}

/// Everything deterministic must match bit for bit. CPU/wall timings are
/// excluded by construction: a sharded drain burns its CPU on workers, so
/// only the counters and results are comparable across thread counts.
void expect_identical(const RunResult& ref, const RunResult& r,
                      std::size_t threads) {
  EXPECT_EQ(r.closeness, ref.closeness) << "rc_threads=" << threads;
  EXPECT_EQ(r.harmonic, ref.harmonic) << "rc_threads=" << threads;
  EXPECT_EQ(r.final_owner, ref.final_owner) << "rc_threads=" << threads;
  EXPECT_EQ(r.degraded, ref.degraded) << "rc_threads=" << threads;
  EXPECT_EQ(r.stats.rc_steps, ref.stats.rc_steps) << "rc_threads=" << threads;
  EXPECT_EQ(r.stats.total_bytes, ref.stats.total_bytes)
      << "rc_threads=" << threads;
  EXPECT_EQ(r.stats.total_messages, ref.stats.total_messages)
      << "rc_threads=" << threads;
  EXPECT_EQ(r.stats.invariant_violations, 0u) << "rc_threads=" << threads;
  ASSERT_EQ(r.stats.steps.size(), ref.stats.steps.size());
  for (std::size_t s = 0; s < ref.stats.steps.size(); ++s) {
    const StepStats& a = ref.stats.steps[s];
    const StepStats& b = r.stats.steps[s];
    EXPECT_EQ(b.bytes, a.bytes) << "rc_threads=" << threads << " step " << s;
    EXPECT_EQ(b.relaxations, a.relaxations)
        << "rc_threads=" << threads << " step " << s;
    EXPECT_EQ(b.poisons, a.poisons)
        << "rc_threads=" << threads << " step " << s;
    EXPECT_EQ(b.repairs, a.repairs)
        << "rc_threads=" << threads << " step " << s;
  }
  ASSERT_EQ(r.apsp.size(), ref.apsp.size());
  for (VertexId u = 0; u < ref.apsp.size(); ++u) {
    ASSERT_EQ(r.apsp[u], ref.apsp[u])
        << "rc_threads=" << threads << " row " << u;
    ASSERT_EQ(r.first_hop[u], ref.first_hop[u])
        << "rc_threads=" << threads << " row " << u;
  }
}

void sweep_threads(const Graph& g, const EventSchedule& sched,
                   const EngineConfig& cfg) {
  const RunResult ref = run_threads(g, sched, cfg, 1);
  EXPECT_EQ(ref.stats.invariant_violations, 0u);
  for (const std::size_t t : {2, 7}) {
    const RunResult r = run_threads(g, sched, cfg, t);
    expect_identical(ref, r, t);
  }
}

TEST(ParallelRc, AdditionsAndGrowthAreBitIdentical) {
  // Big enough that the per-rank drains clear the shard grain and the
  // parallel path actually runs (the IA seeds n_p * n worklist entries).
  const Graph g = make_er(260, 780, 71, WeightRange{1, 5});
  Rng rng(72);
  Graph grown = g;
  EventSchedule sched;
  EventBatch b;
  b.at_step = 1;
  for (const Event& e : grow_vertices(grown, 14, 2, rng)) {
    apply_event(grown, e);
    b.events.push_back(e);
  }
  sched.push_back(std::move(b));

  EngineConfig cfg;
  cfg.num_ranks = 3;
  cfg.validate_each_step = true;
  sweep_threads(g, sched, cfg);

  // Ground truth once (the sweep already proved all thread counts agree).
  const RunResult r = run_threads(g, sched, cfg, 4);
  expect_apsp_exact(grown, r);
}

TEST(ParallelRc, DeletionsAndWeightChangesAreBitIdentical) {
  // Deletions drive the poison/repair machinery through the sharded drain:
  // deferred repairs must stay in their column's shard and run before that
  // shard's worklist, exactly as the serial repairs-first rule orders them.
  const Graph g = make_ba(240, 3, 73, WeightRange{1, 6});
  Rng rng(74);
  Graph truth = g;
  EventSchedule sched;
  {
    EventBatch b;
    b.at_step = 1;
    for (int i = 0; i < 8; ++i) {
      const auto edges = truth.edges();
      const auto& [u, v, w] = edges[rng.next_below(edges.size())];
      (void)w;
      truth.remove_edge(u, v);
      b.events.emplace_back(EdgeDeleteEvent{u, v});
    }
    sched.push_back(std::move(b));
  }
  {
    EventBatch b;
    b.at_step = 3;
    for (int i = 0; i < 6; ++i) {
      const auto edges = truth.edges();
      const auto& [u, v, w] = edges[rng.next_below(edges.size())];
      const Weight nw = 1 + static_cast<Weight>(rng.next_below(9));
      if (nw == w) continue;
      truth.set_weight(u, v, nw);
      b.events.emplace_back(WeightChangeEvent{u, v, nw});
    }
    sched.push_back(std::move(b));
  }

  EngineConfig cfg;
  cfg.num_ranks = 3;
  cfg.validate_each_step = true;
  sweep_threads(g, sched, cfg);

  const RunResult r = run_threads(g, sched, cfg, 4);
  expect_apsp_exact(truth, r);
}

TEST(ParallelRc, RepartitionIsBitIdentical) {
  // Repartition-S rebuilds rows and re-enqueues every finite entry — the
  // largest drains the engine ever sees, all through the sharded path.
  const Graph g = make_er(220, 660, 75, WeightRange{1, 4});
  Rng rng(76);
  Graph grown = g;
  EventSchedule sched;
  EventBatch b;
  b.at_step = 2;
  for (const Event& e : grow_vertices(grown, 10, 2, rng)) {
    apply_event(grown, e);
    b.events.push_back(e);
  }
  sched.push_back(std::move(b));

  EngineConfig cfg;
  cfg.num_ranks = 3;
  cfg.assign = AssignStrategy::kRepartition;
  sweep_threads(g, sched, cfg);

  const RunResult r = run_threads(g, sched, cfg, 4);
  expect_apsp_exact(grown, r);
}

TEST(ParallelRc, FaultRecoveryIsBitIdentical) {
  // Chaos on top of sharding: message faults plus a mid-run crash with
  // periodic checkpoints. Replay after rollback re-executes sharded drains,
  // so recovery must land on the same bits for every thread count.
  const Graph g = make_er(200, 600, 77, WeightRange{1, 4});
  Rng rng(78);
  Graph grown = g;
  EventSchedule sched;
  EventBatch b;
  b.at_step = 1;
  for (const Event& e : grow_vertices(grown, 8, 2, rng)) {
    apply_event(grown, e);
    b.events.push_back(e);
  }
  {
    const auto edges = grown.edges();
    const auto& [u, v, w] = edges[rng.next_below(edges.size())];
    (void)w;
    grown.remove_edge(u, v);
    b.events.emplace_back(EdgeDeleteEvent{u, v});
  }
  sched.push_back(std::move(b));

  EngineConfig cfg;
  cfg.num_ranks = 3;
  cfg.transport.retry_backoff = std::chrono::microseconds(1);
  cfg.transport.recv_timeout = std::chrono::seconds(60);
  cfg.checkpoint_every = 2;
  cfg.faults.seed = 505;
  cfg.faults.drop = 0.05;
  cfg.faults.duplicate = 0.03;
  cfg.faults.delay = 0.05;
  cfg.faults.corrupt = 0.05;
  cfg.faults.crashes.push_back({1, 3});

  const RunResult ref = run_threads(g, sched, cfg, 1);
  EXPECT_EQ(ref.stats.recoveries, 1u);
  EXPECT_FALSE(ref.degraded);
  expect_apsp_exact(grown, ref);
  for (const std::size_t t : {2, 7}) {
    const RunResult r = run_threads(g, sched, cfg, t);
    EXPECT_EQ(r.stats.recoveries, 1u) << "rc_threads=" << t;
    // Retransmit timing (and thus retried traffic) varies run to run under
    // injected faults, so the wire totals are not comparable here — the
    // converged state and the step/recovery counters are.
    EXPECT_EQ(r.closeness, ref.closeness) << "rc_threads=" << t;
    EXPECT_EQ(r.harmonic, ref.harmonic) << "rc_threads=" << t;
    EXPECT_EQ(r.final_owner, ref.final_owner) << "rc_threads=" << t;
    EXPECT_EQ(r.stats.rc_steps, ref.stats.rc_steps) << "rc_threads=" << t;
    ASSERT_EQ(r.apsp.size(), ref.apsp.size());
    for (VertexId u = 0; u < ref.apsp.size(); ++u) {
      ASSERT_EQ(r.apsp[u], ref.apsp[u]) << "rc_threads=" << t << " row " << u;
    }
  }
}

TEST(ParallelRc, RandomizedScheduleFuzz) {
  // Seeded fuzz over mixed random schedules (growth, deletions, weight
  // changes): serial vs sharded must agree bit for bit, and both must match
  // the sequential APSP reference on the mutated graph.
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    Rng rng(seed);
    const Graph g = make_er(170, 510, 1000 + seed, WeightRange{1, 5});
    Graph truth = g;
    EventSchedule sched;
    EventBatch b;
    b.at_step = 1;
    for (const Event& e :
         grow_vertices(truth, 4 + rng.next_below(6), 2, rng)) {
      apply_event(truth, e);
      b.events.push_back(e);
    }
    const std::size_t dels = 2 + rng.next_below(5);
    for (std::size_t i = 0; i < dels; ++i) {
      const auto edges = truth.edges();
      const auto& [u, v, w] = edges[rng.next_below(edges.size())];
      (void)w;
      truth.remove_edge(u, v);
      b.events.emplace_back(EdgeDeleteEvent{u, v});
    }
    const std::size_t changes = 1 + rng.next_below(4);
    for (std::size_t i = 0; i < changes; ++i) {
      const auto edges = truth.edges();
      const auto& [u, v, w] = edges[rng.next_below(edges.size())];
      const Weight nw = 1 + static_cast<Weight>(rng.next_below(9));
      if (nw == w) continue;
      truth.set_weight(u, v, nw);
      b.events.emplace_back(WeightChangeEvent{u, v, nw});
    }
    sched.push_back(std::move(b));

    EngineConfig cfg;
    cfg.num_ranks = 2 + static_cast<Rank>(seed % 3);
    const RunResult ref = run_threads(g, sched, cfg, 1);
    const RunResult r = run_threads(g, sched, cfg, 5);
    expect_identical(ref, r, 5);
    expect_apsp_exact(truth, r);
  }
}

}  // namespace
}  // namespace aacc
