// Strong cross-configuration properties: the converged result must be
// independent of the processor count, the DD partitioner, the assignment
// strategy, and the edge-addition mode — every configuration solves the
// same problem.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace aacc {
namespace {

using test::grow_vertices;
using test::make_ba;
using test::make_er;

RunResult run_cfg(const Graph& g, const EventSchedule& sched, EngineConfig cfg) {
  cfg.gather_apsp = true;
  AnytimeEngine engine(g, cfg);
  return engine.run(sched);
}

EventSchedule mixed_schedule(const Graph& g, std::uint64_t seed, Graph* truth) {
  Rng rng(seed);
  *truth = g;
  EventSchedule sched;
  EventBatch batch;
  batch.at_step = 1;
  for (const Event& e : grow_vertices(*truth, 12, 2, rng)) {
    apply_event(*truth, e);
    batch.events.push_back(e);
  }
  for (int i = 0; i < 6; ++i) {
    const auto edges = truth->edges();
    const auto& [u, v, w] = edges[rng.next_below(edges.size())];
    (void)w;
    truth->remove_edge(u, v);
    batch.events.emplace_back(EdgeDeleteEvent{u, v});
  }
  sched.push_back(std::move(batch));
  return sched;
}

TEST(Equivalence, RankCountDoesNotChangeTheAnswer) {
  const Graph g = make_er(140, 420, 51, WeightRange{1, 5});
  Graph truth;
  const auto sched = mixed_schedule(g, 1, &truth);

  EngineConfig base;
  base.num_ranks = 1;
  const RunResult ref = run_cfg(g, sched, base);
  test::expect_apsp_exact(truth, ref);

  for (const Rank p : {2, 3, 5, 8, 13}) {
    EngineConfig cfg;
    cfg.num_ranks = p;
    const RunResult r = run_cfg(g, sched, cfg);
    for (VertexId u = 0; u < truth.num_vertices(); ++u) {
      ASSERT_EQ(r.apsp[u], ref.apsp[u]) << "P=" << p << " row " << u;
    }
  }
}

TEST(Equivalence, PartitionerDoesNotChangeTheAnswer) {
  const Graph g = make_ba(150, 2, 52);
  Graph truth;
  const auto sched = mixed_schedule(g, 2, &truth);
  for (const PartitionerKind kind :
       {PartitionerKind::kMultilevel, PartitionerKind::kHash,
        PartitionerKind::kBlock, PartitionerKind::kBfs}) {
    EngineConfig cfg;
    cfg.num_ranks = 6;
    cfg.dd_partitioner = kind;
    const RunResult r = run_cfg(g, sched, cfg);
    test::expect_apsp_exact(truth, r);
  }
}

TEST(Equivalence, AssignmentStrategyDoesNotChangeTheAnswer) {
  const Graph g = make_ba(150, 2, 53);
  Graph truth;
  const auto sched = mixed_schedule(g, 3, &truth);
  for (const AssignStrategy strat :
       {AssignStrategy::kRoundRobin, AssignStrategy::kCutEdge,
        AssignStrategy::kRepartition}) {
    EngineConfig cfg;
    cfg.num_ranks = 6;
    cfg.assign = strat;
    const RunResult r = run_cfg(g, sched, cfg);
    test::expect_apsp_exact(truth, r);
  }
}

TEST(Equivalence, EagerAndSeededAgreeOnWeightedDynamicRuns) {
  const Graph g = make_er(120, 360, 54, WeightRange{1, 7});
  Rng rng(4);
  EventSchedule sched;
  Graph truth = g;
  EventBatch batch;
  batch.at_step = 2;
  for (const Event& e : grow_vertices(truth, 15, 3, rng)) {
    apply_event(truth, e);
    batch.events.push_back(e);
  }
  sched.push_back(std::move(batch));

  for (const EdgeAddMode mode : {EdgeAddMode::kSeeded, EdgeAddMode::kEager}) {
    EngineConfig cfg;
    cfg.num_ranks = 5;
    cfg.add_mode = mode;
    const RunResult r = run_cfg(g, sched, cfg);
    test::expect_apsp_exact(truth, r);
  }
}

TEST(Equivalence, IaThreadCountDoesNotChangeTheAnswer) {
  // The parallel IA sweep must be bit-identical to the serial one: rows are
  // disjoint per worker and dirty counters merge in row order, so closeness,
  // APSP, step counts, and even the communication ledger must all match.
  const Graph g = make_er(140, 420, 56, WeightRange{1, 5});
  Graph truth;
  const auto sched = mixed_schedule(g, 6, &truth);

  EngineConfig serial;
  serial.num_ranks = 4;
  serial.ia_threads = 1;
  const RunResult ref = run_cfg(g, sched, serial);
  test::expect_apsp_exact(truth, ref);

  for (const std::size_t t : {2, 4, 7}) {
    EngineConfig cfg;
    cfg.num_ranks = 4;
    cfg.ia_threads = t;
    cfg.validate_each_step = true;
    const RunResult r = run_cfg(g, sched, cfg);
    EXPECT_EQ(r.stats.invariant_violations, 0u) << "ia_threads=" << t;
    EXPECT_EQ(r.closeness, ref.closeness) << "ia_threads=" << t;
    EXPECT_EQ(r.stats.rc_steps, ref.stats.rc_steps) << "ia_threads=" << t;
    EXPECT_EQ(r.stats.total_bytes, ref.stats.total_bytes)
        << "ia_threads=" << t;
    for (VertexId u = 0; u < truth.num_vertices(); ++u) {
      ASSERT_EQ(r.apsp[u], ref.apsp[u]) << "ia_threads=" << t << " row " << u;
    }
  }
}

TEST(Equivalence, DeterministicAcrossRepeatedRuns) {
  const Graph g = make_ba(130, 2, 55);
  Graph truth;
  const auto sched = mixed_schedule(g, 5, &truth);
  EngineConfig cfg;
  cfg.num_ranks = 7;
  const RunResult a = run_cfg(g, sched, cfg);
  const RunResult b = run_cfg(g, sched, cfg);
  EXPECT_EQ(a.closeness, b.closeness);
  EXPECT_EQ(a.final_owner, b.final_owner);
  EXPECT_EQ(a.stats.rc_steps, b.stats.rc_steps);
  // Communication is deterministic too (fixed seeds, fixed schedule).
  EXPECT_EQ(a.stats.total_bytes, b.stats.total_bytes);
}

}  // namespace
}  // namespace aacc
