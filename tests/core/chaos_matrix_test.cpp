// Chaos matrix for the recovery-policy ladder (docs/FAULTS.md §Recovery
// policy ladder): {crash early / mid / late} × {adopt / rollback / degrade}
// × {deterministic / pipelined / async exchange}, each also exercised with
// a mid-exchange death. Adopt and rollback must converge to the fault-free
// values with nothing lost; degrade must account for the coverage gap
// exactly. A second suite sweeps adoption across every crash step at both
// send-window extremes, and the ladder tests cover fall-through, budgets
// and exhaustion.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "test_util.hpp"

namespace aacc {
namespace {

using test::grow_vertices;
using test::make_er;

EngineConfig matrix_cfg(Rank P, ExchangeMode mode) {
  EngineConfig cfg;
  cfg.num_ranks = P;
  cfg.exchange_mode = mode;
  // Keep chaos runs snappy; a wedged run fails on the recv watchdog instead
  // of the ctest timeout.
  cfg.transport.retry_backoff = std::chrono::microseconds(1);
  cfg.transport.recv_timeout = std::chrono::seconds(60);
  return cfg;
}

/// Adds, deletions, a weight change and growth: every structural fact the
/// adoption journal replay must reproduce.
EventSchedule matrix_schedule(const Graph& g, std::uint64_t seed) {
  Rng rng(seed);
  EventSchedule sched;
  {
    EventBatch b;
    b.at_step = 1;
    VertexId fresh = g.num_vertices() / 2;
    while (fresh == 0 || g.has_edge(0, fresh)) ++fresh;
    b.events.push_back(EdgeAddEvent{0, fresh, 1});
    const auto edges = g.edges();
    const auto& [u, v, w] = edges[rng.next_below(edges.size())];
    (void)w;
    b.events.push_back(EdgeDeleteEvent{u, v});
    sched.push_back(std::move(b));
  }
  {
    EventBatch b;
    b.at_step = 3;
    Graph grown = g;
    for (const Event& e : sched[0].events) apply_event(grown, e);
    const auto edges = grown.edges();
    const auto& [u, v, w] = edges[rng.next_below(edges.size())];
    b.events.push_back(WeightChangeEvent{u, v, static_cast<Weight>(w + 2)});
    b.events.push_back(EdgeDeleteEvent{std::get<0>(edges[0]),
                                       std::get<1>(edges[0])});
    auto growth = grow_vertices(grown, 5, 2, rng);
    b.events.insert(b.events.end(), growth.begin(), growth.end());
    sched.push_back(std::move(b));
  }
  return sched;
}

const char* kind_of(RecoveryPolicy p) {
  switch (p) {
    case RecoveryPolicy::kAdopt: return "adopt";
    case RecoveryPolicy::kRollback: return "rollback";
    case RecoveryPolicy::kDegrade: return "degraded";
  }
  return "?";
}

std::vector<VertexId> lost_of(const Graph& truth, const RunResult& r,
                              Rank dead) {
  std::vector<VertexId> expected;
  for (VertexId v = 0; v < r.final_owner.size(); ++v) {
    if (r.final_owner[v] == dead && truth.is_alive(v)) expected.push_back(v);
  }
  return expected;
}

// ------------------------------------------------------------ the matrix

TEST(ChaosMatrix, EveryPolicyEveryModeEveryCrashWindow) {
  const Graph g = make_er(100, 300, 7, WeightRange{1, 3});
  const EventSchedule sched = matrix_schedule(g, 5);
  const Rank victim = 1;

  for (const ExchangeMode mode :
       {ExchangeMode::kDeterministic, ExchangeMode::kPipelined,
        ExchangeMode::kAsync}) {
    const EngineConfig cfg = matrix_cfg(4, mode);
    AnytimeEngine clean_engine(g, cfg);
    const RunResult clean = clean_engine.run(sched);
    const std::size_t steps = clean.stats.rc_steps;
    ASSERT_GE(steps, 5u) << "mode " << static_cast<int>(mode);
    // Crash early (first step a snapshot can precede), mid, and late.
    const std::size_t crash_steps[] = {1, steps / 2, steps - 1};

    for (const RecoveryPolicy policy :
         {RecoveryPolicy::kAdopt, RecoveryPolicy::kRollback,
          RecoveryPolicy::kDegrade}) {
      for (const std::size_t s : crash_steps) {
        for (const rt::CrashPhase phase :
             {rt::CrashPhase::kStepStart, rt::CrashPhase::kMidExchange}) {
          const std::string ctx =
              std::string("mode ") + std::to_string(static_cast<int>(mode)) +
              " policy " + kind_of(policy) + " step " + std::to_string(s) +
              (phase == rt::CrashPhase::kMidExchange ? " mid-exchange" : "");
          EngineConfig ccfg = cfg;
          ccfg.recovery_policy = {{policy, 0}};
          if (policy != RecoveryPolicy::kDegrade) ccfg.checkpoint_every = 1;
          ccfg.faults.crashes.push_back({victim, s, phase});

          AnytimeEngine engine(g, ccfg);
          RunResult r;
          try {
            r = engine.run(sched);
          } catch (const std::exception& e) {
            ADD_FAILURE() << ctx << ": run threw: " << e.what();
            continue;
          }

          EXPECT_EQ(r.stats.recoveries, 1u) << ctx;
          ASSERT_EQ(r.stats.recovery_log.size(), 1u) << ctx;
          EXPECT_EQ(r.stats.recovery_log[0].kind, kind_of(policy)) << ctx;
          EXPECT_GT(r.stats.recovery_log[0].mttr_seconds, 0.0) << ctx;

          if (policy == RecoveryPolicy::kDegrade) {
            EXPECT_TRUE(r.degraded) << ctx;
            EXPECT_EQ(r.lost_vertices, lost_of(engine.graph(), r, victim))
                << ctx;
            EXPECT_FALSE(r.lost_vertices.empty()) << ctx;
          } else {
            EXPECT_FALSE(r.degraded) << ctx;
            EXPECT_TRUE(r.lost_vertices.empty()) << ctx;
            if (policy == RecoveryPolicy::kAdopt) {
              // The dead seat really was vacated.
              for (VertexId v = 0; v < r.final_owner.size(); ++v) {
                ASSERT_NE(r.final_owner[v], victim) << ctx << " vertex " << v;
              }
            }
            ASSERT_EQ(r.closeness.size(), clean.closeness.size()) << ctx;
            for (VertexId v = 0; v < clean.closeness.size(); ++v) {
              ASSERT_EQ(r.closeness[v], clean.closeness[v])
                  << ctx << " vertex " << v;
            }
          }
        }
      }
    }
  }
}

// ------------------------------------- adoption exactness, swept in depth

TEST(Adoption, EveryCrashStepAtBothWindowDepths) {
  // The acceptance sweep: kill a rank at every RC step of the run under
  // recovery_policy = {adopt}, at send-window depths 1 and P-1. Every run
  // must finish undegraded, lose nothing, and produce distances and
  // closeness exactly equal to the fault-free run.
  const Graph g = make_er(80, 240, 3, WeightRange{1, 3});
  const EventSchedule sched = matrix_schedule(g, 17);
  const Rank P = 4;

  for (const std::size_t window : {std::size_t{1}, std::size_t{P - 1}}) {
    EngineConfig cfg = matrix_cfg(P, ExchangeMode::kPipelined);
    cfg.exchange_window = window;
    cfg.gather_apsp = true;
    AnytimeEngine clean_engine(g, cfg);
    const RunResult clean = clean_engine.run(sched);
    ASSERT_GE(clean.stats.rc_steps, 4u);

    for (std::size_t s = 1; s < clean.stats.rc_steps; ++s) {
      EngineConfig ccfg = cfg;
      ccfg.checkpoint_every = 1;
      ccfg.recovery_policy = {{RecoveryPolicy::kAdopt, 0}};
      ccfg.faults.crashes.push_back({2, s});

      AnytimeEngine engine(g, ccfg);
      const RunResult r = engine.run(sched);
      EXPECT_EQ(r.stats.recoveries, 1u) << "window " << window << " step " << s;
      EXPECT_FALSE(r.degraded) << "window " << window << " step " << s;
      EXPECT_TRUE(r.lost_vertices.empty())
          << "window " << window << " step " << s;
      EXPECT_EQ(r.apsp, clean.apsp) << "window " << window << " step " << s;
      ASSERT_EQ(r.closeness.size(), clean.closeness.size());
      for (VertexId v = 0; v < clean.closeness.size(); ++v) {
        ASSERT_EQ(r.closeness[v], clean.closeness[v])
            << "window " << window << " step " << s << " vertex " << v;
      }
    }
  }
}

TEST(Adoption, TwoDeathsBackToBackStayExact) {
  // Adoption keeps the periodic store live, so a second death is adoptable
  // too: both seats end up vacated and the answer stays exact.
  const Graph g = make_er(90, 270, 23, WeightRange{1, 3});
  const EventSchedule sched = matrix_schedule(g, 29);
  EngineConfig cfg = matrix_cfg(4, ExchangeMode::kDeterministic);
  cfg.gather_apsp = true;

  AnytimeEngine clean_engine(g, cfg);
  const RunResult clean = clean_engine.run(sched);
  ASSERT_GE(clean.stats.rc_steps, 5u);

  EngineConfig ccfg = cfg;
  ccfg.checkpoint_every = 1;
  ccfg.recovery_policy = {{RecoveryPolicy::kAdopt, 0}};
  ccfg.faults.crashes.push_back({1, 2});
  ccfg.faults.crashes.push_back({3, 4});

  AnytimeEngine engine(g, ccfg);
  const RunResult r = engine.run(sched);
  EXPECT_EQ(r.stats.recoveries, 2u);
  ASSERT_EQ(r.stats.recovery_log.size(), 2u);
  EXPECT_EQ(r.stats.recovery_log[0].kind, "adopt");
  EXPECT_EQ(r.stats.recovery_log[1].kind, "adopt");
  EXPECT_FALSE(r.degraded);
  EXPECT_TRUE(r.lost_vertices.empty());
  for (VertexId v = 0; v < r.final_owner.size(); ++v) {
    ASSERT_NE(r.final_owner[v], 1) << "vertex " << v;
    ASSERT_NE(r.final_owner[v], 3) << "vertex " << v;
  }
  EXPECT_EQ(r.apsp, clean.apsp);
}

TEST(Adoption, MessageFaultsOnTopStayExact) {
  // Adoption composes with wire chaos: dropped/duplicated/delayed/corrupt
  // frames during both the original attempt and the adopted restart.
  const Graph g = make_er(80, 240, 31, WeightRange{1, 3});
  const EventSchedule sched = matrix_schedule(g, 37);
  EngineConfig cfg = matrix_cfg(4, ExchangeMode::kDeterministic);
  cfg.gather_apsp = true;

  AnytimeEngine clean_engine(g, cfg);
  const RunResult clean = clean_engine.run(sched);

  EngineConfig ccfg = cfg;
  ccfg.checkpoint_every = 2;
  ccfg.recovery_policy = {{RecoveryPolicy::kAdopt, 0},
                          {RecoveryPolicy::kRollback, 0}};
  ccfg.faults.seed = 99;
  ccfg.faults.drop = 0.06;
  ccfg.faults.duplicate = 0.03;
  ccfg.faults.delay = 0.06;
  ccfg.faults.corrupt = 0.06;
  ccfg.faults.crashes.push_back({2, 3});

  AnytimeEngine engine(g, ccfg);
  const RunResult r = engine.run(sched);
  EXPECT_EQ(r.stats.recoveries, 1u);
  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(r.apsp, clean.apsp);
}

// ------------------------------------------------------------- the ladder

TEST(Ladder, AdoptFallsThroughToRollbackBeforeAnySnapshot) {
  // Rank 1 dies at step 0: no periodic snapshot exists yet, so the adopt
  // rung raises RecoveryError and the ladder falls through to rollback
  // (which restarts from scratch, bit-identically).
  const Graph g = make_er(80, 240, 41, WeightRange{1, 3});
  EngineConfig cfg = matrix_cfg(3, ExchangeMode::kDeterministic);
  cfg.gather_apsp = true;

  AnytimeEngine clean_engine(g, cfg);
  const RunResult clean = clean_engine.run();

  EngineConfig ccfg = cfg;
  ccfg.checkpoint_every = 2;
  ccfg.recovery_policy = {{RecoveryPolicy::kAdopt, 0},
                          {RecoveryPolicy::kRollback, 0}};
  ccfg.faults.crashes.push_back({1, 0});

  AnytimeEngine engine(g, ccfg);
  const RunResult r = engine.run();
  EXPECT_EQ(r.stats.recoveries, 1u);
  ASSERT_EQ(r.stats.recovery_log.size(), 1u);
  EXPECT_EQ(r.stats.recovery_log[0].kind, "rollback");
  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(r.apsp, clean.apsp);
}

TEST(Ladder, SpentBudgetFallsThroughToTheNextRung) {
  // Rollback may serve exactly one recovery; the second death falls
  // through to degrade even though snapshots are available.
  const Graph g = make_er(90, 270, 43, WeightRange{1, 3});
  const EventSchedule sched = matrix_schedule(g, 47);
  EngineConfig cfg = matrix_cfg(4, ExchangeMode::kDeterministic);

  AnytimeEngine probe_engine(g, cfg);
  const RunResult probe = probe_engine.run(sched);
  ASSERT_GE(probe.stats.rc_steps, 5u);

  EngineConfig ccfg = cfg;
  ccfg.checkpoint_every = 2;
  ccfg.recovery_policy = {{RecoveryPolicy::kRollback, 1},
                          {RecoveryPolicy::kDegrade, 0}};
  ccfg.faults.crashes.push_back({1, 2});
  ccfg.faults.crashes.push_back({2, 4});

  AnytimeEngine engine(g, ccfg);
  const RunResult r = engine.run(sched);
  EXPECT_EQ(r.stats.recoveries, 2u);
  ASSERT_EQ(r.stats.recovery_log.size(), 2u);
  EXPECT_EQ(r.stats.recovery_log[0].kind, "rollback");
  EXPECT_EQ(r.stats.recovery_log[1].kind, "degraded");
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.lost_vertices, lost_of(engine.graph(), r, 2));
}

TEST(Ladder, ExhaustedLadderRethrowsTheLastPreconditionFailure) {
  // A single-rung adopt ladder with no periodic snapshots configured: the
  // rung's precondition failure surfaces as RecoveryError.
  const Graph g = make_er(70, 210, 53, WeightRange{1, 3});
  EngineConfig cfg = matrix_cfg(3, ExchangeMode::kDeterministic);
  cfg.checkpoint_every = 0;
  cfg.recovery_policy = {{RecoveryPolicy::kAdopt, 0}};
  cfg.faults.crashes.push_back({1, 1});

  AnytimeEngine engine(g, cfg);
  EXPECT_THROW((void)engine.run(), RecoveryError);
}

TEST(Ladder, DefaultLadderReproducesTheLegacyOrder) {
  // Default recovery_policy = {rollback, degrade}: with snapshots it rolls
  // back; without, it degrades — exactly the pre-ladder behavior.
  const Graph g = make_er(80, 240, 59, WeightRange{1, 3});
  EngineConfig with_ck = matrix_cfg(3, ExchangeMode::kDeterministic);
  with_ck.checkpoint_every = 2;
  with_ck.faults.crashes.push_back({1, 3});
  AnytimeEngine a(g, with_ck);
  const RunResult ra = a.run();
  ASSERT_EQ(ra.stats.recovery_log.size(), 1u);
  EXPECT_EQ(ra.stats.recovery_log[0].kind, "rollback");
  EXPECT_FALSE(ra.degraded);

  EngineConfig without_ck = matrix_cfg(3, ExchangeMode::kDeterministic);
  without_ck.faults.crashes.push_back({1, 3});
  AnytimeEngine b(g, without_ck);
  const RunResult rb = b.run();
  ASSERT_EQ(rb.stats.recovery_log.size(), 1u);
  EXPECT_EQ(rb.stats.recovery_log[0].kind, "degraded");
  EXPECT_TRUE(rb.degraded);
}

TEST(RecoveryLog, SerializesIntoTheStatsJson) {
  const Graph g = make_er(70, 210, 61, WeightRange{1, 3});
  EngineConfig cfg = matrix_cfg(3, ExchangeMode::kDeterministic);
  cfg.checkpoint_every = 1;
  cfg.recovery_policy = {{RecoveryPolicy::kAdopt, 0},
                         {RecoveryPolicy::kRollback, 0}};
  cfg.faults.crashes.push_back({1, 2});

  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run();
  const std::string json = r.stats.to_json(false);
  EXPECT_NE(json.find("\"recovery_log\":[{\"kind\":\"adopt\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"mttr_seconds\":"), std::string::npos);
}

}  // namespace
}  // namespace aacc
