// The "anytime" contract: interrupted snapshots are valid lower bounds of
// harmonic centrality whose quality is monotone non-decreasing over RC
// steps for additive workloads, and the modeled accounting behaves
// sensibly. (Classic closeness 1/Σd is only meaningful at full coverage —
// partial sums overshoot — which is why the quality curve uses harmonic.)
#include <gtest/gtest.h>

#include "analysis/closeness.hpp"
#include "analysis/quality.hpp"
#include "test_util.hpp"

namespace aacc {
namespace {

using test::make_ba;

TEST(Anytime, SnapshotsAreMonotoneLowerBoundsOnStaticRuns) {
  const Graph g = make_ba(250, 2, 19);
  EngineConfig cfg;
  cfg.num_ranks = 8;
  cfg.record_step_quality = true;
  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run();
  ASSERT_GE(r.step_harmonic.size(), 2u);

  const auto exact = harmonic_exact(g);
  for (std::size_t s = 0; s < r.step_harmonic.size(); ++s) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      // Distances are upper bounds => stored sums are >= true sums =>
      // estimates never exceed the exact value.
      EXPECT_LE(r.step_harmonic[s][v], exact[v] + 1e-12)
          << "step " << s << " vertex " << v;
      if (s > 0) {
        EXPECT_GE(r.step_harmonic[s][v], r.step_harmonic[s - 1][v] - 1e-12)
            << "monotonicity violated at step " << s << " vertex " << v;
      }
    }
  }
  // Final step equals exact.
  const auto& last = r.step_harmonic.back();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(last[v], exact[v], 1e-12);
  }
}

TEST(Anytime, QualityImprovesWithSteps) {
  const Graph g = make_ba(300, 2, 23);
  EngineConfig cfg;
  cfg.num_ranks = 8;
  cfg.record_step_quality = true;
  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run();
  const auto exact = harmonic_exact(g);

  const double err_first = mean_relative_error(exact, r.step_harmonic.front());
  const double err_last = mean_relative_error(exact, r.step_harmonic.back());
  EXPECT_GT(err_first, err_last);
  EXPECT_NEAR(err_last, 0.0, 1e-12);

  const double overlap_last = top_k_overlap(exact, r.step_harmonic.back(), 20);
  EXPECT_DOUBLE_EQ(overlap_last, 1.0);
}

TEST(Anytime, AccountingIsPopulated) {
  const Graph g = make_ba(200, 2, 29);
  EngineConfig cfg;
  cfg.num_ranks = 6;
  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run();
  EXPECT_GT(r.stats.total_bytes, 0u);
  EXPECT_GT(r.stats.total_messages, 0u);
  EXPECT_GT(r.stats.rc_steps, 0u);
  EXPECT_GT(r.stats.modeled_network_seconds_serialized, 0.0);
  // The paper's serialized schedule is never faster than the shift schedule.
  EXPECT_GE(r.stats.modeled_network_seconds_serialized,
            r.stats.modeled_network_seconds_shifted);
  EXPECT_EQ(r.stats.steps.size(), r.stats.rc_steps);
  EXPECT_GT(r.stats.cut_edges_initial, 0u);
  // Static run: the distribution does not change.
  EXPECT_EQ(r.stats.cut_edges_initial, r.stats.cut_edges_final);
  EXPECT_GT(r.stats.cpu_by_phase.count("ia"), 0u);
  EXPECT_GT(r.stats.cpu_by_phase.count("rc"), 0u);
}

TEST(Anytime, BaselineRestartCostsScaleWithBatches) {
  const Graph g = make_ba(120, 2, 31);
  EngineConfig cfg;
  cfg.num_ranks = 4;

  // Deterministically pick three non-adjacent vertex pairs.
  std::vector<EdgeAddEvent> adds;
  for (VertexId u = 20; adds.size() < 3; ++u) {
    const VertexId v = u + 57;
    ASSERT_LT(v, g.num_vertices());
    if (!g.has_edge(u, v)) adds.push_back(EdgeAddEvent{u, v, 1});
  }
  EventSchedule one;
  one.push_back({1, {adds[0]}});
  EventSchedule three;
  three.push_back({1, {adds[0]}});
  three.push_back({2, {adds[1]}});
  three.push_back({3, {adds[2]}});

  const RunResult r1 = run_baseline_restart(g, one, cfg);
  const RunResult r3 = run_baseline_restart(g, three, cfg);
  // 2 full runs vs 4 full runs: strictly more RC steps and bytes.
  EXPECT_GT(r3.stats.rc_steps, r1.stats.rc_steps);
  EXPECT_GT(r3.stats.total_bytes, r1.stats.total_bytes);
}

TEST(Anytime, BaselineRestartMatchesReferenceAfterChanges) {
  const Graph g = make_ba(100, 2, 37);
  EngineConfig cfg;
  cfg.num_ranks = 4;
  cfg.gather_apsp = true;
  EventSchedule sched;
  sched.push_back({1, {EdgeAddEvent{0, 99, 1}, EdgeAddEvent{5, 50, 2}}});
  const RunResult r = run_baseline_restart(g, sched, cfg);
  Graph truth = g;
  apply_schedule(truth, sched);
  test::expect_apsp_exact(truth, r);
}

TEST(Anytime, AnytimeBeatsBaselineOnWork) {
  // The headline claim (Fig. 4): incremental ingestion does much less work
  // than restart. Compare total relaxation counts + bytes.
  const Graph g = make_ba(300, 2, 41);
  EngineConfig cfg;
  cfg.num_ranks = 8;
  Rng rng(1);
  EventSchedule sched;
  sched.push_back({2, test::grow_vertices(g, 20, 2, rng)});

  AnytimeEngine anytime(g, cfg);
  const RunResult ra = anytime.run(sched);
  const RunResult rb = run_baseline_restart(g, sched, cfg);
  EXPECT_LT(ra.stats.total_bytes, rb.stats.total_bytes);
  EXPECT_LT(ra.stats.total_cpu_seconds, rb.stats.total_cpu_seconds);
}

}  // namespace
}  // namespace aacc
