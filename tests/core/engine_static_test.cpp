// Integration: static runs of the full DD+IA+RC pipeline must reproduce the
// sequential reference APSP and closeness exactly.
#include <gtest/gtest.h>

#include "analysis/closeness.hpp"
#include "test_util.hpp"

namespace aacc {
namespace {

using test::expect_apsp_exact;
using test::make_ba;
using test::make_er;

EngineConfig base_cfg(Rank P) {
  EngineConfig cfg;
  cfg.num_ranks = P;
  cfg.gather_apsp = true;
  return cfg;
}

TEST(EngineStatic, TinyPathGraph) {
  Graph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 2);
  g.add_edge(2, 3, 3);
  AnytimeEngine engine(g, base_cfg(2));
  const RunResult r = engine.run();
  expect_apsp_exact(g, r);
  EXPECT_DOUBLE_EQ(r.closeness[0], 1.0 / (1 + 3 + 6));
  EXPECT_DOUBLE_EQ(r.closeness[1], 1.0 / (1 + 2 + 5));
}

TEST(EngineStatic, SingleRankMatchesReference) {
  const Graph g = make_ba(120, 2, 7);
  AnytimeEngine engine(g, base_cfg(1));
  const RunResult r = engine.run();
  expect_apsp_exact(g, r);
}

TEST(EngineStatic, ScaleFreeUnweighted) {
  const Graph g = make_ba(300, 2, 42);
  AnytimeEngine engine(g, base_cfg(8));
  const RunResult r = engine.run();
  expect_apsp_exact(g, r);
  const auto exact = closeness_exact(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(r.closeness[v], exact[v], 1e-12) << "vertex " << v;
  }
}

TEST(EngineStatic, WeightedGraph) {
  const Graph g = make_er(200, 600, 9, WeightRange{1, 9});
  AnytimeEngine engine(g, base_cfg(5));
  const RunResult r = engine.run();
  expect_apsp_exact(g, r);
}

TEST(EngineStatic, DisconnectedGraph) {
  Rng rng(3);
  Graph g = erdos_renyi(150, 260, rng);  // likely several components
  AnytimeEngine engine(g, base_cfg(4));
  const RunResult r = engine.run();
  expect_apsp_exact(g, r);
}

TEST(EngineStatic, RcStepsBoundedByRanksForStaticRuns) {
  const Graph g = make_ba(200, 2, 5);
  EngineConfig cfg = base_cfg(8);
  AnytimeEngine engine(g, cfg);
  const RunResult r = engine.run();
  // Static convergence needs at most P-1 information hops plus the final
  // empty round that detects quiescence.
  EXPECT_LE(r.stats.rc_steps, static_cast<std::size_t>(cfg.num_ranks) + 1);
}

}  // namespace
}  // namespace aacc
