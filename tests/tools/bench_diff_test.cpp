// tools/bench_diff.hpp: the JSON flattener and the noise-aware regression
// gate. The synthetic-regression case here is the CI contract: an injected
// +25% timing regression must be detected against a 10% threshold, while
// within-noise jitter and non-gated counter drift must not fail the gate.
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/bench_diff.hpp"

namespace aacc::tools {
namespace {

using Flat = std::map<std::string, double>;

TEST(FlattenJson, NestedObjectsArraysAndLiterals) {
  Flat out;
  std::string err;
  ASSERT_TRUE(flatten_json(
      R"({"a":1.5,"b":{"c":-2,"d":[10,20,{"e":30}]},"f":true,"g":false,)"
      R"("h":null,"s":"skipped","empty":{},"earr":[]})",
      out, &err))
      << err;
  EXPECT_DOUBLE_EQ(out.at("a"), 1.5);
  EXPECT_DOUBLE_EQ(out.at("b.c"), -2.0);
  EXPECT_DOUBLE_EQ(out.at("b.d[0]"), 10.0);
  EXPECT_DOUBLE_EQ(out.at("b.d[1]"), 20.0);
  EXPECT_DOUBLE_EQ(out.at("b.d[2].e"), 30.0);
  EXPECT_DOUBLE_EQ(out.at("f"), 1.0);
  EXPECT_DOUBLE_EQ(out.at("g"), 0.0);
  // Strings and nulls are not metrics.
  EXPECT_EQ(out.count("h"), 0u);
  EXPECT_EQ(out.count("s"), 0u);
  EXPECT_EQ(out.size(), 7u);
}

TEST(FlattenJson, ScientificNotationAndTopLevelArray) {
  Flat out;
  ASSERT_TRUE(flatten_json(R"([1e-3,2.5E2])", out));
  EXPECT_DOUBLE_EQ(out.at("[0]"), 1e-3);
  EXPECT_DOUBLE_EQ(out.at("[1]"), 250.0);
}

TEST(FlattenJson, RejectsMalformedDocuments) {
  Flat out;
  std::string err;
  EXPECT_FALSE(flatten_json("", out, &err));
  EXPECT_FALSE(flatten_json("{\"a\":}", out, &err));
  EXPECT_FALSE(flatten_json("{\"a\":1", out, &err));
  EXPECT_FALSE(flatten_json("{\"a\":1} extra", out, &err));
  EXPECT_FALSE(flatten_json("{'a':1}", out, &err));
}

// A miniature BENCH_*.json in flattened form.
Flat bench_run(double drain_cpu, double makespan, double rc_steps) {
  return Flat{
      {"cases[0].drain_cpu_seconds", drain_cpu},
      {"cases[0].modeled_makespan_seconds", makespan},
      {"cases[0].rc_steps", rc_steps},
  };
}

TEST(DiffBench, DetectsInjectedSyntheticRegression) {
  // Two history runs with ~4% noise, candidate +25% on both timings.
  const std::vector<Flat> history{bench_run(1.00, 2.00, 7),
                                  bench_run(1.04, 2.08, 7)};
  const Flat candidate = bench_run(1.25, 2.50, 7);
  const DiffReport rep = diff_bench(history, candidate);
  EXPECT_EQ(rep.regressions, 2u);
  for (const auto& d : rep.rows) {
    if (d.path == "cases[0].rc_steps") {
      // Matches no timing token: report-only even if it drifted.
      EXPECT_FALSE(d.gated);
      EXPECT_FALSE(d.regression);
    } else {
      EXPECT_TRUE(d.gated) << d.path;
      EXPECT_TRUE(d.regression) << d.path;
      EXPECT_NEAR(d.delta_pct, 25.0, 0.01) << d.path;
      EXPECT_NEAR(d.noise_pct, 4.0, 0.01) << d.path;
    }
  }
}

TEST(DiffBench, WithinNoiseOrThresholdPasses) {
  // +8% on a 10% threshold: not a regression.
  const std::vector<Flat> history{bench_run(1.00, 2.00, 7)};
  const DiffReport ok = diff_bench(history, bench_run(1.08, 2.16, 7));
  EXPECT_EQ(ok.regressions, 0u);

  // +15% but the history itself is 20% noisy: the noise bar wins.
  const std::vector<Flat> noisy{bench_run(1.00, 2.00, 7),
                                bench_run(1.20, 2.40, 7)};
  const DiffReport noise = diff_bench(noisy, bench_run(1.15, 2.30, 7));
  EXPECT_EQ(noise.regressions, 0u);

  // Same +15% against quiet history fails.
  const std::vector<Flat> quiet{bench_run(1.00, 2.00, 7),
                                bench_run(1.01, 2.02, 7)};
  const DiffReport bad = diff_bench(quiet, bench_run(1.15, 2.30, 7));
  EXPECT_EQ(bad.regressions, 2u);
}

TEST(DiffBench, NonGatedCounterDriftIsReportOnly) {
  const std::vector<Flat> history{{{"cases[0].retransmits", 2.0}}};
  const Flat candidate{{"cases[0].retransmits", 50.0}};
  const DiffReport rep = diff_bench(history, candidate);
  EXPECT_EQ(rep.regressions, 0u);
  ASSERT_EQ(rep.rows.size(), 1u);
  EXPECT_FALSE(rep.rows[0].gated);
  EXPECT_NEAR(rep.rows[0].delta_pct, 2400.0, 0.01);
}

TEST(DiffBench, BaselineIsBestHistoricalSample) {
  // Candidate matches the *fastest* historical run: clean pass, even
  // though it is 20% above the slowest one.
  const std::vector<Flat> history{bench_run(1.20, 2.40, 7),
                                  bench_run(1.00, 2.00, 7)};
  const DiffReport rep = diff_bench(history, bench_run(1.00, 2.00, 7));
  EXPECT_EQ(rep.regressions, 0u);
  for (const auto& d : rep.rows) {
    if (d.gated) EXPECT_NEAR(d.delta_pct, 0.0, 1e-9) << d.path;
  }
}

TEST(DiffBench, ZeroAndNearZeroBaselinesNeverGate) {
  const std::vector<Flat> history{{{"phases.idle_seconds", 0.0}}};
  const Flat candidate{{"phases.idle_seconds", 5.0}};
  const DiffReport rep = diff_bench(history, candidate);
  EXPECT_EQ(rep.regressions, 0u);
}

TEST(DiffBench, NewAndRemovedMetricsAreIgnored) {
  const std::vector<Flat> history{{{"old.wall_seconds", 1.0}}};
  const Flat candidate{{"new.wall_seconds", 9.0}};
  const DiffReport rep = diff_bench(history, candidate);
  EXPECT_TRUE(rep.rows.empty());
  EXPECT_EQ(rep.regressions, 0u);
}

TEST(DiffBench, CustomGateAndThreshold) {
  DiffOptions opts;
  opts.threshold_pct = 2.0;
  opts.gate_regex = "rc_steps";
  const std::vector<Flat> history{bench_run(1.0, 2.0, 10)};
  const DiffReport rep = diff_bench(history, bench_run(1.5, 3.0, 12), opts);
  // Timings are no longer gated; the step count now is (+20% > 2%).
  EXPECT_EQ(rep.regressions, 1u);
  for (const auto& d : rep.rows) {
    EXPECT_EQ(d.regression, d.path == "cases[0].rc_steps") << d.path;
  }
}

TEST(DiffBench, ImprovementsAreCounted) {
  const std::vector<Flat> history{bench_run(1.0, 2.0, 7)};
  const DiffReport rep = diff_bench(history, bench_run(0.8, 1.6, 7));
  EXPECT_EQ(rep.regressions, 0u);
  EXPECT_EQ(rep.improvements, 2u);
}

}  // namespace
}  // namespace aacc::tools
