// EngineSession / QueryView: lifecycle contract, batch-run equivalence,
// snapshot consistency under concurrent readers (the TSan target), the
// staleness contract, and serving across a supervised recovery.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "serve/session.hpp"
#include "test_util.hpp"

namespace aacc {
namespace {

using serve::EngineSession;
using serve::QueryView;
using serve::ServeContext;
using serve::SessionState;
using serve::SnapshotData;
using test::grow_vertices;
using test::make_ba;
using test::make_er;

// Splits a schedule's batches into per-batch event vectors (the session
// ingests events; step pinning happens at consumption time).
std::vector<std::vector<Event>> batches_of(const EventSchedule& sched) {
  std::vector<std::vector<Event>> out;
  for (const EventBatch& b : sched) out.push_back(b.events);
  return out;
}

EventSchedule mixed_schedule(const Graph& g, std::uint64_t seed) {
  Rng rng(seed);
  Graph truth = g;
  EventSchedule sched;
  EventBatch grow;
  grow.at_step = 1;
  for (const Event& e : grow_vertices(truth, 10, 2, rng)) {
    apply_event(truth, e);
    grow.events.push_back(e);
  }
  sched.push_back(grow);
  EventBatch del;
  del.at_step = 2;
  for (int i = 0; i < 5; ++i) {
    const auto edges = truth.edges();
    const auto& [u, v, w] = edges[rng.next_below(edges.size())];
    (void)w;
    truth.remove_edge(u, v);
    del.events.emplace_back(EdgeDeleteEvent{u, v});
  }
  sched.push_back(del);
  return sched;
}

// ---------------------------------------------------------------- lifecycle

TEST(ServeLifecycle, CloseIsOneShotAndIngestAfterCloseThrows) {
  const Graph g = make_ba(60, 2, 7);
  EngineConfig cfg;
  cfg.num_ranks = 2;
  EngineSession session(g, cfg);
  EXPECT_EQ(session.state(), SessionState::kOpen);
  session.ingest({EdgeAddEvent{0, 30, 1}});
  const RunResult r = session.close();
  EXPECT_EQ(session.state(), SessionState::kClosed);
  EXPECT_GT(r.stats.rc_steps, 0u);
  EXPECT_THROW((void)session.close(), EngineStateError);
  EXPECT_THROW(session.ingest({EdgeAddEvent{0, 31, 1}}), EngineStateError);
}

TEST(ServeLifecycle, EmptyIngestIsDroppedAndDestructorJoinsQuietly) {
  const Graph g = make_ba(40, 2, 9);
  EngineConfig cfg;
  cfg.num_ranks = 2;
  EngineSession session(g, cfg);
  session.ingest({});  // no-op, not an error
  // No close(): the destructor must close the feed and join on its own.
}

TEST(ServeLifecycle, EmptySessionMatchesStaticRun) {
  const Graph g = make_er(90, 260, 11, WeightRange{1, 4});
  EngineConfig cfg;
  cfg.num_ranks = 3;
  const RunResult batch = AnytimeEngine(g, cfg).run();
  EngineSession session(g, cfg);
  const RunResult live = session.close();
  ASSERT_EQ(batch.closeness.size(), live.closeness.size());
  for (VertexId v = 0; v < batch.closeness.size(); ++v) {
    EXPECT_EQ(batch.closeness[v], live.closeness[v]) << "vertex " << v;
    EXPECT_EQ(batch.harmonic[v], live.harmonic[v]) << "vertex " << v;
  }
}

// ------------------------------------------------- batch-run equivalence
// The session pins batches to whatever step consumes them, so step counts
// may differ from the caller-pinned schedule — but the final graph is the
// same, and the converged centralities over a fixed graph are exact, so
// the values must match the batch run double for double.

class ServeEquivalence : public ::testing::TestWithParam<ExchangeMode> {};

TEST_P(ServeEquivalence, SessionMatchesBatchRunOnFinalValues) {
  const Graph g = make_er(110, 320, 23, WeightRange{1, 5});
  const EventSchedule sched = mixed_schedule(g, 5);
  EngineConfig cfg;
  cfg.num_ranks = 3;
  cfg.exchange_mode = GetParam();
  if (cfg.exchange_mode != ExchangeMode::kDeterministic) {
    cfg.exchange_window = 2;
  }
  const RunResult batch = AnytimeEngine(g, cfg).run(sched);
  EngineSession session(g, cfg);
  for (auto& events : batches_of(sched)) session.ingest(std::move(events));
  const RunResult live = session.close();
  ASSERT_EQ(batch.closeness.size(), live.closeness.size());
  for (VertexId v = 0; v < batch.closeness.size(); ++v) {
    EXPECT_EQ(batch.closeness[v], live.closeness[v]) << "vertex " << v;
    EXPECT_EQ(batch.harmonic[v], live.harmonic[v]) << "vertex " << v;
  }
  // The merged registry carries the serve-side counters.
  EXPECT_GT(live.metrics.counter_value("serve/publishes"), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllExchangeModes, ServeEquivalence,
                         ::testing::Values(ExchangeMode::kDeterministic,
                                           ExchangeMode::kPipelined,
                                           ExchangeMode::kAsync));

// --------------------------------------------- post-close query exactness

TEST(ServeQueries, PostCloseAnswersAreTheExactFinalState) {
  const Graph g = make_ba(120, 3, 31);
  EngineConfig cfg;
  cfg.num_ranks = 4;
  EngineSession session(g, cfg);
  session.ingest({EdgeAddEvent{1, 60, 1}, EdgeAddEvent{2, 90, 1}});
  const QueryView view = session.view();  // outlives close()
  const RunResult r = session.close();

  // top_k == the result's ranking under (closeness desc, id asc), exactly.
  const auto top = view.top_k(10);
  const auto expect = r.top_closeness(10);
  ASSERT_EQ(top.entries.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(top.entries[i].v, expect[i]);
    EXPECT_EQ(top.entries[i].closeness, r.closeness_of(expect[i]));
  }
  EXPECT_EQ(top.meta.age_steps, 0u);
  EXPECT_FALSE(top.meta.stale);
  EXPECT_FALSE(top.meta.degraded);

  // Point and rank-of agree with the result too.
  const auto p = view.point(expect[0]);
  ASSERT_TRUE(p.found);
  EXPECT_EQ(p.closeness, r.closeness_of(expect[0]));
  EXPECT_EQ(p.harmonic, r.harmonic_of(expect[0]));
  const auto rk = view.rank_of(expect[0]);
  ASSERT_TRUE(rk.found);
  EXPECT_EQ(rk.rank, 1u);
  // Unknown vertex: found=false, still a well-formed contract.
  EXPECT_FALSE(view.point(100000).found);
  EXPECT_FALSE(view.rank_of(100000).found);
  EXPECT_GE(session.queries_answered(), 5u);
}

// ------------------------------------- snapshot consistency (TSan target)
// Readers hammer the view while a feeder streams mutations. Every response
// must be internally consistent: top-k strictly ordered with no duplicate
// ids, finite values, and per-thread monotone step/engine_step (snapshots
// only move forward in a fault-free run).

TEST(ServeConcurrency, ReadersSeeOnlyCompleteOrderedSnapshots) {
  const Graph g = make_ba(150, 3, 41);
  EngineConfig cfg;
  cfg.num_ranks = 3;
  EngineSession session(g, cfg);
  const QueryView view = session.view();

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&view, &done, t] {
      std::size_t last_engine_step = 0;
      const VertexId probe = static_cast<VertexId>(10 + t);
      while (!done.load(std::memory_order_acquire)) {
        const auto top = view.top_k(8);
        for (std::size_t i = 0; i < top.entries.size(); ++i) {
          ASSERT_TRUE(std::isfinite(top.entries[i].closeness));
          if (i > 0) {
            const auto& a = top.entries[i - 1];
            const auto& b = top.entries[i];
            ASSERT_TRUE(a.closeness > b.closeness ||
                        (a.closeness == b.closeness && a.v < b.v))
                << "top-k not strictly ordered at " << i;
          }
        }
        ASSERT_GE(top.meta.engine_step, top.meta.step);
        ASSERT_GE(top.meta.engine_step, last_engine_step);
        last_engine_step = top.meta.engine_step;
        const auto p = view.point(probe);
        if (p.found) {
          ASSERT_TRUE(std::isfinite(p.closeness));
          ASSERT_GE(p.closeness, 0.0);
          ASSERT_GE(p.harmonic, 0.0);
        }
        const auto rk = view.rank_of(probe);
        if (rk.found) {
          ASSERT_GE(rk.rank, 1u);
        }
      }
    });
  }

  Rng rng(77);
  std::set<std::pair<VertexId, VertexId>> present;
  for (const auto& [u, v, w] : g.edges()) {
    (void)w;
    present.emplace(std::min(u, v), std::max(u, v));
  }
  for (int batch = 0; batch < 24; ++batch) {
    std::vector<Event> events;
    for (int i = 0; i < 4; ++i) {
      const auto u = static_cast<VertexId>(rng.next_below(150));
      const auto v = static_cast<VertexId>(rng.next_below(150));
      if (u == v) continue;
      if (!present.emplace(std::min(u, v), std::max(u, v)).second) continue;
      events.push_back(EdgeAddEvent{u, v, 1});
    }
    session.ingest(std::move(events));
    std::this_thread::yield();
  }
  const RunResult r = session.close();
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(r.stats.rc_steps, 0u);
  EXPECT_GT(session.queries_answered(), 0u);
}

// Publication mechanics in isolation: one writer swapping fresh snapshots
// into a cell, many readers asserting complete epochs (no tearing between
// the epoch counter and the payload).
TEST(ServeConcurrency, SnapshotCellEpochsAreAtomic) {
  ServeContext ctx(1, 1, 0);
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      std::uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const auto snap = ctx.snapshots[0].read();
        if (snap == nullptr) continue;
        ASSERT_GE(snap->epoch, last_epoch);
        last_epoch = snap->epoch;
        // The payload must be exactly the epoch's fill pattern.
        ASSERT_EQ(snap->ids.size(), 64u);
        for (std::size_t i = 0; i < snap->ids.size(); ++i) {
          ASSERT_EQ(snap->closeness[i], static_cast<double>(snap->epoch));
        }
      }
    });
  }
  std::shared_ptr<const SnapshotData> prev;
  for (std::uint64_t e = 1; e <= 2000; ++e) {
    auto snap = std::make_shared<SnapshotData>();
    snap->epoch = e;
    snap->step = e;
    snap->ids.resize(64);
    for (std::size_t i = 0; i < 64; ++i) {
      snap->ids[i] = static_cast<VertexId>(i);
    }
    snap->closeness.assign(64, static_cast<double>(e));
    snap->harmonic.assign(64, 0.0);
    ctx.snapshots[0].publish(std::move(snap));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
}

// ------------------------------------------------------ staleness contract

TEST(ServeStaleness, AgeAndStaleFlagFollowTheConfiguredLag) {
  auto ctx = std::make_shared<ServeContext>(1, 1, /*max_snapshot_lag=*/3);
  auto snap = std::make_shared<SnapshotData>();
  snap->step = 2;
  snap->epoch = 1;
  snap->ids = {0, 1, 2};
  snap->closeness = {0.5, 0.4, 0.3};
  snap->harmonic = {1.5, 1.4, 1.3};
  snap->by_closeness = {0, 1, 2};
  ctx->snapshots[0].publish(std::move(snap));
  const QueryView view(ctx);

  ctx->engine_step.store(4, std::memory_order_release);
  auto p = view.point(1);
  ASSERT_TRUE(p.found);
  EXPECT_EQ(p.meta.step, 2u);
  EXPECT_EQ(p.meta.engine_step, 4u);
  EXPECT_EQ(p.meta.age_steps, 2u);
  EXPECT_FALSE(p.meta.stale);  // age 2 <= lag 3

  ctx->engine_step.store(9, std::memory_order_release);
  p = view.point(1);
  EXPECT_EQ(p.meta.age_steps, 7u);
  EXPECT_TRUE(p.meta.stale);  // age 7 > lag 3
  EXPECT_EQ(ctx->stale_responses.load(), 1u);
  EXPECT_EQ(ctx->queries.load(), 2u);

  // Degraded/adopted provenance flows through from the snapshot.
  auto flagged = std::make_shared<SnapshotData>();
  flagged->step = 9;
  flagged->epoch = 2;
  flagged->ids = {0};
  flagged->closeness = {0.1};
  flagged->harmonic = {0.2};
  flagged->by_closeness = {0};
  flagged->degraded = true;
  flagged->adopted = true;
  ctx->snapshots[0].publish(std::move(flagged));
  p = view.point(0);
  EXPECT_TRUE(p.meta.degraded);
  EXPECT_TRUE(p.meta.adopted);
  EXPECT_EQ(p.meta.age_steps, 0u);
}

// -------------------------------------------- serving across a recovery

TEST(ServeRecovery, RollbackRecoveryMatchesFaultFreeFinalValues) {
  const Graph g = make_er(100, 300, 63, WeightRange{1, 3});
  const EventSchedule sched = mixed_schedule(g, 8);
  EngineConfig cfg;
  cfg.num_ranks = 4;
  const RunResult clean = AnytimeEngine(g, cfg).run(sched);

  EngineConfig chaos_cfg = cfg;
  chaos_cfg.checkpoint_every = 2;
  chaos_cfg.faults.crashes.push_back({1, 3});
  EngineSession session(g, chaos_cfg);
  for (auto& events : batches_of(sched)) session.ingest(std::move(events));
  const RunResult live = session.close();
  EXPECT_EQ(live.stats.recoveries, 1u);
  EXPECT_FALSE(live.degraded);
  ASSERT_EQ(clean.closeness.size(), live.closeness.size());
  for (VertexId v = 0; v < clean.closeness.size(); ++v) {
    EXPECT_EQ(clean.closeness[v], live.closeness[v]) << "vertex " << v;
  }
  // Post-rollback snapshots shed the degraded/adopted provenance.
  const auto p = session.view().point(0);
  EXPECT_FALSE(p.meta.degraded);
  EXPECT_FALSE(p.meta.adopted);
}

}  // namespace
}  // namespace aacc
