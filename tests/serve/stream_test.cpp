// NDJSON mutation codec: round-trips, batch boundaries, malformed input.
#include <gtest/gtest.h>

#include <string>
#include <variant>

#include "serve/stream.hpp"

namespace aacc {
namespace {

using serve::StreamCommand;
using serve::commit_ndjson;
using serve::event_to_ndjson;
using serve::parse_mutation_line;

StreamCommand parse_ok(const std::string& line) {
  StreamCommand cmd;
  EXPECT_TRUE(parse_mutation_line(line, cmd)) << line;
  return cmd;
}

TEST(StreamCodec, RoundTripsEveryEventKind) {
  const std::vector<Event> events = {
      EdgeAddEvent{3, 9, 2},
      EdgeDeleteEvent{4, 7},
      WeightChangeEvent{1, 2, 5},
      VertexAddEvent{12, {{0, 1}, {3, 4}}},
      VertexAddEvent{13, {}},
      VertexDeleteEvent{6},
  };
  for (const Event& e : events) {
    const std::string line = event_to_ndjson(e);
    const StreamCommand cmd = parse_ok(line);
    ASSERT_FALSE(cmd.commit) << line;
    EXPECT_EQ(event_to_ndjson(cmd.event), line);
  }
}

TEST(StreamCodec, ParsesHandwrittenLines) {
  StreamCommand cmd = parse_ok(R"({"op":"add_edge","u":1,"v":2})");
  const auto& add = std::get<EdgeAddEvent>(cmd.event);
  EXPECT_EQ(add.u, 1u);
  EXPECT_EQ(add.v, 2u);
  EXPECT_EQ(add.w, 1u);  // weight defaults to 1

  cmd = parse_ok(R"(  { "op" : "del_vertex" , "v" : 9 }  )");
  EXPECT_EQ(std::get<VertexDeleteEvent>(cmd.event).v, 9u);

  cmd = parse_ok(R"({"op":"add_vertex","id":5,"edges":[[1,2]]})");
  const auto& va = std::get<VertexAddEvent>(cmd.event);
  EXPECT_EQ(va.id, 5u);
  ASSERT_EQ(va.edges.size(), 1u);
  EXPECT_EQ(va.edges[0].first, 1u);
  EXPECT_EQ(va.edges[0].second, 2u);

  // Unknown scalar fields are tolerated (forward compatibility).
  cmd = parse_ok(R"({"op":"del_edge","u":1,"v":2,"note":"x","ts":123})");
  EXPECT_EQ(std::get<EdgeDeleteEvent>(cmd.event).u, 1u);
}

TEST(StreamCodec, CommitIsABatchBoundary) {
  EXPECT_TRUE(parse_ok(commit_ndjson()).commit);
  EXPECT_TRUE(parse_ok(R"({"op":"commit"})").commit);
}

TEST(StreamCodec, RejectsMalformedLines) {
  StreamCommand cmd;
  const char* bad[] = {
      "",                                        // empty
      "add_edge 1 2",                            // not JSON
      R"({"op":"warp","u":1,"v":2})",            // unknown op
      R"({"op":"add_edge","u":1})",              // missing endpoint
      R"({"op":"add_edge","u":1,"v":2,"w":0})",  // weight < 1
      R"({"op":"set_weight","u":1,"v":2})",      // missing weight
      R"({"op":"add_vertex"})",                  // missing id
      R"({"op":"del_edge","u":-1,"v":2})",       // negative id
      R"({"op":"add_edge","u":1,"v":2} extra)",  // trailing garbage
      R"({"u":1,"v":2})",                        // no op at all
  };
  for (const char* line : bad) {
    EXPECT_FALSE(parse_mutation_line(line, cmd)) << line;
  }
}

}  // namespace
}  // namespace aacc
