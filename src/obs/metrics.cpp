#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace aacc::obs {

void Histogram::record(std::uint64_t v) {
  if (count == 0) {
    min = max = v;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  ++count;
  sum += v;
  const int b = v <= 1 ? 0 : std::bit_width(v);  // 2^(b-1) <= v < 2^b
  ++buckets[std::min(b, kBuckets - 1)];
}

void Histogram::merge(const Histogram& o) {
  if (o.count == 0) return;
  if (count == 0) {
    min = o.min;
    max = o.max;
  } else {
    min = std::min(min, o.min);
    max = std::max(max, o.max);
  }
  count += o.count;
  sum += o.sum;
  for (int b = 0; b < kBuckets; ++b) buckets[b] += o.buckets[b];
}

double histogram_quantile(const Histogram& h, double q) {
  if (h.count == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  const double target = q * static_cast<double>(h.count);
  std::uint64_t cum = 0;
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    if (h.buckets[b] == 0) continue;
    const double in_bucket = static_cast<double>(h.buckets[b]);
    if (static_cast<double>(cum) + in_bucket >= target) {
      // Bucket 0 holds {0, 1}; bucket b holds [2^(b-1), 2^b).
      const double lo = b == 0 ? 0.0 : std::ldexp(1.0, b - 1);
      const double hi = std::ldexp(1.0, b == 0 ? 1 : b);
      const double frac =
          std::max(0.0, (target - static_cast<double>(cum)) / in_bucket);
      const double v = lo + frac * (hi - lo);
      return std::min(std::max(v, static_cast<double>(h.min)),
                      static_cast<double>(h.max));
    }
    cum += h.buckets[b];
  }
  return static_cast<double>(h.max);
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value;
}

double MetricsRegistry::gauge_value(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second.value;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& o) {
  for (const auto& [name, c] : o.counters_) counters_[name].add(c.value);
  for (const auto& [name, g] : o.gauges_) gauges_[name].add(g.value);
  for (const auto& [name, h] : o.histograms_) histograms_[name].merge(h);
}

namespace {

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      os << buf;
    } else {
      os << c;
    }
  }
  os << '"';
}

void write_double(std::ostream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

}  // namespace

void MetricsRegistry::to_json(std::ostream& os) const {
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    write_json_string(os, name);
    os << ":" << c.value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    write_json_string(os, name);
    os << ":";
    write_double(os, g.value);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    write_json_string(os, name);
    os << ":{\"count\":" << h.count << ",\"sum\":" << h.sum
       << ",\"min\":" << h.min << ",\"max\":" << h.max << ",\"p50\":";
    write_double(os, histogram_quantile(h, 0.50));
    os << ",\"p95\":";
    write_double(os, histogram_quantile(h, 0.95));
    os << ",\"p99\":";
    write_double(os, histogram_quantile(h, 0.99));
    os << ",\"buckets\":[";
    int last = Histogram::kBuckets - 1;
    while (last > 0 && h.buckets[last] == 0) --last;
    for (int b = 0; b <= last; ++b) {
      if (b != 0) os << ",";
      os << h.buckets[b];
    }
    os << "]}";
  }
  os << "}}";
}

}  // namespace aacc::obs
