// Streaming progress telemetry: a versioned per-step event feed emitted
// live during AnytimeEngine::run (docs/OBSERVABILITY.md §Progress events).
//
// The engine's defining property is that it is *anytime* — intermediate
// estimates improve monotonically between recombination steps — and this
// subsystem makes that visible while the run is still going: each RC step
// the driver rank folds a bounded per-rank summary (dirty fraction, settled
// entries, churn, queue depths, transport health, and the current top-k
// harmonic ranking) and pushes one ProgressEvent through the configured
// sinks. Online convergence estimators (top-k overlap and Kendall tau-b vs
// the previous step) are computed from the bounded top-k lists, never from
// full score vectors, so the cost per step is O(k log k + P·k).
//
// Design constraints (mirroring trace.hpp):
//   * Zero cost when off: no sink configured means the per-step hook is one
//     boolean test; nothing is computed, gathered or allocated.
//   * Emission never perturbs results: events are assembled from a
//     deterministic gather *after* the step's metrics fold, on the driver
//     rank only. Closeness/harmonic outputs are bit-identical with
//     progress on or off (the telemetry gather does add honestly-accounted
//     transport traffic).
//   * Single-writer sinks: see the threading contract on ProgressConfig.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace aacc::obs {

/// One progress event. Serialized as a single NDJSON line (stable field
/// order; see to_ndjson). Schema version kProgressSchemaVersion; consumers
/// must ignore unknown fields and reject unknown versions.
struct ProgressEvent {
  /// "ia" (initial approximation done), "rc_step" (one recombination step
  /// settled), "recovery" (supervised relaunch; `detail` says which kind),
  /// or "done" (run complete; totals).
  std::string phase;
  std::size_t step = 0;  ///< RC step index (0 for "ia"; final count for "done")
  Rank ranks = 0;
  // ---- convergence surface ----
  std::uint64_t dirty = 0;    ///< pending un-sent DV changes, Σ over ranks
  double dirty_fraction = 0;  ///< dirty / columns (0 when columns unknown)
  std::uint64_t settled = 0;  ///< finite (known-distance) DV entries, Σ ranks
  std::uint64_t columns = 0;  ///< total DV entries currently tracked (Σ rows·n)
  // ---- residual churn this step (deltas, not cumulative) ----
  std::uint64_t relaxations = 0;
  std::uint64_t poisons = 0;
  std::uint64_t repairs = 0;
  // ---- frontier / queue depths at drain start ----
  std::uint64_t queue_sum = 0;  ///< Σ queued (vertex,target) work over ranks
  std::uint64_t queue_max = 0;  ///< worst rank
  // ---- transport + recovery health (cumulative) ----
  std::uint64_t bytes = 0;        ///< wire bytes sent so far (all ranks)
  std::uint64_t retransmits = 0;  ///< frames resent so far
  // ---- exchange overlap this step (additive v1 fields; older readers
  // skip them via the unknown-field rule) ----
  double exchange_wait_seconds = 0;  ///< Σ over ranks of blocked recv time
  std::uint64_t inflight_depth = 0;  ///< max sends in flight (worst rank)
  // ---- live critical-path proxy (additive v1 fields): the longest
  // single blocked recv interval any rank saw this step, and the peer
  // whose arrival ended it ("blocked on rank r for t seconds"; -1 when no
  // exchange blocked this step) ----
  double blocked_on_seconds = 0;
  std::int64_t blocked_on_rank = -1;
  std::size_t recoveries = 0;        ///< supervised relaunches so far
  // ---- DV residency (additive v1 fields; zero under the resident store
  // except dv_resident_bytes) ----
  std::uint64_t dv_resident_bytes = 0;  ///< hot (dense) row bytes, Σ ranks
  std::uint64_t dv_cold_bytes = 0;      ///< demoted (compressed) bytes, Σ ranks
  std::uint64_t dv_promotions = 0;      ///< cold→hot decodes so far, Σ ranks
  std::uint64_t dv_demotions = 0;       ///< hot→cold encodes so far, Σ ranks
  // ---- live serving (additive v1 fields, present only when the run is
  // driven by an EngineSession; has_serve gates the JSON fields) ----
  bool has_serve = false;
  std::uint64_t serve_queries = 0;  ///< queries answered so far (all views)
  /// Steps between the current step and the oldest published per-rank
  /// snapshot — the worst-case staleness a query can observe right now.
  std::uint64_t snapshot_age_steps = 0;
  // ---- online quality estimators (rc_step/done only, needs a previous
  // step to compare against; has_estimators gates the JSON fields) ----
  bool has_estimators = false;
  double topk_overlap = 0.0;  ///< |topk ∩ prev topk| / k, in [0, 1]
  double kendall_tau = 0.0;   ///< tau-b over the union of the two top lists
  /// Current global top-k vertex ids, best first (bounded by
  /// ProgressConfig::top_k; empty for recovery events).
  std::vector<VertexId> top;
  /// Recovery kind ("rollback" / "degraded"); empty otherwise.
  std::string detail;
};

inline constexpr int kProgressSchemaVersion = 1;

/// Serializes one event as a single NDJSON line (no trailing newline):
/// stable field order, doubles printed round-trippably, optional fields
/// (estimators, top, detail) omitted when absent.
[[nodiscard]] std::string to_ndjson(const ProgressEvent& ev);

/// Parses one NDJSON line produced by to_ndjson (used by `aacc tail` and
/// tests). Tolerates unknown fields; returns false on malformed input or a
/// schema version newer than kProgressSchemaVersion.
bool parse_progress_event(const std::string& line, ProgressEvent& out);

/// Sink interface. Implementations receive events strictly serially (see
/// the threading contract on ProgressConfig) and must not throw: an
/// exception from on_event unwinds through the rank-0 worker thread and
/// aborts the run as a rank failure.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_event(const ProgressEvent& ev) = 0;
};

/// Swallows everything (placeholder wiring / benchmarks).
class NullSink final : public EventSink {
 public:
  void on_event(const ProgressEvent&) override {}
};

/// Appends one NDJSON line per event to a file, flushing after every line
/// so `aacc tail` and crash post-mortems see a live, complete prefix.
class NdjsonFileSink final : public EventSink {
 public:
  explicit NdjsonFileSink(const std::string& path);
  ~NdjsonFileSink() override;
  void on_event(const ProgressEvent& ev) override;
  /// False when the path could not be opened (events are then dropped;
  /// diagnostics must not fail the run — same policy as trace export).
  [[nodiscard]] bool ok() const { return file_ != nullptr; }

 private:
  std::FILE* file_ = nullptr;
};

using ProgressCallback = std::function<void(const ProgressEvent&)>;

/// Invokes a user callback per event.
class CallbackSink final : public EventSink {
 public:
  explicit CallbackSink(ProgressCallback cb) : cb_(std::move(cb)) {}
  void on_event(const ProgressEvent& ev) override {
    if (cb_) cb_(ev);
  }

 private:
  ProgressCallback cb_;
};

/// Progress-feed configuration (EngineConfig::progress). The feed is active
/// when any sink is configured; all configured sinks receive every event.
///
/// Threading / reentrancy contract: sinks and the callback are invoked
/// *serially*, never concurrently — from the driver-rank (rank 0) worker
/// thread after each RC step's deterministic metrics fold, and from the
/// supervising driver thread for recovery and completion events (rank
/// threads are joined at those points). The callback is NOT invoked on the
/// thread that called AnytimeEngine::run during the run itself. It must not
/// call back into the engine, must not block for long (it stalls the rank
/// world's next collective), and must not throw (a throw aborts the run).
struct ProgressConfig {
  /// NDJSON file sink: one event per line, appended and flushed live.
  std::string path;
  /// Callback sink.
  ProgressCallback callback;
  /// Custom sink (tests, alternative encoders); shared so the caller can
  /// keep inspecting it after run() returns.
  std::shared_ptr<EventSink> sink;
  /// Bound on the per-rank and merged top lists driving the online
  /// estimators (memory and per-step cost O(top_k), not O(n)). Must be > 0
  /// when the feed is active (EngineConfig::validate).
  std::size_t top_k = 32;

  [[nodiscard]] bool active() const {
    return !path.empty() || callback != nullptr || sink != nullptr;
  }
};

/// Owns the configured sinks and the estimator state for one run. Driver
/// owned (survives supervised attempts); touched only under the contract
/// documented on ProgressConfig, so no locking.
class ProgressEmitter {
 public:
  explicit ProgressEmitter(const ProgressConfig& cfg);

  /// Fans the event out to every sink.
  void emit(const ProgressEvent& ev);

  /// False when the NDJSON file sink could not open its path.
  [[nodiscard]] bool file_ok() const;

  [[nodiscard]] std::size_t top_k() const { return top_k_; }

  /// Estimator state: the previous step's merged top-k (id, score) list,
  /// best first. Written by the driver rank between emits; the driver
  /// thread seeds/reads it only while rank threads are joined.
  std::vector<std::pair<VertexId, double>> prev_top;
  /// Supervised-relaunch count mirrored into per-step events; the driver
  /// thread updates it between attempts.
  std::size_t recoveries = 0;

 private:
  std::vector<std::shared_ptr<EventSink>> sinks_;
  std::shared_ptr<NdjsonFileSink> file_sink_;
  std::size_t top_k_;
};

}  // namespace aacc::obs
