#include "obs/progress.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace aacc::obs {

namespace {

// Round-trippable double formatting, matching RunStats::to_json.
void jdouble(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

}  // namespace

std::string to_ndjson(const ProgressEvent& ev) {
  std::ostringstream os;
  os << "{\"v\":" << kProgressSchemaVersion << ",\"phase\":\"" << ev.phase
     << "\",\"step\":" << ev.step << ",\"ranks\":" << ev.ranks
     << ",\"dirty\":" << ev.dirty << ",\"dirty_fraction\":";
  jdouble(os, ev.dirty_fraction);
  os << ",\"settled\":" << ev.settled << ",\"columns\":" << ev.columns
     << ",\"relaxations\":" << ev.relaxations << ",\"poisons\":" << ev.poisons
     << ",\"repairs\":" << ev.repairs << ",\"queue_sum\":" << ev.queue_sum
     << ",\"queue_max\":" << ev.queue_max << ",\"bytes\":" << ev.bytes
     << ",\"retransmits\":" << ev.retransmits
     << ",\"exchange_wait_seconds\":";
  jdouble(os, ev.exchange_wait_seconds);
  os << ",\"inflight_depth\":" << ev.inflight_depth
     << ",\"blocked_on_rank\":" << ev.blocked_on_rank
     << ",\"blocked_on_seconds\":";
  jdouble(os, ev.blocked_on_seconds);
  os << ",\"recoveries\":" << ev.recoveries
     << ",\"dv_resident_bytes\":" << ev.dv_resident_bytes
     << ",\"dv_cold_bytes\":" << ev.dv_cold_bytes
     << ",\"dv_promotions\":" << ev.dv_promotions
     << ",\"dv_demotions\":" << ev.dv_demotions;
  if (ev.has_serve) {
    os << ",\"serve_queries\":" << ev.serve_queries
       << ",\"snapshot_age_steps\":" << ev.snapshot_age_steps;
  }
  if (ev.has_estimators) {
    os << ",\"topk_overlap\":";
    jdouble(os, ev.topk_overlap);
    os << ",\"kendall_tau\":";
    jdouble(os, ev.kendall_tau);
  }
  if (!ev.top.empty()) {
    os << ",\"top\":[";
    for (std::size_t i = 0; i < ev.top.size(); ++i) {
      if (i != 0) os << ',';
      os << ev.top[i];
    }
    os << ']';
  }
  if (!ev.detail.empty()) os << ",\"detail\":\"" << ev.detail << '"';
  os << '}';
  return os.str();
}

// ------------------------------------------------- minimal NDJSON parsing
// Enough JSON for the flat schema to_ndjson emits (plus unknown-field
// skipping so older readers tolerate newer events): strings without exotic
// escapes, numbers, bools, null, and nested arrays/objects.

namespace {

struct Cursor {
  const char* p;
  const char* end;

  void ws() {
    while (p < end && std::isspace(static_cast<unsigned char>(*p)) != 0) ++p;
  }
  bool eat(char c) {
    ws();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }
  [[nodiscard]] bool peek(char c) {
    ws();
    return p < end && *p == c;
  }
};

bool parse_json_string(Cursor& c, std::string& out) {
  if (!c.eat('"')) return false;
  out.clear();
  while (c.p < c.end && *c.p != '"') {
    if (*c.p == '\\') {
      ++c.p;
      if (c.p >= c.end) return false;
      switch (*c.p) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        default: return false;  // \uXXXX etc. never emitted by to_ndjson
      }
      ++c.p;
    } else {
      out.push_back(*c.p++);
    }
  }
  return c.eat('"');
}

bool parse_json_number(Cursor& c, double& out) {
  c.ws();
  char* after = nullptr;
  out = std::strtod(c.p, &after);
  if (after == c.p || after > c.end) return false;
  c.p = after;
  return true;
}

// Skips any JSON value (forward-compatibility for unknown fields).
bool skip_json_value(Cursor& c) {
  c.ws();
  if (c.p >= c.end) return false;
  if (*c.p == '"') {
    std::string tmp;
    return parse_json_string(c, tmp);
  }
  if (*c.p == '{' || *c.p == '[') {
    const char open = *c.p;
    const char close = open == '{' ? '}' : ']';
    ++c.p;
    if (c.eat(close)) return true;
    for (;;) {
      if (open == '{') {
        std::string key;
        if (!parse_json_string(c, key) || !c.eat(':')) return false;
      }
      if (!skip_json_value(c)) return false;
      if (c.eat(close)) return true;
      if (!c.eat(',')) return false;
    }
  }
  if (std::strncmp(c.p, "true", 4) == 0) return c.p += 4, true;
  if (std::strncmp(c.p, "false", 5) == 0) return c.p += 5, true;
  if (std::strncmp(c.p, "null", 4) == 0) return c.p += 4, true;
  double d = 0;
  return parse_json_number(c, d);
}

bool parse_vertex_array(Cursor& c, std::vector<VertexId>& out) {
  if (!c.eat('[')) return false;
  out.clear();
  if (c.eat(']')) return true;
  for (;;) {
    double d = 0;
    if (!parse_json_number(c, d) || d < 0) return false;
    out.push_back(static_cast<VertexId>(d));
    if (c.eat(']')) return true;
    if (!c.eat(',')) return false;
  }
}

}  // namespace

bool parse_progress_event(const std::string& line, ProgressEvent& out) {
  Cursor c{line.data(), line.data() + line.size()};
  if (!c.eat('{')) return false;
  out = ProgressEvent{};
  bool saw_version = false;
  bool saw_overlap = false;
  bool saw_tau = false;
  if (!c.eat('}')) {
    for (;;) {
      std::string key;
      if (!parse_json_string(c, key) || !c.eat(':')) return false;
      double num = 0;
      const auto u64 = [&](std::uint64_t& field) {
        if (!parse_json_number(c, num) || num < 0) return false;
        field = static_cast<std::uint64_t>(num);
        return true;
      };
      if (key == "v") {
        if (!parse_json_number(c, num)) return false;
        if (static_cast<int>(num) > kProgressSchemaVersion) return false;
        saw_version = true;
      } else if (key == "phase") {
        if (!parse_json_string(c, out.phase)) return false;
      } else if (key == "detail") {
        if (!parse_json_string(c, out.detail)) return false;
      } else if (key == "step") {
        if (!parse_json_number(c, num) || num < 0) return false;
        out.step = static_cast<std::size_t>(num);
      } else if (key == "ranks") {
        if (!parse_json_number(c, num)) return false;
        out.ranks = static_cast<Rank>(num);
      } else if (key == "recoveries") {
        if (!parse_json_number(c, num) || num < 0) return false;
        out.recoveries = static_cast<std::size_t>(num);
      } else if (key == "dirty") {
        if (!u64(out.dirty)) return false;
      } else if (key == "dirty_fraction") {
        if (!parse_json_number(c, out.dirty_fraction)) return false;
      } else if (key == "settled") {
        if (!u64(out.settled)) return false;
      } else if (key == "columns") {
        if (!u64(out.columns)) return false;
      } else if (key == "relaxations") {
        if (!u64(out.relaxations)) return false;
      } else if (key == "poisons") {
        if (!u64(out.poisons)) return false;
      } else if (key == "repairs") {
        if (!u64(out.repairs)) return false;
      } else if (key == "queue_sum") {
        if (!u64(out.queue_sum)) return false;
      } else if (key == "queue_max") {
        if (!u64(out.queue_max)) return false;
      } else if (key == "bytes") {
        if (!u64(out.bytes)) return false;
      } else if (key == "retransmits") {
        if (!u64(out.retransmits)) return false;
      } else if (key == "exchange_wait_seconds") {
        if (!parse_json_number(c, out.exchange_wait_seconds)) return false;
      } else if (key == "inflight_depth") {
        if (!u64(out.inflight_depth)) return false;
      } else if (key == "blocked_on_rank") {
        double v = 0;  // signed (-1 = no exchange blocked)
        if (!parse_json_number(c, v)) return false;
        out.blocked_on_rank = static_cast<std::int64_t>(v);
      } else if (key == "blocked_on_seconds") {
        if (!parse_json_number(c, out.blocked_on_seconds)) return false;
      } else if (key == "dv_resident_bytes") {
        if (!u64(out.dv_resident_bytes)) return false;
      } else if (key == "dv_cold_bytes") {
        if (!u64(out.dv_cold_bytes)) return false;
      } else if (key == "dv_promotions") {
        if (!u64(out.dv_promotions)) return false;
      } else if (key == "dv_demotions") {
        if (!u64(out.dv_demotions)) return false;
      } else if (key == "serve_queries") {
        if (!u64(out.serve_queries)) return false;
        out.has_serve = true;
      } else if (key == "snapshot_age_steps") {
        if (!u64(out.snapshot_age_steps)) return false;
        out.has_serve = true;
      } else if (key == "topk_overlap") {
        if (!parse_json_number(c, out.topk_overlap)) return false;
        saw_overlap = true;
      } else if (key == "kendall_tau") {
        if (!parse_json_number(c, out.kendall_tau)) return false;
        saw_tau = true;
      } else if (key == "top") {
        if (!parse_vertex_array(c, out.top)) return false;
      } else {
        if (!skip_json_value(c)) return false;
      }
      if (c.eat('}')) break;
      if (!c.eat(',')) return false;
    }
  }
  c.ws();
  if (c.p != c.end) return false;  // trailing garbage
  out.has_estimators = saw_overlap && saw_tau;
  return saw_version && !out.phase.empty();
}

// ------------------------------------------------------------------ sinks

NdjsonFileSink::NdjsonFileSink(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")) {}

NdjsonFileSink::~NdjsonFileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void NdjsonFileSink::on_event(const ProgressEvent& ev) {
  if (file_ == nullptr) return;
  const std::string line = to_ndjson(ev);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);  // live tailing and crash post-mortems see every line
}

ProgressEmitter::ProgressEmitter(const ProgressConfig& cfg)
    : top_k_(cfg.top_k) {
  if (!cfg.path.empty()) {
    file_sink_ = std::make_shared<NdjsonFileSink>(cfg.path);
    sinks_.push_back(file_sink_);
  }
  if (cfg.callback) sinks_.push_back(std::make_shared<CallbackSink>(cfg.callback));
  if (cfg.sink) sinks_.push_back(cfg.sink);
}

void ProgressEmitter::emit(const ProgressEvent& ev) {
  for (const auto& sink : sinks_) sink->on_event(ev);
}

bool ProgressEmitter::file_ok() const {
  return file_sink_ == nullptr || file_sink_->ok();
}

}  // namespace aacc::obs
