// Metrics registry: named counters, gauges, and histograms that the
// engine's ledger (`RunStats`) is derived from, so cost accounting has one
// source of truth.
//
// Concurrency model: a registry is single-threaded by construction — the
// driver owns one registry per rank, each rank thread touches only its own
// (folding per-step deltas once per RC step, never from inner loops), and
// the driver merges them after `World::run` has joined every thread.
// Merging iterates ranks in order and instruments sums in std::map name
// order, so derived floating-point totals are bit-stable run to run.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

namespace aacc::obs {

/// Monotone integer count (bytes, messages, relaxations, ...).
struct Counter {
  std::uint64_t value = 0;
  void add(std::uint64_t n) { value += n; }
};

/// Floating-point accumulator / last-value holder (CPU seconds, modeled
/// network seconds, imbalance ratios).
struct Gauge {
  double value = 0.0;
  void add(double v) { value += v; }
  void set(double v) { value = v; }
};

/// Power-of-two bucketed distribution (queue depths, message sizes).
/// Bucket b counts samples in [2^(b-1), 2^b); bucket 0 counts zeros and
/// ones.
struct Histogram {
  static constexpr int kBuckets = 32;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::uint64_t buckets[kBuckets] = {};

  void record(std::uint64_t v);
  void merge(const Histogram& o);
};

/// Quantile estimate from the power-of-two buckets: finds the bucket that
/// contains the q-th sample and interpolates linearly inside it, clamped
/// to the exact [min, max] the histogram tracked. q in [0, 1]; returns 0
/// for an empty histogram. Exact for single-bucket distributions, within
/// one bucket width (a factor of two) otherwise.
[[nodiscard]] double histogram_quantile(const Histogram& h, double q);

/// Name-keyed registry. Lookup is by string and returns a stable
/// reference; hot paths resolve names once and keep the pointer.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  /// Value of a counter, 0 when absent (reader-side convenience).
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;
  /// Value of a gauge, 0.0 when absent.
  [[nodiscard]] double gauge_value(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  /// Folds `o` into this registry: counters and gauges add, histograms
  /// merge. Instruments are visited in name order; callers control rank
  /// order, which together fixes the floating-point summation order.
  void merge(const MetricsRegistry& o);

  /// Deterministic JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{...}} with keys in
  /// name order and gauges printed with %.17g (round-trippable).
  void to_json(std::ostream& os) const;

  [[nodiscard]] bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace aacc::obs
