// Span tracer: per-track single-writer ring buffers of begin/end/instant
// events, merged after a run into a Chrome trace-event JSON that loads in
// chrome://tracing and Perfetto.
//
// Design constraints (docs/OBSERVABILITY.md):
//   * Near-zero cost when tracing is off: every call site holds a
//     TraceTrack* that is null when disabled, and the inline helpers below
//     compile down to one predictable branch.
//   * No locks on the hot path: a TraceTrack is owned by exactly one thread
//     at a time (rank threads own their rank track; drain/IA shard workers
//     own their shard subtrack; ownership hand-offs are synchronized by the
//     worker-pool joins that already order the algorithm itself). Buffers
//     are only read after World::run has joined every rank thread.
//   * Bounded memory: each track is a ring of `track_capacity` events.
//     When full, new events are dropped (and counted) rather than
//     overwriting older ones — dropping the oldest would orphan END events
//     and corrupt the span tree; dropping the newest merely truncates the
//     tail, and the exporter closes any spans left open.
//   * Deterministic output for tests: with TraceConfig::logical_clock each
//     track stamps events with its own monotone tick counter instead of the
//     wall clock, so a deterministic run produces a byte-identical trace.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace aacc::obs {

/// Event kinds, mirroring the Chrome trace-event phases we emit
/// ("B"/"E"/"i").
enum class EventKind : std::uint8_t { kBegin, kEnd, kInstant };

/// One recorded event. `name` and `arg_name` must be string literals (or
/// otherwise outlive the tracer): the hot path stores pointers, never
/// copies.
struct TraceEvent {
  const char* name = nullptr;
  const char* arg_name = nullptr;  ///< optional integer argument label
  std::uint64_t ts_ns = 0;         ///< wall ns since tracer epoch, or tick
  std::uint64_t arg = 0;
  EventKind kind = EventKind::kInstant;
};

struct TraceConfig {
  /// Master switch. Off = the engine never constructs a Tracer and every
  /// instrumentation site sees a null track.
  bool enabled = false;
  /// When non-empty, AnytimeEngine::run writes the merged Chrome trace
  /// JSON here after the run (the merged trace is also always available in
  /// RunResult::trace while enabled).
  std::string path;
  /// Deterministic per-track tick timestamps instead of the wall clock
  /// (golden-file tests; see header comment).
  bool logical_clock = false;
  /// Stamp every transport frame with a 64-bit flow id (obs/causal.hpp)
  /// and record flow:send / flow:recv instants, enabling cross-rank
  /// causal stitching and `aacc analyze --critical-path`. Adds 8 bytes
  /// per frame on the wire; off = frames are bit-identical to the
  /// unstamped v2.1 format. Only honored while `enabled` is true.
  bool flow_stamping = false;
  /// Ring capacity per main track, in events (shard subtracks get 1/16 of
  /// this, min 64). Overflowing events are dropped and counted
  /// (TraceTrack::dropped).
  std::size_t track_capacity = 1 << 16;
};

class Tracer;

/// Single-writer event ring. Obtain from a Tracer; never share between
/// concurrently running threads.
class TraceTrack {
 public:
  void begin(const char* name) { push(name, nullptr, 0, EventKind::kBegin); }
  void begin(const char* name, const char* arg_name, std::uint64_t arg) {
    push(name, arg_name, arg, EventKind::kBegin);
  }
  void end(const char* name) { push(name, nullptr, 0, EventKind::kEnd); }
  void instant(const char* name) { push(name, nullptr, 0, EventKind::kInstant); }
  void instant(const char* name, const char* arg_name, std::uint64_t arg) {
    push(name, arg_name, arg, EventKind::kInstant);
  }

  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::size_t size() const { return used_; }
  /// True when this track stamps deterministic tick timestamps. Callers
  /// with inherently wall-clock-derived args (e.g. measured wait times)
  /// must skip them on logical-clock tracks to keep golden traces stable.
  [[nodiscard]] bool logical_clock() const { return logical_clock_; }

 private:
  friend class Tracer;
  TraceTrack(std::size_t capacity, bool logical_clock,
             std::uint64_t epoch_ns)
      : logical_clock_(logical_clock), epoch_ns_(epoch_ns) {
    ring_.resize(capacity);
  }

  void push(const char* name, const char* arg_name, std::uint64_t arg,
            EventKind kind);

  std::vector<TraceEvent> ring_;
  std::size_t used_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t tick_ = 0;
  bool logical_clock_ = false;
  std::uint64_t epoch_ns_ = 0;
};

/// A merged, export-ready trace: every surviving event tagged with its
/// (pid, tid) track coordinates, sorted by (pid, tid, ts) so the output is
/// deterministic whenever the per-track streams are.
struct Trace {
  struct Entry {
    std::int32_t pid = 0;  ///< rank (kDriverPid for the driver track)
    std::int32_t tid = 0;  ///< 0 = rank main track, 1+s = shard subtrack s
    TraceEvent ev;
  };
  std::vector<Entry> events;
  std::uint64_t dropped = 0;  ///< Σ ring overflow across all tracks

  [[nodiscard]] bool empty() const { return events.empty(); }
};

/// The driver track's pid in merged traces (sorts after every rank).
inline constexpr std::int32_t kDriverPid = std::numeric_limits<std::int32_t>::max();

/// Owns one main track per rank, `subtracks` shard subtracks per rank, and
/// one driver track. Construction allocates every ring up front so the hot
/// path never allocates.
class Tracer {
 public:
  Tracer(Rank num_ranks, std::size_t subtracks, const TraceConfig& cfg);

  [[nodiscard]] TraceTrack& track(Rank r) {
    AACC_CHECK(r >= 0 && r < num_ranks_);
    return *tracks_[static_cast<std::size_t>(r) * (1 + subtracks_)];
  }
  /// Shard subtrack `s` of rank `r` (drain shards, IA workers). Worker 0
  /// is the rank thread itself but still records on its subtrack so shard
  /// timelines are comparable across workers.
  [[nodiscard]] TraceTrack& subtrack(Rank r, std::size_t s) {
    AACC_CHECK(r >= 0 && r < num_ranks_ && s < subtracks_);
    return *tracks_[static_cast<std::size_t>(r) * (1 + subtracks_) + 1 + s];
  }
  [[nodiscard]] TraceTrack& driver() { return *tracks_.back(); }

  [[nodiscard]] Rank num_ranks() const { return num_ranks_; }
  [[nodiscard]] std::size_t subtracks() const { return subtracks_; }

  /// Merges every track into one sorted, export-ready Trace. Call only
  /// after all writer threads have been joined.
  [[nodiscard]] Trace merge() const;

 private:
  Rank num_ranks_;
  std::size_t subtracks_;
  std::vector<std::unique_ptr<TraceTrack>> tracks_;
};

/// Serializes a merged trace as Chrome trace-event JSON (one line per
/// event, stable field order, process/thread metadata first; spans left
/// open by a crashed rank are closed at the track's last timestamp).
/// Loadable by chrome://tracing and https://ui.perfetto.dev.
void write_chrome_trace(std::ostream& os, const Trace& trace);

/// Convenience: write_chrome_trace to a file. Returns false (and leaves no
/// partial file behind) when the path cannot be opened.
bool write_chrome_trace_file(const std::string& path, const Trace& trace);

/// Null-safe RAII span: begins on construction, ends on destruction (also
/// on exception unwind, which keeps begin/end balanced through crash
/// paths). No-op when the track is null.
class ScopedSpan {
 public:
  ScopedSpan(TraceTrack* t, const char* name) : t_(t), name_(name) {
    if (t_ != nullptr) t_->begin(name_);
  }
  ScopedSpan(TraceTrack* t, const char* name, const char* arg_name,
             std::uint64_t arg)
      : t_(t), name_(name) {
    if (t_ != nullptr) t_->begin(name_, arg_name, arg);
  }
  ~ScopedSpan() {
    if (t_ != nullptr) t_->end(name_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceTrack* t_;
  const char* name_;
};

}  // namespace aacc::obs
