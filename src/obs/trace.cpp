#include "obs/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <ostream>

namespace aacc::obs {
namespace {

std::uint64_t wall_now_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

}  // namespace

void TraceTrack::push(const char* name, const char* arg_name,
                      std::uint64_t arg, EventKind kind) {
  if (used_ == ring_.size()) {
    ++dropped_;
    return;
  }
  TraceEvent& ev = ring_[used_++];
  ev.name = name;
  ev.arg_name = arg_name;
  // Logical ticks are scaled so they export as whole microseconds, which
  // keeps golden trace files readable.
  ev.ts_ns = logical_clock_ ? ++tick_ * 1000 : wall_now_ns() - epoch_ns_;
  ev.arg = arg;
  ev.kind = kind;
}

Tracer::Tracer(Rank num_ranks, std::size_t subtracks, const TraceConfig& cfg)
    : num_ranks_(num_ranks), subtracks_(subtracks) {
  AACC_CHECK(num_ranks >= 1);
  AACC_CHECK(cfg.track_capacity > 0);
  const std::uint64_t epoch = cfg.logical_clock ? 0 : wall_now_ns();
  // Shard subtracks carry a handful of spans per RC step, not per-message
  // instants, so they get a fraction of the main-track ring — this keeps a
  // 16-rank × 8-shard tracer in the tens of megabytes.
  const std::size_t sub_capacity =
      std::max<std::size_t>(cfg.track_capacity / 16, 64);
  tracks_.reserve(static_cast<std::size_t>(num_ranks) * (1 + subtracks) + 1);
  for (Rank r = 0; r < num_ranks; ++r) {
    tracks_.emplace_back(
        new TraceTrack(cfg.track_capacity, cfg.logical_clock, epoch));
    for (std::size_t s = 0; s < subtracks; ++s) {
      tracks_.emplace_back(
          new TraceTrack(sub_capacity, cfg.logical_clock, epoch));
    }
  }
  tracks_.emplace_back(
      new TraceTrack(cfg.track_capacity, cfg.logical_clock, epoch));
}

Trace Tracer::merge() const {
  Trace out;
  std::size_t n = 0;
  for (const auto& t : tracks_) n += t->used_;
  out.events.reserve(n);
  // Tracks are stored rank-major with the driver last; per-track streams
  // are chronological, so appending in track order yields the documented
  // (pid, tid, ts) ordering without a sort.
  for (Rank r = 0; r < num_ranks_; ++r) {
    for (std::size_t s = 0; s <= subtracks_; ++s) {
      const TraceTrack& t =
          *tracks_[static_cast<std::size_t>(r) * (1 + subtracks_) + s];
      out.dropped += t.dropped_;
      for (std::size_t i = 0; i < t.used_; ++i) {
        out.events.push_back({r, static_cast<std::int32_t>(s), t.ring_[i]});
      }
    }
  }
  const TraceTrack& drv = *tracks_.back();
  out.dropped += drv.dropped_;
  for (std::size_t i = 0; i < drv.used_; ++i) {
    out.events.push_back({kDriverPid, 0, drv.ring_[i]});
  }
  return out;
}

namespace {

void write_json_string(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      os << buf;
    } else {
      os << c;
    }
  }
  os << '"';
}

void write_ts(std::ostream& os, std::uint64_t ts_ns) {
  // Chrome trace-event timestamps are microseconds; keep nanosecond
  // resolution with a fixed three-decimal format so output is stable.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ts_ns / 1000,
                static_cast<unsigned>(ts_ns % 1000));
  os << buf;
}

void write_track_ids(std::ostream& os, std::int32_t pid, std::int32_t tid) {
  os << "\"pid\":" << pid << ",\"tid\":" << tid;
}

void write_meta(std::ostream& os, const char* what, std::int32_t pid,
                std::int32_t tid, const std::string& name, bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << "{\"name\":\"" << what << "\",\"ph\":\"M\",";
  write_track_ids(os, pid, tid);
  os << ",\"ts\":0,\"args\":{\"name\":";
  write_json_string(os, name.c_str());
  os << "}}";
}

std::string pid_name(std::int32_t pid) {
  return pid == kDriverPid ? "driver" : "rank " + std::to_string(pid);
}

std::string tid_name(std::int32_t pid, std::int32_t tid) {
  if (pid == kDriverPid) return "driver";
  return tid == 0 ? "main" : "shard " + std::to_string(tid - 1);
}

}  // namespace

void write_chrome_trace(std::ostream& os, const Trace& trace) {
  os << "{\"traceEvents\":[\n";
  bool first = true;
  // Metadata first: process/thread names for every track that recorded
  // anything, in the merged (already sorted) track order.
  std::int32_t cur_pid = -1, cur_tid = -1;
  bool have_cur = false;
  for (const Trace::Entry& e : trace.events) {
    if (have_cur && e.pid == cur_pid && e.tid == cur_tid) continue;
    if (!have_cur || e.pid != cur_pid) {
      write_meta(os, "process_name", e.pid, 0, pid_name(e.pid), first);
    }
    write_meta(os, "thread_name", e.pid, e.tid, tid_name(e.pid, e.tid),
               first);
    cur_pid = e.pid;
    cur_tid = e.tid;
    have_cur = true;
  }
  // Events, one per line, stable field order. A per-track span stack
  // balances B/E pairs: spans left open (rank crashed, ring overflowed)
  // are closed at the track's final timestamp so viewers never see a
  // dangling span swallow the rest of the timeline.
  struct Open {
    const char* name;
  };
  std::vector<Open> stack;
  std::uint64_t track_last_ts = 0;
  auto close_open_spans = [&]() {
    while (!stack.empty()) {
      if (!first) os << ",\n";
      first = false;
      os << "{\"name\":";
      write_json_string(os, stack.back().name);
      os << ",\"ph\":\"E\",";
      write_track_ids(os, cur_pid, cur_tid);
      os << ",\"ts\":";
      write_ts(os, track_last_ts);
      os << "}";
      stack.pop_back();
    }
  };
  cur_pid = -1;
  cur_tid = -1;
  have_cur = false;
  for (const Trace::Entry& e : trace.events) {
    if (have_cur && (e.pid != cur_pid || e.tid != cur_tid)) {
      close_open_spans();
    }
    if (!have_cur || e.pid != cur_pid || e.tid != cur_tid) {
      cur_pid = e.pid;
      cur_tid = e.tid;
      have_cur = true;
    }
    track_last_ts = e.ev.ts_ns;
    switch (e.ev.kind) {
      case EventKind::kBegin:
        stack.push_back({e.ev.name});
        break;
      case EventKind::kEnd:
        if (!stack.empty()) stack.pop_back();
        break;
      case EventKind::kInstant:
        break;
    }
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":";
    write_json_string(os, e.ev.name);
    os << ",\"ph\":\""
       << (e.ev.kind == EventKind::kBegin
               ? 'B'
               : e.ev.kind == EventKind::kEnd ? 'E' : 'i')
       << "\",";
    write_track_ids(os, e.pid, e.tid);
    os << ",\"ts\":";
    write_ts(os, e.ev.ts_ns);
    if (e.ev.kind == EventKind::kInstant) os << ",\"s\":\"t\"";
    if (e.ev.arg_name != nullptr) {
      os << ",\"args\":{";
      write_json_string(os, e.ev.arg_name);
      os << ":" << e.ev.arg << "}";
    }
    os << "}";
    // Flow instants additionally get a Perfetto flow event ("s" opens the
    // arrow at the sender, "f" binds it at the receiver) so the stitched
    // causality renders as arrows in the trace viewer. The extra line only
    // appears for flow:send / flow:recv instants, keeping every other
    // trace byte-identical to the unstamped format.
    if (e.ev.kind == EventKind::kInstant && e.ev.arg_name != nullptr &&
        std::strcmp(e.ev.arg_name, "flow") == 0) {
      const bool is_send = std::strcmp(e.ev.name, "flow:send") == 0;
      const bool is_recv = !is_send && std::strcmp(e.ev.name, "flow:recv") == 0;
      if (is_send || is_recv) {
        os << ",\n{\"name\":\"flow\",\"cat\":\"flow\",\"ph\":\""
           << (is_send ? "s" : "f") << "\",";
        if (is_recv) os << "\"bp\":\"e\",";
        os << "\"id\":" << e.ev.arg << ",";
        write_track_ids(os, e.pid, e.tid);
        os << ",\"ts\":";
        write_ts(os, e.ev.ts_ns);
        os << "}";
      }
    }
  }
  close_open_spans();
  os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":"
     << trace.dropped << "}}\n";
}

bool write_chrome_trace_file(const std::string& path, const Trace& trace) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  write_chrome_trace(os, trace);
  return static_cast<bool>(os);
}

}  // namespace aacc::obs
