// Causal trace stitching (docs/OBSERVABILITY.md §Causal flows).
//
// Flow ids ride the wire: every transport frame carries a packed 64-bit id
// `{src_rank, attempt, step, seq}`; the sender records a `flow:send`
// instant and the receiver a `flow:recv` instant with the same id. This
// module stitches the merged per-rank trace into a causal DAG — flow edges
// between ranks, program order within a rank — and computes the critical
// path of each RC epoch: the single chain of (compute, wire) segments that
// determined the step's makespan, attributed as "blocked on rank r /
// phase p for t seconds".
//
// Timestamps: the critical-path walk needs cross-track comparable clocks.
// Wall-clock traces share one CLOCK_MONOTONIC epoch, so attribution times
// are real seconds. Logical-clock traces tick per track — flow *edges*
// (matching, attempt isolation, re-homing) are still exact, but step
// attribution is skipped because tick counts are not comparable across
// ranks.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace aacc::obs {

class Trace;

// ------------------------------------------------------------- flow ids
//
// Packed layout (additive wire v2.2; 0 is reserved for "unstamped"):
//   bits 52..63  src rank   (12 bits, P <= 4096)
//   bits 44..51  attempt    (8 bits; bumps on every contained run, so a
//                            rollback replay can never match pre-rollback
//                            sends — attempt isolation is structural)
//   bits 24..43  step       (20 bits, RC step the sender was in)
//   bits  0..23  seq        (24 bits, per-sender monotone, starts at 1)

struct FlowParts {
  std::int32_t src = 0;
  std::uint32_t attempt = 0;
  std::uint32_t step = 0;
  std::uint32_t seq = 0;
};

constexpr std::uint64_t pack_flow_id(std::int32_t src, std::uint32_t attempt,
                                     std::uint32_t step, std::uint32_t seq) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src) & 0xfffu)
          << 52) |
         (static_cast<std::uint64_t>(attempt & 0xffu) << 44) |
         (static_cast<std::uint64_t>(step & 0xfffffu) << 24) |
         static_cast<std::uint64_t>(seq & 0xffffffu);
}

constexpr FlowParts unpack_flow_id(std::uint64_t id) {
  FlowParts p;
  p.src = static_cast<std::int32_t>((id >> 52) & 0xfffu);
  p.attempt = static_cast<std::uint32_t>((id >> 44) & 0xffu);
  p.step = static_cast<std::uint32_t>((id >> 24) & 0xfffffu);
  p.seq = static_cast<std::uint32_t>(id & 0xffffffu);
  return p;
}

// --------------------------------------------------------- causal model

/// One trace event in the stitcher's neutral representation — either
/// converted from an in-memory Trace or parsed back out of a Chrome trace
/// JSON file (`load_chrome_trace`).
struct CausalEvent {
  std::int32_t pid = 0;  ///< rank, or kDriverPid
  std::int32_t tid = 0;  ///< 0 = rank main track
  std::string name;
  char ph = 'i';  ///< 'B', 'E', or 'i'
  double ts_us = 0.0;
  bool has_arg = false;
  std::string arg_name;
  std::uint64_t arg = 0;
};

/// A matched flow:send -> flow:recv pair: one cross-rank DAG edge.
struct FlowEdge {
  std::int32_t src_rank = 0;
  std::int32_t dst_rank = 0;
  std::uint32_t attempt = 0;
  std::uint32_t step = 0;
  std::uint32_t seq = 0;
  double send_ts_us = 0.0;
  double recv_ts_us = 0.0;
};

/// One (rank, phase, seconds) segment of a step's critical path. `phase`
/// is the innermost open span at that time on the rank's main track
/// ("idle" when none), or the synthetic phase "wire" for the in-flight
/// interval of a flow edge (attributed to the sending rank).
struct PhaseCost {
  std::int32_t rank = -1;
  std::string phase;
  double seconds = 0.0;
};

/// Critical-path attribution of one RC epoch. The makespan window is
/// [earliest rank begin, latest rank end] of the step's `rc_step` spans;
/// the backward walk from the straggler's end partitions that window
/// exactly, so critical_path_seconds == makespan_seconds by construction.
struct StepAttribution {
  std::size_t step = 0;
  double makespan_seconds = 0.0;
  double critical_path_seconds = 0.0;
  std::int32_t straggler = -1;  ///< rank whose rc_step span ended last
  /// Aggregated per (rank, phase), largest first.
  std::vector<PhaseCost> blocked_on;
  /// The chain in walk order: straggler backward to the window start.
  std::vector<PhaseCost> chain;
};

/// The stitched result: flow-edge accounting plus per-step attribution.
struct CausalAnalysis {
  std::size_t events = 0;
  std::size_t flow_sends = 0;
  std::size_t flow_recvs = 0;
  std::size_t matched_edges = 0;
  /// Unmatched sends in a trace that contains recovery instants: the
  /// message's receiver died (or the sender's attempt was abandoned) and
  /// the shard was re-homed — expected, not a stitching bug.
  std::size_t rehomed_sends = 0;
  /// Unmatched sends with no recovery in the trace — a genuinely dangling
  /// message (dropped past retry, or a trace-ring overflow ate the recv).
  std::size_t dangling_sends = 0;
  /// Recvs whose send instant is missing (trace-ring overflow).
  std::size_t unmatched_recvs = 0;
  bool wall_clock = true;  ///< false = logical ticks; attribution skipped
  std::vector<FlowEdge> edges;
  std::vector<StepAttribution> steps;
};

/// Stitches an in-memory merged trace (RunResult::trace). Pass
/// `wall_clock = false` for logical-clock traces (TraceConfig knows).
[[nodiscard]] CausalAnalysis analyze_causal(const Trace& trace,
                                            bool wall_clock = true);

/// Stitches a neutral event list (the Chrome-trace-JSON path).
[[nodiscard]] CausalAnalysis analyze_causal(
    const std::vector<CausalEvent>& events, bool wall_clock = true);

/// Parses a Chrome trace JSON written by write_chrome_trace back into the
/// neutral event list (metadata and Perfetto flow lines are skipped).
/// Returns false when the stream contains no trace events.
bool load_chrome_trace(std::istream& is, std::vector<CausalEvent>& out);

/// Deterministic JSON report: flow accounting + the attribution table.
void write_attribution_json(std::ostream& os, const CausalAnalysis& a);

/// Human-readable report naming the top-k straggler chains (steps with
/// the largest makespan), for `aacc analyze --critical-path`.
void write_attribution_report(std::ostream& os, const CausalAnalysis& a,
                              std::size_t top_k);

}  // namespace aacc::obs
