#include "obs/causal.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <limits>
#include <map>
#include <ostream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

namespace aacc::obs {

namespace {

constexpr double kEpsUs = 1e-9;

bool is_flow_instant(const CausalEvent& e) {
  return e.ph == 'i' && e.has_arg && e.arg_name == "flow";
}

/// Innermost-open-span timeline of one rank's main track: a list of
/// (ts, phase) change points, starting at ("idle", -inf). Spans that were
/// still open when the trace was cut simply extend to the end.
struct PhaseTimeline {
  std::vector<std::pair<double, std::string>> cps;

  [[nodiscard]] const std::string& phase_at(double ts) const {
    // Last change point with cp.ts <= ts.
    auto it = std::upper_bound(
        cps.begin(), cps.end(), ts,
        [](double t, const std::pair<double, std::string>& cp) {
          return t < cp.first;
        });
    return it == cps.begin() ? cps.front().second : std::prev(it)->second;
  }

  /// Adds per-phase durations of [a, b] (µs in, seconds out) into `agg`
  /// and returns the dominant phase of the interval.
  std::string attribute(double a, double b,
                        std::map<std::string, double>& agg) const {
    if (b <= a + kEpsUs) return "idle";
    auto it = std::upper_bound(
        cps.begin(), cps.end(), a,
        [](double t, const std::pair<double, std::string>& cp) {
          return t < cp.first;
        });
    std::size_t i = it == cps.begin() ? 0 : (it - cps.begin()) - 1;
    std::string dominant;
    double dominant_s = -1.0;
    double t = a;
    while (t < b) {
      const double next =
          i + 1 < cps.size() ? std::min(cps[i + 1].first, b) : b;
      const double secs = (next - t) / 1e6;
      const double total = (agg[cps[i].second] += secs);
      if (total > dominant_s) {
        dominant_s = total;
        dominant = cps[i].second;
      }
      t = next;
      ++i;
    }
    return dominant;
  }
};

struct StepWindow {
  double begin_us = std::numeric_limits<double>::infinity();
  double end_us = -std::numeric_limits<double>::infinity();
  std::int32_t straggler = -1;
};

void write_double(std::ostream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      os << buf;
    } else {
      os << c;
    }
  }
  os << '"';
}

}  // namespace

CausalAnalysis analyze_causal(const Trace& trace, bool wall_clock) {
  std::vector<CausalEvent> evs;
  evs.reserve(trace.events.size());
  for (const Trace::Entry& e : trace.events) {
    CausalEvent c;
    c.pid = e.pid;
    c.tid = e.tid;
    c.name = e.ev.name;
    c.ph = e.ev.kind == EventKind::kBegin  ? 'B'
           : e.ev.kind == EventKind::kEnd ? 'E'
                                          : 'i';
    c.ts_us = static_cast<double>(e.ev.ts_ns) / 1000.0;
    if (e.ev.arg_name != nullptr) {
      c.has_arg = true;
      c.arg_name = e.ev.arg_name;
      c.arg = e.ev.arg;
    }
    evs.push_back(std::move(c));
  }
  return analyze_causal(evs, wall_clock);
}

CausalAnalysis analyze_causal(const std::vector<CausalEvent>& events,
                              bool wall_clock) {
  CausalAnalysis a;
  a.events = events.size();
  a.wall_clock = wall_clock;

  // ---- flow edges: match recv ids against send ids -----------------
  std::unordered_map<std::uint64_t, std::size_t> send_by_id;
  bool recovery_seen = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const CausalEvent& e = events[i];
    if (e.ph == 'i' && e.name.rfind("recovery:", 0) == 0) recovery_seen = true;
    if (!is_flow_instant(e)) continue;
    if (e.name == "flow:send") {
      ++a.flow_sends;
      send_by_id.emplace(e.arg, i);
    }
  }
  std::unordered_set<std::uint64_t> matched_ids;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const CausalEvent& e = events[i];
    if (!is_flow_instant(e) || e.name != "flow:recv") continue;
    ++a.flow_recvs;
    const auto it = send_by_id.find(e.arg);
    if (it == send_by_id.end()) {
      ++a.unmatched_recvs;
      continue;
    }
    const CausalEvent& s = events[it->second];
    const FlowParts p = unpack_flow_id(e.arg);
    FlowEdge edge;
    edge.src_rank = s.pid;
    edge.dst_rank = e.pid;
    edge.attempt = p.attempt;
    edge.step = p.step;
    edge.seq = p.seq;
    edge.send_ts_us = s.ts_us;
    edge.recv_ts_us = e.ts_us;
    a.edges.push_back(edge);
    matched_ids.insert(e.arg);
  }
  a.matched_edges = a.edges.size();
  const std::size_t unmatched_sends =
      a.flow_sends >= matched_ids.size() ? a.flow_sends - matched_ids.size()
                                         : 0;
  // Recovery in the trace means unmatched sends were re-homed with their
  // shard (the receiver's attempt was abandoned or the peer died); with no
  // recovery anywhere they are genuinely dangling.
  (recovery_seen ? a.rehomed_sends : a.dangling_sends) = unmatched_sends;

  // Attribution needs cross-track comparable timestamps; logical ticks are
  // per-track, so only the edge accounting above is meaningful.
  if (!wall_clock) return a;

  // ---- per-rank main-track timelines and step windows --------------
  std::map<std::int32_t, PhaseTimeline> timelines;
  std::map<std::int32_t, std::vector<std::pair<double, std::size_t>>>
      recvs_by_rank;
  std::map<std::size_t, std::map<std::int32_t, StepWindow>> windows;
  {
    std::map<std::int32_t, std::vector<std::string>> stacks;
    std::map<std::int32_t, std::map<std::size_t, double>> open_steps;
    for (const CausalEvent& e : events) {
      if (e.pid == kDriverPid || e.tid != 0) continue;
      if (e.ph == 'B' || e.ph == 'E') {
        PhaseTimeline& tl = timelines[e.pid];
        if (tl.cps.empty()) {
          tl.cps.emplace_back(-std::numeric_limits<double>::infinity(),
                              "idle");
        }
        std::vector<std::string>& stack = stacks[e.pid];
        if (e.ph == 'B') {
          stack.push_back(e.name);
          tl.cps.emplace_back(e.ts_us, e.name);
          if (e.name == "rc_step" && e.has_arg) {
            open_steps[e.pid][static_cast<std::size_t>(e.arg)] = e.ts_us;
          }
        } else {
          if (!stack.empty()) stack.pop_back();
          tl.cps.emplace_back(e.ts_us,
                              stack.empty() ? "idle" : stack.back());
          if (e.name == "rc_step") {
            auto& open = open_steps[e.pid];
            if (!open.empty()) {
              const auto last = std::prev(open.end());
              StepWindow& w = windows[last->first][e.pid];
              w.begin_us = last->second;
              w.end_us = e.ts_us;
              open.erase(last);
            }
          }
        }
      }
    }
  }
  for (std::size_t i = 0; i < a.edges.size(); ++i) {
    recvs_by_rank[a.edges[i].dst_rank].emplace_back(a.edges[i].recv_ts_us, i);
  }
  for (auto& [rank, recvs] : recvs_by_rank) {
    std::sort(recvs.begin(), recvs.end());
  }

  // ---- backward critical-path walk per step ------------------------
  for (const auto& [step, ranks] : windows) {
    StepAttribution sa;
    sa.step = step;
    double t0 = std::numeric_limits<double>::infinity();
    double t1 = -std::numeric_limits<double>::infinity();
    for (const auto& [rank, w] : ranks) {
      t0 = std::min(t0, w.begin_us);
      if (w.end_us > t1) {
        t1 = w.end_us;
        sa.straggler = rank;
      }
    }
    if (!(t1 > t0)) continue;
    sa.makespan_seconds = (t1 - t0) / 1e6;

    // Latest matched recv on `rank` whose in-flight interval lies usefully
    // inside (t0, t): the hop that ended the rank's wait closest to t.
    const auto latest_recv = [&](std::int32_t rank, double t) -> const
        FlowEdge* {
      const auto it = recvs_by_rank.find(rank);
      if (it == recvs_by_rank.end()) return nullptr;
      const auto& recvs = it->second;
      auto pos = std::upper_bound(
          recvs.begin(), recvs.end(),
          std::make_pair(t, std::numeric_limits<std::size_t>::max()));
      while (pos != recvs.begin()) {
        --pos;
        const FlowEdge& e = a.edges[pos->second];
        if (e.recv_ts_us <= t0 + kEpsUs) break;
        if (e.src_rank != rank && e.src_rank != kDriverPid &&
            e.send_ts_us < t - kEpsUs) {
          return &e;
        }
      }
      return nullptr;
    };

    std::map<std::pair<std::int32_t, std::string>, double> agg;
    double t = t1;
    std::int32_t cur = sa.straggler;
    int hops = 0;
    while (t > t0 + kEpsUs && hops++ < 10000) {
      const FlowEdge* e = latest_recv(cur, t);
      if (e == nullptr) {
        // No incoming dependency: the rest of the window is this rank's
        // own compute/wait, partitioned by its span timeline.
        std::map<std::string, double> phases;
        const std::string dom = timelines[cur].attribute(t0, t, phases);
        for (const auto& [phase, secs] : phases) {
          agg[{cur, phase}] += secs;
        }
        sa.chain.push_back(PhaseCost{cur, dom, (t - t0) / 1e6});
        t = t0;
        break;
      }
      std::map<std::string, double> phases;
      const std::string dom = timelines[cur].attribute(e->recv_ts_us, t,
                                                       phases);
      for (const auto& [phase, secs] : phases) {
        agg[{cur, phase}] += secs;
      }
      if (t - e->recv_ts_us > kEpsUs) {
        sa.chain.push_back(PhaseCost{cur, dom, (t - e->recv_ts_us) / 1e6});
      }
      const double send_t = std::max(e->send_ts_us, t0);
      const double wire_s = (e->recv_ts_us - send_t) / 1e6;
      if (wire_s > 0) {
        agg[{e->src_rank, "wire"}] += wire_s;
        sa.chain.push_back(PhaseCost{e->src_rank, "wire", wire_s});
      }
      t = send_t;
      cur = e->src_rank;
      if (e->send_ts_us <= t0) break;
    }
    if (t > t0 + kEpsUs) {
      // Hop-cap safety valve: close the window on the current rank.
      std::map<std::string, double> phases;
      const std::string dom = timelines[cur].attribute(t0, t, phases);
      for (const auto& [phase, secs] : phases) agg[{cur, phase}] += secs;
      sa.chain.push_back(PhaseCost{cur, dom, (t - t0) / 1e6});
    }

    for (const auto& [key, secs] : agg) {
      sa.blocked_on.push_back(PhaseCost{key.first, key.second, secs});
      sa.critical_path_seconds += secs;
    }
    std::sort(sa.blocked_on.begin(), sa.blocked_on.end(),
              [](const PhaseCost& x, const PhaseCost& y) {
                if (x.seconds != y.seconds) return x.seconds > y.seconds;
                if (x.rank != y.rank) return x.rank < y.rank;
                return x.phase < y.phase;
              });
    std::reverse(sa.chain.begin(), sa.chain.end());  // chronological
    a.steps.push_back(std::move(sa));
  }
  return a;
}

// ------------------------------------------------- Chrome JSON re-parse

namespace {

bool extract_string(const std::string& line, const char* key,
                    std::string& out) {
  const std::string pat = std::string("\"") + key + "\":\"";
  const auto p = line.find(pat);
  if (p == std::string::npos) return false;
  std::string s;
  for (std::size_t i = p + pat.size(); i < line.size(); ++i) {
    const char c = line[i];
    if (c == '\\' && i + 1 < line.size()) {
      s.push_back(line[++i]);
    } else if (c == '"') {
      out = std::move(s);
      return true;
    } else {
      s.push_back(c);
    }
  }
  return false;
}

bool extract_number(const std::string& line, const char* key, double& out) {
  const std::string pat = std::string("\"") + key + "\":";
  const auto p = line.find(pat);
  if (p == std::string::npos) return false;
  const char* s = line.c_str() + p + pat.size();
  char* end = nullptr;
  out = std::strtod(s, &end);
  return end != s;
}

}  // namespace

bool load_chrome_trace(std::istream& is, std::vector<CausalEvent>& out) {
  std::string line;
  bool any = false;
  while (std::getline(is, line)) {
    std::string ph;
    if (!extract_string(line, "ph", ph) || ph.size() != 1) continue;
    if (ph[0] != 'B' && ph[0] != 'E' && ph[0] != 'i') continue;
    CausalEvent e;
    e.ph = ph[0];
    if (!extract_string(line, "name", e.name)) continue;
    double v = 0;
    if (extract_number(line, "pid", v)) e.pid = static_cast<std::int32_t>(v);
    if (extract_number(line, "tid", v)) e.tid = static_cast<std::int32_t>(v);
    if (extract_number(line, "ts", v)) e.ts_us = v;
    const auto ap = line.find("\"args\":{\"");
    if (ap != std::string::npos) {
      const std::size_t key_start = ap + 9;
      const auto key_end = line.find('"', key_start);
      if (key_end != std::string::npos &&
          key_end + 1 < line.size() && line[key_end + 1] == ':') {
        e.arg_name = line.substr(key_start, key_end - key_start);
        const char* s = line.c_str() + key_end + 2;
        char* num_end = nullptr;
        const unsigned long long val = std::strtoull(s, &num_end, 10);
        if (num_end != s) {
          e.has_arg = true;
          e.arg = static_cast<std::uint64_t>(val);
        }
      }
    }
    out.push_back(std::move(e));
    any = true;
  }
  return any;
}

// ------------------------------------------------------------- reports

void write_attribution_json(std::ostream& os, const CausalAnalysis& a) {
  os << "{\"events\":" << a.events << ",\"wall_clock\":"
     << (a.wall_clock ? "true" : "false") << ",\"flow\":{\"sends\":"
     << a.flow_sends << ",\"recvs\":" << a.flow_recvs
     << ",\"matched_edges\":" << a.matched_edges
     << ",\"rehomed_sends\":" << a.rehomed_sends
     << ",\"dangling_sends\":" << a.dangling_sends
     << ",\"unmatched_recvs\":" << a.unmatched_recvs << "},\"steps\":[";
  bool first = true;
  for (const StepAttribution& s : a.steps) {
    if (!first) os << ",";
    first = false;
    os << "{\"step\":" << s.step << ",\"makespan_seconds\":";
    write_double(os, s.makespan_seconds);
    os << ",\"critical_path_seconds\":";
    write_double(os, s.critical_path_seconds);
    os << ",\"straggler\":" << s.straggler << ",\"blocked_on\":[";
    bool bf = true;
    for (const PhaseCost& c : s.blocked_on) {
      if (!bf) os << ",";
      bf = false;
      os << "{\"rank\":" << c.rank << ",\"phase\":";
      write_json_string(os, c.phase);
      os << ",\"seconds\":";
      write_double(os, c.seconds);
      os << "}";
    }
    os << "],\"chain\":[";
    bf = true;
    for (const PhaseCost& c : s.chain) {
      if (!bf) os << ",";
      bf = false;
      os << "{\"rank\":" << c.rank << ",\"phase\":";
      write_json_string(os, c.phase);
      os << ",\"seconds\":";
      write_double(os, c.seconds);
      os << "}";
    }
    os << "]}";
  }
  os << "]}";
}

void write_attribution_report(std::ostream& os, const CausalAnalysis& a,
                              std::size_t top_k) {
  char buf[128];
  os << "causal analysis: " << a.events << " events, " << a.flow_sends
     << " flow sends, " << a.flow_recvs << " flow recvs, "
     << a.matched_edges << " matched edges (" << a.rehomed_sends
     << " rehomed, " << a.dangling_sends << " dangling, "
     << a.unmatched_recvs << " unmatched recvs)\n";
  if (!a.wall_clock) {
    os << "logical-clock trace: per-step attribution skipped (tick "
          "timestamps are not comparable across ranks)\n";
    return;
  }
  if (a.steps.empty()) {
    os << "no rc_step spans found (was the run traced with flow stamping "
          "on?)\n";
    return;
  }
  std::vector<const StepAttribution*> order;
  order.reserve(a.steps.size());
  for (const StepAttribution& s : a.steps) order.push_back(&s);
  std::sort(order.begin(), order.end(),
            [](const StepAttribution* x, const StepAttribution* y) {
              if (x->makespan_seconds != y->makespan_seconds) {
                return x->makespan_seconds > y->makespan_seconds;
              }
              return x->step < y->step;
            });
  if (order.size() > top_k) order.resize(top_k);
  os << "top " << order.size() << " straggler chains by step makespan:\n";
  for (const StepAttribution* s : order) {
    std::snprintf(buf, sizeof(buf),
                  "step %zu: makespan %.3f ms, critical path %.3f ms, "
                  "straggler rank %d\n",
                  s->step, s->makespan_seconds * 1e3,
                  s->critical_path_seconds * 1e3, s->straggler);
    os << buf;
    const std::size_t show = std::min<std::size_t>(s->blocked_on.size(), 6);
    for (std::size_t i = 0; i < show; ++i) {
      const PhaseCost& c = s->blocked_on[i];
      std::snprintf(buf, sizeof(buf),
                    "  blocked on rank %d / phase %s for %.3f ms\n", c.rank,
                    c.phase.c_str(), c.seconds * 1e3);
      os << buf;
    }
    if (!s->chain.empty()) {
      os << "  chain:";
      for (const PhaseCost& c : s->chain) {
        std::snprintf(buf, sizeof(buf), " -> rank %d [%s %.3f ms]", c.rank,
                      c.phase.c_str(), c.seconds * 1e3);
        os << buf;
      }
      os << "\n";
    }
  }
}

}  // namespace aacc::obs
