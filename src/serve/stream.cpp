#include "serve/stream.hpp"

#include <cctype>
#include <cstdlib>
#include <limits>
#include <sstream>

namespace aacc::serve {

namespace {

// Minimal JSON cursor over the flat objects this codec emits (same style
// as the progress-feed parser; kept local because the grammars differ).
struct Cursor {
  const char* p;
  const char* end;

  void ws() {
    while (p < end && std::isspace(static_cast<unsigned char>(*p)) != 0) ++p;
  }
  bool eat(char c) {
    ws();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }
};

bool parse_string(Cursor& c, std::string& out) {
  if (!c.eat('"')) return false;
  out.clear();
  while (c.p < c.end && *c.p != '"') {
    if (*c.p == '\\') return false;  // ops and keys never need escapes
    out.push_back(*c.p++);
  }
  return c.eat('"');
}

bool parse_u64(Cursor& c, std::uint64_t& out) {
  c.ws();
  if (c.p >= c.end || std::isdigit(static_cast<unsigned char>(*c.p)) == 0) {
    return false;
  }
  char* after = nullptr;
  out = std::strtoull(c.p, &after, 10);
  if (after == c.p || after > c.end) return false;
  c.p = after;
  return true;
}

bool parse_vertex(Cursor& c, VertexId& out) {
  std::uint64_t v = 0;
  if (!parse_u64(c, v) || v >= kNoVertex) return false;
  out = static_cast<VertexId>(v);
  return true;
}

bool parse_weight(Cursor& c, Weight& out) {
  std::uint64_t w = 0;
  if (!parse_u64(c, w) || w < 1 ||
      w > std::numeric_limits<Weight>::max()) {
    return false;
  }
  out = static_cast<Weight>(w);
  return true;
}

/// [[v,w],...] — the add_vertex edge list.
bool parse_edge_list(Cursor& c,
                     std::vector<std::pair<VertexId, Weight>>& out) {
  if (!c.eat('[')) return false;
  out.clear();
  if (c.eat(']')) return true;
  for (;;) {
    VertexId v = 0;
    Weight w = 0;
    if (!c.eat('[') || !parse_vertex(c, v) || !c.eat(',') ||
        !parse_weight(c, w) || !c.eat(']')) {
      return false;
    }
    out.emplace_back(v, w);
    if (c.eat(']')) return true;
    if (!c.eat(',')) return false;
  }
}

}  // namespace

bool parse_mutation_line(const std::string& line, StreamCommand& out) {
  Cursor c{line.data(), line.data() + line.size()};
  if (!c.eat('{')) return false;
  out = StreamCommand{};
  std::string op;
  // Field accumulators; which ones are required depends on op.
  bool have_u = false, have_v = false, have_w = false, have_id = false,
       have_edges = false;
  VertexId u = 0, v = 0, id = 0;
  Weight w = 0;
  std::vector<std::pair<VertexId, Weight>> edges;
  if (!c.eat('}')) {
    for (;;) {
      std::string key;
      if (!parse_string(c, key) || !c.eat(':')) return false;
      if (key == "op") {
        if (!parse_string(c, op)) return false;
      } else if (key == "u") {
        if (!parse_vertex(c, u)) return false;
        have_u = true;
      } else if (key == "v") {
        if (!parse_vertex(c, v)) return false;
        have_v = true;
      } else if (key == "id") {
        if (!parse_vertex(c, id)) return false;
        have_id = true;
      } else if (key == "w") {
        if (!parse_weight(c, w)) return false;
        have_w = true;
      } else if (key == "edges") {
        if (!parse_edge_list(c, edges)) return false;
        have_edges = true;
      } else {
        // Tolerate unknown scalar fields (numbers/strings) for forward
        // compatibility; structured unknowns are rejected.
        c.ws();
        if (c.p < c.end && *c.p == '"') {
          std::string skip;
          if (!parse_string(c, skip)) return false;
        } else {
          std::uint64_t skip = 0;
          if (!parse_u64(c, skip)) return false;
        }
      }
      if (c.eat('}')) break;
      if (!c.eat(',')) return false;
    }
  }
  c.ws();
  if (c.p != c.end) return false;  // trailing garbage
  if (op == "commit") {
    out.commit = true;
    return true;
  }
  if (op == "add_edge") {
    if (!have_u || !have_v) return false;
    out.event = EdgeAddEvent{u, v, have_w ? w : 1};
    return true;
  }
  if (op == "del_edge") {
    if (!have_u || !have_v) return false;
    out.event = EdgeDeleteEvent{u, v};
    return true;
  }
  if (op == "set_weight") {
    if (!have_u || !have_v || !have_w) return false;
    out.event = WeightChangeEvent{u, v, w};
    return true;
  }
  if (op == "add_vertex") {
    if (!have_id) return false;
    out.event = VertexAddEvent{id, have_edges ? std::move(edges)
                                              : decltype(edges){}};
    return true;
  }
  if (op == "del_vertex") {
    if (!have_v) return false;
    out.event = VertexDeleteEvent{v};
    return true;
  }
  return false;  // unknown op
}

std::string event_to_ndjson(const Event& e) {
  std::ostringstream os;
  std::visit(
      [&](const auto& ev) {
        using T = std::decay_t<decltype(ev)>;
        if constexpr (std::is_same_v<T, EdgeAddEvent>) {
          os << "{\"op\":\"add_edge\",\"u\":" << ev.u << ",\"v\":" << ev.v
             << ",\"w\":" << ev.w << '}';
        } else if constexpr (std::is_same_v<T, EdgeDeleteEvent>) {
          os << "{\"op\":\"del_edge\",\"u\":" << ev.u << ",\"v\":" << ev.v
             << '}';
        } else if constexpr (std::is_same_v<T, WeightChangeEvent>) {
          os << "{\"op\":\"set_weight\",\"u\":" << ev.u << ",\"v\":" << ev.v
             << ",\"w\":" << ev.w_new << '}';
        } else if constexpr (std::is_same_v<T, VertexAddEvent>) {
          os << "{\"op\":\"add_vertex\",\"id\":" << ev.id << ",\"edges\":[";
          for (std::size_t i = 0; i < ev.edges.size(); ++i) {
            if (i != 0) os << ',';
            os << '[' << ev.edges[i].first << ',' << ev.edges[i].second
               << ']';
          }
          os << "]}";
        } else {
          static_assert(std::is_same_v<T, VertexDeleteEvent>);
          os << "{\"op\":\"del_vertex\",\"v\":" << ev.v << '}';
        }
      },
      e);
  return os.str();
}

std::string commit_ndjson() { return "{\"op\":\"commit\"}"; }

}  // namespace aacc::serve
