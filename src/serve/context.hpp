// Shared state between a live EngineSession and the rank engines it drives
// (docs/API.md §"Serving sessions", DESIGN.md §"Anytime query serving").
//
// Three pieces, all engineered so concurrent readers never block the RC
// drain:
//   * SnapshotCell — one immutable, atomically published closeness snapshot
//     per rank. The owning rank builds a fresh SnapshotData off to the side
//     and publishes it with one atomic shared_ptr store (the double-buffer
//     swap); readers take shared_ptr copies and can hold them for as long
//     as they like without ever making the writer wait.
//   * BatchFeed — the mutation queue from EngineSession::ingest to rank 0's
//     RC loop, plus the journal of consumed batches. The journal is the
//     live-mode stand-in for the EventSchedule: supervised recovery replays
//     it, and the driver applies it to the ground-truth graph at close.
//   * ServeContext — the per-session bundle: the cells, the feed, the
//     engine's step marker, recovery flags, estimator sample and query
//     counters.
//
// This header is intentionally dependency-light (core types + events only)
// so core/rank_engine.cpp can publish into it without linking the serve
// library.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "core/events.hpp"
#include "obs/metrics.hpp"

namespace aacc::serve {

/// Lock-free latency histogram for the query hot path. Same power-of-two
/// bucket layout as obs::Histogram (snapshot() converts losslessly), but
/// every field is a relaxed atomic so concurrent QueryView threads never
/// serialize on a mutex — the ~µs point-query path stays wait-free.
/// Relaxed ordering is fine: each field is independently monotone and
/// readers only consume statistical summaries.
struct LatencyHistogram {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};
  /// min/max use sentinel init + CAS loops; min starts at ~0 (u64 max).
  std::atomic<std::uint64_t> min{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max{0};
  std::atomic<std::uint64_t> buckets[obs::Histogram::kBuckets] = {};

  void record(std::uint64_t v) {
    count.fetch_add(1, std::memory_order_relaxed);
    sum.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t cur = min.load(std::memory_order_relaxed);
    while (v < cur &&
           !min.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    cur = max.load(std::memory_order_relaxed);
    while (v > cur &&
           !max.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    const int b = v <= 1 ? 0 : std::bit_width(v);
    buckets[std::min(b, obs::Histogram::kBuckets - 1)].fetch_add(
        1, std::memory_order_relaxed);
  }

  /// Materializes an obs::Histogram (mergeable into a MetricsRegistry).
  /// Not a consistent point-in-time cut under concurrent writers — counts
  /// may be mid-update — but every individual sample lands eventually and
  /// the close-time snapshot (writers quiesced) is exact.
  [[nodiscard]] obs::Histogram snapshot() const {
    obs::Histogram h;
    h.count = count.load(std::memory_order_relaxed);
    h.sum = sum.load(std::memory_order_relaxed);
    h.min = h.count == 0 ? 0 : min.load(std::memory_order_relaxed);
    h.max = max.load(std::memory_order_relaxed);
    for (int b = 0; b < obs::Histogram::kBuckets; ++b) {
      h.buckets[b] = buckets[b].load(std::memory_order_relaxed);
    }
    return h;
  }
};

/// One sampled query, tying a served response to the snapshot publish that
/// answered it (docs/OBSERVABILITY.md §Causal flows). Collected 1-in-N so
/// the buffer stays bounded regardless of query volume.
struct QuerySample {
  char kind = '?';           ///< 'p' point, 't' top_k, 'r' rank_of
  std::uint64_t index = 0;   ///< 0-based global query index
  std::uint64_t ns = 0;      ///< wall time spent in the query
  /// Provenance of the freshest snapshot consulted: its RC step and
  /// publish epoch, plus the engine step at query time (staleness =
  /// engine_step - snapshot_step).
  std::size_t snapshot_step = 0;
  std::uint64_t snapshot_epoch = 0;
  std::size_t engine_step = 0;
};

/// One immutable per-rank closeness snapshot. All vectors are aligned:
/// ids[i] / closeness[i] / harmonic[i] describe the same vertex, and ids is
/// sorted ascending (readers binary-search it). by_closeness is an index
/// permutation ordered by (closeness desc, id asc) — the rank's local
/// ranking, merged across ranks by QueryView::top_k.
struct SnapshotData {
  /// RC step the publishing rank had completed (same indexing as the
  /// progress feed; the IA publish uses the run's start step).
  std::size_t step = 0;
  /// Publish sequence number for this rank's cell, monotone within a
  /// session (survives supervised restarts: the next attempt continues
  /// from the published predecessor's epoch).
  std::uint64_t epoch = 0;
  /// Recovery provenance at publish time (docs/FAULTS.md): the run is in
  /// degraded survivor mode / this rank carries adopted shards.
  bool degraded = false;
  bool adopted = false;
  std::vector<VertexId> ids;      ///< local vertices, ascending
  std::vector<double> closeness;  ///< aligned with ids
  std::vector<double> harmonic;   ///< aligned with ids
  std::vector<std::uint32_t> by_closeness;  ///< index into ids, best first
};

/// Atomically publishable shared_ptr slot: store() swaps the pointer in,
/// load() takes a pinned copy out. The critical section on either side is
/// a single refcount operation under a tiny acquire/release spinlock.
///
/// Not std::atomic<std::shared_ptr<T>>: libstdc++'s _Sp_atomic unlocks its
/// load() path with a relaxed fetch_sub (shared_ptr_atomic.h), so there is
/// no release edge from a reader's plain _M_ptr read to the next store()'s
/// plain write — mutual exclusion holds, but formally it is a data race
/// and ThreadSanitizer reports it as one. This box keeps both lock and
/// unlock acquire/release, which makes the happens-before real.
template <typename T>
class PublishedPtr {
 public:
  void store(std::shared_ptr<T> next) {
    lock();
    current_.swap(next);
    unlock();
    // `next` (the displaced value) releases its reference outside the
    // lock, so a slow destructor never extends the critical section.
  }

  [[nodiscard]] std::shared_ptr<T> load() const {
    lock();
    std::shared_ptr<T> copy = current_;
    unlock();
    return copy;
  }

 private:
  void lock() const {
    while (locked_.exchange(true, std::memory_order_acquire)) {
      while (locked_.load(std::memory_order_relaxed)) {
      }
    }
  }
  void unlock() const { locked_.store(false, std::memory_order_release); }

  mutable std::atomic<bool> locked_{false};
  std::shared_ptr<T> current_;
};

/// Single-writer (the owning rank thread), many-reader snapshot slot.
/// Publication swaps one shared_ptr; reads pin a copy. The data behind
/// the pointer is immutable after publish — every publish installs a
/// freshly built SnapshotData, so a reader holding the previous epoch
/// keeps a complete, consistent view and the writer never waits for
/// readers to finish with it (no seqlock retry loop, and TSan sees real
/// synchronization instead of a formally racy memcpy).
class SnapshotCell {
 public:
  void publish(std::shared_ptr<const SnapshotData> next) {
    current_.store(std::move(next));
  }
  [[nodiscard]] std::shared_ptr<const SnapshotData> read() const {
    return current_.load();
  }

 private:
  PublishedPtr<const SnapshotData> current_;
};

/// Latest convergence-estimator sample, republished by rank 0 from the
/// per-step progress fold (top-k overlap / Kendall tau-b vs the previous
/// step — the staleness contract attached to every query response).
struct EstimatorSample {
  std::size_t step = 0;
  bool has = false;  ///< false until a second step exists to compare against
  double topk_overlap = 0.0;
  double kendall_tau = 0.0;
};

/// Mutation feed from EngineSession::ingest into rank 0's RC loop, plus the
/// journal of everything already consumed. Thread-safe; closed exactly once
/// by EngineSession::close (a close with batches still queued lets the loop
/// drain them first — the session's final result reflects every ingested
/// batch).
class BatchFeed {
 public:
  /// Queues one batch. Returns false when the feed is already closed (the
  /// batch is dropped; EngineSession::ingest turns that into an error).
  bool push(std::vector<Event> events) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      queue_.push_back(std::move(events));
    }
    cv_.notify_all();
    return true;
  }

  void close() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Non-blocking pop; on success the batch is journaled as ingested at
  /// `step` (the journal is the live-mode EventSchedule: recovery replays
  /// it with the exact step pinning the original ingest used).
  bool try_pop(std::size_t step, std::vector<Event>& out) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    out = std::move(queue_.front());
    queue_.pop_front();
    journal_.push_back(EventBatch{step, out});
    return true;
  }

  /// Blocks until a batch is queued or the feed is closed. True = a batch
  /// is pending; false = closed and drained (the RC loop terminates).
  bool wait_ready() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    return !queue_.empty();
  }

  [[nodiscard]] bool has_ready() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return !queue_.empty();
  }

  [[nodiscard]] bool closed() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Stable copy of the consumed-batch journal. The supervisor snapshots it
  /// while the rank world is joined (the journal only grows, and only from
  /// rank 0's try_pop, so a joined-world copy is a coherent prefix).
  [[nodiscard]] EventSchedule journal_copy() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return journal_;
  }

  [[nodiscard]] std::size_t journal_size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return journal_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::vector<Event>> queue_;
  EventSchedule journal_;
  bool closed_ = false;
};

/// Everything one live session shares between the driver thread, the rank
/// threads and any number of QueryView reader threads. Owned by
/// EngineSession through a shared_ptr so queries stay valid after close().
struct ServeContext {
  ServeContext(Rank ranks, std::size_t publish_every_,
               std::size_t max_snapshot_lag_)
      : publish_every(publish_every_ == 0 ? 1 : publish_every_),
        max_snapshot_lag(max_snapshot_lag_),
        snapshots(static_cast<std::size_t>(ranks)) {}

  const std::size_t publish_every;    ///< EngineConfig::publish_every
  const std::size_t max_snapshot_lag; ///< EngineConfig::max_snapshot_lag
  std::vector<SnapshotCell> snapshots;  ///< one cell per rank
  BatchFeed feed;
  /// Latest RC step the engine completed (rank 0 advances it in lockstep;
  /// response staleness = engine_step - snapshot step).
  std::atomic<std::size_t> engine_step{0};
  /// Latest estimator sample (rank 0 republishes it from the progress fold).
  PublishedPtr<const EstimatorSample> estimators;
  /// Recovery provenance, maintained by the supervising driver thread
  /// (rollback clears both — the replay resurrects every seat).
  std::atomic<bool> degraded{false};
  std::atomic<bool> adopted{false};
  /// Query-side counters (bumped by QueryView, folded into the merged
  /// metrics registry as serve/queries at close).
  std::atomic<std::uint64_t> queries{0};
  std::atomic<std::uint64_t> stale_responses{0};
  /// Per-kind query latency histograms (nanoseconds), folded into the
  /// merged registry as serve/query_ns/{point,top_k,rank_of} at close.
  /// Lock-free so the query path never blocks (docs/OBSERVABILITY.md
  /// §Serve latency SLOs).
  LatencyHistogram query_ns_point;
  LatencyHistogram query_ns_top_k;
  LatencyHistogram query_ns_rank_of;
  /// Deterministic 1-in-N query sampling: query index i is sampled when
  /// (i + sample_seed) % sample_every == 0. Bounded buffer; oldest samples
  /// win (the cap drops the tail, keeping capture deterministic).
  std::size_t sample_every = 64;
  std::uint64_t sample_seed = 0;
  static constexpr std::size_t kMaxSamples = 256;
  std::mutex samples_mu;  ///< cold path: taken only for sampled queries
  std::vector<QuerySample> samples;
};

}  // namespace aacc::serve
