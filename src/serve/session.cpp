#include "serve/session.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <variant>

#include "common/check.hpp"
#include "obs/progress.hpp"

namespace aacc::serve {

namespace {

using Snap = std::shared_ptr<const SnapshotData>;

std::vector<Snap> collect(const ServeContext& ctx) {
  std::vector<Snap> snaps;
  snaps.reserve(ctx.snapshots.size());
  for (const SnapshotCell& cell : ctx.snapshots) snaps.push_back(cell.read());
  return snaps;
}

/// The freshness floor across every consulted cell: an unpublished cell
/// reads as step 0 (nothing of that rank's data is visible yet).
std::size_t min_step(const std::vector<Snap>& snaps) {
  std::size_t oldest = static_cast<std::size_t>(-1);
  for (const Snap& s : snaps) oldest = std::min(oldest, s ? s->step : 0);
  return snaps.empty() ? 0 : oldest;
}

/// Builds the staleness contract for an answer backed by snapshots no
/// older than `answer_step`, and bumps the query-side counters. `index`
/// receives this query's 0-based global index (the pre-increment counter
/// value) for the deterministic 1-in-N flow sampling.
ResponseMeta make_meta(ServeContext& ctx, const std::vector<Snap>& snaps,
                       std::size_t answer_step, std::uint64_t& index) {
  ResponseMeta meta;
  meta.step = answer_step;
  meta.engine_step = ctx.engine_step.load(std::memory_order_acquire);
  meta.age_steps =
      meta.engine_step > meta.step ? meta.engine_step - meta.step : 0;
  meta.stale =
      ctx.max_snapshot_lag != 0 && meta.age_steps > ctx.max_snapshot_lag;
  meta.degraded = ctx.degraded.load(std::memory_order_acquire);
  meta.adopted = ctx.adopted.load(std::memory_order_acquire);
  for (const Snap& s : snaps) {
    if (s == nullptr) continue;
    meta.degraded = meta.degraded || s->degraded;
    meta.adopted = meta.adopted || s->adopted;
  }
  if (const auto est = ctx.estimators.load(); est != nullptr && est->has) {
    meta.has_estimators = true;
    meta.topk_overlap = est->topk_overlap;
    meta.kendall_tau = est->kendall_tau;
  }
  index = ctx.queries.fetch_add(1, std::memory_order_relaxed);
  if (meta.stale) ctx.stale_responses.fetch_add(1, std::memory_order_relaxed);
  return meta;
}

/// Finishes one timed query: records its latency into the per-kind SLO
/// histogram (lock-free) and, for sampled indices, captures a QuerySample
/// tying the response to the snapshot publish (`epoch`) that served it.
void record_query(ServeContext& ctx, LatencyHistogram& hist, char kind,
                  std::uint64_t index,
                  std::chrono::steady_clock::time_point t0,
                  const ResponseMeta& meta, std::uint64_t epoch) {
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  hist.record(ns);
  if (ctx.sample_every == 0 ||
      (index + ctx.sample_seed) % ctx.sample_every != 0) {
    return;
  }
  std::lock_guard<std::mutex> lk(ctx.samples_mu);
  if (ctx.samples.size() >= ServeContext::kMaxSamples) return;
  QuerySample s;
  s.kind = kind;
  s.index = index;
  s.ns = ns;
  s.snapshot_step = meta.step;
  s.snapshot_epoch = epoch;
  s.engine_step = meta.engine_step;
  ctx.samples.push_back(s);
}

/// Freshest publish epoch among the consulted snapshots (multi-snapshot
/// answers: top_k / rank_of / not-found).
std::uint64_t max_epoch(const std::vector<Snap>& snaps) {
  std::uint64_t e = 0;
  for (const Snap& s : snaps) {
    if (s != nullptr) e = std::max(e, s->epoch);
  }
  return e;
}

/// Locates v in the freshest snapshot that contains it. Returns the holder
/// (null if absent everywhere) and the position of v inside it.
const SnapshotData* find_vertex(const std::vector<Snap>& snaps, VertexId v,
                                std::size_t& pos) {
  const SnapshotData* holder = nullptr;
  for (const Snap& s : snaps) {
    if (s == nullptr) continue;
    const auto it = std::lower_bound(s->ids.begin(), s->ids.end(), v);
    if (it == s->ids.end() || *it != v) continue;
    if (holder == nullptr || s->step > holder->step) {
      holder = s.get();
      pos = static_cast<std::size_t>(it - s->ids.begin());
    }
  }
  return holder;
}

}  // namespace

PointResponse QueryView::point(VertexId v) const {
  const auto t0 = std::chrono::steady_clock::now();
  const auto snaps = collect(*ctx_);
  std::size_t pos = 0;
  const SnapshotData* holder = find_vertex(snaps, v, pos);
  PointResponse r;
  std::uint64_t index = 0;
  std::uint64_t epoch = 0;
  if (holder != nullptr) {
    r.found = true;
    r.closeness = holder->closeness[pos];
    r.harmonic = holder->harmonic[pos];
    epoch = holder->epoch;
    r.meta = make_meta(*ctx_, snaps, holder->step, index);
  } else {
    // "Not found" is only as fresh as the oldest cell consulted.
    epoch = max_epoch(snaps);
    r.meta = make_meta(*ctx_, snaps, min_step(snaps), index);
  }
  record_query(*ctx_, ctx_->query_ns_point, 'p', index, t0, r.meta, epoch);
  return r;
}

TopkResponse QueryView::top_k(std::size_t k) const {
  const auto t0 = std::chrono::steady_clock::now();
  const auto snaps = collect(*ctx_);
  TopkResponse r;
  std::uint64_t index = 0;
  r.meta = make_meta(*ctx_, snaps, min_step(snaps), index);
  const auto done = [&]() {
    record_query(*ctx_, ctx_->query_ns_top_k, 't', index, t0, r.meta,
                 max_epoch(snaps));
  };
  if (k == 0) {
    done();
    return r;
  }
  // Each rank's top-k prefix (its by_closeness order) is a superset of its
  // contribution to the global top-k, so k candidates per rank suffice.
  struct Cand {
    VertexId v;
    double closeness;
    std::size_t step;
  };
  std::vector<Cand> cands;
  for (const Snap& s : snaps) {
    if (s == nullptr) continue;
    const std::size_t take = std::min(k, s->by_closeness.size());
    for (std::size_t i = 0; i < take; ++i) {
      const std::uint32_t idx = s->by_closeness[i];
      cands.push_back(Cand{s->ids[idx], s->closeness[idx], s->step});
    }
  }
  // A vertex migrating between ranks can appear in two snapshots of
  // different ages; keep the freshest occurrence.
  std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    return a.v != b.v ? a.v < b.v : a.step > b.step;
  });
  cands.erase(std::unique(cands.begin(), cands.end(),
                          [](const Cand& a, const Cand& b) {
                            return a.v == b.v;
                          }),
              cands.end());
  std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    return a.closeness != b.closeness ? a.closeness > b.closeness
                                      : a.v < b.v;
  });
  if (cands.size() > k) cands.resize(k);
  r.entries.reserve(cands.size());
  for (const Cand& c : cands) r.entries.push_back(TopkEntry{c.v, c.closeness});
  done();
  return r;
}

VertexRankResponse QueryView::rank_of(VertexId v) const {
  const auto t0 = std::chrono::steady_clock::now();
  const auto snaps = collect(*ctx_);
  std::size_t pos = 0;
  const SnapshotData* holder = find_vertex(snaps, v, pos);
  VertexRankResponse r;
  std::uint64_t index = 0;
  const auto done = [&]() {
    record_query(*ctx_, ctx_->query_ns_rank_of, 'r', index, t0, r.meta,
                 holder != nullptr ? holder->epoch : max_epoch(snaps));
  };
  if (holder == nullptr) {
    r.meta = make_meta(*ctx_, snaps, min_step(snaps), index);
    done();
    return r;
  }
  r.found = true;
  r.closeness = holder->closeness[pos];
  // Rank = 1 + the number of entries strictly ordered before (c_v, v) under
  // (closeness desc, id asc). Each by_closeness permutation is sorted by
  // exactly that comparator, so the per-rank count is one binary search.
  std::size_t before = 0;
  for (const Snap& s : snaps) {
    if (s == nullptr) continue;
    const auto ordered_before = [&](std::uint32_t idx) {
      return s->closeness[idx] > r.closeness ||
             (s->closeness[idx] == r.closeness && s->ids[idx] < v);
    };
    const auto it = std::partition_point(s->by_closeness.begin(),
                                         s->by_closeness.end(), ordered_before);
    before += static_cast<std::size_t>(it - s->by_closeness.begin());
  }
  r.rank = 1 + before;
  r.meta = make_meta(*ctx_, snaps, min_step(snaps), index);
  done();
  return r;
}

EngineSession::EngineSession(Graph g, EngineConfig cfg)
    : graph_(std::move(g)), cfg_(std::move(cfg)) {
  cfg_.validate();
  if (cfg_.health.enabled) {
    throw ConfigError(
        "EngineSession: health supervision is incompatible with live "
        "serving — a session idles inside a collective while the feed is "
        "empty, which the deadlines would misread as a wedged rank "
        "(run() still supports health.enabled)");
  }
  if (cfg_.checkpoint_at_step != kNoCheckpointStep) {
    throw ConfigError(
        "EngineSession: checkpoint_at_step is a batch-mode drill — a live "
        "session has no caller-held schedule to resume the checkpoint "
        "against (periodic checkpoint_every for recovery is fine)");
  }
  // An idle feed blocks rank 0 inside the feed-verdict broadcast; the recv
  // watchdog cannot tell that apart from a dead peer, so it is off for the
  // session's lifetime.
  cfg_.transport.recv_timeout = std::chrono::milliseconds(0);
  // Estimators ride the progress fold; force it on so every response
  // carries them even when the caller configured no sink.
  if (!cfg_.progress.active()) {
    cfg_.progress.sink = std::make_shared<obs::NullSink>();
  }
  ctx_ = std::make_shared<ServeContext>(cfg_.num_ranks, cfg_.publish_every,
                                        cfg_.max_snapshot_lag);
  ctx_->sample_every = cfg_.serve_sample_every;
  ctx_->sample_seed = cfg_.serve_sample_seed;
  next_vertex_id_ = graph_.num_vertices();
  driver_ = std::thread([this] {
    detail::DriverArgs args;
    args.graph = &graph_;
    args.cfg = cfg_;
    args.serve = ctx_.get();
    try {
      result_ = detail::run_driver(args);
    } catch (...) {
      error_ = std::current_exception();
    }
    // Normally already closed by the drain; on a driver failure this makes
    // the next ingest fail fast instead of queuing into the void.
    ctx_->feed.close();
  });
}

EngineSession::~EngineSession() {
  if (driver_.joinable()) {
    ctx_->feed.close();
    driver_.join();
    // A failure outcome is dropped here by design: close() is the API for
    // observing it, and destructors must not throw.
  }
}

void EngineSession::ingest(std::vector<Event> events) {
  if (state_.load(std::memory_order_acquire) != SessionState::kOpen) {
    throw EngineStateError("EngineSession::ingest after close()");
  }
  if (events.empty()) return;  // an empty broadcast is the feed terminator
  if (cfg_.refine == RefineMode::kBoundaryFloydWarshall) {
    for (const Event& e : events) {
      AACC_CHECK_MSG(!std::holds_alternative<EdgeDeleteEvent>(e) &&
                         !std::holds_alternative<WeightChangeEvent>(e) &&
                         !std::holds_alternative<VertexDeleteEvent>(e),
                     "boundary-FW refinement is additive-only (see config.hpp)");
    }
  }
  // Dense-id contract: the engine assigns added-vertex ids by append, so a
  // mismatched id would fail deep inside the rank loop ("vertex id
  // mismatch in batch") long after the caller could do anything about it.
  // Reject here, before the batch is queued; the counter advances only on
  // acceptance so a rejected batch can be fixed and resubmitted.
  VertexId expect = next_vertex_id_;
  for (const Event& e : events) {
    if (const auto* add = std::get_if<VertexAddEvent>(&e)) {
      if (add->id != expect) {
        throw EngineStateError(
            "EngineSession::ingest: vertex add id " +
            std::to_string(add->id) + " breaks the dense-id contract — the "
            "engine assigns ids by append, so this session's next added "
            "vertex must carry id " + std::to_string(expect) +
            " (deleted ids are tombstoned, never reused)");
      }
      ++expect;
    }
  }
  if (!ctx_->feed.push(std::move(events))) {
    throw EngineStateError(
        "EngineSession::ingest after the run ended (max_rc_steps cap or "
        "driver failure; close() reports the outcome)");
  }
  next_vertex_id_ = expect;
}

RunResult EngineSession::close() {
  if (state_.load(std::memory_order_acquire) != SessionState::kOpen) {
    throw EngineStateError("EngineSession::close is one-shot");
  }
  ctx_->feed.close();
  driver_.join();
  if (error_ != nullptr) {
    state_.store(SessionState::kFailed, std::memory_order_release);
    std::rethrow_exception(error_);
  }
  state_.store(SessionState::kClosed, std::memory_order_release);
  return std::move(result_);
}

}  // namespace aacc::serve
