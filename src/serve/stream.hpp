// NDJSON mutation stream codec for `aacc serve` (docs/API.md §"Serving
// sessions", README §Serving quickstart).
//
// One JSON object per line, one of:
//   {"op":"add_edge","u":1,"v":2,"w":1}
//   {"op":"del_edge","u":1,"v":2}
//   {"op":"set_weight","u":1,"v":2,"w":3}
//   {"op":"add_vertex","id":7,"edges":[[1,1],[2,4]]}
//   {"op":"del_vertex","v":7}
//   {"op":"commit"}
// `commit` is a batch boundary: everything since the previous commit is
// ingested as one EventBatch. Weights are integers >= 1 (common/types.hpp).
// Unknown fields are tolerated; unknown ops are not.
#pragma once

#include <string>

#include "core/events.hpp"

namespace aacc::serve {

/// One parsed line: a batch boundary or an event.
struct StreamCommand {
  bool commit = false;
  Event event;  ///< valid only when !commit
};

/// Parses one mutation line. Returns false on malformed input, an unknown
/// op, or out-of-range numbers (the line is then skipped by callers that
/// tolerate noise, or reported — the parser itself never throws).
bool parse_mutation_line(const std::string& line, StreamCommand& out);

/// Serializes one event as a mutation line (no trailing newline);
/// round-trips through parse_mutation_line.
[[nodiscard]] std::string event_to_ndjson(const Event& e);

/// The batch-boundary line.
[[nodiscard]] std::string commit_ndjson();

}  // namespace aacc::serve
