// EngineSession: the anytime query-serving lifecycle (docs/API.md
// §"Serving sessions").
//
// AnytimeEngine::run answers one question — "what are the centralities
// after this schedule?" — and only after the run ends. A session keeps the
// same distributed engine resident and turns it into a server:
//
//   EngineSession session(graph, cfg);       // open: DD + IA start now
//   session.ingest({EdgeAddEvent{u, v, 1}}); // mutations stream in ...
//   QueryView view = session.view();
//   view.point(v);                           // ... while queries are answered
//   RunResult final = session.close();       // drain, join, exact result
//
// Queries read immutable per-rank snapshots published at RC-step
// granularity (publication is one atomic pointer swap — readers never
// block the drain; see serve/context.hpp) and every response carries its
// staleness contract: the publishing step, the engine's current step, the
// convergence estimators from the progress fold, and the recovery
// provenance flags.
//
// Threading: queries (QueryView) are safe from any number of threads, both
// during the run and after close(). The lifecycle calls — ingest() and
// close() — must come from one owning thread at a time.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "serve/context.hpp"

namespace aacc::serve {

/// The staleness contract attached to every query response.
struct ResponseMeta {
  /// RC step of the (oldest) snapshot that backed this answer.
  std::size_t step = 0;
  /// Latest RC step the engine had completed when the answer was read.
  std::size_t engine_step = 0;
  /// engine_step - step (saturating): how many steps of refinement the
  /// answer has not seen yet. 0 once the session is quiescent or closed.
  std::size_t age_steps = 0;
  /// True when EngineConfig::max_snapshot_lag is set and age_steps exceeds
  /// it (the response is still served — the flag is the contract).
  bool stale = false;
  /// Recovery provenance (docs/FAULTS.md): the run is in degraded survivor
  /// mode / the backing snapshots contain adopted shards.
  bool degraded = false;
  bool adopted = false;
  /// Convergence estimators from the latest progress fold (top-k overlap
  /// and Kendall tau-b vs the previous step; has_estimators is false until
  /// a second RC step exists to compare against).
  bool has_estimators = false;
  double topk_overlap = 0.0;
  double kendall_tau = 0.0;
};

/// Point closeness lookup. `found` is false when the vertex is outside
/// every published snapshot (not yet added, tombstoned, or lost to a
/// degraded recovery).
struct PointResponse {
  bool found = false;
  double closeness = 0.0;
  double harmonic = 0.0;
  ResponseMeta meta;
};

struct TopkEntry {
  VertexId v = 0;
  double closeness = 0.0;
};

/// Global top-k by closeness, merged across the per-rank snapshots (ties
/// broken toward the lower id).
struct TopkResponse {
  std::vector<TopkEntry> entries;
  ResponseMeta meta;
};

/// 1-based rank of a vertex under (closeness desc, id asc) across all
/// published snapshots. Exact at quiescence; while vertices migrate
/// between ranks mid-refinement the count is approximate (a migrating
/// vertex can appear in two snapshots of different ages).
struct VertexRankResponse {
  bool found = false;
  std::size_t rank = 0;
  double closeness = 0.0;
  ResponseMeta meta;
};

/// Read-only handle onto a session's published snapshots. Cheap to copy,
/// safe from any thread, and remains answerable after the session closes
/// (it keeps the snapshots alive; post-close answers are the exact final
/// state at age 0).
class QueryView {
 public:
  /// Views are normally handed out by EngineSession::view(); constructing
  /// one over an explicit context is for tests and tools.
  explicit QueryView(std::shared_ptr<ServeContext> ctx)
      : ctx_(std::move(ctx)) {}

  [[nodiscard]] PointResponse point(VertexId v) const;
  [[nodiscard]] TopkResponse top_k(std::size_t k) const;
  [[nodiscard]] VertexRankResponse rank_of(VertexId v) const;

 private:
  std::shared_ptr<ServeContext> ctx_;
};

/// Point-in-time cut of the per-kind query latency histograms
/// (nanoseconds), the serve-side SLO surface (docs/OBSERVABILITY.md
/// §Serve latency SLOs). Percentiles via obs::histogram_quantile.
struct SloSnapshot {
  obs::Histogram point;
  obs::Histogram top_k;
  obs::Histogram rank_of;
};

/// Lifecycle phase (see state()).
enum class SessionState {
  kOpen,    ///< driver running; ingest/query/close all valid
  kClosed,  ///< close() returned the final result; queries still valid
  kFailed,  ///< close() rethrew the driver's failure
};

/// A live anytime engine: open starts DD + IA immediately on a background
/// driver (the same supervised driver AnytimeEngine::run uses), ingest
/// streams mutation batches into the RC loop, close drains and returns the
/// exact RunResult a batch run over the ingested schedule would return.
class EngineSession {
 public:
  /// Validates the config and starts the run. Beyond EngineConfig::validate,
  /// live sessions reject (ConfigError):
  ///   * health.enabled — an idle feed is indistinguishable from a wedged
  ///     peer, so supervision deadlines would declare healthy ranks dead;
  ///     the transport recv watchdog is force-disabled for the same reason.
  ///   * checkpoint_at_step — the stop-and-snapshot drill is batch-mode
  ///     only (a live session has no caller-held schedule to resume with).
  /// The progress fold is forced on (NullSink when no sink is configured)
  /// so responses always carry convergence estimators.
  EngineSession(Graph g, EngineConfig cfg);

  /// Closes the feed and joins the driver; a failure is swallowed (use
  /// close() to observe outcomes).
  ~EngineSession();

  EngineSession(const EngineSession&) = delete;
  EngineSession& operator=(const EngineSession&) = delete;

  /// Queues one mutation batch for ingestion at the next RC step. Empty
  /// batches are dropped. Throws EngineStateError after close() (or after
  /// the run ended on its own, e.g. a max_rc_steps cap), and for a
  /// VertexAddEvent whose id breaks the dense-id contract: the engine
  /// assigns vertex ids by append, so the i-th added vertex of the session
  /// must carry id = initial |V| + i (deleted ids are tombstoned, never
  /// reused). Other precondition violations (deleting a missing edge,
  /// touching a dead vertex) follow the batch-schedule contract: they
  /// fail the run with a typed logic error that close() rethrows.
  void ingest(std::vector<Event> events);

  /// Snapshot reader handle; valid for the life of the returned object,
  /// including after close().
  [[nodiscard]] QueryView view() const { return QueryView(ctx_); }

  /// Drains every ingested batch to quiescence, joins the driver and
  /// returns the final result — bit-identical to AnytimeEngine::run over
  /// the same graph and the ingested schedule. One-shot: a second call
  /// throws EngineStateError. A driver failure (exhausted recovery ladder,
  /// logic error) is rethrown here, after which state() == kFailed.
  [[nodiscard]] RunResult close();

  [[nodiscard]] SessionState state() const {
    return state_.load(std::memory_order_acquire);
  }

  /// Cumulative queries answered across all views of this session.
  [[nodiscard]] std::uint64_t queries_answered() const {
    return ctx_->queries.load(std::memory_order_relaxed);
  }

  /// Current serve-side latency SLO cut: one histogram per query kind.
  /// Safe any time (lock-free reads); exact once queries have quiesced.
  [[nodiscard]] SloSnapshot slo() const {
    return SloSnapshot{ctx_->query_ns_point.snapshot(),
                       ctx_->query_ns_top_k.snapshot(),
                       ctx_->query_ns_rank_of.snapshot()};
  }

  /// Copy of the sampled per-query flow records (deterministic 1-in-N per
  /// EngineConfig::serve_sample_every/serve_sample_seed, bounded buffer).
  [[nodiscard]] std::vector<QuerySample> query_samples() const {
    std::lock_guard<std::mutex> lk(ctx_->samples_mu);
    return ctx_->samples;
  }

 private:
  Graph graph_;
  EngineConfig cfg_;
  std::shared_ptr<ServeContext> ctx_;
  std::thread driver_;
  RunResult result_;          ///< written by the driver thread, read after join
  std::exception_ptr error_;  ///< ditto
  std::atomic<SessionState> state_{SessionState::kOpen};
  /// Next id the engine will assign to an added vertex (dense-id contract
  /// enforced by ingest; advanced only after a batch is accepted).
  VertexId next_vertex_id_ = 0;
};

}  // namespace aacc::serve
