// Sequential reference shortest-path kernels.
//
// These are the ground truth every distributed result is checked against:
// binary-heap Dijkstra per source (positive integer weights), full APSP,
// and next-hop extraction for path reconstruction tests.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "graph/csr.hpp"
#include "graph/graph.hpp"

namespace aacc {

/// Distances from src to every vertex (kInfDist if unreachable).
std::vector<Dist> dijkstra(const CsrGraph& g, VertexId src);

/// Distances plus the *first hop* of one shortest path per target
/// (kNoVertex for unreachable targets and for src itself).
struct SsspResult {
  std::vector<Dist> dist;
  std::vector<VertexId> first_hop;
};
SsspResult dijkstra_with_first_hop(const CsrGraph& g, VertexId src);

/// Reference APSP: row v = distances from v. O(n * m log n); intended for
/// validation and small/medium reference runs, not production scale.
std::vector<std::vector<Dist>> apsp_reference(const Graph& g);

}  // namespace aacc
