// Solution-quality metrics for anytime snapshots (experiment E3).
//
// An interrupted anytime run yields distance upper bounds; these metrics
// quantify how far derived centrality scores are from the exact values and
// whether the *ranking* (which is what analysts consume) has stabilized.
#pragma once

#include <utility>
#include <vector>

#include "common/types.hpp"

namespace aacc {

/// Mean |est - exact| / exact over entries with exact > 0.
double mean_relative_error(const std::vector<double>& exact,
                           const std::vector<double>& estimate);

/// max |est - exact|.
double max_abs_error(const std::vector<double>& exact,
                     const std::vector<double>& estimate);

/// |topk(exact) ∩ topk(estimate)| / k — the "did we find the right
/// influencers" metric. 1.0 when k == 0 or both vectors are empty; the
/// denominator is min(k, n), so k > n compares the full rankings.
double top_k_overlap(const std::vector<double>& exact,
                     const std::vector<double>& estimate, std::size_t k);

/// Kendall rank-correlation tau-b between two score vectors, computed over
/// sampled pairs when n is large (exact below the sample threshold):
///   tau_b = (C - D) / sqrt((C + D + Ta) (C + D + Tb))
/// where Ta/Tb count pairs tied only in a / only in b (pairs tied in both
/// are excluded, per tau-b). Conventions at the degenerate edges: n < 2 or
/// both vectors constant -> 1.0 (identical trivial rankings); exactly one
/// vector constant -> 0.0 (no rank information to correlate).
double kendall_tau(const std::vector<double>& a, const std::vector<double>& b,
                   std::size_t max_pairs = 2'000'000);

/// Sparse (id, score) list variants for the online anytime estimators
/// (docs/OBSERVABILITY.md §Progress events): the two lists are bounded
/// top-k slices of two score snapshots, not full vectors, and need not
/// mention the same ids. An id absent from one list scores 0.0 there.

/// Overlap of the top-min(k, max list size) id sets; 1.0 when both empty.
double top_k_overlap(const std::vector<std::pair<VertexId, double>>& a,
                     const std::vector<std::pair<VertexId, double>>& b,
                     std::size_t k);

/// Exact tau-b over the union of the two lists' ids (bounded inputs, so
/// never sampled).
double kendall_tau(const std::vector<std::pair<VertexId, double>>& a,
                   const std::vector<std::pair<VertexId, double>>& b);

}  // namespace aacc
