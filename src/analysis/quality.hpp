// Solution-quality metrics for anytime snapshots (experiment E3).
//
// An interrupted anytime run yields distance upper bounds; these metrics
// quantify how far derived centrality scores are from the exact values and
// whether the *ranking* (which is what analysts consume) has stabilized.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace aacc {

/// Mean |est - exact| / exact over entries with exact > 0.
double mean_relative_error(const std::vector<double>& exact,
                           const std::vector<double>& estimate);

/// max |est - exact|.
double max_abs_error(const std::vector<double>& exact,
                     const std::vector<double>& estimate);

/// |topk(exact) ∩ topk(estimate)| / k — the "did we find the right
/// influencers" metric.
double top_k_overlap(const std::vector<double>& exact,
                     const std::vector<double>& estimate, std::size_t k);

/// Kendall rank-correlation tau-b between two score vectors, computed over
/// sampled pairs when n is large (exact below the sample threshold).
double kendall_tau(const std::vector<double>& a, const std::vector<double>& b,
                   std::size_t max_pairs = 2'000'000);

}  // namespace aacc
