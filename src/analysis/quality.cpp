#include "analysis/quality.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "analysis/closeness.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"

namespace aacc {

double mean_relative_error(const std::vector<double>& exact,
                           const std::vector<double>& estimate) {
  AACC_CHECK(exact.size() == estimate.size());
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    if (exact[i] <= 0.0) continue;
    sum += std::abs(estimate[i] - exact[i]) / exact[i];
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double max_abs_error(const std::vector<double>& exact,
                     const std::vector<double>& estimate) {
  AACC_CHECK(exact.size() == estimate.size());
  double m = 0.0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    m = std::max(m, std::abs(estimate[i] - exact[i]));
  }
  return m;
}

double top_k_overlap(const std::vector<double>& exact,
                     const std::vector<double>& estimate, std::size_t k) {
  AACC_CHECK(exact.size() == estimate.size());
  if (k == 0 || exact.empty()) return 1.0;  // trivially identical rankings
  const auto te = top_k(exact, k);
  const auto ts = top_k(estimate, k);
  const std::unordered_set<VertexId> set(te.begin(), te.end());
  std::size_t hits = 0;
  for (VertexId v : ts) hits += set.count(v);
  return static_cast<double>(hits) / static_cast<double>(std::min(k, exact.size()));
}

double kendall_tau(const std::vector<double>& a, const std::vector<double>& b,
                   std::size_t max_pairs) {
  AACC_CHECK(a.size() == b.size());
  const std::size_t n = a.size();
  if (n < 2) return 1.0;
  const std::size_t all_pairs = n * (n - 1) / 2;

  std::int64_t concordant = 0;
  std::int64_t discordant = 0;
  std::int64_t tied_a = 0;  // tied in a only
  std::int64_t tied_b = 0;  // tied in b only
  auto consider = [&](std::size_t i, std::size_t j) {
    const double da = a[i] - a[j];
    const double db = b[i] - b[j];
    if (da == 0.0 && db == 0.0) {
      // Tied in both: excluded from every tau-b term.
    } else if (da == 0.0) {
      ++tied_a;
    } else if (db == 0.0) {
      ++tied_b;
    } else if ((da > 0) == (db > 0)) {
      ++concordant;
    } else {
      ++discordant;
    }
  };

  if (all_pairs <= max_pairs) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) consider(i, j);
    }
  } else {
    // Uniform pair sampling with a fixed seed keeps the estimate
    // deterministic run-to-run.
    Rng rng(0x6b656e64616c6cULL);
    for (std::size_t s = 0; s < max_pairs; ++s) {
      const std::size_t i = rng.next_below(n);
      std::size_t j = rng.next_below(n - 1);
      if (j >= i) ++j;
      consider(i, j);
    }
  }
  const double s_a = static_cast<double>(concordant + discordant + tied_a);
  const double s_b = static_cast<double>(concordant + discordant + tied_b);
  if (s_a == 0.0 && s_b == 0.0) return 1.0;  // both constant: identical ranking
  if (s_a == 0.0 || s_b == 0.0) return 0.0;  // one constant: no information
  return static_cast<double>(concordant - discordant) / std::sqrt(s_a * s_b);
}

namespace {

/// Orders (id, score) pairs best-first: score descending, id ascending as
/// the deterministic tie break (the same rule top_k uses).
bool better_pair(const std::pair<VertexId, double>& a,
                 const std::pair<VertexId, double>& b) {
  return a.second != b.second ? a.second > b.second : a.first < b.first;
}

std::unordered_set<VertexId> top_id_set(
    std::vector<std::pair<VertexId, double>> list, std::size_t k) {
  std::sort(list.begin(), list.end(), better_pair);
  if (list.size() > k) list.resize(k);
  std::unordered_set<VertexId> ids;
  for (const auto& [v, s] : list) ids.insert(v);
  return ids;
}

}  // namespace

double top_k_overlap(const std::vector<std::pair<VertexId, double>>& a,
                     const std::vector<std::pair<VertexId, double>>& b,
                     std::size_t k) {
  const std::size_t n = std::max(a.size(), b.size());
  if (k == 0 || n == 0) return 1.0;
  const std::size_t kk = std::min(k, n);
  const auto sa = top_id_set(a, kk);
  const auto sb = top_id_set(b, kk);
  std::size_t hits = 0;
  for (const VertexId v : sb) hits += sa.count(v);
  return static_cast<double>(hits) / static_cast<double>(kk);
}

double kendall_tau(const std::vector<std::pair<VertexId, double>>& a,
                   const std::vector<std::pair<VertexId, double>>& b) {
  // Align over the union of ids (sorted, so the pair enumeration is
  // deterministic); an id missing from one list scores 0 there.
  std::vector<std::pair<VertexId, std::pair<double, double>>> joined;
  joined.reserve(a.size() + b.size());
  for (const auto& [v, s] : a) joined.push_back({v, {s, 0.0}});
  for (const auto& [v, s] : b) joined.push_back({v, {0.0, s}});
  std::sort(joined.begin(), joined.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  std::vector<double> va;
  std::vector<double> vb;
  va.reserve(joined.size());
  vb.reserve(joined.size());
  for (std::size_t i = 0; i < joined.size(); ++i) {
    if (i > 0 && joined[i].first == joined[i - 1].first) {
      va.back() += joined[i].second.first;
      vb.back() += joined[i].second.second;
    } else {
      va.push_back(joined[i].second.first);
      vb.push_back(joined[i].second.second);
    }
  }
  // Bounded inputs (top-k slices): always take the exact pair loop.
  return kendall_tau(va, vb, std::numeric_limits<std::size_t>::max());
}

}  // namespace aacc
