#include "analysis/quality.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "analysis/closeness.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"

namespace aacc {

double mean_relative_error(const std::vector<double>& exact,
                           const std::vector<double>& estimate) {
  AACC_CHECK(exact.size() == estimate.size());
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    if (exact[i] <= 0.0) continue;
    sum += std::abs(estimate[i] - exact[i]) / exact[i];
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double max_abs_error(const std::vector<double>& exact,
                     const std::vector<double>& estimate) {
  AACC_CHECK(exact.size() == estimate.size());
  double m = 0.0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    m = std::max(m, std::abs(estimate[i] - exact[i]));
  }
  return m;
}

double top_k_overlap(const std::vector<double>& exact,
                     const std::vector<double>& estimate, std::size_t k) {
  AACC_CHECK(exact.size() == estimate.size());
  if (k == 0) return 1.0;
  const auto te = top_k(exact, k);
  const auto ts = top_k(estimate, k);
  const std::unordered_set<VertexId> set(te.begin(), te.end());
  std::size_t hits = 0;
  for (VertexId v : ts) hits += set.count(v);
  return static_cast<double>(hits) / static_cast<double>(std::min(k, exact.size()));
}

double kendall_tau(const std::vector<double>& a, const std::vector<double>& b,
                   std::size_t max_pairs) {
  AACC_CHECK(a.size() == b.size());
  const std::size_t n = a.size();
  if (n < 2) return 1.0;
  const std::size_t all_pairs = n * (n - 1) / 2;

  std::int64_t concordant = 0;
  std::int64_t discordant = 0;
  std::int64_t tied = 0;
  auto consider = [&](std::size_t i, std::size_t j) {
    const double da = a[i] - a[j];
    const double db = b[i] - b[j];
    if (da == 0.0 || db == 0.0) {
      ++tied;
    } else if ((da > 0) == (db > 0)) {
      ++concordant;
    } else {
      ++discordant;
    }
  };

  if (all_pairs <= max_pairs) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) consider(i, j);
    }
  } else {
    // Uniform pair sampling with a fixed seed keeps the estimate
    // deterministic run-to-run.
    Rng rng(0x6b656e64616c6cULL);
    for (std::size_t s = 0; s < max_pairs; ++s) {
      const std::size_t i = rng.next_below(n);
      std::size_t j = rng.next_below(n - 1);
      if (j >= i) ++j;
      consider(i, j);
    }
  }
  const std::int64_t total = concordant + discordant + tied;
  if (total == 0) return 1.0;
  const std::int64_t effective = concordant + discordant;
  if (effective == 0) return 1.0;
  return static_cast<double>(concordant - discordant) /
         static_cast<double>(effective);
}

}  // namespace aacc
