#include "analysis/centrality_extra.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stack>

#include "common/check.hpp"
#include "graph/csr.hpp"

namespace aacc {

std::vector<double> betweenness_exact(const Graph& g) {
  const VertexId n = g.num_vertices();
  const CsrGraph csr(g);
  std::vector<double> bc(n, 0.0);

  // Brandes: one Dijkstra per source with shortest-path counting, then a
  // reverse accumulation of pair dependencies.
  std::vector<Dist> dist(n);
  std::vector<double> sigma(n);
  std::vector<double> delta(n);
  std::vector<std::vector<VertexId>> preds(n);

  struct QItem {
    Dist d;
    VertexId v;
    bool operator>(const QItem& o) const { return d > o.d; }
  };

  for (VertexId s = 0; s < n; ++s) {
    if (!g.is_alive(s)) continue;
    std::fill(dist.begin(), dist.end(), kInfDist);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    for (auto& p : preds) p.clear();

    std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
    std::vector<VertexId> order;  // vertices in settle order
    dist[s] = 0;
    sigma[s] = 1.0;
    pq.push({0, s});
    std::vector<char> settled(n, 0);
    while (!pq.empty()) {
      const auto [d, u] = pq.top();
      pq.pop();
      if (settled[u] != 0 || d != dist[u]) continue;
      settled[u] = 1;
      order.push_back(u);
      for (std::size_t i = csr.begin(u); i < csr.end(u); ++i) {
        const VertexId v = csr.target(i);
        const Dist nd = dist_add(d, csr.weight(i));
        if (nd < dist[v]) {
          dist[v] = nd;
          sigma[v] = sigma[u];
          preds[v].assign(1, u);
          pq.push({nd, v});
        } else if (nd == dist[v] && nd != kInfDist) {
          sigma[v] += sigma[u];
          preds[v].push_back(u);
        }
      }
    }
    // Reverse accumulation.
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const VertexId w = *it;
      for (const VertexId p : preds[w]) {
        delta[p] += sigma[p] / sigma[w] * (1.0 + delta[w]);
      }
      if (w != s) bc[w] += delta[w];
    }
  }
  // Each unordered pair was counted from both endpoints.
  for (double& b : bc) b /= 2.0;
  return bc;
}

std::vector<double> eigenvector_centrality(const Graph& g,
                                           std::size_t max_iters, double tol) {
  const VertexId n = g.num_vertices();
  std::vector<double> x(n, 0.0);
  if (g.num_edges() == 0) return x;  // convention: no structure, no scores
  for (VertexId v = 0; v < n; ++v) {
    if (g.is_alive(v)) x[v] = 1.0;
  }
  std::vector<double> next(n, 0.0);
  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (VertexId v = 0; v < n; ++v) {
      if (!g.is_alive(v)) continue;
      // Iterate (A + I)x: the identity shift keeps the dominant eigenvalue
      // strictly largest in magnitude on bipartite graphs (whose ±λ pair
      // would otherwise make plain power iteration oscillate), without
      // changing the eigenvectors.
      next[v] += x[v];
      for (const Edge& e : g.neighbors(v)) {
        next[e.to] += static_cast<double>(e.w) * x[v];
      }
    }
    double max_entry = 0.0;
    for (const double val : next) max_entry = std::max(max_entry, val);
    if (max_entry == 0.0) return next;  // no edges at all
    double diff = 0.0;
    for (VertexId v = 0; v < n; ++v) {
      next[v] /= max_entry;
      diff += std::abs(next[v] - x[v]);
    }
    x.swap(next);
    if (diff < tol) break;
  }
  return x;
}

}  // namespace aacc
