// Closeness centrality (the paper's target measure) and companions.
//
// The paper defines closeness of v as 1 / Σ_u d(v, u). On graphs with
// unreachable pairs that sum is infinite, so this module also exposes the
// component-safe variants used in reporting:
//   * closeness  — 1 / Σ d(v,u) over *reachable* u (0 if none reachable)
//   * harmonic   — Σ 1/d(v,u) with 1/∞ = 0. Monotone under the anytime
//     refinement (distances only shrink ⇒ harmonic only grows), which makes
//     it the natural quality curve for interrupted runs.
//   * degree     — for reference comparisons.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace aacc {

/// Closeness from a full distance row: 1/Σ over finite non-self entries.
double closeness_from_row(const std::vector<Dist>& row, VertexId self);

/// Harmonic centrality from a distance row.
double harmonic_from_row(const std::vector<Dist>& row, VertexId self);

/// Exact centralities by reference APSP (sequential ground truth).
std::vector<double> closeness_exact(const Graph& g);
std::vector<double> harmonic_exact(const Graph& g);
std::vector<double> degree_centrality(const Graph& g);

/// Indices of the k largest scores, ties broken by smaller id.
std::vector<VertexId> top_k(const std::vector<double>& scores, std::size_t k);

}  // namespace aacc
