#include "analysis/closeness.hpp"

#include <algorithm>
#include <numeric>

#include "analysis/shortest_paths.hpp"
#include "common/check.hpp"

namespace aacc {

double closeness_from_row(const std::vector<Dist>& row, VertexId self) {
  std::uint64_t sum = 0;
  for (VertexId u = 0; u < row.size(); ++u) {
    if (u == self || row[u] == kInfDist) continue;
    sum += row[u];
  }
  return sum == 0 ? 0.0 : 1.0 / static_cast<double>(sum);
}

double harmonic_from_row(const std::vector<Dist>& row, VertexId self) {
  double h = 0.0;
  for (VertexId u = 0; u < row.size(); ++u) {
    if (u == self || row[u] == kInfDist || row[u] == 0) continue;
    h += 1.0 / static_cast<double>(row[u]);
  }
  return h;
}

std::vector<double> closeness_exact(const Graph& g) {
  const auto apsp = apsp_reference(g);
  std::vector<double> c(g.num_vertices(), 0.0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.is_alive(v)) c[v] = closeness_from_row(apsp[v], v);
  }
  return c;
}

std::vector<double> harmonic_exact(const Graph& g) {
  const auto apsp = apsp_reference(g);
  std::vector<double> c(g.num_vertices(), 0.0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.is_alive(v)) c[v] = harmonic_from_row(apsp[v], v);
  }
  return c;
}

std::vector<double> degree_centrality(const Graph& g) {
  std::vector<double> c(g.num_vertices(), 0.0);
  const double denom = g.num_alive() > 1 ? static_cast<double>(g.num_alive() - 1) : 1.0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.is_alive(v)) c[v] = static_cast<double>(g.degree(v)) / denom;
  }
  return c;
}

std::vector<VertexId> top_k(const std::vector<double>& scores, std::size_t k) {
  std::vector<VertexId> idx(scores.size());
  std::iota(idx.begin(), idx.end(), VertexId{0});
  k = std::min(k, idx.size());
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                    idx.end(), [&](VertexId a, VertexId b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  idx.resize(k);
  return idx;
}

}  // namespace aacc
