#include "analysis/shortest_paths.hpp"

#include <algorithm>
#include <queue>
#include <thread>

#include "common/check.hpp"
#include "common/parallel.hpp"

namespace aacc {

namespace {

struct QItem {
  Dist d;
  VertexId v;
  friend bool operator>(const QItem& a, const QItem& b) { return a.d > b.d; }
};

using MinQueue = std::priority_queue<QItem, std::vector<QItem>, std::greater<>>;

}  // namespace

std::vector<Dist> dijkstra(const CsrGraph& g, VertexId src) {
  AACC_CHECK(src < g.num_vertices());
  std::vector<Dist> dist(g.num_vertices(), kInfDist);
  MinQueue pq;
  dist[src] = 0;
  pq.push({0, src});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d != dist[u]) continue;  // stale entry
    for (std::size_t i = g.begin(u); i < g.end(u); ++i) {
      const VertexId v = g.target(i);
      const Dist nd = dist_add(d, g.weight(i));
      if (nd < dist[v]) {
        dist[v] = nd;
        pq.push({nd, v});
      }
    }
  }
  return dist;
}

SsspResult dijkstra_with_first_hop(const CsrGraph& g, VertexId src) {
  AACC_CHECK(src < g.num_vertices());
  SsspResult res;
  res.dist.assign(g.num_vertices(), kInfDist);
  res.first_hop.assign(g.num_vertices(), kNoVertex);
  MinQueue pq;
  res.dist[src] = 0;
  pq.push({0, src});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d != res.dist[u]) continue;
    for (std::size_t i = g.begin(u); i < g.end(u); ++i) {
      const VertexId v = g.target(i);
      const Dist nd = dist_add(d, g.weight(i));
      if (nd < res.dist[v]) {
        res.dist[v] = nd;
        // First hop: direct neighbours of src start their own chain.
        res.first_hop[v] = (u == src) ? v : res.first_hop[u];
        pq.push({nd, v});
      }
    }
  }
  return res;
}

std::vector<std::vector<Dist>> apsp_reference(const Graph& g) {
  const CsrGraph csr(g);
  const VertexId n = g.num_vertices();
  std::vector<std::vector<Dist>> all(n);
  const std::size_t threads =
      std::clamp<std::size_t>(std::thread::hardware_concurrency(), 1, 16);
  parallel_chunks(n, 16, threads, [&](std::size_t begin, std::size_t end) {
    for (std::size_t v = begin; v < end; ++v) {
      if (g.is_alive(static_cast<VertexId>(v))) {
        all[v] = dijkstra(csr, static_cast<VertexId>(v));
      } else {
        all[v].assign(n, kInfDist);
      }
    }
  });
  // Tombstoned columns must read as unreachable.
  for (VertexId v = 0; v < n; ++v) {
    if (g.is_alive(v)) continue;
    for (VertexId u = 0; u < n; ++u) all[u][v] = kInfDist;
  }
  return all;
}

}  // namespace aacc
