// Companion centrality measures (§IV of the paper lists degree, closeness,
// betweenness and eigenvector centrality as the key SNA metrics; the
// anytime anywhere series covers several of them). These are exact
// sequential implementations used for cross-measure studies and as ground
// truth in tests.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace aacc {

/// Exact betweenness centrality via Brandes' algorithm (weighted variant,
/// Dijkstra-based). Scores are the classic unnormalized pair-dependency
/// sums over undirected paths (each unordered pair counted once).
std::vector<double> betweenness_exact(const Graph& g);

/// Eigenvector centrality by power iteration on the (weighted) adjacency
/// matrix, normalized to unit max entry. Returns zeros for isolated
/// vertices; convergence within `max_iters` iterations or `tol` L1 change.
std::vector<double> eigenvector_centrality(const Graph& g,
                                           std::size_t max_iters = 200,
                                           double tol = 1e-10);

}  // namespace aacc
