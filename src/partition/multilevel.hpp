// Multilevel k-way graph partitioner (METIS/ParMETIS substitute).
//
// Classic three-stage scheme (Karypis & Kumar):
//   1. Coarsening — heavy-edge matching collapses matched vertex pairs,
//      accumulating vertex weights and parallel-edge weights, until the
//      graph is small or shrinkage stalls.
//   2. Initial partition — balanced BFS region growing on the coarsest
//      graph (vertex-weight aware), followed by refinement there.
//   3. Uncoarsening — project the assignment back level by level, running
//      a greedy boundary Kernighan–Lin/FM-style refinement pass at each
//      level under a balance constraint.
//
// Quality target: substantially fewer cut edges than hash/round-robin on
// community-structured graphs at comparable balance — which is what the
// paper needs from METIS in DD, CutEdge-PS and Repartition-S.
#pragma once

#include "partition/partition.hpp"

namespace aacc {

struct MultilevelOptions {
  /// Stop coarsening below this many vertices (scaled by k).
  std::size_t coarsest_per_part = 16;
  /// Allowed imbalance: max part weight <= balance_tolerance * ideal.
  double balance_tolerance = 1.05;
  /// Refinement sweeps per level.
  unsigned refine_passes = 6;
};

class MultilevelPartitioner final : public Partitioner {
 public:
  explicit MultilevelPartitioner(MultilevelOptions opts = {}) : opts_(opts) {}

  [[nodiscard]] Partition partition(const Graph& g, Rank k, Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "multilevel"; }

 private:
  MultilevelOptions opts_;
};

}  // namespace aacc
