#include "partition/multilevel.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <unordered_map>

#include "common/check.hpp"

namespace aacc {

namespace {

/// Weighted working graph for one level of the multilevel hierarchy.
struct WGraph {
  std::vector<std::vector<std::pair<VertexId, std::uint64_t>>> adj;  // no self-loops
  std::vector<std::uint64_t> vweight;

  [[nodiscard]] VertexId size() const { return static_cast<VertexId>(adj.size()); }

  [[nodiscard]] std::uint64_t total_vweight() const {
    return std::accumulate(vweight.begin(), vweight.end(), std::uint64_t{0});
  }
};

struct Level {
  WGraph graph;
  std::vector<VertexId> coarse_of;  // fine vertex -> coarse vertex at next level
};

WGraph from_input(const Graph& g, std::vector<VertexId>& dense_of,
                  std::vector<VertexId>& vertex_of) {
  // Compact alive vertices into dense ids so the hierarchy never sees
  // tombstones.
  dense_of.assign(g.num_vertices(), kNoVertex);
  vertex_of.clear();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.is_alive(v)) {
      dense_of[v] = static_cast<VertexId>(vertex_of.size());
      vertex_of.push_back(v);
    }
  }
  WGraph w;
  w.adj.resize(vertex_of.size());
  w.vweight.assign(vertex_of.size(), 1);
  for (const auto& [u, v, ew] : g.edges()) {
    const VertexId du = dense_of[u];
    const VertexId dv = dense_of[v];
    w.adj[du].emplace_back(dv, ew);
    w.adj[dv].emplace_back(du, ew);
  }
  return w;
}

/// Heavy-edge matching; returns (coarse graph, fine->coarse map).
Level coarsen(const WGraph& g, Rng& rng) {
  const VertexId n = g.size();
  std::vector<VertexId> match(n, kNoVertex);
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  for (VertexId i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.next_below(i)]);
  }
  for (VertexId u : order) {
    if (match[u] != kNoVertex) continue;
    VertexId best = kNoVertex;
    std::uint64_t best_w = 0;
    for (const auto& [v, w] : g.adj[u]) {
      if (match[v] == kNoVertex && w > best_w) {
        best = v;
        best_w = w;
      }
    }
    if (best != kNoVertex) {
      match[u] = best;
      match[best] = u;
    } else {
      match[u] = u;  // stays single
    }
  }

  Level lvl;
  lvl.coarse_of.assign(n, kNoVertex);
  VertexId next = 0;
  for (VertexId u = 0; u < n; ++u) {
    if (lvl.coarse_of[u] != kNoVertex) continue;
    lvl.coarse_of[u] = next;
    if (match[u] != u) lvl.coarse_of[match[u]] = next;
    ++next;
  }

  WGraph& cg = lvl.graph;
  cg.adj.resize(next);
  cg.vweight.assign(next, 0);
  for (VertexId u = 0; u < n; ++u) cg.vweight[lvl.coarse_of[u]] += g.vweight[u];

  // Aggregate edges per coarse vertex.
  std::unordered_map<VertexId, std::uint64_t> acc;
  std::vector<std::vector<VertexId>> members(next);
  for (VertexId u = 0; u < n; ++u) members[lvl.coarse_of[u]].push_back(u);
  for (VertexId c = 0; c < next; ++c) {
    acc.clear();
    for (VertexId u : members[c]) {
      for (const auto& [v, w] : g.adj[u]) {
        const VertexId cv = lvl.coarse_of[v];
        if (cv != c) acc[cv] += w;
      }
    }
    cg.adj[c].assign(acc.begin(), acc.end());
  }
  return lvl;
}

/// Balanced BFS region growing on the coarsest graph, vertex-weight aware.
std::vector<Rank> initial_partition(const WGraph& g, Rank k, Rng& rng) {
  const VertexId n = g.size();
  std::vector<Rank> part(n, kNoRank);
  const std::uint64_t total = g.total_vweight();
  const std::uint64_t target =
      (total + static_cast<std::uint64_t>(k) - 1) / static_cast<std::uint64_t>(k);

  std::size_t probe = n > 0 ? rng.next_below(n) : 0;
  auto next_seed = [&]() -> VertexId {
    for (VertexId i = 0; i < n; ++i) {
      const VertexId v = static_cast<VertexId>((probe + i) % n);
      if (part[v] == kNoRank) {
        probe = (probe + i + 1) % n;
        return v;
      }
    }
    return kNoVertex;
  };

  std::queue<VertexId> frontier;
  Rank cur = 0;
  std::uint64_t cur_weight = 0;
  VertexId assigned = 0;
  while (assigned < n) {
    if (frontier.empty()) {
      if (cur_weight >= target && cur + 1 < k) {
        ++cur;
        cur_weight = 0;
      }
      const VertexId s = next_seed();
      AACC_CHECK(s != kNoVertex);
      part[s] = cur;
      cur_weight += g.vweight[s];
      ++assigned;
      frontier.push(s);
      continue;
    }
    const VertexId u = frontier.front();
    frontier.pop();
    for (const auto& [v, w] : g.adj[u]) {
      (void)w;
      if (part[v] != kNoRank) continue;
      if (cur_weight >= target && cur + 1 < k) {
        ++cur;
        cur_weight = 0;
        std::queue<VertexId>().swap(frontier);
      }
      part[v] = cur;
      cur_weight += g.vweight[v];
      ++assigned;
      frontier.push(v);
      if (cur_weight >= target && cur + 1 < k) break;
    }
  }
  return part;
}

/// Greedy boundary refinement: move vertices to the neighbouring part with
/// the largest positive cut gain, respecting the balance constraint.
void refine(const WGraph& g, std::vector<Rank>& part, Rank k, Rng& rng,
            double tolerance, unsigned passes) {
  const VertexId n = g.size();
  std::vector<std::uint64_t> pweight(static_cast<std::size_t>(k), 0);
  for (VertexId v = 0; v < n; ++v) pweight[static_cast<std::size_t>(part[v])] += g.vweight[v];
  const std::uint64_t total = g.total_vweight();
  const auto max_weight = static_cast<std::uint64_t>(
      tolerance * static_cast<double>(total) / static_cast<double>(k) + 1.0);

  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  std::vector<std::uint64_t> link(static_cast<std::size_t>(k), 0);
  std::vector<Rank> touched;

  for (unsigned pass = 0; pass < passes; ++pass) {
    for (VertexId i = n; i > 1; --i) {
      std::swap(order[i - 1], order[rng.next_below(i)]);
    }
    bool moved = false;
    for (VertexId u : order) {
      const Rank from = part[u];
      touched.clear();
      bool boundary = false;
      for (const auto& [v, w] : g.adj[u]) {
        const Rank rv = part[v];
        if (link[static_cast<std::size_t>(rv)] == 0) touched.push_back(rv);
        link[static_cast<std::size_t>(rv)] += w;
        if (rv != from) boundary = true;
      }
      if (boundary) {
        const std::uint64_t internal = link[static_cast<std::size_t>(from)];
        Rank best = from;
        std::int64_t best_gain = 0;
        for (Rank r : touched) {
          if (r == from) continue;
          if (pweight[static_cast<std::size_t>(r)] + g.vweight[u] > max_weight) continue;
          const auto gain = static_cast<std::int64_t>(link[static_cast<std::size_t>(r)]) -
                            static_cast<std::int64_t>(internal);
          if (gain > best_gain ||
              (gain == best_gain && best != from &&
               pweight[static_cast<std::size_t>(r)] < pweight[static_cast<std::size_t>(best)])) {
            best_gain = gain;
            best = r;
          }
        }
        if (best != from && best_gain > 0) {
          pweight[static_cast<std::size_t>(from)] -= g.vweight[u];
          pweight[static_cast<std::size_t>(best)] += g.vweight[u];
          part[u] = best;
          moved = true;
        }
      }
      for (Rank r : touched) link[static_cast<std::size_t>(r)] = 0;
    }
    if (!moved) break;
  }

  // Balance pass: greedy refinement only makes cut-improving moves, so an
  // overfull initial part (BFS growing dumps the remainder into the last
  // region) can persist. Drain overweight parts by moving their boundary
  // vertices to the lightest neighbouring part, accepting cut regressions.
  for (unsigned pass = 0; pass < passes; ++pass) {
    bool any_overfull = false;
    for (VertexId u : order) {
      const Rank from = part[u];
      if (pweight[static_cast<std::size_t>(from)] <= max_weight) continue;
      any_overfull = true;
      Rank best = from;
      for (const auto& [v, w] : g.adj[u]) {
        (void)w;
        const Rank r = part[v];
        if (r == from) continue;
        if (pweight[static_cast<std::size_t>(r)] + g.vweight[u] > max_weight) continue;
        if (best == from ||
            pweight[static_cast<std::size_t>(r)] < pweight[static_cast<std::size_t>(best)]) {
          best = r;
        }
      }
      if (best == from) {
        // No neighbouring part has room: fall back to the globally
        // lightest part (a cut-increasing teleport, but balance first).
        for (Rank r = 0; r < k; ++r) {
          if (r == from) continue;
          if (pweight[static_cast<std::size_t>(r)] + g.vweight[u] > max_weight) continue;
          if (best == from ||
              pweight[static_cast<std::size_t>(r)] < pweight[static_cast<std::size_t>(best)]) {
            best = r;
          }
        }
      }
      if (best != from) {
        pweight[static_cast<std::size_t>(from)] -= g.vweight[u];
        pweight[static_cast<std::size_t>(best)] += g.vweight[u];
        part[u] = best;
      }
    }
    if (!any_overfull) break;
  }
}

}  // namespace

Partition MultilevelPartitioner::partition(const Graph& g, Rank k, Rng& rng) const {
  AACC_CHECK(k >= 1);
  Partition out;
  out.num_parts = k;
  out.assignment.assign(g.num_vertices(), kNoRank);
  if (g.num_alive() == 0) return out;

  std::vector<VertexId> dense_of;
  std::vector<VertexId> vertex_of;
  WGraph base = from_input(g, dense_of, vertex_of);

  if (k == 1) {
    for (VertexId v : vertex_of) out.assignment[v] = 0;
    return out;
  }

  // Coarsen.
  const std::size_t stop_size =
      std::max<std::size_t>(opts_.coarsest_per_part * static_cast<std::size_t>(k), 64);
  std::vector<Level> levels;
  const WGraph* cur = &base;
  while (cur->size() > stop_size) {
    Level lvl = coarsen(*cur, rng);
    // Stalled shrinkage (e.g. star graphs) — stop coarsening.
    if (lvl.graph.size() > cur->size() * 95 / 100) break;
    levels.push_back(std::move(lvl));
    cur = &levels.back().graph;
  }

  // Initial partition + refinement at the coarsest level.
  std::vector<Rank> part = initial_partition(*cur, k, rng);
  refine(*cur, part, k, rng, opts_.balance_tolerance, opts_.refine_passes);

  // Uncoarsen with refinement at every level.
  for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
    const WGraph& fine =
        (it + 1 == levels.rend()) ? base : (it + 1)->graph;
    std::vector<Rank> fine_part(fine.size());
    for (VertexId v = 0; v < fine.size(); ++v) {
      fine_part[v] = part[it->coarse_of[v]];
    }
    part = std::move(fine_part);
    refine(fine, part, k, rng, opts_.balance_tolerance, opts_.refine_passes);
  }

  for (VertexId dense = 0; dense < vertex_of.size(); ++dense) {
    out.assignment[vertex_of[dense]] = part[dense];
  }
  return out;
}

}  // namespace aacc
