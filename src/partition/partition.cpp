#include "partition/partition.hpp"

#include "common/check.hpp"
#include "partition/multilevel.hpp"
#include "partition/simple.hpp"

namespace aacc {

PartitionMetrics evaluate_partition(const Graph& g, const Partition& p) {
  AACC_CHECK(p.assignment.size() == g.num_vertices());
  PartitionMetrics m;
  m.part_sizes.assign(static_cast<std::size_t>(p.num_parts), 0);
  m.part_cut.assign(static_cast<std::size_t>(p.num_parts), 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!g.is_alive(v)) continue;
    const Rank r = p.assignment[v];
    AACC_CHECK_MSG(r >= 0 && r < p.num_parts, "vertex " << v << " unassigned");
    ++m.part_sizes[static_cast<std::size_t>(r)];
  }
  for (const auto& [u, v, w] : g.edges()) {
    (void)w;
    const Rank ru = p.assignment[u];
    const Rank rv = p.assignment[v];
    if (ru != rv) {
      ++m.cut_edges;
      ++m.part_cut[static_cast<std::size_t>(ru)];
      ++m.part_cut[static_cast<std::size_t>(rv)];
    }
  }
  m.max_part = 0;
  m.min_part = g.num_alive();
  for (std::size_t s : m.part_sizes) {
    m.max_part = std::max(m.max_part, s);
    m.min_part = std::min(m.min_part, s);
  }
  const double ideal =
      static_cast<double>(g.num_alive()) / static_cast<double>(p.num_parts);
  m.imbalance = ideal > 0.0 ? static_cast<double>(m.max_part) / ideal : 0.0;
  return m;
}

std::unique_ptr<Partitioner> make_partitioner(PartitionerKind kind) {
  switch (kind) {
    case PartitionerKind::kBlock:
      return std::make_unique<BlockPartitioner>();
    case PartitionerKind::kRoundRobin:
      return std::make_unique<RoundRobinPartitioner>();
    case PartitionerKind::kHash:
      return std::make_unique<HashPartitioner>();
    case PartitionerKind::kBfs:
      return std::make_unique<BfsPartitioner>();
    case PartitionerKind::kMultilevel:
      return std::make_unique<MultilevelPartitioner>();
  }
  AACC_CHECK_MSG(false, "unknown PartitionerKind");
  return nullptr;
}

const char* partitioner_name(PartitionerKind kind) {
  switch (kind) {
    case PartitionerKind::kBlock: return "block";
    case PartitionerKind::kRoundRobin: return "round-robin";
    case PartitionerKind::kHash: return "hash";
    case PartitionerKind::kBfs: return "bfs";
    case PartitionerKind::kMultilevel: return "multilevel";
  }
  return "?";
}

Partition partition_graph(const Graph& g, Rank k, PartitionerKind kind, Rng& rng) {
  return make_partitioner(kind)->partition(g, k, rng);
}

}  // namespace aacc
