// Trivial partitioners: baselines for the A2 ablation and cheap defaults
// for tests. BFS region growing is the strongest of the cheap options and
// is also used as the coarsest-level seed inside the multilevel partitioner.
#pragma once

#include "partition/partition.hpp"

namespace aacc {

class BlockPartitioner final : public Partitioner {
 public:
  [[nodiscard]] Partition partition(const Graph& g, Rank k, Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "block"; }
};

class RoundRobinPartitioner final : public Partitioner {
 public:
  [[nodiscard]] Partition partition(const Graph& g, Rank k, Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "round-robin"; }
};

class HashPartitioner final : public Partitioner {
 public:
  [[nodiscard]] Partition partition(const Graph& g, Rank k, Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "hash"; }
};

/// Grows balanced regions by BFS from successive unassigned seeds; a region
/// stops growing once it holds ceil(alive / k) vertices.
class BfsPartitioner final : public Partitioner {
 public:
  [[nodiscard]] Partition partition(const Graph& g, Rank k, Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "bfs"; }
};

}  // namespace aacc
