#include "partition/simple.hpp"

#include <queue>

#include "common/check.hpp"

namespace aacc {

namespace {

Partition make_empty(const Graph& g, Rank k) {
  AACC_CHECK(k >= 1);
  Partition p;
  p.num_parts = k;
  p.assignment.assign(g.num_vertices(), kNoRank);
  return p;
}

}  // namespace

Partition BlockPartitioner::partition(const Graph& g, Rank k, Rng& /*rng*/) const {
  Partition p = make_empty(g, k);
  const std::size_t alive = g.num_alive();
  const std::size_t chunk = (alive + static_cast<std::size_t>(k) - 1) /
                            static_cast<std::size_t>(k);
  std::size_t idx = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!g.is_alive(v)) continue;
    p.assignment[v] = static_cast<Rank>(std::min<std::size_t>(
        idx / std::max<std::size_t>(chunk, 1), static_cast<std::size_t>(k - 1)));
    ++idx;
  }
  return p;
}

Partition RoundRobinPartitioner::partition(const Graph& g, Rank k, Rng& /*rng*/) const {
  Partition p = make_empty(g, k);
  std::size_t idx = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!g.is_alive(v)) continue;
    p.assignment[v] = static_cast<Rank>(idx % static_cast<std::size_t>(k));
    ++idx;
  }
  return p;
}

Partition HashPartitioner::partition(const Graph& g, Rank k, Rng& /*rng*/) const {
  Partition p = make_empty(g, k);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!g.is_alive(v)) continue;
    std::uint64_t z = v + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    p.assignment[v] = static_cast<Rank>(z % static_cast<std::uint64_t>(k));
  }
  return p;
}

Partition BfsPartitioner::partition(const Graph& g, Rank k, Rng& rng) const {
  Partition p = make_empty(g, k);
  const std::size_t alive = g.num_alive();
  if (alive == 0) return p;
  const std::size_t target = (alive + static_cast<std::size_t>(k) - 1) /
                             static_cast<std::size_t>(k);

  const auto alive_list = g.alive_vertices();
  std::size_t probe = 0;  // rotating scan position for new seeds
  std::queue<VertexId> frontier;
  Rank part = 0;
  std::size_t in_part = 0;
  std::size_t assigned = 0;

  auto next_seed = [&]() -> VertexId {
    // Randomized start once, then first unassigned in rotation: keeps seeds
    // spread out without an O(n^2) farthest-point search.
    for (std::size_t i = 0; i < alive_list.size(); ++i) {
      const VertexId v = alive_list[(probe + i) % alive_list.size()];
      if (p.assignment[v] == kNoRank) {
        probe = (probe + i + 1) % alive_list.size();
        return v;
      }
    }
    return kNoVertex;
  };
  probe = rng.next_below(alive_list.size());

  while (assigned < alive) {
    if (frontier.empty()) {
      if (in_part >= target && part + 1 < k) {
        ++part;
        in_part = 0;
      }
      const VertexId seed = next_seed();
      AACC_CHECK(seed != kNoVertex);
      p.assignment[seed] = part;
      ++in_part;
      ++assigned;
      frontier.push(seed);
      continue;
    }
    const VertexId u = frontier.front();
    frontier.pop();
    for (const Edge& e : g.neighbors(u)) {
      if (p.assignment[e.to] != kNoRank) continue;
      if (in_part >= target && part + 1 < k) {
        ++part;
        in_part = 0;
        // Abandon the old frontier; a fresh seed will start the next part.
        std::queue<VertexId>().swap(frontier);
      }
      p.assignment[e.to] = part;
      ++in_part;
      ++assigned;
      frontier.push(e.to);
      if (in_part >= target && part + 1 < k) break;
    }
  }
  return p;
}

}  // namespace aacc
