// Graph partitioning: assignment of vertices to P ranks.
//
// The paper's DD phase uses ParMETIS, its CutEdge-PS strategy uses METIS,
// and its Repartition-S strategy re-runs the DD partitioner. Neither library
// is available offline, so src/partition provides the same algorithm family
// from scratch: a multilevel k-way partitioner (heavy-edge-matching
// coarsening, greedy region growing, boundary refinement) plus the trivial
// baselines the ablation study compares against.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "graph/graph.hpp"

namespace aacc {

inline constexpr Rank kNoRank = -1;

struct Partition {
  /// Rank per vertex id; kNoRank for tombstoned vertices.
  std::vector<Rank> assignment;
  Rank num_parts = 0;

  [[nodiscard]] Rank of(VertexId v) const { return assignment[v]; }
};

struct PartitionMetrics {
  std::size_t cut_edges = 0;          ///< edges with endpoints in different parts
  std::size_t max_part = 0;           ///< largest part (alive vertices)
  std::size_t min_part = 0;           ///< smallest part
  double imbalance = 0.0;             ///< max_part / (alive / parts)
  std::vector<std::size_t> part_sizes;
  std::vector<std::size_t> part_cut;  ///< cut-size per part (cut edges incident)
};

PartitionMetrics evaluate_partition(const Graph& g, const Partition& p);

/// Abstract partitioner. Implementations must assign every alive vertex a
/// rank in [0, k) and kNoRank to tombstoned vertices.
class Partitioner {
 public:
  virtual ~Partitioner() = default;
  [[nodiscard]] virtual Partition partition(const Graph& g, Rank k,
                                            Rng& rng) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

enum class PartitionerKind {
  kBlock,       ///< contiguous id blocks
  kRoundRobin,  ///< v % k
  kHash,        ///< SplitMix64(v) % k
  kBfs,         ///< BFS region growing, balanced sizes
  kMultilevel,  ///< multilevel k-way cut minimization (METIS substitute)
};

std::unique_ptr<Partitioner> make_partitioner(PartitionerKind kind);
const char* partitioner_name(PartitionerKind kind);

/// Convenience wrapper: build + run.
Partition partition_graph(const Graph& g, Rank k, PartitionerKind kind, Rng& rng);

}  // namespace aacc
