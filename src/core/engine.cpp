#include "core/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <thread>

#include "analysis/closeness.hpp"
#include "analysis/quality.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/rank_engine.hpp"
#include "runtime/comm.hpp"
#include "serve/context.hpp"
#include "runtime/serialize.hpp"

namespace aacc {

void RunStats::accumulate(const RunStats& other) {
  wall_seconds += other.wall_seconds;
  dd_seconds += other.dd_seconds;
  total_cpu_seconds += other.total_cpu_seconds;
  max_rank_cpu_seconds += other.max_rank_cpu_seconds;
  modeled_makespan_seconds += other.modeled_makespan_seconds;
  for (const auto& [phase, secs] : other.cpu_by_phase) cpu_by_phase[phase] += secs;
  total_bytes += other.total_bytes;
  total_messages += other.total_messages;
  frame_overhead_bytes += other.frame_overhead_bytes;
  retransmits += other.retransmits;
  modeled_network_seconds_serialized += other.modeled_network_seconds_serialized;
  modeled_network_seconds_shifted += other.modeled_network_seconds_shifted;
  modeled_network_seconds_flood += other.modeled_network_seconds_flood;
  rc_steps += other.rc_steps;
  rc_drain_cpu_seconds += other.rc_drain_cpu_seconds;
  rc_drain_modeled_seconds += other.rc_drain_modeled_seconds;
  rc_exchange_wait_seconds += other.rc_exchange_wait_seconds;
  rc_max_inflight_depth =
      std::max(rc_max_inflight_depth, other.rc_max_inflight_depth);
  rc_blocked_on_seconds += other.rc_blocked_on_seconds;
  for (const auto& [rank, secs] : other.rc_blocked_on_by_rank) {
    rc_blocked_on_by_rank[rank] += secs;
  }
  histogram_summary = other.histogram_summary;  // registry is cumulative
  recoveries += other.recoveries;
  recovery_log.insert(recovery_log.end(), other.recovery_log.begin(),
                      other.recovery_log.end());
  cut_edges_initial = other.cut_edges_initial;  // latest run's view
  cut_edges_final = other.cut_edges_final;
  imbalance_final = other.imbalance_final;
  dv_resident_bytes = other.dv_resident_bytes;  // step-boundary gauges
  dv_cold_bytes = other.dv_cold_bytes;
  dv_promotions += other.dv_promotions;  // run totals
  dv_demotions += other.dv_demotions;
  dv_decode_seconds += other.dv_decode_seconds;
}

AnytimeEngine::AnytimeEngine(Graph g, EngineConfig cfg)
    : graph_(std::move(g)), cfg_(cfg) {
  cfg_.validate();
}

AnytimeEngine::AnytimeEngine(Graph g, Checkpoint checkpoint, EngineConfig cfg)
    : graph_(std::move(g)), cfg_(cfg), resume_(std::move(checkpoint)),
      resuming_(true) {
  cfg_.validate();
  // Structural validation up front (CheckpointError on shape/world-size
  // mismatch, bad magic header, unknown version); deep blob truncation is
  // caught on restore inside the rank threads.
  validate_checkpoint(resume_, cfg_.num_ranks);
  // Don't immediately re-checkpoint at the same step on resume.
  if (cfg_.checkpoint_at_step <= resume_.step) {
    cfg_.checkpoint_at_step = kNoCheckpointStep;
  }
}

double RunResult::closeness_of(VertexId v) const { return closeness.at(v); }

double RunResult::harmonic_of(VertexId v) const { return harmonic.at(v); }

std::vector<VertexId> RunResult::top_closeness(std::size_t k) const {
  return top_k(closeness, k);
}

std::vector<VertexId> RunResult::top_harmonic(std::size_t k) const {
  return top_k(harmonic, k);
}

RunResult AnytimeEngine::run(const EventSchedule& schedule) {
  if (ran_) {
    throw EngineStateError(
        "AnytimeEngine::run is one-shot: the distributed state was consumed "
        "by the first run; construct a new engine (or resume from a "
        "checkpoint) to run again");
  }
  ran_ = true;

  // Validate schedule ordering and refine-mode soundness.
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    AACC_CHECK_MSG(schedule[i - 1].at_step <= schedule[i].at_step,
                   "EventSchedule must be sorted by at_step");
  }
  if (cfg_.refine == RefineMode::kBoundaryFloydWarshall) {
    for (const EventBatch& b : schedule) {
      for (const Event& e : b.events) {
        AACC_CHECK_MSG(!std::holds_alternative<EdgeDeleteEvent>(e) &&
                           !std::holds_alternative<WeightChangeEvent>(e) &&
                           !std::holds_alternative<VertexDeleteEvent>(e),
                       "boundary-FW refinement is additive-only (see config.hpp)");
      }
    }
  }

  detail::DriverArgs args;
  args.graph = &graph_;
  args.cfg = cfg_;
  args.schedule = &schedule;
  args.resume = &resume_;
  args.resuming = resuming_;
  return detail::run_driver(args);
}

namespace detail {

RunResult run_driver(const DriverArgs& args) {
  // Batch mode and live mode share this driver verbatim; the locals below
  // keep the historical member names so the body reads unchanged.
  Graph& graph_ = *args.graph;
  const EngineConfig& cfg_ = args.cfg;
  const bool resuming_ = args.resuming;
  const Checkpoint no_resume;
  const Checkpoint& resume_ =
      args.resume != nullptr ? *args.resume : no_resume;
  serve::ServeContext* const serve = args.serve;
  const bool live = serve != nullptr;
  // In live mode the consumed-batch journal is the schedule. It only grows
  // while rank threads run, so every snapshot taken here (start, after a
  // failed attempt, before result assembly — all joined-world points) is a
  // coherent replay prefix.
  EventSchedule live_sched;
  if (live) live_sched = serve->feed.journal_copy();
  const EventSchedule& schedule = live ? live_sched : *args.schedule;

  RunResult out;
  Timer wall;

  // Observability. One Tracer spans all supervised attempts (failed
  // attempts' spans stay in the rings, so the trace shows the whole
  // recovery story), and one metrics registry per rank accumulates across
  // attempts for honest failed-work accounting; both are merged after the
  // rank world has joined.
  std::unique_ptr<obs::Tracer> tracer;
  if (cfg_.trace.enabled) {
    // Subtrack count covers the widest worker pool either phase can open
    // (the same auto rule as RankEngine::ia_thread_count / rc_thread_count).
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const auto resolve = [&](std::size_t configured) {
      return configured != 0
                 ? configured
                 : std::clamp<std::size_t>(
                       hw / static_cast<unsigned>(cfg_.num_ranks), 1, 8);
    };
    tracer = std::make_unique<obs::Tracer>(
        cfg_.num_ranks,
        std::max(resolve(cfg_.ia_threads), resolve(cfg_.rc_threads)),
        cfg_.trace);
  }
  obs::TraceTrack* const drv = tracer ? &tracer->driver() : nullptr;
  std::vector<obs::MetricsRegistry> rank_metrics(
      static_cast<std::size_t>(cfg_.num_ranks));

  // Progress feed (docs/OBSERVABILITY.md §Progress events). Driver-owned so
  // the estimator state and sinks survive supervised attempts; rank 0 emits
  // per-step events, this thread emits recovery/done events while the rank
  // world is joined — never concurrently.
  std::unique_ptr<obs::ProgressEmitter> progress;
  if (cfg_.progress.active()) {
    progress = std::make_unique<obs::ProgressEmitter>(cfg_.progress);
    if (!progress->file_ok()) {
      // Telemetry is diagnostics: an unwritable path must not fail the run
      // (same policy as trace export).
      std::fprintf(stderr,
                   "[aacc] warning: could not open progress feed %s\n",
                   cfg_.progress.path.c_str());
    }
  }

  // ---- DD phase (driver side, like mpiexec distributing partitions).
  // A resumed run skips it: the data distribution lives in the blobs. ----
  Partition part;
  if (!resuming_) {
    const obs::ScopedSpan dd_span(drv, "dd");
    Timer dd_timer;
    Rng rng(cfg_.seed);
    part = partition_graph(graph_, cfg_.num_ranks, cfg_.dd_partitioner, rng);
    out.stats.dd_seconds = dd_timer.seconds();
    out.stats.cut_edges_initial = evaluate_partition(graph_, part).cut_edges;
  }

  const auto edges = graph_.edges();

  // Checkpoint slots (one blob per rank) when a checkpoint is requested.
  const bool want_checkpoint = cfg_.checkpoint_at_step != kNoCheckpointStep;
  std::vector<std::vector<std::byte>> slots(
      static_cast<std::size_t>(cfg_.num_ranks));

  // ---- IA + RC on the rank world, under supervision ----
  // One World is reused across supervised attempts so ledgers accumulate:
  // work wasted by a failed attempt is honestly charged, and the
  // injector's one-shot crash flags keep a replay from re-dying at the
  // same point.
  std::optional<rt::FaultInjector> injector;
  if (cfg_.faults.any()) injector.emplace(cfg_.faults);
  std::optional<PeriodicCheckpoints> periodic;
  if (cfg_.checkpoint_every > 0) periodic.emplace(cfg_.num_ranks);

  rt::World world(cfg_.num_ranks, cfg_.logp, cfg_.transport);
  if (injector) world.install_faults(&*injector);
  if (cfg_.health.enabled) world.install_health(cfg_.health);
  if (tracer) world.install_tracer(tracer.get());
  // Flow stamping rides the tracer: without one there is nowhere to record
  // the flow:send/flow:recv instants, so the wire stays unstamped (and
  // bit-identical to the v2.1 format).
  world.install_flow_stamping(tracer != nullptr && cfg_.trace.flow_stamping);

  std::vector<std::unique_ptr<RankEngine>> engines(
      static_cast<std::size_t>(cfg_.num_ranks));
  std::vector<std::size_t> rc_steps(static_cast<std::size_t>(cfg_.num_ranks), 0);

  // Supervision state, rewritten between attempts and read-only while rank
  // threads run.
  enum class Mode { kFresh, kResume, kDegraded, kAdopt };
  Mode mode = resuming_ ? Mode::kResume : Mode::kFresh;
  Checkpoint restart = resume_;  // used in kResume
  std::vector<bool> dead(static_cast<std::size_t>(cfg_.num_ranks), false);
  std::vector<Rank> newly_dead;  // poison targets of the next degraded attempt
  std::vector<std::vector<std::byte>> stash(
      static_cast<std::size_t>(cfg_.num_ranks));
  std::size_t degraded_step = 0;  // survivor restart cursors (degrade + adopt)
  std::size_t degraded_batch = 0;
  std::vector<Rank> ghost_owner;  // the map ghosts track (O_new under adopt)
  std::uint64_t ghost_vertices_added = 0;
  // Adoption plan (Mode::kAdopt): driver-owned copies of the dead ranks'
  // snapshot blobs (AdoptShards holds pointers into them), the ranks the
  // round-robin deal must skip, and per-ladder-rung budget accounting.
  RankEngine::AdoptShards adopt_plan;
  std::vector<std::vector<std::byte>> adopt_blobs;
  std::vector<Rank> adopt_skip;
  std::vector<std::size_t> rung_used(cfg_.recovery_policy.size(), 0);
  // MTTR probe (docs/FAULTS.md §Recovery timing): the next attempt's ranks
  // fetch-max steady-now into recovery_mark at their first completed step
  // >= mttr_mark_step; the pending RecoveryRecord is resolved against the
  // death-declaration time at the next failure or at run completion.
  std::atomic<std::int64_t> recovery_mark{-1};
  bool mttr_pending = false;
  std::size_t mttr_mark_step = 0;
  std::size_t mttr_record_idx = 0;
  std::int64_t mttr_death_ns = 0;
  const auto steady_ns = [] {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  };
  const auto resolve_pending_mttr = [&] {
    if (!mttr_pending) return;
    mttr_pending = false;
    const std::int64_t mark = recovery_mark.load(std::memory_order_relaxed);
    if (mark >= mttr_death_ns) {
      out.stats.recovery_log[mttr_record_idx].mttr_seconds =
          static_cast<double>(mark - mttr_death_ns) / 1e9;
    }
  };

  const auto attempt_fn = [&](rt::Comm& comm) {
    const auto me = static_cast<std::size_t>(comm.rank());
    RankEngine::Init init;
    init.me = comm.rank();
    init.world = cfg_.num_ranks;
    init.schedule = &schedule;
    init.cfg = cfg_;
    init.checkpoint_slot = &slots[me];
    init.injector = injector ? &*injector : nullptr;
    init.tracer = tracer.get();
    init.metrics = &rank_metrics[me];
    init.serve = serve;
    // The driver rank emits; everyone else only feeds the gather. Rank 0
    // keeps the emitter even as a ghost — the merged survivor data still
    // flows through its seat in the collectives.
    init.progress = me == 0 ? progress.get() : nullptr;
    bool fresh = false;
    switch (mode) {
      case Mode::kFresh:
        init.owner = part.assignment;
        init.edges = &edges;
        init.periodic = periodic ? &*periodic : nullptr;
        fresh = true;
        break;
      case Mode::kResume:
        init.restore_blob = &restart.rank_blobs[me];
        init.start_step = restart.step + 1;
        init.start_batch = restart.next_batch;
        init.periodic = periodic ? &*periodic : nullptr;
        break;
      case Mode::kDegraded:
        init.start_step = degraded_step;
        init.start_batch = degraded_batch;
        if (dead[me]) {
          // A ghost keeps the dead rank's seat in the SPMD collectives: it
          // owns no rows but tracks the owner map and consumes the event
          // feed so the survivors' protocol is undisturbed.
          init.ghost = true;
          init.owner = ghost_owner;
          init.edges = &edges;
          init.start_vertices_added = ghost_vertices_added;
        } else {
          init.restore_blob = &stash[me];
          init.poison_ranks = newly_dead;
        }
        break;
      case Mode::kAdopt:
        // Shard adoption (docs/FAULTS.md §Shard adoption): survivors restore
        // their stash, then rebuild topology under the rewritten owner map
        // and re-derive the adopted rows; ghosts hold the dead seats. The
        // periodic store stays live so further deaths remain adoptable, and
        // the round-robin deal skips the ghost seats on every rank.
        init.start_step = degraded_step;
        init.start_batch = degraded_batch;
        init.periodic = periodic ? &*periodic : nullptr;
        init.assign_skip = adopt_skip;
        if (dead[me]) {
          init.ghost = true;
          init.owner = ghost_owner;
          init.edges = &edges;
          init.start_vertices_added = ghost_vertices_added;
        } else {
          init.restore_blob = &stash[me];
          init.owner = ghost_owner;  // O_new rides in the owner field
          init.adopt = &adopt_plan;
        }
        break;
    }
    if (mttr_pending) {
      init.recovery_mark_step = mttr_mark_step;
      init.recovery_mark = &recovery_mark;
    }
    // Constructed into the shared slot immediately so a failing rank's
    // partial state is stashed for the supervisor (survivors' pending sends
    // and cursors seed the next attempt).
    engines[me] = std::make_unique<RankEngine>(init, comm);
    RankEngine& engine = *engines[me];
    if (fresh) {
      engine.run_ia();
      comm.barrier();  // IA/RC phase boundary
    }
    rc_steps[me] = engine.run_rc();
  };

  const auto rethrow_root = [](const rt::World::RunReport& report) {
    for (const Rank r : report.failed) {
      try {
        std::rethrow_exception(report.errors[static_cast<std::size_t>(r)]);
      } catch (const rt::PeerFailedError&) {
        // collateral; keep looking for the root cause
      }
    }
    std::rethrow_exception(
        report.errors[static_cast<std::size_t>(report.failed.front())]);
  };

  for (;;) {
    const rt::World::RunReport report = [&] {
      const obs::ScopedSpan attempt_span(drv, "attempt");
      return world.run_contained(attempt_fn);
    }();
    if (report.ok()) break;
    // The journal grew during the failed attempt; refresh the live schedule
    // so replay windows and batch cursors are computed against everything
    // rank 0 actually consumed.
    if (live) live_sched = serve->feed.journal_copy();

    // Classify: injected crashes and transport failures are recoverable
    // roots; PeerFailedError is collateral damage on survivors; anything
    // else (CheckpointError, logic errors) is a real bug and propagates.
    std::vector<Rank> roots;
    for (const Rank r : report.failed) {
      try {
        std::rethrow_exception(report.errors[static_cast<std::size_t>(r)]);
      } catch (const rt::InjectedCrash&) {
        roots.push_back(r);
      } catch (const rt::PeerFailedError&) {
        // survivor interrupted by a failed peer
      } catch (const rt::TransportError&) {
        roots.push_back(r);
      }
    }
    // Health supervision can declare a wedged rank dead while the rank
    // itself later returns without an exception of its own: union the
    // declarations in so the ladder treats it as a root too.
    for (const Rank r : world.declared_dead()) {
      if (std::find(roots.begin(), roots.end(), r) == roots.end()) {
        roots.push_back(r);
      }
    }
    if (roots.empty()) rethrow_root(report);
    if (out.stats.recoveries >= cfg_.max_recoveries) rethrow_root(report);
    ++out.stats.recoveries;
    // MTTR bookkeeping: a probe from the previous recovery resolves now
    // (the run got this far, so the mark is final), then the death
    // declaration for this failure is timestamped.
    resolve_pending_mttr();
    const std::int64_t death_ns = steady_ns();
    std::size_t death_step = 0;
    for (const auto& engine : engines) {
      if (engine != nullptr) {
        death_step = std::max(death_step, engine->current_step());
      }
    }
    for (const Rank r : roots) dead[static_cast<std::size_t>(r)] = true;
    // Recovery events are emitted from this (driver) thread; the rank
    // world has joined, so sinks stay single-writer.
    const auto emit_recovery = [&](const char* kind, std::size_t at_step) {
      if (!progress) return;
      progress->recoveries = out.stats.recoveries;
      obs::ProgressEvent ev;
      ev.phase = "recovery";
      ev.detail = kind;
      ev.step = at_step;
      ev.ranks = cfg_.num_ranks;
      ev.recoveries = out.stats.recoveries;
      progress->emit(ev);
    };
    const auto push_record = [&](const char* kind, std::size_t at_step,
                                 std::size_t mark_step) {
      out.stats.recovery_log.push_back({kind, at_step, -1.0});
      mttr_pending = true;
      mttr_record_idx = out.stats.recovery_log.size() - 1;
      mttr_mark_step = mark_step;
      mttr_death_ns = death_ns;
      recovery_mark.store(-1, std::memory_order_relaxed);
    };

    // Every survivor stopped blocked in the same step's collective (crashes
    // fire at the step top or mid-exchange, both before ingest), so their
    // cursors agree; verify, then stash their state for restore. Shared by
    // the adopt and degrade rungs.
    const auto stash_survivors = [&]() -> const RankEngine* {
      const RankEngine* witness = nullptr;
      for (Rank r = 0; r < cfg_.num_ranks; ++r) {
        const auto idx = static_cast<std::size_t>(r);
        if (dead[idx]) continue;
        AACC_CHECK_MSG(engines[idx] != nullptr,
                       "survivor rank " << r << " has no stashed engine");
        const RankEngine& eng = *engines[idx];
        if (witness == nullptr) {
          witness = &eng;
        } else {
          AACC_CHECK_MSG(eng.current_step() == witness->current_step() &&
                             eng.current_batch() == witness->current_batch(),
                         "survivors stopped at different cursors; a partial "
                         "restart would be incoherent (rank "
                             << r << " at step " << eng.current_step()
                             << " batch " << eng.current_batch()
                             << ", witness at step " << witness->current_step()
                             << " batch " << witness->current_batch() << ")");
        }
        rt::ByteWriter w;
        eng.serialize_state(w);
        stash[idx] = w.take();
      }
      AACC_CHECK_MSG(witness != nullptr,
                     "all ranks failed; nothing to recover on");
      return witness;
    };

    // ---- rung: shard adoption (docs/FAULTS.md §Shard adoption). The dead
    // ranks' rows move to the survivors: structure from their latest
    // snapshot blobs + structural journal replay, values re-derived from
    // the survivors' live state. Zero lost vertices, no global rollback. --
    const auto try_adopt = [&] {
      if (!periodic) {
        throw RecoveryError(
            "adoption requires periodic snapshots (checkpoint_every > 0)");
      }
      if (cfg_.add_mode == EdgeAddMode::kEager) {
        throw RecoveryError(
            "adoption requires seeded edge adds (EdgeAddMode::kEager "
            "broadcasts rows the adopted vertices do not have yet)");
      }
      if (cfg_.assign != AssignStrategy::kRoundRobin) {
        throw RecoveryError(
            "adoption requires round-robin vertex assignment (the "
            "ghost-skipping deal is only defined there)");
      }
      if (cfg_.rebalance_threshold != 0.0) {
        throw RecoveryError(
            "adoption requires automatic rebalancing off (a repartition "
            "would migrate rows back onto ghost seats)");
      }
      // Every newly dead rank must have snapshotted at least once, and its
      // blob must be structurally sound.
      std::vector<std::pair<Rank, std::pair<std::size_t, std::vector<std::byte>>>>
          snaps;
      for (const Rank r : roots) {
        auto snap = periodic->latest_for(r);
        if (!snap) {
          throw RecoveryError("adoption source rank " + std::to_string(r) +
                              " has no periodic snapshot yet");
        }
        try {
          validate_shard_blob(snap->second, r);
        } catch (const CheckpointError& e) {
          throw RecoveryError(e.what());
        }
        snaps.emplace_back(r, std::move(*snap));
      }
      const RankEngine* witness = stash_survivors();
      degraded_step = witness->current_step();
      degraded_batch = witness->current_batch();
      ghost_vertices_added = witness->vertices_added();
      // O_new: the witness map (its tombstones are current) with every
      // newly dead rank's alive vertices dealt round-robin onto the
      // ascending survivors.
      std::vector<Rank> owner = witness->local_graph().owner_map();
      std::vector<Rank> survivors;
      adopt_skip.clear();
      for (Rank r = 0; r < cfg_.num_ranks; ++r) {
        if (dead[static_cast<std::size_t>(r)]) {
          adopt_skip.push_back(r);
        } else {
          survivors.push_back(r);
        }
      }
      std::vector<bool> adopting(static_cast<std::size_t>(cfg_.num_ranks),
                                 false);
      for (const Rank r : roots) adopting[static_cast<std::size_t>(r)] = true;
      std::size_t deal = 0;
      for (VertexId v = 0; v < owner.size(); ++v) {
        const Rank o = owner[v];
        if (o == kNoRank || !adopting[static_cast<std::size_t>(o)]) continue;
        owner[v] = survivors[deal % survivors.size()];
        ++deal;
      }
      // Structural replay window: every fact in a batch at or before a
      // source's snapshot step is inside that blob, so only batches after
      // the *oldest* snapshot need replaying.
      adopt_blobs.clear();
      adopt_plan.sources.clear();
      std::size_t replay_from = degraded_batch;
      adopt_blobs.reserve(snaps.size());
      for (auto& [src, snap] : snaps) {
        (void)src;
        std::size_t first_after = 0;
        for (const EventBatch& b : schedule) {
          if (b.at_step > snap.first) break;
          ++first_after;
        }
        replay_from = std::min(replay_from, first_after);
        adopt_blobs.push_back(std::move(snap.second));
      }
      for (std::size_t i = 0; i < snaps.size(); ++i) {
        adopt_plan.sources.emplace_back(snaps[i].first, &adopt_blobs[i]);
      }
      adopt_plan.replay_from_batch = replay_from;
      ghost_owner = std::move(owner);
      // No portal poisoning: the graph did not change, so remote finite
      // values stay sound upper bounds and adopted rows re-derive quietly.
      newly_dead.clear();
      if (live) serve->adopted.store(true, std::memory_order_release);
      mode = Mode::kAdopt;
      if (drv != nullptr) {
        drv->instant("recovery:adopt", "attempt", out.stats.recoveries);
      }
      emit_recovery("adopt", degraded_step);
      push_record("adopt", degraded_step, degraded_step);
    };

    // ---- rung: checkpoint rollback: replay from the newest snapshot every
    // rank holds; replay is deterministic, so the final state is
    // bit-identical to a fault-free run. No snapshot yet -> restart the
    // whole run from scratch (also bit-identical). ----
    const auto try_rollback = [&] {
      if (!periodic) {
        throw RecoveryError(
            "rollback requires periodic snapshots (checkpoint_every > 0)");
      }
      if (auto ck = periodic->latest_consistent()) {
        ck->next_batch = 0;
        for (const EventBatch& b : schedule) {
          if (b.at_step <= ck->step) ++ck->next_batch;
        }
        restart = std::move(*ck);
        mode = Mode::kResume;
      } else {
        mode = resuming_ ? Mode::kResume : Mode::kFresh;
        restart = resume_;
      }
      // The whole-world replay resurrects every seat: ghosts and any prior
      // degraded verdict are wiped.
      std::fill(dead.begin(), dead.end(), false);
      newly_dead.clear();
      out.degraded = false;
      if (live) {
        // The replay resurrects every seat; snapshots published by the next
        // attempt drop the degraded/adopted provenance again.
        serve->degraded.store(false, std::memory_order_release);
        serve->adopted.store(false, std::memory_order_release);
      }
      if (drv != nullptr) {
        drv->instant("recovery:rollback", "attempt", out.stats.recoveries);
      }
      emit_recovery("rollback", mode == Mode::kResume ? restart.step : 0);
      push_record("rollback", death_step, death_step);
    };

    // ---- rung: degraded fallback. The root ranks' rows are lost;
    // survivors carry on and the result reports the exact coverage gap. --
    const auto try_degrade = [&] {
      if (cfg_.add_mode == EdgeAddMode::kEager ||
          cfg_.assign == AssignStrategy::kRepartition ||
          cfg_.rebalance_threshold != 0.0) {
        throw RecoveryError(
            "degraded fallback requires seeded adds and a fixed partition "
            "(enable checkpoint_every for full recovery)");
      }
      newly_dead = roots;
      const RankEngine* witness = stash_survivors();
      degraded_step = witness->current_step();
      degraded_batch = witness->current_batch();
      ghost_owner = witness->local_graph().owner_map();
      ghost_vertices_added = witness->vertices_added();
      mode = Mode::kDegraded;
      out.degraded = true;
      if (live) serve->degraded.store(true, std::memory_order_release);
      if (drv != nullptr) {
        drv->instant("recovery:degraded", "attempt", out.stats.recoveries);
      }
      emit_recovery("degraded", degraded_step);
      push_record("degraded", degraded_step, degraded_step);
    };

    // ---- walk the policy ladder: the first rung with unspent budget whose
    // preconditions hold serves the recovery. RecoveryError falls through
    // to the next rung; an exhausted ladder rethrows the last precondition
    // failure (or the failure's root cause when only budgets ran out). ----
    bool handled = false;
    std::exception_ptr precondition_failure;
    for (std::size_t i = 0; i < cfg_.recovery_policy.size() && !handled; ++i) {
      const RecoveryRung& rung = cfg_.recovery_policy[i];
      if (rung.budget != 0 && rung_used[i] >= rung.budget) continue;
      try {
        switch (rung.policy) {
          case RecoveryPolicy::kAdopt:
            try_adopt();
            break;
          case RecoveryPolicy::kRollback:
            try_rollback();
            break;
          case RecoveryPolicy::kDegrade:
            try_degrade();
            break;
        }
        ++rung_used[i];
        handled = true;
      } catch (const RecoveryError&) {
        precondition_failure = std::current_exception();
      }
    }
    if (!handled) {
      if (precondition_failure) std::rethrow_exception(precondition_failure);
      rethrow_root(report);
    }
  }
  resolve_pending_mttr();
  // Final refresh: the result must reflect every batch the closed feed's
  // journal recorded (the rank world is joined; the journal is final).
  if (live) live_sched = serve->feed.journal_copy();

  if (want_checkpoint && !slots[0].empty()) {
    out.checkpoint.rank_blobs = std::move(slots);
    out.checkpoint.step = cfg_.checkpoint_at_step;
    out.checkpoint.num_ranks = cfg_.num_ranks;
    out.checkpoint.next_batch = 0;
    for (const EventBatch& b : schedule) {
      if (b.at_step <= cfg_.checkpoint_at_step) ++out.checkpoint.next_batch;
    }
  }

  // ---- driver-side ground truth and result assembly ----
  if (drv != nullptr) drv->begin("result_assembly");
  if (out.checkpoint.valid()) {
    // The run stopped at the checkpoint: only the consumed batches are in
    // the distributed state.
    for (std::size_t b = 0; b < out.checkpoint.next_batch; ++b) {
      for (const Event& e : schedule[b].events) apply_event(graph_, e);
    }
  } else {
    apply_schedule(graph_, schedule);
  }
  const VertexId n = graph_.num_vertices();

  out.closeness.assign(n, 0.0);
  out.harmonic.assign(n, 0.0);
  if (cfg_.gather_apsp) {
    out.apsp.assign(n, std::vector<Dist>(n, kInfDist));
    out.first_hop.assign(n, std::vector<VertexId>(n, kNoVertex));
  }
  for (const auto& engine : engines) {
    const DvStore& store = engine->store();
    for (std::size_t r = 0; r < store.size(); ++r) {
      AACC_CHECK(store.columns(r) == n);
      const VertexId self = store.self(r);
      out.closeness[self] = store.closeness(r);
      out.harmonic[self] = store.harmonic(r);
      if (cfg_.gather_apsp) {
        // Full-matrix gather needs the dense rows; promotion here is fine
        // (the run is over and gather_apsp implies dense-scale memory).
        const DvRow& row = store.row(r);
        out.apsp[self] = row.dists();
        out.first_hop[self] = row.next_hops();
      }
    }
  }
  if (cfg_.gather_apsp) {
    for (VertexId v = 0; v < n; ++v) {
      if (graph_.is_alive(v)) out.apsp[v][v] = 0;
    }
  }

  // Final distribution metrics (Fig. 7's "new cut-edges" comes from
  // cut_edges_final - cut_edges_initial).
  out.final_owner = engines[0]->local_graph().owner_map();
  {
    Partition final_part;
    final_part.num_parts = cfg_.num_ranks;
    final_part.assignment = out.final_owner;
    const auto m = evaluate_partition(graph_, final_part);
    out.stats.cut_edges_final = m.cut_edges;
    out.stats.imbalance_final = m.imbalance;
  }

  if (out.degraded) {
    // Exact coverage gap: every alive vertex whose row died with its rank
    // (including vertices round-robined onto a ghost after the failure).
    for (VertexId v = 0; v < n; ++v) {
      if (graph_.is_alive(v) &&
          dead[static_cast<std::size_t>(out.final_owner[v])]) {
        out.lost_vertices.push_back(v);
      }
    }
  }

  for (const auto& engine : engines) {
    out.stats.invariant_violations += engine->invariant_violations();
  }

  // Per-step aggregates (rank logs hold cumulative counters). On a resumed
  // run the log covers only the steps executed here; `step` fields stay
  // absolute.
  out.stats.rc_steps = rc_steps[0];
  const std::size_t steps = engines[0]->step_log().size();
  out.stats.steps.resize(steps);
  for (const auto& engine : engines) {
    const auto& log = engine->step_log();
    AACC_CHECK(log.size() == steps);
    StepLocal prev{};
    for (std::size_t s = 0; s < steps; ++s) {
      StepStats& agg = out.stats.steps[s];
      agg.step = log[s].step;
      agg.bytes += log[s].bytes_sent - prev.bytes_sent;
      agg.relaxations += log[s].relaxations - prev.relaxations;
      agg.poisons += log[s].poisons - prev.poisons;
      agg.repairs += log[s].repairs - prev.repairs;
      const double cpu = log[s].cpu_seconds - prev.cpu_seconds;
      agg.sum_cpu_seconds += cpu;
      agg.max_cpu_seconds = std::max(agg.max_cpu_seconds, cpu);
      agg.sum_drain_cpu_seconds +=
          log[s].drain_cpu_seconds - prev.drain_cpu_seconds;
      agg.max_drain_modeled_seconds =
          std::max(agg.max_drain_modeled_seconds,
                   log[s].drain_modeled_seconds - prev.drain_modeled_seconds);
      agg.sum_exchange_wait_seconds +=
          log[s].exchange_wait_seconds - prev.exchange_wait_seconds;
      // exchange_inflight is a per-step high-water mark, not cumulative.
      agg.max_inflight_depth =
          std::max(agg.max_inflight_depth, log[s].exchange_inflight);
      // blocked_on is per-step too: keep the worst single blocked
      // interval across ranks and who it waited for.
      if (log[s].blocked_on_seconds > agg.max_blocked_seconds) {
        agg.max_blocked_seconds = log[s].blocked_on_seconds;
        agg.blocked_on_rank = log[s].blocked_on_rank;
      }
      prev = log[s];
    }
  }
  for (const StepStats& s : out.stats.steps) {
    out.stats.rc_drain_cpu_seconds += s.sum_drain_cpu_seconds;
    out.stats.rc_drain_modeled_seconds += s.max_drain_modeled_seconds;
    out.stats.rc_exchange_wait_seconds += s.sum_exchange_wait_seconds;
    out.stats.rc_max_inflight_depth =
        std::max(out.stats.rc_max_inflight_depth, s.max_inflight_depth);
    if (s.blocked_on_rank >= 0) {
      out.stats.rc_blocked_on_seconds += s.max_blocked_seconds;
      out.stats.rc_blocked_on_by_rank[s.blocked_on_rank] +=
          s.max_blocked_seconds;
    }
  }

  // Anytime quality snapshots.
  if (cfg_.record_step_quality) {
    out.step_harmonic.assign(steps, std::vector<double>(n, 0.0));
    for (const auto& engine : engines) {
      const auto& snaps = engine->step_quality();
      for (std::size_t s = 0; s < snaps.size() && s < steps; ++s) {
        for (const auto& [v, c] : snaps[s]) {
          out.step_harmonic[s][v] = c;
        }
      }
    }
  }

  if (drv != nullptr) drv->end("result_assembly");

  // ---- world-level accounting, folded through the metrics registry ----
  // The runtime ledgers land in each rank's registry first and RunStats
  // reads the merged registry back, so the two views cannot disagree
  // (docs/OBSERVABILITY.md: the registry is the single source of truth).
  // Gauges fold per rank in rank order, replicating the double-summation
  // order of the World::total_* helpers bit for bit.
  const auto& ledgers = world.ledgers();
  for (Rank r = 0; r < cfg_.num_ranks; ++r) {
    const rt::RankLedger& ledger = ledgers[static_cast<std::size_t>(r)];
    obs::MetricsRegistry& reg = rank_metrics[static_cast<std::size_t>(r)];
    reg.counter("transport/bytes_sent").add(ledger.bytes_sent);
    reg.counter("transport/bytes_received").add(ledger.bytes_received);
    reg.counter("transport/messages_sent").add(ledger.messages_sent);
    reg.counter("transport/messages_received").add(ledger.messages_received);
    reg.counter("transport/frame_overhead_bytes")
        .add(ledger.frame_overhead_bytes);
    reg.counter("transport/retransmits").add(ledger.retransmits);
    reg.counter("health/stragglers").add(ledger.health_stragglers);
    reg.counter("health/suspects").add(ledger.health_suspects);
    reg.counter("health/deaths_declared").add(ledger.health_dead_declared);
    for (const auto& [phase, secs] : ledger.cpu_seconds) {
      reg.gauge("cpu/phase/" + phase).add(secs);
    }
    reg.gauge("cpu/total").add(ledger.total_cpu_seconds());
  }
  obs::MetricsRegistry merged;
  for (const obs::MetricsRegistry& reg : rank_metrics) merged.merge(reg);
  if (live) {
    // Query-side counters live in the shared serve context (bumped by
    // QueryView readers); fold them in next to the rank-side serve/
    // publish metrics so the merged registry tells the whole story.
    merged.counter("serve/queries")
        .add(serve->queries.load(std::memory_order_relaxed));
    merged.counter("serve/stale_responses")
        .add(serve->stale_responses.load(std::memory_order_relaxed));
    // Query latency SLOs: the lock-free per-kind histograms recorded by
    // QueryView readers, snapshotted into the merged registry so p50/p95/
    // p99 ride the normal stats/JSON plumbing.
    merged.histogram("serve/query_ns/point").merge(serve->query_ns_point.snapshot());
    merged.histogram("serve/query_ns/top_k").merge(serve->query_ns_top_k.snapshot());
    merged.histogram("serve/query_ns/rank_of")
        .merge(serve->query_ns_rank_of.snapshot());
  }
  merged.gauge("cpu/max_rank").set(world.max_rank_cpu_seconds());
  merged.gauge("net/modeled_serialized")
      .set(world.modeled_network_seconds(rt::SchedulePolicy::kSerialized));
  merged.gauge("net/modeled_shifted")
      .set(world.modeled_network_seconds(rt::SchedulePolicy::kShifted));
  merged.gauge("net/modeled_flood")
      .set(world.modeled_network_seconds(rt::SchedulePolicy::kFlood));
  merged.gauge("time/dd_seconds").set(out.stats.dd_seconds);

  out.stats.total_cpu_seconds = merged.gauge_value("cpu/total");
  out.stats.max_rank_cpu_seconds = merged.gauge_value("cpu/max_rank");
  out.stats.total_bytes = merged.counter_value("transport/bytes_sent");
  out.stats.total_messages = merged.counter_value("transport/messages_sent");
  out.stats.frame_overhead_bytes =
      merged.counter_value("transport/frame_overhead_bytes");
  out.stats.retransmits = merged.counter_value("transport/retransmits");
  out.stats.dv_resident_bytes =
      static_cast<std::uint64_t>(merged.gauge_value("dv/resident_bytes"));
  out.stats.dv_cold_bytes =
      static_cast<std::uint64_t>(merged.gauge_value("dv/cold_bytes"));
  out.stats.dv_promotions = merged.counter_value("dv/promotions");
  out.stats.dv_demotions = merged.counter_value("dv/demotions");
  out.stats.dv_decode_seconds = merged.gauge_value("dv/decode_seconds");
  static constexpr const char* kPhasePrefix = "cpu/phase/";
  for (const auto& [name, gauge] : merged.gauges()) {
    if (name.rfind(kPhasePrefix, 0) == 0) {
      out.stats.cpu_by_phase[name.substr(10)] = gauge.value;
    }
  }
  out.stats.modeled_network_seconds_serialized =
      merged.gauge_value("net/modeled_serialized");
  out.stats.modeled_network_seconds_shifted =
      merged.gauge_value("net/modeled_shifted");
  out.stats.modeled_network_seconds_flood =
      merged.gauge_value("net/modeled_flood");
  double makespan = 0.0;
  for (const StepStats& s : out.stats.steps) makespan += s.max_cpu_seconds;
  out.stats.modeled_makespan_seconds =
      makespan + out.stats.modeled_network_seconds_serialized;
  // Percentile summaries for every histogram in the merged registry
  // (satellite of docs/OBSERVABILITY.md §Metrics): RunStats::to_json
  // emits them under "histograms".
  for (const auto& [name, h] : merged.histograms()) {
    RunStats::HistogramSummary hs;
    hs.count = h.count;
    hs.sum = h.sum;
    hs.p50 = obs::histogram_quantile(h, 0.50);
    hs.p95 = obs::histogram_quantile(h, 0.95);
    hs.p99 = obs::histogram_quantile(h, 0.99);
    out.stats.histogram_summary.emplace(name, hs);
  }
  out.metrics = std::move(merged);

  out.stats.wall_seconds = wall.seconds();

  if (progress) {
    // Terminal event: totals from the final RunStats plus the exact final
    // top-k, so a consumer that only tails the feed ends with the same
    // ranking RunResult::harmonic would give it.
    obs::ProgressEvent ev;
    ev.phase = "done";
    ev.step = out.stats.rc_steps;
    ev.ranks = cfg_.num_ranks;
    ev.settled = 0;  // not re-gathered after teardown
    ev.bytes = out.stats.total_bytes;
    ev.retransmits = out.stats.retransmits;
    ev.recoveries = out.stats.recoveries;
    ev.dv_resident_bytes = out.stats.dv_resident_bytes;
    ev.dv_cold_bytes = out.stats.dv_cold_bytes;
    ev.dv_promotions = out.stats.dv_promotions;
    ev.dv_demotions = out.stats.dv_demotions;
    if (live) {
      ev.has_serve = true;
      ev.serve_queries = serve->queries.load(std::memory_order_relaxed);
      ev.snapshot_age_steps = 0;  // terminal snapshots are exact
    }
    for (const StepStats& s : out.stats.steps) {
      ev.relaxations += s.relaxations;
      ev.poisons += s.poisons;
      ev.repairs += s.repairs;
    }
    const std::size_t k = cfg_.progress.top_k;
    std::vector<std::pair<VertexId, double>> final_top;
    for (VertexId v : top_k(out.harmonic, k)) {
      final_top.emplace_back(v, out.harmonic[v]);
    }
    if (!progress->prev_top.empty()) {
      ev.has_estimators = true;
      ev.topk_overlap =
          top_k_overlap(progress->prev_top, final_top, k);
      ev.kendall_tau = kendall_tau(progress->prev_top, final_top);
    }
    ev.top.reserve(final_top.size());
    for (const auto& [v, score] : final_top) {
      (void)score;
      ev.top.push_back(v);
    }
    progress->prev_top = std::move(final_top);
    progress->emit(ev);
  }

  if (tracer) {
    out.trace = tracer->merge();
    if (!cfg_.trace.path.empty() &&
        !obs::write_chrome_trace_file(cfg_.trace.path, out.trace)) {
      // Tracing is diagnostics: an unwritable path must not fail the run.
      std::fprintf(stderr, "[aacc] warning: could not write trace to %s\n",
                   cfg_.trace.path.c_str());
    }
  }
  return out;
}

}  // namespace detail

std::vector<VertexId> reconstruct_path(const RunResult& result, VertexId u,
                                       VertexId v) {
  AACC_CHECK_MSG(!result.first_hop.empty(),
                 "reconstruct_path requires cfg.gather_apsp");
  AACC_CHECK(u < result.first_hop.size() && v < result.first_hop.size());
  std::vector<VertexId> path{u};
  if (u == v) return path;
  if (result.apsp[u][v] == kInfDist) return {};
  VertexId cur = u;
  // Next-hop chains strictly decrease in distance, so this terminates.
  while (cur != v) {
    const VertexId next = result.first_hop[cur][v];
    AACC_CHECK_MSG(next != kNoVertex, "broken next-hop chain at " << cur);
    path.push_back(next);
    cur = next;
  }
  return path;
}

RunResult run_baseline_restart(Graph g, const EventSchedule& schedule,
                               const EngineConfig& cfg) {
  // The analysis in progress when changes arrive, plus one full rerun per
  // change batch. Only costs carry over; no partial results are reused.
  RunResult result;
  {
    AnytimeEngine initial(g, cfg);
    result = initial.run();
  }
  RunStats total = result.stats;
  for (const EventBatch& batch : schedule) {
    for (const Event& e : batch.events) apply_event(g, e);
    AnytimeEngine rerun(g, cfg);
    result = rerun.run();
    total.accumulate(result.stats);
  }
  result.stats = total;
  return result;
}

}  // namespace aacc
