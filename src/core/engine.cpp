#include "core/engine.hpp"

#include <memory>

#include "analysis/closeness.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/rank_engine.hpp"
#include "runtime/comm.hpp"

namespace aacc {

void RunStats::accumulate(const RunStats& other) {
  wall_seconds += other.wall_seconds;
  dd_seconds += other.dd_seconds;
  total_cpu_seconds += other.total_cpu_seconds;
  max_rank_cpu_seconds += other.max_rank_cpu_seconds;
  modeled_makespan_seconds += other.modeled_makespan_seconds;
  for (const auto& [phase, secs] : other.cpu_by_phase) cpu_by_phase[phase] += secs;
  total_bytes += other.total_bytes;
  total_messages += other.total_messages;
  modeled_network_seconds_serialized += other.modeled_network_seconds_serialized;
  modeled_network_seconds_shifted += other.modeled_network_seconds_shifted;
  modeled_network_seconds_flood += other.modeled_network_seconds_flood;
  rc_steps += other.rc_steps;
  cut_edges_initial = other.cut_edges_initial;  // latest run's view
  cut_edges_final = other.cut_edges_final;
  imbalance_final = other.imbalance_final;
}

AnytimeEngine::AnytimeEngine(Graph g, EngineConfig cfg)
    : graph_(std::move(g)), cfg_(cfg) {
  AACC_CHECK(cfg_.num_ranks >= 1);
}

AnytimeEngine::AnytimeEngine(Graph g, Checkpoint checkpoint, EngineConfig cfg)
    : graph_(std::move(g)), cfg_(cfg), resume_(std::move(checkpoint)),
      resuming_(true) {
  AACC_CHECK_MSG(resume_.valid(), "invalid checkpoint");
  AACC_CHECK_MSG(resume_.num_ranks == cfg_.num_ranks,
                 "checkpoint was taken with a different world size");
  // Don't immediately re-checkpoint at the same step on resume.
  if (cfg_.checkpoint_at_step <= resume_.step) {
    cfg_.checkpoint_at_step = kNoCheckpointStep;
  }
}

RunResult AnytimeEngine::run(const EventSchedule& schedule) {
  AACC_CHECK_MSG(!ran_, "AnytimeEngine::run may be called once per instance");
  ran_ = true;

  // Validate schedule ordering and refine-mode soundness.
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    AACC_CHECK_MSG(schedule[i - 1].at_step <= schedule[i].at_step,
                   "EventSchedule must be sorted by at_step");
  }
  if (cfg_.refine == RefineMode::kBoundaryFloydWarshall) {
    for (const EventBatch& b : schedule) {
      for (const Event& e : b.events) {
        AACC_CHECK_MSG(!std::holds_alternative<EdgeDeleteEvent>(e) &&
                           !std::holds_alternative<WeightChangeEvent>(e) &&
                           !std::holds_alternative<VertexDeleteEvent>(e),
                       "boundary-FW refinement is additive-only (see config.hpp)");
      }
    }
  }

  RunResult out;
  Timer wall;

  // ---- DD phase (driver side, like mpiexec distributing partitions).
  // A resumed run skips it: the data distribution lives in the blobs. ----
  Partition part;
  if (!resuming_) {
    Timer dd_timer;
    Rng rng(cfg_.seed);
    part = partition_graph(graph_, cfg_.num_ranks, cfg_.dd_partitioner, rng);
    out.stats.dd_seconds = dd_timer.seconds();
    out.stats.cut_edges_initial = evaluate_partition(graph_, part).cut_edges;
  }

  const auto edges = graph_.edges();

  // Checkpoint slots (one blob per rank) when a checkpoint is requested.
  const bool want_checkpoint = cfg_.checkpoint_at_step != kNoCheckpointStep;
  std::vector<std::vector<std::byte>> slots(
      static_cast<std::size_t>(cfg_.num_ranks));

  // ---- IA + RC on the rank world ----
  rt::World world(cfg_.num_ranks, cfg_.logp);
  std::vector<std::unique_ptr<RankEngine>> engines(
      static_cast<std::size_t>(cfg_.num_ranks));
  std::vector<std::size_t> rc_steps(static_cast<std::size_t>(cfg_.num_ranks), 0);

  world.run([&](rt::Comm& comm) {
    RankEngine::Init init;
    init.me = comm.rank();
    init.world = cfg_.num_ranks;
    init.schedule = &schedule;
    init.cfg = cfg_;
    init.checkpoint_slot = &slots[static_cast<std::size_t>(comm.rank())];
    if (resuming_) {
      init.restore_blob = &resume_.rank_blobs[static_cast<std::size_t>(comm.rank())];
      init.start_step = resume_.step + 1;
      init.start_batch = resume_.next_batch;
    } else {
      init.owner = part.assignment;
      init.edges = &edges;
    }
    auto engine = std::make_unique<RankEngine>(init, comm);
    if (!resuming_) {
      engine->run_ia();
      comm.barrier();  // IA/RC phase boundary
    }
    rc_steps[static_cast<std::size_t>(comm.rank())] = engine->run_rc();
    engines[static_cast<std::size_t>(comm.rank())] = std::move(engine);
  });

  if (want_checkpoint && !slots[0].empty()) {
    out.checkpoint.rank_blobs = std::move(slots);
    out.checkpoint.step = cfg_.checkpoint_at_step;
    out.checkpoint.num_ranks = cfg_.num_ranks;
    out.checkpoint.next_batch = 0;
    for (const EventBatch& b : schedule) {
      if (b.at_step <= cfg_.checkpoint_at_step) ++out.checkpoint.next_batch;
    }
  }

  // ---- driver-side ground truth and result assembly ----
  if (out.checkpoint.valid()) {
    // The run stopped at the checkpoint: only the consumed batches are in
    // the distributed state.
    for (std::size_t b = 0; b < out.checkpoint.next_batch; ++b) {
      for (const Event& e : schedule[b].events) apply_event(graph_, e);
    }
  } else {
    apply_schedule(graph_, schedule);
  }
  const VertexId n = graph_.num_vertices();

  out.closeness.assign(n, 0.0);
  out.harmonic.assign(n, 0.0);
  if (cfg_.gather_apsp) {
    out.apsp.assign(n, std::vector<Dist>(n, kInfDist));
    out.first_hop.assign(n, std::vector<VertexId>(n, kNoVertex));
  }
  for (const auto& engine : engines) {
    for (const DvRow& row : engine->rows()) {
      AACC_CHECK(row.size() == n);
      out.closeness[row.self()] = row.closeness();
      out.harmonic[row.self()] = harmonic_from_row(row.dists(), row.self());
      if (cfg_.gather_apsp) {
        out.apsp[row.self()] = row.dists();
        out.first_hop[row.self()] = row.next_hops();
      }
    }
  }
  if (cfg_.gather_apsp) {
    for (VertexId v = 0; v < n; ++v) {
      if (graph_.is_alive(v)) out.apsp[v][v] = 0;
    }
  }

  // Final distribution metrics (Fig. 7's "new cut-edges" comes from
  // cut_edges_final - cut_edges_initial).
  out.final_owner = engines[0]->local_graph().owner_map();
  {
    Partition final_part;
    final_part.num_parts = cfg_.num_ranks;
    final_part.assignment = out.final_owner;
    const auto m = evaluate_partition(graph_, final_part);
    out.stats.cut_edges_final = m.cut_edges;
    out.stats.imbalance_final = m.imbalance;
  }

  for (const auto& engine : engines) {
    out.stats.invariant_violations += engine->invariant_violations();
  }

  // Per-step aggregates (rank logs hold cumulative counters). On a resumed
  // run the log covers only the steps executed here; `step` fields stay
  // absolute.
  out.stats.rc_steps = rc_steps[0];
  const std::size_t steps = engines[0]->step_log().size();
  out.stats.steps.resize(steps);
  for (const auto& engine : engines) {
    const auto& log = engine->step_log();
    AACC_CHECK(log.size() == steps);
    StepLocal prev{};
    for (std::size_t s = 0; s < steps; ++s) {
      StepStats& agg = out.stats.steps[s];
      agg.step = log[s].step;
      agg.bytes += log[s].bytes_sent - prev.bytes_sent;
      agg.relaxations += log[s].relaxations - prev.relaxations;
      agg.poisons += log[s].poisons - prev.poisons;
      agg.repairs += log[s].repairs - prev.repairs;
      const double cpu = log[s].cpu_seconds - prev.cpu_seconds;
      agg.sum_cpu_seconds += cpu;
      agg.max_cpu_seconds = std::max(agg.max_cpu_seconds, cpu);
      prev = log[s];
    }
  }

  // Anytime quality snapshots.
  if (cfg_.record_step_quality) {
    out.step_harmonic.assign(steps, std::vector<double>(n, 0.0));
    for (const auto& engine : engines) {
      const auto& snaps = engine->step_quality();
      for (std::size_t s = 0; s < snaps.size() && s < steps; ++s) {
        for (const auto& [v, c] : snaps[s]) {
          out.step_harmonic[s][v] = c;
        }
      }
    }
  }

  // World-level accounting.
  out.stats.total_cpu_seconds = world.total_cpu_seconds();
  out.stats.max_rank_cpu_seconds = world.max_rank_cpu_seconds();
  out.stats.total_bytes = world.total_bytes();
  out.stats.total_messages = world.total_messages();
  for (const auto& ledger : world.ledgers()) {
    for (const auto& [phase, secs] : ledger.cpu_seconds) {
      out.stats.cpu_by_phase[phase] += secs;
    }
  }
  out.stats.modeled_network_seconds_serialized =
      world.modeled_network_seconds(rt::SchedulePolicy::kSerialized);
  out.stats.modeled_network_seconds_shifted =
      world.modeled_network_seconds(rt::SchedulePolicy::kShifted);
  out.stats.modeled_network_seconds_flood =
      world.modeled_network_seconds(rt::SchedulePolicy::kFlood);
  double makespan = 0.0;
  for (const StepStats& s : out.stats.steps) makespan += s.max_cpu_seconds;
  out.stats.modeled_makespan_seconds =
      makespan + out.stats.modeled_network_seconds_serialized;

  out.stats.wall_seconds = wall.seconds();
  return out;
}

std::vector<VertexId> reconstruct_path(const RunResult& result, VertexId u,
                                       VertexId v) {
  AACC_CHECK_MSG(!result.first_hop.empty(),
                 "reconstruct_path requires cfg.gather_apsp");
  AACC_CHECK(u < result.first_hop.size() && v < result.first_hop.size());
  std::vector<VertexId> path{u};
  if (u == v) return path;
  if (result.apsp[u][v] == kInfDist) return {};
  VertexId cur = u;
  // Next-hop chains strictly decrease in distance, so this terminates.
  while (cur != v) {
    const VertexId next = result.first_hop[cur][v];
    AACC_CHECK_MSG(next != kNoVertex, "broken next-hop chain at " << cur);
    path.push_back(next);
    cur = next;
  }
  return path;
}

RunResult run_baseline_restart(Graph g, const EventSchedule& schedule,
                               const EngineConfig& cfg) {
  // The analysis in progress when changes arrive, plus one full rerun per
  // change batch. Only costs carry over; no partial results are reused.
  RunResult result;
  {
    AnytimeEngine initial(g, cfg);
    result = initial.run();
  }
  RunStats total = result.stats;
  for (const EventBatch& batch : schedule) {
    for (const Event& e : batch.events) apply_event(g, e);
    AnytimeEngine rerun(g, cfg);
    result = rerun.run();
    total.accumulate(result.stats);
  }
  result.stats = total;
  return result;
}

}  // namespace aacc
