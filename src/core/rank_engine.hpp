// Per-rank engine of the anytime anywhere closeness-centrality algorithm.
//
// One RankEngine instance runs on each logical processor inside a
// rt::World. It owns:
//   * a LocalGraph (its sub-graph, portal adjacency, owner map),
//   * one DvRow per local vertex (distances + next hops to all vertices),
//   * portal caches: the latest received distance rows of external boundary
//     vertices,
//   * the relaxation worklist and the poison/repair queues.
//
// Protocol invariant (what makes dynamic deletions sound at any RC step):
// every finite entry satisfies  d[x][t] >= w(x, nh) + d[nh][t]  where nh is
// a *current neighbour* of x and d[nh][t] is either a local row entry or a
// portal cache entry. Values only decrease, except via explicit poisoning
// (set to infinity + cascade to dependents + queued repair). Edge weights
// are >= 1, so next-hop chains strictly decrease in distance and terminate.
//
// See DESIGN.md §"Deletions via DVR route poisoning".
#pragma once

#include <atomic>
#include <deque>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/config.hpp"
#include "core/dv_matrix.hpp"
#include "core/dv_store.hpp"
#include "core/events.hpp"
#include "core/local_graph.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/comm.hpp"
#include "runtime/faults.hpp"
#include "runtime/serialize.hpp"
#include "serve/context.hpp"

namespace aacc {

/// Per-RC-step counters recorded by each rank (assembled by the driver).
struct StepLocal {
  std::size_t step = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t relaxations = 0;  ///< successful distance decreases
  std::uint64_t poisons = 0;      ///< entries invalidated
  std::uint64_t repairs = 0;      ///< repair attempts processed
  double cpu_seconds = 0.0;
  /// CPU spent inside drain(): Σ over shard workers (the work), and the
  /// modeled parallel makespan (serial partition/merge + slowest shard) —
  /// the single-core stand-in for multicore drain wall time, mirroring the
  /// LogGP treatment of ranks. Equal on the serial path.
  double drain_cpu_seconds = 0.0;
  double drain_modeled_seconds = 0.0;
  /// Wall seconds this rank spent blocked in exchange recvs (cumulative,
  /// like the counters above — the overlap win shows up as this shrinking).
  double exchange_wait_seconds = 0.0;
  /// Max sends in flight ahead of the completed recvs across this step's
  /// collectives. Per-step maximum, NOT cumulative: the driver folds it
  /// with max, not delta.
  std::uint64_t exchange_inflight = 0;
  /// Live critical-path proxy: the longest single blocked recv interval
  /// across this step's exchanges, and the peer whose arrival ended it
  /// (-1 = never blocked). Per-step values, NOT cumulative — the driver
  /// keeps the max across ranks.
  double blocked_on_seconds = 0.0;
  std::int64_t blocked_on_rank = -1;
};

class RankEngine {
 public:
  /// Shard-adoption plan (docs/FAULTS.md §Shard adoption): survivors split
  /// the newly dead ranks' rows among themselves. `sources` holds each dead
  /// rank's latest periodic-checkpoint blob (structure only is consumed:
  /// row *values* are re-derived from the survivors' live state via the
  /// quiet repair pass, because post-snapshot deletions make blob values
  /// potentially stale-low). The schedule batches in
  /// [replay_from_batch, start_batch) are replayed structurally so edges
  /// the snapshot predates — including edges between two dead-owned
  /// vertices that no survivor's stash saw — reappear.
  struct AdoptShards {
    /// (dead rank, its latest snapshot blob), one entry per newly dead rank.
    std::vector<std::pair<Rank, const std::vector<std::byte>*>> sources;
    /// First schedule batch whose structural effects may be missing from
    /// every source blob (min over sources of the first batch after its
    /// snapshot step).
    std::size_t replay_from_batch = 0;
  };

  struct Init {
    Rank me = 0;
    Rank world = 1;
    /// Owner per vertex id (identical on all ranks).
    std::vector<Rank> owner;
    /// Full edge list; the engine keeps only locally incident edges.
    const std::vector<std::tuple<VertexId, VertexId, Weight>>* edges = nullptr;
    /// The event schedule (all ranks hold the step indices; batch contents
    /// are broadcast from rank 0 at ingestion time for honest accounting).
    const EventSchedule* schedule = nullptr;
    EngineConfig cfg;
    /// Resume path: when set, all state comes from this serialized blob
    /// (owner/edges above are ignored) and the RC loop continues at
    /// start_step / start_batch.
    const std::vector<std::byte>* restore_blob = nullptr;
    std::size_t start_step = 0;
    std::size_t start_batch = 0;
    /// Checkpoint path: when the RC loop reaches cfg.checkpoint_at_step it
    /// serializes into this slot and stops.
    std::vector<std::byte>* checkpoint_slot = nullptr;
    /// Recovery checkpointing: with cfg.checkpoint_every > 0, the rank
    /// snapshots its state into this store each k RC steps.
    PeriodicCheckpoints* periodic = nullptr;
    /// Chaos hook: polled at each RC step boundary; a scheduled crash
    /// throws rt::InjectedCrash out of run_rc. Non-owning.
    rt::FaultInjector* injector = nullptr;
    /// Degraded mode (docs/FAULTS.md): a ghost stands in for a dead rank so
    /// the SPMD collectives stay in lockstep. It owns no rows (its
    /// LocalGraph `me` is an impossible rank) but tracks the owner map and
    /// consumes the event feed like everyone else.
    bool ghost = false;
    /// Degraded mode: on construction, poison every portal-cache entry
    /// owned by these (dead) ranks — their rows are lost, so every value
    /// routed through them must be re-derived from surviving routes.
    std::vector<Rank> poison_ranks;
    /// Round-robin assignment cursor for a ghost (survivors restore theirs
    /// from the blob; the ghost must agree or owner maps diverge).
    std::uint64_t start_vertices_added = 0;
    /// Shard adoption (survivors of an adopt-mode restart only): after the
    /// stash restore, the engine rebuilds its topology under `owner` (the
    /// rewritten map — the one Init field the restore path otherwise
    /// ignores), installs fresh rows for its adopted vertices and queues
    /// their quiet re-derivation. Non-owning.
    const AdoptShards* adopt = nullptr;
    /// Ranks excluded from round-robin vertex assignment (adopt-mode
    /// restarts: a vertex dealt to a ghost seat would be lost again).
    /// Identical on every rank or owner maps diverge. Empty = no exclusion.
    std::vector<Rank> assign_skip;
    /// MTTR probe (docs/FAULTS.md §Recovery timing): when the RC loop
    /// completes a step >= recovery_mark_step, the rank folds steady-clock
    /// now into *recovery_mark (fetch-max, once per rank) — the supervisor
    /// reads the max as "recovery complete" and subtracts the death
    /// declaration time. Ghosts do not write. Non-owning, nullable.
    std::size_t recovery_mark_step = static_cast<std::size_t>(-1);
    std::atomic<std::int64_t>* recovery_mark = nullptr;
    /// Observability (non-owning, both nullable). The tracer provides this
    /// rank's main track and drain-shard subtracks; the registry receives
    /// per-step counter folds (owned by the driver so it survives
    /// supervised attempts, like the runtime ledgers).
    obs::Tracer* tracer = nullptr;
    obs::MetricsRegistry* metrics = nullptr;
    /// Progress feed (docs/OBSERVABILITY.md §Progress events): non-null on
    /// the driver rank (rank 0) only, and only when cfg.progress is active.
    /// Every rank still participates in the per-step telemetry gather
    /// (cfg.progress.active() is the SPMD-consistent switch); rank 0 merges
    /// and emits. Driver-owned so estimator state survives attempts.
    obs::ProgressEmitter* progress = nullptr;
    /// Live session context (docs/API.md §"Serving sessions"): non-null on
    /// every rank of an EngineSession run, null under batch run(). Turns on
    /// snapshot publication at publish_every granularity, the live mutation
    /// feed (rank 0 pops BatchFeed batches and broadcasts them once the
    /// replayed journal prefix is consumed) and the quiescent idle-wait
    /// instead of loop termination. Non-owning; outlives the rank threads.
    serve::ServeContext* serve = nullptr;
  };

  RankEngine(const Init& init, rt::Comm& comm);

  /// Serializes the full resumable state (topology view, DV rows with
  /// pending-send flags, portal caches, cursors).
  void serialize_state(rt::ByteWriter& w) const;

  /// Phase 2: local APSP over the rank's sub-graph (portals are reachable
  /// leaves but are not expanded — see header comment).
  void run_ia();

  /// Phase 3: recombination loop until global quiescence. Returns the
  /// number of RC steps executed.
  std::size_t run_rc();

  /// Debug/test hook: checks the DVR protocol invariant on every finite
  /// entry — the next hop is a current neighbour and
  /// d[x][t] >= w(x,nh) + d[nh][t] where the reference value comes from a
  /// local row or the portal cache (entries referencing an empty cache slot
  /// are reported with reference infinity and are allowed: the owner's
  /// value is simply unknown here). Returns human-readable violation
  /// descriptions (empty = consistent).
  [[nodiscard]] std::vector<std::string> check_invariants() const;

  // ---- post-run extraction (driver side; no communication) ----
  [[nodiscard]] const LocalGraph& local_graph() const { return lg_; }
  /// The DV row store (resident or tiered; see dv_store.hpp). Metadata
  /// reads (self/closeness/harmonic) never promote; store().row(i) does.
  [[nodiscard]] const DvStore& store() const { return *dv_; }
  [[nodiscard]] const std::vector<StepLocal>& step_log() const { return step_log_; }
  /// Total invariant violations observed (only counted when
  /// cfg.validate_each_step; must be zero on a healthy run).
  [[nodiscard]] std::size_t invariant_violations() const {
    return invariant_violations_;
  }
  /// Per-step (vertex, harmonic centrality) snapshots; filled when
  /// cfg.record_step_quality is set.
  [[nodiscard]] const std::vector<std::vector<std::pair<VertexId, double>>>&
  step_quality() const {
    return step_quality_;
  }
  /// Supervision hooks: loop cursors at the moment run_rc stopped (used to
  /// stash survivor state after a peer failure) and the round-robin cursor
  /// (used to seed a ghost).
  [[nodiscard]] std::size_t current_step() const { return cur_step_; }
  [[nodiscard]] std::size_t current_batch() const { return cur_batch_; }
  [[nodiscard]] std::uint64_t vertices_added() const { return vertices_added_; }

 private:
  // ---- relaxation machinery ----
  /// Mutation sink for the relaxation kernel. Serial entry points bind it
  /// to the engine-level queues/counters and mutate rows directly
  /// (deltas == nullptr); each drain shard binds its own queues, counters
  /// and per-row delta buffers, so the parallel hot path takes no locks and
  /// touches no shared aggregate.
  struct ShardCtx {
    std::deque<std::pair<VertexId, VertexId>>* worklist = nullptr;
    std::deque<std::pair<VertexId, VertexId>>* repairs = nullptr;
    std::uint64_t* relaxations = nullptr;
    std::uint64_t* dirty_entries = nullptr;
    std::uint64_t* repairs_run = nullptr;
    std::vector<DvRowDelta>* deltas = nullptr;   // null => direct row mutation
    std::vector<std::uint32_t>* touched = nullptr;  // rows with live deltas
  };
  /// Reusable per-shard drain state (worklists keyed by t mod shards).
  struct RcShard {
    std::deque<std::pair<VertexId, VertexId>> worklist;
    std::deque<std::pair<VertexId, VertexId>> repairs;
    std::vector<DvRowDelta> deltas;      // one slot per local row
    std::vector<std::uint32_t> touched;  // rows whose delta is live
    std::uint64_t relaxations = 0;
    std::uint64_t dirty_entries = 0;
    std::uint64_t repairs_run = 0;
    double cpu_seconds = 0.0;
  };
  /// Reusable per-worker send-assembly state for exchange().
  struct SendShard {
    std::vector<rt::ByteWriter> writers;  // one per destination rank
    std::vector<std::size_t> sent_rows;
    std::vector<Rank> subs;
    std::vector<VertexId> dirty_cols;
    std::vector<std::pair<VertexId, Dist>> entries;
    rt::ByteWriter record;
  };

  [[nodiscard]] ShardCtx serial_ctx();
  void relax(ShardCtx& ctx, VertexId x, VertexId t, Dist nd, VertexId nh);
  void relax(VertexId x, VertexId t, Dist nd, VertexId nh);
  void drain();
  void drain_parallel(std::size_t shards);
  void propagate(ShardCtx& ctx, VertexId x, VertexId t);
  void repair(ShardCtx& ctx, VertexId x, VertexId t);
  [[nodiscard]] std::size_t rc_thread_count() const;
  /// Transitively invalidates every local entry whose next-hop chain passes
  /// through a seed; seeds are (vertex, target) pairs already known bad.
  void poison_cascade(std::deque<std::pair<VertexId, VertexId>> seeds);
  void poison_entry(std::size_t row, VertexId t,
                    std::deque<std::pair<VertexId, VertexId>>& queue);

  // ---- portal cache ----
  std::vector<Dist>& cache_of(VertexId portal);
  void apply_portal_value(VertexId b, VertexId t, Dist d);

  // ---- RC step pieces ----
  void exchange();
  void apply_incoming(const std::vector<std::vector<std::byte>>& in);
  /// Decodes one peer's exchange payload and applies it (portal values
  /// relax/cascade; non-portal records drop the stale cache). Unit of the
  /// pipelined arrival-order apply.
  void apply_incoming_payload(Rank q, std::span<const std::byte> payload);
  /// Effective send-window depth for the pipelined/async exchange:
  /// cfg.exchange_window clamped to [1, P-1], 0 = auto = P-1.
  [[nodiscard]] Rank effective_exchange_window() const;
  /// Async-mode overlap: runs queued worklist propagation (never repairs —
  /// those wait for the poison barrier) between exchange arrivals.
  void drain_overlap();
  /// Records a finished collective's overlap telemetry (wait seconds,
  /// in-flight high-water) into the step accounting and trace.
  void note_exchange_overlap(const rt::PendingAllToAll& pending);
  /// One round of the poison-synchronization barrier: sends only the
  /// newly-invalidated (infinite) boundary entries, applies received
  /// poisons, cascades. Returns whether this rank generated new poisons.
  /// Repairs are deferred until the barrier drains globally — this is what
  /// prevents the classic distance-vector count-to-infinity: no repair may
  /// read a value whose witness chain is already known to be dead
  /// elsewhere.
  bool poison_sync_round();
  void ingest_batch(const std::vector<Event>& events);
  void record_step(std::size_t step);
  /// Progress telemetry (collective when cfg.progress is active, no-op
  /// otherwise): every rank gathers a bounded summary — dirty/settled
  /// counts, per-step churn deltas, queue depth, transport health, local
  /// top-k harmonic pairs — to the driver rank, which merges them in rank
  /// order, computes the online estimators vs the previous step's top-k,
  /// and emits one ProgressEvent. Called after record_step so the emitted
  /// step matches the folded metrics.
  void progress_step(const char* phase, std::size_t step);
  /// Local (vertex, harmonic) pairs, truncated to the best k by
  /// (score desc, id asc) when 0 < k < row count; unsorted row order
  /// otherwise (k = 0 means unbounded).
  [[nodiscard]] std::vector<std::pair<VertexId, double>> local_top_harmonic(
      std::size_t k) const;
  /// Live sessions only: builds a fresh immutable snapshot of this rank's
  /// closeness/harmonic values (store metadata reads — no promotion, so
  /// publication never perturbs tiered residency) and publishes it into the
  /// rank's SnapshotCell with one atomic pointer swap. Ghosts publish empty
  /// snapshots, which is what retires a dead seat's stale data from the
  /// query surface. `step` follows the progress feed's step indexing.
  void publish_snapshot(std::size_t step);

  // ---- event application ----
  void apply_edge_add(const EdgeAddEvent& e);
  void apply_edge_delete(const EdgeDeleteEvent& e);
  void apply_weight_change(const WeightChangeEvent& e);
  void apply_vertex_delete(const VertexDeleteEvent& e);
  /// Contiguous run of vertex additions, assigned by cfg.assign.
  void apply_vertex_batch(const std::vector<VertexAddEvent>& batch);
  void apply_repartition(const std::vector<VertexAddEvent>& batch);

  void eager_edge_relax(const EdgeAddEvent& e);
  void seed_through_edge(VertexId x, VertexId z, Weight w);
  void poison_first_hops(VertexId u, VertexId v,
                         std::deque<std::pair<VertexId, VertexId>>& seeds);
  void grow_columns(VertexId count);
  void add_local_row(VertexId v);
  void remove_local_row(std::int32_t row);
  void mark_finite_dirty(std::size_t row);
  void boundary_fw_pass();

  // ---- tiered-store residency (dv_store.hpp) ----
  /// End-of-step residency pass: rebuilds the boundary-row flag vector and
  /// lets the store demote settled rows back under budget. Called only when
  /// the worklist and repair queues are empty (no kQueued flag may survive
  /// demotion).
  void maintain_store();
  /// Exchange-overlap prefetch: while a collective still has arrivals in
  /// flight, decode up to `budget` cold rows that the queued worklist /
  /// repair items will touch in the next drain. Pure residency: promotion
  /// never changes observable row state, so results are identical with any
  /// prefetch schedule. The cursors persist across calls within one
  /// collective and are reset when it starts (or when drain_overlap empties
  /// the queues).
  void prefetch_pending(std::size_t budget);
  void reset_prefetch_cursors() {
    prefetch_work_pos_ = 0;
    prefetch_repair_pos_ = 0;
  }

  /// One IA Dijkstra source (row r) using caller-owned scratch buffers;
  /// `dirty_added` receives the row's newly-dirty entry count.
  void ia_source(std::size_t r, std::vector<Dist>& dist,
                 std::vector<VertexId>& hop, std::vector<VertexId>& touched,
                 std::uint64_t& dirty_added);
  [[nodiscard]] std::size_t ia_thread_count() const;

  /// Deserializes a checkpoint blob; malformed/truncated input raises
  /// CheckpointError with rank context (restore_state wraps the reader's
  /// logic_errors; _impl does the parsing).
  void restore_state(std::span<const std::byte> blob);
  void restore_state_impl(std::span<const std::byte> blob);

  /// Adopt-mode restart (called from the constructor after the stash
  /// restore): rebuilds the topology under the rewritten owner map from the
  /// union of this rank's live edges, the dead ranks' snapshot edges and
  /// the structurally replayed schedule batches; installs fresh rows for
  /// adopted vertices and queues their re-derivation (quiet poison — no
  /// markers broadcast, the graph did not change); marks every boundary
  /// row's finite entries dirty so rewired subscriptions repopulate.
  void adopt_shards(const Init& init);

  rt::Comm& comm_;
  EngineConfig cfg_;
  const EventSchedule* schedule_;
  std::size_t start_step_ = 0;
  std::size_t start_batch_ = 0;
  std::vector<std::byte>* checkpoint_slot_ = nullptr;
  PeriodicCheckpoints* periodic_ = nullptr;
  rt::FaultInjector* injector_ = nullptr;
  bool ghost_ = false;
  std::size_t cur_step_ = 0;
  std::size_t cur_batch_ = 0;
  LocalGraph lg_;
  /// The DV row collection, behind the pluggable residency layer
  /// (ResidentDvStore when cfg.dv_budget_bytes == 0, TieredDvStore
  /// otherwise). All row access goes through this store.
  std::unique_ptr<DvStore> dv_;
  std::unordered_map<VertexId, std::vector<Dist>> caches_;
  std::deque<std::pair<VertexId, VertexId>> worklist_;  // (vertex, target)
  std::deque<std::pair<VertexId, VertexId>> repairs_;
  std::uint64_t dirty_entries_ = 0;   // pending un-sent changes
  std::uint64_t vertices_added_ = 0;  // round-robin cursor (globally consistent)
  bool poison_pending_ = false;       // new poisons since the last sync round
  std::vector<Rank> assign_skip_;     // see Init::assign_skip

  // MTTR probe (see Init): fold steady-now into *recovery_mark_ once, at
  // the first completed step >= recovery_mark_step_.
  std::size_t recovery_mark_step_ = static_cast<std::size_t>(-1);
  std::atomic<std::int64_t>* recovery_mark_ = nullptr;
  bool recovery_marked_ = false;

  // Reusable scratch, cleared in place each step instead of reallocated:
  // drain shards, exchange() send-assembly shards (one in the serial case),
  // and the poison_sync_round() buffers.
  std::vector<RcShard> rc_shards_;
  std::vector<SendShard> send_shards_;
  std::vector<Rank> exch_subs_;
  std::vector<VertexId> exch_dirty_cols_;
  std::vector<std::pair<VertexId, Dist>> exch_entries_;
  rt::ByteWriter exch_record_;
  /// Per-destination payload slots for the collectives (the outer vector is
  /// the reusable part; inner buffers hand their storage to the transport).
  std::vector<std::vector<std::byte>> exch_out_;
  /// poison_sync_round() per-destination writers + sent markers.
  std::vector<rt::ByteWriter> sync_writers_;
  std::vector<std::pair<std::size_t, VertexId>> sync_markers_;
  std::vector<std::pair<VertexId, Dist>> sync_scratch_;
  /// Pipelined exchange: (row, count) spans into exch_cleared_cols_
  /// recording exactly which dirty columns the retire step cleared, so an
  /// aborted collective can re-mark its pending sends before the recovery
  /// stash is taken (deterministic mode never needs this — it retires only
  /// after the full collective returns).
  std::vector<std::pair<std::size_t, std::size_t>> exch_cleared_spans_;
  std::vector<VertexId> exch_cleared_cols_;
  /// Exchange-overlap prefetch cursors into worklist_/repairs_ (see
  /// prefetch_pending) and the reusable boundary-flag vector maintain_store
  /// hands to DvStore::maintain.
  std::size_t prefetch_work_pos_ = 0;
  std::size_t prefetch_repair_pos_ = 0;
  std::vector<std::uint8_t> boundary_flags_;

  // Observability. trace_ is this rank's main track (null = off); shard
  // workers fetch their subtrack from tracer_. The cached instrument
  // pointers make the once-per-step metric folds map-lookup-free;
  // folded_ holds the cumulative counter values already pushed to the
  // registry (record_step folds the delta).
  obs::Tracer* tracer_ = nullptr;
  obs::TraceTrack* trace_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* m_relaxations_ = nullptr;
  obs::Counter* m_poisons_ = nullptr;
  obs::Counter* m_repairs_ = nullptr;
  obs::Counter* m_steps_ = nullptr;
  obs::Gauge* m_drain_cpu_ = nullptr;
  obs::Gauge* m_drain_modeled_ = nullptr;
  obs::Histogram* m_queue_depth_ = nullptr;
  obs::Gauge* m_exch_wait_ = nullptr;
  obs::Histogram* m_exch_inflight_ = nullptr;
  obs::Gauge* m_dv_resident_ = nullptr;
  obs::Gauge* m_dv_cold_ = nullptr;
  obs::Counter* m_dv_promotions_ = nullptr;
  obs::Counter* m_dv_demotions_ = nullptr;
  obs::Gauge* m_dv_decode_ = nullptr;
  StepLocal folded_{};
  // Cumulative store counters already pushed to the registry (the dv
  // analogue of folded_).
  std::uint64_t folded_dv_promotions_ = 0;
  std::uint64_t folded_dv_demotions_ = 0;
  double folded_dv_decode_seconds_ = 0.0;
  // Progress feed. progress_active_ caches cfg_.progress.active() (the
  // SPMD-consistent switch every rank tests once per step); progress_ is
  // the driver rank's emitter (null elsewhere). queue_depth_step_
  // accumulates drain()-entry queue depths within the current step and is
  // reset by progress_step.
  bool progress_active_ = false;
  obs::ProgressEmitter* progress_ = nullptr;
  std::uint64_t queue_depth_step_ = 0;
  // Live session (see Init::serve). adopted_ marks this rank as carrying
  // adopted shards (recovery provenance stamped into its snapshots);
  // publish_index_ is the reusable (vertex, row) scratch publish_snapshot
  // argsorts. Serve metrics exist only when both serve_ and metrics_ do.
  serve::ServeContext* serve_ = nullptr;
  bool adopted_ = false;
  std::vector<std::pair<VertexId, std::uint32_t>> publish_index_;
  obs::Counter* m_serve_publishes_ = nullptr;
  obs::Gauge* m_serve_publish_seconds_ = nullptr;
  obs::Histogram* m_serve_age_ = nullptr;

  // step accounting
  std::size_t invariant_violations_ = 0;
  std::uint64_t relaxations_ = 0;
  std::uint64_t poisons_ = 0;
  std::uint64_t repair_count_ = 0;
  double drain_cpu_seconds_ = 0.0;      // cumulative, see StepLocal
  double drain_modeled_seconds_ = 0.0;  // cumulative, see StepLocal
  double exchange_wait_seconds_ = 0.0;  // cumulative, see StepLocal
  std::uint64_t exchange_inflight_step_ = 0;  // per-step max; record_step resets
  double blocked_on_seconds_step_ = 0.0;      // per-step max; record_step resets
  std::int64_t blocked_on_rank_step_ = -1;    // peer behind the max above
  std::vector<StepLocal> step_log_;
  std::vector<std::vector<std::pair<VertexId, double>>> step_quality_;
};

}  // namespace aacc
