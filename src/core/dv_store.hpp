// Pluggable residency layer for the per-rank DV matrix (ROADMAP item 1).
//
// The rank engine owns one DvStore holding its local rows. Two
// implementations share the slot plumbing defined here:
//
//   * ResidentDvStore — every row lives as a dense DvRow for the whole run;
//     the bit-identical oracle and the default (dv_budget_bytes == 0).
//   * TieredDvStore  — hot rows (dirty-in-flight, boundary, recently
//     touched) stay dense; settled rows are demoted to a delta-compressed
//     cold form (ColdDvRow, the wire-v2 codec of serialize.hpp) under an
//     LRU policy bounded by EngineConfig::dv_budget_bytes.
//
// Residency discipline:
//   * row(i) is the only thread-safe entry point: it promotes a cold row on
//     first touch (full decode under the store mutex, double-checked via the
//     per-slot atomic pointer) and is safe to call from the drain shard
//     workers. Everything else — metadata reads, dirty ops, structural ops,
//     maintain() — is serial-only, called from the owning rank thread
//     outside the sharded sections.
//   * Demotion happens only in maintain(), which the engine calls at the
//     end of an RC step when the worklist and repair queues are empty — so
//     no demoted row can carry a kQueued flag, and the dirty set (which
//     cold rows do keep, as a sorted column list) is the only live flag
//     state a cold row needs to preserve.
//   * The budget is a step-boundary bound, not a hard cap: promotions
//     inside a step may overshoot; maintain() demotes back under budget.
//
// Determinism: promotion rebuilds a DvRow whose observable state (values,
// aggregates, live dirty set, finite set) is identical to the row that was
// demoted; only the internal stale-id tails of the lazy index lists differ,
// and no engine-visible ordering depends on those (see DESIGN.md §"Tiered
// DV storage" for the full argument).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "core/dv_matrix.hpp"
#include "runtime/serialize.hpp"

namespace aacc {

/// Sorted dirty-column set of a cold row, held in delta-varint form: LEB128
/// of the first column, then gap-1 per successor — the drain backlog of a
/// demoted mid-convergence row costs ~1 byte per column instead of 4. The
/// deltas match write_ascending_ids exactly (count kept separately), so the
/// checkpoint path splices the blob verbatim. Bulk paths — ascending
/// appends, full scans, retire-all, unions — are O(size); single-column
/// insert/erase rebuild the blob, which is fine because on cold rows they
/// only run in rare poison-sync and exchange-abort paths.
class ColdDirty {
 public:
  [[nodiscard]] VertexId size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t bytes() const { return blob_.capacity(); }
  /// The raw delta bytes (write_ascending_ids payload minus the count).
  [[nodiscard]] std::span<const std::byte> deltas() const { return blob_; }

  void clear() {
    blob_.clear();
    count_ = 0;
    last_ = 0;
  }
  void shrink_to_fit() { blob_.shrink_to_fit(); }

  /// Appends a column strictly greater than every current member.
  void append(VertexId t) {
    AACC_DCHECK(count_ == 0 || t > last_);
    append_varint(count_ == 0 ? t : t - last_ - 1);
    last_ = t;
    ++count_;
  }

  void assign_sorted(const std::vector<VertexId>& cols) {
    clear();
    blob_.reserve(cols.size());  // ~1 byte per gap for dense backlogs
    for (const VertexId t : cols) append(t);
  }

  /// Visits the columns in ascending order.
  template <typename F>
  void for_each(F&& f) const {
    const std::byte* p = blob_.data();
    VertexId prev = 0;
    for (VertexId k = 0; k < count_; ++k) {
      const auto delta = static_cast<VertexId>(read_varint(p));
      prev = (k == 0) ? delta : prev + delta + 1;
      f(prev);
    }
  }

  void append_to(std::vector<VertexId>& out) const {
    out.reserve(out.size() + count_);
    for_each([&out](VertexId t) { out.push_back(t); });
  }

  [[nodiscard]] std::vector<VertexId> to_vector() const {
    std::vector<VertexId> v;
    append_to(v);
    return v;
  }

  /// O(size) rebuild; false when t is already a member.
  bool insert(VertexId t) {
    if (count_ == 0 || t > last_) {
      append(t);
      return true;
    }
    std::vector<VertexId> cols = to_vector();
    const auto it = std::lower_bound(cols.begin(), cols.end(), t);
    if (it != cols.end() && *it == t) return false;
    cols.insert(it, t);
    assign_sorted(cols);
    return true;
  }

  /// O(size) rebuild; false when t is absent.
  bool erase(VertexId t) {
    if (count_ == 0 || t > last_) return false;
    std::vector<VertexId> cols = to_vector();
    const auto it = std::lower_bound(cols.begin(), cols.end(), t);
    if (it == cols.end() || *it != t) return false;
    cols.erase(it);
    assign_sorted(cols);
    return true;
  }

  bool operator==(const ColdDirty& other) const {
    return count_ == other.count_ && blob_ == other.blob_;
  }

 private:
  void append_varint(std::uint64_t v) {
    while (v >= 0x80) {
      blob_.push_back(static_cast<std::byte>((v & 0x7f) | 0x80));
      v >>= 7;
    }
    blob_.push_back(static_cast<std::byte>(v));
  }
  static std::uint64_t read_varint(const std::byte*& p) {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      const auto b = std::to_integer<std::uint64_t>(*p++);
      v |= (b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }

  std::vector<std::byte> blob_;  ///< delta varints (no count prefix)
  VertexId count_ = 0;
  VertexId last_ = 0;  ///< largest member (valid when count_ > 0)
};

/// Delta-compressed settled row: the finite columns (self included) as a
/// wire-v2 stream — varint entry count, then per entry in ascending column
/// order a delta-coded column id (first raw, then id - prev - 1) followed
/// by the sentinel-varint distance and next hop. The row aggregates and the
/// live dirty set ride alongside so closeness snapshots, send assembly and
/// dirty retirement never need the dense form.
struct ColdDvRow {
  std::vector<std::byte> blob;
  ColdDirty dirty;  ///< live dirty columns, delta-compressed
  VertexId self = 0;
  VertexId columns = 0;  ///< logical column count (grows with the id space)
  VertexId finite = 0;   ///< finite non-self entries
  std::uint64_t sum = 0; ///< Σ finite non-self distances

  [[nodiscard]] std::size_t bytes() const {
    return sizeof(ColdDvRow) + blob.capacity() + dirty.bytes();
  }
};

/// Builds the cold form of a dense row. The caller guarantees the row holds
/// no kQueued flag (maintain()'s precondition).
ColdDvRow encode_cold_row(const DvRow& row);

/// Restore fast path: builds the cold form straight from the checkpoint's
/// packed value arrays — no dense DvRow round-trip. `dirty` must be sorted
/// ascending (the checkpoint layout guarantees it).
ColdDvRow encode_cold_row(VertexId self, const std::vector<Dist>& d,
                          const std::vector<VertexId>& nh,
                          std::vector<VertexId> dirty);

/// Full decode back to the dense form; the inverse of encode_cold_row up to
/// stale index-list tails (see file comment).
DvRow decode_cold_row(const ColdDvRow& cold);

class DvStore {
 public:
  virtual ~DvStore();

  /// Picks the implementation: 0 = fully resident, otherwise tiered with
  /// the given byte budget for hot rows.
  static std::unique_ptr<DvStore> create(std::uint64_t budget_bytes);

  [[nodiscard]] std::size_t size() const { return slots_.size(); }
  [[nodiscard]] VertexId global_columns() const { return cols_; }
  [[nodiscard]] bool is_hot(std::size_t i) const {
    return slots_[i].hot.load(std::memory_order_acquire) != nullptr;
  }

  /// Dense-row access; promotes a cold row on first touch. The only member
  /// safe to call from the drain shard workers (promotion serializes on the
  /// store mutex; the hot fast path is one acquire load).
  [[nodiscard]] DvRow& row(std::size_t i) {
    Slot& s = slots_[i];
    DvRow* p = s.hot.load(std::memory_order_acquire);
    if (p != nullptr) {
      s.touch.store(epoch_, std::memory_order_relaxed);
      return *p;
    }
    return promote(i);
  }
  /// Const access may still promote (extraction / validation walk dense
  /// rows); constness here means "does not change observable row state".
  [[nodiscard]] const DvRow& row(std::size_t i) const {
    return const_cast<DvStore*>(this)->row(i);
  }

  // ---- metadata (serial-only; never promotes) ----------------------------

  [[nodiscard]] VertexId self(std::size_t i) const;
  [[nodiscard]] VertexId columns(std::size_t i) const;
  [[nodiscard]] VertexId finite_count(std::size_t i) const;
  [[nodiscard]] std::uint64_t finite_sum(std::size_t i) const;
  [[nodiscard]] double closeness(std::size_t i) const;
  /// Bit-identical to harmonic_from_row(row.dists(), self): ascending
  /// columns, skipping self, unreachable and zero distances.
  [[nodiscard]] double harmonic(std::size_t i) const;
  [[nodiscard]] VertexId dirty_count(std::size_t i) const;
  /// Point lookups without promotion (poison scans, invariant checks).
  /// Cold rows pay a linear decode per call — serial paths only.
  [[nodiscard]] Dist probe_dist(std::size_t i, VertexId t) const;
  [[nodiscard]] VertexId probe_next_hop(std::size_t i, VertexId t) const;

  /// fn(t, dist, next_hop) for every finite column (self included) in
  /// ascending column order, without promotion. The canonical iteration
  /// order both implementations share wherever entry order is observable
  /// (route-poison seeding, edge seeding).
  template <typename Fn>
  void for_each_entry(std::size_t i, Fn&& fn) const {
    const Slot& s = slots_[i];
    if (const DvRow* p = s.hot.load(std::memory_order_acquire)) {
      const std::vector<Dist>& d = p->dists();
      const std::vector<VertexId>& nh = p->next_hops();
      for (VertexId t = 0; t < p->size(); ++t) {
        if (d[t] != kInfDist) fn(t, d[t], nh[t]);
      }
      return;
    }
    const ColdDvRow& c = *s.cold;
    rt::ByteReader r(c.blob);
    const std::uint64_t count = r.read_varint();
    VertexId prev = 0;
    for (std::uint64_t k = 0; k < count; ++k) {
      const auto delta = static_cast<VertexId>(r.read_varint());
      prev = (k == 0) ? delta : prev + delta + 1;
      const Dist d = rt::decode_u32_sentinel(r.read_varint());
      const VertexId nh = rt::decode_u32_sentinel(r.read_varint());
      fn(prev, d, nh);
    }
  }

  // ---- dirty-set operations (serial-only; work on cold rows in place) ----

  /// Appends the live dirty columns ascending with their current distances
  /// (kInfDist for poisoned columns). `cols` is caller scratch. Read-only:
  /// safe from the parallel send-assembly shards, which partition rows.
  void collect_dirty_entries(std::size_t i, std::vector<VertexId>& cols,
                             std::vector<std::pair<VertexId, Dist>>& out) const;
  /// Clears the whole dirty set; returns how many live entries were
  /// cleared, appending the cleared columns to `cleared` when non-null
  /// (the pipelined exchange journal).
  VertexId retire_dirty(std::size_t i, std::vector<VertexId>* cleared = nullptr);
  /// Clears one dirty bit; returns true if it was set.
  bool retire_dirty_one(std::size_t i, VertexId t);
  /// Sets one dirty bit; returns true if it was clean.
  bool remark_dirty(std::size_t i, VertexId t);
  /// Marks every finite column dirty; returns how many were newly dirtied.
  VertexId mark_finite_dirty(std::size_t i);
  /// Column tombstone for a deleted vertex: entry := (kInfDist, kNoVertex),
  /// dirty bit cleared. Returns true when a live dirty bit was cleared.
  bool tombstone_column(std::size_t i, VertexId v);

  // ---- structural operations (serial-only) -------------------------------

  /// Appends a fresh row (d[self]=0, everything else unreachable) for a
  /// vertex in the current global column space. Tiered stores create it
  /// directly in cold form (a one-entry blob) so bulk row creation never
  /// materializes O(n) dense state.
  virtual void append_fresh(VertexId self) = 0;
  /// Appends / replaces with a caller-built dense row (migration,
  /// restore). The row is hot until the next maintain().
  void append(DvRow&& r);
  void put(std::size_t i, DvRow&& r);
  /// Promotes (if needed) and moves the dense row out; the slot becomes
  /// invalid until put() or swap_remove() fixes it up.
  [[nodiscard]] DvRow take(std::size_t i);
  void swap_remove(std::size_t i);
  void clear();
  /// Appends `count` unreachable columns to every row (vertex additions).
  void grow_columns(VertexId count);
  /// Drops send/queue flag state of row i (repartition keeps the row in
  /// place under new ownership). Reachability and values survive.
  void reset_flags(std::size_t i);
  /// Releases slack capacity after a repartition rebuild.
  void shrink_all();

  /// Installs the IA sweep result for row i (a fresh row: self entry only).
  /// `touched` holds the reached vertices in Dijkstra settle order
  /// (possibly including src, which is skipped); dist/hop are the scratch
  /// arrays indexed by vertex id. Returns the number of entries marked
  /// dirty. The resident store replays the settle-order set/mark_dirty
  /// sequence on the dense row; the tiered store sorts and encodes the
  /// cold form directly, never materializing O(n) state.
  virtual VertexId install_ia(std::size_t i, VertexId src,
                              const std::vector<VertexId>& touched,
                              const std::vector<Dist>& dist,
                              const std::vector<VertexId>& hop) = 0;

  // ---- checkpoint fast path ----------------------------------------------

  /// Serializes row i in the checkpoint-v2 layout (self id, packed
  /// distances, packed next hops, ascending dirty ids) — byte-identical
  /// whether the row is hot or cold; cold rows transcode straight from the
  /// compressed form, O(columns) varint writes but no dense decode.
  void serialize_row(std::size_t i, rt::ByteWriter& w) const;
  /// Restore fast path: installs a row at slot i straight in cold form.
  /// Only meaningful on tiered stores; resident stores decode to dense.
  virtual void put_cold(std::size_t i, ColdDvRow&& cold) = 0;

  // ---- residency control -------------------------------------------------

  /// End-of-step residency pass. Precondition: the engine's worklist and
  /// repair queues are empty (no row carries kQueued). `is_boundary(i)`
  /// steers the LRU: boundary rows are demoted last.
  virtual void maintain(const std::vector<std::uint8_t>& is_boundary) = 0;
  /// Promote-ahead hook for exchange overlap: decodes row i now (if cold)
  /// so the next drain's touch is a pointer load. Serial-only (the rank
  /// thread between collective arrivals).
  void prefetch(std::size_t i) { (void)row(i); }
  void promote_all();

  // ---- observability -----------------------------------------------------

  [[nodiscard]] std::uint64_t resident_bytes() const { return resident_bytes_; }
  [[nodiscard]] std::uint64_t cold_bytes() const { return cold_bytes_; }
  [[nodiscard]] std::uint64_t promotions() const { return promotions_; }
  [[nodiscard]] std::uint64_t demotions() const { return demotions_; }
  [[nodiscard]] double decode_seconds() const { return decode_seconds_; }

 protected:
  /// One row slot. `hot` owns the dense row when resident (published with
  /// release semantics by promotion); `cold` owns the compressed form
  /// otherwise. Exactly one is non-null for a valid slot. Slots move only
  /// during serial structural ops.
  struct Slot {
    std::atomic<DvRow*> hot{nullptr};
    std::atomic<std::uint32_t> touch{0};
    std::unique_ptr<ColdDvRow> cold;

    Slot() = default;
    Slot(Slot&& o) noexcept
        : hot(o.hot.load(std::memory_order_relaxed)),
          touch(o.touch.load(std::memory_order_relaxed)),
          cold(std::move(o.cold)) {
      o.hot.store(nullptr, std::memory_order_relaxed);
    }
    Slot& operator=(Slot&& o) noexcept {
      release_hot();
      hot.store(o.hot.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
      touch.store(o.touch.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
      cold = std::move(o.cold);
      o.hot.store(nullptr, std::memory_order_relaxed);
      return *this;
    }
    ~Slot() { release_hot(); }
    void release_hot() {
      delete hot.load(std::memory_order_relaxed);
      hot.store(nullptr, std::memory_order_relaxed);
    }
  };

  DvStore() = default;

  /// Slow path of row(): decode + publish under the mutex.
  DvRow& promote(std::size_t i);

  [[nodiscard]] const ColdDvRow& cold_of(std::size_t i) const {
    AACC_DCHECK(slots_[i].cold != nullptr);
    return *slots_[i].cold;
  }
  [[nodiscard]] ColdDvRow& cold_of(std::size_t i) {
    AACC_DCHECK(slots_[i].cold != nullptr);
    return *slots_[i].cold;
  }
  void set_hot(std::size_t i, DvRow&& r) {
    slots_[i].release_hot();
    slots_[i].cold.reset();
    slots_[i].hot.store(new DvRow(std::move(r)), std::memory_order_release);
    slots_[i].touch.store(epoch_, std::memory_order_relaxed);
  }

  std::vector<Slot> slots_;
  VertexId cols_ = 0;
  std::uint32_t epoch_ = 1;  ///< LRU clock, bumped once per maintain()

  std::mutex promote_mu_;  ///< serializes cold→hot decode + stats below
  std::uint64_t promotions_ = 0;
  double decode_seconds_ = 0.0;
  // Serial-only residency accounting (recomputed by maintain()).
  std::uint64_t resident_bytes_ = 0;
  std::uint64_t cold_bytes_ = 0;
  std::uint64_t demotions_ = 0;
};

/// The default store: every row dense for the whole run. maintain() only
/// refreshes the resident-byte gauge.
class ResidentDvStore final : public DvStore {
 public:
  void append_fresh(VertexId self) override;
  VertexId install_ia(std::size_t i, VertexId src,
                      const std::vector<VertexId>& touched,
                      const std::vector<Dist>& dist,
                      const std::vector<VertexId>& hop) override;
  void put_cold(std::size_t i, ColdDvRow&& cold) override;
  void maintain(const std::vector<std::uint8_t>& is_boundary) override;
};

/// Hot/cold tiered store under a byte budget (see file comment).
class TieredDvStore final : public DvStore {
 public:
  explicit TieredDvStore(std::uint64_t budget_bytes)
      : budget_bytes_(budget_bytes) {}

  [[nodiscard]] std::uint64_t budget_bytes() const { return budget_bytes_; }

  void append_fresh(VertexId self) override;
  VertexId install_ia(std::size_t i, VertexId src,
                      const std::vector<VertexId>& touched,
                      const std::vector<Dist>& dist,
                      const std::vector<VertexId>& hop) override;
  void put_cold(std::size_t i, ColdDvRow&& cold) override;
  void maintain(const std::vector<std::uint8_t>& is_boundary) override;

 private:
  std::uint64_t budget_bytes_;
};

}  // namespace aacc
