#include "core/local_graph.hpp"

#include <algorithm>

namespace aacc {

LocalGraph::LocalGraph(
    Rank me, std::vector<Rank> owner,
    const std::vector<std::tuple<VertexId, VertexId, Weight>>& edges)
    : me_(me), owner_(std::move(owner)) {
  row_index_.assign(owner_.size(), -1);
  for (VertexId v = 0; v < owner_.size(); ++v) {
    if (owner_[v] == me_) {
      row_index_[v] = static_cast<std::int32_t>(locals_.size());
      locals_.push_back(v);
    }
  }
  adj_.resize(locals_.size());
  for (const auto& [u, v, w] : edges) {
    const bool lu = is_local(u);
    const bool lv = is_local(v);
    if (!lu && !lv) continue;
    if (lu) add_half_edge(u, v, w);
    if (lv) add_half_edge(v, u, w);
    if (lu && !lv) add_portal_edge(v, u, w);
    if (lv && !lu) add_portal_edge(u, v, w);
  }
}

bool LocalGraph::is_boundary_row(std::size_t row) const {
  for (const Edge& e : adj_[row]) {
    if (!is_local(e.to)) return true;
  }
  return false;
}

void LocalGraph::subscribers(std::size_t row, std::vector<Rank>& out) const {
  for (const Edge& e : adj_[row]) {
    const Rank r = owner_[e.to];
    if (r != me_ && r != kNoRank &&
        std::find(out.begin(), out.end(), r) == out.end()) {
      out.push_back(r);
    }
  }
}

VertexId LocalGraph::add_vertex(Rank r) {
  const auto id = static_cast<VertexId>(owner_.size());
  owner_.push_back(r);
  row_index_.push_back(-1);
  if (r == me_) {
    row_index_[id] = static_cast<std::int32_t>(locals_.size());
    locals_.push_back(id);
    adj_.emplace_back();
  }
  return id;
}

void LocalGraph::add_half_edge(VertexId from, VertexId to, Weight w) {
  adj_[static_cast<std::size_t>(row_index_[from])].push_back({to, w});
}

bool LocalGraph::erase_half_edge(VertexId from, VertexId to) {
  auto& list = adj_[static_cast<std::size_t>(row_index_[from])];
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (list[i].to == to) {
      list[i] = list.back();
      list.pop_back();
      return true;
    }
  }
  return false;
}

void LocalGraph::add_portal_edge(VertexId portal, VertexId local, Weight w) {
  portal_adj_[portal].emplace_back(local, w);
}

void LocalGraph::erase_portal_edge(VertexId portal, VertexId local) {
  const auto it = portal_adj_.find(portal);
  if (it == portal_adj_.end()) return;
  auto& list = it->second;
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (list[i].first == local) {
      list[i] = list.back();
      list.pop_back();
      break;
    }
  }
  if (list.empty()) portal_adj_.erase(it);
}

void LocalGraph::add_edge(VertexId u, VertexId v, Weight w) {
  const bool lu = is_local(u);
  const bool lv = is_local(v);
  if (!lu && !lv) return;
  if (lu) add_half_edge(u, v, w);
  if (lv) add_half_edge(v, u, w);
  if (lu && !lv) add_portal_edge(v, u, w);
  if (lv && !lu) add_portal_edge(u, v, w);
}

void LocalGraph::remove_edge(VertexId u, VertexId v) {
  const bool lu = is_local(u);
  const bool lv = is_local(v);
  if (!lu && !lv) return;
  if (lu) AACC_CHECK(erase_half_edge(u, v));
  if (lv) AACC_CHECK(erase_half_edge(v, u));
  if (lu && !lv) erase_portal_edge(v, u);
  if (lv && !lu) erase_portal_edge(u, v);
}

void LocalGraph::set_weight(VertexId u, VertexId v, Weight w) {
  auto update = [&](VertexId from, VertexId to) {
    if (!is_local(from)) return;
    for (Edge& e : adj_[static_cast<std::size_t>(row_index_[from])]) {
      if (e.to == to) e.w = w;
    }
  };
  update(u, v);
  update(v, u);
  auto update_portal = [&](VertexId portal, VertexId local) {
    const auto it = portal_adj_.find(portal);
    if (it == portal_adj_.end()) return;
    for (auto& [lv2, pw] : it->second) {
      if (lv2 == local) pw = w;
    }
  };
  if (is_local(u) && !is_local(v)) update_portal(v, u);
  if (is_local(v) && !is_local(u)) update_portal(u, v);
}

std::int32_t LocalGraph::remove_vertex(VertexId v) {
  AACC_CHECK_MSG(owner_[v] != kNoRank, "double vertex delete: " << v);
  const bool was_local = is_local(v);
  std::int32_t removed_row = -1;
  if (was_local) {
    removed_row = row_index_[v];
    const auto row = static_cast<std::size_t>(removed_row);
    // Remove remaining incident edges (caller should have deleted them via
    // edge events already, but stay safe for direct use).
    std::vector<Edge> incident = adj_[row];
    for (const Edge& e : incident) {
      remove_edge(v, e.to);
    }
    // Swap-remove the row.
    const std::size_t last = locals_.size() - 1;
    if (row != last) {
      locals_[row] = locals_[last];
      adj_[row] = std::move(adj_[last]);
      row_index_[locals_[row]] = removed_row;
    }
    locals_.pop_back();
    adj_.pop_back();
    row_index_[v] = -1;
  } else {
    // Drop cut edges into the deleted remote vertex.
    const auto it = portal_adj_.find(v);
    if (it != portal_adj_.end()) {
      const auto neighbors = it->second;  // copy: remove_edge mutates the map
      for (const auto& [local, w] : neighbors) {
        (void)w;
        AACC_CHECK(erase_half_edge(local, v));
      }
      portal_adj_.erase(v);
    }
  }
  owner_[v] = kNoRank;
  return removed_row;
}

Weight LocalGraph::edge_weight(VertexId u, VertexId v) const {
  const VertexId from = is_local(u) ? u : v;
  const VertexId to = is_local(u) ? v : u;
  AACC_CHECK(is_local(from));
  for (const Edge& e : adj_[static_cast<std::size_t>(row_index_[from])]) {
    if (e.to == to) return e.w;
  }
  AACC_CHECK_MSG(false, "edge (" << u << ',' << v << ") not found locally");
  return 0;
}

bool LocalGraph::has_edge(VertexId u, VertexId v) const {
  const VertexId from = is_local(u) ? u : v;
  if (!is_local(from)) return false;
  const VertexId to = is_local(u) ? v : u;
  for (const Edge& e : adj_[static_cast<std::size_t>(row_index_[from])]) {
    if (e.to == to) return true;
  }
  return false;
}

std::vector<std::tuple<VertexId, VertexId, Weight>>
LocalGraph::local_edges_for_gather() const {
  std::vector<std::tuple<VertexId, VertexId, Weight>> out;
  for (std::size_t row = 0; row < locals_.size(); ++row) {
    const VertexId u = locals_[row];
    for (const Edge& e : adj_[row]) {
      // Local-local edges once (u < to); cut edges reported by the owner of
      // the smaller endpoint id to avoid duplicates at the gather root.
      if (is_local(e.to)) {
        if (u < e.to) out.emplace_back(u, e.to, e.w);
      } else if (u < e.to) {
        out.emplace_back(u, e.to, e.w);
      }
    }
  }
  return out;
}

}  // namespace aacc
