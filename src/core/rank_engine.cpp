#include "core/rank_engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <ctime>
#include <numeric>
#include <queue>
#include <sstream>
#include <thread>
#include <unordered_set>

#include "analysis/closeness.hpp"
#include "analysis/quality.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "core/strategies.hpp"
#include "partition/multilevel.hpp"
#include "runtime/serialize.hpp"

namespace aacc {

namespace {

double thread_cpu_now() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

// Checkpoint blob magic/version constants live in core/checkpoint.hpp
// (shared with validate_checkpoint).

struct HeapItem {
  Dist d;
  VertexId v;
  friend bool operator>(const HeapItem& a, const HeapItem& b) { return a.d > b.d; }
};

}  // namespace

namespace {
const std::vector<std::tuple<VertexId, VertexId, Weight>> kNoEdges;
}

RankEngine::RankEngine(const Init& init, rt::Comm& comm)
    : comm_(comm),
      cfg_(init.cfg),
      schedule_(init.schedule),
      start_step_(init.start_step),
      start_batch_(init.start_batch),
      checkpoint_slot_(init.checkpoint_slot),
      periodic_(init.periodic),
      injector_(init.injector),
      ghost_(init.ghost),
      cur_step_(init.start_step),
      cur_batch_(init.start_batch),
      // A ghost impersonates a dead rank in the collectives but owns no
      // rows: its LocalGraph `me` is an impossible rank, so is_local() is
      // false for every vertex and num_local() == 0.
      lg_(init.ghost ? static_cast<Rank>(init.world) : init.me,
          init.restore_blob != nullptr ? std::vector<Rank>{} : init.owner,
          init.restore_blob != nullptr ? kNoEdges : *init.edges) {
  if (init.tracer != nullptr) {
    tracer_ = init.tracer;
    trace_ = &tracer_->track(init.me);
  }
  progress_active_ = cfg_.progress.active();
  progress_ = init.progress;
  if (init.metrics != nullptr) {
    metrics_ = init.metrics;
    m_relaxations_ = &metrics_->counter("rc/relaxations");
    m_poisons_ = &metrics_->counter("rc/poisons");
    m_repairs_ = &metrics_->counter("rc/repairs");
    m_steps_ = &metrics_->counter("rc/steps");
    m_drain_cpu_ = &metrics_->gauge("drain/cpu_seconds");
    m_drain_modeled_ = &metrics_->gauge("drain/modeled_seconds");
    m_queue_depth_ = &metrics_->histogram("rc/drain_queue_depth");
    m_exch_wait_ = &metrics_->gauge("exchange/wait_seconds");
    m_exch_inflight_ = &metrics_->histogram("exchange/inflight_depth");
    m_dv_resident_ = &metrics_->gauge("dv/resident_bytes");
    m_dv_cold_ = &metrics_->gauge("dv/cold_bytes");
    m_dv_promotions_ = &metrics_->counter("dv/promotions");
    m_dv_demotions_ = &metrics_->counter("dv/demotions");
    m_dv_decode_ = &metrics_->gauge("dv/decode_seconds");
  }
  serve_ = init.serve;
  if (serve_ != nullptr && metrics_ != nullptr) {
    m_serve_publishes_ = &metrics_->counter("serve/publishes");
    m_serve_publish_seconds_ = &metrics_->gauge("serve/publish_seconds");
    // Rank 0 samples the fleet-wide snapshot age each progress fold.
    if (init.me == 0) {
      m_serve_age_ = &metrics_->histogram("serve/snapshot_age_steps");
    }
  }
  assign_skip_ = init.assign_skip;
  recovery_mark_step_ = init.recovery_mark_step;
  recovery_mark_ = init.recovery_mark;
  dv_ = DvStore::create(cfg_.dv_budget_bytes);
  if (init.restore_blob != nullptr) {
    const obs::ScopedSpan span(trace_, "restore");
    restore_state(*init.restore_blob);
    if (init.adopt != nullptr) adopt_shards(init);
  } else {
    dv_->grow_columns(lg_.n());
    for (std::size_t r = 0; r < lg_.num_local(); ++r) {
      dv_->append_fresh(lg_.vertex_of(r));
    }
    vertices_added_ = init.start_vertices_added;
  }
  if (!init.poison_ranks.empty()) {
    // Degraded restart: the rows these ranks owned are gone, so every
    // portal-cache value they published is a dead witness. Poison the
    // cached entries; the cascade invalidates every local entry routed
    // through them and queues repairs over surviving routes.
    std::vector<bool> dead(static_cast<std::size_t>(init.world), false);
    for (const Rank d : init.poison_ranks) {
      dead[static_cast<std::size_t>(d)] = true;
    }
    const auto& owner = lg_.owner_map();
    for (const auto& [portal, adj] : lg_.portals()) {
      (void)adj;
      if (!dead[static_cast<std::size_t>(owner[portal])]) continue;
      auto it = caches_.find(portal);
      if (it == caches_.end()) continue;
      const auto& cache = it->second;
      for (VertexId t = 0; t < static_cast<VertexId>(cache.size()); ++t) {
        if (cache[t] != kInfDist) apply_portal_value(portal, t, kInfDist);
      }
    }
  }
}

// ------------------------------------------------------ checkpoint/restore

void RankEngine::serialize_state(rt::ByteWriter& w) const {
  // v2 header; restore_state also accepts legacy headerless v1 blobs.
  w.write(kCkptMagic0);
  w.write(kCkptMagic1);
  w.write(kCkptVersion2);
  // Topology view: owner map + this rank's locally incident edges (each
  // edge once from this rank's perspective; the LocalGraph constructor
  // rebuilds both half-edges and the portal index).
  w.write_vec(lg_.owner_map());
  std::vector<std::tuple<VertexId, VertexId, Weight>> edges;
  for (std::size_t r = 0; r < dv_->size(); ++r) {
    const VertexId u = lg_.vertex_of(r);
    for (const Edge& e : lg_.adj(r)) {
      if (!lg_.is_local(e.to) || u < e.to) edges.emplace_back(u, e.to, e.w);
    }
  }
  w.write(static_cast<std::uint64_t>(edges.size()));
  for (const auto& [u, v, wt] : edges) {
    w.write(u);
    w.write(v);
    w.write(wt);
  }
  // DV rows (varint-packed: distances/next hops are small or the sentinel),
  // including un-sent dirty targets (they must survive a restart or
  // subscribers would permanently miss the pending updates/poisons). Cold
  // rows transcode straight from the compressed form — byte-identical to
  // the hot path, so checkpoint cost tracks residency, not n
  // (DvStore::serialize_row).
  w.write(static_cast<std::uint64_t>(dv_->size()));
  for (std::size_t r = 0; r < dv_->size(); ++r) {
    dv_->serialize_row(r, w);
  }
  // Portal caches.
  w.write(static_cast<std::uint64_t>(caches_.size()));
  for (const auto& [portal, cache] : caches_) {
    w.write(portal);
    rt::write_packed_u32s(w, cache);
  }
  w.write(vertices_added_);
}

void RankEngine::restore_state(std::span<const std::byte> blob) {
  try {
    restore_state_impl(blob);
  } catch (const CheckpointError&) {
    throw;
  } catch (const std::logic_error& e) {
    // The bounds-checked reader reports truncation/corruption as
    // logic_error ("message underflow" etc.); re-raise with rank context
    // as the typed restore failure.
    throw CheckpointError("rank " + std::to_string(comm_.rank()) +
                          " checkpoint blob is malformed: " + e.what());
  }
}

void RankEngine::restore_state_impl(std::span<const std::byte> blob) {
  const bool v2 = blob.size() >= 3 &&
                  std::to_integer<std::uint8_t>(blob[0]) == kCkptMagic0 &&
                  std::to_integer<std::uint8_t>(blob[1]) == kCkptMagic1;
  if (blob.size() >= 2 && !v2 &&
      std::to_integer<std::uint8_t>(blob[0]) == kCkptMagic0 &&
      std::to_integer<std::uint8_t>(blob[1]) == kCkptMagic1) {
    throw CheckpointError("checkpoint blob truncated inside the header");
  }
  if (v2 && std::to_integer<std::uint8_t>(blob[2]) != kCkptVersion2) {
    throw CheckpointError(
        "unknown checkpoint version " +
        std::to_string(std::to_integer<std::uint8_t>(blob[2])));
  }
  rt::ByteReader r(v2 ? blob.subspan(3) : blob);

  auto owner = r.read_vec<Rank>();
  const auto edge_count = r.read<std::uint64_t>();
  std::vector<std::tuple<VertexId, VertexId, Weight>> edges;
  edges.reserve(edge_count);
  for (std::uint64_t i = 0; i < edge_count; ++i) {
    const auto u = r.read<VertexId>();
    const auto v = r.read<VertexId>();
    const auto wt = r.read<Weight>();
    edges.emplace_back(u, v, wt);
  }
  lg_ = LocalGraph(comm_.rank(), std::move(owner), edges);

  const auto row_count = r.read<std::uint64_t>();
  AACC_CHECK(row_count == lg_.num_local());
  dv_->clear();
  dv_->grow_columns(lg_.n());
  // Rows must sit at their LocalGraph row index; fresh slots are installed
  // first (cheap: one cold entry under the tiered store) and each decoded
  // record lands at row_of(vid).
  for (std::size_t i = 0; i < lg_.num_local(); ++i) {
    dv_->append_fresh(lg_.vertex_of(i));
  }
  const bool tiered = cfg_.dv_budget_bytes != 0;
  for (std::uint64_t i = 0; i < row_count; ++i) {
    const auto vid = r.read<VertexId>();
    auto d = v2 ? rt::read_packed_u32s(r) : r.read_vec<Dist>();
    auto nh = v2 ? rt::read_packed_u32s(r) : r.read_vec<VertexId>();
    auto dirty = v2 ? rt::read_ascending_ids(r) : r.read_vec<VertexId>();
    const std::int32_t ri = lg_.row_of(vid);
    AACC_CHECK(ri >= 0);
    dirty_entries_ += dirty.size();
    if (tiered) {
      // Restore fast path: straight into the compressed form — demoted
      // rows never round-trip through a dense DvRow.
      dv_->put_cold(static_cast<std::size_t>(ri),
                    encode_cold_row(vid, d, nh, std::move(dirty)));
    } else {
      DvRow row(vid, std::move(d), std::move(nh));
      for (const VertexId t : dirty) row.mark_dirty(t);
      dv_->put(static_cast<std::size_t>(ri), std::move(row));
    }
  }

  const auto cache_count = r.read<std::uint64_t>();
  for (std::uint64_t i = 0; i < cache_count; ++i) {
    const auto portal = r.read<VertexId>();
    caches_[portal] = v2 ? rt::read_packed_u32s(r) : r.read_vec<Dist>();
  }
  vertices_added_ = r.read<std::uint64_t>();
  if (!r.done()) {
    throw CheckpointError("trailing bytes in checkpoint blob");
  }

  // Re-arm the local queues from the restored dirty flags. On a quiesced
  // checkpoint the worklist entries are no-ops (the values are already at
  // their fixpoint), but a crash-time stash may hold changes whose *local*
  // propagation was lost with the dying step: finite dirty entries re-enter
  // the relaxation worklist, poison markers re-enter the deferred-repair
  // queue (they run after the next poison barrier drains, as always).
  std::vector<VertexId> dirty_cols;
  std::vector<std::pair<VertexId, Dist>> dirty_entries;
  for (std::size_t ri = 0; ri < dv_->size(); ++ri) {
    if (dv_->dirty_count(ri) == 0) continue;
    dirty_cols.clear();
    dirty_entries.clear();
    dv_->collect_dirty_entries(ri, dirty_cols, dirty_entries);
    const VertexId x = dv_->self(ri);
    for (const auto& [t, d] : dirty_entries) {
      if (d == kInfDist) {
        // The marker itself goes out with the next exchange() (it is still
        // dirty); the repair then runs at that step's drain, after the
        // barrier — the same ordering an undisturbed run follows. The
        // pending-poison flag is re-armed too: the stash may have been taken
        // after the flag was folded into an aborted barrier round, and
        // without it the restarted barrier could run zero rounds and let
        // repairs re-derive from peers' still-unsettled entries.
        poison_pending_ = true;
        repairs_.emplace_back(x, t);
      } else {
        // A finite dirty entry needs its kQueued flag: promote and re-arm.
        DvRow& row = dv_->row(ri);
        if (!row.test_flag(t, DvRow::kQueued)) {
          row.set_flag(t, DvRow::kQueued);
          worklist_.emplace_back(x, t);
        }
      }
    }
  }
}

// --------------------------------------------------------------- adoption

namespace {

/// Topology prefix of a checkpoint blob: owner map (discarded — the stash
/// map is newer) and the snapshotted edge list. Rows, caches and cursors
/// are deliberately not parsed: adoption consumes structure only, because
/// post-snapshot deletions can make snapshot *values* stale-low (the dead
/// rank's poison broadcasts for them completed before the crash, so
/// re-installing the old finite values would silently revoke them).
std::vector<std::tuple<VertexId, VertexId, Weight>> read_blob_edges(
    std::span<const std::byte> blob) {
  const bool v2 = blob.size() >= 3 &&
                  std::to_integer<std::uint8_t>(blob[0]) == kCkptMagic0 &&
                  std::to_integer<std::uint8_t>(blob[1]) == kCkptMagic1;
  rt::ByteReader r(v2 ? blob.subspan(3) : blob);
  (void)r.read_vec<Rank>();  // snapshot-time owner map, superseded
  const auto edge_count = r.read<std::uint64_t>();
  std::vector<std::tuple<VertexId, VertexId, Weight>> edges;
  edges.reserve(edge_count);
  for (std::uint64_t i = 0; i < edge_count; ++i) {
    const auto u = r.read<VertexId>();
    const auto v = r.read<VertexId>();
    const auto wt = r.read<Weight>();
    edges.emplace_back(u, v, wt);
  }
  return edges;
}

std::uint64_t edge_key(VertexId u, VertexId v) {
  const VertexId a = std::min(u, v);
  const VertexId b = std::max(u, v);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace

void RankEngine::adopt_shards(const Init& init) {
  const obs::ScopedSpan span(trace_, "adopt", "sources",
                             init.adopt->sources.size());
  adopted_ = true;  // recovery provenance, stamped into published snapshots
  // The rewritten owner map rides in init.owner (the one field the restore
  // path ignores); its tombstones come from the stash map, so is_alive
  // stays authoritative for everything below.
  const std::vector<Rank>& new_owner = init.owner;
  const auto alive = [&](VertexId v) { return new_owner[v] != kNoRank; };

  // 1. Merge edge sets: this rank's live incident edges first (current as
  //    of the crash), then each dead rank's snapshot edges. First wins on
  //    the unordered pair — snapshot weights may be stale, and the replay
  //    below re-asserts every post-snapshot change anyway. Edges into
  //    vertices tombstoned after the snapshot are dropped.
  std::vector<std::tuple<VertexId, VertexId, Weight>> merged;
  std::unordered_set<std::uint64_t> seen;
  const auto push = [&](VertexId u, VertexId v, Weight w) {
    if (!alive(u) || !alive(v)) return;
    if (seen.insert(edge_key(u, v)).second) merged.emplace_back(u, v, w);
  };
  for (std::size_t r = 0; r < dv_->size(); ++r) {
    const VertexId u = lg_.vertex_of(r);
    for (const Edge& e : lg_.adj(r)) {
      if (!lg_.is_local(e.to) || u < e.to) push(u, e.to, e.w);
    }
  }
  for (const auto& [source, blob] : init.adopt->sources) {
    (void)source;
    for (const auto& [u, v, w] : read_blob_edges(*blob)) push(u, v, w);
  }

  // 2. Rebuild the topology under the rewritten map. Surviving rows are
  //    re-placed below; the constructor recomputes portals/subscriptions
  //    for the new ownership. The crash-time owner map is kept around for
  //    step 6: caches of dead-owned portals must go.
  const std::vector<Rank> old_owner = lg_.owner_map();
  // Extraction promotes every surviving row: adoption is a rare, whole-rank
  // rebuild, and the migrated rows re-enter residency as hot until the next
  // maintain() pass demotes the settled ones again.
  std::vector<DvRow> kept;
  kept.reserve(dv_->size());
  for (std::size_t r = 0; r < dv_->size(); ++r) {
    kept.push_back(dv_->take(r));
  }
  dv_->clear();
  lg_ = LocalGraph(comm_.rank(), new_owner, merged);

  // 3. Structural journal replay: every batch since the oldest snapshot,
  //    in order, idempotently. Edges between two dead-owned vertices added
  //    after the snapshot exist in no blob and no stash — only here.
  //    Vertex adds/deletes are already reflected in the stash owner map;
  //    only their edge payloads need re-asserting.
  if (schedule_ != nullptr) {
    const auto replay_edge_add = [&](VertexId u, VertexId v, Weight w) {
      if (!alive(u) || !alive(v)) return;
      if (!lg_.is_local(u) && !lg_.is_local(v)) return;
      if (!lg_.has_edge(u, v)) lg_.add_edge(u, v, w);
    };
    for (std::size_t b = init.adopt->replay_from_batch;
         b < start_batch_ && b < schedule_->size(); ++b) {
      for (const Event& ev : (*schedule_)[b].events) {
        if (const auto* ea = std::get_if<EdgeAddEvent>(&ev)) {
          replay_edge_add(ea->u, ea->v, ea->w);
        } else if (const auto* ed = std::get_if<EdgeDeleteEvent>(&ev)) {
          if (lg_.has_edge(ed->u, ed->v)) lg_.remove_edge(ed->u, ed->v);
        } else if (const auto* wc = std::get_if<WeightChangeEvent>(&ev)) {
          if (lg_.has_edge(wc->u, wc->v)) {
            lg_.set_weight(wc->u, wc->v, wc->w_new);
          }
        } else if (const auto* va = std::get_if<VertexAddEvent>(&ev)) {
          for (const auto& [to, w] : va->edges) {
            replay_edge_add(va->id, to, w);
          }
        }
        // VertexDeleteEvent: the tombstone is in the stash owner map and
        // its incident edges were filtered by alive() above — nothing to do.
      }
    }
  }

  // 4. Re-place surviving rows at their new indices; adopted vertices get
  //    fresh all-infinity rows — the quiet poison. Snapshot values are
  //    never installed, so nothing stale-low can enter; re-derivation
  //    rebuilds exactly the values the survivors can currently justify.
  dv_->grow_columns(lg_.n());
  std::vector<bool> is_adopted(lg_.num_local(), true);
  for (std::size_t r = 0; r < lg_.num_local(); ++r) {
    dv_->append_fresh(lg_.vertex_of(r));
  }
  dirty_entries_ = 0;
  for (DvRow& row : kept) {
    const std::int32_t ri = lg_.row_of(row.self());
    AACC_CHECK_MSG(ri >= 0, "adoption moved a surviving rank's own vertex");
    is_adopted[static_cast<std::size_t>(ri)] = false;
    dirty_entries_ += row.dirty_count();
    dv_->put(static_cast<std::size_t>(ri), std::move(row));
  }

  // 5. Queue the quiet re-derivation of every adopted entry: repairs pull
  //    from local neighbour rows immediately and from portal caches as
  //    they repopulate. No poison markers are broadcast — the graph did
  //    not change, so every remote finite value is still a sound upper
  //    bound and nothing needs invalidating elsewhere.
  std::size_t adopted_rows = 0;
  for (std::size_t r = 0; r < dv_->size(); ++r) {
    if (!is_adopted[r]) continue;
    ++adopted_rows;
    const VertexId v = lg_.vertex_of(r);
    for (VertexId t = 0; t < lg_.n(); ++t) {
      if (t != v && alive(t)) repairs_.emplace_back(v, t);
    }
  }

  // 6. Drop caches the ownership change invalidated: vertices this rank
  //    now owns and ex-portals no cut edge reaches any more. Live-owned
  //    portal caches are kept: their owners survived with their poison
  //    state intact, so the values are genuine upper bounds repairs may
  //    re-derive through. Dead-owned caches are NOT erased here — they are
  //    the subscriber-side baseline apply_portal_value compares against to
  //    detect increases, so step 6b poisons through them instead.
  for (auto it = caches_.begin(); it != caches_.end();) {
    if (lg_.is_local(it->first) || !lg_.is_portal(it->first)) {
      it = caches_.erase(it);
    } else {
      ++it;
    }
  }

  // 6b. Loud poison for the torn-batch window. The quiet-poison argument
  //    in step 5 has one hole: if the crash step had already ingested a
  //    change batch with non-monotone events (deletes, weight changes),
  //    the dead owner died before sending the poison markers that batch
  //    obliged it to send. Any survivor entry whose witness chain runs
  //    through a dead-owned vertex may then be stale *low* — the one
  //    direction the anytime property cannot absorb, and undetectable
  //    locally because caches hold distances, not paths. The fix is to
  //    act as the dead owner's executor: poison every entry routed
  //    through a dead-owned vertex, exactly as if it had broadcast
  //    all-infinity markers. poison_entry re-queues repairs and arms the
  //    poison barrier, and the cascade crosses ranks via the usual dirty
  //    markers, so transitive dependents settle in the restarted barrier.
  //    Monotone re-derivation converges to the same fixed point, so this
  //    costs work, never exactness. At settled step boundaries (or when
  //    the crash-step batches were add-only) the hazard cannot exist and
  //    the quiet path stands.
  bool torn_hazard = false;
  if (schedule_ != nullptr) {
    for (std::size_t b = 0; b < start_batch_ && b < schedule_->size(); ++b) {
      if ((*schedule_)[b].at_step != start_step_) continue;
      for (const Event& ev : (*schedule_)[b].events) {
        if (std::holds_alternative<EdgeDeleteEvent>(ev) ||
            std::holds_alternative<WeightChangeEvent>(ev) ||
            std::holds_alternative<VertexDeleteEvent>(ev)) {
          torn_hazard = true;
        }
      }
    }
  }
  if (torn_hazard) {
    std::deque<std::pair<VertexId, VertexId>> seeds;
    for (VertexId v = 0; v < lg_.n(); ++v) {
      const Rank o = v < old_owner.size() ? old_owner[v] : kNoRank;
      if (std::find(init.assign_skip.begin(), init.assign_skip.end(), o) ==
          init.assign_skip.end()) {
        continue;
      }
      const auto it = caches_.find(v);
      if (it != caches_.end()) {
        std::fill(it->second.begin(), it->second.end(), kInfDist);
      }
      for (VertexId t = 0; t < lg_.n(); ++t) seeds.emplace_back(v, t);
    }
    poison_cascade(std::move(seeds));
  }

  // 7. Every boundary row re-publishes its finite entries: subscriptions
  //    were rewired (adopters subscribe to portals they never saw, and
  //    survivors' rows now feed adopters' empty caches), mirroring the
  //    repartition path's re-subscription flush.
  std::vector<Rank> subs;
  for (std::size_t r = 0; r < dv_->size(); ++r) {
    subs.clear();
    lg_.subscribers(r, subs);
    if (!subs.empty()) mark_finite_dirty(r);
  }
  if (trace_ != nullptr) {
    trace_->instant("adopt:rows", "count",
                    static_cast<std::uint64_t>(adopted_rows));
  }
  if (metrics_ != nullptr) {
    metrics_->counter("recovery/adopted_rows").add(adopted_rows);
  }
}

// --------------------------------------------------------------------- IA

void RankEngine::ia_source(std::size_t r, std::vector<Dist>& dist,
                           std::vector<VertexId>& hop,
                           std::vector<VertexId>& touched,
                           std::uint64_t& dirty_added) {
  const VertexId src = lg_.vertex_of(r);
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> pq;
  dist[src] = 0;
  touched.push_back(src);
  pq.push({0, src});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d != dist[u]) continue;
    // Portals are reachable leaves: they get a distance but are not
    // expanded (paths *through* an external boundary vertex are
    // resolved during recombination, which keeps next-hop chains
    // locally sound — see DESIGN.md).
    const std::int32_t urow = lg_.row_of(u);
    if (urow < 0) continue;
    for (const Edge& e : lg_.adj(static_cast<std::size_t>(urow))) {
      const Dist nd = dist_add(d, e.w);
      if (nd < dist[e.to]) {
        if (dist[e.to] == kInfDist) touched.push_back(e.to);
        dist[e.to] = nd;
        hop[e.to] = (u == src) ? e.to : hop[u];
        pq.push({nd, e.to});
      }
    }
  }
  // The store installs the sweep result; the tiered implementation encodes
  // fresh rows straight into cold form so the sweep never materializes a
  // dense O(n) row per source.
  dirty_added += dv_->install_ia(r, src, touched, dist, hop);
  for (const VertexId t : touched) {
    dist[t] = kInfDist;
    hop[t] = kNoVertex;
  }
  touched.clear();
}

std::size_t RankEngine::ia_thread_count() const {
  if (cfg_.ia_threads != 0) return cfg_.ia_threads;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const auto ranks = static_cast<unsigned>(std::max<Rank>(comm_.size(), 1));
  return std::clamp<std::size_t>(hw / ranks, 1, 8);
}

void RankEngine::run_ia() {
  comm_.set_phase("ia");
  const obs::ScopedSpan span(trace_, "ia", "rows", dv_->size());
  const VertexId n = lg_.n();

  // The paper runs a multithreaded Dijkstra here (its MPI+OpenMP hybrid:
  // O(n_p * m_p log n_p / T) per rank). Sources are disjoint rows, so they
  // fan out across an intra-rank pool with per-thread scratch; each row is
  // written by exactly one worker and per-row dirty counters merge in row
  // order afterwards, so rows, counters and ledgers are bit-identical to
  // the serial path for any thread count.
  std::vector<std::uint64_t> dirty_added(dv_->size(), 0);
  std::atomic<std::size_t> cursor{0};
  constexpr std::size_t kChunk = 8;
  const std::size_t threads = std::min(ia_thread_count(), dv_->size());
  run_workers(threads, [&](std::size_t w) {
    // One span per worker on its shard subtrack (chunk assignment races,
    // but a single begin/end pair per worker stays deterministic).
    const obs::ScopedSpan wspan(
        tracer_ != nullptr ? &tracer_->subtrack(comm_.rank(), w) : nullptr,
        "ia_shard");
    // Scratch reused across this worker's sources; `touched` resets only
    // what a source actually visited.
    std::vector<Dist> dist(n, kInfDist);
    std::vector<VertexId> hop(n, kNoVertex);
    std::vector<VertexId> touched;
    touched.reserve(n);
    for (;;) {
      const std::size_t begin =
          cursor.fetch_add(kChunk, std::memory_order_relaxed);
      if (begin >= dv_->size()) break;
      const std::size_t end = std::min(begin + kChunk, dv_->size());
      for (std::size_t r = begin; r < end; ++r) {
        ia_source(r, dist, hop, touched, dirty_added[r]);
      }
    }
  });
  for (const std::uint64_t d : dirty_added) dirty_entries_ += d;
  if (metrics_ != nullptr) {
    std::uint64_t total = 0;
    for (const std::uint64_t d : dirty_added) total += d;
    metrics_->counter("ia/dirty_entries").add(total);
  }
  // Residency pass before the first RC step: under a tiered budget the
  // freshly swept rows settle into cold form until RC dirties them.
  maintain_store();
  // Live sessions get their first queryable snapshot the moment IA lands:
  // the intra-rank estimates are the paper's anytime starting point.
  if (serve_ != nullptr) {
    publish_snapshot(start_step_);
    if (comm_.rank() == 0) {
      serve_->engine_step.store(start_step_, std::memory_order_release);
    }
  }
  // First progress event: the local APSP sweep is done, coverage is the
  // intra-rank reachability (collective; run_ia is only called on fresh
  // attempts, where every rank takes this path).
  progress_step("ia", start_step_);
}

// ------------------------------------------------------ relaxation kernel

#ifdef AACC_WATCH
static void watch(const char* what, Rank rank, VertexId x, VertexId t, Dist d,
                  VertexId nh) {
  static const long wx = std::getenv("WX") ? std::atol(std::getenv("WX")) : -1;
  static const long wt = std::getenv("WT") ? std::atol(std::getenv("WT")) : -1;
  if (static_cast<long>(x) == wx && static_cast<long>(t) == wt) {
    std::fprintf(stderr, "[watch r%d] %s (%u,%u) d=%d nh=%d\n", rank, what, x,
                 t, d == kInfDist ? -1 : static_cast<int>(d),
                 nh == kNoVertex ? -1 : static_cast<int>(nh));
  }
}
#define AACC_WATCH_HIT(what, x, t, d, nh) watch(what, comm_.rank(), x, t, d, nh)
#else
#define AACC_WATCH_HIT(what, x, t, d, nh)
#endif

RankEngine::ShardCtx RankEngine::serial_ctx() {
  ShardCtx ctx;
  ctx.worklist = &worklist_;
  ctx.repairs = &repairs_;
  ctx.relaxations = &relaxations_;
  ctx.dirty_entries = &dirty_entries_;
  ctx.repairs_run = &repair_count_;
  return ctx;
}

void RankEngine::relax(VertexId x, VertexId t, Dist nd, VertexId nh) {
  ShardCtx ctx = serial_ctx();
  relax(ctx, x, t, nd, nh);
}

void RankEngine::relax(ShardCtx& ctx, VertexId x, VertexId t, Dist nd,
                       VertexId nh) {
  if (nd == kInfDist || !lg_.is_alive(t)) return;
  const std::int32_t ri = lg_.row_of(x);
  AACC_DCHECK(ri >= 0);
  DvRow& row = dv_->row(static_cast<std::size_t>(ri));
  if (row.dist(t) == kInfDist && row.test_flag(t, DvRow::kDirty)) {
    // Undelivered poison marker: subscribers have not yet been told this
    // entry died. Overwriting it now (e.g. from a stale portal cache while
    // ingesting a later event of the same batch) would silently revoke the
    // invalidation and leave remote dependents holding stale-low values.
    // Defer: repairs run only after the poison barrier has drained.
    ctx.repairs->emplace_back(x, t);
    return;
  }
  if (nd < row.dist(t)) {
    AACC_WATCH_HIT("relax", x, t, nd, nh);
    if (ctx.deltas == nullptr) {
      row.set(t, nd, nh);
      if (row.mark_dirty(t)) ++*ctx.dirty_entries;
    } else {
      DvRowDelta& delta = (*ctx.deltas)[static_cast<std::size_t>(ri)];
      if (!delta.live) {
        delta.live = true;
        ctx.touched->push_back(static_cast<std::uint32_t>(ri));
      }
      row.set_sharded(t, nd, nh, delta);
      if (row.mark_dirty_sharded(t, delta)) ++*ctx.dirty_entries;
    }
    ++*ctx.relaxations;
    if (!row.test_flag(t, DvRow::kQueued)) {
      row.set_flag(t, DvRow::kQueued);
      ctx.worklist->emplace_back(x, t);
    }
  }
}

void RankEngine::propagate(ShardCtx& ctx, VertexId x, VertexId t) {
  const std::int32_t ri = lg_.row_of(x);
  if (ri < 0) return;  // migrated or deleted since queueing
  DvRow& row = dv_->row(static_cast<std::size_t>(ri));
  row.clear_flag(t, DvRow::kQueued);
  const Dist base = row.dist(t);
  if (base == kInfDist) return;  // poisoned since queueing
  for (const Edge& e : lg_.adj(static_cast<std::size_t>(ri))) {
    if (lg_.is_local(e.to)) {
      relax(ctx, e.to, t, dist_add(base, e.w), x);
    }
  }
}

void RankEngine::repair(ShardCtx& ctx, VertexId x, VertexId t) {
  ++*ctx.repairs_run;
  const std::int32_t ri = lg_.row_of(x);
  if (ri < 0 || !lg_.is_alive(t) || x == t) return;
  Dist best = kInfDist;
  VertexId best_hop = kNoVertex;
  for (const Edge& e : lg_.adj(static_cast<std::size_t>(ri))) {
    Dist dz;
    if (e.to == t) {
      dz = 0;
    } else if (lg_.is_local(e.to)) {
      dz = dv_->row(static_cast<std::size_t>(lg_.row_of(e.to))).dist(t);
    } else {
      const auto it = caches_.find(e.to);
      dz = it == caches_.end() ? kInfDist : it->second[t];
    }
    const Dist cand = dist_add(dz, e.w);
    if (cand < best) {
      best = cand;
      best_hop = e.to;
    }
  }
  relax(ctx, x, t, best, best_hop);
}

namespace {
/// Below this many queued items a parallel drain costs more in thread
/// start/join than it saves; the shard count scales with the work so small
/// drains stay serial. Purely a performance knob: serial and sharded drains
/// produce bit-identical state, so the branch cannot change results.
constexpr std::size_t kDrainShardGrain = 128;

/// Cold rows decoded ahead per collective arrival while later sends are
/// still in flight. Small on purpose: each arrival re-arms the loop, so a
/// long window streams decodes without ever stalling payload application.
constexpr std::size_t kPrefetchPerArrival = 4;
}  // namespace

std::size_t RankEngine::rc_thread_count() const {
  if (cfg_.rc_threads != 0) return cfg_.rc_threads;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const auto ranks = static_cast<unsigned>(std::max<Rank>(comm_.size(), 1));
  return std::clamp<std::size_t>(hw / ranks, 1, 8);
}

void RankEngine::drain() {
  const std::size_t queued = repairs_.size() + worklist_.size();
  const obs::ScopedSpan span(trace_, "drain", "queued", queued);
  if (m_queue_depth_ != nullptr) m_queue_depth_->record(queued);
  queue_depth_step_ += queued;  // progress feed: frontier depth this step
  const std::uint64_t repairs_before = repair_count_;
  const double t0 = thread_cpu_now();
  const std::size_t shards =
      std::min(rc_thread_count(), queued / kDrainShardGrain);
  if (shards > 1) {
    drain_parallel(shards);
  } else {
    // Serial path. Repairs first: they re-derive poisoned entries, whose
    // improvements then flow through the worklist.
    ShardCtx ctx = serial_ctx();
    while (!repairs_.empty() || !worklist_.empty()) {
      if (!repairs_.empty()) {
        const auto [x, t] = repairs_.front();
        repairs_.pop_front();
        repair(ctx, x, t);
      } else {
        const auto [x, t] = worklist_.front();
        worklist_.pop_front();
        propagate(ctx, x, t);
      }
    }
    const double dt = thread_cpu_now() - t0;
    drain_cpu_seconds_ += dt;
    drain_modeled_seconds_ += dt;
  }
  // Repairs interleave with propagation inside the drain (FIFO, repairs
  // first), so repair activity surfaces as one counted instant per drain
  // rather than per-item spans.
  if (trace_ != nullptr && repair_count_ > repairs_before) {
    trace_->instant("repairs", "count", repair_count_ - repairs_before);
  }
}

void RankEngine::drain_parallel(std::size_t shards) {
  // Column-sharded drain (DESIGN.md §"Column-sharded parallel recombination
  // drain"). Every queued (x, t) item reads and writes column t only —
  // propagation enqueues (neighbour, t), a deferred repair re-enqueues
  // (x, t), and repair() reads neighbour rows and portal caches at column t
  // — so partitioning by t mod shards yields shard-disjoint work. The
  // partition below is a stable filter of the FIFO queues, each shard runs
  // the same repairs-first FIFO rule, and no item ever changes shard, so
  // every shard replays exactly the serial schedule restricted to its
  // columns: distances, next hops, flag bytes, queue contents and counter
  // totals come out bit-identical to the serial drain for any shard count.
  const double part0 = thread_cpu_now();
  if (rc_shards_.size() < shards) rc_shards_.resize(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    rc_shards_[s].deltas.resize(dv_->size());
  }
  for (const auto& [x, t] : repairs_) {
    rc_shards_[t % shards].repairs.emplace_back(x, t);
  }
  for (const auto& [x, t] : worklist_) {
    rc_shards_[t % shards].worklist.emplace_back(x, t);
  }
  repairs_.clear();
  worklist_.clear();
  const double partition_cpu = thread_cpu_now() - part0;

  run_workers(shards, [&](std::size_t s) {
    const obs::ScopedSpan wspan(
        tracer_ != nullptr ? &tracer_->subtrack(comm_.rank(), s) : nullptr,
        "drain_shard", "queued",
        rc_shards_[s].repairs.size() + rc_shards_[s].worklist.size());
    const double w0 = thread_cpu_now();
    RcShard& sh = rc_shards_[s];
    ShardCtx ctx;
    ctx.worklist = &sh.worklist;
    ctx.repairs = &sh.repairs;
    ctx.relaxations = &sh.relaxations;
    ctx.dirty_entries = &sh.dirty_entries;
    ctx.repairs_run = &sh.repairs_run;
    ctx.deltas = &sh.deltas;
    ctx.touched = &sh.touched;
    while (!sh.repairs.empty() || !sh.worklist.empty()) {
      if (!sh.repairs.empty()) {
        const auto [x, t] = sh.repairs.front();
        sh.repairs.pop_front();
        repair(ctx, x, t);
      } else {
        const auto [x, t] = sh.worklist.front();
        sh.worklist.pop_front();
        propagate(ctx, x, t);
      }
    }
    sh.cpu_seconds = thread_cpu_now() - w0;
  });

  // Deterministic merge, in shard-id order: row aggregates and index-list
  // appends fold in via apply_delta, counters sum. The append order differs
  // from the serial drain's interleaving, but list order is unobservable —
  // every consumer sorts, clears, or filters by the per-column flags.
  const double merge0 = thread_cpu_now();
  double max_shard_cpu = 0.0;
  double sum_shard_cpu = 0.0;
  for (std::size_t s = 0; s < shards; ++s) {
    RcShard& sh = rc_shards_[s];
    for (const std::uint32_t ri : sh.touched) {
      dv_->row(ri).apply_delta(sh.deltas[ri]);
    }
    sh.touched.clear();
    relaxations_ += sh.relaxations;
    dirty_entries_ += sh.dirty_entries;
    repair_count_ += sh.repairs_run;
    sh.relaxations = 0;
    sh.dirty_entries = 0;
    sh.repairs_run = 0;
    max_shard_cpu = std::max(max_shard_cpu, sh.cpu_seconds);
    sum_shard_cpu += sh.cpu_seconds;
    sh.cpu_seconds = 0.0;
  }
  const double merge_cpu = thread_cpu_now() - merge0;
  drain_cpu_seconds_ += partition_cpu + sum_shard_cpu + merge_cpu;
  drain_modeled_seconds_ += partition_cpu + max_shard_cpu + merge_cpu;
}

// ------------------------------------------------------------- poisoning

void RankEngine::poison_entry(std::size_t row_idx, VertexId t,
                              std::deque<std::pair<VertexId, VertexId>>& queue) {
  DvRow& row = dv_->row(row_idx);
  AACC_WATCH_HIT("poison", row.self(), t, kInfDist, kNoVertex);
  row.set(t, kInfDist, kNoVertex);
  if (row.mark_dirty(t)) ++dirty_entries_;
  ++poisons_;
  poison_pending_ = true;
  repairs_.emplace_back(row.self(), t);
  queue.emplace_back(row.self(), t);
}

void RankEngine::poison_cascade(std::deque<std::pair<VertexId, VertexId>> seeds) {
  std::vector<std::size_t> candidates;
  while (!seeds.empty()) {
    const auto [z, t] = seeds.front();
    seeds.pop_front();
    // Every local entry whose witness chain starts through z is invalid.
    // A next hop is always a current neighbor (relax, repair, IA install
    // and incoming portal updates all set nh to an adjacent vertex, and
    // deleting an edge poisons the entries routed over it before the next
    // event applies), so only z's neighbors can hold nh == z: scan adj(z),
    // not the whole store — under a tiered store a cold probe is a linear
    // blob scan, and the full-row sweep made every cascade O(rows * blob).
    // Candidates are visited in ascending row order, reproducing the exact
    // poison sequence of the historical whole-store sweep. Probe lookups
    // never promote: a real next-hop hit implies a finite distance (the
    // row invariant), so the dist probe only guards hot-row reads.
    const std::int32_t zri = lg_.row_of(z);
    candidates.clear();
    if (zri >= 0) {
      for (const Edge& e : lg_.adj(static_cast<std::size_t>(zri))) {
        const std::int32_t ri = lg_.is_local(e.to) ? lg_.row_of(e.to) : -1;
        if (ri >= 0) candidates.push_back(static_cast<std::size_t>(ri));
      }
      std::sort(candidates.begin(), candidates.end());
      candidates.erase(std::unique(candidates.begin(), candidates.end()),
                       candidates.end());
    } else {
      // z has no local row (migrated or deleted mid-batch): its adjacency
      // is unknown here, so fall back to the exhaustive sweep.
      candidates.resize(dv_->size());
      std::iota(candidates.begin(), candidates.end(), std::size_t{0});
    }
    for (const std::size_t r : candidates) {
      if (dv_->probe_next_hop(r, t) == z && dv_->probe_dist(r, t) != kInfDist) {
        poison_entry(r, t, seeds);
      }
    }
  }
}

void RankEngine::poison_first_hops(
    VertexId u, VertexId v, std::deque<std::pair<VertexId, VertexId>>& seeds) {
  const auto scan = [&](VertexId a, VertexId b) {
    const std::int32_t ri = lg_.row_of(a);
    if (ri < 0) return;
    // Only finite columns can hold a witness through b, so the entry walk
    // is a complete candidate set — O(finite), not an O(n) column scan.
    // Collect first, then poison: poison_entry promotes the row, which
    // would free a cold blob out from under the entry cursor. Both stores
    // walk ascending columns, so resident and tiered poison identically.
    const auto r = static_cast<std::size_t>(ri);
    std::vector<VertexId> hits;
    dv_->for_each_entry(r, [&](VertexId t, Dist, VertexId nh) {
      if (nh == b) hits.push_back(t);
    });
    for (const VertexId t : hits) poison_entry(r, t, seeds);
  };
  scan(u, v);
  scan(v, u);
}

// ----------------------------------------------------------- portal cache

std::vector<Dist>& RankEngine::cache_of(VertexId portal) {
  auto [it, inserted] = caches_.try_emplace(portal);
  if (inserted) it->second.assign(lg_.n(), kInfDist);
  return it->second;
}

void RankEngine::apply_portal_value(VertexId b, VertexId t, Dist d) {
  std::vector<Dist>& cache = cache_of(b);
  const Dist cur = cache[t];
  if (d == cur && d != kInfDist) return;
  cache[t] = d;
  if (d > cur || d == kInfDist) {
    // The owner's value increased (a deletion upstream), or this is an
    // explicit poison marker: every local chain through b for this target
    // is stale. The marker must cascade even when the cache already reads
    // infinity — a cache rebuilt after repartitioning starts blank, yet
    // dependents derived in an earlier co-location/subscription era may
    // still hold finite values routed through b.
    std::deque<std::pair<VertexId, VertexId>> seeds;
    seeds.emplace_back(b, t);
    poison_cascade(std::move(seeds));
  }
  if (d != kInfDist && lg_.is_alive(t)) {
    for (const auto& [x, w] : lg_.portal_neighbors(b)) {
      relax(x, t, dist_add(d, w), b);
    }
  }
}

// --------------------------------------------------------------- exchange

void RankEngine::exchange() {
  const obs::ScopedSpan span(trace_, "exchange", "dirty", dirty_entries_);
  const auto P = static_cast<std::size_t>(comm_.size());
  const std::size_t num_rows = dv_->size();
  reset_prefetch_cursors();
  // Send assembly only reads shared state (rows, dirty lists, subscriber
  // index) and writes per-shard buffers, so contiguous row blocks fan out
  // across the worker pool. As with the drain, the shard count scales with
  // the pending work so small steps stay on one (inline) worker.
  const std::size_t shards = std::clamp<std::size_t>(
      std::min(rc_thread_count(),
               static_cast<std::size_t>(dirty_entries_) / kDrainShardGrain),
      1, std::max<std::size_t>(num_rows, 1));
  if (send_shards_.size() < shards) send_shards_.resize(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    SendShard& sh = send_shards_[s];
    if (sh.writers.size() < P) sh.writers.resize(P);
    for (auto& w : sh.writers) w.clear();
    sh.sent_rows.clear();
  }

  {
    const obs::ScopedSpan assembly(trace_, "send_assembly");
    run_workers(shards, [&](std::size_t s) {
      const obs::ScopedSpan wspan(
          tracer_ != nullptr ? &tracer_->subtrack(comm_.rank(), s) : nullptr,
          "send_shard");
      SendShard& sh = send_shards_[s];
      const std::size_t begin = num_rows * s / shards;
      const std::size_t end = num_rows * (s + 1) / shards;
      for (std::size_t r = begin; r < end; ++r) {
        if (dv_->dirty_count(r) == 0) continue;
        sh.subs.clear();
        lg_.subscribers(r, sh.subs);
        if (!sh.subs.empty()) {
          // Send assembly walks the sparse dirty list (sorted, as the delta
          // codec requires); the record is encoded once and fanned out.
          // collect_dirty_entries is read-only, so cold rows serve their
          // sends without promotion (shards partition rows, never racing).
          sh.entries.clear();
          dv_->collect_dirty_entries(r, sh.dirty_cols, sh.entries);
          sh.record.clear();
          rt::write_dv_record(sh.record, dv_->self(r), sh.entries);
          for (const Rank q : sh.subs) {
            sh.writers[static_cast<std::size_t>(q)].write_bytes(
                sh.record.view());
          }
        }
        sh.sent_rows.push_back(r);
      }
    });
  }

  // Concatenating each destination's shard buffers in shard-id order yields
  // exactly the bytes a serial ascending-row walk produces, for any shard
  // count. The outer per-destination vector is member scratch; the inner
  // buffers necessarily hand their storage to the transport (the payload
  // crosses threads inside the Message), so only the slots are reused.
  if (exch_out_.size() < P) exch_out_.resize(P);
  const auto assemble_payload = [&](std::size_t q) -> std::vector<std::byte>& {
    std::vector<std::byte>& buf = exch_out_[q];
    buf.clear();
    std::size_t total = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      total += send_shards_[s].writers[q].size();
    }
    buf.reserve(total);
    for (std::size_t s = 0; s < shards; ++s) {
      const auto v = send_shards_[s].writers[q].view();
      buf.insert(buf.end(), v.begin(), v.end());
    }
    return buf;
  };
  const auto me = static_cast<std::size_t>(comm_.rank());

  if (cfg_.exchange_mode == ExchangeMode::kDeterministic) {
    // Oracle schedule: window 1 reproduces the classic blocking shift
    // exchange send for send and recv for recv. Dirty flags are retired
    // only once the collective has returned: if the exchange throws (a
    // peer died mid-step), the pending sends stay dirty in this rank's
    // state and survive into the recovery stash — subscribers will still
    // receive them after the restart. Cleared before apply_incoming so
    // entries re-dirtied by the incoming values are kept. Shard-id order
    // over contiguous blocks = ascending row order, as before.
    auto pending = comm_.all_to_all_begin(1);
    pending.submit(comm_.rank(), std::move(assemble_payload(me)));
    for (Rank s = 1; s < comm_.size(); ++s) {
      const Rank dst = (comm_.rank() + s) % comm_.size();
      pending.submit(dst,
                     std::move(assemble_payload(static_cast<std::size_t>(dst))));
    }
    // Chaos hook (FaultPlan CrashPhase::kMidExchange): die between the
    // submits and the collective's completion. The dirty flags are still
    // set (they retire only after wait_all), so the recovery stash keeps
    // every pending send, exactly like a step-top crash.
    if (!ghost_ && injector_ != nullptr &&
        injector_->should_crash(comm_.rank(), cur_step_,
                                rt::CrashPhase::kMidExchange)) {
      throw rt::InjectedCrash(comm_.rank(), cur_step_);
    }
    auto in = pending.wait_all();
    note_exchange_overlap(pending);
    for (std::size_t s = 0; s < shards; ++s) {
      for (const std::size_t r : send_shards_[s].sent_rows) {
        dirty_entries_ -= dv_->retire_dirty(r);
      }
    }
    apply_incoming(in);
    return;
  }

  // Pipelined / async: each destination's payload is handed to the
  // transport as soon as its concatenation finishes, up to the configured
  // window ahead of the completed recvs; peers' payloads are decoded and
  // applied in arrival order, overlapping decode (and, in async mode, the
  // next drain) with the remaining network time. Safe by the anytime
  // property: DV entries are monotone upper bounds, so consuming a peer's
  // deltas early or late cannot move the fixed point.
  auto pending = comm_.all_to_all_begin(effective_exchange_window());
  pending.submit(comm_.rank(), std::move(assemble_payload(me)));
  for (Rank s = 1; s < comm_.size(); ++s) {
    const Rank dst = (comm_.rank() + s) % comm_.size();
    pending.submit(dst,
                   std::move(assemble_payload(static_cast<std::size_t>(dst))));
  }
  // Chaos hook (CrashPhase::kMidExchange), before the retire below so the
  // pending sends are still dirty when the supervisor stashes this state.
  if (!ghost_ && injector_ != nullptr &&
      injector_->should_crash(comm_.rank(), cur_step_,
                              rt::CrashPhase::kMidExchange)) {
    throw rt::InjectedCrash(comm_.rank(), cur_step_);
  }
  // After the last submit every send has been issued (puts never block), so
  // the sent data is on the wire: retire the dirty flags now, before the
  // first arrival is applied, so entries re-dirtied by incoming values are
  // kept — but record what was cleared. If the drain below aborts (a peer
  // died), the cleared columns are re-marked so the pending sends still
  // survive into the recovery stash, exactly like the deterministic path's
  // retire-after-collective ordering guarantees.
  exch_cleared_spans_.clear();
  exch_cleared_cols_.clear();
  for (std::size_t s = 0; s < shards; ++s) {
    for (const std::size_t r : send_shards_[s].sent_rows) {
      const std::size_t start = exch_cleared_cols_.size();
      dirty_entries_ -= dv_->retire_dirty(r, &exch_cleared_cols_);
      if (exch_cleared_cols_.size() > start) {
        exch_cleared_spans_.emplace_back(r, exch_cleared_cols_.size() - start);
      }
    }
  }
  try {
    while (auto arrival = pending.try_recv_any()) {
      apply_incoming_payload(arrival->src, arrival->payload);
      if (cfg_.exchange_mode == ExchangeMode::kAsync) drain_overlap();
      // Overlap spill IO with the in-flight window: decode a few cold rows
      // the queued drain work will touch while peers' payloads are still on
      // the wire. Residency-only — values are untouched, so the overlap
      // cannot perturb results.
      prefetch_pending(kPrefetchPerArrival);
    }
  } catch (...) {
    std::size_t idx = 0;
    for (const auto& [r, n] : exch_cleared_spans_) {
      for (std::size_t i = 0; i < n; ++i) {
        if (dv_->remark_dirty(r, exch_cleared_cols_[idx + i])) {
          ++dirty_entries_;
        }
      }
      idx += n;
    }
    throw;
  }
  note_exchange_overlap(pending);
}

Rank RankEngine::effective_exchange_window() const {
  const Rank cap = std::max<Rank>(1, comm_.size() - 1);
  if (cfg_.exchange_window == 0) return cap;
  return std::min<Rank>(static_cast<Rank>(cfg_.exchange_window), cap);
}

void RankEngine::note_exchange_overlap(const rt::PendingAllToAll& pending) {
  exchange_wait_seconds_ += pending.wait_seconds();
  exchange_inflight_step_ =
      std::max(exchange_inflight_step_, pending.max_inflight());
  if (pending.blocked_on_seconds() > blocked_on_seconds_step_) {
    blocked_on_seconds_step_ = pending.blocked_on_seconds();
    blocked_on_rank_step_ = pending.blocked_on_peer();
  }
  if (trace_ != nullptr) {
    // The measured wait is wall-clock: on a logical-clock track its value
    // would differ run to run and break golden-trace reproducibility, so
    // the arg is only attached on wall-clock tracks.
    if (trace_->logical_clock()) {
      trace_->instant("exchange_wait");
    } else {
      trace_->instant("exchange_wait", "us",
                      static_cast<std::uint64_t>(pending.wait_seconds() * 1e6));
    }
    trace_->instant("inflight_depth", "depth", pending.max_inflight());
  }
}

void RankEngine::drain_overlap() {
  // Async overlap between exchange arrivals: worklist propagation only.
  // Repairs stay queued for the post-barrier drain — running one here
  // could read a value whose witness chain a still-in-flight poison
  // marker is about to kill (the count-to-infinity guard).
  if (worklist_.empty()) return;
  const double t0 = thread_cpu_now();
  ShardCtx ctx = serial_ctx();
  while (!worklist_.empty()) {
    const auto [x, t] = worklist_.front();
    worklist_.pop_front();
    propagate(ctx, x, t);
  }
  // The overlap drain consumed (and may have re-filled) the worklist; the
  // prefetch cursors index into it, so they restart from the new front.
  reset_prefetch_cursors();
  const double dt = thread_cpu_now() - t0;
  drain_cpu_seconds_ += dt;
  drain_modeled_seconds_ += dt;
}

void RankEngine::maintain_store() {
  // Step-boundary residency pass. Boundary rows feed every exchange's send
  // assembly, so the LRU demotes them last.
  boundary_flags_.assign(dv_->size(), 0);
  std::vector<Rank> subs;
  for (std::size_t r = 0; r < dv_->size(); ++r) {
    subs.clear();
    lg_.subscribers(r, subs);
    boundary_flags_[r] = subs.empty() ? 0 : 1;
  }
  dv_->maintain(boundary_flags_);
}

void RankEngine::prefetch_pending(std::size_t budget) {
  // Exchange-overlapped spill IO: while peers' payloads are in flight,
  // decode the cold rows the queued work will touch once the drain starts.
  // Residency-only (values never change), so overlap cannot perturb
  // results; the cursors advance monotonically and are reset whenever the
  // queues are consumed (exchange start, sync round start, overlap drain).
  const auto scan = [&](const std::deque<std::pair<VertexId, VertexId>>& q,
                        std::size_t& pos) {
    while (budget > 0 && pos < q.size()) {
      const std::int32_t ri = lg_.row_of(q[pos].first);
      ++pos;
      if (ri >= 0 && !dv_->is_hot(static_cast<std::size_t>(ri))) {
        dv_->prefetch(static_cast<std::size_t>(ri));
        --budget;
      }
    }
  };
  scan(repairs_, prefetch_repair_pos_);
  scan(worklist_, prefetch_work_pos_);
}

void RankEngine::apply_incoming(const std::vector<std::vector<std::byte>>& in) {
  for (Rank q = 0; q < comm_.size(); ++q) {
    if (q == comm_.rank()) continue;
    apply_incoming_payload(q, in[static_cast<std::size_t>(q)]);
  }
}

void RankEngine::apply_incoming_payload(Rank q,
                                        std::span<const std::byte> payload) {
  (void)q;
  if (payload.empty()) return;
  rt::ByteReader rd(payload);
  while (!rd.done()) {
    rt::DvRecordReader rec(rd);
    const VertexId b = rec.vid();
    const bool portal = lg_.is_portal(b);
    for (std::uint32_t i = 0; i < rec.count(); ++i) {
      const auto [t, d] = rec.next();
      if (portal) apply_portal_value(b, t, d);
    }
    if (!portal) caches_.erase(b);  // stale sender view; drop leftovers
  }
}

bool RankEngine::poison_sync_round() {
  const Rank P = comm_.size();
  if (sync_writers_.size() < static_cast<std::size_t>(P)) {
    sync_writers_.resize(static_cast<std::size_t>(P));
  }
  std::vector<rt::ByteWriter>& writers = sync_writers_;
  for (auto& w : writers) w.clear();
  std::vector<Rank>& subs = exch_subs_;
  std::vector<VertexId>& dirty_cols = exch_dirty_cols_;
  std::vector<std::pair<VertexId, Dist>>& dead = exch_entries_;
  std::vector<std::pair<std::size_t, VertexId>>& sent_markers = sync_markers_;
  sent_markers.clear();
  reset_prefetch_cursors();

  for (std::size_t r = 0; r < dv_->size(); ++r) {
    if (dv_->dirty_count(r) == 0) continue;
    subs.clear();
    lg_.subscribers(r, subs);
    // The newly-invalid entries are dirty by construction, so the sparse
    // list (sorted for the delta codec) is a complete candidate set; a
    // dirty column with no live entry is by definition a poison marker, so
    // the cold rows' collect view (absent → kInfDist) matches the dense
    // dist() reads exactly.
    sync_scratch_.clear();
    dv_->collect_dirty_entries(r, dirty_cols, sync_scratch_);
    dead.clear();
    for (const auto& [t, d] : sync_scratch_) {
      if (d == kInfDist) dead.emplace_back(t, kInfDist);
    }
    if (subs.empty()) {
      // Nobody depends on this row; retire the markers so the deferred
      // repairs (see relax()) become runnable again.
      for (const auto& [t, d] : dead) {
        if (dv_->retire_dirty_one(r, t)) --dirty_entries_;
      }
      continue;
    }
    if (dead.empty()) continue;
    exch_record_.clear();
    rt::write_dv_record(exch_record_, dv_->self(r), dead);
    for (const Rank q : subs) {
      writers[static_cast<std::size_t>(q)].write_bytes(exch_record_.view());
    }
    for (const auto& [t, d] : dead) {
      sent_markers.emplace_back(r, t);
    }
  }

  // Same transport path as exchange(), at the same window. No drain
  // overlap in any mode: the barrier exists to flush poison markers before
  // repairs run, so interleaving propagation here would buy nothing and
  // muddy the count-to-infinity argument.
  const Rank window = cfg_.exchange_mode == ExchangeMode::kDeterministic
                          ? 1
                          : effective_exchange_window();
  auto pending = comm_.all_to_all_begin(window);
  pending.submit(comm_.rank(),
                 writers[static_cast<std::size_t>(comm_.rank())].take());
  for (Rank s = 1; s < P; ++s) {
    const Rank dst = (comm_.rank() + s) % P;
    pending.submit(dst, writers[static_cast<std::size_t>(dst)].take());
  }

  if (cfg_.exchange_mode == ExchangeMode::kDeterministic) {
    auto in = pending.wait_all();
    note_exchange_overlap(pending);
    // As in exchange(): markers are retired only after the collective
    // returns, so an aborted round leaves them pending for the recovery
    // stash instead of silently un-sent.
    for (const auto& [r, t] : sent_markers) {
      if (dv_->retire_dirty_one(r, t)) --dirty_entries_;
    }
    apply_incoming(in);
  } else {
    // Pipelined: all sends are issued once the submits return, so the
    // markers retire now (before any arrival is applied); an aborted drain
    // re-marks them for the recovery stash, mirroring exchange().
    for (const auto& [r, t] : sent_markers) {
      if (dv_->retire_dirty_one(r, t)) --dirty_entries_;
    }
    try {
      while (auto arrival = pending.try_recv_any()) {
        apply_incoming_payload(arrival->src, arrival->payload);
        // Spill-IO overlap, as in exchange(): warm the rows the deferred
        // repairs will touch once the barrier drains.
        prefetch_pending(kPrefetchPerArrival);
      }
    } catch (...) {
      for (const auto& [r, t] : sent_markers) {
        if (dv_->remark_dirty(r, t)) ++dirty_entries_;
      }
      throw;
    }
    note_exchange_overlap(pending);
  }

  const bool mine = poison_pending_;
  poison_pending_ = false;
  return mine;
}

// ----------------------------------------------------------- dirty helper

void RankEngine::mark_finite_dirty(std::size_t row_idx) {
  // Walks the row's finite columns instead of the full column range —
  // O(finite), which is what the whole-row resend actually costs
  // downstream anyway. Cold rows merge their sorted dirty list in place,
  // without promotion.
  dirty_entries_ += dv_->mark_finite_dirty(row_idx);
}

// ------------------------------------------------------------- edge events

void RankEngine::seed_through_edge(VertexId x, VertexId z, Weight w) {
  // x, z local; relax x's whole row through its neighbour z. Only finite
  // entries of z can seed anything (an infinite source saturates dist_add
  // and relax drops it), so the entry walk — which never promotes z —
  // visits exactly the columns the old dense scan acted on.
  const auto zri = static_cast<std::size_t>(lg_.row_of(z));
  dv_->for_each_entry(zri, [&](VertexId t, Dist d, VertexId) {
    if (t == x) return;
    relax(x, t, dist_add(d, w), z);
  });
}

void RankEngine::apply_edge_add(const EdgeAddEvent& e) {
  lg_.add_edge(e.u, e.v, e.w);
  const bool lu = lg_.is_local(e.u);
  const bool lv = lg_.is_local(e.v);

  if (cfg_.add_mode == EdgeAddMode::kEager) {
    eager_edge_relax(e);  // collective: every rank participates
  }

  if (lu && lv) {
    if (cfg_.add_mode == EdgeAddMode::kSeeded) {
      seed_through_edge(e.u, e.v, e.w);
      seed_through_edge(e.v, e.u, e.w);
    }
    return;
  }
  if (lu) {
    // The owner of v just became (or already is) a subscriber of u's row.
    mark_finite_dirty(static_cast<std::size_t>(lg_.row_of(e.u)));
    const auto it = caches_.find(e.v);
    if (it != caches_.end()) {
      const std::vector<Dist>& cache = it->second;
      for (VertexId t = 0; t < cache.size(); ++t) {
        if (t != e.u) relax(e.u, t, dist_add(cache[t], e.w), e.v);
      }
    }
    relax(e.u, e.v, e.w, e.v);  // the new edge itself
  } else if (lv) {
    mark_finite_dirty(static_cast<std::size_t>(lg_.row_of(e.v)));
    const auto it = caches_.find(e.u);
    if (it != caches_.end()) {
      const std::vector<Dist>& cache = it->second;
      for (VertexId t = 0; t < cache.size(); ++t) {
        if (t != e.v) relax(e.v, t, dist_add(cache[t], e.w), e.u);
      }
    }
    relax(e.v, e.u, e.w, e.u);
  }
}

void RankEngine::eager_edge_relax(const EdgeAddEvent& e) {
  // Figure-3 of the paper: owners broadcast both endpoint rows; every rank
  // relaxes every local row against them.
  const auto fetch_row = [&](VertexId v) {
    rt::ByteWriter w;
    if (lg_.is_local(v)) {
      // Whole-row broadcast needs the dense form; promotes if cold.
      w.write_vec(dv_->row(static_cast<std::size_t>(lg_.row_of(v))).dists());
    }
    auto buf = comm_.broadcast(w.take(), lg_.owner(v));
    rt::ByteReader r(buf);
    return r.read_vec<Dist>();
  };
  const std::vector<Dist> row_u = fetch_row(e.u);
  const std::vector<Dist> row_v = fetch_row(e.v);

  // Fold the broadcast rows into the portal caches first, *through the
  // regular delivery path* (apply_portal_value), exactly as if the owner's
  // row had arrived in an exchange: decreases relax the portal's
  // neighbours, increases/poisons cascade. (Silently assigning the cache
  // would make the owner's next dirty-send look like a no-change and
  // suppress the relaxation it is meant to trigger — an early bug.)
  const auto absorb = [&](VertexId vtx, const std::vector<Dist>& row) {
    if (!lg_.is_portal(vtx)) return;
    for (VertexId t = 0; t < row.size(); ++t) {
      apply_portal_value(vtx, t, row[t]);
    }
  };
  absorb(e.u, row_u);
  absorb(e.v, row_v);

  const auto relax_against = [&](VertexId via, const std::vector<Dist>& far_row,
                                 VertexId far) {
    for (std::size_t r = 0; r < dv_->size(); ++r) {
      // Whole-matrix relaxation sweep: dense access is the point here, so
      // rows promote as they are touched (eager adds are rare and
      // collective; the next maintain() re-demotes the settled ones).
      DvRow& row = dv_->row(r);
      const VertexId x = row.self();
      const Dist dxv = row.dist(via);
      if (dxv == kInfDist && x != via) continue;
      const VertexId nh = (x == via) ? far : row.next_hop(via);
      // The DVR chain relation d[x][t] >= w(x,nh) + d[nh][t] must hold at
      // commit time against nh's *current* value (local row or portal
      // cache): a deferred/poisoned entry on nh may have been repaired to
      // something larger than the snapshot this relaxation is derived
      // from, and committing below the chain would detach the entry from
      // the poison-cascade bookkeeping. Skipped writes are safe — the
      // ordinary propagation converges to the same fixpoint.
      Weight wxh = 0;
      for (const Edge& edge : lg_.adj(r)) {
        if (edge.to == nh) {
          wxh = edge.w;
          break;
        }
      }
      if (wxh == 0) continue;  // nh is not currently a neighbour: skip row
      const DvRow* ref_row = nullptr;
      const std::vector<Dist>* ref_cache = nullptr;
      if (lg_.is_local(nh)) {
        ref_row = &dv_->row(static_cast<std::size_t>(lg_.row_of(nh)));
      } else {
        const auto it = caches_.find(nh);
        if (it == caches_.end()) continue;  // no reference available
        ref_cache = &it->second;
      }
      for (VertexId t = 0; t < far_row.size(); ++t) {
        if (t == x) continue;
        const Dist cand = dist_add(dxv, dist_add(e.w, far_row[t]));
        if (cand >= row.dist(t)) continue;
        const Dist ref = (nh == t) ? 0
                         : (ref_row != nullptr ? ref_row->dist(t)
                                               : (*ref_cache)[t]);
        if (cand < dist_add(wxh, ref)) continue;  // chain would break: skip
        relax(x, t, cand, nh);
      }
    }
  };
  relax_against(e.u, row_v, e.v);
  relax_against(e.v, row_u, e.u);
}

void RankEngine::apply_edge_delete(const EdgeDeleteEvent& e) {
  std::deque<std::pair<VertexId, VertexId>> seeds;
  poison_first_hops(e.u, e.v, seeds);
  lg_.remove_edge(e.u, e.v);
  if (!lg_.is_portal(e.u)) caches_.erase(e.u);
  if (!lg_.is_portal(e.v)) caches_.erase(e.v);
  poison_cascade(std::move(seeds));
}

void RankEngine::apply_weight_change(const WeightChangeEvent& e) {
  const bool lu = lg_.is_local(e.u);
  const bool lv = lg_.is_local(e.v);
  if (!lu && !lv) return;
  const Weight old = lg_.edge_weight(e.u, e.v);
  lg_.set_weight(e.u, e.v, e.w_new);
  if (e.w_new < old) {
    // Behaves like an addition: relax the endpoint rows through the edge.
    if (lu && lv) {
      seed_through_edge(e.u, e.v, e.w_new);
      seed_through_edge(e.v, e.u, e.w_new);
    } else if (lu) {
      const auto it = caches_.find(e.v);
      if (it != caches_.end()) {
        for (VertexId t = 0; t < it->second.size(); ++t) {
          if (t != e.u) relax(e.u, t, dist_add(it->second[t], e.w_new), e.v);
        }
      }
      relax(e.u, e.v, e.w_new, e.v);
    } else {
      const auto it = caches_.find(e.u);
      if (it != caches_.end()) {
        for (VertexId t = 0; t < it->second.size(); ++t) {
          if (t != e.v) relax(e.v, t, dist_add(it->second[t], e.w_new), e.u);
        }
      }
      relax(e.v, e.u, e.w_new, e.u);
    }
  } else if (e.w_new > old) {
    // Behaves like a deletion: witnesses crossing the edge are stale; the
    // repairs re-derive them with the new weight.
    std::deque<std::pair<VertexId, VertexId>> seeds;
    poison_first_hops(e.u, e.v, seeds);
    poison_cascade(std::move(seeds));
  }
}

// ------------------------------------------------------------ vertex events

void RankEngine::grow_columns(VertexId count) {
  dv_->grow_columns(count);
  for (auto& [b, cache] : caches_) {
    cache.insert(cache.end(), count, kInfDist);
  }
}

void RankEngine::add_local_row(VertexId v) {
  AACC_CHECK(static_cast<std::size_t>(lg_.row_of(v)) == dv_->size());
  dv_->append_fresh(v);
}

void RankEngine::remove_local_row(std::int32_t row) {
  dv_->swap_remove(static_cast<std::size_t>(row));
}

void RankEngine::apply_vertex_batch(const std::vector<VertexAddEvent>& batch) {
  if (cfg_.assign == AssignStrategy::kRepartition) {
    // No drain here: repairing a poisoned entry back to a finite value
    // before the poison barrier inside apply_repartition has broadcast its
    // infinity marker would hide the invalidation from remote dependents.
    // Stale worklist/repair entries survive the migration harmlessly —
    // they resolve by global vertex id and skip rows that moved away.
    apply_repartition(batch);
    return;
  }
  std::vector<Rank> assign;
  if (cfg_.assign == AssignStrategy::kRoundRobin) {
    // After an adoption the dead seats are ghosts: a vertex dealt to one
    // would be lost again, so the circular deal skips them (assign_skip_ is
    // identical on every rank, ghosts included — owner maps stay in sync).
    assign = assign_skip_.empty()
                 ? assign_round_robin(batch.size(), vertices_added_,
                                      comm_.size())
                 : assign_round_robin_excluding(batch.size(), vertices_added_,
                                                comm_.size(), assign_skip_);
  } else {
    assign = assign_cut_edge(batch, batch.front().id, lg_.owner_map(),
                             comm_.size(), cfg_.seed);
  }
  vertices_added_ += batch.size();

  grow_columns(static_cast<VertexId>(batch.size()));
  // Register the whole batch before creating any row: rows are sized to
  // lg_.n(), which must already cover every new column.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const VertexId id = lg_.add_vertex(assign[i]);
    AACC_CHECK_MSG(id == batch[i].id, "vertex id mismatch in batch");
  }
  for (const VertexAddEvent& ev : batch) {
    if (lg_.is_local(ev.id)) add_local_row(ev.id);
  }
  for (const VertexAddEvent& ev : batch) {
    for (const auto& [to, w] : ev.edges) {
      apply_edge_add(EdgeAddEvent{ev.id, to, w});
    }
  }
}

void RankEngine::apply_vertex_delete(const VertexDeleteEvent& e) {
  const VertexId v = e.v;
  std::deque<std::pair<VertexId, VertexId>> seeds;
  // Any witness whose first hop is v dies with it; deeper chains through v
  // are reached by the cascade.
  for (std::size_t r = 0; r < dv_->size(); ++r) {
    if (dv_->self(r) == v) continue;
    // Collect hits first: poison_entry promotes the row, which would free
    // a cold blob out from under the entry cursor. Only finite columns can
    // route through v, so the entry walk covers the old full-column scan.
    std::vector<VertexId> hits;
    dv_->for_each_entry(r, [&](VertexId t, Dist, VertexId nh) {
      if (nh == v) hits.push_back(t);
    });
    for (const VertexId t : hits) poison_entry(r, t, seeds);
  }
  // Tombstone the target column everywhere (no repair: the target is gone;
  // every rank applies the same event so no message is needed).
  for (std::size_t r = 0; r < dv_->size(); ++r) {
    if (dv_->self(r) != v && dv_->tombstone_column(r, v)) --dirty_entries_;
  }
  const std::int32_t removed = lg_.remove_vertex(v);
  if (removed >= 0) {
    // Keep the global dirty counter consistent with the dropped row.
    dirty_entries_ -= dv_->dirty_count(static_cast<std::size_t>(removed));
    remove_local_row(removed);
  }
  caches_.erase(v);
  poison_cascade(std::move(seeds));
}

// ------------------------------------------------------------- repartition

void RankEngine::apply_repartition(const std::vector<VertexAddEvent>& batch) {
  const obs::ScopedSpan span(trace_, "repartition", "added", batch.size());
  const Rank P = comm_.size();
  const Rank me = comm_.rank();
  const VertexId n_old = lg_.n();
  const VertexId n_new = n_old + static_cast<VertexId>(batch.size());
  vertices_added_ += batch.size();

  // Settle all outstanding invalidations globally before redistributing
  // rows: the rebuild below resets dirty flags, so a pending poison that
  // has not reached its cross-rank dependents yet would otherwise be lost
  // and a stale (too small) value would survive.
  {
    const obs::ScopedSpan sync_span(trace_, "poison_sync");
    bool mine = poison_pending_;
    poison_pending_ = false;
    while (comm_.all_reduce_or(mine)) {
      mine = poison_sync_round();
    }
  }

  // 1. Gather the current edge list at rank 0 (the paper runs ParMETIS here;
  //    the gather+partition+broadcast is our accounted substitute).
  {
    rt::ByteWriter w;
    const auto local_edges = lg_.local_edges_for_gather();
    w.write(static_cast<std::uint64_t>(local_edges.size()));
    for (const auto& [u, v, wt] : local_edges) {
      w.write(u);
      w.write(v);
      w.write(wt);
    }
    std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(P));
    out[0] = w.take();
    auto in = comm_.all_to_all(std::move(out));

    rt::ByteWriter plan;  // new owners + full edge list, produced by rank 0
    if (me == 0) {
      Graph g(n_new);
      std::vector<std::tuple<VertexId, VertexId, Weight>> edges;
      for (Rank q = 0; q < P; ++q) {
        rt::ByteReader rd(in[static_cast<std::size_t>(q)]);
        if (rd.done()) continue;
        const auto cnt = rd.read<std::uint64_t>();
        for (std::uint64_t i = 0; i < cnt; ++i) {
          const auto u = rd.read<VertexId>();
          const auto v = rd.read<VertexId>();
          const auto wt = rd.read<Weight>();
          edges.emplace_back(u, v, wt);
        }
      }
      for (const VertexAddEvent& ev : batch) {
        for (const auto& [to, wt] : ev.edges) {
          edges.emplace_back(ev.id, to, wt);
        }
      }
      for (const auto& [u, v, wt] : edges) g.add_edge(u, v, wt);
      // Tombstoned ids must stay unassigned.
      for (VertexId v = 0; v < n_old; ++v) {
        if (!lg_.is_alive(v)) g.remove_vertex(v);
      }
      Rng rng(cfg_.seed ^ (0xda7a5eedULL + n_new));
      const MultilevelPartitioner ml;
      const Partition part = ml.partition(g, P, rng);
      plan.write_vec(part.assignment);
      plan.write(static_cast<std::uint64_t>(edges.size()));
      for (const auto& [u, v, wt] : edges) {
        plan.write(u);
        plan.write(v);
        plan.write(wt);
      }
    }
    auto buf = comm_.broadcast(plan.take(), 0);
    rt::ByteReader rd(buf);
    const auto new_owner = rd.read_vec<Rank>();
    const auto edge_count = rd.read<std::uint64_t>();
    std::vector<std::tuple<VertexId, VertexId, Weight>> edges;
    edges.reserve(edge_count);
    for (std::uint64_t i = 0; i < edge_count; ++i) {
      const auto u = rd.read<VertexId>();
      const auto v = rd.read<VertexId>();
      const auto wt = rd.read<Weight>();
      edges.emplace_back(u, v, wt);
    }

    // 2. Migrate DV rows whose owner changed (partial results are reused —
    //    the anytime property). Rows of new vertices start fresh.
    grow_columns(static_cast<VertexId>(batch.size()));
    std::vector<rt::ByteWriter> writers(static_cast<std::size_t>(P));
    std::vector<DvRow> kept;
    for (std::size_t r = 0; r < dv_->size(); ++r) {
      const Rank owner = new_owner[dv_->self(r)];
      if (owner == me) {
        // Extraction promotes: kept rows re-enter residency hot and the
        // next maintain() re-demotes whatever settles.
        kept.push_back(dv_->take(r));
      } else {
        DvRow row = dv_->take(r);
        auto& w = writers[static_cast<std::size_t>(owner)];
        w.write(row.self());
        w.write_vec(row.dists());
        w.write_vec(row.next_hops());
      }
    }
    std::vector<std::vector<std::byte>> mig(static_cast<std::size_t>(P));
    for (Rank q = 0; q < P; ++q) {
      mig[static_cast<std::size_t>(q)] = writers[static_cast<std::size_t>(q)].take();
    }
    auto arrived = comm_.all_to_all(std::move(mig));

    // 3. Rebuild the local view under the new ownership.
    lg_ = LocalGraph(me, new_owner, edges);
    caches_.clear();
    dirty_entries_ = 0;
    dv_->clear();
    dv_->grow_columns(lg_.n());
    for (std::size_t r = 0; r < lg_.num_local(); ++r) {
      dv_->append_fresh(lg_.vertex_of(r));
    }
    const auto place = [&](DvRow&& row) {
      const std::int32_t ri = lg_.row_of(row.self());
      AACC_CHECK(ri >= 0);
      dv_->put(static_cast<std::size_t>(ri), std::move(row));
    };
    for (DvRow& row : kept) {
      row.grow(static_cast<VertexId>(n_new - row.size()));
      row.reset_flags();  // dirty/queued bits predate the new ownership
      place(std::move(row));
    }
    for (Rank q = 0; q < P; ++q) {
      if (q == me) continue;
      rt::ByteReader mr(arrived[static_cast<std::size_t>(q)]);
      while (!mr.done()) {
        const auto vid = mr.read<VertexId>();
        auto d = mr.read_vec<Dist>();
        auto nh = mr.read_vec<VertexId>();
        d.resize(n_new, kInfDist);
        nh.resize(n_new, kNoVertex);
        place(DvRow(vid, std::move(d), std::move(nh)));
      }
    }
    // Kept rows carry geometric-growth slack from the previous era; drop it
    // now that the row set is final for this ownership generation.
    dv_->shrink_all();

    // 4. Every boundary row must reach its (fresh) subscribers; seed new
    //    rows through their local edges. Existing rows are deliberately not
    //    updated against the new vertices here — that happens over the next
    //    RC steps (the paper's stated trade-off for Repartition-S).
    std::vector<Rank> subs;
    for (std::size_t r = 0; r < dv_->size(); ++r) {
      subs.clear();
      lg_.subscribers(r, subs);
      if (!subs.empty()) mark_finite_dirty(r);
    }
    for (const VertexAddEvent& ev : batch) {
      if (!lg_.is_local(ev.id)) continue;
      const auto ri = static_cast<std::size_t>(lg_.row_of(ev.id));
      for (const Edge& e : lg_.adj(ri)) {
        if (lg_.is_local(e.to)) {
          seed_through_edge(ev.id, e.to, e.w);
        }
      }
    }
    // Direct-edge relaxation for every local row: fresh rows (and rows that
    // gained cut edges through migration) must know their one-hop distances
    // even though the portal caches start empty.
    for (std::size_t r = 0; r < dv_->size(); ++r) {
      const VertexId u = lg_.vertex_of(r);
      for (const Edge& e : lg_.adj(r)) {
        relax(u, e.to, e.w, e.to);
      }
    }
    // Re-enqueue every finite entry for local propagation. Migration
    // co-locates rows that were last reconciled through (now discarded)
    // portal caches, and the reset dirty flags dropped any in-flight
    // improvements; only a full re-relaxation pass restores the local
    // fixpoint constraints d[x][t] <= w(x,z) + d[z][t]. This is exactly
    // the "additional RC steps" cost the paper attributes to Repartition-S.
    for (std::size_t r = 0; r < dv_->size(); ++r) {
      DvRow& row = dv_->row(r);
      const VertexId u = lg_.vertex_of(r);
      for (VertexId t = 0; t < row.size(); ++t) {
        if (row.dist(t) != kInfDist && !row.test_flag(t, DvRow::kQueued)) {
          row.set_flag(t, DvRow::kQueued);
          worklist_.emplace_back(u, t);
        }
      }
    }
  }
}

// ------------------------------------------------------------ RC main loop

void RankEngine::ingest_batch(const std::vector<Event>& events) {
  std::size_t i = 0;
  while (i < events.size()) {
    if (std::holds_alternative<VertexAddEvent>(events[i])) {
      std::vector<VertexAddEvent> run;
      while (i < events.size() &&
             std::holds_alternative<VertexAddEvent>(events[i])) {
        run.push_back(std::get<VertexAddEvent>(events[i]));
        ++i;
      }
      apply_vertex_batch(run);
      continue;
    }
    std::visit(
        [this](const auto& ev) {
          using T = std::decay_t<decltype(ev)>;
          if constexpr (std::is_same_v<T, EdgeAddEvent>) {
            apply_edge_add(ev);
          } else if constexpr (std::is_same_v<T, EdgeDeleteEvent>) {
            apply_edge_delete(ev);
          } else if constexpr (std::is_same_v<T, WeightChangeEvent>) {
            apply_weight_change(ev);
          } else if constexpr (std::is_same_v<T, VertexDeleteEvent>) {
            apply_vertex_delete(ev);
          }
        },
        events[i]);
    ++i;
  }
}

void RankEngine::boundary_fw_pass() {
  // The paper's alternative local refinement: one Floyd–Warshall-style pass
  // composing own distance-to-portal with the portal's cached row. Sound
  // only for additive workloads (see config.hpp); the driver enforces that.
  for (const auto& [b, cache] : caches_) {
    if (!lg_.is_portal(b)) continue;
    for (std::size_t r = 0; r < dv_->size(); ++r) {
      // Whole-matrix refinement: dense access is inherent, promote per row.
      DvRow& row = dv_->row(r);
      const Dist dxb = row.dist(b);
      if (dxb == kInfDist) continue;
      const VertexId nh = row.next_hop(b);
      for (VertexId t = 0; t < cache.size(); ++t) {
        if (t == row.self()) continue;
        relax(row.self(), t, dist_add(dxb, cache[t]), nh);
      }
    }
  }
}

std::vector<std::string> RankEngine::check_invariants() const {
  std::vector<std::string> out;
  const auto report = [&out](VertexId x, VertexId t, const auto&... rest) {
    std::ostringstream os;
    os << '(' << x << ',' << t << ") ";
    (os << ... << rest);
    out.push_back(os.str());
  };
  for (std::size_t r = 0; r < dv_->size(); ++r) {
    // Validation is a whole-matrix walk; const row access promotes cold
    // rows (observable state is unchanged — that is what const means here).
    const DvRow& row = dv_->row(r);
    const VertexId x = lg_.vertex_of(r);
    for (VertexId t = 0; t < row.size(); ++t) {
      if (t == x || row.dist(t) == kInfDist) continue;
      const VertexId nh = row.next_hop(t);
      if (nh == kNoVertex) {
        report(x, t, "finite without next hop");
        continue;
      }
      // nh must be a current neighbour.
      Weight w = 0;
      bool neighbour = false;
      for (const Edge& e : lg_.adj(r)) {
        if (e.to == nh) {
          neighbour = true;
          w = e.w;
          break;
        }
      }
      if (!neighbour) {
        report(x, t, "next hop ", nh, " is not a neighbour");
        continue;
      }
      Dist ref = kInfDist;
      if (nh == t) {
        ref = 0;
      } else if (lg_.is_local(nh)) {
        ref = dv_->probe_dist(static_cast<std::size_t>(lg_.row_of(nh)), t);
      } else {
        const auto it = caches_.find(nh);
        if (it == caches_.end()) continue;  // owner value unknown here
        ref = it->second[t];
      }
      if (ref == kInfDist) continue;  // reference unknown / poisoned
      if (row.dist(t) < dist_add(w, ref)) {
        report(x, t, "d=", row.dist(t), " < w(", w, ") + ref(", ref, ") via ",
               nh);
      }
    }
  }
  return out;
}

void RankEngine::record_step(std::size_t step) {
  // All counters are recorded cumulatively; the driver computes per-step
  // deltas when assembling RunStats.
  StepLocal rec;
  rec.step = step;
  rec.bytes_sent = comm_.ledger().bytes_sent;
  rec.relaxations = relaxations_;
  rec.poisons = poisons_;
  rec.repairs = repair_count_;
  rec.cpu_seconds = thread_cpu_now();
  rec.drain_cpu_seconds = drain_cpu_seconds_;
  rec.drain_modeled_seconds = drain_modeled_seconds_;
  rec.exchange_wait_seconds = exchange_wait_seconds_;
  rec.exchange_inflight = exchange_inflight_step_;  // per-step max, not delta
  rec.blocked_on_seconds = blocked_on_seconds_step_;  // ditto
  rec.blocked_on_rank = blocked_on_rank_step_;
  step_log_.push_back(rec);
  if (metrics_ != nullptr) {
    // Fold cumulative algorithm counters into the registry once per step
    // (the hot loops bump plain members; folded_ remembers what has already
    // been pushed). cpu_seconds is absolute thread time, not folded here —
    // the driver derives CPU gauges from the world's phase ledgers instead.
    m_relaxations_->add(relaxations_ - folded_.relaxations);
    m_poisons_->add(poisons_ - folded_.poisons);
    m_repairs_->add(repair_count_ - folded_.repairs);
    m_steps_->add(1);
    m_drain_cpu_->add(drain_cpu_seconds_ - folded_.drain_cpu_seconds);
    m_drain_modeled_->add(drain_modeled_seconds_ -
                          folded_.drain_modeled_seconds);
    m_exch_wait_->add(exchange_wait_seconds_ - folded_.exchange_wait_seconds);
    m_exch_inflight_->record(exchange_inflight_step_);
    // Residency gauges mirror the store's step-boundary accounting; the
    // monotone counters fold as deltas like the algorithm counters above.
    m_dv_resident_->set(static_cast<double>(dv_->resident_bytes()));
    m_dv_cold_->set(static_cast<double>(dv_->cold_bytes()));
    m_dv_promotions_->add(dv_->promotions() - folded_dv_promotions_);
    m_dv_demotions_->add(dv_->demotions() - folded_dv_demotions_);
    m_dv_decode_->add(dv_->decode_seconds() - folded_dv_decode_seconds_);
    folded_dv_promotions_ = dv_->promotions();
    folded_dv_demotions_ = dv_->demotions();
    folded_dv_decode_seconds_ = dv_->decode_seconds();
    folded_ = rec;
  }
  exchange_inflight_step_ = 0;  // per-step high-water, reset at each record
  blocked_on_seconds_step_ = 0.0;
  blocked_on_rank_step_ = -1;
}

std::vector<std::pair<VertexId, double>> RankEngine::local_top_harmonic(
    std::size_t k) const {
  std::vector<std::pair<VertexId, double>> all;
  all.reserve(dv_->size());
  for (std::size_t r = 0; r < dv_->size(); ++r) {
    // Ascending-column summation order, exactly like the pre-bounded
    // snapshots: the k = 0 path stays bit-identical to the historical E3
    // output, and bounded runs agree with it on the surviving entries.
    // The store computes it from either residency form without promotion.
    all.emplace_back(dv_->self(r), dv_->harmonic(r));
  }
  if (k > 0 && all.size() > k) {
    const auto better = [](const std::pair<VertexId, double>& a,
                           const std::pair<VertexId, double>& b) {
      return a.second != b.second ? a.second > b.second : a.first < b.first;
    };
    std::partial_sort(all.begin(),
                      all.begin() + static_cast<std::ptrdiff_t>(k), all.end(),
                      better);
    all.resize(k);
  }
  return all;
}

void RankEngine::progress_step(const char* phase, std::size_t step) {
  if (!progress_active_) return;  // the whole feed costs this one test

  // ---- bounded local summary ----
  std::uint64_t settled = 0;
  std::uint64_t columns = 0;
  for (std::size_t r = 0; r < dv_->size(); ++r) {
    settled += dv_->finite_count(r);
    columns += dv_->columns(r);
  }
  // Per-step churn deltas from the cumulative step log (same derivation
  // the driver uses for StepStats); empty log = the IA event, all zeros.
  StepLocal cur{};
  StepLocal prev{};
  if (!step_log_.empty()) cur = step_log_.back();
  if (step_log_.size() >= 2) prev = step_log_[step_log_.size() - 2];

  rt::ByteWriter w;
  w.write<std::uint64_t>(dirty_entries_);
  w.write<std::uint64_t>(settled);
  w.write<std::uint64_t>(columns);
  w.write<std::uint64_t>(cur.relaxations - prev.relaxations);
  w.write<std::uint64_t>(cur.poisons - prev.poisons);
  w.write<std::uint64_t>(cur.repairs - prev.repairs);
  w.write<std::uint64_t>(queue_depth_step_);
  w.write<std::uint64_t>(comm_.ledger().bytes_sent);
  w.write<std::uint64_t>(comm_.ledger().retransmits);
  w.write<double>(cur.exchange_wait_seconds - prev.exchange_wait_seconds);
  w.write<std::uint64_t>(cur.exchange_inflight);
  w.write<double>(cur.blocked_on_seconds);
  w.write<std::int64_t>(cur.blocked_on_rank);
  w.write<std::uint64_t>(dv_->resident_bytes());
  w.write<std::uint64_t>(dv_->cold_bytes());
  w.write<std::uint64_t>(dv_->promotions());
  w.write<std::uint64_t>(dv_->demotions());
  const std::size_t k = cfg_.progress.top_k;
  const auto top = local_top_harmonic(k);
  w.write<std::uint32_t>(static_cast<std::uint32_t>(top.size()));
  for (const auto& [v, h] : top) {
    w.write<VertexId>(v);
    w.write<double>(h);
  }
  queue_depth_step_ = 0;

  // Deterministic fold to the driver rank. The gather is real transport
  // (ledger-accounted); a ghost contributes zero rows like any collective.
  const auto bufs = comm_.gather(w.take(), 0);
  if (progress_ == nullptr) return;  // non-driver ranks are done

  // ---- driver rank: merge in rank order, estimate, emit ----
  obs::ProgressEvent ev;
  ev.phase = phase;
  ev.step = step;
  ev.ranks = comm_.size();
  std::vector<std::pair<VertexId, double>> merged;
  for (const auto& buf : bufs) {
    rt::ByteReader r(buf);
    ev.dirty += r.read<std::uint64_t>();
    ev.settled += r.read<std::uint64_t>();
    ev.columns += r.read<std::uint64_t>();
    ev.relaxations += r.read<std::uint64_t>();
    ev.poisons += r.read<std::uint64_t>();
    ev.repairs += r.read<std::uint64_t>();
    const auto queued = r.read<std::uint64_t>();
    ev.queue_sum += queued;
    ev.queue_max = std::max(ev.queue_max, queued);
    ev.bytes += r.read<std::uint64_t>();
    ev.retransmits += r.read<std::uint64_t>();
    ev.exchange_wait_seconds += r.read<double>();
    ev.inflight_depth = std::max(ev.inflight_depth, r.read<std::uint64_t>());
    {
      // Global blocked-on attribution: the rank that blocked longest is
      // the step's live straggler candidate; keep its peer.
      const auto blocked_s = r.read<double>();
      const auto blocked_r = r.read<std::int64_t>();
      if (blocked_s > ev.blocked_on_seconds) {
        ev.blocked_on_seconds = blocked_s;
        ev.blocked_on_rank = blocked_r;
      }
    }
    ev.dv_resident_bytes += r.read<std::uint64_t>();
    ev.dv_cold_bytes += r.read<std::uint64_t>();
    ev.dv_promotions += r.read<std::uint64_t>();
    ev.dv_demotions += r.read<std::uint64_t>();
    const auto count = r.read<std::uint32_t>();
    for (std::uint32_t i = 0; i < count; ++i) {
      const auto v = r.read<VertexId>();
      const auto h = r.read<double>();
      merged.emplace_back(v, h);
    }
  }
  ev.dirty_fraction =
      ev.columns == 0 ? 0.0
                      : static_cast<double>(ev.dirty) /
                            static_cast<double>(ev.columns);
  ev.recoveries = progress_->recoveries;
  // Vertices are uniquely owned, so the concatenation has no duplicate ids;
  // one sort gives the global bounded top-k.
  std::sort(merged.begin(), merged.end(),
            [](const std::pair<VertexId, double>& a,
               const std::pair<VertexId, double>& b) {
              return a.second != b.second ? a.second > b.second
                                          : a.first < b.first;
            });
  if (merged.size() > k) merged.resize(k);
  if (std::strcmp(phase, "rc_step") == 0 && !progress_->prev_top.empty()) {
    ev.has_estimators = true;
    ev.topk_overlap = top_k_overlap(progress_->prev_top, merged, k);
    ev.kendall_tau = kendall_tau(progress_->prev_top, merged);
  }
  ev.top.reserve(merged.size());
  for (const auto& [v, h] : merged) ev.top.push_back(v);
  progress_->prev_top = std::move(merged);
  if (serve_ != nullptr) {
    // Republish the estimator sample for query responses (the staleness
    // contract: every answer carries the latest convergence estimators),
    // and surface the serve counters in the feed itself.
    auto est = std::make_shared<serve::EstimatorSample>();
    est->step = step;
    est->has = ev.has_estimators;
    est->topk_overlap = ev.topk_overlap;
    est->kendall_tau = ev.kendall_tau;
    serve_->estimators.store(std::move(est));
    ev.has_serve = true;
    ev.serve_queries = serve_->queries.load(std::memory_order_relaxed);
    std::size_t oldest = step;
    for (const auto& cell : serve_->snapshots) {
      const auto snap = cell.read();
      oldest = std::min(oldest, snap ? snap->step : std::size_t{0});
    }
    ev.snapshot_age_steps = step - oldest;
    if (m_serve_age_ != nullptr) {
      m_serve_age_->record(ev.snapshot_age_steps);
    }
  }
  progress_->emit(ev);
}

void RankEngine::publish_snapshot(std::size_t step) {
  const Timer timer;
  auto& cell = serve_->snapshots[static_cast<std::size_t>(comm_.rank())];
  auto snap = std::make_shared<serve::SnapshotData>();
  {
    const auto prev = cell.read();
    snap->epoch = prev != nullptr ? prev->epoch + 1 : 1;
  }
  snap->step = step;
  snap->degraded = serve_->degraded.load(std::memory_order_relaxed);
  snap->adopted = adopted_;
  const std::size_t rows = dv_->size();  // 0 for ghosts: an empty snapshot
  publish_index_.clear();
  publish_index_.reserve(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    publish_index_.emplace_back(dv_->self(r), static_cast<std::uint32_t>(r));
  }
  std::sort(publish_index_.begin(), publish_index_.end());
  snap->ids.resize(rows);
  snap->closeness.resize(rows);
  snap->harmonic.resize(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    const auto [v, r] = publish_index_[i];
    snap->ids[i] = v;
    // Metadata reads — the tiered store serves them from either residency
    // form without promotion, so publication cannot perturb residency.
    snap->closeness[i] = dv_->closeness(r);
    snap->harmonic[i] = dv_->harmonic(r);
  }
  snap->by_closeness.resize(rows);
  std::iota(snap->by_closeness.begin(), snap->by_closeness.end(), 0U);
  std::sort(snap->by_closeness.begin(), snap->by_closeness.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return snap->closeness[a] != snap->closeness[b]
                         ? snap->closeness[a] > snap->closeness[b]
                         : snap->ids[a] < snap->ids[b];
            });
  cell.publish(std::move(snap));  // the O(1) swap — readers never waited
  if (m_serve_publishes_ != nullptr) {
    m_serve_publishes_->add(1);
    m_serve_publish_seconds_->add(timer.seconds());
  }
}

std::size_t RankEngine::run_rc() {
  comm_.set_phase("rc");
  std::size_t step = start_step_;
  std::size_t next_batch = start_batch_;
  const std::size_t num_batches = schedule_ != nullptr ? schedule_->size() : 0;
  // Live session: schedule_ is the replayed journal prefix (empty on a
  // first attempt); once it is consumed, fresh batches come from the feed.
  const bool live = serve_ != nullptr;

  for (;;) {
    cur_step_ = step;
    // Flow ids minted from here on carry this step (obs/causal.hpp); the
    // causal stitcher uses it to bound edges to their RC epoch.
    comm_.set_flow_step(static_cast<std::uint32_t>(step));
    // Opened before the crash hook so a mid-step InjectedCrash unwinds
    // through the span and the trace still shows the truncated step.
    const obs::ScopedSpan step_span(trace_, "rc_step", "step", step);
    // Chaos hook: a scheduled crash fires at the top of the RC step, before
    // this rank enters the step's first collective. Every survivor then
    // blocks inside that exchange (the all_to_all needs the dead rank) and
    // is interrupted there, so all survivors stop with the *same* (step,
    // batch) cursors — which is what makes the degraded restart coherent.
    if (!ghost_ && injector_ != nullptr &&
        injector_->should_crash(comm_.rank(), step)) {
      throw rt::InjectedCrash(comm_.rank(), step);
    }

    exchange();

    bool ingested = false;
    while (next_batch < num_batches &&
           (*schedule_)[next_batch].at_step <= step) {
      const obs::ScopedSpan ingest_span(trace_, "ingest", "batch", next_batch);
      // Rank 0 broadcasts the batch contents (accounted change feed). Every
      // rank serializes its own copy too: the schedule is replicated, so a
      // survivor whose tree parent died mid-broadcast reconstructs the
      // payload locally instead of stalling — the feed is data the rank
      // already has, only its distribution cost is being modeled
      // (docs/FAULTS.md §Shard adoption).
      rt::ByteWriter w;
      serialize_events((*schedule_)[next_batch].events, w);
      const std::vector<std::byte> feed = w.take();
      auto buf = comm_.broadcast(feed, 0, &feed);
      rt::ByteReader rd(buf);
      const auto events = deserialize_events(rd);
      ingest_batch(events);
      ingested = true;
      ++next_batch;
      cur_batch_ = next_batch;
    }

    // Live mutation feed: once the journal replay is exhausted, rank 0 pops
    // queued batches (journaling each at this step so recovery can replay
    // it), serializes and broadcasts them through the measured communicator
    // like any schedule batch. An empty broadcast payload is the "no more
    // this step" terminator — a real batch always serializes non-empty.
    // Runs on ghost seats too: the seat, not the process, owns the feed
    // role, so the protocol survives rank 0's death.
    if (live && next_batch >= num_batches) {
      for (;;) {
        std::vector<std::byte> feed;
        if (comm_.rank() == 0) {
          std::vector<Event> events;
          if (serve_->feed.try_pop(step, events)) {
            rt::ByteWriter w;
            serialize_events(events, w);
            feed = w.take();
          }
        }
        const auto buf = comm_.broadcast(std::move(feed), 0, nullptr);
        if (buf.empty()) break;
        const obs::ScopedSpan ingest_span(trace_, "ingest", "batch",
                                          next_batch);
        rt::ByteReader rd(buf);
        const auto events = deserialize_events(rd);
        ingest_batch(events);
        ingested = true;
        ++next_batch;
        cur_batch_ = next_batch;
      }
    }

    // Extension: automatic rebalancing when dynamic changes (typically
    // deletions) have skewed the load beyond the configured threshold.
    // The decision is a deterministic function of the shared owner map, so
    // every rank takes the same branch without communication.
    if (ingested && cfg_.rebalance_threshold > 0.0) {
      const auto loads = rank_loads(lg_.owner_map(), comm_.size());
      std::size_t alive = 0;
      std::size_t max_load = 0;
      for (const std::size_t l : loads) {
        alive += l;
        max_load = std::max(max_load, l);
      }
      const double ideal =
          static_cast<double>(alive) / static_cast<double>(comm_.size());
      if (ideal > 0.0 &&
          static_cast<double>(max_load) / ideal > cfg_.rebalance_threshold) {
        apply_repartition({});
      }
    }

    // Poison-synchronization barrier: all invalidations must settle on
    // every rank before any repair runs, otherwise two ranks can re-derive
    // distances from each other's stale entries and count to infinity.
    {
      const obs::ScopedSpan sync_span(trace_, "poison_sync");
      bool mine = poison_pending_;
      poison_pending_ = false;
      while (comm_.all_reduce_or(mine)) {
        mine = poison_sync_round();
      }
    }

    drain();
    if (cfg_.refine == RefineMode::kBoundaryFloydWarshall) {
      boundary_fw_pass();
      drain();
    }

    if (cfg_.validate_each_step) {
      const auto violations = check_invariants();
      invariant_violations_ += violations.size();
      for (const std::string& v : violations) {
        std::fprintf(stderr, "[rank %d step %zu] INVARIANT: %s\n",
                     comm_.rank(), step, v.c_str());
      }
    }

    if (cfg_.record_step_quality) {
      // Harmonic centrality is the anytime-safe quality metric: distance
      // upper bounds make it a monotone lower bound of the exact value,
      // whereas 1/Σ(known distances) overshoots while coverage is partial.
      // quality_top_k bounds the snapshot to the rank's best k vertices
      // (memory O(k · steps)); 0 keeps the full per-vertex snapshot.
      step_quality_.push_back(local_top_harmonic(cfg_.quality_top_k));
    }
    // Residency pass at the step boundary: the queues are empty (drain just
    // ran), so no demoted row can hold a kQueued flag — maintain()'s
    // precondition. record_step then folds the fresh residency gauges.
    maintain_store();
    record_step(step);
    if (live) {
      // Publish before the progress fold so the feed's snapshot-age sample
      // sees this step's snapshots; the final state is force-published at
      // loop exit whatever the cadence.
      if (step % cfg_.publish_every == 0) publish_snapshot(step);
      if (comm_.rank() == 0) {
        serve_->engine_step.store(step, std::memory_order_release);
      }
    }
    progress_step("rc_step", step);

    // MTTR probe: the first completed step at/after the death step marks
    // this rank recovered; the supervisor takes the max over ranks as the
    // recovery-complete instant. Rollback restarts earlier than the death
    // step, so its replay cost is inside the measured window by design.
    if (!ghost_ && !recovery_marked_ && recovery_mark_ != nullptr &&
        step >= recovery_mark_step_) {
      recovery_marked_ = true;
      const std::int64_t now =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count();
      std::int64_t cur = recovery_mark_->load(std::memory_order_relaxed);
      while (cur < now && !recovery_mark_->compare_exchange_weak(
                              cur, now, std::memory_order_relaxed)) {
      }
    }

    if (!ghost_ && periodic_ != nullptr && cfg_.checkpoint_every > 0 &&
        step % cfg_.checkpoint_every == 0) {
      // Recovery snapshot: taken after drain, so the local queues are empty
      // and the blob captures a step boundary. Each rank writes only its
      // own slot (no locking; see PeriodicCheckpoints).
      const obs::ScopedSpan ckpt_span(trace_, "checkpoint", "step", step);
      rt::ByteWriter w;
      serialize_state(w);
      periodic_->store(comm_.rank(), step, w.take());
    }

    if (step == cfg_.checkpoint_at_step) {
      // Fault-tolerance drill: persist and stop. All ranks share `step`,
      // so the exit is collective without extra messages.
      AACC_CHECK_MSG(checkpoint_slot_ != nullptr,
                     "checkpoint_at_step set without a checkpoint slot");
      const obs::ScopedSpan ckpt_span(trace_, "checkpoint", "step", step);
      rt::ByteWriter w;
      serialize_state(w);
      *checkpoint_slot_ = w.take();
      ++step;
      break;
    }

    bool pending = dirty_entries_ > 0 || next_batch < num_batches;
    if (live && comm_.rank() == 0) {
      pending = pending || serve_->feed.has_ready();
    }
    const bool any_pending = comm_.all_reduce_or(pending);
    ++step;
    if (!any_pending) {
      if (!live) break;
      // Quiescent with an open feed: the fixpoint is reached and published,
      // so rank 0 blocks until the session ingests more or closes, then
      // broadcasts the verdict (1 = new work, 0 = closed and drained). The
      // other ranks block inside this broadcast — which is why a live
      // session disables the recv watchdog and peer-health supervision: an
      // idle feed is indistinguishable from a wedged peer.
      std::vector<std::byte> verdict(1, std::byte{0});
      if (comm_.rank() == 0 && serve_->feed.wait_ready()) {
        verdict[0] = std::byte{1};
      }
      const auto buf = comm_.broadcast(std::move(verdict), 0, nullptr);
      if (buf.at(0) == std::byte{0}) break;
    }
    if (cfg_.max_rc_steps != 0 && step >= cfg_.max_rc_steps) break;
  }
  if (live) {
    // Terminal snapshots: whatever the publish cadence, a closed (or
    // capped) session serves the exact final state at zero staleness. The
    // feed is closed on every exit path (a max_rc_steps cap included) so a
    // late ingest fails fast instead of queuing into the void.
    publish_snapshot(cur_step_);
    if (comm_.rank() == 0) {
      serve_->feed.close();
      serve_->engine_step.store(cur_step_, std::memory_order_release);
    }
  }
  return step;
}

}  // namespace aacc
