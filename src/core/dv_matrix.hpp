// Per-rank distance-vector storage.
//
// A DvRow is the distance vector of one locally-owned vertex: upper-bound
// distances to every vertex in the (growing) global id space, plus the
// *next hop* of the witness path per entry — the DVR routing-table column
// that makes sound deletion (route poisoning) possible at any RC step.
//
// Each row maintains its running Σ(finite non-self distances) and finite
// count so that an anytime closeness snapshot costs O(local rows), not
// O(local rows × n).
//
// Sparse change tracking: besides the per-entry flag byte, a row keeps two
// compact index lists so the RC hot path never scans the full column range:
//   * dirty list  — columns changed since the last send (kDirty). Send
//     assembly, dirty clearing and checkpoint serialization walk this list,
//     taking per-step cost from O(n) to O(dirty).
//   * reach list  — columns that have ever been finite (kReached).
//     mark-finite-dirty walks this instead of all n columns.
// Both lists are *lazy*: clearing an entry only drops its flag, the column
// id stays in the list until the next compaction (triggered when stale
// entries outnumber live ones). Membership bits (kTracked/kReached) keep
// the lists duplicate-free, so consumers only need to filter on the live
// flag. The fuzz tests in dv_matrix_test.cpp assert list/flag agreement
// under random op sequences.
#pragma once

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace aacc {

/// Per-(shard, row) accumulator for the column-sharded parallel RC drain
/// (DESIGN.md §"Parallel recombination drain"). The per-column fields of a
/// DvRow (distance, next hop, flag byte) are distinct memory locations per
/// column and columns never cross shards, so shards write them in place.
/// Everything row-global — the Σ/finite aggregates, the dirty/reach index
/// lists, the live dirty count — would race, so shard-mode mutators buffer
/// those changes here and DvRow::apply_delta folds them in serially at
/// drain exit, in shard-id order.
struct DvRowDelta {
  std::int64_t sum = 0;        ///< Σ finite-distance change
  std::int64_t finite = 0;     ///< finite-count change
  std::int64_t dirty = 0;      ///< live dirty-bit count change
  std::vector<VertexId> dirty_append;  ///< columns newly tracked (kTracked already set)
  std::vector<VertexId> reach_append;  ///< columns newly reached (kReached already set)
  bool live = false;  ///< registered in the owning shard's touched-row list
};

class DvRow {
 public:
  DvRow(VertexId self, VertexId n) : self_(self) {
    d_.assign(n, kInfDist);
    nh_.assign(n, kNoVertex);
    flags_.assign(n, 0);
    d_[self] = 0;
  }

  /// Reconstructs a migrated row from wire data.
  DvRow(VertexId self, std::vector<Dist> d, std::vector<VertexId> nh)
      : self_(self), d_(std::move(d)), nh_(std::move(nh)) {
    AACC_CHECK(d_.size() == nh_.size());
    flags_.assign(d_.size(), 0);
    recompute_aggregates();
  }

  [[nodiscard]] VertexId self() const { return self_; }
  [[nodiscard]] VertexId size() const { return static_cast<VertexId>(d_.size()); }
  [[nodiscard]] Dist dist(VertexId t) const { return d_[t]; }
  [[nodiscard]] VertexId next_hop(VertexId t) const { return nh_[t]; }
  [[nodiscard]] const std::vector<Dist>& dists() const { return d_; }
  [[nodiscard]] const std::vector<VertexId>& next_hops() const { return nh_; }

  /// Running aggregates over finite non-self entries.
  [[nodiscard]] std::uint64_t finite_sum() const { return sum_; }
  [[nodiscard]] VertexId finite_count() const { return finite_; }

  /// Anytime closeness estimate from the current upper bounds (0 when no
  /// other vertex is known reachable yet).
  [[nodiscard]] double closeness() const {
    return sum_ == 0 ? 0.0 : 1.0 / static_cast<double>(sum_);
  }

  /// Overwrites entry t. Maintains aggregates; does not touch flags.
  void set(VertexId t, Dist nd, VertexId nh) {
    AACC_DCHECK(t != self_ || nd == 0);
    const Dist old = d_[t];
    if (t != self_) {
      if (old != kInfDist) {
        sum_ -= old;
        --finite_;
      }
      if (nd != kInfDist) {
        sum_ += nd;
        ++finite_;
        if ((flags_[t] & kReached) == 0) {
          flags_[t] |= kReached;
          reach_.push_back(t);
        }
      }
    }
    d_[t] = nd;
    nh_[t] = nh;
  }

  /// Shard-mode set(): writes the per-column entry in place but diverts the
  /// aggregate and reach-list changes into `delta`. Safe to run concurrently
  /// with other shards of the same row as long as no two shards share a
  /// column.
  void set_sharded(VertexId t, Dist nd, VertexId nh, DvRowDelta& delta) {
    AACC_DCHECK(t != self_ || nd == 0);
    const Dist old = d_[t];
    if (t != self_) {
      if (old != kInfDist) {
        delta.sum -= static_cast<std::int64_t>(old);
        --delta.finite;
      }
      if (nd != kInfDist) {
        delta.sum += static_cast<std::int64_t>(nd);
        ++delta.finite;
        if ((flags_[t] & kReached) == 0) {
          flags_[t] |= kReached;
          delta.reach_append.push_back(t);
        }
      }
    }
    d_[t] = nd;
    nh_[t] = nh;
  }

  /// Shard-mode mark_dirty(): flips the per-column flag bits in place,
  /// buffers the count change and the index-list append in `delta`. Never
  /// compacts (compaction rewrites the shared list).
  bool mark_dirty_sharded(VertexId t, DvRowDelta& delta) {
    if ((flags_[t] & kDirty) != 0) return false;
    flags_[t] |= kDirty;
    ++delta.dirty;
    if ((flags_[t] & kTracked) == 0) {
      flags_[t] |= kTracked;
      delta.dirty_append.push_back(t);
    }
    return true;
  }

  /// Folds one shard's buffered mutations into the row-global fields and
  /// resets the delta for reuse. Serial only (drain exit); callers iterate
  /// shards in shard-id order so the merged list contents are deterministic.
  /// Every buffered id still holds its dirty bit (nothing clears flags
  /// during a drain), so the post-append compaction check cannot drop them.
  void apply_delta(DvRowDelta& delta) {
    sum_ = static_cast<std::uint64_t>(static_cast<std::int64_t>(sum_) +
                                      delta.sum);
    finite_ = static_cast<VertexId>(static_cast<std::int64_t>(finite_) +
                                    delta.finite);
    dirty_count_ = static_cast<VertexId>(
        static_cast<std::int64_t>(dirty_count_) + delta.dirty);
    dirty_.insert(dirty_.end(), delta.dirty_append.begin(),
                  delta.dirty_append.end());
    reach_.insert(reach_.end(), delta.reach_append.begin(),
                  delta.reach_append.end());
    maybe_compact_dirty();
    delta.sum = 0;
    delta.finite = 0;
    delta.dirty = 0;
    delta.dirty_append.clear();
    delta.reach_append.clear();
    delta.live = false;
  }

  /// Appends `count` new (unreachable) columns, reserving geometrically so
  /// a stream of vertex-addition batches does not reallocate per batch.
  void grow(VertexId count) {
    const std::size_t need = d_.size() + count;
    if (need > d_.capacity()) {
      const std::size_t cap = std::max(need, 2 * d_.size());
      d_.reserve(cap);
      nh_.reserve(cap);
      flags_.reserve(cap);
    }
    d_.insert(d_.end(), count, kInfDist);
    nh_.insert(nh_.end(), count, kNoVertex);
    flags_.insert(flags_.end(), count, 0);
  }

  /// Resident-memory footprint of this row (capacity-based, including the
  /// sparse index lists) — the unit the tiered store's budget is charged
  /// in (DESIGN.md §"Tiered DV storage").
  [[nodiscard]] std::size_t footprint_bytes() const {
    return sizeof(DvRow) + d_.capacity() * sizeof(Dist) +
           nh_.capacity() * sizeof(VertexId) + flags_.capacity() +
           (dirty_.capacity() + reach_.capacity()) * sizeof(VertexId);
  }

  /// Releases slack capacity (columns and index lists). Called after a
  /// repartition rebuilt the row set: the geometric growth headroom of the
  /// pre-migration era is dead weight on the new owner.
  void shrink_to_fit() {
    compact_dirty();
    compact_reach();
    d_.shrink_to_fit();
    nh_.shrink_to_fit();
    flags_.shrink_to_fit();
    dirty_.shrink_to_fit();
    reach_.shrink_to_fit();
  }

  // Entry flags used by the rank engine.
  static constexpr std::uint8_t kDirty = 1;    ///< changed since last send
  static constexpr std::uint8_t kQueued = 2;   ///< in the relaxation worklist
  // Internal membership bits for the sparse index lists (not for engine use).
  static constexpr std::uint8_t kTracked = 4;  ///< column id is in dirty_
  static constexpr std::uint8_t kReached = 8;  ///< column id is in reach_

  [[nodiscard]] bool test_flag(VertexId t, std::uint8_t bit) const {
    return (flags_[t] & bit) != 0;
  }
  void set_flag(VertexId t, std::uint8_t bit) { flags_[t] |= bit; }
  void clear_flag(VertexId t, std::uint8_t bit) {
    flags_[t] &= static_cast<std::uint8_t>(~bit);
  }

  /// Marks entry t as changed-since-last-send. Returns true if it was clean.
  bool mark_dirty(VertexId t) {
    if ((flags_[t] & kDirty) != 0) return false;
    flags_[t] |= kDirty;
    ++dirty_count_;
    if ((flags_[t] & kTracked) == 0) {
      flags_[t] |= kTracked;
      maybe_compact_dirty();
      dirty_.push_back(t);
    }
    return true;
  }
  /// Clears the dirty bit. Returns true if it was set. The column stays in
  /// the index list as a stale entry until the next compaction.
  bool clear_dirty(VertexId t) {
    if ((flags_[t] & kDirty) == 0) return false;
    flags_[t] &= static_cast<std::uint8_t>(~kDirty);
    --dirty_count_;
    return true;
  }
  [[nodiscard]] VertexId dirty_count() const { return dirty_count_; }

  /// Clears every dirty bit by walking the sparse list — O(dirty), not
  /// O(n). Returns the number of live entries cleared. When `cleared_cols`
  /// is non-null, the live columns are appended to it — the pipelined
  /// exchange records them so an aborted collective can re-mark its
  /// pending sends before the recovery stash is taken.
  VertexId clear_all_dirty(std::vector<VertexId>* cleared_cols = nullptr) {
    for (const VertexId t : dirty_) {
      if (cleared_cols != nullptr && (flags_[t] & kDirty) != 0) {
        cleared_cols->push_back(t);
      }
      flags_[t] &= static_cast<std::uint8_t>(~(kDirty | kTracked));
    }
    dirty_.clear();
    const VertexId cleared = dirty_count_;
    dirty_count_ = 0;
    return cleared;
  }

  /// Fills `out` with the currently dirty columns in ascending order
  /// (stale list entries are filtered out). O(dirty log dirty).
  void sorted_dirty(std::vector<VertexId>& out) const {
    out.clear();
    for (const VertexId t : dirty_) {
      if ((flags_[t] & kDirty) != 0) out.push_back(t);
    }
    std::sort(out.begin(), out.end());
  }

  /// Calls fn(t) for every finite non-self column, walking the reach list
  /// instead of the full column range — O(ever-finite), not O(n).
  template <typename Fn>
  void for_each_finite(Fn&& fn) const {
    for (const VertexId t : reach_) {
      if (d_[t] != kInfDist) fn(t);
    }
  }

  /// Clears every flag (dirty + queued) and the dirty list. Reachability
  /// bookkeeping survives: the distances themselves are untouched, so the
  /// reach list must keep describing them. Used when a row survives a
  /// repartition in place: the new ownership invalidates send/queue state.
  void reset_flags() {
    for (std::uint8_t& f : flags_) f &= kReached;
    dirty_.clear();
    dirty_count_ = 0;
  }

 private:
  void recompute_aggregates() {
    sum_ = 0;
    finite_ = 0;
    for (VertexId t = 0; t < d_.size(); ++t) {
      if (t != self_ && d_[t] != kInfDist) {
        sum_ += d_[t];
        ++finite_;
        flags_[t] |= kReached;
        reach_.push_back(t);
      }
    }
  }

  /// Drops stale ids once they outnumber live ones (amortized O(1) per op).
  void maybe_compact_dirty() {
    if (dirty_.size() > 2 * static_cast<std::size_t>(dirty_count_) + 8) {
      compact_dirty();
    }
  }
  void compact_dirty() {
    std::size_t keep = 0;
    for (const VertexId t : dirty_) {
      if ((flags_[t] & kDirty) != 0) {
        dirty_[keep++] = t;
      } else {
        flags_[t] &= static_cast<std::uint8_t>(~kTracked);
      }
    }
    dirty_.resize(keep);
  }
  void compact_reach() {
    std::size_t keep = 0;
    for (const VertexId t : reach_) {
      if (d_[t] != kInfDist) {
        reach_[keep++] = t;
      } else {
        flags_[t] &= static_cast<std::uint8_t>(~kReached);
      }
    }
    reach_.resize(keep);
  }

  VertexId self_;
  std::vector<Dist> d_;
  std::vector<VertexId> nh_;
  std::vector<std::uint8_t> flags_;
  std::vector<VertexId> dirty_;  ///< sparse dirty index list (may hold stale ids)
  std::vector<VertexId> reach_;  ///< columns ever finite (may hold stale ids)
  std::uint64_t sum_ = 0;
  VertexId finite_ = 0;
  VertexId dirty_count_ = 0;
};

}  // namespace aacc
