// Per-rank distance-vector storage.
//
// A DvRow is the distance vector of one locally-owned vertex: upper-bound
// distances to every vertex in the (growing) global id space, plus the
// *next hop* of the witness path per entry — the DVR routing-table column
// that makes sound deletion (route poisoning) possible at any RC step.
//
// Each row maintains its running Σ(finite non-self distances) and finite
// count so that an anytime closeness snapshot costs O(local rows), not
// O(local rows × n).
#pragma once

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace aacc {

class DvRow {
 public:
  DvRow(VertexId self, VertexId n) : self_(self) {
    d_.assign(n, kInfDist);
    nh_.assign(n, kNoVertex);
    flags_.assign(n, 0);
    d_[self] = 0;
  }

  /// Reconstructs a migrated row from wire data.
  DvRow(VertexId self, std::vector<Dist> d, std::vector<VertexId> nh)
      : self_(self), d_(std::move(d)), nh_(std::move(nh)) {
    AACC_CHECK(d_.size() == nh_.size());
    flags_.assign(d_.size(), 0);
    recompute_aggregates();
  }

  [[nodiscard]] VertexId self() const { return self_; }
  [[nodiscard]] VertexId size() const { return static_cast<VertexId>(d_.size()); }
  [[nodiscard]] Dist dist(VertexId t) const { return d_[t]; }
  [[nodiscard]] VertexId next_hop(VertexId t) const { return nh_[t]; }
  [[nodiscard]] const std::vector<Dist>& dists() const { return d_; }
  [[nodiscard]] const std::vector<VertexId>& next_hops() const { return nh_; }

  /// Running aggregates over finite non-self entries.
  [[nodiscard]] std::uint64_t finite_sum() const { return sum_; }
  [[nodiscard]] VertexId finite_count() const { return finite_; }

  /// Anytime closeness estimate from the current upper bounds (0 when no
  /// other vertex is known reachable yet).
  [[nodiscard]] double closeness() const {
    return sum_ == 0 ? 0.0 : 1.0 / static_cast<double>(sum_);
  }

  /// Overwrites entry t. Maintains aggregates; does not touch flags.
  void set(VertexId t, Dist nd, VertexId nh) {
    AACC_DCHECK(t != self_ || nd == 0);
    const Dist old = d_[t];
    if (t != self_) {
      if (old != kInfDist) {
        sum_ -= old;
        --finite_;
      }
      if (nd != kInfDist) {
        sum_ += nd;
        ++finite_;
      }
    }
    d_[t] = nd;
    nh_[t] = nh;
  }

  /// Appends `count` new (unreachable) columns.
  void grow(VertexId count) {
    d_.insert(d_.end(), count, kInfDist);
    nh_.insert(nh_.end(), count, kNoVertex);
    flags_.insert(flags_.end(), count, 0);
  }

  // Entry flags used by the rank engine.
  static constexpr std::uint8_t kDirty = 1;    ///< changed since last send
  static constexpr std::uint8_t kQueued = 2;   ///< in the relaxation worklist

  [[nodiscard]] bool test_flag(VertexId t, std::uint8_t bit) const {
    return (flags_[t] & bit) != 0;
  }
  void set_flag(VertexId t, std::uint8_t bit) { flags_[t] |= bit; }
  void clear_flag(VertexId t, std::uint8_t bit) {
    flags_[t] &= static_cast<std::uint8_t>(~bit);
  }

  /// Marks entry t as changed-since-last-send. Returns true if it was clean.
  bool mark_dirty(VertexId t) {
    if ((flags_[t] & kDirty) != 0) return false;
    flags_[t] |= kDirty;
    ++dirty_count_;
    return true;
  }
  /// Clears the dirty bit. Returns true if it was set.
  bool clear_dirty(VertexId t) {
    if ((flags_[t] & kDirty) == 0) return false;
    flags_[t] &= static_cast<std::uint8_t>(~kDirty);
    --dirty_count_;
    return true;
  }
  [[nodiscard]] VertexId dirty_count() const { return dirty_count_; }

  /// Clears every flag (dirty + queued). Used when a row survives a
  /// repartition in place: the new ownership invalidates all bookkeeping.
  void reset_flags() {
    std::fill(flags_.begin(), flags_.end(), std::uint8_t{0});
    dirty_count_ = 0;
  }

 private:
  void recompute_aggregates() {
    sum_ = 0;
    finite_ = 0;
    for (VertexId t = 0; t < d_.size(); ++t) {
      if (t != self_ && d_[t] != kInfDist) {
        sum_ += d_[t];
        ++finite_;
      }
    }
  }

  VertexId self_;
  std::vector<Dist> d_;
  std::vector<VertexId> nh_;
  std::vector<std::uint8_t> flags_;
  std::uint64_t sum_ = 0;
  VertexId finite_ = 0;
  VertexId dirty_count_ = 0;
};

}  // namespace aacc
