#include "core/strategies.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "partition/multilevel.hpp"

namespace aacc {

std::vector<Rank> assign_round_robin(std::size_t count, std::uint64_t cursor,
                                     Rank world) {
  std::vector<Rank> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = static_cast<Rank>((cursor + i) % static_cast<std::uint64_t>(world));
  }
  return out;
}

std::vector<Rank> assign_round_robin_excluding(std::size_t count,
                                               std::uint64_t cursor, Rank world,
                                               const std::vector<Rank>& skip) {
  std::vector<Rank> survivors;
  survivors.reserve(static_cast<std::size_t>(world));
  for (Rank r = 0; r < world; ++r) {
    if (std::find(skip.begin(), skip.end(), r) == skip.end()) {
      survivors.push_back(r);
    }
  }
  AACC_CHECK_MSG(!survivors.empty(),
                 "round-robin assignment has no surviving ranks");
  std::vector<Rank> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = survivors[(cursor + i) % survivors.size()];
  }
  return out;
}

std::vector<std::size_t> rank_loads(const std::vector<Rank>& owner, Rank world) {
  std::vector<std::size_t> load(static_cast<std::size_t>(world), 0);
  for (const Rank r : owner) {
    if (r != kNoRank) ++load[static_cast<std::size_t>(r)];
  }
  return load;
}

std::vector<Rank> assign_cut_edge(const std::vector<VertexAddEvent>& batch,
                                  VertexId first_new_id,
                                  const std::vector<Rank>& owner, Rank world,
                                  std::uint64_t seed) {
  const auto k = static_cast<VertexId>(batch.size());
  // Batch-internal graph: vertex i of the batch has global id
  // first_new_id + i; only edges between batch members count.
  Graph bg(k);
  for (VertexId i = 0; i < k; ++i) {
    AACC_CHECK_MSG(batch[i].id == first_new_id + i,
                   "batch ids must be dense from " << first_new_id);
    for (const auto& [to, w] : batch[i].edges) {
      if (to >= first_new_id && to < batch[i].id) {
        bg.add_edge(i, to - first_new_id, w);
      }
    }
  }

  Rng rng(seed ^ (0x9e3779b97f4a7c15ULL + first_new_id));
  const MultilevelPartitioner ml;
  const Partition parts = ml.partition(bg, world, rng);

  // Part sizes, largest first.
  std::vector<std::size_t> part_size(static_cast<std::size_t>(world), 0);
  for (VertexId i = 0; i < k; ++i) {
    ++part_size[static_cast<std::size_t>(parts.assignment[i])];
  }
  std::vector<Rank> parts_by_size(static_cast<std::size_t>(world));
  std::iota(parts_by_size.begin(), parts_by_size.end(), Rank{0});
  std::stable_sort(parts_by_size.begin(), parts_by_size.end(),
                   [&](Rank a, Rank b) {
                     return part_size[static_cast<std::size_t>(a)] >
                            part_size[static_cast<std::size_t>(b)];
                   });

  // Ranks, least loaded first.
  const auto load = rank_loads(owner, world);
  std::vector<Rank> ranks_by_load(static_cast<std::size_t>(world));
  std::iota(ranks_by_load.begin(), ranks_by_load.end(), Rank{0});
  std::stable_sort(ranks_by_load.begin(), ranks_by_load.end(),
                   [&](Rank a, Rank b) {
                     return load[static_cast<std::size_t>(a)] <
                            load[static_cast<std::size_t>(b)];
                   });

  std::vector<Rank> part_to_rank(static_cast<std::size_t>(world));
  for (Rank i = 0; i < world; ++i) {
    part_to_rank[static_cast<std::size_t>(parts_by_size[static_cast<std::size_t>(i)])] =
        ranks_by_load[static_cast<std::size_t>(i)];
  }

  std::vector<Rank> out(k);
  for (VertexId i = 0; i < k; ++i) {
    out[i] = part_to_rank[static_cast<std::size_t>(parts.assignment[i])];
  }
  return out;
}

}  // namespace aacc
