// Shared configuration enums for the anytime anywhere engine.
#pragma once

#include <stdexcept>

#include "common/types.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "partition/partition.hpp"
#include "runtime/faults.hpp"
#include "runtime/logp.hpp"

namespace aacc {

/// Raised by EngineConfig::validate() (and therefore by the AnytimeEngine
/// constructors) on a configuration that could not produce a meaningful
/// run. Failing fast here beats a std::logic_error deep inside run().
class ConfigError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Sentinel for EngineConfig::checkpoint_at_step: checkpointing disabled.
inline constexpr std::size_t kNoCheckpointStep = static_cast<std::size_t>(-1);

/// Processor-assignment strategy for dynamically added vertices (§IV.C.a).
enum class AssignStrategy {
  /// RoundRobin-PS: circular assignment; O(v') overhead, ignores the
  /// relationships among the new vertices.
  kRoundRobin,
  /// CutEdge-PS: partition the batch (new vertices + edges among them) with
  /// the multilevel partitioner and map parts onto the least-loaded ranks.
  kCutEdge,
  /// Repartition-S: repartition the whole updated graph and migrate DV rows
  /// (reusing partial results — the anytime property).
  kRepartition,
};

/// How edge additions update existing DV rows (§IV.C.a / Figure 3).
enum class EdgeAddMode {
  /// Relax only the endpoint rows through the new edge and let the normal
  /// worklist/RC propagation carry the improvement. Same fixpoint as eager,
  /// work proportional to the number of entries that actually improve.
  kSeeded,
  /// The paper's Figure-3 loop: broadcast both endpoint rows and relax every
  /// local row against them immediately (O(n_p * n) per edge).
  kEager,
};

/// How the RC exchange consumes the personalized all-to-all (ROADMAP open
/// item 2; see docs/PROTOCOL.md §"Pipelined exchange").
enum class ExchangeMode {
  /// Blocking shift schedule, apply after the full collective — the
  /// verification oracle. Bit-identical results for any thread count.
  kDeterministic,
  /// k-deep windowed sends; each peer's payload is decoded and applied as
  /// its message arrives, overlapping decode with the remaining network
  /// time. Final distances (closeness/harmonic) are unchanged — DV entries
  /// are monotone upper bounds, so apply order cannot move the fixed
  /// point — but next-hop tie-breaks and step counts may differ.
  kPipelined,
  /// Pipelined, plus the next drain starts between arrivals: queued
  /// worklist propagation runs while later messages are still in flight.
  /// Repairs still wait for the poison barrier (count-to-infinity guard).
  kAsync,
};

/// Recovery action a rung of the policy ladder applies when the supervisor
/// declares ranks dead (docs/FAULTS.md §Recovery policy ladder).
enum class RecoveryPolicy {
  /// Survivors adopt the dead rank's rows: its shard is split out of its
  /// latest periodic-checkpoint blob, the owner map is rewritten onto the
  /// survivors, the mutation journal since that snapshot is replayed for
  /// the adopted rows, and a repair-poison pass re-derives their values
  /// from the survivors' current state. Zero lost vertices, no global
  /// rollback; final closeness equals the fault-free run.
  kAdopt,
  /// Whole-world rollback: every rank restores the newest snapshot all
  /// ranks hold and replays (bit-identical results). With no snapshot yet,
  /// the run restarts from scratch.
  kRollback,
  /// Degraded ghost mode: survivors carry on, the dead rank's rows are
  /// lost and reported exactly in RunResult::lost_vertices.
  kDegrade,
};

/// One rung of EngineConfig::recovery_policy. A rung is skipped when its
/// budget is exhausted or its preconditions fail (RecoveryError), falling
/// through to the next rung.
struct RecoveryRung {
  RecoveryPolicy policy = RecoveryPolicy::kRollback;
  /// Recoveries this rung may serve before the ladder falls through to the
  /// next rung. 0 = unlimited (still bounded by max_recoveries overall).
  std::size_t budget = 0;
};

/// Local refinement inside an RC step (ablation A3).
enum class RefineMode {
  /// Per-target label-correcting worklist (default).
  kLabelCorrecting,
  /// Additionally run the paper's boundary Floyd–Warshall pass each step:
  /// D[x][t] = min(D[x][t], D[x][b] + D[b][t]) over local boundary b.
  kBoundaryFloydWarshall,
};

/// Floor for a nonzero EngineConfig::dv_budget_bytes: roughly one small
/// dense row plus slot overhead. A budget below this cannot keep even one
/// row hot, so the tiered store would thrash on every touch.
inline constexpr std::uint64_t kMinDvBudgetBytes = 4096;

struct EngineConfig {
  Rank num_ranks = 8;
  PartitionerKind dd_partitioner = PartitionerKind::kMultilevel;
  AssignStrategy assign = AssignStrategy::kRoundRobin;
  EdgeAddMode add_mode = EdgeAddMode::kSeeded;
  RefineMode refine = RefineMode::kLabelCorrecting;
  /// Intra-rank worker threads for the IA Dijkstra sweep (the paper's
  /// MPI+OpenMP hybrid: ranks are processes, sources parallelize inside
  /// each). 0 = auto (hardware_concurrency / num_ranks, clamped to [1, 8]).
  /// Any value produces bit-identical rows and ledgers: sources are
  /// disjoint rows and per-row counters merge in row order.
  std::size_t ia_threads = 0;
  /// Intra-rank worker threads for the RC recombination drain. Queued
  /// (vertex, target) work shards by target column (t mod shards) — columns
  /// are independent relaxation problems, so shards share nothing — and
  /// each shard replays the serial schedule restricted to its columns, so
  /// any value produces bit-identical matrices, results and ledgers (see
  /// DESIGN.md §"Column-sharded parallel recombination drain"). Also sizes
  /// the parallel send-assembly pass in exchange(). 0 = auto, like
  /// ia_threads (hardware_concurrency / num_ranks, clamped to [1, 8]).
  std::size_t rc_threads = 0;
  /// RC exchange schedule (see ExchangeMode). Deterministic by default:
  /// the pipelined/async modes trade bit-identity of next-hop tie-breaks
  /// for overlap, so opting in is explicit.
  ExchangeMode exchange_mode = ExchangeMode::kDeterministic;
  /// Send-window depth for the pipelined/async exchange: how many sends
  /// may be issued ahead of the completed recvs. 0 = auto (P-1, fully
  /// overlapped); values are clamped to [1, P-1] at run time.
  /// kDeterministic requires 0 or 1 — the blocking schedule *is* window 1.
  std::size_t exchange_window = 0;
  /// Per-rank byte budget for resident (hot) DV rows. 0 = fully resident
  /// (the historical dense store). Nonzero selects the tiered store: settled
  /// rows are demoted to a delta-compressed cold form at each RC step
  /// boundary until the hot tier fits the budget, and promoted back on
  /// first touch (DESIGN.md §"Tiered DV storage"). Results are bit-identical
  /// at any budget; only memory/CPU trade off. Must be 0 or at least
  /// kMinDvBudgetBytes — a smaller bound could not hold even one row and
  /// would thrash every step.
  std::uint64_t dv_budget_bytes = 0;
  std::uint64_t seed = 1;
  rt::LogGPParams logp;
  /// Record per-step closeness snapshots (E3 quality curves). Adds one
  /// gather per RC step.
  bool record_step_quality = false;
  /// Bound for record_step_quality: each rank keeps only its top-k
  /// (vertex, harmonic) pairs per step — memory O(k · steps) instead of
  /// O(n · steps), and RunResult::step_harmonic reports 0 for vertices
  /// outside the per-rank top-k. 0 = unbounded (full snapshots, the exact
  /// E3 behavior).
  std::size_t quality_top_k = 0;
  /// Gather the full APSP matrix into RunResult (tests; O(n^2) memory).
  bool gather_apsp = false;
  /// Safety cap on RC steps (0 = no cap). A converged static run needs at
  /// most num_ranks - 1; dynamic runs need (last event step + num_ranks).
  std::size_t max_rc_steps = 0;
  /// Debug: run RankEngine::check_invariants after each RC step and print
  /// violations to stderr (slow; tests and bug hunts only).
  bool validate_each_step = false;
  /// Extension (fault tolerance): stop after this RC step and emit a
  /// Checkpoint in the RunResult (see checkpoint.hpp). kNoCheckpointStep
  /// disables.
  std::size_t checkpoint_at_step = static_cast<std::size_t>(-1);
  /// Extension (the paper's stated future work): automatic rebalancing.
  /// After ingesting a change batch, if max_rank_load / ideal_load exceeds
  /// this threshold the engine repartitions the whole graph and migrates
  /// DV rows (same machinery as Repartition-S). 0 disables.
  double rebalance_threshold = 0.0;
  /// Fault tolerance (docs/FAULTS.md). Transport hardening is off by
  /// default so the fault-free fast path costs nothing; it is forced on
  /// whenever `faults` injects anything.
  rt::TransportConfig transport;
  /// Deterministic fault schedule for chaos testing; inert when empty.
  rt::FaultPlan faults;
  /// Periodic recovery checkpoints: every rank snapshots its state each k
  /// RC steps; on a rank failure the supervisor rolls every rank back to
  /// the newest common snapshot and replays (bit-identical results).
  /// 0 disables — failures then fall back to degraded mode.
  std::size_t checkpoint_every = 0;
  /// Supervised relaunch budget per run (recoveries + degraded restarts).
  std::size_t max_recoveries = 4;
  /// Recovery-policy ladder (docs/FAULTS.md §Recovery policy ladder). On a
  /// declared rank death the supervisor walks the rungs in order and
  /// applies the first whose budget is unspent and whose preconditions
  /// hold; a rung that throws RecoveryError falls through to the next, and
  /// an exhausted ladder rethrows. The default reproduces the legacy
  /// hard-coded order: rollback whenever periodic checkpoints are enabled,
  /// else degraded ghost mode. Adoption must be opted in, e.g.
  /// {{kAdopt}, {kRollback}, {kDegrade}}.
  std::vector<RecoveryRung> recovery_policy{
      {RecoveryPolicy::kRollback, 0}, {RecoveryPolicy::kDegrade, 0}};
  /// Peer-health supervision deadlines (docs/FAULTS.md §Health
  /// supervision): straggler -> suspect -> dead escalation on awaited
  /// peers, so a wedged rank is *declared* dead after health.dead_after of
  /// attributed silence instead of tripping the transport recv_timeout
  /// much later. Off by default.
  rt::HealthConfig health;
  /// Observability (docs/OBSERVABILITY.md): when `trace.enabled`, the
  /// engine records spans/instants into per-rank ring buffers and returns
  /// the merged Chrome trace in RunResult::trace (also written to
  /// `trace.path` when set). Off by default: every instrumentation site
  /// then sees a null track and costs one predictable branch.
  obs::TraceConfig trace;
  /// Live progress telemetry (docs/OBSERVABILITY.md §Progress events):
  /// active when any sink is configured (NDJSON path, callback, or custom
  /// sink). Each RC step then adds one deterministic gather of bounded
  /// per-rank summaries to the driver rank, which emits one ProgressEvent
  /// after the step's metrics fold. Closeness/harmonic results are
  /// bit-identical with the feed on or off; the telemetry gather's traffic
  /// is honestly accounted in the transport ledgers. When inactive the
  /// per-step hook is a single boolean test.
  obs::ProgressConfig progress;
  /// ---- live serving knobs (EngineSession / `aacc serve`; docs/API.md
  /// §"Serving sessions"). Read only by live sessions: run() never
  /// publishes snapshots, so batch runs ignore both. ----
  /// Publish a fresh immutable per-rank closeness snapshot every k
  /// completed RC steps (1 = every step). The final state is always
  /// published regardless, so a closed session serves exact values.
  std::size_t publish_every = 1;
  /// Staleness contract for query responses: a response whose backing
  /// snapshot is more than this many steps behind the engine's current
  /// step is flagged stale (ResponseMeta::stale). 0 = never flag.
  std::size_t max_snapshot_lag = 0;
  /// Per-query flow sampling (docs/OBSERVABILITY.md §Causal flows): query
  /// index i is sampled when (i + seed) % every == 0, recording latency and
  /// the snapshot publish that served it. Deterministic given the same
  /// query order; 0 disables sampling. The buffer is bounded
  /// (ServeContext::kMaxSamples) so long sessions keep only a prefix.
  std::size_t serve_sample_every = 64;
  std::uint64_t serve_sample_seed = 0;

  /// Checks the configuration for values that cannot produce a meaningful
  /// run and throws ConfigError naming the offending field. Called by the
  /// AnytimeEngine constructors. The rules (see docs/API.md):
  ///   * num_ranks in [1, 4096]
  ///   * ia_threads / rc_threads at most 4096 (0 = auto; a negative count
  ///     cast into these unsigned fields lands far above the cap)
  ///   * exchange_window at most 4096 (0 = auto), and 0 or 1 under
  ///     ExchangeMode::kDeterministic (a deeper window would reorder
  ///     arrival processing, contradicting the oracle mode's guarantee)
  ///   * dv_budget_bytes is 0 (fully resident) or >= kMinDvBudgetBytes —
  ///     a smaller budget cannot hold one hot row and would thrash
  ///   * rebalance_threshold is 0 (off) or >= 1.0 — max/ideal load is
  ///     >= 1 by definition, so a lower bar would repartition every batch
  ///   * transport.max_retries >= 1 (0 would silently never send)
  ///   * transport.recv_timeout / retry_backoff >= 0 (0 timeout disables
  ///     the recv watchdog; negative durations are sign bugs)
  ///   * fault probabilities each in [0, 1] and summing to <= 1
  ///   * recovery_policy has at least one rung and no repeated policy
  ///     (repeats would double-charge one rung's budget)
  ///   * health deadlines, when enabled, satisfy
  ///     0 < straggler_after <= suspect_after <= dead_after, and dead_after
  ///     < transport.recv_timeout when the watchdog is armed (otherwise the
  ///     timeout always wins the race and no peer is ever declared dead)
  ///   * trace.track_capacity > 0 when tracing is enabled
  ///   * progress.top_k in [1, 4096] when the progress feed is active
  ///   * publish_every in [1, 4096] (0 would never publish a snapshot)
  ///   * max_snapshot_lag is 0 (never flag) or >= publish_every (a tighter
  ///     bound would flag every response between two publishes as stale)
  void validate() const;
};

}  // namespace aacc
