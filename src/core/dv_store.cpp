#include "core/dv_store.hpp"

#include <algorithm>
#include <tuple>

#include "common/timer.hpp"

namespace aacc {

namespace {

/// Decoded cold entry stream cursor: (column, dist, next hop) triples in
/// ascending column order.
struct ColdCursor {
  rt::ByteReader r;
  std::uint64_t count;
  std::uint64_t read = 0;
  VertexId prev = 0;

  explicit ColdCursor(const ColdDvRow& c) : r(c.blob), count(r.read_varint()) {}

  [[nodiscard]] bool done() const { return read == count; }
  std::tuple<VertexId, Dist, VertexId> next() {
    const auto delta = static_cast<VertexId>(r.read_varint());
    prev = (read == 0) ? delta : prev + delta + 1;
    ++read;
    const Dist d = rt::decode_u32_sentinel(r.read_varint());
    const auto nh = static_cast<VertexId>(rt::decode_u32_sentinel(r.read_varint()));
    return {prev, d, nh};
  }
};

void write_cold_entry(rt::ByteWriter& w, VertexId col, VertexId prev,
                      bool first, Dist d, VertexId nh) {
  w.write_varint(first ? col : col - prev - 1);
  w.write_varint(rt::encode_u32_sentinel(d));
  w.write_varint(rt::encode_u32_sentinel(nh));
}

bool cold_find(const ColdDvRow& c, VertexId t, Dist* d_out, VertexId* nh_out) {
  ColdCursor cur(c);
  while (!cur.done()) {
    const auto [t2, d, nh] = cur.next();
    if (t2 == t) {
      *d_out = d;
      *nh_out = nh;
      return true;
    }
    if (t2 > t) break;  // ascending: t is absent
  }
  return false;
}

}  // namespace

ColdDvRow encode_cold_row(const DvRow& row) {
  ColdDvRow cold;
  cold.self = row.self();
  cold.columns = row.size();
  cold.finite = row.finite_count();
  cold.sum = row.finite_sum();
  std::vector<VertexId> dirty;
  row.sorted_dirty(dirty);
  cold.dirty.assign_sorted(dirty);

  std::vector<VertexId> cols;
  cols.reserve(static_cast<std::size_t>(row.finite_count()) + 1);
  cols.push_back(row.self());
  row.for_each_finite([&](VertexId t) { cols.push_back(t); });
  std::sort(cols.begin(), cols.end());

  rt::ByteWriter w;
  w.write_varint(cols.size());
  VertexId prev = 0;
  for (std::size_t i = 0; i < cols.size(); ++i) {
    const VertexId t = cols[i];
    write_cold_entry(w, t, prev, i == 0, row.dist(t), row.next_hop(t));
    prev = t;
  }
  cold.blob = w.take();
  // Cold rows are long-lived and their bytes() are the budget currency:
  // growth slack from the writer/push_back doubling is not free to keep.
  cold.blob.shrink_to_fit();
  cold.dirty.shrink_to_fit();
  return cold;
}

ColdDvRow encode_cold_row(VertexId self, const std::vector<Dist>& d,
                          const std::vector<VertexId>& nh,
                          std::vector<VertexId> dirty) {
  ColdDvRow cold;
  cold.self = self;
  cold.columns = static_cast<VertexId>(d.size());
  cold.dirty.assign_sorted(dirty);
  std::uint64_t count = 0;
  for (const Dist dt : d) {
    if (dt != kInfDist) ++count;
  }
  rt::ByteWriter w;
  w.write_varint(count);
  VertexId prev = 0;
  bool first = true;
  for (VertexId t = 0; t < cold.columns; ++t) {
    if (d[t] == kInfDist) continue;
    write_cold_entry(w, t, prev, first, d[t], nh[t]);
    prev = t;
    first = false;
    if (t != self) {
      cold.sum += d[t];
      ++cold.finite;
    }
  }
  cold.blob = w.take();
  cold.blob.shrink_to_fit();
  cold.dirty.shrink_to_fit();
  return cold;
}

DvRow decode_cold_row(const ColdDvRow& cold) {
  DvRow row(cold.self, cold.columns);
  ColdCursor cur(cold);
  while (!cur.done()) {
    const auto [t, d, nh] = cur.next();
    row.set(t, d, nh);
  }
  cold.dirty.for_each([&row](VertexId t) { row.mark_dirty(t); });
  AACC_DCHECK(row.finite_sum() == cold.sum);
  AACC_DCHECK(row.finite_count() == cold.finite);
  return row;
}

DvStore::~DvStore() = default;

std::unique_ptr<DvStore> DvStore::create(std::uint64_t budget_bytes) {
  if (budget_bytes == 0) return std::make_unique<ResidentDvStore>();
  return std::make_unique<TieredDvStore>(budget_bytes);
}

DvRow& DvStore::promote(std::size_t i) {
  std::lock_guard<std::mutex> lock(promote_mu_);
  Slot& s = slots_[i];
  if (DvRow* p = s.hot.load(std::memory_order_acquire)) return *p;  // raced
  Timer t;
  auto* p = new DvRow(decode_cold_row(*s.cold));
  decode_seconds_ += t.seconds();
  ++promotions_;
  s.cold.reset();
  s.touch.store(epoch_, std::memory_order_relaxed);
  s.hot.store(p, std::memory_order_release);
  return *p;
}

// ---- metadata ------------------------------------------------------------

VertexId DvStore::self(std::size_t i) const {
  const Slot& s = slots_[i];
  if (const DvRow* p = s.hot.load(std::memory_order_acquire)) return p->self();
  return s.cold->self;
}

VertexId DvStore::columns(std::size_t i) const {
  const Slot& s = slots_[i];
  if (const DvRow* p = s.hot.load(std::memory_order_acquire)) return p->size();
  return s.cold->columns;
}

VertexId DvStore::finite_count(std::size_t i) const {
  const Slot& s = slots_[i];
  if (const DvRow* p = s.hot.load(std::memory_order_acquire)) {
    return p->finite_count();
  }
  return s.cold->finite;
}

std::uint64_t DvStore::finite_sum(std::size_t i) const {
  const Slot& s = slots_[i];
  if (const DvRow* p = s.hot.load(std::memory_order_acquire)) {
    return p->finite_sum();
  }
  return s.cold->sum;
}

double DvStore::closeness(std::size_t i) const {
  const std::uint64_t sum = finite_sum(i);
  return sum == 0 ? 0.0 : 1.0 / static_cast<double>(sum);
}

double DvStore::harmonic(std::size_t i) const {
  // Mirrors harmonic_from_row: ascending columns, skip self / unreachable /
  // zero. for_each_entry yields exactly the finite columns ascending in
  // both residency states, so the FP accumulation order is identical.
  const VertexId s = self(i);
  double h = 0.0;
  for_each_entry(i, [&](VertexId t, Dist d, VertexId) {
    if (t == s || d == 0) return;
    h += 1.0 / static_cast<double>(d);
  });
  return h;
}

VertexId DvStore::dirty_count(std::size_t i) const {
  const Slot& s = slots_[i];
  if (const DvRow* p = s.hot.load(std::memory_order_acquire)) {
    return p->dirty_count();
  }
  return s.cold->dirty.size();
}

Dist DvStore::probe_dist(std::size_t i, VertexId t) const {
  const Slot& s = slots_[i];
  if (const DvRow* p = s.hot.load(std::memory_order_acquire)) return p->dist(t);
  Dist d = kInfDist;
  VertexId nh = kNoVertex;
  cold_find(*s.cold, t, &d, &nh);
  return d;
}

VertexId DvStore::probe_next_hop(std::size_t i, VertexId t) const {
  const Slot& s = slots_[i];
  if (const DvRow* p = s.hot.load(std::memory_order_acquire)) {
    return p->next_hop(t);
  }
  Dist d = kInfDist;
  VertexId nh = kNoVertex;
  cold_find(*s.cold, t, &d, &nh);
  return nh;
}

// ---- dirty-set operations ------------------------------------------------

void DvStore::collect_dirty_entries(
    std::size_t i, std::vector<VertexId>& cols,
    std::vector<std::pair<VertexId, Dist>>& out) const {
  const Slot& s = slots_[i];
  if (const DvRow* p = s.hot.load(std::memory_order_acquire)) {
    p->sorted_dirty(cols);
    for (const VertexId t : cols) out.emplace_back(t, p->dist(t));
    return;
  }
  // Merge-join the sorted dirty list against the ascending entry stream:
  // a dirty column absent from the entries is a poison marker (kInfDist).
  // `cols` is the caller's scratch, reused as the decoded dirty list.
  const ColdDvRow& c = *s.cold;
  cols.clear();
  c.dirty.append_to(cols);
  ColdCursor cur(c);
  std::size_t di = 0;
  while (!cur.done() && di < cols.size()) {
    const auto [t, d, nh] = cur.next();
    (void)nh;
    while (di < cols.size() && cols[di] < t) {
      out.emplace_back(cols[di++], kInfDist);
    }
    if (di < cols.size() && cols[di] == t) {
      out.emplace_back(t, d);
      ++di;
    }
  }
  while (di < cols.size()) out.emplace_back(cols[di++], kInfDist);
}

VertexId DvStore::retire_dirty(std::size_t i, std::vector<VertexId>* cleared) {
  Slot& s = slots_[i];
  if (DvRow* p = s.hot.load(std::memory_order_acquire)) {
    return p->clear_all_dirty(cleared);
  }
  ColdDvRow& c = *s.cold;
  const VertexId n = c.dirty.size();
  if (cleared != nullptr) c.dirty.append_to(*cleared);
  c.dirty.clear();
  return n;
}

bool DvStore::retire_dirty_one(std::size_t i, VertexId t) {
  Slot& s = slots_[i];
  if (DvRow* p = s.hot.load(std::memory_order_acquire)) {
    return p->clear_dirty(t);
  }
  return s.cold->dirty.erase(t);
}

bool DvStore::remark_dirty(std::size_t i, VertexId t) {
  Slot& s = slots_[i];
  if (DvRow* p = s.hot.load(std::memory_order_acquire)) {
    return p->mark_dirty(t);
  }
  return s.cold->dirty.insert(t);
}

VertexId DvStore::mark_finite_dirty(std::size_t i) {
  Slot& s = slots_[i];
  if (DvRow* p = s.hot.load(std::memory_order_acquire)) {
    VertexId added = 0;
    p->for_each_finite([&](VertexId t) {
      if (p->mark_dirty(t)) ++added;
    });
    return added;
  }
  ColdDvRow& c = *s.cold;
  std::vector<VertexId> finite_cols;
  finite_cols.reserve(c.finite);
  ColdCursor cur(c);
  while (!cur.done()) {
    const auto [t, d, nh] = cur.next();
    (void)d;
    (void)nh;
    if (t != c.self) finite_cols.push_back(t);
  }
  const std::vector<VertexId> cur_dirty = c.dirty.to_vector();
  std::vector<VertexId> merged;
  merged.reserve(cur_dirty.size() + finite_cols.size());
  std::set_union(cur_dirty.begin(), cur_dirty.end(), finite_cols.begin(),
                 finite_cols.end(), std::back_inserter(merged));
  const auto added = static_cast<VertexId>(merged.size() - cur_dirty.size());
  c.dirty.assign_sorted(merged);
  return added;
}

bool DvStore::tombstone_column(std::size_t i, VertexId v) {
  // Mirrors the engine's historical tombstone exactly: a no-op when the
  // entry is already infinite — in particular an undelivered poison marker
  // on column v stays dirty and still goes out with the next sync round.
  Slot& s = slots_[i];
  if (DvRow* p = s.hot.load(std::memory_order_acquire)) {
    if (p->dist(v) == kInfDist) return false;
    p->set(v, kInfDist, kNoVertex);
    return p->clear_dirty(v);
  }
  ColdDvRow& c = *s.cold;
  Dist d = kInfDist;
  VertexId nh = kNoVertex;
  if (!cold_find(c, v, &d, &nh)) return false;
  const bool was_dirty = c.dirty.erase(v);
  // Rewrite the entry stream without column v.
  std::vector<std::tuple<VertexId, Dist, VertexId>> entries;
  {
    ColdCursor cur(c);
    entries.reserve(cur.count > 0 ? cur.count - 1 : 0);
    while (!cur.done()) {
      const auto e = cur.next();
      if (std::get<0>(e) != v) entries.push_back(e);
    }
  }
  rt::ByteWriter w;
  w.write_varint(entries.size());
  VertexId prev = 0;
  for (std::size_t k = 0; k < entries.size(); ++k) {
    const auto [t, dt, nt] = entries[k];
    write_cold_entry(w, t, prev, k == 0, dt, nt);
    prev = t;
  }
  c.blob = w.take();
  c.sum -= d;
  --c.finite;
  return was_dirty;
}

// ---- structural ----------------------------------------------------------

void DvStore::append(DvRow&& r) {
  slots_.emplace_back();
  set_hot(slots_.size() - 1, std::move(r));
}

void DvStore::put(std::size_t i, DvRow&& r) { set_hot(i, std::move(r)); }

DvRow DvStore::take(std::size_t i) {
  DvRow out = std::move(row(i));
  return out;
}

void DvStore::swap_remove(std::size_t i) {
  slots_[i] = std::move(slots_.back());
  slots_.pop_back();
}

void DvStore::clear() {
  slots_.clear();
  cols_ = 0;
}

void DvStore::grow_columns(VertexId count) {
  cols_ += count;
  for (Slot& s : slots_) {
    if (DvRow* p = s.hot.load(std::memory_order_acquire)) {
      p->grow(count);
    } else {
      s.cold->columns += count;
    }
  }
}

void DvStore::reset_flags(std::size_t i) {
  Slot& s = slots_[i];
  if (DvRow* p = s.hot.load(std::memory_order_acquire)) {
    p->reset_flags();
  } else {
    s.cold->dirty.clear();
  }
}

void DvStore::shrink_all() {
  for (Slot& s : slots_) {
    if (DvRow* p = s.hot.load(std::memory_order_acquire)) {
      p->shrink_to_fit();
    } else {
      s.cold->blob.shrink_to_fit();
      s.cold->dirty.shrink_to_fit();
    }
  }
}

// ---- checkpoint fast path ------------------------------------------------

void DvStore::serialize_row(std::size_t i, rt::ByteWriter& w) const {
  const Slot& s = slots_[i];
  if (const DvRow* p = s.hot.load(std::memory_order_acquire)) {
    w.write(p->self());
    rt::write_packed_u32s(w, p->dists());
    rt::write_packed_u32s(w, p->next_hops());
    std::vector<VertexId> dirty;
    p->sorted_dirty(dirty);
    rt::write_ascending_ids(w, dirty);
    return;
  }
  // Transcode straight from the compressed form: emit the packed dense
  // streams by walking the column range with an entry cursor — absent
  // columns are the 1-byte sentinel code. Byte-identical to the hot path.
  const ColdDvRow& c = *s.cold;
  w.write(c.self);
  std::vector<std::tuple<VertexId, Dist, VertexId>> entries;
  {
    ColdCursor cur(c);
    entries.reserve(cur.count);
    while (!cur.done()) entries.push_back(cur.next());
  }
  w.write_varint(c.columns);
  std::size_t e = 0;
  for (VertexId col = 0; col < c.columns; ++col) {
    if (e < entries.size() && std::get<0>(entries[e]) == col) {
      w.write_varint(rt::encode_u32_sentinel(std::get<1>(entries[e])));
    } else {
      w.write_varint(rt::kSentinelCode);
    }
    if (e < entries.size() && std::get<0>(entries[e]) == col) ++e;
  }
  w.write_varint(c.columns);
  e = 0;
  for (VertexId col = 0; col < c.columns; ++col) {
    if (e < entries.size() && std::get<0>(entries[e]) == col) {
      w.write_varint(rt::encode_u32_sentinel(std::get<2>(entries[e])));
      ++e;
    } else {
      w.write_varint(rt::kSentinelCode);
    }
  }
  // ColdDirty's deltas are the write_ascending_ids payload: count prefix
  // plus the raw blob reproduces the hot path byte for byte.
  w.write_varint(c.dirty.size());
  w.write_bytes(c.dirty.deltas());
}

void DvStore::promote_all() {
  for (std::size_t i = 0; i < slots_.size(); ++i) (void)row(i);
}

// ---- resident store ------------------------------------------------------

void ResidentDvStore::append_fresh(VertexId self) {
  slots_.emplace_back();
  set_hot(slots_.size() - 1, DvRow(self, cols_));
}

VertexId ResidentDvStore::install_ia(std::size_t i, VertexId src,
                                     const std::vector<VertexId>& touched,
                                     const std::vector<Dist>& dist,
                                     const std::vector<VertexId>& hop) {
  DvRow& r = row(i);
  VertexId dirty_added = 0;
  for (const VertexId t : touched) {
    if (t == src) continue;
    r.set(t, dist[t], hop[t]);
    if (r.mark_dirty(t)) ++dirty_added;
  }
  return dirty_added;
}

void ResidentDvStore::put_cold(std::size_t i, ColdDvRow&& cold) {
  set_hot(i, decode_cold_row(cold));
}

void ResidentDvStore::maintain(const std::vector<std::uint8_t>& is_boundary) {
  (void)is_boundary;
  std::uint64_t resident = 0;
  for (const Slot& s : slots_) {
    resident += s.hot.load(std::memory_order_relaxed)->footprint_bytes();
  }
  resident_bytes_ = resident;
  ++epoch_;
}

// ---- tiered store --------------------------------------------------------

void TieredDvStore::append_fresh(VertexId self) {
  // Born cold: a one-entry stream (the self column) instead of three dense
  // O(n) arrays — bulk row creation stays O(rows), not O(rows × n).
  auto cold = std::make_unique<ColdDvRow>();
  cold->self = self;
  cold->columns = cols_;
  rt::ByteWriter w;
  w.write_varint(1);
  write_cold_entry(w, self, 0, /*first=*/true, 0, kNoVertex);
  cold->blob = w.take();
  slots_.emplace_back();
  slots_.back().cold = std::move(cold);
}

VertexId TieredDvStore::install_ia(std::size_t i, VertexId src,
                                   const std::vector<VertexId>& touched,
                                   const std::vector<Dist>& dist,
                                   const std::vector<VertexId>& hop) {
  Slot& s = slots_[i];
  ColdDvRow* c = s.cold.get();
  if (c == nullptr || c->finite != 0 || !c->dirty.empty()) {
    // Promoted or already-seeded row: replay the dense sequence.
    DvRow& r = row(i);
    VertexId dirty_added = 0;
    for (const VertexId t : touched) {
      if (t == src) continue;
      r.set(t, dist[t], hop[t]);
      if (r.mark_dirty(t)) ++dirty_added;
    }
    return dirty_added;
  }
  // Fresh cold row: encode the sweep result directly — the cold form is
  // the same whether built here or via a dense round-trip (ascending
  // columns, identical aggregates, dirty = reached columns).
  std::vector<VertexId> cols(touched);
  if (std::find(cols.begin(), cols.end(), src) == cols.end()) {
    cols.push_back(src);
  }
  std::sort(cols.begin(), cols.end());
  rt::ByteWriter w;
  w.write_varint(cols.size());
  VertexId prev = 0;
  std::uint64_t sum = 0;
  VertexId finite = 0;
  c->dirty.clear();
  for (std::size_t k = 0; k < cols.size(); ++k) {
    const VertexId t = cols[k];
    write_cold_entry(w, t, prev, k == 0, dist[t], hop[t]);
    prev = t;
    if (t != src) {
      sum += dist[t];
      ++finite;
      c->dirty.append(t);
    }
  }
  c->blob = w.take();
  c->blob.shrink_to_fit();
  c->dirty.shrink_to_fit();
  c->sum = sum;
  c->finite = finite;
  return finite;
}

void TieredDvStore::put_cold(std::size_t i, ColdDvRow&& cold) {
  Slot& s = slots_[i];
  s.release_hot();
  s.cold = std::make_unique<ColdDvRow>(std::move(cold));
}

void TieredDvStore::maintain(const std::vector<std::uint8_t>& is_boundary) {
  struct Cand {
    std::uint64_t key;  // (boundary, last-touch epoch, index): demote-first order
    std::size_t i;
    std::size_t bytes;
  };
  std::vector<Cand> hot;
  std::uint64_t resident = 0;
  std::uint64_t cold = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    if (const DvRow* p = s.hot.load(std::memory_order_relaxed)) {
      const std::size_t bytes = p->footprint_bytes();
      resident += bytes;
      const std::uint64_t boundary =
          i < is_boundary.size() && is_boundary[i] != 0 ? 1 : 0;
      hot.push_back({(boundary << 63) |
                         (static_cast<std::uint64_t>(
                              s.touch.load(std::memory_order_relaxed))
                          << 31) |
                         static_cast<std::uint64_t>(i),
                     i, bytes});
    } else {
      cold += s.cold->bytes();
    }
  }
  if (resident > budget_bytes_) {
    std::sort(hot.begin(), hot.end(),
              [](const Cand& a, const Cand& b) { return a.key < b.key; });
    for (const Cand& cand : hot) {
      if (resident <= budget_bytes_) break;
      Slot& s = slots_[cand.i];
      DvRow* p = s.hot.load(std::memory_order_relaxed);
      auto demoted = std::make_unique<ColdDvRow>(encode_cold_row(*p));
      cold += demoted->bytes();
      resident -= cand.bytes;
      s.cold = std::move(demoted);
      s.release_hot();
      ++demotions_;
    }
  }
  resident_bytes_ = resident;
  cold_bytes_ = cold;
  ++epoch_;
}

}  // namespace aacc
