// Dynamic graph events and schedules.
//
// A schedule is a sequence of batches pinned to RC step indices ("anywhere":
// changes are ingested during the analysis, at the step where they occur).
// Batches are broadcast from rank 0 through the measured communicator, so
// the cost of distributing change notifications is part of the accounting.
#pragma once

#include <variant>
#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"
#include "runtime/serialize.hpp"

namespace aacc {

struct EdgeAddEvent {
  VertexId u = 0;
  VertexId v = 0;
  Weight w = 1;
};

struct EdgeDeleteEvent {
  VertexId u = 0;
  VertexId v = 0;
};

struct WeightChangeEvent {
  VertexId u = 0;
  VertexId v = 0;
  Weight w_new = 1;
};

/// One new vertex plus all its initial edges. `id` must equal the graph's
/// vertex count at application time (ids are assigned densely in schedule
/// order); endpoints may reference other new vertices in the same batch
/// that appear earlier.
struct VertexAddEvent {
  VertexId id = 0;
  std::vector<std::pair<VertexId, Weight>> edges;
};

struct VertexDeleteEvent {
  VertexId v = 0;
};

using Event = std::variant<EdgeAddEvent, EdgeDeleteEvent, WeightChangeEvent,
                           VertexAddEvent, VertexDeleteEvent>;

struct EventBatch {
  /// RC step at which this batch is ingested (0 = before the first
  /// refinement exchange completes).
  std::size_t at_step = 0;
  std::vector<Event> events;
};

/// Batches must be sorted by at_step (ties allowed; applied in order).
using EventSchedule = std::vector<EventBatch>;

/// Applies one event to the driver-side ground-truth graph.
void apply_event(Graph& g, const Event& e);

/// Applies a whole schedule (used by reference recomputation in tests).
void apply_schedule(Graph& g, const EventSchedule& schedule);

/// Wire format for broadcasting batches.
void serialize_events(const std::vector<Event>& events, rt::ByteWriter& w);
std::vector<Event> deserialize_events(rt::ByteReader& r);

/// Total count of events across a schedule.
std::size_t event_count(const EventSchedule& schedule);

}  // namespace aacc
