// Rank-local view of the distributed graph.
//
// Each rank knows: the global owner map (kept consistent on all ranks —
// assignments are deterministic functions of broadcast data), its own
// vertices, every edge with at least one local endpoint, and the *portals*
// (the paper's external boundary vertices): remote endpoints of cut edges.
// Portal adjacency is indexed by global id so that updates/poisons arriving
// for a portal can be relaxed into the affected local rows directly.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "graph/graph.hpp"
#include "partition/partition.hpp"

namespace aacc {

class LocalGraph {
 public:
  /// Builds a rank's view. `owner` covers the full id space (kNoRank =
  /// tombstoned); `edges` may be the full edge list — non-local edges are
  /// skipped.
  LocalGraph(Rank me, std::vector<Rank> owner,
             const std::vector<std::tuple<VertexId, VertexId, Weight>>& edges);

  [[nodiscard]] Rank me() const { return me_; }
  [[nodiscard]] VertexId n() const { return static_cast<VertexId>(owner_.size()); }
  [[nodiscard]] Rank owner(VertexId v) const { return owner_[v]; }
  [[nodiscard]] bool is_local(VertexId v) const { return owner_[v] == me_; }
  [[nodiscard]] bool is_alive(VertexId v) const { return owner_[v] != kNoRank; }

  [[nodiscard]] VertexId num_local() const {
    return static_cast<VertexId>(locals_.size());
  }
  /// Row index of a local vertex, or -1.
  [[nodiscard]] std::int32_t row_of(VertexId v) const {
    return v < row_index_.size() ? row_index_[v] : -1;
  }
  [[nodiscard]] VertexId vertex_of(std::size_t row) const { return locals_[row]; }
  [[nodiscard]] std::span<const Edge> adj(std::size_t row) const {
    return adj_[row];
  }

  /// Is v a remote endpoint of at least one cut edge into this rank?
  [[nodiscard]] bool is_portal(VertexId v) const {
    return portal_adj_.count(v) != 0;
  }
  /// Local neighbours of portal b: (local vertex global id, edge weight).
  [[nodiscard]] std::span<const std::pair<VertexId, Weight>> portal_neighbors(
      VertexId b) const {
    const auto it = portal_adj_.find(b);
    if (it == portal_adj_.end()) return {};
    return it->second;
  }
  [[nodiscard]] const std::unordered_map<VertexId,
                                         std::vector<std::pair<VertexId, Weight>>>&
  portals() const {
    return portal_adj_;
  }

  /// Does local vertex (by row) have any remote neighbour?
  [[nodiscard]] bool is_boundary_row(std::size_t row) const;

  /// Distinct ranks owning remote neighbours of local row (append to out).
  void subscribers(std::size_t row, std::vector<Rank>& out) const;

  // ---- mutations (all ranks apply the same events in the same order) ----

  /// Registers a new global vertex owned by `r`. If r == me, a local row is
  /// appended (caller appends the matching DvRow). Returns the id.
  VertexId add_vertex(Rank r);

  void add_edge(VertexId u, VertexId v, Weight w);
  void remove_edge(VertexId u, VertexId v);
  void set_weight(VertexId u, VertexId v, Weight w);

  /// Tombstones v globally; if local, removes its row via swap-remove and
  /// returns the row index that was removed (the caller must apply the same
  /// swap-remove to its row storage). Returns -1 if v was not local.
  std::int32_t remove_vertex(VertexId v);

  /// Weight of edge (u, v) as seen from this rank. Precondition: at least
  /// one endpoint is local and the edge exists.
  [[nodiscard]] Weight edge_weight(VertexId u, VertexId v) const;

  /// Does this rank see edge (u, v)? False when neither endpoint is local
  /// (the edge may exist elsewhere — callers needing a global answer must
  /// hold a locally incident endpoint). Used by the idempotent structural
  /// replay of shard adoption.
  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const;

  /// Full local edge list (u local; each edge once: u < v or v remote),
  /// used by the Repartition-S gather.
  [[nodiscard]] std::vector<std::tuple<VertexId, VertexId, Weight>>
  local_edges_for_gather() const;

  /// Replaces the owner map (Repartition-S). The caller is responsible for
  /// rebuilding the LocalGraph afterwards.
  [[nodiscard]] const std::vector<Rank>& owner_map() const { return owner_; }

 private:
  void add_half_edge(VertexId from, VertexId to, Weight w);
  bool erase_half_edge(VertexId from, VertexId to);
  void add_portal_edge(VertexId portal, VertexId local, Weight w);
  void erase_portal_edge(VertexId portal, VertexId local);

  Rank me_;
  std::vector<Rank> owner_;
  std::vector<VertexId> locals_;              // row -> global id
  std::vector<std::int32_t> row_index_;       // global id -> row or -1
  std::vector<std::vector<Edge>> adj_;        // row -> edges (global targets)
  std::unordered_map<VertexId, std::vector<std::pair<VertexId, Weight>>> portal_adj_;
};

}  // namespace aacc
