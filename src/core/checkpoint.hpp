// Checkpoint/restore of a running analysis (extension: the paper lists
// "fault tolerance in the cloud" as future work).
//
// A Checkpoint captures, per rank, everything the RC loop needs to resume:
// the rank's local topology view, its DV rows (distances + next hops +
// dirty flags — pending un-sent updates survive the restart), portal
// caches, and the loop cursors (step, schedule position, round-robin
// cursor). Checkpoints are taken at an RC step boundary after the local
// queues have drained, so worklists are empty by construction.
//
//   EngineConfig cfg;
//   cfg.checkpoint_at_step = 5;
//   AnytimeEngine engine(g, cfg);
//   RunResult first = engine.run(schedule);        // stops after step 5
//   // ... the cluster "crashes"; later:
//   AnytimeEngine resumed(first.checkpoint, cfg);
//   RunResult final = resumed.run(schedule);       // continues to quiescence
//
// With EngineConfig::checkpoint_every = k, every rank additionally snapshots
// its state each k RC steps into a PeriodicCheckpoints store; on a rank
// failure the supervisor rolls all ranks back to the newest step every rank
// holds and replays (docs/FAULTS.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace aacc {

/// Restore-time validation failure: world-size mismatch, malformed or
/// truncated blob, unknown version. Derives logic_error — a bad checkpoint
/// is a caller/storage bug, not a runtime condition to retry.
class CheckpointError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

struct Checkpoint {
  /// One opaque serialized state blob per rank.
  std::vector<std::vector<std::byte>> rank_blobs;
  /// RC step after which the checkpoint was taken.
  std::size_t step = 0;
  /// Index of the next unconsumed schedule batch.
  std::size_t next_batch = 0;
  /// World size the blobs were produced for.
  Rank num_ranks = 0;

  [[nodiscard]] bool valid() const {
    return num_ranks > 0 &&
           rank_blobs.size() == static_cast<std::size_t>(num_ranks);
  }

  /// Total serialized size (what a real system would write to stable
  /// storage).
  [[nodiscard]] std::size_t bytes() const {
    std::size_t total = 0;
    for (const auto& blob : rank_blobs) total += blob.size();
    return total;
  }
};

/// Checkpoint blob header (wire format v2). Legacy v1 blobs have no header:
/// they open directly with the owner-map length, so restore dispatches on
/// the magic bytes. See docs/PROTOCOL.md §"Wire format v2".
inline constexpr std::uint8_t kCkptMagic0 = 0xAA;
inline constexpr std::uint8_t kCkptMagic1 = 0xCC;
inline constexpr std::uint8_t kCkptVersion2 = 2;

/// Structural validation before any blob is parsed: shape, world size, and
/// each blob's magic/version header. Deep truncation inside a blob is caught
/// during restore (the bounds-checked reader) and re-raised as
/// CheckpointError with rank context by the engine. Throws CheckpointError.
inline void validate_checkpoint(const Checkpoint& ck, Rank world_size) {
  if (ck.num_ranks <= 0) {
    throw CheckpointError("checkpoint has no ranks (num_ranks = " +
                          std::to_string(ck.num_ranks) + ")");
  }
  if (ck.rank_blobs.size() != static_cast<std::size_t>(ck.num_ranks)) {
    throw CheckpointError(
        "checkpoint blob count (" + std::to_string(ck.rank_blobs.size()) +
        ") does not match its num_ranks (" + std::to_string(ck.num_ranks) + ")");
  }
  if (ck.num_ranks != world_size) {
    throw CheckpointError("checkpoint was taken with a different world size (" +
                          std::to_string(ck.num_ranks) + " vs " +
                          std::to_string(world_size) + ")");
  }
  for (std::size_t r = 0; r < ck.rank_blobs.size(); ++r) {
    const auto& blob = ck.rank_blobs[r];
    if (blob.empty()) {
      throw CheckpointError("rank " + std::to_string(r) +
                            " checkpoint blob is empty");
    }
    // v2 blobs declare themselves with a magic+version header; anything
    // with the magic but an unknown version is from a future format.
    // Headerless blobs are legacy v1 and validated structurally on restore.
    if (blob.size() >= 2 &&
        std::to_integer<std::uint8_t>(blob[0]) == kCkptMagic0 &&
        std::to_integer<std::uint8_t>(blob[1]) == kCkptMagic1) {
      if (blob.size() < 3) {
        throw CheckpointError("rank " + std::to_string(r) +
                              " checkpoint blob truncated inside the header");
      }
      const auto version = std::to_integer<std::uint8_t>(blob[2]);
      if (version != kCkptVersion2) {
        throw CheckpointError("rank " + std::to_string(r) +
                              " checkpoint blob has unknown version " +
                              std::to_string(version));
      }
    }
  }
}

/// Driver-side store of periodic snapshots (EngineConfig::checkpoint_every).
/// Each rank writes only its own slot from its own thread, so no locking is
/// needed while a run is in flight; the supervisor reads after join. Keeps
/// the last two snapshots per rank: when a crash lands while some ranks
/// have already written step s and others have not, the newest step held by
/// *all* ranks is still available.
class PeriodicCheckpoints {
 public:
  explicit PeriodicCheckpoints(Rank num_ranks)
      : slots_(static_cast<std::size_t>(num_ranks)) {}

  void store(Rank rank, std::size_t step, std::vector<std::byte> blob) {
    auto& history = slots_[static_cast<std::size_t>(rank)];
    history.emplace_back(step, std::move(blob));
    if (history.size() > 2) history.pop_front();
  }

  /// The newest step for which every rank holds a snapshot, assembled into
  /// a Checkpoint (next_batch left at 0 — the supervisor fills it from the
  /// schedule). Empty when any rank has no snapshot yet.
  [[nodiscard]] std::optional<Checkpoint> latest_consistent() const {
    std::size_t step = static_cast<std::size_t>(-1);
    for (const auto& history : slots_) {
      if (history.empty()) return std::nullopt;
      step = std::min(step, history.back().first);
    }
    Checkpoint ck;
    ck.step = step;
    ck.num_ranks = static_cast<Rank>(slots_.size());
    ck.rank_blobs.reserve(slots_.size());
    for (const auto& history : slots_) {
      const auto* match = [&]() -> const std::vector<std::byte>* {
        for (const auto& [s, blob] : history) {
          if (s == step) return &blob;
        }
        return nullptr;
      }();
      if (match == nullptr) return std::nullopt;  // gap: no common step
      ck.rank_blobs.push_back(*match);
    }
    return ck;
  }

  /// The newest snapshot one rank holds, regardless of the other ranks'
  /// progress — shard adoption needs only the *dead* rank's blob (the
  /// survivors' live state travels in the supervisor's stash). Returns
  /// (step, blob) or nullopt when the rank never snapshotted.
  [[nodiscard]] std::optional<std::pair<std::size_t, std::vector<std::byte>>>
  latest_for(Rank rank) const {
    const auto& history = slots_[static_cast<std::size_t>(rank)];
    if (history.empty()) return std::nullopt;
    return history.back();
  }

  void clear() {
    for (auto& history : slots_) history.clear();
  }

 private:
  std::vector<std::deque<std::pair<std::size_t, std::vector<std::byte>>>> slots_;
};

/// Structural validation of a single rank blob about to be adopted into a
/// *smaller* surviving world: non-empty and, when v2-framed, a well-formed
/// header with a known version. The whole-world validate_checkpoint cannot
/// be used here — adoption deliberately restores one rank's shard into a
/// world that no longer matches the blob's num_ranks. Deep truncation is
/// caught by the bounds-checked reader during shard extraction. Throws
/// CheckpointError.
inline void validate_shard_blob(const std::vector<std::byte>& blob,
                                Rank source_rank) {
  if (blob.empty()) {
    throw CheckpointError("adoption source rank " +
                          std::to_string(source_rank) +
                          " checkpoint blob is empty");
  }
  if (blob.size() >= 2 &&
      std::to_integer<std::uint8_t>(blob[0]) == kCkptMagic0 &&
      std::to_integer<std::uint8_t>(blob[1]) == kCkptMagic1) {
    if (blob.size() < 3) {
      throw CheckpointError("adoption source rank " +
                            std::to_string(source_rank) +
                            " checkpoint blob truncated inside the header");
    }
    const auto version = std::to_integer<std::uint8_t>(blob[2]);
    if (version != kCkptVersion2) {
      throw CheckpointError("adoption source rank " +
                            std::to_string(source_rank) +
                            " checkpoint blob has unknown version " +
                            std::to_string(version));
    }
  }
}

}  // namespace aacc
