// Checkpoint/restore of a running analysis (extension: the paper lists
// "fault tolerance in the cloud" as future work).
//
// A Checkpoint captures, per rank, everything the RC loop needs to resume:
// the rank's local topology view, its DV rows (distances + next hops +
// dirty flags — pending un-sent updates survive the restart), portal
// caches, and the loop cursors (step, schedule position, round-robin
// cursor). Checkpoints are taken at an RC step boundary after the local
// queues have drained, so worklists are empty by construction.
//
//   EngineConfig cfg;
//   cfg.checkpoint_at_step = 5;
//   AnytimeEngine engine(g, cfg);
//   RunResult first = engine.run(schedule);        // stops after step 5
//   // ... the cluster "crashes"; later:
//   AnytimeEngine resumed(first.checkpoint, cfg);
//   RunResult final = resumed.run(schedule);       // continues to quiescence
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace aacc {

struct Checkpoint {
  /// One opaque serialized state blob per rank.
  std::vector<std::vector<std::byte>> rank_blobs;
  /// RC step after which the checkpoint was taken.
  std::size_t step = 0;
  /// Index of the next unconsumed schedule batch.
  std::size_t next_batch = 0;
  /// World size the blobs were produced for.
  Rank num_ranks = 0;

  [[nodiscard]] bool valid() const {
    return num_ranks > 0 &&
           rank_blobs.size() == static_cast<std::size_t>(num_ranks);
  }

  /// Total serialized size (what a real system would write to stable
  /// storage).
  [[nodiscard]] std::size_t bytes() const {
    std::size_t total = 0;
    for (const auto& blob : rank_blobs) total += blob.size();
    return total;
  }
};

}  // namespace aacc
