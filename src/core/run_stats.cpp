#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "core/engine.hpp"

namespace aacc {

namespace {

void jdouble(std::ostream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

void jstring(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      os << buf;
    } else {
      os << c;
    }
  }
  os << '"';
}

}  // namespace

void RunStats::to_json(std::ostream& os, bool include_steps) const {
  os << "{\"wall_seconds\":";
  jdouble(os, wall_seconds);
  os << ",\"dd_seconds\":";
  jdouble(os, dd_seconds);
  os << ",\"total_cpu_seconds\":";
  jdouble(os, total_cpu_seconds);
  os << ",\"max_rank_cpu_seconds\":";
  jdouble(os, max_rank_cpu_seconds);
  os << ",\"modeled_makespan_seconds\":";
  jdouble(os, modeled_makespan_seconds);
  os << ",\"cpu_by_phase\":{";
  bool first = true;
  for (const auto& [phase, secs] : cpu_by_phase) {
    if (!first) os << ",";
    first = false;
    jstring(os, phase);
    os << ":";
    jdouble(os, secs);
  }
  os << "},\"total_bytes\":" << total_bytes
     << ",\"total_messages\":" << total_messages
     << ",\"frame_overhead_bytes\":" << frame_overhead_bytes
     << ",\"retransmits\":" << retransmits
     << ",\"modeled_network_seconds\":{\"serialized\":";
  jdouble(os, modeled_network_seconds_serialized);
  os << ",\"shifted\":";
  jdouble(os, modeled_network_seconds_shifted);
  os << ",\"flood\":";
  jdouble(os, modeled_network_seconds_flood);
  os << "},\"rc_steps\":" << rc_steps << ",\"rc_drain_cpu_seconds\":";
  jdouble(os, rc_drain_cpu_seconds);
  os << ",\"rc_drain_modeled_seconds\":";
  jdouble(os, rc_drain_modeled_seconds);
  os << ",\"rc_exchange_wait_seconds\":";
  jdouble(os, rc_exchange_wait_seconds);
  os << ",\"rc_max_inflight_depth\":" << rc_max_inflight_depth
     << ",\"rc_blocked_on_seconds\":";
  jdouble(os, rc_blocked_on_seconds);
  os << ",\"rc_blocked_on\":[";
  first = true;
  for (const auto& [rank, secs] : rc_blocked_on_by_rank) {
    if (!first) os << ",";
    first = false;
    os << "{\"rank\":" << rank << ",\"seconds\":";
    jdouble(os, secs);
    os << "}";
  }
  os << "],\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histogram_summary) {
    if (!first) os << ",";
    first = false;
    jstring(os, name);
    os << ":{\"count\":" << h.count << ",\"sum\":" << h.sum << ",\"p50\":";
    jdouble(os, h.p50);
    os << ",\"p95\":";
    jdouble(os, h.p95);
    os << ",\"p99\":";
    jdouble(os, h.p99);
    os << "}";
  }
  os << "},\"recoveries\":" << recoveries << ",\"recovery_log\":[";
  for (std::size_t i = 0; i < recovery_log.size(); ++i) {
    const RecoveryRecord& r = recovery_log[i];
    if (i != 0) os << ",";
    os << "{\"kind\":";
    jstring(os, r.kind);
    os << ",\"at_step\":" << r.at_step << ",\"mttr_seconds\":";
    jdouble(os, r.mttr_seconds);
    os << "}";
  }
  os << "],\"invariant_violations\":" << invariant_violations
     << ",\"cut_edges_initial\":" << cut_edges_initial
     << ",\"cut_edges_final\":" << cut_edges_final << ",\"imbalance_final\":";
  jdouble(os, imbalance_final);
  os << ",\"dv_resident_bytes\":" << dv_resident_bytes
     << ",\"dv_cold_bytes\":" << dv_cold_bytes
     << ",\"dv_promotions\":" << dv_promotions
     << ",\"dv_demotions\":" << dv_demotions << ",\"dv_decode_seconds\":";
  jdouble(os, dv_decode_seconds);
  if (include_steps) {
    os << ",\"steps\":[";
    for (std::size_t i = 0; i < steps.size(); ++i) {
      const StepStats& s = steps[i];
      if (i != 0) os << ",";
      os << "{\"step\":" << s.step << ",\"bytes\":" << s.bytes
         << ",\"max_cpu_seconds\":";
      jdouble(os, s.max_cpu_seconds);
      os << ",\"sum_cpu_seconds\":";
      jdouble(os, s.sum_cpu_seconds);
      os << ",\"relaxations\":" << s.relaxations
         << ",\"poisons\":" << s.poisons << ",\"repairs\":" << s.repairs
         << ",\"sum_drain_cpu_seconds\":";
      jdouble(os, s.sum_drain_cpu_seconds);
      os << ",\"max_drain_modeled_seconds\":";
      jdouble(os, s.max_drain_modeled_seconds);
      os << ",\"sum_exchange_wait_seconds\":";
      jdouble(os, s.sum_exchange_wait_seconds);
      os << ",\"max_inflight_depth\":" << s.max_inflight_depth
         << ",\"blocked_on_rank\":" << s.blocked_on_rank
         << ",\"blocked_seconds\":";
      jdouble(os, s.max_blocked_seconds);
      os << "}";
    }
    os << "]";
  }
  os << "}";
}

std::string RunStats::to_json(bool include_steps) const {
  std::ostringstream os;
  to_json(os, include_steps);
  return os.str();
}

std::string RunStats::summary() const {
  std::uint64_t relaxations = 0;
  std::uint64_t poisons = 0;
  std::uint64_t repairs = 0;
  for (const StepStats& s : steps) {
    relaxations += s.relaxations;
    poisons += s.poisons;
    repairs += s.repairs;
  }
  char buf[512];
  std::ostringstream os;
  std::snprintf(buf, sizeof(buf),
                "wall %.3f s  (dd %.3f s)  cpu %.3f s  modeled makespan %.3f s\n",
                wall_seconds, dd_seconds, total_cpu_seconds,
                modeled_makespan_seconds);
  os << buf;
  std::snprintf(buf, sizeof(buf),
                "rc steps %zu  relaxations %llu  poisons %llu  repairs %llu\n",
                rc_steps, static_cast<unsigned long long>(relaxations),
                static_cast<unsigned long long>(poisons),
                static_cast<unsigned long long>(repairs));
  os << buf;
  std::snprintf(
      buf, sizeof(buf),
      "traffic %.2f MB in %llu msgs  modeled net %.3f s (serialized)\n",
      static_cast<double>(total_bytes) / 1e6,
      static_cast<unsigned long long>(total_messages),
      modeled_network_seconds_serialized);
  os << buf;
  if (retransmits > 0 || frame_overhead_bytes > 0 || recoveries > 0) {
    std::snprintf(buf, sizeof(buf),
                  "transport: frame overhead %llu B  retransmits %llu  "
                  "recoveries %zu\n",
                  static_cast<unsigned long long>(frame_overhead_bytes),
                  static_cast<unsigned long long>(retransmits), recoveries);
    os << buf;
  }
  std::snprintf(buf, sizeof(buf),
                "cut edges %zu -> %zu  imbalance %.3f  drain cpu %.3f s "
                "(modeled %.3f s)",
                cut_edges_initial, cut_edges_final, imbalance_final,
                rc_drain_cpu_seconds, rc_drain_modeled_seconds);
  os << buf;
  return os.str();
}

bool write_stats_json(const std::string& path, const RunStats& stats) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  stats.to_json(os);
  os << '\n';
  return static_cast<bool>(os);
}

}  // namespace aacc
