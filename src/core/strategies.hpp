// Processor-assignment strategies for dynamically added vertices (§IV.C.a).
//
// Each strategy is a *deterministic* function of data every rank holds (the
// broadcast batch, the globally consistent owner map, the engine seed), so
// all ranks compute identical assignments with no extra communication —
// mirroring the paper's setup where "each processor computes the METIS
// partition for the newly added vertices".
#pragma once

#include <vector>

#include "core/events.hpp"
#include "partition/partition.hpp"

namespace aacc {

/// RoundRobin-PS: new vertices are dealt out circularly, starting from the
/// cursor (the number of vertices added dynamically so far). O(v') work,
/// ignores the relationships among the new vertices.
std::vector<Rank> assign_round_robin(std::size_t count, std::uint64_t cursor,
                                     Rank world);

/// RoundRobin-PS over the surviving ranks only (adopt-mode restarts after a
/// rank death, docs/FAULTS.md §Shard adoption): the circular deal skips the
/// ranks in `skip`, so no new vertex lands on a ghost seat. Identical
/// cursor/skip inputs on every rank keep the owner maps consistent.
std::vector<Rank> assign_round_robin_excluding(std::size_t count,
                                               std::uint64_t cursor, Rank world,
                                               const std::vector<Rank>& skip);

/// CutEdge-PS: treats the batch (new vertices + the edges among them) as an
/// independent graph, partitions it with the multilevel cut minimizer, and
/// maps the parts onto ranks in ascending current-load order (largest part
/// to the least-loaded rank).
std::vector<Rank> assign_cut_edge(const std::vector<VertexAddEvent>& batch,
                                  VertexId first_new_id,
                                  const std::vector<Rank>& owner, Rank world,
                                  std::uint64_t seed);

/// Number of alive vertices per rank under `owner`.
std::vector<std::size_t> rank_loads(const std::vector<Rank>& owner, Rank world);

}  // namespace aacc
