#include "core/config.hpp"

#include <sstream>

namespace aacc {

namespace {

[[noreturn]] void fail(const std::string& what) { throw ConfigError(what); }

}  // namespace

void EngineConfig::validate() const {
  // Thread/rank caps exist to catch sign bugs: a negative count cast into
  // an unsigned field shows up as an absurdly large value.
  constexpr std::size_t kMaxThreads = 4096;
  constexpr Rank kMaxRanks = 4096;
  if (num_ranks < 1 || num_ranks > kMaxRanks) {
    std::ostringstream os;
    os << "EngineConfig::num_ranks must be in [1, " << kMaxRanks << "], got "
       << num_ranks;
    fail(os.str());
  }
  if (ia_threads > kMaxThreads) {
    std::ostringstream os;
    os << "EngineConfig::ia_threads must be at most " << kMaxThreads
       << " (0 = auto), got " << ia_threads
       << " — was a negative value cast to size_t?";
    fail(os.str());
  }
  if (rc_threads > kMaxThreads) {
    std::ostringstream os;
    os << "EngineConfig::rc_threads must be at most " << kMaxThreads
       << " (0 = auto), got " << rc_threads
       << " — was a negative value cast to size_t?";
    fail(os.str());
  }
  if (exchange_window > kMaxThreads) {
    std::ostringstream os;
    os << "EngineConfig::exchange_window must be at most " << kMaxThreads
       << " (0 = auto), got " << exchange_window
       << " — was a negative value cast to size_t?";
    fail(os.str());
  }
  if (exchange_mode == ExchangeMode::kDeterministic && exchange_window > 1) {
    std::ostringstream os;
    os << "EngineConfig::exchange_window must be 0 or 1 under "
          "ExchangeMode::kDeterministic (the oracle schedule is the blocking "
          "window-1 exchange; a deeper window reorders arrival processing), "
          "got "
       << exchange_window;
    fail(os.str());
  }
  if (dv_budget_bytes != 0 && dv_budget_bytes < kMinDvBudgetBytes) {
    std::ostringstream os;
    os << "EngineConfig::dv_budget_bytes must be 0 (fully resident) or >= "
       << kMinDvBudgetBytes
       << " (a smaller budget cannot hold one hot DV row), got "
       << dv_budget_bytes;
    fail(os.str());
  }
  if (rebalance_threshold != 0.0 && rebalance_threshold < 1.0) {
    std::ostringstream os;
    os << "EngineConfig::rebalance_threshold must be 0 (off) or >= 1.0 "
          "(max/ideal load never drops below 1), got "
       << rebalance_threshold;
    fail(os.str());
  }
  if (transport.max_retries < 1) {
    fail("EngineConfig::transport.max_retries must be >= 1: with 0 the "
         "reliable sender would give up before its first attempt");
  }
  if (transport.recv_timeout.count() < 0) {
    std::ostringstream os;
    os << "EngineConfig::transport.recv_timeout must be >= 0 ms (0 disables "
          "the recv watchdog), got "
       << transport.recv_timeout.count() << " ms";
    fail(os.str());
  }
  if (transport.retry_backoff.count() < 0) {
    std::ostringstream os;
    os << "EngineConfig::transport.retry_backoff must be >= 0 us, got "
       << transport.retry_backoff.count() << " us";
    fail(os.str());
  }
  const double probs[] = {faults.drop, faults.duplicate, faults.delay,
                          faults.corrupt};
  const char* prob_names[] = {"drop", "duplicate", "delay", "corrupt"};
  double sum = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    if (probs[i] < 0.0 || probs[i] > 1.0) {
      std::ostringstream os;
      os << "EngineConfig::faults." << prob_names[i]
         << " must be a probability in [0, 1], got " << probs[i];
      fail(os.str());
    }
    sum += probs[i];
  }
  if (sum > 1.0) {
    std::ostringstream os;
    os << "EngineConfig::faults probabilities must sum to <= 1 (they are "
          "evaluated as disjoint per-frame fates), got "
       << sum;
    fail(os.str());
  }
  for (const rt::CrashPoint& c : faults.crashes) {
    if (c.rank < 0 || c.rank >= num_ranks) {
      std::ostringstream os;
      os << "EngineConfig::faults crash point targets rank " << c.rank
         << " outside [0, " << num_ranks << ")";
      fail(os.str());
    }
  }
  if (recovery_policy.empty()) {
    fail("EngineConfig::recovery_policy must contain at least one rung "
         "(the supervisor has no action to take on a rank death otherwise)");
  }
  for (std::size_t i = 0; i < recovery_policy.size(); ++i) {
    for (std::size_t j = i + 1; j < recovery_policy.size(); ++j) {
      if (recovery_policy[i].policy == recovery_policy[j].policy) {
        fail("EngineConfig::recovery_policy must not repeat a policy: a "
             "repeated rung would double-charge one policy's budget");
      }
    }
  }
  if (health.enabled) {
    if (health.straggler_after.count() <= 0 ||
        health.suspect_after < health.straggler_after ||
        health.dead_after < health.suspect_after) {
      std::ostringstream os;
      os << "EngineConfig::health deadlines must satisfy 0 < straggler_after "
            "<= suspect_after <= dead_after, got "
         << health.straggler_after.count() << " / "
         << health.suspect_after.count() << " / " << health.dead_after.count()
         << " ms";
      fail(os.str());
    }
    if (transport.recv_timeout.count() > 0 &&
        health.dead_after >= transport.recv_timeout) {
      std::ostringstream os;
      os << "EngineConfig::health.dead_after (" << health.dead_after.count()
         << " ms) must be below transport.recv_timeout ("
         << transport.recv_timeout.count()
         << " ms), or the recv watchdog always wins the race and no peer is "
            "ever declared dead";
      fail(os.str());
    }
  }
  if (trace.enabled && trace.track_capacity == 0) {
    fail("EngineConfig::trace.track_capacity must be > 0 when tracing is "
         "enabled");
  }
  if (progress.active() &&
      (progress.top_k < 1 || progress.top_k > kMaxThreads)) {
    std::ostringstream os;
    os << "EngineConfig::progress.top_k must be in [1, " << kMaxThreads
       << "] when the progress feed is active, got " << progress.top_k;
    fail(os.str());
  }
  if (publish_every < 1 || publish_every > kMaxThreads) {
    std::ostringstream os;
    os << "EngineConfig::publish_every must be in [1, " << kMaxThreads
       << "] (a live session must publish; was a negative value cast to "
          "size_t?), got "
       << publish_every;
    fail(os.str());
  }
  if (max_snapshot_lag != 0 && max_snapshot_lag < publish_every) {
    std::ostringstream os;
    os << "EngineConfig::max_snapshot_lag must be 0 (never flag) or >= "
          "publish_every ("
       << publish_every
       << "): a tighter bound flags every response between two snapshot "
          "publishes as stale, got "
       << max_snapshot_lag;
    fail(os.str());
  }
}

}  // namespace aacc
