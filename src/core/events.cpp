#include "core/events.hpp"

#include "common/check.hpp"

namespace aacc {

namespace {

enum class EventTag : std::uint8_t {
  kEdgeAdd = 1,
  kEdgeDelete = 2,
  kWeightChange = 3,
  kVertexAdd = 4,
  kVertexDelete = 5,
};

}  // namespace

void apply_event(Graph& g, const Event& e) {
  std::visit(
      [&g](const auto& ev) {
        using T = std::decay_t<decltype(ev)>;
        if constexpr (std::is_same_v<T, EdgeAddEvent>) {
          g.add_edge(ev.u, ev.v, ev.w);
        } else if constexpr (std::is_same_v<T, EdgeDeleteEvent>) {
          g.remove_edge(ev.u, ev.v);
        } else if constexpr (std::is_same_v<T, WeightChangeEvent>) {
          g.set_weight(ev.u, ev.v, ev.w_new);
        } else if constexpr (std::is_same_v<T, VertexAddEvent>) {
          const VertexId id = g.add_vertex();
          AACC_CHECK_MSG(id == ev.id, "VertexAddEvent id " << ev.id
                                                           << " applied at " << id);
          for (const auto& [to, w] : ev.edges) g.add_edge(ev.id, to, w);
        } else if constexpr (std::is_same_v<T, VertexDeleteEvent>) {
          g.remove_vertex(ev.v);
        }
      },
      e);
}

void apply_schedule(Graph& g, const EventSchedule& schedule) {
  for (const EventBatch& batch : schedule) {
    for (const Event& e : batch.events) apply_event(g, e);
  }
}

void serialize_events(const std::vector<Event>& events, rt::ByteWriter& w) {
  w.write(static_cast<std::uint64_t>(events.size()));
  for (const Event& e : events) {
    std::visit(
        [&w](const auto& ev) {
          using T = std::decay_t<decltype(ev)>;
          if constexpr (std::is_same_v<T, EdgeAddEvent>) {
            w.write(EventTag::kEdgeAdd);
            w.write(ev.u);
            w.write(ev.v);
            w.write(ev.w);
          } else if constexpr (std::is_same_v<T, EdgeDeleteEvent>) {
            w.write(EventTag::kEdgeDelete);
            w.write(ev.u);
            w.write(ev.v);
          } else if constexpr (std::is_same_v<T, WeightChangeEvent>) {
            w.write(EventTag::kWeightChange);
            w.write(ev.u);
            w.write(ev.v);
            w.write(ev.w_new);
          } else if constexpr (std::is_same_v<T, VertexAddEvent>) {
            w.write(EventTag::kVertexAdd);
            w.write(ev.id);
            w.write(static_cast<std::uint64_t>(ev.edges.size()));
            for (const auto& [to, weight] : ev.edges) {
              w.write(to);
              w.write(weight);
            }
          } else if constexpr (std::is_same_v<T, VertexDeleteEvent>) {
            w.write(EventTag::kVertexDelete);
            w.write(ev.v);
          }
        },
        e);
  }
}

std::vector<Event> deserialize_events(rt::ByteReader& r) {
  const auto count = r.read<std::uint64_t>();
  std::vector<Event> events;
  events.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    switch (r.read<EventTag>()) {
      case EventTag::kEdgeAdd: {
        EdgeAddEvent e;
        e.u = r.read<VertexId>();
        e.v = r.read<VertexId>();
        e.w = r.read<Weight>();
        events.emplace_back(e);
        break;
      }
      case EventTag::kEdgeDelete: {
        EdgeDeleteEvent e;
        e.u = r.read<VertexId>();
        e.v = r.read<VertexId>();
        events.emplace_back(e);
        break;
      }
      case EventTag::kWeightChange: {
        WeightChangeEvent e;
        e.u = r.read<VertexId>();
        e.v = r.read<VertexId>();
        e.w_new = r.read<Weight>();
        events.emplace_back(e);
        break;
      }
      case EventTag::kVertexAdd: {
        VertexAddEvent e;
        e.id = r.read<VertexId>();
        const auto m = r.read<std::uint64_t>();
        e.edges.reserve(m);
        for (std::uint64_t j = 0; j < m; ++j) {
          const auto to = r.read<VertexId>();
          const auto weight = r.read<Weight>();
          e.edges.emplace_back(to, weight);
        }
        events.emplace_back(std::move(e));
        break;
      }
      case EventTag::kVertexDelete: {
        VertexDeleteEvent e;
        e.v = r.read<VertexId>();
        events.emplace_back(e);
        break;
      }
      default:
        AACC_CHECK_MSG(false, "corrupt event stream");
    }
  }
  return events;
}

std::size_t event_count(const EventSchedule& schedule) {
  std::size_t n = 0;
  for (const EventBatch& b : schedule) n += b.events.size();
  return n;
}

}  // namespace aacc
