// AnytimeEngine: the public entry point of the library.
//
// Wraps the full anytime anywhere pipeline: domain decomposition (DD) with
// a pluggable partitioner, initial approximation (IA), and the
// recombination (RC) loop with dynamic-change ingestion, running on a
// rt::World of logical processors. Also provides the paper's comparison
// baseline (restart from scratch on every change batch).
//
//   Graph g = barabasi_albert(5000, 3, rng);
//   EngineConfig cfg;
//   cfg.num_ranks = 16;
//   AnytimeEngine engine(g, cfg);
//   RunResult r = engine.run(schedule);
//   r.closeness[v];             // final exact closeness of v
//   r.stats.rc_steps;           // refinement steps to quiescence
//   r.stats.modeled_network_seconds_serialized;
#pragma once

#include <iosfwd>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/config.hpp"
#include "core/events.hpp"
#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace aacc {

/// Raised when an AnytimeEngine is used against its lifecycle contract —
/// currently: run() called a second time on the same instance (run() is
/// one-shot; see docs/API.md §"Engine lifecycle").
class EngineStateError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// A recovery rung's preconditions do not hold for this failure (adoption
/// without a usable snapshot, degraded mode under an incompatible config,
/// ...). The supervisor catches it and falls through to the next rung of
/// EngineConfig::recovery_policy; an exhausted ladder rethrows the last one
/// (docs/FAULTS.md §Recovery policy ladder).
class RecoveryError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One supervised recovery, as recorded in RunStats::recovery_log.
struct RecoveryRecord {
  /// Rung that served it: "adopt", "rollback" or "degraded".
  std::string kind;
  /// RC step the survivors had reached when the death was declared.
  std::size_t at_step = 0;
  /// Wall-clock seconds from the death declaration to the completion of
  /// the first post-recovery RC step at/after at_step (so rollback's
  /// replay cost is inside the window). Negative when the run ended before
  /// that step completed (e.g. a second crash arrived first).
  double mttr_seconds = -1.0;
};

/// Per-RC-step aggregates across ranks.
struct StepStats {
  std::size_t step = 0;
  std::uint64_t bytes = 0;        ///< payload bytes sent by all ranks
  double max_cpu_seconds = 0.0;   ///< slowest rank's CPU this step
  double sum_cpu_seconds = 0.0;
  std::uint64_t relaxations = 0;
  std::uint64_t poisons = 0;
  std::uint64_t repairs = 0;
  /// RC drain cost this step: Σ CPU across ranks (and their drain shards),
  /// and the slowest rank's modeled parallel-drain makespan (serial
  /// partition/merge + slowest shard; see StepLocal).
  double sum_drain_cpu_seconds = 0.0;
  double max_drain_modeled_seconds = 0.0;
  /// Exchange overlap this step: Σ over ranks of wall time blocked in
  /// collective recvs, and the deepest send window any rank reached
  /// (1 under ExchangeMode::kDeterministic; see docs/PROTOCOL.md
  /// §"Pipelined exchange").
  double sum_exchange_wait_seconds = 0.0;
  std::uint64_t max_inflight_depth = 0;
  /// Live critical-path proxy this step: the longest single blocked recv
  /// interval any rank saw, and the peer whose arrival ended it (-1 when
  /// no exchange blocked — e.g. single rank or fully overlapped).
  double max_blocked_seconds = 0.0;
  std::int64_t blocked_on_rank = -1;
};

struct RunStats {
  double wall_seconds = 0.0;      ///< driver wall time, end to end
  double dd_seconds = 0.0;        ///< partitioning time (driver)
  double total_cpu_seconds = 0.0; ///< Σ over ranks, all phases
  double max_rank_cpu_seconds = 0.0;
  /// Modeled "cluster makespan": Σ over RC steps of the slowest rank's CPU,
  /// plus the modeled network time. This is the wall time a real
  /// 1-process-per-node cluster would approximately observe.
  double modeled_makespan_seconds = 0.0;
  std::map<std::string, double> cpu_by_phase;  ///< Σ over ranks per phase
  std::uint64_t total_bytes = 0;
  std::uint64_t total_messages = 0;
  /// Reliable-transport costs folded into the totals above: frame-header
  /// bytes (seqno + CRC32) and retransmitted frames. Zero when
  /// TransportConfig::reliable is off (docs/FAULTS.md).
  std::uint64_t frame_overhead_bytes = 0;
  std::uint64_t retransmits = 0;
  double modeled_network_seconds_serialized = 0.0;  ///< the paper's schedule
  double modeled_network_seconds_shifted = 0.0;
  double modeled_network_seconds_flood = 0.0;
  std::size_t rc_steps = 0;
  /// RC drain totals: CPU actually burnt in drain() across all ranks and
  /// shards, and the modeled makespan (Σ over steps of the slowest rank's
  /// modeled drain) — the multicore analogue of modeled_makespan_seconds.
  double rc_drain_cpu_seconds = 0.0;
  double rc_drain_modeled_seconds = 0.0;
  /// Exchange-overlap totals across RC steps: blocked-recv wall time summed
  /// over ranks and steps, and the deepest in-flight send window observed.
  double rc_exchange_wait_seconds = 0.0;
  std::uint64_t rc_max_inflight_depth = 0;
  /// Critical-path attribution totals (docs/OBSERVABILITY.md §Causal
  /// flows): Σ over steps of the worst single blocked interval, and the
  /// same broken down by the rank waited on. Derived from the per-step
  /// blocked-on proxy; the exact trace-stitched attribution lives in
  /// `aacc analyze --critical-path`.
  double rc_blocked_on_seconds = 0.0;
  std::map<std::int64_t, double> rc_blocked_on_by_rank;
  /// Supervised relaunches after injected/transport failures (adoptions,
  /// checkpoint rollbacks and degraded restarts; see docs/FAULTS.md).
  std::size_t recoveries = 0;
  /// One entry per supervised recovery, in order, with the serving rung
  /// and the measured MTTR (docs/FAULTS.md §Recovery timing).
  std::vector<RecoveryRecord> recovery_log;
  /// Σ DVR-invariant violations across ranks and steps (counted only when
  /// EngineConfig::validate_each_step; must be zero).
  std::size_t invariant_violations = 0;
  std::size_t cut_edges_initial = 0;
  std::size_t cut_edges_final = 0;
  double imbalance_final = 0.0;
  /// DV residency ledger (tiered store; see DESIGN.md §"Tiered DV
  /// storage"). Byte gauges are the final step-boundary values summed over
  /// ranks; promotions/demotions/decode are run totals. Under the resident
  /// store everything but dv_resident_bytes is zero. Excluded from the
  /// bit-identity contract: residency traffic varies with the budget even
  /// though results do not.
  std::uint64_t dv_resident_bytes = 0;
  std::uint64_t dv_cold_bytes = 0;
  std::uint64_t dv_promotions = 0;
  std::uint64_t dv_demotions = 0;
  double dv_decode_seconds = 0.0;
  /// Percentile summaries of every histogram in the merged metrics
  /// registry (p50/p95/p99 via obs::histogram_quantile), emitted in
  /// to_json under "histograms". Filled by the driver after the fold.
  struct HistogramSummary {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  std::map<std::string, HistogramSummary> histogram_summary;
  std::vector<StepStats> steps;

  /// Accumulates another run's costs (baseline restart sums whole reruns).
  void accumulate(const RunStats& other);

  /// Canonical machine-readable form (the schema documented in
  /// EXPERIMENTS.md §"Machine-readable output"): one JSON object, stable
  /// field order, doubles printed round-trippably. Benches, examples and CI
  /// artifacts all emit stats through here. `include_steps` controls the
  /// per-step array (drop it when embedding stats in per-row bench output).
  void to_json(std::ostream& os, bool include_steps = true) const;
  [[nodiscard]] std::string to_json(bool include_steps = true) const;

  /// Human-readable multi-line digest (what the examples print).
  [[nodiscard]] std::string summary() const;
};

/// Writes stats.to_json() (with a trailing newline) to `path`. Returns
/// false when the file cannot be opened. The canonical machine-readable
/// emission every bench and example shares (schema: EXPERIMENTS.md);
/// examples call it when AACC_STATS_JSON names a path.
bool write_stats_json(const std::string& path, const RunStats& stats);

struct RunResult {
  // Prefer the bounds-checked const accessors below over reaching into the
  // vectors; writing to a RunResult's fields is deprecated (the result is a
  // record of the run, not scratch space) and the fields will lose their
  // mutability in a future major version.

  /// Final closeness per vertex id (0 for tombstoned vertices).
  std::vector<double> closeness;
  /// Final harmonic centrality per vertex id.
  std::vector<double> harmonic;
  /// Full APSP matrix (only when EngineConfig::gather_apsp).
  std::vector<std::vector<Dist>> apsp;
  /// First hop of one shortest path per (source, target); kNoVertex when
  /// target is unreachable or equals the source. Only when gather_apsp.
  std::vector<std::vector<VertexId>> first_hop;
  /// Per-step anytime *harmonic centrality* estimates (only when
  /// EngineConfig::record_step_quality): step -> per-vertex estimate.
  /// Harmonic is the anytime-safe metric: with distance upper bounds it is
  /// a monotone lower bound of the exact value at every step.
  std::vector<std::vector<double>> step_harmonic;
  /// Owner rank per vertex after the run (the final data distribution).
  std::vector<Rank> final_owner;
  /// Filled when EngineConfig::checkpoint_at_step fired: the run stopped
  /// there and this snapshot resumes it (see checkpoint.hpp).
  Checkpoint checkpoint;
  /// Degraded "anytime" fallback (docs/FAULTS.md): a rank died with no
  /// recovery checkpoint available, so its rows are lost. The run completed
  /// on the survivors; `lost_vertices` is the exact coverage gap — alive
  /// vertices whose closeness could not be computed (reported as 0).
  bool degraded = false;
  std::vector<VertexId> lost_vertices;
  RunStats stats;
  /// Merged metrics registry (counters/gauges/histograms from every rank
  /// plus the runtime ledgers) — the source the `stats` ledger fields are
  /// derived from. Always populated; see docs/OBSERVABILITY.md.
  obs::MetricsRegistry metrics;
  /// Merged span trace (only when EngineConfig::trace.enabled). Export
  /// with obs::write_chrome_trace_file for chrome://tracing / Perfetto.
  obs::Trace trace;

  /// Bounds-checked reads (std::out_of_range past the vertex-id space).
  [[nodiscard]] double closeness_of(VertexId v) const;
  [[nodiscard]] double harmonic_of(VertexId v) const;
  /// Top-k vertex ids by final closeness / harmonic, best first (bounded by
  /// the id space; ties broken toward the lower id).
  [[nodiscard]] std::vector<VertexId> top_closeness(std::size_t k) const;
  [[nodiscard]] std::vector<VertexId> top_harmonic(std::size_t k) const;
};

namespace serve {
struct ServeContext;
}  // namespace serve

namespace detail {

/// Internal driver entry shared by AnytimeEngine::run (batch mode) and
/// serve::EngineSession (live mode). Not public API: construct an engine or
/// a session instead. In live mode `schedule` is null — the feed journal in
/// `serve` is the schedule, re-snapshotted whenever the rank world is
/// joined (recovery and result assembly).
struct DriverArgs {
  Graph* graph = nullptr;  ///< ground truth; events applied at assembly
  EngineConfig cfg;        ///< already validated
  const EventSchedule* schedule = nullptr;  ///< batch mode only
  const Checkpoint* resume = nullptr;       ///< optional resume snapshot
  bool resuming = false;
  serve::ServeContext* serve = nullptr;  ///< live mode only
};

RunResult run_driver(const DriverArgs& args);

}  // namespace detail

class AnytimeEngine {
 public:
  /// Takes the initial graph by value; the engine's copy tracks every
  /// applied event and can be inspected via graph().
  AnytimeEngine(Graph g, EngineConfig cfg);

  /// Resume constructor (fault-tolerance extension): continues a run from
  /// a Checkpoint produced by EngineConfig::checkpoint_at_step. `g` must be
  /// the same *initial* graph the checkpointed run started from, and run()
  /// must receive the same schedule (already-consumed batches are skipped).
  AnytimeEngine(Graph g, Checkpoint checkpoint, EngineConfig cfg);

  /// Runs DD + IA + RC with the given dynamic-change schedule. One-shot:
  /// a second call throws EngineStateError (the instance's distributed
  /// state is consumed by the run; construct a new engine — or resume from
  /// a checkpoint — to run again; docs/API.md §"Engine lifecycle"). For
  /// ingesting changes while querying, use serve::EngineSession instead —
  /// run() is now a thin batch-mode wrapper over the same driver.
  [[nodiscard]] RunResult run(const EventSchedule& schedule = {});

  /// Ground-truth graph (after run(): with all events applied).
  [[nodiscard]] const Graph& graph() const { return graph_; }

 private:
  Graph graph_;
  EngineConfig cfg_;
  Checkpoint resume_;
  bool resuming_ = false;
  bool ran_ = false;
};

/// The paper's baseline: restart the whole static analysis from scratch for
/// the initial graph and again after every change batch. Costs accumulate
/// across restarts; the returned centrality values are from the last rerun.
RunResult run_baseline_restart(Graph g, const EventSchedule& schedule,
                               const EngineConfig& cfg);

/// Reconstructs one shortest path from u to v by following the gathered
/// first hops (requires EngineConfig::gather_apsp). Returns the vertex
/// sequence u..v, or an empty vector when v is unreachable from u.
std::vector<VertexId> reconstruct_path(const RunResult& result, VertexId u,
                                       VertexId v);

}  // namespace aacc
