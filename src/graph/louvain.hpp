// Louvain community detection (modularity optimization).
//
// The paper builds its CutEdge-PS workloads by extracting community
// structured vertex batches with Pajek's Louvain plugin; this is the same
// algorithm, implemented directly: repeated local-move passes followed by
// community aggregation until modularity stops improving.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "graph/graph.hpp"

namespace aacc {

struct LouvainResult {
  /// Community id per vertex (dense, 0-based).
  std::vector<VertexId> community;
  /// Number of communities.
  VertexId num_communities = 0;
  /// Final modularity of the partition.
  double modularity = 0.0;
};

struct LouvainOptions {
  /// Stop a local-move sweep once the modularity gain over a full pass
  /// drops below this threshold.
  double min_gain = 1e-7;
  /// Safety cap on aggregation levels.
  unsigned max_levels = 32;
};

/// Runs Louvain on g (edge weights participate in modularity). Vertex visit
/// order inside local-move passes is shuffled by rng, which is the only
/// source of nondeterminism — pass a seeded Rng for reproducible output.
LouvainResult louvain(const Graph& g, Rng& rng, LouvainOptions opts = {});

/// Modularity of an arbitrary assignment (exposed for tests).
double modularity(const Graph& g, const std::vector<VertexId>& community);

}  // namespace aacc
