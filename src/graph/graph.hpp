// Mutable, undirected, positively-weighted graph.
//
// This is the "driver-side" representation: generators build it, partitioners
// read it, the distributed engine decomposes it into rank-local subgraphs,
// and dynamic-event schedules mutate it so that reference recomputation (the
// paper's "baseline restart") always has the ground-truth topology at hand.
//
// Vertex ids are dense and stable: add_vertex() appends, remove_vertex()
// tombstones (the id is never reused within a run). This mirrors how the
// distributed DV matrices evolve — columns are appended on vertex addition
// and tombstoned on deletion — so driver and ranks always agree on ids.
#pragma once

#include <span>
#include <tuple>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace aacc {

/// One endpoint of an undirected edge as seen from the other endpoint.
struct Edge {
  VertexId to;
  Weight w;

  friend bool operator==(const Edge&, const Edge&) = default;
};

class Graph {
 public:
  Graph() = default;

  /// Creates n isolated, alive vertices (ids 0..n-1).
  explicit Graph(VertexId n) : adj_(n), alive_(n, true), num_alive_(n) {}

  /// Total id space, including tombstoned vertices.
  [[nodiscard]] VertexId num_vertices() const {
    return static_cast<VertexId>(adj_.size());
  }

  /// Number of vertices that are currently alive.
  [[nodiscard]] VertexId num_alive() const { return num_alive_; }

  /// Number of undirected edges.
  [[nodiscard]] std::size_t num_edges() const { return num_edges_; }

  [[nodiscard]] bool is_alive(VertexId v) const {
    AACC_DCHECK(v < num_vertices());
    return alive_[v];
  }

  /// Appends a new alive vertex and returns its id.
  VertexId add_vertex() {
    adj_.emplace_back();
    alive_.push_back(true);
    ++num_alive_;
    return static_cast<VertexId>(adj_.size() - 1);
  }

  /// Adds undirected edge (u, v) with weight w (w >= 1). Preconditions:
  /// both endpoints alive, u != v, and the edge must not already exist.
  void add_edge(VertexId u, VertexId v, Weight w = 1) {
    AACC_CHECK_MSG(u != v, "self-loop at vertex " << u);
    AACC_CHECK(w >= 1);
    AACC_CHECK(u < num_vertices() && v < num_vertices());
    AACC_CHECK_MSG(alive_[u] && alive_[v],
                   "edge touches a deleted vertex (" << u << ',' << v << ')');
    AACC_CHECK_MSG(!has_edge(u, v), "duplicate edge (" << u << ',' << v << ')');
    adj_[u].push_back({v, w});
    adj_[v].push_back({u, w});
    ++num_edges_;
  }

  /// Removes undirected edge (u, v). Precondition: the edge exists.
  void remove_edge(VertexId u, VertexId v) {
    const bool a = erase_half_edge(u, v);
    const bool b = erase_half_edge(v, u);
    AACC_CHECK_MSG(a && b, "remove_edge on missing edge (" << u << ',' << v << ')');
    --num_edges_;
  }

  /// Replaces the weight of existing edge (u, v). Returns the old weight.
  Weight set_weight(VertexId u, VertexId v, Weight w) {
    AACC_CHECK(w >= 1);
    Weight old = 0;
    for (auto& e : adj_[u]) {
      if (e.to == v) {
        old = e.w;
        e.w = w;
      }
    }
    for (auto& e : adj_[v]) {
      if (e.to == u) e.w = w;
    }
    AACC_CHECK_MSG(old != 0, "set_weight on missing edge (" << u << ',' << v << ')');
    return old;
  }

  /// Tombstones vertex v and removes all incident edges.
  void remove_vertex(VertexId v) {
    AACC_CHECK(v < num_vertices());
    AACC_CHECK_MSG(alive_[v], "double delete of vertex " << v);
    for (const Edge& e : adj_[v]) {
      erase_half_edge(e.to, v);
      --num_edges_;
    }
    adj_[v].clear();
    alive_[v] = false;
    --num_alive_;
  }

  [[nodiscard]] std::span<const Edge> neighbors(VertexId v) const {
    AACC_DCHECK(v < num_vertices());
    return adj_[v];
  }

  [[nodiscard]] std::size_t degree(VertexId v) const { return adj_[v].size(); }

  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const {
    // Scan the smaller endpoint list: social-network degree distributions
    // are heavy-tailed and this keeps hub lookups cheap.
    const VertexId a = degree(u) <= degree(v) ? u : v;
    const VertexId b = a == u ? v : u;
    for (const Edge& e : adj_[a]) {
      if (e.to == b) return true;
    }
    return false;
  }

  /// Weight of existing edge (u, v); kInfDist-free: precondition has_edge.
  [[nodiscard]] Weight edge_weight(VertexId u, VertexId v) const {
    for (const Edge& e : adj_[u]) {
      if (e.to == v) return e.w;
    }
    AACC_CHECK_MSG(false, "edge_weight on missing edge (" << u << ',' << v << ')');
    return 0;  // unreachable
  }

  /// All undirected edges as (u, v, w) with u < v, in adjacency order.
  [[nodiscard]] std::vector<std::tuple<VertexId, VertexId, Weight>> edges() const {
    std::vector<std::tuple<VertexId, VertexId, Weight>> out;
    out.reserve(num_edges_);
    for (VertexId u = 0; u < num_vertices(); ++u) {
      for (const Edge& e : adj_[u]) {
        if (u < e.to) out.emplace_back(u, e.to, e.w);
      }
    }
    return out;
  }

  /// Ids of all alive vertices, ascending.
  [[nodiscard]] std::vector<VertexId> alive_vertices() const {
    std::vector<VertexId> out;
    out.reserve(num_alive_);
    for (VertexId v = 0; v < num_vertices(); ++v) {
      if (alive_[v]) out.push_back(v);
    }
    return out;
  }

 private:
  bool erase_half_edge(VertexId from, VertexId to) {
    auto& list = adj_[from];
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i].to == to) {
        list[i] = list.back();
        list.pop_back();
        return true;
      }
    }
    return false;
  }

  std::vector<std::vector<Edge>> adj_;
  std::vector<char> alive_;
  VertexId num_alive_ = 0;
  std::size_t num_edges_ = 0;
};

}  // namespace aacc
