// Graph serialization: plain edge lists, METIS format, and Pajek .net.
//
// Pajek support mirrors the paper's toolchain (their inputs were generated
// with Pajek); METIS format is supported because the partitioning module is
// a METIS/ParMETIS substitute and shared test fixtures are convenient.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace aacc {

/// "u v w" per line, 0-based ids, '#' comments. Weight column optional
/// (defaults to 1).
Graph read_edge_list(std::istream& in);
void write_edge_list(const Graph& g, std::ostream& out);

/// METIS .graph format: header "n m [fmt]", then per-vertex neighbour lists,
/// 1-based ids; fmt=1 means weighted ("v1 w1 v2 w2 ...").
Graph read_metis(std::istream& in);
void write_metis(const Graph& g, std::ostream& out);

/// Pajek .net: "*Vertices n" then "*Edges" with 1-based "u v [w]" lines.
Graph read_pajek(std::istream& in);
void write_pajek(const Graph& g, std::ostream& out);

/// DIMACS shortest-path format (.gr): "c" comments, "p sp n m" header,
/// "a u v w" arc lines (1-based). Undirected graphs list each edge in both
/// directions on write; duplicate arcs collapse on read.
Graph read_dimacs(std::istream& in);
void write_dimacs(const Graph& g, std::ostream& out);

/// Convenience file wrappers; format chosen by extension
/// (.txt/.edges → edge list, .graph → METIS, .net → Pajek, .gr → DIMACS).
Graph load_graph(const std::string& path);
void save_graph(const Graph& g, const std::string& path);

}  // namespace aacc
