#include "graph/generators.hpp"

#include <algorithm>
#include <queue>

#include "common/check.hpp"

namespace aacc {

namespace {

Weight draw_weight(Rng& rng, WeightRange wr) {
  AACC_CHECK(wr.lo >= 1 && wr.lo <= wr.hi);
  if (wr.lo == wr.hi) return wr.lo;
  return static_cast<Weight>(rng.next_in(wr.lo, wr.hi));
}

}  // namespace

Graph barabasi_albert(VertexId n, unsigned edges_per_vertex, Rng& rng,
                      WeightRange wr) {
  AACC_CHECK(edges_per_vertex >= 1);
  const VertexId seed_size = std::max<VertexId>(edges_per_vertex + 1, 3);
  AACC_CHECK_MSG(n >= seed_size, "n too small for seed clique");
  Graph g(n);

  // `endpoints` holds one entry per half-edge, so uniform draws from it are
  // degree-proportional — the standard BA repeated-endpoint construction.
  std::vector<VertexId> endpoints;
  endpoints.reserve(2 * static_cast<std::size_t>(n) * edges_per_vertex);

  for (VertexId u = 0; u < seed_size; ++u) {
    for (VertexId v = u + 1; v < seed_size; ++v) {
      g.add_edge(u, v, draw_weight(rng, wr));
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }

  std::vector<VertexId> chosen;
  for (VertexId v = seed_size; v < n; ++v) {
    chosen.clear();
    // Rejection-sample distinct targets; degree ties are broken by the RNG.
    while (chosen.size() < edges_per_vertex) {
      const VertexId t = endpoints[rng.next_below(endpoints.size())];
      if (std::find(chosen.begin(), chosen.end(), t) == chosen.end()) {
        chosen.push_back(t);
      }
    }
    for (VertexId t : chosen) {
      g.add_edge(v, t, draw_weight(rng, wr));
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return g;
}

Graph erdos_renyi(VertexId n, std::size_t m, Rng& rng, WeightRange wr) {
  const std::size_t max_edges = static_cast<std::size_t>(n) * (n - 1) / 2;
  AACC_CHECK_MSG(m <= max_edges, "too many edges requested");
  Graph g(n);
  std::size_t added = 0;
  while (added < m) {
    const auto u = static_cast<VertexId>(rng.next_below(n));
    const auto v = static_cast<VertexId>(rng.next_below(n));
    if (u == v || g.has_edge(u, v)) continue;
    g.add_edge(u, v, draw_weight(rng, wr));
    ++added;
  }
  return g;
}

Graph watts_strogatz(VertexId n, unsigned k, double beta, Rng& rng,
                     WeightRange wr) {
  AACC_CHECK(k >= 1 && 2 * k < n);
  Graph g(n);
  for (VertexId u = 0; u < n; ++u) {
    for (unsigned j = 1; j <= k; ++j) {
      VertexId v = (u + j) % n;
      // Rewire with probability beta; also rewire if an earlier rewiring
      // already claimed the lattice slot, so the edge count stays n*k.
      if (rng.next_bool(beta) || g.has_edge(u, v)) {
        do {
          v = static_cast<VertexId>(rng.next_below(n));
        } while (v == u || g.has_edge(u, v));
      }
      g.add_edge(u, v, draw_weight(rng, wr));
    }
  }
  return g;
}

Graph planted_partition(VertexId n, unsigned communities, double p_in,
                        double p_out, Rng& rng, WeightRange wr) {
  AACC_CHECK(communities >= 1);
  Graph g(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      const double p = (u % communities == v % communities) ? p_in : p_out;
      if (rng.next_bool(p)) g.add_edge(u, v, draw_weight(rng, wr));
    }
  }
  return g;
}

Graph rmat(unsigned scale, std::size_t m, double a, double b, double c,
           Rng& rng, WeightRange wr) {
  AACC_CHECK(scale >= 2 && scale < 31);
  const double d = 1.0 - a - b - c;
  AACC_CHECK_MSG(a > 0 && b >= 0 && c >= 0 && d >= 0,
                 "R-MAT probabilities must be non-negative and a > 0");
  const VertexId n = VertexId{1} << scale;
  Graph g(n);
  std::size_t added = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = m * 64;
  while (added < m && ++attempts < max_attempts) {
    VertexId u = 0;
    VertexId v = 0;
    for (unsigned level = 0; level < scale; ++level) {
      const double p = rng.next_double();
      u <<= 1;
      v <<= 1;
      if (p < a) {
        // top-left quadrant: no bits set
      } else if (p < a + b) {
        v |= 1;
      } else if (p < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u == v || g.has_edge(u, v)) continue;
    g.add_edge(u, v, draw_weight(rng, wr));
    ++added;
  }
  AACC_CHECK_MSG(added == m, "R-MAT could not place " << m << " distinct edges");
  return g;
}

Graph grid2d(VertexId rows, VertexId cols, Rng& rng, WeightRange wr) {
  AACC_CHECK(rows >= 1 && cols >= 1);
  Graph g(rows * cols);
  const auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1), draw_weight(rng, wr));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c), draw_weight(rng, wr));
    }
  }
  return g;
}

void connect_components(Graph& g, Rng& rng, WeightRange wr) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> comp(n, kNoVertex);
  std::vector<VertexId> roots;
  std::queue<VertexId> q;
  for (VertexId s = 0; s < n; ++s) {
    if (comp[s] != kNoVertex || !g.is_alive(s)) continue;
    roots.push_back(s);
    comp[s] = s;
    q.push(s);
    while (!q.empty()) {
      const VertexId u = q.front();
      q.pop();
      for (const Edge& e : g.neighbors(u)) {
        if (comp[e.to] == kNoVertex) {
          comp[e.to] = s;
          q.push(e.to);
        }
      }
    }
  }
  // Chain the components together with random representative pairs.
  for (std::size_t i = 1; i < roots.size(); ++i) {
    g.add_edge(roots[i - 1], roots[i], draw_weight(rng, wr));
  }
}

}  // namespace aacc
