// Structural graph metrics used by tests and experiment reporting.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "graph/graph.hpp"

namespace aacc {

/// Histogram of vertex degrees: result[d] = number of alive vertices with
/// degree d.
std::vector<std::size_t> degree_histogram(const Graph& g);

/// Connected components over alive vertices. Returns component id per
/// vertex (kNoVertex for tombstoned vertices) and the component count.
struct Components {
  std::vector<VertexId> component;
  VertexId count = 0;
};
Components connected_components(const Graph& g);

[[nodiscard]] bool is_connected(const Graph& g);

/// Average local clustering coefficient over `samples` random alive
/// vertices (exact if samples >= alive count).
double clustering_coefficient(const Graph& g, Rng& rng, std::size_t samples = 512);

/// Fits an exponent to the degree distribution tail via the standard
/// maximum-likelihood estimator alpha = 1 + k/sum(ln(d_i/(dmin-0.5))).
/// Returns 0 when there are too few tail vertices. Used by tests to confirm
/// the Barabási–Albert generator is in the scale-free regime.
double power_law_alpha_mle(const Graph& g, std::size_t d_min = 2);

/// K-core decomposition (Matula–Beck peeling): result[v] = the largest k
/// such that v belongs to a subgraph of minimum degree k (kNoVertex-free;
/// tombstoned vertices get 0).
std::vector<VertexId> k_core(const Graph& g);

/// Degree assortativity (Pearson correlation of endpoint degrees over
/// edges). Scale-free graphs built by preferential attachment trend
/// slightly disassortative; social networks positive.
double degree_assortativity(const Graph& g);

/// BFS eccentricity lower bound on the diameter: runs a double sweep from
/// `sweeps` random alive starts and returns the largest hop-distance seen
/// (ignores weights).
std::size_t diameter_lower_bound(const Graph& g, Rng& rng, unsigned sweeps = 4);

}  // namespace aacc
