#include "graph/louvain.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/check.hpp"

namespace aacc {

namespace {

/// Weighted graph in adjacency form used across aggregation levels.
struct LevelGraph {
  // adj[u] = (v, w); self-loops allowed (aggregated intra-community mass),
  // stored once with their full weight.
  std::vector<std::vector<std::pair<VertexId, double>>> adj;
  std::vector<double> strength;  // weighted degree incl. 2*self-loop
  double total_weight = 0.0;     // sum of edge weights (self-loops once)

  [[nodiscard]] VertexId size() const {
    return static_cast<VertexId>(adj.size());
  }
};

LevelGraph from_graph(const Graph& g) {
  LevelGraph lg;
  lg.adj.resize(g.num_vertices());
  lg.strength.assign(g.num_vertices(), 0.0);
  for (const auto& [u, v, w] : g.edges()) {
    const auto wd = static_cast<double>(w);
    lg.adj[u].emplace_back(v, wd);
    lg.adj[v].emplace_back(u, wd);
    lg.strength[u] += wd;
    lg.strength[v] += wd;
    lg.total_weight += wd;
  }
  return lg;
}

/// One full Louvain local-move phase. Returns modularity gain achieved.
double local_move(const LevelGraph& lg, std::vector<VertexId>& comm, Rng& rng,
                  double min_gain) {
  const VertexId n = lg.size();
  const double m2 = 2.0 * lg.total_weight;
  if (m2 == 0.0) return 0.0;

  std::vector<double> comm_strength(n, 0.0);
  for (VertexId v = 0; v < n; ++v) comm_strength[comm[v]] += lg.strength[v];

  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  for (VertexId i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.next_below(i)]);
  }

  double total_gain = 0.0;
  bool improved = true;
  std::unordered_map<VertexId, double> links;  // community -> edge mass to it
  while (improved) {
    improved = false;
    double pass_gain = 0.0;
    for (VertexId v : order) {
      const VertexId old_c = comm[v];
      links.clear();
      double self_loops = 0.0;
      for (const auto& [to, w] : lg.adj[v]) {
        if (to == v) {
          self_loops += w;
        } else {
          links[comm[to]] += w;
        }
      }
      comm_strength[old_c] -= lg.strength[v];
      // Gain of joining community c: k_{v,in}(c) - strength(v)*Σ_c / 2m.
      double best_gain = links.count(old_c) != 0U
                             ? links[old_c] - lg.strength[v] * comm_strength[old_c] / m2
                             : -lg.strength[v] * comm_strength[old_c] / m2;
      VertexId best_c = old_c;
      for (const auto& [c, k_in] : links) {
        if (c == old_c) continue;
        const double gain = k_in - lg.strength[v] * comm_strength[c] / m2;
        if (gain > best_gain + 1e-12) {
          best_gain = gain;
          best_c = c;
        }
      }
      comm[v] = best_c;
      comm_strength[best_c] += lg.strength[v];
      if (best_c != old_c) {
        improved = true;
        const double old_in = links.count(old_c) != 0U ? links[old_c] : 0.0;
        pass_gain += (best_gain -
                      (old_in - lg.strength[v] * comm_strength[old_c] / m2)) /
                     lg.total_weight;
      }
      (void)self_loops;
    }
    total_gain += pass_gain;
    if (pass_gain < min_gain) break;
  }
  return total_gain;
}

/// Renumber communities densely; returns count.
VertexId compact(std::vector<VertexId>& comm) {
  std::unordered_map<VertexId, VertexId> remap;
  for (VertexId& c : comm) {
    auto [it, inserted] = remap.emplace(c, static_cast<VertexId>(remap.size()));
    c = it->second;
  }
  return static_cast<VertexId>(remap.size());
}

LevelGraph aggregate(const LevelGraph& lg, const std::vector<VertexId>& comm,
                     VertexId num_comm) {
  LevelGraph out;
  out.adj.resize(num_comm);
  out.strength.assign(num_comm, 0.0);
  out.total_weight = lg.total_weight;
  std::vector<std::unordered_map<VertexId, double>> acc(num_comm);
  for (VertexId u = 0; u < lg.size(); ++u) {
    for (const auto& [v, w] : lg.adj[u]) {
      const VertexId cu = comm[u];
      const VertexId cv = comm[v];
      if (u == v) {
        acc[cu][cu] += w;  // self-loop stored once
      } else if (u < v) {
        if (cu == cv) {
          acc[cu][cu] += w;
        } else {
          acc[cu][cv] += w;
          acc[cv][cu] += w;
        }
      }
    }
  }
  for (VertexId c = 0; c < num_comm; ++c) {
    for (const auto& [to, w] : acc[c]) {
      out.adj[c].emplace_back(to, w);
      out.strength[c] += (to == c) ? 2.0 * w : w;
    }
  }
  return out;
}

}  // namespace

double modularity(const Graph& g, const std::vector<VertexId>& community) {
  AACC_CHECK(community.size() == g.num_vertices());
  double m = 0.0;
  std::unordered_map<VertexId, double> comm_strength;
  std::unordered_map<VertexId, double> comm_internal;
  for (const auto& [u, v, w] : g.edges()) {
    const auto wd = static_cast<double>(w);
    m += wd;
    comm_strength[community[u]] += wd;
    comm_strength[community[v]] += wd;
    if (community[u] == community[v]) comm_internal[community[u]] += wd;
  }
  if (m == 0.0) return 0.0;
  double q = 0.0;
  for (const auto& [c, s] : comm_strength) {
    const double in = comm_internal.count(c) != 0U ? comm_internal[c] : 0.0;
    q += in / m - (s / (2.0 * m)) * (s / (2.0 * m));
  }
  return q;
}

LouvainResult louvain(const Graph& g, Rng& rng, LouvainOptions opts) {
  LouvainResult res;
  res.community.resize(g.num_vertices());
  std::iota(res.community.begin(), res.community.end(), VertexId{0});

  LevelGraph lg = from_graph(g);
  // mapping[v] = community of v in terms of the current level's nodes.
  std::vector<VertexId> mapping = res.community;

  for (unsigned level = 0; level < opts.max_levels; ++level) {
    std::vector<VertexId> comm(lg.size());
    std::iota(comm.begin(), comm.end(), VertexId{0});
    const double gain = local_move(lg, comm, rng, opts.min_gain);
    const VertexId num_comm = compact(comm);
    // Project this level's assignment onto original vertices.
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      mapping[v] = comm[mapping[v]];
    }
    if (num_comm == lg.size() || gain < opts.min_gain) break;
    lg = aggregate(lg, comm, num_comm);
  }

  res.community = mapping;
  res.num_communities = compact(res.community);
  res.modularity = modularity(g, res.community);
  return res;
}

}  // namespace aacc
