// Synthetic graph generators.
//
// The paper generates undirected scale-free graphs with Pajek; the
// experiments additionally need community-structured vertex batches
// (extracted there with Pajek's Louvain plugin). These generators are the
// offline substitute: deterministic given the Rng seed, with the same
// qualitative structure (power-law degrees for Barabási–Albert, tunable
// community strength for the planted-partition model).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "graph/graph.hpp"

namespace aacc {

struct WeightRange {
  Weight lo = 1;
  Weight hi = 1;
};

/// Barabási–Albert preferential attachment: starts from a small clique and
/// attaches each new vertex with `edges_per_vertex` edges whose endpoints
/// are drawn proportionally to current degree. Produces the scale-free
/// degree distribution the paper's workloads assume.
Graph barabasi_albert(VertexId n, unsigned edges_per_vertex, Rng& rng,
                      WeightRange wr = {});

/// Erdős–Rényi G(n, m): m distinct uniform edges.
Graph erdos_renyi(VertexId n, std::size_t m, Rng& rng, WeightRange wr = {});

/// Watts–Strogatz small world: ring lattice with k neighbours per side,
/// each edge rewired with probability beta.
Graph watts_strogatz(VertexId n, unsigned k, double beta, Rng& rng,
                     WeightRange wr = {});

/// Planted-partition model: `communities` equal-size groups; vertex pairs
/// inside a group are connected with probability p_in, across groups with
/// p_out. The community id of vertex v is v % communities.
Graph planted_partition(VertexId n, unsigned communities, double p_in,
                        double p_out, Rng& rng, WeightRange wr = {});

/// R-MAT / Kronecker-style recursive generator (Chakrabarti et al.): each
/// edge picks its endpoints by descending a 2^scale x 2^scale adjacency
/// quadrant tree with probabilities (a, b, c, d), a+b+c+d = 1. The standard
/// skewed setting (0.57, 0.19, 0.19, 0.05) yields power-law-ish graphs with
/// heavy community overlap; self-loops and duplicates are rejected.
Graph rmat(unsigned scale, std::size_t m, double a, double b, double c,
           Rng& rng, WeightRange wr = {});

/// 2-D grid graph (rows x cols), 4-neighbourhood — the low-diameter
/// counterexample to scale-free assumptions, used in sweeps.
Graph grid2d(VertexId rows, VertexId cols, Rng& rng, WeightRange wr = {});

/// Adds uniformly random edges until the graph is connected (used to make
/// closeness well-defined on sparse random instances).
void connect_components(Graph& g, Rng& rng, WeightRange wr = {});

}  // namespace aacc
