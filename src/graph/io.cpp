#include "graph/io.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace aacc {

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

Graph read_edge_list(std::istream& in) {
  std::vector<std::tuple<VertexId, VertexId, Weight>> edges;
  VertexId max_id = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    VertexId u = 0;
    VertexId v = 0;
    Weight w = 1;
    ls >> u >> v;
    AACC_CHECK_MSG(!ls.fail(), "malformed edge list line: " << line);
    ls >> w;  // optional third column
    if (ls.fail()) w = 1;
    edges.emplace_back(u, v, w);
    max_id = std::max({max_id, u, v});
  }
  Graph g(edges.empty() ? 0 : max_id + 1);
  for (const auto& [u, v, w] : edges) g.add_edge(u, v, w);
  return g;
}

void write_edge_list(const Graph& g, std::ostream& out) {
  out << "# aacc edge list: " << g.num_vertices() << " vertices, "
      << g.num_edges() << " edges\n";
  for (const auto& [u, v, w] : g.edges()) {
    out << u << ' ' << v << ' ' << w << '\n';
  }
}

Graph read_metis(std::istream& in) {
  std::string line;
  // Header: skip comment lines starting with '%'.
  do {
    AACC_CHECK_MSG(static_cast<bool>(std::getline(in, line)), "missing METIS header");
  } while (!line.empty() && line[0] == '%');
  std::istringstream hs(line);
  std::size_t n = 0;
  std::size_t m = 0;
  int fmt = 0;
  hs >> n >> m;
  AACC_CHECK_MSG(!hs.fail(), "malformed METIS header: " << line);
  hs >> fmt;
  if (hs.fail()) fmt = 0;
  const bool weighted = (fmt % 10) == 1;

  Graph g(static_cast<VertexId>(n));
  VertexId u = 0;
  while (u < n && std::getline(in, line)) {
    if (!line.empty() && line[0] == '%') continue;
    std::istringstream ls(line);
    VertexId v = 0;
    while (ls >> v) {
      AACC_CHECK_MSG(v >= 1 && v <= n, "METIS neighbour out of range: " << v);
      Weight w = 1;
      if (weighted) {
        ls >> w;
        AACC_CHECK_MSG(!ls.fail(), "METIS weighted line missing weight");
      }
      if (v - 1 > u) g.add_edge(u, v - 1, w);  // each edge listed twice
    }
    ++u;
  }
  AACC_CHECK_MSG(u == n, "METIS file ended early at vertex " << u);
  AACC_CHECK_MSG(g.num_edges() == m,
                 "METIS header claims " << m << " edges, file has " << g.num_edges());
  return g;
}

void write_metis(const Graph& g, std::ostream& out) {
  out << g.num_vertices() << ' ' << g.num_edges() << " 1\n";
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    bool first = true;
    for (const Edge& e : g.neighbors(u)) {
      if (!first) out << ' ';
      out << (e.to + 1) << ' ' << e.w;
      first = false;
    }
    out << '\n';
  }
}

Graph read_pajek(std::istream& in) {
  std::string line;
  std::size_t n = 0;
  // Find *Vertices.
  while (std::getline(in, line)) {
    if (line.rfind("*Vertices", 0) == 0 || line.rfind("*vertices", 0) == 0) {
      std::istringstream ls(line);
      std::string kw;
      ls >> kw >> n;
      AACC_CHECK_MSG(!ls.fail(), "malformed Pajek *Vertices line");
      break;
    }
  }
  AACC_CHECK_MSG(n > 0, "Pajek file missing *Vertices section");
  Graph g(static_cast<VertexId>(n));
  bool in_edges = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '*') {
      in_edges = line.rfind("*Edges", 0) == 0 || line.rfind("*edges", 0) == 0;
      continue;
    }
    if (!in_edges) continue;  // vertex label lines
    std::istringstream ls(line);
    VertexId u = 0;
    VertexId v = 0;
    double w = 1.0;
    ls >> u >> v;
    if (ls.fail()) continue;
    ls >> w;
    if (ls.fail()) w = 1.0;
    AACC_CHECK(u >= 1 && v >= 1 && u <= n && v <= n);
    if (!g.has_edge(u - 1, v - 1) && u != v) {
      g.add_edge(u - 1, v - 1, static_cast<Weight>(std::max(1.0, w)));
    }
  }
  return g;
}

void write_pajek(const Graph& g, std::ostream& out) {
  out << "*Vertices " << g.num_vertices() << '\n';
  out << "*Edges\n";
  for (const auto& [u, v, w] : g.edges()) {
    out << (u + 1) << ' ' << (v + 1) << ' ' << w << '\n';
  }
}

Graph read_dimacs(std::istream& in) {
  std::string line;
  std::size_t n = 0;
  std::size_t declared_arcs = 0;
  Graph g;
  bool seen_header = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream ls(line);
    char kind = 0;
    ls >> kind;
    if (kind == 'p') {
      std::string tag;
      ls >> tag >> n >> declared_arcs;
      AACC_CHECK_MSG(!ls.fail() && tag == "sp", "malformed DIMACS header: " << line);
      g = Graph(static_cast<VertexId>(n));
      seen_header = true;
    } else if (kind == 'a') {
      AACC_CHECK_MSG(seen_header, "DIMACS arc before header");
      VertexId u = 0;
      VertexId v = 0;
      Weight w = 1;
      ls >> u >> v >> w;
      AACC_CHECK_MSG(!ls.fail(), "malformed DIMACS arc: " << line);
      AACC_CHECK(u >= 1 && v >= 1 && u <= n && v <= n);
      if (u != v && !g.has_edge(u - 1, v - 1)) g.add_edge(u - 1, v - 1, w);
    }
  }
  AACC_CHECK_MSG(seen_header, "DIMACS file missing 'p sp' header");
  return g;
}

void write_dimacs(const Graph& g, std::ostream& out) {
  out << "c aacc DIMACS shortest-path export\n";
  out << "p sp " << g.num_vertices() << ' ' << 2 * g.num_edges() << '\n';
  for (const auto& [u, v, w] : g.edges()) {
    out << "a " << (u + 1) << ' ' << (v + 1) << ' ' << w << '\n';
    out << "a " << (v + 1) << ' ' << (u + 1) << ' ' << w << '\n';
  }
}

Graph load_graph(const std::string& path) {
  std::ifstream in(path);
  AACC_CHECK_MSG(in.good(), "cannot open " << path);
  if (ends_with(path, ".graph")) return read_metis(in);
  if (ends_with(path, ".net")) return read_pajek(in);
  if (ends_with(path, ".gr")) return read_dimacs(in);
  return read_edge_list(in);
}

void save_graph(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  AACC_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  if (ends_with(path, ".graph")) {
    write_metis(g, out);
  } else if (ends_with(path, ".net")) {
    write_pajek(g, out);
  } else if (ends_with(path, ".gr")) {
    write_dimacs(g, out);
  } else {
    write_edge_list(g, out);
  }
}

}  // namespace aacc
