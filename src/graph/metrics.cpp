#include "graph/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

namespace aacc {

std::vector<std::size_t> degree_histogram(const Graph& g) {
  std::vector<std::size_t> hist;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!g.is_alive(v)) continue;
    const std::size_t d = g.degree(v);
    if (d >= hist.size()) hist.resize(d + 1, 0);
    ++hist[d];
  }
  return hist;
}

Components connected_components(const Graph& g) {
  Components out;
  out.component.assign(g.num_vertices(), kNoVertex);
  std::queue<VertexId> q;
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    if (!g.is_alive(s) || out.component[s] != kNoVertex) continue;
    const VertexId id = out.count++;
    out.component[s] = id;
    q.push(s);
    while (!q.empty()) {
      const VertexId u = q.front();
      q.pop();
      for (const Edge& e : g.neighbors(u)) {
        if (out.component[e.to] == kNoVertex) {
          out.component[e.to] = id;
          q.push(e.to);
        }
      }
    }
  }
  return out;
}

bool is_connected(const Graph& g) {
  if (g.num_alive() == 0) return true;
  return connected_components(g).count == 1;
}

double clustering_coefficient(const Graph& g, Rng& rng, std::size_t samples) {
  const auto alive = g.alive_vertices();
  if (alive.empty()) return 0.0;
  std::vector<VertexId> pool = alive;
  if (samples < pool.size()) {
    for (std::size_t i = 0; i < samples; ++i) {
      std::swap(pool[i], pool[i + rng.next_below(pool.size() - i)]);
    }
    pool.resize(samples);
  }
  double sum = 0.0;
  std::size_t counted = 0;
  for (VertexId v : pool) {
    const auto nbrs = g.neighbors(v);
    if (nbrs.size() < 2) continue;
    std::size_t closed = 0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        if (g.has_edge(nbrs[i].to, nbrs[j].to)) ++closed;
      }
    }
    const double possible =
        static_cast<double>(nbrs.size()) * (static_cast<double>(nbrs.size()) - 1) / 2.0;
    sum += static_cast<double>(closed) / possible;
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

std::vector<VertexId> k_core(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> core(n, 0);
  std::vector<std::size_t> deg(n, 0);
  std::size_t max_deg = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (!g.is_alive(v)) continue;
    deg[v] = g.degree(v);
    max_deg = std::max(max_deg, deg[v]);
  }
  // Bucket peeling in O(n + m).
  std::vector<std::vector<VertexId>> buckets(max_deg + 1);
  for (VertexId v = 0; v < n; ++v) {
    if (g.is_alive(v)) buckets[deg[v]].push_back(v);
  }
  std::vector<char> removed(n, 0);
  std::size_t current = 0;
  for (std::size_t filled = 0; filled < g.num_alive();) {
    while (current <= max_deg && buckets[current].empty()) ++current;
    if (current > max_deg) break;
    const VertexId v = buckets[current].back();
    buckets[current].pop_back();
    if (removed[v] != 0 || deg[v] > current) continue;  // stale bucket entry
    removed[v] = 1;
    core[v] = static_cast<VertexId>(current);
    ++filled;
    for (const Edge& e : g.neighbors(v)) {
      if (removed[e.to] != 0) continue;
      if (deg[e.to] > current) {
        --deg[e.to];
        buckets[deg[e.to]].push_back(e.to);
      }
    }
    if (current > 0) --current;  // peeling can reopen lower buckets
  }
  return core;
}

double degree_assortativity(const Graph& g) {
  // Pearson correlation over directed edge endpoint degrees (each
  // undirected edge contributes both orientations, the standard Newman
  // formulation).
  double sum_xy = 0.0;
  double sum_x = 0.0;
  double sum_x2 = 0.0;
  std::size_t m2 = 0;
  for (const auto& [u, v, w] : g.edges()) {
    (void)w;
    const auto du = static_cast<double>(g.degree(u));
    const auto dv = static_cast<double>(g.degree(v));
    sum_xy += 2.0 * du * dv;
    sum_x += du + dv;
    sum_x2 += du * du + dv * dv;
    m2 += 2;
  }
  if (m2 == 0) return 0.0;
  const double inv = 1.0 / static_cast<double>(m2);
  const double num = inv * sum_xy - (inv * sum_x) * (inv * sum_x);
  const double den = inv * sum_x2 - (inv * sum_x) * (inv * sum_x);
  return den == 0.0 ? 0.0 : num / den;
}

std::size_t diameter_lower_bound(const Graph& g, Rng& rng, unsigned sweeps) {
  const auto alive = g.alive_vertices();
  if (alive.empty()) return 0;
  std::vector<std::size_t> hops(g.num_vertices());
  std::size_t best = 0;
  VertexId start = alive[rng.next_below(alive.size())];
  for (unsigned s = 0; s < 2 * sweeps; ++s) {
    std::fill(hops.begin(), hops.end(), static_cast<std::size_t>(-1));
    std::queue<VertexId> q;
    hops[start] = 0;
    q.push(start);
    VertexId farthest = start;
    while (!q.empty()) {
      const VertexId u = q.front();
      q.pop();
      for (const Edge& e : g.neighbors(u)) {
        if (hops[e.to] == static_cast<std::size_t>(-1)) {
          hops[e.to] = hops[u] + 1;
          if (hops[e.to] > hops[farthest]) farthest = e.to;
          q.push(e.to);
        }
      }
    }
    best = std::max(best, hops[farthest]);
    // Double sweep: restart from the farthest vertex found; every other
    // sweep jumps to a fresh random start.
    start = (s % 2 == 0) ? farthest : alive[rng.next_below(alive.size())];
  }
  return best;
}

double power_law_alpha_mle(const Graph& g, std::size_t d_min) {
  double log_sum = 0.0;
  std::size_t k = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!g.is_alive(v)) continue;
    const std::size_t d = g.degree(v);
    if (d >= d_min) {
      log_sum += std::log(static_cast<double>(d) /
                          (static_cast<double>(d_min) - 0.5));
      ++k;
    }
  }
  if (k < 16 || log_sum <= 0.0) return 0.0;
  return 1.0 + static_cast<double>(k) / log_sum;
}

}  // namespace aacc
