// Immutable compressed-sparse-row view of a Graph.
//
// The mutable Graph is pointer-chasing-friendly for updates; the shortest
// path kernels (IA Dijkstra, reference APSP) want the compact, predictable
// layout the Core Guidelines call for (Per.16/Per.19). Build once per phase,
// run many sources against it.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace aacc {

class CsrGraph {
 public:
  CsrGraph() = default;

  explicit CsrGraph(const Graph& g) {
    const VertexId n = g.num_vertices();
    offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
    for (VertexId v = 0; v < n; ++v) {
      offsets_[v + 1] = offsets_[v] + g.degree(v);
    }
    targets_.resize(offsets_[n]);
    weights_.resize(offsets_[n]);
    for (VertexId v = 0; v < n; ++v) {
      std::size_t at = offsets_[v];
      for (const Edge& e : g.neighbors(v)) {
        targets_[at] = e.to;
        weights_[at] = e.w;
        ++at;
      }
    }
  }

  [[nodiscard]] VertexId num_vertices() const {
    return static_cast<VertexId>(offsets_.size() - 1);
  }

  [[nodiscard]] std::size_t num_directed_edges() const { return targets_.size(); }

  [[nodiscard]] std::size_t begin(VertexId v) const { return offsets_[v]; }
  [[nodiscard]] std::size_t end(VertexId v) const { return offsets_[v + 1]; }
  [[nodiscard]] VertexId target(std::size_t i) const { return targets_[i]; }
  [[nodiscard]] Weight weight(std::size_t i) const { return weights_[i]; }
  [[nodiscard]] std::size_t degree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

 private:
  std::vector<std::size_t> offsets_;
  std::vector<VertexId> targets_;
  std::vector<Weight> weights_;
};

}  // namespace aacc
