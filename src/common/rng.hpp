// Deterministic, seedable PRNG (xoshiro256** seeded via SplitMix64).
//
// Every stochastic component of the library (generators, partitioner
// tie-breaking, workload construction) draws from this generator so that a
// run is fully reproducible from (seed, n, P). std::mt19937 is avoided
// because its distributions are not guaranteed identical across standard
// library implementations; all distribution logic here is hand-rolled.
#pragma once

#include <cstdint>

#include "common/check.hpp"

namespace aacc {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value (xoshiro256**).
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    AACC_DCHECK(bound > 0);
    // Lemire's nearly-divisionless rejection method.
    __extension__ using u128 = unsigned __int128;
    std::uint64_t x = next_u64();
    u128 m = static_cast<u128>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<u128>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) {
    AACC_DCHECK(lo <= hi);
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw.
  bool next_bool(double p) { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace aacc
