// Minimal intra-process worker pool.
//
// Replaces the seed's OpenMP pragmas: an OMP team nested inside every
// rt::World rank thread oversubscribes the machine, silently degrades to
// serial when the toolchain lacks OpenMP, and hides its synchronization
// from ThreadSanitizer. Explicit std::threads are visible to TSan and
// sized by configuration instead of the runtime's guess.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace aacc {

/// Runs body(worker_index) on `threads` workers — the calling thread acts
/// as worker 0, so `threads <= 1` is a plain inline call — joins them all,
/// and rethrows the first exception any worker raised.
template <typename Body>
void run_workers(std::size_t threads, Body&& body) {
  if (threads <= 1) {
    body(std::size_t{0});
    return;
  }
  std::mutex err_mu;
  std::exception_ptr err;
  const auto guarded = [&](std::size_t worker) {
    try {
      body(worker);
    } catch (...) {
      const std::scoped_lock lock(err_mu);
      if (!err) err = std::current_exception();
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (std::size_t i = 1; i < threads; ++i) {
    pool.emplace_back(guarded, i);
  }
  guarded(0);
  for (std::thread& th : pool) th.join();
  if (err) std::rethrow_exception(err);
}

/// Dynamic work distribution: workers claim chunks of `chunk` consecutive
/// indices from [0, total) off a shared cursor and call body(begin, end).
/// Matches OpenMP's schedule(dynamic, chunk) load balancing; every index
/// is processed by exactly one worker.
template <typename Body>
void parallel_chunks(std::size_t total, std::size_t chunk, std::size_t threads,
                     Body&& body) {
  std::atomic<std::size_t> cursor{0};
  run_workers(threads, [&](std::size_t) {
    for (;;) {
      const std::size_t begin =
          cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= total) break;
      body(begin, std::min(begin + chunk, total));
    }
  });
}

}  // namespace aacc
