// Checked assertions that stay on in release builds.
//
// Graph algorithms fail in ways that silently corrupt results; the cost of a
// predictable branch per invariant is negligible next to the cost of
// debugging a wrong centrality score. AACC_CHECK is used for invariants and
// precondition validation on public APIs; AACC_DCHECK compiles out in
// release builds and is for hot inner loops only.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace aacc::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "AACC_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace aacc::detail

#define AACC_CHECK(expr)                                                \
  do {                                                                  \
    if (!(expr)) [[unlikely]]                                           \
      ::aacc::detail::check_failed(#expr, __FILE__, __LINE__, {});      \
  } while (false)

#define AACC_CHECK_MSG(expr, msg)                                       \
  do {                                                                  \
    if (!(expr)) [[unlikely]] {                                         \
      std::ostringstream aacc_os_;                                      \
      aacc_os_ << msg;                                                  \
      ::aacc::detail::check_failed(#expr, __FILE__, __LINE__,           \
                                   aacc_os_.str());                     \
    }                                                                   \
  } while (false)

#ifdef NDEBUG
#define AACC_DCHECK(expr) \
  do {                    \
  } while (false)
#else
#define AACC_DCHECK(expr) AACC_CHECK(expr)
#endif
