// Environment-variable configuration knobs for benchmarks and examples.
//
// The paper's experiments fix (n = 50,000, P = 16) on a 32-node cluster.
// This repository defaults to sizes that run the full figure sweeps in
// minutes on one core; AACC_N / AACC_P / AACC_SEED / AACC_SCALE rescale any
// bench without recompilation.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>

namespace aacc {

inline std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoll(v, nullptr, 10);
}

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtod(v, nullptr);
}

inline std::string env_str(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback : std::string(v);
}

}  // namespace aacc
