// Core scalar types shared by every aacc module.
//
// Vertices are dense 0-based ids that remain stable for the lifetime of a
// run: dynamic vertex additions append new ids, deletions tombstone old ones.
// Distances are exact integer path lengths (edge weights are >= 1), so all
// shortest-path invariants can be asserted bit-exactly in tests.
#pragma once

#include <cstdint>
#include <limits>

namespace aacc {

/// Dense vertex identifier. Stable across dynamic updates within a run.
using VertexId = std::uint32_t;

/// Edge weight. Must be >= 1; strictly positive weights make next-hop
/// chains strictly distance-decreasing (hence acyclic), which the dynamic
/// deletion machinery relies on.
using Weight = std::uint32_t;

/// Shortest-path distance (a sum of Weights).
using Dist = std::uint32_t;

/// Logical processor (rank) index inside a runtime::World.
using Rank = std::int32_t;

/// Sentinel: no such vertex (unset next-hop, invalid id).
inline constexpr VertexId kNoVertex = std::numeric_limits<VertexId>::max();

/// Sentinel: unreachable / unknown distance. All finite distances compare
/// strictly less than kInfDist; arithmetic must never be performed on it
/// without checking first (see dist_add).
inline constexpr Dist kInfDist = std::numeric_limits<Dist>::max();

/// Saturating distance addition: inf + x == inf, and finite sums that would
/// overflow saturate to kInfDist (they are by definition "worse than any
/// real path" for the graph sizes this library targets).
[[nodiscard]] constexpr Dist dist_add(Dist a, Dist b) noexcept {
  if (a == kInfDist || b == kInfDist) return kInfDist;
  const std::uint64_t s = std::uint64_t{a} + std::uint64_t{b};
  return s >= kInfDist ? kInfDist : static_cast<Dist>(s);
}

}  // namespace aacc
