// Umbrella header: the whole public API in one include.
//
//   #include "aacc/aacc.hpp"
//
//   aacc::Rng rng(42);
//   aacc::Graph g = aacc::barabasi_albert(5000, 3, rng);
//   aacc::EngineConfig cfg;
//   aacc::AnytimeEngine engine(g, cfg);
//   aacc::RunResult r = engine.run();
//   std::puts(r.stats.summary().c_str());
//
// For serving queries while changes stream in, open a session instead of
// an engine (docs/API.md §"Serving sessions"):
//
//   aacc::serve::EngineSession session(g, cfg);
//   session.ingest({aacc::EdgeAddEvent{1, 2, 1}});
//   auto top = session.view().top_k(10);
//   aacc::RunResult final = session.close();
//
// Fine-grained headers remain available for code that wants to limit its
// include surface; this header is the recommended entry point for
// applications (see docs/API.md).
#pragma once

#include "analysis/centrality_extra.hpp"
#include "analysis/closeness.hpp"
#include "analysis/quality.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"
#include "core/checkpoint.hpp"
#include "core/config.hpp"
#include "core/engine.hpp"
#include "core/events.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "partition/partition.hpp"
#include "runtime/faults.hpp"
#include "runtime/logp.hpp"
#include "serve/context.hpp"
#include "serve/session.hpp"
#include "serve/stream.hpp"
