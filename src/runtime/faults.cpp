#include "runtime/faults.hpp"

#include "common/check.hpp"

namespace aacc::rt {

namespace {

// SplitMix64 (same mixer the repo's Rng uses for seeding): a full-avalanche
// hash, so consecutive seqnos map to independent fates.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

double to_unit(std::uint64_t h) {
  // 53 high bits -> [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

double retry_backoff_jitter(std::uint64_t seed, Rank src, Rank dst,
                            std::uint32_t seqno, std::uint32_t attempt) {
  // Same chaining as FaultInjector::frame_hash but under a distinct salt,
  // so the jitter stream is independent of the fate stream.
  std::uint64_t h = splitmix64(seed ^ 0xBAC0FF17ULL);
  h = splitmix64(
      h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32 |
           static_cast<std::uint32_t>(dst)));
  h = splitmix64(h ^ (static_cast<std::uint64_t>(seqno) << 32 | attempt));
  return 0.5 + to_unit(h);
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  AACC_CHECK_MSG(plan_.drop + plan_.duplicate + plan_.delay + plan_.corrupt <=
                     1.0 + 1e-12,
                 "FaultPlan probabilities must sum to <= 1");
  crash_fired_.reserve(plan_.crashes.size());
  for (std::size_t i = 0; i < plan_.crashes.size(); ++i) {
    crash_fired_.push_back(std::make_unique<std::atomic<bool>>(false));
  }
}

std::uint64_t FaultInjector::frame_hash(Rank src, Rank dst, std::uint32_t seqno,
                                        std::uint32_t attempt) const {
  std::uint64_t h = splitmix64(plan_.seed ^ 0xFA017EC7ULL);
  h = splitmix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32 |
                      static_cast<std::uint32_t>(dst)));
  h = splitmix64(h ^ (static_cast<std::uint64_t>(seqno) << 32 | attempt));
  return h;
}

FrameFate FaultInjector::fate(Rank src, Rank dst, std::uint32_t seqno,
                              std::uint32_t attempt) {
  if (attempt >= plan_.fault_attempt_limit || !plan_.any_message_faults()) {
    return FrameFate::kDeliver;
  }
  const double u = to_unit(frame_hash(src, dst, seqno, attempt));
  double acc = plan_.drop;
  if (u < acc) {
    counters_.dropped.fetch_add(1, std::memory_order_relaxed);
    return FrameFate::kDrop;
  }
  acc += plan_.duplicate;
  if (u < acc) {
    counters_.duplicated.fetch_add(1, std::memory_order_relaxed);
    return FrameFate::kDuplicate;
  }
  acc += plan_.delay;
  if (u < acc) {
    counters_.delayed.fetch_add(1, std::memory_order_relaxed);
    return FrameFate::kDelay;
  }
  acc += plan_.corrupt;
  if (u < acc) {
    counters_.corrupted.fetch_add(1, std::memory_order_relaxed);
    return FrameFate::kCorrupt;
  }
  return FrameFate::kDeliver;
}

std::size_t FaultInjector::corrupt_offset(Rank src, Rank dst,
                                          std::uint32_t seqno,
                                          std::uint32_t attempt,
                                          std::size_t frame_size) const {
  AACC_DCHECK(frame_size > 0);
  // Re-hash with a distinct salt so the offset is independent of the fate.
  const std::uint64_t h =
      splitmix64(frame_hash(src, dst, seqno, attempt) ^ 0x0FF5E7ULL);
  return static_cast<std::size_t>(h % frame_size);
}

bool FaultInjector::should_crash(Rank rank, std::size_t step,
                                 CrashPhase phase) {
  for (std::size_t i = 0; i < plan_.crashes.size(); ++i) {
    const CrashPoint& c = plan_.crashes[i];
    if (c.rank == rank && c.at_step == step && c.phase == phase) {
      bool expected = false;
      if (crash_fired_[i]->compare_exchange_strong(expected, true)) {
        counters_.crashes.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
  }
  return false;
}

}  // namespace aacc::rt
