// Message-passing runtime: a World of P logical processors (threads), each
// holding a Comm endpoint. This is the repository's MPI substitute (see
// DESIGN.md): rank code is SPMD, communicates only through serialized
// messages, and all collectives are built from point-to-point sends so that
// byte counts and message counts are exact.
//
// Collectives provided (mirroring the subset the paper uses):
//   * barrier            — tree reduce + tree broadcast of an empty token
//   * broadcast          — binomial tree from a root
//   * all_to_all         — personalized all-to-all using the shift schedule
//   * all_reduce (sum/max/or)
//
// Every Comm records a per-rank ledger (bytes, messages, per-phase thread
// CPU seconds) and appends to a message log that logp.hpp replays to model
// network time under the paper's serialized schedule or alternatives.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "runtime/logp.hpp"

namespace aacc::rt {

inline constexpr Rank kAnySource = -1;

struct Message {
  Rank src = 0;
  std::int32_t tag = 0;
  std::vector<std::byte> payload;
};

/// Thread-safe mailbox with (source, tag) matching and per-sender FIFO.
class Mailbox {
 public:
  void put(Message m);

  /// Blocks until a message matching (src or kAnySource, tag) is available.
  Message take(Rank src, std::int32_t tag);

  /// Non-blocking probe (used by tests).
  [[nodiscard]] bool has(Rank src, std::int32_t tag);

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

/// Per-rank accounting.
struct RankLedger {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  /// Thread-CPU seconds spent computing, keyed by phase label.
  std::map<std::string, double> cpu_seconds;

  [[nodiscard]] double total_cpu_seconds() const {
    double t = 0.0;
    for (const auto& [k, v] : cpu_seconds) t += v;
    return t;
  }
};

class World;

/// A rank's endpoint. Not thread-safe; owned by exactly one rank thread.
class Comm {
 public:
  Comm(World* world, Rank rank);

  [[nodiscard]] Rank rank() const { return rank_; }
  [[nodiscard]] Rank size() const;

  /// Point-to-point. send() never blocks; recv() blocks until a match.
  void send(Rank dst, std::int32_t tag, std::vector<std::byte> payload);
  Message recv(Rank src, std::int32_t tag);

  void barrier();

  /// Binomial-tree broadcast; every rank (root included) returns the buffer.
  std::vector<std::byte> broadcast(std::vector<std::byte> buf, Rank root);

  /// Personalized all-to-all: out[r] goes to rank r (out[rank()] is returned
  /// untouched). Returns in[r] = payload from rank r.
  std::vector<std::vector<std::byte>> all_to_all(
      std::vector<std::vector<std::byte>> out);

  /// Gather: every rank contributes a buffer; the root returns all P
  /// buffers (indexed by source rank), other ranks return empty.
  std::vector<std::vector<std::byte>> gather(std::vector<std::byte> buf,
                                             Rank root);

  /// Scatter: the root provides one buffer per rank; every rank returns its
  /// own slice.
  std::vector<std::byte> scatter(std::vector<std::vector<std::byte>> bufs,
                                 Rank root);

  std::uint64_t all_reduce_sum(std::uint64_t value);
  std::uint64_t all_reduce_max(std::uint64_t value);
  bool all_reduce_or(bool value);

  /// Non-blocking probe for a pending message (testing/polling loops).
  [[nodiscard]] bool probe(Rank src, std::int32_t tag);

  /// Switches the CPU-accounting phase label; time since the last boundary
  /// is charged to the previous phase.
  void set_phase(const std::string& phase);

  [[nodiscard]] const RankLedger& ledger() const { return ledger_; }

 private:
  friend class World;

  std::uint64_t all_reduce(std::uint64_t value,
                           const std::function<std::uint64_t(std::uint64_t, std::uint64_t)>& op);
  void account_cpu();
  void log_message(OpKind kind, Rank dst, std::uint64_t bytes, std::uint32_t op_id);
  [[nodiscard]] double thread_cpu_seconds() const;

  World* world_;
  Rank rank_;
  RankLedger ledger_;
  std::string phase_ = "init";
  double last_cpu_mark_ = 0.0;
  std::uint32_t op_seq_ = 0;  // collective sequence number (SPMD lockstep)
};

/// Spawns P rank threads, runs fn(Comm&) on each, joins, and keeps the
/// merged ledgers/logs for post-run analysis. Exceptions thrown by rank
/// code are rethrown from run().
class World {
 public:
  explicit World(Rank size, LogGPParams params = {});

  /// Runs one SPMD program. May be called repeatedly; ledgers accumulate.
  void run(const std::function<void(Comm&)>& fn);

  [[nodiscard]] Rank size() const { return size_; }
  [[nodiscard]] const LogGPParams& params() const { return params_; }

  /// Per-rank ledgers, merged message log, and modeled network time.
  [[nodiscard]] const std::vector<RankLedger>& ledgers() const { return ledgers_; }
  [[nodiscard]] const std::vector<MsgRecord>& message_log() const { return log_; }
  [[nodiscard]] double modeled_network_seconds(SchedulePolicy policy) const;

  /// Sum over ranks / max over ranks of compute CPU seconds.
  [[nodiscard]] double total_cpu_seconds() const;
  [[nodiscard]] double max_rank_cpu_seconds() const;
  [[nodiscard]] std::uint64_t total_bytes() const;
  [[nodiscard]] std::uint64_t total_messages() const;

  /// Resets ledgers and the message log (between experiment repetitions).
  void reset_accounting();

 private:
  friend class Comm;

  Mailbox& mailbox(Rank r) { return *mailboxes_[static_cast<std::size_t>(r)]; }
  void append_log(const MsgRecord& m);

  Rank size_;
  LogGPParams params_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<RankLedger> ledgers_;
  std::vector<MsgRecord> log_;
  std::mutex log_mu_;
};

}  // namespace aacc::rt
