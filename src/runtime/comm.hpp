// Message-passing runtime: a World of P logical processors (threads), each
// holding a Comm endpoint. This is the repository's MPI substitute (see
// DESIGN.md): rank code is SPMD, communicates only through serialized
// messages, and all collectives are built from point-to-point sends so that
// byte counts and message counts are exact.
//
// Collectives provided (mirroring the subset the paper uses):
//   * barrier            — tree reduce + tree broadcast of an empty token
//   * broadcast          — binomial tree from a root
//   * all_to_all         — personalized all-to-all using the shift schedule
//   * all_reduce (sum/max/or)
//
// Every Comm records a per-rank ledger (bytes, messages, per-phase thread
// CPU seconds) and appends to a message log that logp.hpp replays to model
// network time under the paper's serialized schedule or alternatives.
//
// Fault tolerance (docs/FAULTS.md): with TransportConfig::reliable on (or a
// FaultInjector installed), every payload travels as a checksummed frame
// with a per-(src,dst) sequence number; admission validates the CRC, drops
// duplicates, and reorders out-of-order frames; senders retry with
// exponential backoff. Every blocking wait goes through a timed path, a
// failed rank interrupts its peers' waits (PeerFailedError instead of a
// deadlock), and run_contained() reports per-rank failures without
// unwinding the driver.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "obs/trace.hpp"
#include "runtime/faults.hpp"
#include "runtime/logp.hpp"

namespace aacc::rt {

inline constexpr Rank kAnySource = -1;

struct Message {
  Rank src = 0;
  std::int32_t tag = 0;
  std::vector<std::byte> payload;
  /// Causal flow id the message traveled under (obs/causal.hpp); 0 when
  /// flow stamping was off at the sender.
  std::uint64_t flow = 0;
};

/// Reliable-frame layout: [seqno u32][crc u32][payload]. The CRC covers
/// (src, tag, seqno, payload), so header corruption is detected too.
inline constexpr std::size_t kFrameHeaderBytes = 8;

/// Flow-stamped frame layout (wire v2.2, additive — negotiated run-wide by
/// World::install_flow_stamping): [seqno u32][crc u32][flow u64][payload].
/// The CRC additionally covers the flow id.
inline constexpr std::size_t kStampedFrameHeaderBytes = 16;

/// Encodes a payload into a wire frame (exposed for frame-rejection tests).
[[nodiscard]] std::vector<std::byte> encode_frame(
    Rank src, std::int32_t tag, std::uint32_t seqno,
    std::span<const std::byte> payload);

/// Flow-stamped variant (wire v2.2).
[[nodiscard]] std::vector<std::byte> encode_frame(
    Rank src, std::int32_t tag, std::uint32_t seqno, std::uint64_t flow,
    std::span<const std::byte> payload);

/// Thread-safe mailbox with (source, tag) matching and per-sender FIFO.
class Mailbox {
 public:
  enum class TakeStatus : std::uint8_t {
    kOk,
    kTimeout,      ///< deadline expired with no matching message
    kClosed,       ///< poison token: mailbox shut down
    kInterrupted,  ///< a peer rank was marked failed
  };
  struct TakeResult {
    TakeStatus status = TakeStatus::kOk;
    Message msg;
  };

  enum class AdmitStatus : std::uint8_t {
    kAccepted,   ///< in-order (or buffered out-of-order) delivery
    kDuplicate,  ///< seqno already seen; frame discarded
    kCorrupt,    ///< CRC mismatch or truncated header; frame discarded
  };

  /// Unframed fast path (TransportConfig::reliable off).
  void put(Message m);

  /// Reliable path: validates the frame CRC, dedups on the per-source
  /// sequence number, and delivers in order (out-of-order frames are held
  /// in a reorder buffer until the gap fills). Runs on the *sender's*
  /// thread — it models the receiving NIC, so the sender learns the
  /// admission verdict synchronously and can retry without an ack round
  /// trip that would deadlock symmetric exchanges. `stamped` selects the
  /// wire v2.2 flow-stamped header (both endpoints agree run-wide).
  AdmitStatus admit_frame(Rank src, std::int32_t tag,
                          std::vector<std::byte> frame,
                          bool stamped = false);

  /// Blocks until a message matching (src or kAnySource, tag) is available.
  /// Throws MailboxClosedError if the mailbox is poisoned or interrupted.
  Message take(Rank src, std::int32_t tag);

  /// Timed wait. A non-positive timeout waits indefinitely (still
  /// interruptible via poison()/interrupt()). Matching messages already
  /// queued are drained before an interrupt fires.
  TakeResult take_for(Rank src, std::int32_t tag,
                      std::chrono::milliseconds timeout);

  /// Shutdown token: every pending and future wait returns kClosed.
  void poison();

  /// Sticky wake-up for peer-failure propagation: waits that would block
  /// return kInterrupted (queued matches still drain first).
  void interrupt();

  /// Clears queue, sequence streams, and poison/interrupt flags (start of a
  /// World run).
  void reset();

  /// Non-blocking probe (used by tests).
  [[nodiscard]] bool has(Rank src, std::int32_t tag);

  /// Next frame seqno this mailbox expects from `src` (reliable transport
  /// only) — i.e. the seq of the message a stuck receiver is awaiting.
  /// Used by health supervision to name the exact stuck message.
  [[nodiscard]] std::uint32_t next_expected_seq(Rank src);

 private:
  struct Stream {
    std::uint32_t next = 0;                  ///< next expected seqno
    std::map<std::uint32_t, Message> held;   ///< out-of-order reorder buffer
  };

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  std::map<Rank, Stream> streams_;
  bool closed_ = false;
  bool interrupted_ = false;
};

/// Per-rank accounting.
struct RankLedger {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  /// Reliable-transport costs (zero when TransportConfig::reliable is off):
  /// frame-header bytes included in bytes_sent, and retransmitted frames
  /// included in messages_sent.
  std::uint64_t frame_overhead_bytes = 0;
  std::uint64_t retransmits = 0;
  /// Health-supervision escalations observed by this rank (zero when
  /// HealthConfig::enabled is off): peers that crossed the straggler /
  /// suspect deadline while awaited, and peers this rank declared dead.
  std::uint64_t health_stragglers = 0;
  std::uint64_t health_suspects = 0;
  std::uint64_t health_dead_declared = 0;
  /// Thread-CPU seconds spent computing, keyed by phase label.
  std::map<std::string, double> cpu_seconds;

  [[nodiscard]] double total_cpu_seconds() const {
    double t = 0.0;
    for (const auto& [k, v] : cpu_seconds) t += v;
    return t;
  }
};

class World;
class PendingAllToAll;

/// A rank's endpoint. Not thread-safe; owned by exactly one rank thread.
class Comm {
 public:
  Comm(World* world, Rank rank);

  [[nodiscard]] Rank rank() const { return rank_; }
  [[nodiscard]] Rank size() const;

  /// Point-to-point. send() never blocks; recv() blocks until a match, the
  /// transport timeout (TimeoutError), a peer failure (PeerFailedError), or
  /// shutdown (MailboxClosedError).
  void send(Rank dst, std::int32_t tag, std::vector<std::byte> payload);
  Message recv(Rank src, std::int32_t tag);

  void barrier();

  /// Binomial-tree broadcast; every rank (root included) returns the buffer.
  ///
  /// `replica` (optional) marks the payload as replicated data the caller
  /// can reconstruct locally (e.g. the change feed every rank already holds
  /// in its schedule). When the tree parent has failed before forwarding,
  /// the wait would otherwise be stuck forever; with a replica the rank
  /// substitutes its local copy and keeps forwarding down the tree, so
  /// every survivor completes the broadcast and parks in the next dense
  /// collective with coherent cursors (docs/FAULTS.md §Shard adoption).
  std::vector<std::byte> broadcast(std::vector<std::byte> buf, Rank root,
                                   const std::vector<std::byte>* replica =
                                       nullptr);

  /// Personalized all-to-all: out[r] goes to rank r (out[rank()] is returned
  /// untouched). Returns in[r] = payload from rank r. Thin wrapper over
  /// all_to_all_start(..., 1).wait_all(): window 1 reproduces the classic
  /// blocking shift schedule (send round s, then block on round s's recv)
  /// byte for byte and wait for wait.
  std::vector<std::vector<std::byte>> all_to_all(
      std::vector<std::vector<std::byte>> out);

  /// Non-blocking personalized all-to-all: submits every destination
  /// immediately and returns a handle with up to `window_k` sends issued
  /// ahead of the matching recvs. Drain completions in arrival order with
  /// try_recv_any(), or collect everything with wait_all(). `window_k` is
  /// clamped to [1, P-1]; window 1 is the deterministic blocking schedule.
  PendingAllToAll all_to_all_start(std::vector<std::vector<std::byte>> out,
                                   Rank window_k);

  /// Incremental variant: consumes this op's collective tag and returns an
  /// empty handle; the caller feeds destinations with submit() as their
  /// payloads finish assembly. Every rank must eventually be submitted
  /// exactly once (own rank included — its payload is just stored).
  PendingAllToAll all_to_all_begin(Rank window_k);

  /// Gather: every rank contributes a buffer; the root returns all P
  /// buffers (indexed by source rank), other ranks return empty.
  std::vector<std::vector<std::byte>> gather(std::vector<std::byte> buf,
                                             Rank root);

  /// Scatter: the root provides one buffer per rank; every rank returns its
  /// own slice.
  std::vector<std::byte> scatter(std::vector<std::vector<std::byte>> bufs,
                                 Rank root);

  std::uint64_t all_reduce_sum(std::uint64_t value);
  std::uint64_t all_reduce_max(std::uint64_t value);
  bool all_reduce_or(bool value);

  /// Non-blocking probe for a pending message (testing/polling loops).
  [[nodiscard]] bool probe(Rank src, std::int32_t tag);

  /// Switches the CPU-accounting phase label; time since the last boundary
  /// is charged to the previous phase.
  void set_phase(const std::string& phase);

  [[nodiscard]] const RankLedger& ledger() const { return ledger_; }

  /// This rank's view of each peer's health (empty until the first
  /// supervised wait when HealthConfig::enabled, always empty otherwise).
  /// waited_seconds accumulates the silence attributed to the peer across
  /// awaited waits; state is the highest escalation reached (an arrival
  /// resets it to kOk).
  [[nodiscard]] const std::vector<PeerHealth>& peer_health() const {
    return peer_health_;
  }

  /// Sets the RC step recorded in outgoing flow ids (obs/causal.hpp).
  /// Called by the engine at the top of each RC step; harmless no-op when
  /// flow stamping is off.
  void set_flow_step(std::uint32_t step) { flow_step_ = step; }

 private:
  friend class World;
  friend class PendingAllToAll;

  std::uint64_t all_reduce(std::uint64_t value,
                           const std::function<std::uint64_t(std::uint64_t, std::uint64_t)>& op);
  /// Single egress point: every send — user p2p and collective fan-out —
  /// funnels through here so transport hardening and fault injection cover
  /// all traffic uniformly.
  void put_message(Rank dst, std::int32_t tag, std::vector<std::byte> payload,
                   OpKind kind, std::uint32_t op_id);
  void put_reliable(Rank dst, std::int32_t tag, std::vector<std::byte> payload,
                    OpKind kind, std::uint32_t op_id);
  void charge_send(Rank dst, std::int32_t tag, std::uint64_t wire_bytes,
                   OpKind kind, std::uint32_t op_id, bool retransmit);
  /// Releases frames held back by kDelay injection (to one destination, or
  /// all). Called on the next send to the same destination — after the new
  /// frame, producing genuine reordering — at every recv, and at rank exit.
  void flush_delayed(Rank dst);
  void flush_all_delayed();
  /// Health supervision (HealthConfig::enabled): attributes `delta` more
  /// seconds of awaited silence to `peer` (its current await now totalling
  /// `elapsed` seconds) and escalates its state through straggler ->
  /// suspect, recording a trace instant and a ledger count per escalation.
  /// Returns true once the peer crossed dead_after — the caller then
  /// declares it dead world-wide and aborts the wait.
  bool escalate_peer(Rank peer, double elapsed_seconds, double delta_seconds);
  void note_peer_ok(Rank peer);
  void account_cpu();
  void log_message(OpKind kind, Rank dst, std::uint64_t bytes, std::uint32_t op_id);
  [[nodiscard]] double thread_cpu_seconds() const;

  World* world_;
  Rank rank_;
  /// This rank's main trace track (null = tracing off). Installed by
  /// World::run_contained from the World's tracer; written only by the
  /// rank thread that owns this Comm.
  obs::TraceTrack* trace_ = nullptr;
  RankLedger ledger_;
  std::string phase_ = "init";
  double last_cpu_mark_ = 0.0;
  std::uint32_t op_seq_ = 0;  // collective sequence number (SPMD lockstep)
  /// Reliable transport: next outbound seqno per destination, and frames
  /// held in "the network" by delay injection.
  std::vector<std::uint32_t> next_seq_;
  struct DelayedFrame {
    std::int32_t tag;
    std::vector<std::byte> frame;
  };
  std::unordered_map<Rank, std::vector<DelayedFrame>> delayed_;
  /// Causal flow stamping (obs/causal.hpp): per-sender monotone seq, the
  /// RC step the engine says we are in, and the World's contained-run
  /// attempt number (cached at construction — Comms are rebuilt per
  /// attempt, which is what isolates flows across rollback replays).
  std::uint32_t flow_seq_ = 0;
  std::uint32_t flow_step_ = 0;
  std::uint32_t flow_attempt_ = 0;
  /// Builds the next outbound flow id and records the flow:send instant.
  [[nodiscard]] std::uint64_t next_flow_id();
  /// Per-peer health ledger (sized lazily on the first supervised wait).
  std::vector<PeerHealth> peer_health_;
  /// Candidate peers of the current any-source await (non-owning; set by
  /// PendingAllToAll::recv_one around its recv so the health layer can
  /// attribute an anonymous wait to the peers still outstanding).
  const std::vector<Rank>* await_hint_ = nullptr;
};

/// An in-flight personalized all-to-all (Comm::all_to_all_start /
/// all_to_all_begin). Sends are issued in shift order (round s goes to
/// rank + s), at most `window` rounds ahead of the completed recvs; a
/// submit that would overrun the window first drains (and buffers) one
/// arrival, so at window 1 the schedule degenerates to the classic
/// blocking send/recv interleaving. Completions are consumed in arrival
/// order via try_recv_any() — except at window 1, where each recv names
/// the deterministic shift source, preserving the legacy failure
/// semantics and bit-identical accounting.
///
/// All traffic leaves through Comm's single egress funnel, so CRC
/// framing, seqno dedup, sender retry, and fault injection apply to the
/// windowed schedule unchanged. Deadlock-free for any window: if every
/// rank were blocked with a full window, P*window messages would sit
/// undrained in mailboxes, so some rank has a pending match.
///
/// Move-only; must be driven by the rank thread that owns the Comm.
class PendingAllToAll {
 public:
  struct Arrival {
    Rank src = 0;
    std::vector<std::byte> payload;
  };

  PendingAllToAll(PendingAllToAll&&) noexcept = default;
  PendingAllToAll& operator=(PendingAllToAll&&) noexcept = default;
  PendingAllToAll(const PendingAllToAll&) = delete;
  PendingAllToAll& operator=(const PendingAllToAll&) = delete;
  ~PendingAllToAll() = default;

  /// Hands one destination's payload to the transport; the send is issued
  /// as soon as the shift schedule reaches it within the window. Arrivals
  /// drained to open the window are buffered, not delivered — the caller
  /// sees them only through try_recv_any()/wait_all(), so it can finish
  /// its send-side bookkeeping before touching any incoming data. After
  /// the final submit, every send has been issued (the transport's puts
  /// never block; only recvs gate the window).
  void submit(Rank dst, std::vector<std::byte> payload);

  /// Next peer payload: buffered arrivals first, then live recvs, in
  /// arrival order. Blocks while messages are outstanding; std::nullopt
  /// once all P-1 peers have been consumed (which requires every
  /// destination to have been submitted).
  std::optional<Arrival> try_recv_any();

  /// Drains everything outstanding and returns in[r] = payload from rank
  /// r (own slot = the payload submitted to own rank). Slots already
  /// consumed through try_recv_any() come back empty.
  std::vector<std::vector<std::byte>> wait_all();

  /// Wall-clock seconds spent blocked in recv so far (overlap telemetry).
  [[nodiscard]] double wait_seconds() const { return wait_seconds_; }
  /// High-water mark of sends issued ahead of completed recvs.
  [[nodiscard]] std::uint64_t max_inflight() const { return max_inflight_; }
  [[nodiscard]] Rank window() const { return window_; }
  /// Longest single blocked interval so far, and the peer whose arrival
  /// ended it — the live "blocked on rank r" attribution the progress feed
  /// surfaces (-1 until any recv blocked).
  [[nodiscard]] double blocked_on_seconds() const { return max_blocked_seconds_; }
  [[nodiscard]] Rank blocked_on_peer() const { return max_blocked_src_; }

 private:
  friend class Comm;
  PendingAllToAll(Comm* comm, Rank window, std::int32_t tag, std::uint32_t op);

  /// Issues every send the window and the submitted set currently allow.
  void pump();
  /// Blocks for one arrival and buffers it (strict shift source at
  /// window 1, any-source otherwise).
  void recv_one();

  Comm* comm_;
  Rank window_;
  std::int32_t tag_;
  std::uint32_t op_;
  Rank P_;
  Rank me_;
  std::vector<std::vector<std::byte>> out_;  ///< pending payloads by dst
  std::vector<std::vector<std::byte>> in_;   ///< arrivals (+ own slot) by src
  std::vector<bool> submitted_;
  std::vector<bool> arrived_;   ///< peers whose payload has landed
  std::deque<Rank> ready_;      ///< buffered arrivals not yet delivered
  Rank submitted_count_ = 0;
  Rank next_send_s_ = 1;        ///< shift offset of the next unsent round
  Rank sends_issued_ = 0;
  Rank recvs_taken_ = 0;
  Rank delivered_ = 0;
  double wait_seconds_ = 0.0;
  std::uint64_t max_inflight_ = 0;
  double max_blocked_seconds_ = 0.0;
  Rank max_blocked_src_ = -1;
};

/// Spawns P rank threads, runs fn(Comm&) on each, joins, and keeps the
/// merged ledgers/logs for post-run analysis. Exceptions thrown by rank
/// code are rethrown from run(); run_contained() reports them instead.
class World {
 public:
  /// Per-rank outcome of a contained run.
  struct RunReport {
    /// One entry per rank; null where the rank completed normally.
    std::vector<std::exception_ptr> errors;
    /// Ranks with a non-null error, ascending.
    std::vector<Rank> failed;
    [[nodiscard]] bool ok() const { return failed.empty(); }
  };

  explicit World(Rank size, LogGPParams params = {},
                 TransportConfig transport = {});

  /// Runs one SPMD program. May be called repeatedly; ledgers accumulate.
  /// If any rank throws, rethrows one error (preferring a root cause over
  /// collateral PeerFailedError).
  void run(const std::function<void(Comm&)>& fn);

  /// Supervised variant: rank failures are contained and reported, the
  /// World survives, and surviving ranks fail fast (PeerFailedError) on
  /// their next blocking wait instead of deadlocking.
  RunReport run_contained(const std::function<void(Comm&)>& fn);

  /// Installs a fault injector (non-owning; must outlive runs). Forces the
  /// reliable transport on — faults act on wire frames.
  void install_faults(FaultInjector* injector);

  /// Installs a span tracer (non-owning; must outlive runs; null to
  /// detach). Each run's Comms then record per-message transport instants
  /// on their rank's main track.
  void install_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Arms peer-health supervision for subsequent runs: awaited silence is
  /// attributed per peer and escalates straggler -> suspect -> dead
  /// (docs/FAULTS.md §Health supervision).
  void install_health(const HealthConfig& health) { health_ = health; }
  [[nodiscard]] const HealthConfig& health() const { return health_; }

  /// Arms causal flow stamping for subsequent runs: every frame carries a
  /// 64-bit flow id (wire v2.2) and senders/receivers record flow:send /
  /// flow:recv instants on their trace tracks. Off (the default) keeps
  /// wire bytes bit-identical to the unstamped v2.1 format.
  void install_flow_stamping(bool on) { flow_stamping_ = on; }
  [[nodiscard]] bool flow_stamping() const { return flow_stamping_; }
  /// Contained-run attempt counter (bumped at each run/run_contained
  /// start): the attempt field of every flow id minted in that run, so a
  /// rollback replay can never be stitched to pre-rollback sends.
  [[nodiscard]] std::uint32_t run_attempt() const { return run_attempt_; }

  /// Marks a rank failed mid-run and interrupts every blocking wait.
  void mark_failed(Rank r);

  /// Health-supervision verdict: declares `r` dead as observed by `by`
  /// (marks it failed and records the declaration). Idempotent — a rank
  /// already failed or declared is not re-declared, so racing observers
  /// produce one declaration.
  void declare_dead(Rank r, Rank by);

  /// Ranks declared dead by health supervision during the current/last
  /// run_contained (cleared at each run start). The supervisor treats
  /// these as root failures even when the rank never raised an error
  /// itself (a wedged peer has no exception to report).
  [[nodiscard]] std::vector<Rank> declared_dead() const;
  [[nodiscard]] bool any_failed() const {
    return any_failed_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::vector<Rank> failed_ranks() const;

  [[nodiscard]] Rank size() const { return size_; }
  [[nodiscard]] const LogGPParams& params() const { return params_; }
  [[nodiscard]] const TransportConfig& transport() const { return transport_; }
  [[nodiscard]] FaultInjector* injector() const { return injector_; }

  /// Per-rank ledgers, merged message log, and modeled network time.
  [[nodiscard]] const std::vector<RankLedger>& ledgers() const { return ledgers_; }
  [[nodiscard]] const std::vector<MsgRecord>& message_log() const { return log_; }
  [[nodiscard]] double modeled_network_seconds(SchedulePolicy policy) const;
  /// Modeled makespan of the recorded all-to-all traffic under the k-deep
  /// windowed shift schedule (logp.hpp); window 1 models the blocking
  /// schedule, so speedup_vs_blocking = f(1) / f(k).
  [[nodiscard]] double modeled_exchange_seconds(std::uint32_t window) const;

  /// Sum over ranks / max over ranks of compute CPU seconds.
  [[nodiscard]] double total_cpu_seconds() const;
  [[nodiscard]] double max_rank_cpu_seconds() const;
  [[nodiscard]] std::uint64_t total_bytes() const;
  [[nodiscard]] std::uint64_t total_messages() const;

  /// Resets ledgers and the message log (between experiment repetitions).
  void reset_accounting();

 private:
  friend class Comm;

  Mailbox& mailbox(Rank r) { return *mailboxes_[static_cast<std::size_t>(r)]; }
  void append_log(const MsgRecord& m);

  Rank size_;
  LogGPParams params_;
  TransportConfig transport_;
  HealthConfig health_;
  FaultInjector* injector_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  bool flow_stamping_ = false;
  std::uint32_t run_attempt_ = 0;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<RankLedger> ledgers_;
  std::vector<MsgRecord> log_;
  std::mutex log_mu_;
  std::atomic<bool> any_failed_{false};
  mutable std::mutex failed_mu_;
  std::vector<Rank> failed_;
  std::vector<Rank> declared_dead_;  // guarded by failed_mu_
};

}  // namespace aacc::rt
