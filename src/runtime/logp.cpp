#include "runtime/logp.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace aacc::rt {

double message_cost(const LogGPParams& p, std::uint64_t bytes) {
  // Sender overhead + wire occupancy + latency + receiver overhead.
  return p.o + static_cast<double>(bytes) * p.G + p.L + p.o;
}

namespace {

double broadcast_cost(const LogGPParams& p, std::uint64_t max_bytes, Rank world) {
  // Binomial tree: ceil(log2 P) sequential levels.
  int depth = 0;
  for (Rank span = 1; span < world; span *= 2) ++depth;
  return static_cast<double>(depth) * message_cost(p, max_bytes);
}

double all_to_all_cost(const LogGPParams& p, const std::vector<const MsgRecord*>& msgs,
                       SchedulePolicy policy, Rank world) {
  switch (policy) {
    case SchedulePolicy::kSerialized: {
      // One message on the wire at a time, g between consecutive sends.
      double t = 0.0;
      for (const MsgRecord* m : msgs) t += message_cost(p, m->bytes) + p.g;
      return t;
    }
    case SchedulePolicy::kShifted: {
      // Rounds s = 1..P-1; message src -> dst belongs to round
      // (dst - src) mod P. Round cost = slowest message in the round.
      std::vector<std::uint64_t> round_max(static_cast<std::size_t>(world), 0);
      for (const MsgRecord* m : msgs) {
        const auto s = static_cast<std::size_t>(
            ((m->dst - m->src) % world + world) % world);
        round_max[s] = std::max(round_max[s], m->bytes);
      }
      double t = 0.0;
      for (std::size_t s = 1; s < round_max.size(); ++s) {
        if (round_max[s] > 0) t += message_cost(p, round_max[s]) + p.g;
      }
      return t;
    }
    case SchedulePolicy::kFlood: {
      // All messages contend for one shared wire: total bytes serialize,
      // but per-rank send overheads overlap across ranks (take the max).
      std::uint64_t total_bytes = 0;
      std::vector<double> rank_overhead(static_cast<std::size_t>(world), 0.0);
      for (const MsgRecord* m : msgs) {
        total_bytes += m->bytes;
        rank_overhead[static_cast<std::size_t>(m->src)] += p.o + p.g;
      }
      const double max_overhead =
          *std::max_element(rank_overhead.begin(), rank_overhead.end());
      return max_overhead + static_cast<double>(total_bytes) * p.G + p.L + p.o;
    }
  }
  return 0.0;
}

}  // namespace

double modeled_exchange_makespan(const std::vector<MsgRecord>& log,
                                 const LogGPParams& params, Rank world_size,
                                 std::uint32_t window) {
  const auto P = static_cast<std::size_t>(world_size);
  if (P < 2) return 0.0;
  const std::uint32_t w =
      std::clamp<std::uint32_t>(window, 1, static_cast<std::uint32_t>(P - 1));

  // Group the a2a records by op; within an op, bytes[src * P + round]
  // accumulates (retransmitted frames occupy the wire like first sends).
  std::map<std::uint32_t, std::vector<std::uint64_t>> ops;
  std::map<std::uint32_t, std::vector<bool>> present;
  for (const MsgRecord& m : log) {
    if (m.kind != OpKind::kAllToAll) continue;
    auto [it, inserted] = ops.try_emplace(m.op);
    if (inserted) {
      it->second.assign(P * P, 0);
      present[m.op].assign(P * P, false);
    }
    const auto src = static_cast<std::size_t>(m.src);
    const auto round =
        static_cast<std::size_t>(((m.dst - m.src) % world_size + world_size) %
                                 world_size);
    it->second[src * P + round] += m.bytes;
    present[m.op][src * P + round] = true;
  }

  double total = 0.0;
  std::vector<double> free_at(P);    // sender CPU free (occupancy + g)
  std::vector<double> done_at(P);    // sender-side completion (no gap)
  std::vector<double> arrive(P * P); // arrive[p * P + round]
  std::vector<double> issue(P);      // this round's send-issue times
  for (const auto& [op, bytes] : ops) {
    const std::vector<bool>& has = present[op];
    std::fill(free_at.begin(), free_at.end(), 0.0);
    std::fill(done_at.begin(), done_at.end(), 0.0);
    std::fill(arrive.begin(), arrive.end(), 0.0);
    for (std::size_t i = 1; i < P; ++i) {
      for (std::size_t p = 0; p < P; ++p) {
        // Windowing: round i may not start before round i-w's arrival has
        // completed — at most w of this rank's recvs are outstanding.
        const double gate = i > w ? arrive[p * P + (i - w)] : 0.0;
        const double s = std::max(free_at[p], gate);
        issue[p] = s;
        if (has[p * P + i]) {
          const double occupy =
              params.o + static_cast<double>(bytes[p * P + i]) * params.G;
          free_at[p] = s + occupy + params.g;
          done_at[p] = std::max(done_at[p], s + occupy);
        } else {
          free_at[p] = s;
        }
      }
      for (std::size_t p = 0; p < P; ++p) {
        const std::size_t src = (p + P - i) % P;
        // A round with no recorded message gates nothing: carry the
        // previous arrival forward so the window constraint stays sane.
        arrive[p * P + i] =
            has[src * P + i]
                ? issue[src] + message_cost(params, bytes[src * P + i])
                : arrive[p * P + (i - 1)];
      }
    }
    double makespan = 0.0;
    for (std::size_t p = 0; p < P; ++p) {
      makespan = std::max(makespan, std::max(arrive[p * P + (P - 1)], done_at[p]));
    }
    total += makespan;
  }
  return total;
}

double modeled_network_seconds(const std::vector<MsgRecord>& log,
                               const LogGPParams& params, SchedulePolicy policy,
                               Rank world_size) {
  // Group by (op, kind); ops execute sequentially (SPMD collectives).
  std::map<std::pair<std::uint32_t, OpKind>, std::vector<const MsgRecord*>> groups;
  for (const MsgRecord& m : log) {
    groups[{m.op, m.kind}].push_back(&m);
  }
  double total = 0.0;
  for (const auto& [key, msgs] : groups) {
    switch (key.second) {
      case OpKind::kAllToAll:
        total += all_to_all_cost(params, msgs, policy, world_size);
        break;
      case OpKind::kBroadcast:
      case OpKind::kReduce: {
        std::uint64_t max_bytes = 0;
        for (const MsgRecord* m : msgs) max_bytes = std::max(max_bytes, m->bytes);
        total += broadcast_cost(params, max_bytes, world_size);
        break;
      }
      case OpKind::kPointToPoint:
        for (const MsgRecord* m : msgs) total += message_cost(params, m->bytes);
        break;
    }
  }
  return total;
}

}  // namespace aacc::rt
